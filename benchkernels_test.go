package streak

// Micro-benchmarks for the hot-kernel data-layout work: the bitset capacity
// intersection against the legacy per-edge walk, the SoA tree build/expand
// path, and warm- vs cold-started B&B simplex. All report allocations —
// the pooled-scratch design targets allocs/op as hard as ns/op, and
// benchreport gates on both (see -alloc-threshold).

import (
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/pd"
	"repro/internal/topo"
)

// BenchmarkCapacityIntersect measures one full candidate-feasibility sweep
// (every candidate of every object) against a partially-committed tracker:
// the word-AND bitset kernel versus the legacy segment-at-a-time walk it
// replaced.
func BenchmarkCapacityIntersect(b *testing.B) {
	p := benchProblem(b, 7)
	res := pd.Solve(p) // realistic mid-solve occupancy
	u := p.Usage(res.Assignment)

	walk := func(i, j int, u *grid.Usage) bool {
		for _, e := range p.Cands[i][j].Edges {
			if u.Avail(int(e.Layer), int(e.Idx)) < int(e.N) {
				return false
			}
		}
		return true
	}

	var fits int
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			fits = 0
			for i := range p.Cands {
				for j := range p.Cands[i] {
					if p.CandidateFits(i, j, u) {
						fits++
					}
				}
			}
		}
	})
	want := fits
	b.Run("walk", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			fits = 0
			for i := range p.Cands {
				for j := range p.Cands[i] {
					if walk(i, j, u) {
						fits++
					}
				}
			}
		}
	})
	if want != fits {
		b.Fatalf("bitset and walk disagree: %d vs %d", want, fits)
	}
}

// BenchmarkTreeArena measures the candidate-generation hot path on an
// Industry preset: per-object 2-D topology generation plus 3-D layer
// expansion, the loop the SoA segment arenas and pooled expansion scratch
// were built for.
func BenchmarkTreeArena(b *testing.B) {
	p := benchProblem(b, 7)
	b.ResetTimer()
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		for i := range p.Objects {
			obj := &p.Objects[i]
			g := p.Group(i)
			ots := topo.ObjectTopologies(g, obj, p.Opt.Topo)
			cands := topo.Expand3D(p.Grid, ots, p.Opt.Topo)
			if len(cands) == 0 {
				b.Fatal("no candidates expanded")
			}
		}
	}
}

// bbNodeModel builds a randomized selection model shaped like a tile ILP:
// SOS candidate groups, covering rows, and fractional-coefficient capacity
// rows. Distinct float costs keep LP optima unique so the warm path
// engages, and the tight capacity rows force deep branch-and-bound trees
// (the regime where parent-basis warm starts and the dual-simplex
// infeasibility certificate pay off).
func bbNodeModel(seed int64) *ilp.Model {
	rng := rand.New(rand.NewSource(seed))
	nGroups, per := 8, 3
	m := ilp.NewModel(nGroups * per)
	groups := make([][]int, nGroups)
	for g := 0; g < nGroups; g++ {
		vars := make([]int, per)
		terms := make([]ilp.Term, per)
		for k := 0; k < per; k++ {
			v := g*per + k
			m.SetObj(v, 1+rng.Float64()*10)
			m.SetInteger(v)
			vars[k] = v
			terms[k] = ilp.Term{Var: v, Coef: -1}
		}
		groups[g] = vars
		m.AddSOS(vars)
		m.AddConstraint(terms, -1)
	}
	for e := 0; e < nGroups; e++ {
		terms := make([]ilp.Term, 0, nGroups)
		for _, vars := range groups {
			terms = append(terms, ilp.Term{Var: vars[rng.Intn(len(vars))], Coef: 1 + rng.Float64()})
		}
		m.AddConstraint(terms, 2+rng.Float64()*2)
	}
	return m
}

// BenchmarkBBNode measures branch-and-bound node cost warm versus cold:
// the same model set solved with parent-basis warm starts enabled and
// disabled, reporting ns per explored node alongside the standard metrics.
func BenchmarkBBNode(b *testing.B) {
	var models []*ilp.Model
	for seed := int64(40); len(models) < 8 && seed < 140; seed++ {
		m := bbNodeModel(seed)
		if ilp.Solve(m, ilp.SolveOptions{}).Status == ilp.Optimal {
			models = append(models, m)
		}
	}
	if len(models) < 8 {
		b.Fatal("not enough feasible models")
	}
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"warm", false}, {"cold", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			nodes := 0
			for n := 0; n < b.N; n++ {
				for _, m := range models {
					r := ilp.Solve(m, ilp.SolveOptions{DisableWarmLP: cfg.disable})
					if r.Status != ilp.Optimal {
						b.Fatalf("status %v", r.Status)
					}
					nodes += r.Nodes
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(nodes), "ns/node")
		})
	}
}
