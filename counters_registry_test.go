package streak

import (
	"context"
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/obs"
)

// TestSolveCountersRegistered runs a full Industry solve under every
// selection method — post-optimization and the legality audit on, so every
// stage that emits counters executes — and pins that each counter name the
// run emitted is in the canonical obs registry. A typo'd counter string in
// any pipeline stage silently forks a metric from its dashboards; this test
// turns that into a failure naming the unregistered counter.
func TestSolveCountersRegistered(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(1), 0.06).Generate()
	for _, method := range []Method{PrimalDual, ILP, Hierarchical} {
		opt := DefaultOptions()
		opt.Method = method
		opt.Audit = AuditWarn
		opt.ILPTimeLimit = 10 * time.Second
		opt.HierTimePerTile = 3 * time.Second
		rec := obs.NewRecorder()
		ctx := obs.WithRecorder(context.Background(), rec)
		if _, err := RouteCtx(ctx, d, opt); err != nil {
			t.Fatalf("method %v: RouteCtx: %v", method, err)
		}
		counters := rec.Counters()
		if len(counters) == 0 {
			t.Fatalf("method %v: solve emitted no counters", method)
		}
		for name := range counters {
			if !obs.KnownCounter(name) {
				t.Errorf("method %v: counter %q is not in the canonical registry (internal/obs/counters.go)", method, name)
			}
		}
	}
}

// TestKnownCounterNamesSorted pins the registry accessors: the name list is
// sorted, non-empty, and agrees with KnownCounter.
func TestKnownCounterNamesSorted(t *testing.T) {
	names := obs.KnownCounterNames()
	if len(names) < 40 {
		t.Fatalf("registry suspiciously small: %d names", len(names))
	}
	for i, n := range names {
		if !obs.KnownCounter(n) {
			t.Errorf("KnownCounterNames()[%d] = %q not KnownCounter", i, n)
		}
		if i > 0 && names[i-1] >= n {
			t.Errorf("names not sorted at %d: %q >= %q", i, names[i-1], n)
		}
	}
	if obs.KnownCounter("no.such.counter") {
		t.Error("KnownCounter accepted an unregistered name")
	}
}
