package streak

import (
	"context"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TestTelemetryDriftDetectsCapacityShift pins the congestion-drift series
// end to end: solve the same design twice, the second time with the
// per-edge track capacity halved, feed both usage snapshots through
// SnapshotCongestion into telemetry records, and require the drift series
// to surface the utilization jump as a positive delta. This is the signal
// the lake exists to catch — a floorplan or process change quietly eating
// routing headroom between two runs of the same design.
func TestTelemetryDriftDetectsCapacityShift(t *testing.T) {
	solve := func(capScale float64) *telemetry.CongestionSummary {
		t.Helper()
		d := benchgen.Scale(benchgen.Industry(1), 0.06).Generate()
		d.Grid.EdgeCap = int(float64(d.Grid.EdgeCap) * capScale)
		if d.Grid.EdgeCap < 1 {
			d.Grid.EdgeCap = 1
		}
		res, err := RouteCtx(context.Background(), d, DefaultOptions())
		if err != nil {
			t.Fatalf("capScale %v: %v", capScale, err)
		}
		if res.Usage == nil {
			t.Fatalf("capScale %v: no usage snapshot", capScale)
		}
		return telemetry.SummarizeCongestion(obs.SnapshotCongestion(res.Usage, 0))
	}

	base := solve(1.0)
	tight := solve(0.5)
	if base == nil || tight == nil {
		t.Fatal("missing congestion summaries")
	}
	if tight.MeanUtilPct <= base.MeanUtilPct {
		t.Fatalf("halving capacity did not raise mean utilization: base %.2f%%, tight %.2f%%",
			base.MeanUtilPct, tight.MeanUtilPct)
	}

	recs := []telemetry.Record{
		{Schema: telemetry.SchemaVersion, Kind: telemetry.KindReport, TimeMS: 1000,
			Report: &telemetry.SolveReport{Design: "industry1", Congestion: base}},
		{Schema: telemetry.SchemaVersion, Kind: telemetry.KindReport, TimeMS: 2000,
			Report: &telemetry.SolveReport{Design: "industry1", Congestion: tight}},
	}
	series, err := telemetry.ComputeSeries(recs, telemetry.SeriesOptions{Metric: telemetry.MetricCongestionDrift})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Drift) != 2 {
		t.Fatalf("drift points = %d, want 2", len(series.Drift))
	}
	shift := series.Drift[1]
	if shift.DriftPct <= 0 {
		t.Errorf("drift series missed the capacity shift: DriftPct = %.3f (util %.2f%% -> %.2f%%)",
			shift.DriftPct, base.MeanUtilPct, tight.MeanUtilPct)
	}
	if want := tight.MeanUtilPct - base.MeanUtilPct; shift.DriftPct != want {
		t.Errorf("DriftPct = %v, want exact delta %v", shift.DriftPct, want)
	}
}
