package streak

import (
	"strings"
	"testing"

	"repro/internal/benchgen"
)

func scaledDesign(n int, f float64) *Design {
	return benchgen.Scale(benchgen.Industry(n), f).Generate()
}

func TestRouteDefaultFlow(t *testing.T) {
	d := scaledDesign(1, 0.05)
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatalf("Route: %v", err)
	}
	if res.Metrics.RouteFrac < 0.9 {
		t.Errorf("route frac = %v, want >= 0.9 on an easy design", res.Metrics.RouteFrac)
	}
	if res.Usage.Overflow() != 0 {
		t.Errorf("Streak must not overflow, got %d", res.Usage.Overflow())
	}
	// The reported usage matches a fresh re-derivation from the geometry.
	if got := NewUsageOf(res).TotalUse(); got != res.Usage.TotalUse() {
		t.Errorf("usage bookkeeping drifted: %d vs %d", got, res.Usage.TotalUse())
	}
}

func TestRouteILPOnTinyDesign(t *testing.T) {
	d := scaledDesign(1, 0.01)
	opt := DefaultOptions()
	opt.Method = ILP
	opt.ILPWarmStart = true
	res, err := Route(d, opt)
	if err != nil {
		t.Fatalf("Route ILP: %v", err)
	}
	pdRes, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut && res.Metrics.RoutedGroups < pdRes.Metrics.RoutedGroups {
		t.Errorf("optimal ILP routed %d groups, PD routed %d", res.Metrics.RoutedGroups, pdRes.Metrics.RoutedGroups)
	}
}

func TestManualBaseline(t *testing.T) {
	d := scaledDesign(3, 0.05)
	res, err := ManualBaseline(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RouteFrac != 1 {
		t.Errorf("manual route frac = %v, want 1", res.Metrics.RouteFrac)
	}
}

func TestWriteHeatmap(t *testing.T) {
	d := scaledDesign(1, 0.03)
	res, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteHeatmap(&sb, res, 24)
	if !strings.Contains(sb.String(), "legend") {
		t.Error("heatmap missing legend")
	}
}

func TestGenerateIndustryAndSpec(t *testing.T) {
	d := GenerateIndustry(4)
	if d.Name != "Industry4" {
		t.Errorf("name = %s", d.Name)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if IndustrySpec(4).NumGroups != 146 {
		t.Error("spec mismatch")
	}
}

func TestPostOptAblation(t *testing.T) {
	// Refinement off leaves at least as many violations as refinement on.
	d := scaledDesign(7, 0.1)
	off := DefaultOptions()
	off.Refinement = false
	resOff, err := Route(d, off)
	if err != nil {
		t.Fatal(err)
	}
	resOn, err := Route(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resOn.Metrics.VioDst > resOff.Metrics.VioDst {
		t.Errorf("refinement increased violations: %d > %d", resOn.Metrics.VioDst, resOff.Metrics.VioDst)
	}
	// Refinement adds (never removes) wirelength.
	if resOn.Metrics.WL < resOff.Metrics.WL {
		t.Errorf("refinement reduced WL: %v < %v", resOn.Metrics.WL, resOff.Metrics.WL)
	}
}

func TestRoundTripDesignFile(t *testing.T) {
	d := scaledDesign(2, 0.02)
	path := t.TempDir() + "/d.json"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDesign(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNets() != d.NumNets() {
		t.Error("round trip mismatch")
	}
}
