// Package streak is a from-scratch reproduction of "Streak: Synergistic
// Topology Generation and Route Synthesis for On-Chip Performance-Critical
// Signal Groups" (Liu et al., DAC 2017 / TCAD 2018).
//
// Streak routes signal groups — bundles of performance-critical bits whose
// pins sit in adjacent locations and which must share common routing
// topologies for inter-bit regularity. The flow identifies isomorphic bits
// into routing objects, generates backbone Steiner topologies with
// equivalent per-bit copies, selects one 3-D layer-assigned candidate per
// object under edge-capacity constraints (by a fast primal-dual algorithm
// or an exact ILP), and post-optimizes with congestion-driven clustering
// and source-to-sink distance refinement.
//
// Quick start:
//
//	design := streak.GenerateIndustry(1)          // or streak.LoadDesign(path)
//	result, err := streak.Route(design, streak.DefaultOptions())
//	if err != nil { ... }
//	fmt.Printf("routed %.2f%% of groups, WL %.0f, Avg(Reg) %.2f%%\n",
//	    result.Metrics.RouteFrac*100, result.Metrics.WL, result.Metrics.AvgReg*100)
package streak

import (
	"context"
	"io"

	"repro/internal/audit"
	"repro/internal/baseline"
	"repro/internal/benchgen"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/postopt"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/signal"
	"repro/internal/viz"
)

// Design model types. A Design is a routing grid spec plus signal groups;
// every Group holds Bits (nets), every Bit holds Pins with a driver index.
type (
	// Design is a complete routing problem.
	Design = signal.Design
	// Group is a signal group (Definition 1 of the paper).
	Group = signal.Group
	// Bit is one signal net: a driver pin plus sinks.
	Bit = signal.Bit
	// Pin is one terminal at a G-cell location.
	Pin = signal.Pin
	// GridSpec describes the routing fabric of a design.
	GridSpec = signal.GridSpec
	// Blockage reduces edge capacity inside a rectangle on one layer.
	Blockage = signal.Blockage
)

// Flow types.
type (
	// Options configures a Streak run; see DefaultOptions.
	Options = core.Options
	// Result carries the routing, usage, statistics and metrics of a run.
	Result = core.Result
	// Method selects the candidate-selection solver.
	Method = core.Method
	// Metrics is one evaluation row (Route %, WL, Avg(Reg), Vio(dst), ...).
	Metrics = metrics.Metrics
	// BenchmarkSpec parametrizes the synthetic industrial benchmark
	// generator.
	BenchmarkSpec = benchgen.Spec
	// Fallback configures graceful solver degradation; see core.Fallback.
	Fallback = core.Fallback
	// AuditMode selects the post-solve legality audit behaviour.
	AuditMode = core.AuditMode
	// AuditReport is the structured legality report of a routing.
	AuditReport = audit.Report
	// ExhaustedError reports that every rung of the fallback chain failed;
	// it carries the per-rung attempts for diagnosis.
	ExhaustedError = core.ExhaustedError
)

// Solver methods.
const (
	// PrimalDual is the paper's fast flow (Algorithm 2).
	PrimalDual = core.PrimalDual
	// ILP solves formulation (3) exactly.
	ILP = core.ILP
	// Hierarchical is the divide-and-conquer exact flow (paper §VI).
	Hierarchical = core.Hierarchical
)

// Audit modes.
const (
	// AuditOff skips the post-solve legality audit.
	AuditOff = core.AuditOff
	// AuditWarn attaches the legality report to the result.
	AuditWarn = core.AuditWarn
	// AuditStrict fails the run on any legality violation.
	AuditStrict = core.AuditStrict
)

// DefaultOptions returns the full Streak flow configuration: primal-dual
// selection followed by the complete post-optimization stage.
func DefaultOptions() Options {
	return Options{
		Method:     PrimalDual,
		PostOpt:    true,
		Clustering: true,
		Refinement: true,
	}
}

// Route runs the Streak flow on a design.
func Route(d *Design, opt Options) (*Result, error) {
	return core.Run(d, opt)
}

// RouteCtx runs the Streak flow honoring the context: cancellation and
// deadlines propagate through every solve stage, so the call returns
// promptly with ctx's error when the caller gives up.
func RouteCtx(ctx context.Context, d *Design, opt Options) (*Result, error) {
	return core.RunCtx(ctx, d, opt)
}

// AuditRouting independently re-checks the legality of a result: usage is
// re-derived from the routed geometry, per-edge per-layer capacity, per-bit
// pin connectivity, and layer-range legality are all verified.
func AuditRouting(res *Result) AuditReport {
	return audit.Check(res.Problem.Design, res.Problem.Grid, res.Routing)
}

// LoadDesign reads a design from a JSON file (see Design.SaveFile).
func LoadDesign(path string) (*Design, error) {
	return signal.LoadFile(path)
}

// GenerateIndustry generates the synthetic stand-in for the paper's
// benchmark Industry<n> (n in 1..7); see internal/benchgen for how the
// published statistics are matched.
func GenerateIndustry(n int) *Design {
	return benchgen.Industry(n).Generate()
}

// IndustrySpec returns the generator spec of benchmark Industry<n> so
// callers can scale it (Spec fields are documented in the benchgen
// package).
func IndustrySpec(n int) BenchmarkSpec {
	return benchgen.Industry(n)
}

// ManualBaseline routes the design with the capacity-oblivious sequential
// baseline that stands in for the paper's manual designs: 100 % routed,
// minimal wirelength, overflow permitted.
func ManualBaseline(d *Design) (*Result, error) {
	p, err := route.Build(d, route.Options{})
	if err != nil {
		return nil, err
	}
	b := baseline.Route(p)
	res := &Result{
		Problem: p,
		Routing: b.Routing,
		Usage:   b.Usage,
		Runtime: b.Runtime,
	}
	res.Metrics = metrics.Compute(d, b.Routing, b.Usage, postopt.Options{})
	res.Metrics.Runtime = b.Runtime
	res.VioBefore = res.Metrics.VioDst
	return res, nil
}

// WriteHeatmap renders the result's congestion map as ASCII art (the
// textual analogue of the paper's Figs. 11 and 12) with at most maxDim
// rows/columns.
func WriteHeatmap(w io.Writer, res *Result, maxDim int) {
	report.Heatmap(w, res.Usage, maxDim)
}

// WriteSVG renders the result's routed geometry as an SVG image: one
// color per group, drivers as squares, sinks as dots, with G-cells tinted
// by track utilization behind the wires.
func WriteSVG(w io.Writer, res *Result) error {
	return viz.WriteSVG(w, res.Problem.Design, res.Routing, viz.Options{
		ShowUnrouted: true,
		Usage:        res.Usage,
	})
}

// NewUsageOf re-derives a fresh usage tracker from a result's routing —
// useful for verifying legality independently of the solver's bookkeeping.
func NewUsageOf(res *Result) *grid.Usage {
	return res.Routing.UsageOf(res.Problem.Grid)
}
