package streak

// Benchmarks regenerating the paper's tables and figures at reduced scale
// (go test -bench=. -benchmem). Each benchmark measures the work behind
// one table or figure of §V; the cmd/experiments binary prints the full
// paper-style rows. Custom per-op metrics report the quality numbers
// (route %, regularity, violations) alongside runtime.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/benchgen"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/hier"
	"repro/internal/metrics"
	"repro/internal/pd"
	"repro/internal/postopt"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/solvecache"
	"repro/internal/steiner"

	"repro/internal/geom"
)

// benchScale keeps the full bench suite fast enough for CI while
// preserving every comparison's shape.
const benchScale = 0.06

func benchProblem(b *testing.B, n int) *route.Problem {
	b.Helper()
	d := benchgen.Scale(benchgen.Industry(n), benchScale).Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTable1Manual measures the manual-design baseline rows of
// Table I.
func BenchmarkTable1Manual(b *testing.B) {
	for _, n := range []int{1, 5} {
		b.Run(fmt.Sprintf("Industry%d", n), func(b *testing.B) {
			p := benchProblem(b, n)
			b.ResetTimer()
			var m metrics.Metrics
			for i := 0; i < b.N; i++ {
				res := baseline.Route(p)
				m = metrics.Compute(p.Design, res.Routing, res.Usage, postopt.Options{})
			}
			b.ReportMetric(m.RouteFrac*100, "route%")
			b.ReportMetric(float64(m.Overflow), "overflow")
		})
	}
}

// BenchmarkTable1PrimalDual measures the primal-dual rows of Table I.
func BenchmarkTable1PrimalDual(b *testing.B) {
	for _, n := range []int{1, 3, 5, 7} {
		b.Run(fmt.Sprintf("Industry%d", n), func(b *testing.B) {
			p := benchProblem(b, n)
			b.ResetTimer()
			var m metrics.Metrics
			for i := 0; i < b.N; i++ {
				res := pd.Solve(p)
				r := p.ExtractRouting(res.Assignment)
				m = metrics.Compute(p.Design, r, r.UsageOf(p.Grid), postopt.Options{})
			}
			b.ReportMetric(m.RouteFrac*100, "route%")
			b.ReportMetric(m.AvgReg*100, "reg%")
		})
	}
}

// BenchmarkTable1ILP measures the exact ILP rows of Table I (with a small
// time limit; congested cases hit it like the paper's > 3600 s rows).
func BenchmarkTable1ILP(b *testing.B) {
	for _, n := range []int{1, 7} {
		b.Run(fmt.Sprintf("Industry%d", n), func(b *testing.B) {
			p := benchProblem(b, n)
			warm := pd.Solve(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exact.Solve(p, exact.Options{
					TimeLimit: 2 * time.Second,
					WarmStart: &warm.Assignment,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2PostOpt measures the full Table II flow: primal-dual plus
// clustering plus refinement.
func BenchmarkTable2PostOpt(b *testing.B) {
	for _, n := range []int{1, 6} {
		b.Run(fmt.Sprintf("Industry%d", n), func(b *testing.B) {
			p := benchProblem(b, n)
			b.ResetTimer()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.RunProblem(p, core.Options{
					Method: core.PrimalDual, PostOpt: true, Clustering: true, Refinement: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.VioBefore), "vioBefore")
			b.ReportMetric(float64(res.Metrics.VioDst), "vioAfter")
		})
	}
}

// BenchmarkFig11Heatmap and BenchmarkFig12Heatmap measure the congestion
// map generation for Industry7 and Industry6.
func BenchmarkFig11Heatmap(b *testing.B) { benchHeatmap(b, 7) }

// BenchmarkFig12Heatmap is the Industry6 (congested) variant.
func BenchmarkFig12Heatmap(b *testing.B) { benchHeatmap(b, 6) }

func benchHeatmap(b *testing.B, n int) {
	p := benchProblem(b, n)
	man := baseline.Route(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.Heatmap(io.Discard, man.Usage, 56)
	}
}

// BenchmarkFig13Scalability measures primal-dual runtime growth with pin
// count — the scalability study. Sub-benchmarks are labeled with the total
// pin count; compare ns/op across them for the Fig. 13 curve.
func BenchmarkFig13Scalability(b *testing.B) {
	for _, f := range []float64{0.03, 0.06, 0.12} {
		spec := benchgen.Scale(benchgen.Industry(2), f)
		d := spec.Generate()
		p, err := route.Build(d, route.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("pins=%d", d.NumPins()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pd.Solve(p)
			}
		})
	}
}

// BenchmarkFig14Clustering measures the clustering ablation: the post
// flow with and without bottom-up clustering.
func BenchmarkFig14Clustering(b *testing.B) {
	for _, clustering := range []bool{false, true} {
		b.Run(fmt.Sprintf("clustering=%v", clustering), func(b *testing.B) {
			p := benchProblem(b, 6)
			b.ResetTimer()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.RunProblem(p, core.Options{
					Method: core.PrimalDual, PostOpt: true, Clustering: clustering, Refinement: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Metrics.RouteFrac*100, "route%")
			b.ReportMetric(res.Metrics.AvgReg*100, "reg%")
		})
	}
}

// BenchmarkFig15Refinement measures the refinement ablation: violations
// and wirelength with and without the detour stage.
func BenchmarkFig15Refinement(b *testing.B) {
	for _, refine := range []bool{false, true} {
		b.Run(fmt.Sprintf("refine=%v", refine), func(b *testing.B) {
			p := benchProblem(b, 7)
			b.ResetTimer()
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = core.RunProblem(p, core.Options{
					Method: core.PrimalDual, PostOpt: true, Clustering: true, Refinement: refine,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Metrics.VioDst), "vio")
			b.ReportMetric(res.Metrics.WL/1e5, "WLe5")
		})
	}
}

// BenchmarkAblationBendCost compares backbone generation with and without
// the bend cost (DESIGN.md ablation: bend-aware BI1S matters for signal
// groups because every bend becomes a via stack on every bit).
func BenchmarkAblationBendCost(b *testing.B) {
	pins := []geom.Point{
		geom.Pt(0, 0), geom.Pt(14, 3), geom.Pt(7, 9), geom.Pt(20, 12), geom.Pt(3, 17),
	}
	for _, w := range []int{0, 4} {
		b.Run(fmt.Sprintf("bendWeight=%d", w), func(b *testing.B) {
			var t geom.Tree
			for i := 0; i < b.N; i++ {
				t = steiner.Iterated1Steiner(pins, steiner.Options{BendWeight: w})
			}
			b.ReportMetric(float64(t.Bends()), "bends")
			b.ReportMetric(float64(t.WireLength()), "wl")
		})
	}
}

// BenchmarkAblationCandidates sweeps the candidate budget per object
// (DESIGN.md ablation: more candidates buy routability at build cost).
func BenchmarkAblationCandidates(b *testing.B) {
	d := benchgen.Scale(benchgen.Industry(5), benchScale).Generate()
	for _, maxC := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("maxCandidates=%d", maxC), func(b *testing.B) {
			// Design generation above is setup, not the measured
			// build+solve work.
			b.ResetTimer()
			var routeFrac float64
			for i := 0; i < b.N; i++ {
				p, err := route.Build(d, route.Options{MaxCandidates: maxC})
				if err != nil {
					b.Fatal(err)
				}
				res := pd.Solve(p)
				r := p.ExtractRouting(res.Assignment)
				routeFrac = metrics.Compute(d, r, nil, postopt.Options{}).RouteFrac
			}
			b.ReportMetric(routeFrac*100, "route%")
		})
	}
}

// BenchmarkAblationRegWeight sweeps the regularity weight in the selection
// objective (DESIGN.md ablation: the knob trades Avg(Reg) against cost).
func BenchmarkAblationRegWeight(b *testing.B) {
	d := benchgen.Scale(benchgen.Industry(7), benchScale).Generate()
	for _, w := range []float64{1, 20, 200} {
		b.Run(fmt.Sprintf("regWeight=%v", w), func(b *testing.B) {
			p, err := route.Build(d, route.Options{RegWeight: w})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var reg float64
			for i := 0; i < b.N; i++ {
				res := pd.Solve(p)
				r := p.ExtractRouting(res.Assignment)
				reg = metrics.AvgReg(d, r)
			}
			b.ReportMetric(reg*100, "reg%")
		})
	}
}

// BenchmarkBuildParallel measures the candidate-generation fan-out of
// route.Build on Industry7: Workers=1 is the sequential baseline,
// Workers=GOMAXPROCS the parallel build. Candidate sets are bit-identical
// across worker counts, so ns/op is the only thing that moves.
func BenchmarkBuildParallel(b *testing.B) {
	d := benchgen.Scale(benchgen.Industry(7), benchScale).Generate()
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := route.Build(d, route.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPairCost measures the dense pair-cost kernel: one op is a full
// pricing sweep over every partnered candidate pair, the access pattern of
// the primal-dual and tile solvers.
func BenchmarkPairCost(b *testing.B) {
	p := benchProblem(b, 7)
	b.ResetTimer()
	var sink float64
	lookups := 0
	for n := 0; n < b.N; n++ {
		lookups = 0
		for i := range p.Cands {
			for _, q := range p.Partners(i) {
				if q < i {
					continue
				}
				for j := range p.Cands[i] {
					for r := range p.Cands[q] {
						sink += p.PairCost(i, j, q, r)
						lookups++
					}
				}
			}
		}
	}
	if sink == 0 {
		b.Log("all pair costs zero") // keep the loop un-eliminated
	}
	b.ReportMetric(float64(lookups), "lookups/op")
}

// BenchmarkHierarchicalVsMonolithic compares the paper's future-work
// divide-and-conquer exact flow (§VI) against the monolithic ILP on the
// same problem: tiles shrink each model so the exact solver finishes where
// the whole-design formulation would time out.
func BenchmarkHierarchicalVsMonolithic(b *testing.B) {
	p := benchProblem(b, 3)
	warm := pd.Solve(p)
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.Solve(p, exact.Options{
				TimeLimit: 2 * time.Second,
				WarmStart: &warm.Assignment,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, tiles := range []int{2, 4} {
		b.Run(fmt.Sprintf("tiles=%d", tiles), func(b *testing.B) {
			var res hier.Result
			for i := 0; i < b.N; i++ {
				res = hier.Solve(p, hier.Options{Tiles: tiles, TimePerTile: time.Second})
			}
			b.ReportMetric(float64(res.Assignment.RoutedObjects()), "routedObjs")
		})
	}
}

// BenchmarkCacheHit measures the content-addressed solve cache's exact-hit
// path against the cold solve it replaces on the same design
// (BenchmarkBuildParallel's Industry7 preset). The hit serves a cached
// Result after one key computation — a canonicalization hash over the
// design — so the cold/hit ratio is the interactive-serving win for
// resubmitted designs.
func BenchmarkCacheHit(b *testing.B) {
	ctx := context.Background()
	d := benchgen.Scale(benchgen.Industry(7), benchScale).Generate()
	opt := core.Options{}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunCtx(ctx, d, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		sv := solvecache.NewSolver(solvecache.NewCache(4))
		if _, _, err := sv.Solve(ctx, d, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, outcome, err := sv.Solve(ctx, d, opt)
			if err != nil {
				b.Fatal(err)
			}
			if outcome != solvecache.OutcomeHit {
				b.Fatalf("outcome %q, want hit", outcome)
			}
			_ = res
		}
	})
}
