package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/server"
)

// startDaemon runs streakd with the args on an ephemeral port and returns
// its base URL, the signal channel that triggers shutdown, the exit-code
// channel and the captured output streams.
func startDaemon(t *testing.T, extra ...string) (string, chan os.Signal, chan int, *syncBuffer, *syncBuffer) {
	t.Helper()
	sigs := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	var stdout, stderr syncBuffer
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { exit <- run(args, &stdout, &stderr, sigs, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, sigs, exit, &stdout, &stderr
	case code := <-exit:
		t.Fatalf("streakd exited before listening: code %d\nstderr: %s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("streakd never became ready")
	}
	panic("unreachable")
}

// syncBuffer makes the output buffers safe against the daemon goroutine
// writing while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSmoke is the end-to-end acceptance run: start the daemon, POST a
// design, assert a 200 with a clean audit verdict, then SIGTERM and assert
// a clean exit.
func TestSmoke(t *testing.T) {
	base, sigs, exit, _, _ := startDaemon(t)

	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	var body bytes.Buffer
	if err := d.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/route", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /route = %d\n%s", resp.StatusCode, raw)
	}
	var rr server.RouteResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatalf("decode: %v\n%s", err, raw)
	}
	if rr.AuditOK == nil || !*rr.AuditOK {
		t.Errorf("audit not clean: %s", raw)
	}
	if rr.Metrics.RoutedGroups == 0 {
		t.Error("nothing routed")
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, resp.StatusCode)
		}
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("streakd did not exit after SIGTERM")
	}
}

// TestFaultInjectFlagArmsPlan boots with an armed panic fault and asserts
// the request dies with 500 while the daemon survives to serve the next.
func TestFaultInjectFlagArmsPlan(t *testing.T) {
	base, sigs, exit, _, stderr := startDaemon(t, "-faultinject", "route.build=panic#1")

	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	post := func() (*http.Response, string) {
		t.Helper()
		var body bytes.Buffer
		if err := d.WriteJSON(&body); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/route", "application/json", &body)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(raw)
	}

	resp, raw := post()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted request = %d, want 500\n%s", resp.StatusCode, raw)
	}
	resp, raw = post()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic = %d, want 200\n%s", resp.StatusCode, raw)
	}

	sigs <- syscall.SIGTERM
	if code := <-exit; code != 0 {
		t.Errorf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fault plan armed") {
		t.Errorf("stderr does not announce the fault plan: %s", stderr.String())
	}
}

// TestJobsDurableAcrossRestart: with -jobs-dir set, a completed async job
// survives a clean daemon restart — the second instance replays the WAL
// and serves the result without re-solving.
func TestJobsDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	base, sigs, exit, stdout, _ := startDaemon(t, "-jobs-dir", dir)
	if !strings.Contains(stdout.String(), "durable jobs WAL") {
		t.Errorf("stdout does not announce the WAL: %s", stdout.String())
	}

	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	var body bytes.Buffer
	if err := d.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d\n%s", resp.StatusCode, raw)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatalf("decode: %v\n%s", err, raw)
	}

	getJob := func(base string) (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(base + "/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, m := getJob(base)
		if string(m["state"]) == `"SUCCEEDED"` {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never succeeded: %s", m["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}

	sigs <- syscall.SIGTERM
	if code := <-exit; code != 0 {
		t.Fatalf("first instance exit = %d, want 0", code)
	}

	// Same WAL directory, fresh process: the job's terminal state and
	// result must come back from the journal.
	base2, sigs2, exit2, _, _ := startDaemon(t, "-jobs-dir", dir)
	code, m := getJob(base2)
	if code != http.StatusOK || string(m["state"]) != `"SUCCEEDED"` {
		t.Errorf("after restart: %d %s", code, m["state"])
	}
	if len(m["result"]) == 0 {
		t.Error("restarted daemon lost the job result")
	}
	sigs2 <- syscall.SIGTERM
	if code := <-exit2; code != 0 {
		t.Errorf("second instance exit = %d, want 0", code)
	}
}

// TestBadFlagsExitNonzero covers flag/spec validation paths.
func TestBadFlagsExitNonzero(t *testing.T) {
	cases := [][]string{
		{"-method", "quantum"},
		{"-audit", "maybe"},
		{"-faultinject", "bogus.point=panic"},
		{"-faultinject", "pd.solve=frobnicate"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(args, &stdout, &stderr, make(chan os.Signal), nil)
			if code == 0 {
				t.Errorf("run(%v) = 0, want nonzero", args)
			}
			if stderr.Len() == 0 {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}

// TestDrainTimeoutCancelsStragglers pins the shutdown path under a stuck
// solve: a fault-stalled request outlives -drain-timeout, the daemon
// cancels it and exits nonzero to flag the dirty drain.
func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	base, sigs, exit, stdout, _ := startDaemon(t,
		"-faultinject", "pd.solve=delay:300s#1",
		"-drain-timeout", "200ms",
		"-solve-timeout", "600s",
	)

	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	var body bytes.Buffer
	if err := d.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/route", "application/json", &body)
		if err != nil {
			reqDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()

	// Wait for the request to occupy its slot before signaling.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h server.Health
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if h.Inflight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled request never showed up in /healthz")
		}
		time.Sleep(5 * time.Millisecond)
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code == 0 {
			t.Error("exit code = 0, want nonzero after a dirty drain")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon hung on a straggler despite the drain timeout")
	}
	if status := <-reqDone; status == http.StatusOK {
		t.Error("canceled straggler reported 200")
	}
	if !strings.Contains(stdout.String(), "draining") {
		t.Errorf("stdout missing drain announcement: %s", stdout.String())
	}
}
