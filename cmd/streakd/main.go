// Command streakd serves the Streak flow over HTTP: POST a design JSON to
// /route and get the routed metrics, the solver's degradation history and
// an independent legality verdict back.
//
// Usage:
//
//	streakd [-addr :8080] [-max-inflight 4] [-queue 8] [-queue-wait 5s]
//	        [-solve-timeout 60s] [-drain-timeout 30s]
//	        [-method pd|ilp|hier] [-audit off|warn|strict] [-fallback]
//	        [-workers 0] [-ilptime 60s] [-faultinject SPEC]
//	        [-jobs-dir DIR] [-job-retries 3] [-job-workers 2]
//	        [-cache-size 64] [-telemetry-dir DIR] [-telemetry-buffer 256]
//	        [-record-dir DIR] [-record-segment-kb 4096] [-record-retain 8]
//
// The service is built for rough weather: concurrency is bounded by
// -max-inflight, excess requests wait in a bounded queue and are shed with
// 429 + Retry-After when it overflows, every solve runs under
// -solve-timeout, request panics become 500s without killing the process,
// and SIGTERM/SIGINT triggers a graceful drain (readiness flips first, in-
// flight solves get -drain-timeout to finish, stragglers are canceled).
//
// Beyond the synchronous POST /route, the daemon runs a durable async
// tier: POST /jobs returns a job ID immediately (an Idempotency-Key header
// makes client retries safe), GET /jobs/{id} polls status + result, DELETE
// cancels, and GET /jobs/{id}/events streams live solver progress. With
// -jobs-dir set, every job state transition is journaled to a checksummed
// fsync'd WAL in that directory and replayed at boot, so a crash or
// restart recovers unfinished jobs — interrupted solves retry with
// exponential backoff up to -job-retries attempts. Without -jobs-dir the
// tier runs on an in-memory store (no durability).
//
// Solves are served through a content-addressed cache (bounded by
// -cache-size): identical designs hit instantly, and near-duplicates — the
// same floorplan after a moved group or an added/removed blockage — are
// re-routed incrementally from the cached base, with every incremental
// result gated by the independent legality audit. Disable per request with
// ?cache=off, or globally with -cache-size -1.
//
// /healthz reports liveness with counters (including cache hit/miss/
// incremental statistics); /readyz reports admission capacity for
// load-balancer rotation (not-ready until WAL replay completes at boot);
// /metrics is Prometheus text exposition of the same plus the
// process-lifetime solver counter aggregate.
//
// With -telemetry-dir set, every solve (synchronous and async attempts
// alike) is distilled into the telemetry lake: an embedded append-only
// segment store with crash-safe replay, queried via
// /telemetry/v1/series and /telemetry/v1/bench/trajectory and browsed
// at /debug/telemetry. The producer never blocks a solve — a full
// buffer (-telemetry-buffer) drops the record and counts the drop.
//
// With -record-dir set, every accepted (validated) /route and /jobs body
// is captured into a bounded ring of JSONL segments in that directory —
// raw material for record/replay load testing: cmd/streakload -replay
// fires a captured window back at a daemon with the original spacing.
//
// -faultinject arms deterministic faults at the compiled-in chaos sites
// (see internal/faultinject; e.g. "pd.solve=delay:2s@3" stalls the third
// primal-dual solve) — the knob the chaos suite and smoke tests turn.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/telemetry"

	streak "repro"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sigs, nil))
}

// run is main with its environment injected: argument list, output
// streams, the shutdown-signal channel and an optional ready channel that
// receives the bound address once the listener is up (tests and smoke
// scripts use -addr 127.0.0.1:0 and read the real port from it).
func run(args []string, stdout, stderr io.Writer, sigs <-chan os.Signal, ready chan<- string) int {
	fs := flag.NewFlagSet("streakd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		maxInflight  = fs.Int("max-inflight", 4, "maximum concurrent solves")
		queue        = fs.Int("queue", 0, "maximum queued requests beyond -max-inflight (0 = 2*max-inflight)")
		queueWait    = fs.Duration("queue-wait", 5*time.Second, "how long a queued request may wait for a solve slot before being shed")
		solveTimeout = fs.Duration("solve-timeout", 60*time.Second, "per-request solve deadline")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight solves on shutdown before they are canceled")
		method       = fs.String("method", "pd", "default selection solver: pd, ilp or hier (per-request ?method= overrides)")
		auditMode    = fs.String("audit", "warn", "default legality audit mode: off, warn or strict (per-request ?audit= overrides)")
		fallbackOn   = fs.Bool("fallback", true, "degrade ilp -> hier -> pd on solver failure instead of failing the request")
		workers      = fs.Int("workers", 0, "parallel workers for problem build and hier tile solves (0 = GOMAXPROCS)")
		ilpTime      = fs.Duration("ilptime", 60*time.Second, "ILP time limit within the solve deadline")
		faultSpec    = fs.String("faultinject", "", "arm deterministic faults, e.g. 'pd.solve=delay:2s@3;exact.solve=panic' (chaos testing)")
		jobsDir      = fs.String("jobs-dir", "", "directory for the durable async-jobs WAL (empty = in-memory job store, no durability)")
		jobRetries   = fs.Int("job-retries", 3, "execution attempts per async job before it fails")
		jobWorkers   = fs.Int("job-workers", 2, "concurrent async job solves")
		cacheSize    = fs.Int("cache-size", 0, "content-addressed solve cache entries (0 = default 64, negative disables; per-request ?cache=off opts out)")
		telemDir     = fs.String("telemetry-dir", "", "directory for the telemetry lake's segment store (empty disables the lake)")
		telemBuffer  = fs.Int("telemetry-buffer", 256, "telemetry client buffer; pushes beyond it are dropped, never awaited")
		telemSegMB   = fs.Int("telemetry-segment-mb", 2, "telemetry segment rotation size in MiB")
		telemKeep    = fs.Int("telemetry-retain", 16, "telemetry segments kept; rotation retires the oldest beyond this")
		telemMaxAge  = fs.Duration("telemetry-max-age", 0, "retire telemetry segments whose newest record is older than this (0 = keep until -telemetry-retain evicts)")
		recordDir    = fs.String("record-dir", "", "capture accepted /route and /jobs request bodies into a bounded ring of JSONL segments in this directory (replay with streakload -replay)")
		recordSegKB  = fs.Int("record-segment-kb", 4096, "capture segment rotation size in KiB")
		recordKeep   = fs.Int("record-retain", 8, "capture segments kept; rotation deletes the oldest beyond this")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opt, err := flowOptions(*method, *auditMode, *fallbackOn, *workers, *ilpTime)
	if err != nil {
		fmt.Fprintln(stderr, "streakd:", err)
		return 2
	}

	base := context.Background()
	if *faultSpec != "" {
		plan, err := faultinject.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, "streakd:", err)
			return 2
		}
		base = faultinject.With(base, plan)
		fmt.Fprintf(stderr, "streakd: fault plan armed: %s\n", *faultSpec)
	}

	logf := func(format string, a ...any) {
		fmt.Fprintf(stderr, "streakd: "+format+"\n", a...)
	}
	var store jobs.Store = jobs.NewMemStore()
	if *jobsDir != "" {
		wal, err := jobs.OpenWAL(*jobsDir, logf)
		if err != nil {
			fmt.Fprintln(stderr, "streakd:", err)
			return 1
		}
		defer wal.Close()
		store = wal
		fmt.Fprintf(stdout, "streakd: durable jobs WAL at %s (retries %d)\n", *jobsDir, *jobRetries)
	}

	var telem *telemetry.Service
	if *telemDir != "" {
		store, err := telemetry.OpenStore(telemetry.StoreConfig{
			Dir:          *telemDir,
			SegmentBytes: int64(*telemSegMB) << 20,
			MaxSegments:  *telemKeep,
			MaxAge:       *telemMaxAge,
			Logf:         logf,
		})
		if err != nil {
			fmt.Fprintln(stderr, "streakd:", err)
			return 1
		}
		telem = telemetry.NewService(store, *telemBuffer, logf)
		st := store.Stats()
		fmt.Fprintf(stdout, "streakd: telemetry lake at %s (%d records replayed, %d segments)\n",
			*telemDir, st.Records, st.Segments)
	}

	var recorder server.RequestRecorder
	if *recordDir != "" {
		cap, err := scenario.OpenCapture(*recordDir, int64(*recordSegKB)<<10, *recordKeep)
		if err != nil {
			fmt.Fprintln(stderr, "streakd:", err)
			return 1
		}
		defer cap.Close()
		recorder = cap
		fmt.Fprintf(stdout, "streakd: recording accepted requests to %s (ring of %d x %d KiB segments)\n",
			*recordDir, *recordKeep, *recordSegKB)
	}

	s := server.New(server.Config{
		MaxInflight:  *maxInflight,
		QueueDepth:   *queue,
		QueueWait:    *queueWait,
		SolveTimeout: *solveTimeout,
		Options:      opt,
		// The -audit flag is authoritative, including "off".
		AuditConfigured: true,
		BaseContext:     base,
		JobStore:        store,
		JobRetries:      *jobRetries,
		JobWorkers:      *jobWorkers,
		CacheSize:       *cacheSize,
		Telemetry:       telem,
		Recorder:        recorder,
		Logf:            logf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "streakd:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(stdout, "streakd: listening on %s (max-inflight %d, queue %d, solve-timeout %s)\n",
		ln.Addr(), s.Stats().MaxInflight, s.Stats().QueueDepth, *solveTimeout)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "streakd:", err)
		return 1
	case sig := <-sigs:
		fmt.Fprintf(stdout, "streakd: %s received, draining (grace %s)\n", sig, *drainTimeout)
	}

	// Graceful shutdown: stop admitting (readyz flips to 503 and queued
	// requests release with 503), give in-flight solves the grace period,
	// then hard-cancel stragglers so the process always exits.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	// The solves are done or canceled; closing the HTTP side is now quick.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(stderr, "streakd: shutdown:", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "streakd:", err)
	}
	if telem != nil {
		// Flush buffered telemetry into the lake before exit; a slow disk
		// gets a bounded grace, not a hung shutdown.
		tctx, tcancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := telem.Close(tctx); err != nil {
			fmt.Fprintln(stderr, "streakd: telemetry close:", err)
		}
		tcancel()
	}
	st := s.Stats()
	fmt.Fprintf(stdout, "streakd: drained (served %d, shed %d, failed %d, panics isolated %d)\n",
		st.Served, st.Shed, st.Failed, st.Panics)
	if drainErr != nil {
		fmt.Fprintf(stderr, "streakd: drain canceled stragglers: %v\n", drainErr)
		return 1
	}
	return 0
}

// flowOptions assembles the base flow configuration from the flags,
// mirroring cmd/streak's method setup.
func flowOptions(method, auditMode string, fallback bool, workers int, ilpTime time.Duration) (core.Options, error) {
	opt := streak.DefaultOptions()
	switch method {
	case "pd":
	case "ilp":
		opt.Method = core.ILP
		opt.ILPTimeLimit = ilpTime
		opt.ILPWarmStart = true
	case "hier":
		opt.Method = core.Hierarchical
		opt.HierTimePerTile = ilpTime / 4
	default:
		return opt, fmt.Errorf("unknown method %q (want pd, ilp or hier)", method)
	}
	switch auditMode {
	case "off":
	case "warn":
		opt.Audit = core.AuditWarn
	case "strict":
		opt.Audit = core.AuditStrict
	default:
		return opt, fmt.Errorf("unknown audit mode %q (want off, warn or strict)", auditMode)
	}
	opt.Route.Workers = workers
	opt.HierWorkers = workers
	opt.Fallback = core.Fallback{Enabled: fallback}
	return opt, nil
}
