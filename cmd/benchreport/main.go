// Command benchreport is the repo's perf-regression harness. It runs the
// Go benchmarks, folds in domain quality metrics from an in-process routing
// run, and writes a schema-versioned BENCH_<date>.json artifact; with
// -compare it diffs against a previous artifact and exits non-zero when a
// metric regressed past the threshold.
//
// Usage:
//
//	benchreport                              # run benchmarks, write BENCH_<date>.json
//	benchreport -domain -industry 3          # also record routing quality
//	benchreport -compare BENCH_old.json      # run, then diff against a baseline
//	benchreport -in BENCH_new.json -compare BENCH_old.json   # diff two artifacts, no run
//	benchreport -push http://localhost:8080  # also push the artifact into a streakd telemetry lake
//
// Exit codes: 0 ok, 1 operational error, 2 bad usage, 3 regression found.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/benchreport"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		benchRe   = flag.String("bench", "BenchmarkTable1PrimalDual|BenchmarkPairCost|BenchmarkBuildParallel|BenchmarkCacheHit|BenchmarkCapacityIntersect|BenchmarkTreeArena|BenchmarkBBNode", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "value passed to go test -benchtime")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "", "output artifact path (default BENCH_<date>.json; \"-\" for stdout)")
		in        = flag.String("in", "", "load this artifact instead of running benchmarks")
		compare   = flag.String("compare", "", "baseline artifact to diff against")
		threshold = flag.Float64("threshold", 0.30, "fractional move in the bad direction that counts as a regression")
		allocTh   = flag.Float64("alloc-threshold", 0.10, "regression threshold for allocs/op and B/op; tighter than -threshold because allocation counts are deterministic, so any growth is a real code-path change rather than timer noise")
		domain    = flag.Bool("domain", false, "also run the primal-dual flow in-process and record routing quality metrics")
		industry  = flag.Int("industry", 3, "Industry benchmark for -domain")
		scale     = flag.Float64("scale", 0.06, "benchmark scale for -domain")
		push      = flag.String("push", "", "push the artifact to a streakd telemetry lake at this base URL (e.g. http://localhost:8080)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "benchreport: unexpected arguments")
		return 2
	}
	if *in != "" && *domain {
		fmt.Fprintln(os.Stderr, "benchreport: -in and -domain are mutually exclusive (the artifact is already complete)")
		return 2
	}

	var file benchreport.File
	if *in != "" {
		loaded, err := loadFile(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			return 1
		}
		file = loaded
	} else {
		built, err := runBenchmarks(*benchRe, *benchtime, *pkg, *domain, *industry, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			return 1
		}
		file = built
		path := *out
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
		}
		if err := writeFile(path, file); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			return 1
		}
		if path != "-" {
			fmt.Printf("wrote %s (%d rows)\n", path, len(file.Benchmarks))
		}
	}

	if *push != "" {
		raw, err := json.Marshal(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			return 1
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := telemetry.PushBench(ctx, *push, raw); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: push: %v\n", err)
			return 1
		}
		fmt.Printf("pushed %d rows to %s\n", len(file.Benchmarks), *push)
	}

	if *compare == "" {
		return 0
	}
	baseline, err := loadFile(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		return 1
	}
	deltas := benchreport.CompareThresholds(baseline, file, benchreport.Thresholds{
		Default: *threshold,
		PerUnit: map[string]float64{"allocs/op": *allocTh, "B/op": *allocTh},
	})
	if len(deltas) == 0 {
		fmt.Println("no comparable rows between the artifacts")
		return 0
	}
	benchreport.WriteDeltas(os.Stdout, deltas)
	if regs := benchreport.Regressions(deltas); len(regs) > 0 {
		fmt.Printf("%d metric(s) regressed past %.0f%% (alloc metrics: %.0f%%)\n", len(regs), *threshold*100, *allocTh*100)
		return 3
	}
	fmt.Println("no regressions")
	return 0
}

// runBenchmarks shells out to go test, parses the rows and assembles the
// artifact (benchmarks, optional domain row, build labels, timestamp).
func runBenchmarks(benchRe, benchtime, pkg string, domain bool, industry int, scale float64) (benchreport.File, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", benchRe,
		"-benchtime", benchtime, "-benchmem", pkg)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return benchreport.File{}, fmt.Errorf("go test: %w\n%s", err, stdout.String())
	}
	rows, err := benchreport.ParseBenchOutput(&stdout)
	if err != nil {
		return benchreport.File{}, err
	}
	if len(rows) == 0 {
		return benchreport.File{}, fmt.Errorf("no benchmarks matched %q", benchRe)
	}
	if domain {
		row, err := benchreport.DomainMetrics(context.Background(), industry, scale)
		if err != nil {
			return benchreport.File{}, err
		}
		rows = append(rows, row)
	}
	return benchreport.File{
		Schema:      benchreport.SchemaVersion,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Labels:      obs.BuildInfoLabels(),
		Benchmarks:  rows,
	}, nil
}

func loadFile(path string) (benchreport.File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return benchreport.File{}, err
	}
	var f benchreport.File
	if err := json.Unmarshal(raw, &f); err != nil {
		return benchreport.File{}, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema > benchreport.SchemaVersion {
		return benchreport.File{}, fmt.Errorf("%s: schema %d is newer than this tool's %d", path, f.Schema, benchreport.SchemaVersion)
	}
	return f, nil
}

func writeFile(path string, f benchreport.File) error {
	if path == "-" {
		return encode(os.Stdout, f)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encode(out, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func encode(w *os.File, f benchreport.File) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
