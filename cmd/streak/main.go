// Command streak routes a signal-group design with the Streak flow and
// prints the resulting metrics and congestion map.
//
// Usage:
//
//	streak -design path/to/design.json [-method pd|ilp|hier] [-ilptime 60s]
//	       [-fallback] [-timeout 0] [-audit off|warn|strict] [-workers 0]
//	       [-nopost] [-heatmap] [-out routed.json]
//	       [-stats report.json] [-trace trace.json] [-debug-addr :6060]
//	streak -industry 3 [-scale 0.2] ...
//
// With -stats the run writes a JSON telemetry report (per-stage spans,
// solver counters, congestion snapshot, convergence series; see DESIGN.md
// "Observability" and "Tracing & convergence"). With -trace it writes a
// Chrome trace_event file of the same run — per-object and per-solver-step
// events nested under the stage spans — loadable in Perfetto
// (https://ui.perfetto.dev) or Chrome's about://tracing. With -debug-addr
// the run serves /debug/vars, /debug/streak and /debug/pprof/ for live
// inspection while the flow executes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchgen"
	"repro/internal/obs"

	streak "repro"
)

func main() {
	var (
		designPath = flag.String("design", "", "design JSON file to route")
		industry   = flag.Int("industry", 0, "generate Industry<n> benchmark (1..7) instead of loading a file")
		scale      = flag.Float64("scale", 1.0, "scale factor for generated benchmarks (0,1]")
		method     = flag.String("method", "pd", "selection solver: pd, ilp or hier")
		ilpTime    = flag.Duration("ilptime", 60*time.Second, "ILP time limit")
		timeout    = flag.Duration("timeout", 0, "overall deadline for the whole flow (0 = none)")
		fallback   = flag.Bool("fallback", false, "degrade ilp -> hier -> pd on solver failure instead of aborting")
		auditMode  = flag.String("audit", "off", "post-solve legality audit: off, warn or strict")
		workers    = flag.Int("workers", 0, "parallel workers for problem build and hier tile solves (0 = GOMAXPROCS, 1 = sequential)")
		noPost     = flag.Bool("nopost", false, "disable the post-optimization stage")
		heatmap    = flag.Bool("heatmap", false, "print the congestion heatmap")
		svgOut     = flag.String("svg", "", "write the routed design as SVG to this file")
		statsOut   = flag.String("stats", "", "write the run's telemetry report (stage spans, solver counters, congestion, convergence series) as JSON to this file")
		traceOut   = flag.String("trace", "", "write a Chrome trace_event JSON file of the run (open in Perfetto or about://tracing)")
		debugAddr  = flag.String("debug-addr", "", "serve the live debug endpoint (expvar, /debug/streak, net/http/pprof) on this address, e.g. :6060")
	)
	flag.Parse()

	design, err := loadDesign(*designPath, *industry, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streak:", err)
		os.Exit(1)
	}

	opt := streak.DefaultOptions()
	switch *method {
	case "pd":
	case "ilp":
		opt.Method = streak.ILP
		opt.ILPTimeLimit = *ilpTime
		opt.ILPWarmStart = true
	case "hier":
		opt.Method = streak.Hierarchical
		opt.HierTimePerTile = *ilpTime / 4
	default:
		fmt.Fprintf(os.Stderr, "streak: unknown method %q (want pd, ilp or hier)\n", *method)
		os.Exit(2)
	}
	opt.Route.Workers = *workers
	opt.HierWorkers = *workers
	if *noPost {
		opt.PostOpt = false
		opt.Clustering = false
		opt.Refinement = false
	}
	opt.Fallback = streak.Fallback{Enabled: *fallback}
	switch *auditMode {
	case "off":
	case "warn":
		opt.Audit = streak.AuditWarn
	case "strict":
		opt.Audit = streak.AuditStrict
	default:
		fmt.Fprintf(os.Stderr, "streak: unknown audit mode %q (want off, warn or strict)\n", *auditMode)
		os.Exit(2)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Telemetry: -stats and -debug-addr both hang a recorder on the
	// context; the pipeline stages pick it up via obs.FromContext.
	var rec *obs.Recorder
	if *statsOut != "" || *traceOut != "" || *debugAddr != "" {
		rec = obs.NewRecorder()
		rec.SetLabel("bench", design.Name)
		rec.SetLabel("method", opt.Method.String())
		rec.AnnotateBuildInfo()
		ctx = obs.WithRecorder(ctx, rec)
	}
	if *debugAddr != "" {
		srv, bound, err := obs.ServeDebug(*debugAddr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streak:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint on http://%s/debug/streak\n", bound)
	}

	res, err := streak.RouteCtx(ctx, design, opt)
	if rec != nil && (*statsOut != "" || *traceOut != "") {
		// Write the reports even on failure: the spans, counters and trace
		// up to the failing stage are exactly what a post-mortem needs.
		rep := rec.Report()
		if res != nil {
			rep.Congestion = obs.SnapshotCongestion(res.Usage, 16)
		}
		if *statsOut != "" {
			if werr := writeStats(*statsOut, rep); werr != nil {
				fmt.Fprintln(os.Stderr, "streak:", werr)
				os.Exit(1)
			}
		}
		if *traceOut != "" {
			if werr := writeTrace(*traceOut, rep); werr != nil {
				fmt.Fprintln(os.Stderr, "streak:", werr)
				os.Exit(1)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streak:", err)
		if res == nil {
			os.Exit(1)
		}
		// Strict-audit failures still carry the result; report it below so
		// the violations can be diagnosed, then exit nonzero.
	}

	m := res.Metrics
	fmt.Printf("design      %s (%d groups, %d nets, %d pins)\n", design.Name, m.Groups, m.Nets, m.Pins)
	fmt.Printf("method      %s%s\n", opt.Method, solverNote(res))
	fmt.Printf("route       %.2f%% (%d/%d groups)\n", m.RouteFrac*100, m.RoutedGroups, m.Groups)
	fmt.Printf("wirelength  %.2fe5\n", m.WL/1e5)
	fmt.Printf("avg(reg)    %.2f%%\n", m.AvgReg*100)
	fmt.Printf("vio(dst)    %d (before refinement: %d)\n", m.VioDst, res.VioBefore)
	fmt.Printf("overflow    %d (%d edges)\n", m.Overflow, m.OverflowEdges)
	fmt.Printf("runtime     %.2fs%s\n", res.Runtime.Seconds(), timedOutNote(res.TimedOut))
	for _, a := range res.Attempts {
		fmt.Printf("fallback    %s failed: %s\n", a.Solver, a.Err)
	}
	if res.Audit != nil {
		fmt.Printf("audit       %s\n", res.Audit.Summary())
		for _, v := range res.Audit.Violations {
			fmt.Printf("  violation %s\n", v)
		}
	}
	if *statsOut != "" {
		fmt.Printf("stats       %s\n", *statsOut)
	}
	if *traceOut != "" {
		fmt.Printf("trace       %s (open in Perfetto or about://tracing)\n", *traceOut)
	}
	if *heatmap {
		fmt.Println("\ncongestion map:")
		streak.WriteHeatmap(os.Stdout, res, 64)
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "streak:", err)
			os.Exit(1)
		}
		if err := streak.WriteSVG(f, res); err != nil {
			fmt.Fprintln(os.Stderr, "streak:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "streak:", err)
			os.Exit(1)
		}
		fmt.Printf("svg         %s\n", *svgOut)
	}
	if err != nil {
		os.Exit(1)
	}
}

// writeStats writes the telemetry report as indented JSON.
func writeStats(path string, rep obs.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace writes the run's Chrome trace_event file.
func writeTrace(path string, rep obs.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// solverNote annotates the method line when the fallback chain degraded.
func solverNote(res *streak.Result) string {
	if !res.Degraded {
		return ""
	}
	return fmt.Sprintf(" (degraded to %s)", res.SolverUsed)
}

func timedOutNote(timedOut bool) string {
	if timedOut {
		return " (ILP time limit reached; best feasible reported)"
	}
	return ""
}

func loadDesign(path string, industry int, scale float64) (*streak.Design, error) {
	switch {
	case path != "" && industry != 0:
		return nil, fmt.Errorf("use either -design or -industry, not both")
	case path != "":
		return streak.LoadDesign(path)
	case industry >= 1 && industry <= 7:
		spec := benchgen.Industry(industry)
		if scale < 1 {
			spec = benchgen.Scale(spec, scale)
		}
		return spec.Generate(), nil
	default:
		return nil, fmt.Errorf("need -design FILE or -industry N (1..7)")
	}
}
