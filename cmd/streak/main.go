// Command streak routes a signal-group design with the Streak flow and
// prints the resulting metrics and congestion map.
//
// Usage:
//
//	streak -design path/to/design.json [-method pd|ilp|hier] [-ilptime 60s]
//	       [-fallback] [-timeout 0] [-audit off|warn|strict] [-workers 0]
//	       [-nopost] [-heatmap] [-out routed.json]
//	       [-stats report.json] [-trace trace.json] [-debug-addr :6060]
//	       [-faultinject SPEC]
//	streak -industry 3 [-scale 0.2] ...
//
// With -stats the run writes a JSON telemetry report (per-stage spans,
// solver counters, congestion snapshot, convergence series; see DESIGN.md
// "Observability" and "Tracing & convergence"). With -trace it writes a
// Chrome trace_event file of the same run — per-object and per-solver-step
// events nested under the stage spans — loadable in Perfetto
// (https://ui.perfetto.dev) or Chrome's about://tracing. With -debug-addr
// the run serves /debug/vars, /debug/streak and /debug/pprof/ for live
// inspection while the flow executes.
//
// -faultinject arms deterministic faults at the compiled-in chaos sites
// (see internal/faultinject), e.g. "exact.solve=panic" to force the ILP
// rung onto the fallback chain — the knob the chaos suite turns.
//
// The command exits nonzero whenever no usable routing was produced: a
// failed run, an exhausted fallback chain (every failed rung is printed),
// or a deadline that expired before any group routed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchgen"
	"repro/internal/faultinject"
	"repro/internal/obs"

	streak "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected so tests can drive the whole
// command in-process and assert on exit codes and output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("streak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		designPath = fs.String("design", "", "design JSON file to route")
		industry   = fs.Int("industry", 0, "generate Industry<n> benchmark (1..7) instead of loading a file")
		scale      = fs.Float64("scale", 1.0, "scale factor for generated benchmarks (0,1]")
		method     = fs.String("method", "pd", "selection solver: pd, ilp or hier")
		ilpTime    = fs.Duration("ilptime", 60*time.Second, "ILP time limit")
		timeout    = fs.Duration("timeout", 0, "overall deadline for the whole flow (0 = none)")
		fallback   = fs.Bool("fallback", false, "degrade ilp -> hier -> pd on solver failure instead of aborting")
		auditMode  = fs.String("audit", "off", "post-solve legality audit: off, warn or strict")
		workers    = fs.Int("workers", 0, "parallel workers for problem build and hier tile solves (0 = GOMAXPROCS, 1 = sequential)")
		noPost     = fs.Bool("nopost", false, "disable the post-optimization stage")
		heatmap    = fs.Bool("heatmap", false, "print the congestion heatmap")
		svgOut     = fs.String("svg", "", "write the routed design as SVG to this file")
		statsOut   = fs.String("stats", "", "write the run's telemetry report (stage spans, solver counters, congestion, convergence series) as JSON to this file")
		traceOut   = fs.String("trace", "", "write a Chrome trace_event JSON file of the run (open in Perfetto or about://tracing)")
		debugAddr  = fs.String("debug-addr", "", "serve the live debug endpoint (expvar, /debug/streak, net/http/pprof) on this address, e.g. :6060")
		faultSpec  = fs.String("faultinject", "", "arm deterministic faults, e.g. 'exact.solve=panic;hier.tile=delay:2s' (chaos testing)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	design, err := loadDesign(*designPath, *industry, *scale)
	if err != nil {
		fmt.Fprintln(stderr, "streak:", err)
		return 1
	}

	opt := streak.DefaultOptions()
	switch *method {
	case "pd":
	case "ilp":
		opt.Method = streak.ILP
		opt.ILPTimeLimit = *ilpTime
		opt.ILPWarmStart = true
	case "hier":
		opt.Method = streak.Hierarchical
		opt.HierTimePerTile = *ilpTime / 4
	default:
		fmt.Fprintf(stderr, "streak: unknown method %q (want pd, ilp or hier)\n", *method)
		return 2
	}
	opt.Route.Workers = *workers
	opt.HierWorkers = *workers
	if *noPost {
		opt.PostOpt = false
		opt.Clustering = false
		opt.Refinement = false
	}
	opt.Fallback = streak.Fallback{Enabled: *fallback}
	switch *auditMode {
	case "off":
	case "warn":
		opt.Audit = streak.AuditWarn
	case "strict":
		opt.Audit = streak.AuditStrict
	default:
		fmt.Fprintf(stderr, "streak: unknown audit mode %q (want off, warn or strict)\n", *auditMode)
		return 2
	}

	ctx := context.Background()
	if *faultSpec != "" {
		plan, err := faultinject.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(stderr, "streak:", err)
			return 2
		}
		ctx = faultinject.With(ctx, plan)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Telemetry: -stats and -debug-addr both hang a recorder on the
	// context; the pipeline stages pick it up via obs.FromContext.
	var rec *obs.Recorder
	if *statsOut != "" || *traceOut != "" || *debugAddr != "" {
		rec = obs.NewRecorder()
		rec.SetLabel("bench", design.Name)
		rec.SetLabel("method", opt.Method.String())
		rec.AnnotateBuildInfo()
		ctx = obs.WithRecorder(ctx, rec)
	}
	if *debugAddr != "" {
		srv, bound, err := obs.ServeDebug(*debugAddr, rec)
		if err != nil {
			fmt.Fprintln(stderr, "streak:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "debug endpoint on http://%s/debug/streak\n", bound)
	}

	res, err := streak.RouteCtx(ctx, design, opt)
	if rec != nil && (*statsOut != "" || *traceOut != "") {
		// Write the reports even on failure: the spans, counters and trace
		// up to the failing stage are exactly what a post-mortem needs.
		rep := rec.Report()
		if res != nil {
			rep.Congestion = obs.SnapshotCongestion(res.Usage, 16)
		}
		if *statsOut != "" {
			if werr := writeStats(*statsOut, rep); werr != nil {
				fmt.Fprintln(stderr, "streak:", werr)
				return 1
			}
		}
		if *traceOut != "" {
			if werr := writeTrace(*traceOut, rep); werr != nil {
				fmt.Fprintln(stderr, "streak:", werr)
				return 1
			}
		}
	}
	if err != nil {
		var ex *streak.ExhaustedError
		if errors.As(err, &ex) {
			// Chain exhaustion gets the full degradation history, one rung
			// per line, so the operator sees every failure — not just the
			// last — before the verdict.
			for _, a := range ex.Attempts {
				fmt.Fprintf(stderr, "streak: solver %s failed: %s\n", a.Solver, a.Err)
			}
			fmt.Fprintf(stderr, "streak: all %d solvers failed; no routing produced\n", len(ex.Attempts))
			return 1
		}
		fmt.Fprintln(stderr, "streak:", err)
		if res == nil {
			return 1
		}
		// Strict-audit failures still carry the result; report it below so
		// the violations can be diagnosed, then exit nonzero.
	}
	if err == nil && res.TimedOut && res.Metrics.RoutedGroups == 0 {
		// A deadline that expired before anything routed is a failure, not
		// a report full of zeros with exit code 0.
		fmt.Fprintln(stderr, "streak: deadline expired before any group routed; no usable result")
		return 1
	}

	m := res.Metrics
	fmt.Fprintf(stdout, "design      %s (%d groups, %d nets, %d pins)\n", design.Name, m.Groups, m.Nets, m.Pins)
	fmt.Fprintf(stdout, "method      %s%s\n", opt.Method, solverNote(res))
	fmt.Fprintf(stdout, "route       %.2f%% (%d/%d groups)\n", m.RouteFrac*100, m.RoutedGroups, m.Groups)
	fmt.Fprintf(stdout, "wirelength  %.2fe5\n", m.WL/1e5)
	fmt.Fprintf(stdout, "avg(reg)    %.2f%%\n", m.AvgReg*100)
	fmt.Fprintf(stdout, "vio(dst)    %d (before refinement: %d)\n", m.VioDst, res.VioBefore)
	fmt.Fprintf(stdout, "overflow    %d (%d edges)\n", m.Overflow, m.OverflowEdges)
	fmt.Fprintf(stdout, "runtime     %.2fs%s\n", res.Runtime.Seconds(), timedOutNote(res.TimedOut))
	for _, a := range res.Attempts {
		fmt.Fprintf(stdout, "fallback    %s failed: %s\n", a.Solver, a.Err)
	}
	if res.Audit != nil {
		fmt.Fprintf(stdout, "audit       %s\n", res.Audit.Summary())
		for _, v := range res.Audit.Violations {
			fmt.Fprintf(stdout, "  violation %s\n", v)
		}
	}
	if *statsOut != "" {
		fmt.Fprintf(stdout, "stats       %s\n", *statsOut)
	}
	if *traceOut != "" {
		fmt.Fprintf(stdout, "trace       %s (open in Perfetto or about://tracing)\n", *traceOut)
	}
	if *heatmap {
		fmt.Fprintln(stdout, "\ncongestion map:")
		streak.WriteHeatmap(stdout, res, 64)
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fmt.Fprintln(stderr, "streak:", err)
			return 1
		}
		if err := streak.WriteSVG(f, res); err != nil {
			fmt.Fprintln(stderr, "streak:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "streak:", err)
			return 1
		}
		fmt.Fprintf(stdout, "svg         %s\n", *svgOut)
	}
	if err != nil {
		return 1
	}
	return 0
}

// writeStats writes the telemetry report as indented JSON.
func writeStats(path string, rep obs.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTrace writes the run's Chrome trace_event file.
func writeTrace(path string, rep obs.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// solverNote annotates the method line when the fallback chain degraded.
func solverNote(res *streak.Result) string {
	if !res.Degraded {
		return ""
	}
	return fmt.Sprintf(" (degraded to %s)", res.SolverUsed)
}

func timedOutNote(timedOut bool) string {
	if timedOut {
		return " (ILP time limit reached; best feasible reported)"
	}
	return ""
}

func loadDesign(path string, industry int, scale float64) (*streak.Design, error) {
	switch {
	case path != "" && industry != 0:
		return nil, fmt.Errorf("use either -design or -industry, not both")
	case path != "":
		return streak.LoadDesign(path)
	case industry >= 1 && industry <= 7:
		spec := benchgen.Industry(industry)
		if scale < 1 {
			spec = benchgen.Scale(spec, scale)
		}
		return spec.Generate(), nil
	default:
		return nil, fmt.Errorf("need -design FILE or -industry N (1..7)")
	}
}
