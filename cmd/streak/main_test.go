package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunRoutesCleanly drives the whole command in-process on a small
// generated benchmark.
func TestRunRoutesCleanly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-industry", "1", "-scale", "0.04", "-audit", "warn"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"design", "route", "audit       legal"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestExhaustedChainExitsNonzero is the regression test for the silent-
// failure bug: with every solver rung forced down by injected faults, the
// command must exit nonzero and name each failed rung — not print a
// partial or all-zero report with exit code 0.
func TestExhaustedChainExitsNonzero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-industry", "1", "-scale", "0.04",
		"-method", "ilp", "-fallback",
		"-faultinject", "exact.solve=panic;hier.tile=panic;pd.solve=panic",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("exit code = 0 despite total solver failure\nstdout: %s", stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("failed run printed a report:\n%s", stdout.String())
	}
	errText := stderr.String()
	for _, rung := range []string{"ILP", "Hierarchical-ILP", "Primal-Dual"} {
		if !strings.Contains(errText, rung) {
			t.Errorf("stderr does not name failed rung %q:\n%s", rung, errText)
		}
	}
	if !strings.Contains(errText, "all 3 solvers failed") {
		t.Errorf("stderr missing the exhaustion verdict:\n%s", errText)
	}
}

// TestZeroReportGuard pins the second half of the bug: a deadline that
// expires before anything routes must exit nonzero instead of reporting
// 0.00% routed as success.
func TestZeroReportGuard(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-industry", "1", "-scale", "0.04",
		"-timeout", "80ms",
		"-faultinject", "pd.solve=delay:60s",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("exit code = 0 for a zero-routed timeout\nstdout: %s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "no usable result") &&
		!strings.Contains(stderr.String(), "deadline") {
		t.Errorf("stderr does not explain the timeout: %s", stderr.String())
	}
	if strings.Contains(stdout.String(), "route       0.00%") {
		t.Errorf("zero report printed as success:\n%s", stdout.String())
	}
}

// TestDegradedRunStillSucceeds: one injected rung failure with fallback on
// is a degraded success — exit 0, degradation visible in the report.
func TestDegradedRunStillSucceeds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-industry", "1", "-scale", "0.04",
		"-method", "ilp", "-fallback", "-audit", "strict",
		"-faultinject", "exact.solve=panic",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "degraded to") {
		t.Errorf("degradation not reported:\n%s", out)
	}
	if !strings.Contains(out, "fallback    ILP failed") {
		t.Errorf("failed rung not reported:\n%s", out)
	}
}

// TestBadFlags covers the argument-validation exits.
func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-industry", "1", "-method", "quantum"},
		{"-industry", "1", "-audit", "maybe"},
		{"-industry", "1", "-faultinject", "bogus.point=panic"},
		{"-industry", "9"},
		{"-design", "x.json", "-industry", "1"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(args, &stdout, &stderr); code == 0 {
				t.Errorf("run(%v) = 0, want nonzero", args)
			}
			if stderr.Len() == 0 {
				t.Error("no diagnostic on stderr")
			}
		})
	}
}
