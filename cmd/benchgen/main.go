// Command benchgen emits synthetic signal-group benchmarks as design JSON.
//
// Usage:
//
//	benchgen -industry 2 -out industry2.json
//	benchgen -industry 2 -scale 0.25 -out small.json
//	benchgen -all -dir bench/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/benchgen"
)

func main() {
	var (
		industry = flag.Int("industry", 0, "generate Industry<n> (1..7)")
		all      = flag.Bool("all", false, "generate every Industry preset")
		scale    = flag.Float64("scale", 1.0, "scale factor (0,1]")
		out      = flag.String("out", "", "output file (default stdout)")
		dir      = flag.String("dir", ".", "output directory for -all")
	)
	flag.Parse()

	if *all {
		for _, spec := range benchgen.AllIndustry() {
			if *scale < 1 {
				spec = benchgen.Scale(spec, *scale)
			}
			d := spec.Generate()
			name := strings.ReplaceAll(strings.ToLower(d.Name), "@", "-s")
			path := filepath.Join(*dir, name+".json")
			if err := d.SaveFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "benchgen:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: %d groups, %d nets, %d pins -> %s\n",
				d.Name, len(d.Groups), d.NumNets(), d.NumPins(), path)
		}
		return
	}

	if *industry < 1 || *industry > 7 {
		fmt.Fprintln(os.Stderr, "benchgen: need -industry N (1..7) or -all")
		os.Exit(2)
	}
	spec := benchgen.Industry(*industry)
	if *scale < 1 {
		spec = benchgen.Scale(spec, *scale)
	}
	d := spec.Generate()
	if *out == "" {
		if err := d.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := d.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d groups, %d nets, %d pins -> %s\n",
		d.Name, len(d.Groups), d.NumNets(), d.NumPins(), *out)
}
