// Command benchgen emits synthetic signal-group benchmarks as design JSON.
//
// Usage:
//
//	benchgen -industry 2 -out industry2.json
//	benchgen -industry 2 -scale 0.25 -out small.json
//	benchgen -all -dir bench/
//	benchgen -all -stats                 # per-design generation timing
//	benchgen -preset maze -out maze.json # degenerate/adversarial presets
//	benchgen -preset list                # list the preset names
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/benchgen"
	"repro/internal/signal"
)

func main() {
	var (
		industry = flag.Int("industry", 0, "generate Industry<n> (1..7)")
		all      = flag.Bool("all", false, "generate every Industry preset")
		scale    = flag.Float64("scale", 1.0, "scale factor (0,1]")
		out      = flag.String("out", "", "output file (default stdout)")
		dir      = flag.String("dir", ".", "output directory for -all")
		stats    = flag.Bool("stats", false, "print per-design generation timing to stderr")
		preset   = flag.String("preset", "", "generate a degenerate/adversarial preset by name ('list' prints the names)")
		seed     = flag.Int64("seed", 1, "seed for -preset generation")
	)
	flag.Parse()

	if *preset == "list" {
		for _, name := range benchgen.DegeneratePresets() {
			fmt.Println(name)
		}
		return
	}
	if *preset != "" {
		d, err := benchgen.Degenerate(*preset, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(2)
		}
		if *out == "" {
			if err := d.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "benchgen:", err)
				os.Exit(1)
			}
			return
		}
		if err := d.SaveFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d groups, %d nets, %d pins -> %s\n",
			d.Name, len(d.Groups), d.NumNets(), d.NumPins(), *out)
		return
	}

	// generate times one design's generation when -stats is set.
	generate := func(spec benchgen.Spec) *signal.Design {
		t0 := time.Now()
		d := spec.Generate()
		if *stats {
			fmt.Fprintf(os.Stderr, "stats: %-16s generated in %8.3fms (%d groups, %d nets, %d pins)\n",
				d.Name, float64(time.Since(t0).Microseconds())/1e3,
				len(d.Groups), d.NumNets(), d.NumPins())
		}
		return d
	}

	if *all {
		for _, spec := range benchgen.AllIndustry() {
			if *scale < 1 {
				spec = benchgen.Scale(spec, *scale)
			}
			d := generate(spec)
			name := strings.ReplaceAll(strings.ToLower(d.Name), "@", "-s")
			path := filepath.Join(*dir, name+".json")
			if err := d.SaveFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "benchgen:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: %d groups, %d nets, %d pins -> %s\n",
				d.Name, len(d.Groups), d.NumNets(), d.NumPins(), path)
		}
		return
	}

	if *industry < 1 || *industry > 7 {
		fmt.Fprintln(os.Stderr, "benchgen: need -industry N (1..7) or -all")
		os.Exit(2)
	}
	spec := benchgen.Industry(*industry)
	if *scale < 1 {
		spec = benchgen.Scale(spec, *scale)
	}
	d := generate(spec)
	if *out == "" {
		if err := d.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := d.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d groups, %d nets, %d pins -> %s\n",
		d.Name, len(d.Groups), d.NumNets(), d.NumPins(), *out)
}
