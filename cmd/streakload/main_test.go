package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jobs"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// startDaemon brings up an in-process streakd with the fault spec armed
// (empty = no faults) and a telemetry lake mounted.
func startDaemon(t *testing.T, faultSpec string) (*server.Server, *httptest.Server, *telemetry.Service) {
	t.Helper()
	base := context.Background()
	if faultSpec != "" {
		plan, err := faultinject.ParseSpec(faultSpec)
		if err != nil {
			t.Fatalf("parsing fault spec %q: %v", faultSpec, err)
		}
		base = faultinject.With(base, plan)
	}
	store, err := telemetry.OpenStore(telemetry.StoreConfig{Dir: t.TempDir(), NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	telem := telemetry.NewService(store, 0, t.Logf)
	s := server.New(server.Config{
		MaxInflight: 4,
		BaseContext: base,
		JobStore:    jobs.NewMemStore(),
		JobWorkers:  2,
		Telemetry:   telem,
		Logf:        t.Logf,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
		telem.Close(ctx)
	})
	return s, ts, telem
}

// TestChurnScenarioEndToEnd: the acceptance path — a seeded churn
// scenario against a live server exits 0 with every invariant green, the
// report lands on disk and in the telemetry lake.
func TestChurnScenarioEndToEnd(t *testing.T) {
	_, ts, telem := startDaemon(t, "")
	reportPath := filepath.Join(t.TempDir(), "report.json")

	var out, errb bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-scenario", "churn", "-seed", "42",
		"-requests", "14", "-speed", "50", "-rate", "40",
		"-report", reportPath, "-push",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("streakload exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[PASS] transport-clean") {
		t.Fatalf("verdict missing invariant table:\n%s", out.String())
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetry.ScenarioReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Name != "churn" || rep.Seed != 42 || !rep.Passed || rep.Requests != 14 {
		t.Fatalf("report %+v", rep)
	}
	// Churn must actually exercise the cache: with repeats and mutations,
	// 2xx responses carry hit/incremental/cold labels.
	if len(rep.ByCache) == 0 {
		t.Fatalf("churn run saw no cache outcomes: %+v", rep.ByStatus)
	}
	// The push landed in the lake.
	recs := telem.Store().Records()
	found := false
	for _, r := range recs {
		if r.Kind == telemetry.KindScenario && r.Scenario != nil && r.Scenario.Name == "churn" {
			found = true
		}
	}
	if !found {
		t.Fatal("scenario report not in the telemetry lake")
	}
}

// TestChurnChaosWithFaultsArmed: the soak path — the scenario's own fault
// plan armed on the daemon, injected failures attributed, invariants
// green, exit 0.
func TestChurnChaosWithFaultsArmed(t *testing.T) {
	// The program is built twice (once here for the spec, once inside run);
	// same seed + config = same program, so the spec matches what fires.
	prog, err := scenario.Generate("churnchaos", scenario.Config{
		Seed: 7, Requests: 16, Scale: 0.05, Rate: 40, BusWidth: 48,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prog.FaultSpec == "" {
		t.Fatal("churnchaos carries no fault plan")
	}
	_, ts, _ := startDaemon(t, prog.FaultSpec)

	var out, errb bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-scenario", "churnchaos", "-seed", "7",
		"-requests", "16", "-scale", "0.05", "-rate", "40", "-bus-width", "48",
		"-speed", "50", "-faults-armed",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("streakload exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestUninjected500FailsTheRun: a daemon with faults armed that the
// driver was NOT told about must flag no-uninjected-5xx — the harness
// proves it can actually catch a hostile server, not just bless a
// healthy one. pd.solve panics surface as 500s whose body does not carry
// the faultinject marker (the guard reports only the panic text).
func TestUninjected500FailsTheRun(t *testing.T) {
	_, ts, _ := startDaemon(t, "pd.solve=error:surprise#100")

	var out, errb bytes.Buffer
	code := run([]string{
		"-target", ts.URL, "-scenario", "churn", "-seed", "3",
		"-requests", "6", "-speed", "50", "-rate", "40", "-jobs-frac", "0",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("streakload exited %d against a faulting server, want 1\nstdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "[FAIL] no-uninjected-5xx") {
		t.Fatalf("expected no-uninjected-5xx failure:\n%s", out.String())
	}
}

// TestReplayFromCapture: record traffic through the server's capture
// hook, then replay the ring end to end.
func TestReplayFromCapture(t *testing.T) {
	dir := t.TempDir()
	cap, err := scenario.OpenCapture(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Recorder: cap, Logf: t.Logf})
	rec := httptest.NewServer(srv.Handler())
	prog, err := scenario.Generate("churn", scenario.Config{Seed: 9, Requests: 5, Rate: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range prog.Requests {
		body, _ := json.Marshal(req.Design)
		resp, err := http.Post(rec.URL+"/route", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	rec.Close()
	if err := cap.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts, _ := startDaemon(t, "")
	var out, errb bytes.Buffer
	code := run([]string{"-target", ts.URL, "-replay", dir, "-speed", "50"}, &out, &errb)
	if code != 0 {
		t.Fatalf("replay exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "firing") || !strings.Contains(errb.String(), "replay:"+dir) {
		t.Fatalf("replay banner missing:\n%s", errb.String())
	}
}

// TestDigestMode: -digest is stable across invocations and never needs a
// target.
func TestDigestMode(t *testing.T) {
	var a, b, errb bytes.Buffer
	if code := run([]string{"-scenario", "burst", "-seed", "5", "-digest"}, &a, &errb); code != 0 {
		t.Fatalf("digest exited %d: %s", code, errb.String())
	}
	if code := run([]string{"-scenario", "burst", "-seed", "5", "-digest"}, &b, &errb); code != 0 {
		t.Fatalf("digest exited %d: %s", code, errb.String())
	}
	if a.String() != b.String() || len(strings.TrimSpace(a.String())) != 64 {
		t.Fatalf("digest not stable: %q vs %q", a.String(), b.String())
	}
}

// TestUsageErrors: bad scenario names and a missing target are usage
// errors (2), not invariant failures.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "nope", "-digest"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scenario exited %d, want 2", code)
	}
	if code := run([]string{"-scenario", "churn"}, &out, &errb); code != 2 {
		t.Fatalf("missing target exited %d, want 2", code)
	}
}
