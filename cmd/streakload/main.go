// Command streakload is the record/replay load and chaos driver for
// streakd: it fires a scenario program — a seeded, deterministic traffic
// sequence from internal/scenario, or a captured window of live traffic
// recorded with streakd -record-dir — at a running daemon and judges the
// run against the end-to-end robustness invariants (shed responses carry
// Retry-After and stay under budget, no 5xx the armed fault plan didn't
// cause, every 2xx audit-legal, every accepted async job terminal and
// never lost).
//
// Usage:
//
//	streakload -target http://127.0.0.1:8080 -scenario churnchaos -seed 42
//	streakload -scenario churnchaos -seed 42 -digest   # print the program digest, fire nothing
//	streakload -scenario churnchaos -seed 42 -print-faultspec
//	streakload -target ... -replay /var/run/streakd-capture
//	streakload -target ... -scenario burst -rate 40 -speed 4 -max-shed 0.9
//
// The chaos half: a scenario may carry a fault plan (print it with
// -print-faultspec, feed it to streakd -faultinject, and tell the driver
// the faults are armed with -faults-armed so injected failures are
// attributed instead of flagged). Same seed, same program — the -digest
// of two runs proves the request sequence was identical, which is what
// makes a chaos failure a reproducible bug report.
//
// Exit status: 0 when every invariant holds, 1 when any fails, 2 on
// usage errors. -report writes the full scenario report JSON (the CI
// artifact); -push sends the same report to the target's telemetry lake.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("streakload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target      = fs.String("target", "", "base URL of the streakd under test, e.g. http://127.0.0.1:8080")
		scenName    = fs.String("scenario", "churnchaos", fmt.Sprintf("scenario family to generate (%s)", strings.Join(scenario.Names(), ", ")))
		seed        = fs.Int64("seed", 1, "scenario seed; same seed = identical request sequence")
		requests    = fs.Int("requests", 60, "request budget for generated scenarios")
		scale       = fs.Float64("scale", 0.06, "design scale for generated scenarios (0,1]")
		rate        = fs.Float64("rate", 8, "mean arrival rate (requests/second) for generated scenarios")
		jobsFrac    = fs.Float64("jobs-frac", 0.15, "fraction of requests submitted to the async /jobs tier")
		busWidth    = fs.Int("bus-width", 256, "widest degenerate bus the scenario emits")
		speed       = fs.Float64("speed", 1, "time compression: arrival offsets are divided by this")
		deadline    = fs.Duration("deadline", 90*time.Second, "per-request client deadline")
		maxShed     = fs.Float64("max-shed", 0.8, "largest tolerated fraction of 429 responses")
		replayDir   = fs.String("replay", "", "replay a capture ring recorded with streakd -record-dir instead of generating")
		digest      = fs.Bool("digest", false, "print the program's canonical digest and exit (reproducibility check)")
		printFaults = fs.Bool("print-faultspec", false, "print the scenario's fault plan and exit")
		faultsArmed = fs.Bool("faults-armed", false, "the target was started with this scenario's fault plan; injected failures are attributed, not flagged")
		waitJobs    = fs.Duration("wait-jobs", 60*time.Second, "how long to poll accepted async jobs for a terminal state")
		reportPath  = fs.String("report", "", "write the scenario report JSON to this file")
		push        = fs.Bool("push", false, "push the scenario report to the target's telemetry lake (best-effort)")
		dumpPath    = fs.String("dump", "", "write the program JSON to this file before firing")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	prog, err := buildProgram(*scenName, *replayDir, scenario.Config{
		Seed: *seed, Requests: *requests, Scale: *scale, Rate: *rate,
		JobsFrac: *jobsFrac, BusWidth: *busWidth,
	}, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "streakload:", err)
		return 2
	}

	if *digest {
		fmt.Fprintln(stdout, prog.Digest())
		return 0
	}
	if *printFaults {
		fmt.Fprintln(stdout, prog.FaultSpec)
		return 0
	}
	if *dumpPath != "" {
		data, _ := json.MarshalIndent(prog, "", "  ")
		if err := os.WriteFile(*dumpPath, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "streakload:", err)
			return 2
		}
		fmt.Fprintf(stderr, "streakload: program written to %s\n", *dumpPath)
	}
	if *target == "" {
		fmt.Fprintln(stderr, "streakload: -target is required to fire a scenario (or use -digest / -print-faultspec / -dump)")
		return 2
	}
	if *speed <= 0 {
		fmt.Fprintln(stderr, "streakload: -speed must be > 0")
		return 2
	}
	if prog.FaultSpec != "" && !*faultsArmed {
		fmt.Fprintf(stderr, "streakload: note: scenario carries a fault plan (%s) but -faults-armed is false; any injected-looking failure will flag an invariant\n", prog.FaultSpec)
	}

	fmt.Fprintf(stderr, "streakload: firing %q (%d requests over %s at speed %gx, digest %.12s) at %s\n",
		prog.Name, len(prog.Requests), prog.Duration().Round(time.Millisecond), *speed, prog.Digest(), *target)

	start := time.Now()
	obs := fire(prog, *target, *speed, *deadline, stderr)
	pollJobs(obs, *target, *deadline, *waitJobs)
	elapsed := time.Since(start)

	results := scenario.CheckInvariants(obs, scenario.CheckConfig{
		MaxShedFrac: *maxShed,
		FaultsArmed: *faultsArmed && prog.FaultSpec != "",
	})
	sum := scenario.Summarize(obs)
	report := buildReport(prog, *target, elapsed, sum, results)

	printVerdict(stdout, sum, results, elapsed)
	if *reportPath != "" {
		data, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(*reportPath, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "streakload: writing report:", err)
			return 1
		}
		fmt.Fprintf(stderr, "streakload: report written to %s\n", *reportPath)
	}
	if *push {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := telemetry.PushScenario(ctx, *target, "streakload", report); err != nil {
			// Best-effort: the lake may not be mounted on this target.
			fmt.Fprintln(stderr, "streakload: push:", err)
		} else {
			fmt.Fprintln(stderr, "streakload: report pushed to telemetry lake")
		}
		cancel()
	}

	if !scenario.AllOK(results) {
		return 1
	}
	return 0
}

// buildProgram resolves the program source: a capture ring or a generator.
func buildProgram(name, replayDir string, cfg scenario.Config, stderr io.Writer) (*scenario.Program, error) {
	if replayDir != "" {
		reqs, skipped, err := scenario.ReadCapture(replayDir)
		if err != nil {
			return nil, err
		}
		prog, dropped, err := scenario.ProgramFromCapture("replay:"+replayDir, reqs)
		if err != nil {
			return nil, err
		}
		if skipped+dropped > 0 {
			fmt.Fprintf(stderr, "streakload: replay: %d unreadable lines skipped, %d undecodable bodies dropped\n", skipped, dropped)
		}
		return prog, nil
	}
	return scenario.Generate(name, cfg)
}

// routeBody is the slice of streakd's response the invariants read.
type routeBody struct {
	Cache   string `json:"cache"`
	AuditOK *bool  `json:"audit_ok"`
	Error   string `json:"error"`
}

// jobView is the slice of the async job snapshot the driver polls.
type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// fire plays the program open-loop: each request launches at its arrival
// offset (compressed by speed) regardless of how earlier ones are faring
// — that is what lets a burst actually overrun the admission queue.
func fire(prog *scenario.Program, target string, speed float64, deadline time.Duration, stderr io.Writer) []scenario.Observation {
	client := &http.Client{Timeout: deadline}
	obs := make([]scenario.Observation, len(prog.Requests))
	var wg sync.WaitGroup
	start := time.Now()
	for i, req := range prog.Requests {
		at := time.Duration(float64(req.At) / speed)
		if sleep := at - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int, req scenario.Request) {
			defer wg.Done()
			obs[i] = shoot(client, target, i, req)
		}(i, req)
	}
	wg.Wait()
	return obs
}

// shoot issues one request and distills the response into an Observation.
func shoot(client *http.Client, target string, idx int, req scenario.Request) scenario.Observation {
	o := scenario.Observation{Index: idx, Path: req.Path, RetryAfter: -1}
	body, err := json.Marshal(req.Design)
	if err != nil {
		o.TransportErr = "encode: " + err.Error()
		return o
	}
	url := target + req.Path
	if req.Query != "" {
		url += "?" + req.Query
	}
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	o.Latency = time.Since(t0)
	if err != nil {
		o.TransportErr = err.Error()
		if errors.Is(err, context.DeadlineExceeded) || strings.Contains(err.Error(), "Client.Timeout") {
			o.TransportErr = "client deadline exceeded: " + err.Error()
		}
		return o
	}
	defer resp.Body.Close()
	o.Status = resp.StatusCode
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			o.RetryAfter = secs
		}
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		o.TransportErr = "read body: " + err.Error()
		return o
	}
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300 && req.Path == "/jobs":
		var v jobView
		if json.Unmarshal(raw, &v) == nil {
			o.JobID = v.ID
		}
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		var rb routeBody
		if json.Unmarshal(raw, &rb) == nil {
			o.Cache = rb.Cache
			o.AuditOK = rb.AuditOK
		}
	default:
		var rb routeBody
		if json.Unmarshal(raw, &rb) == nil && rb.Error != "" {
			o.ErrMsg = rb.Error
		} else {
			o.ErrMsg = string(raw)
		}
	}
	return o
}

// pollJobs drives every accepted async job to a terminal state, marking
// jobs lost when the server no longer knows them or the wait budget
// expires first. "Zero lost accepted jobs" is the durability half of the
// drain invariant.
func pollJobs(obs []scenario.Observation, target string, deadline, wait time.Duration) {
	client := &http.Client{Timeout: deadline}
	var wg sync.WaitGroup
	for i := range obs {
		if obs[i].JobID == "" {
			continue
		}
		wg.Add(1)
		go func(o *scenario.Observation) {
			defer wg.Done()
			stop := time.Now().Add(wait)
			for {
				resp, err := client.Get(target + "/jobs/" + o.JobID)
				if err == nil {
					raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
					resp.Body.Close()
					var v jobView
					switch {
					case resp.StatusCode == http.StatusNotFound:
						o.JobLost = true
						return
					case rerr == nil && json.Unmarshal(raw, &v) == nil && v.State != "":
						o.JobState = v.State
						o.JobError = v.Error
						switch v.State {
						case "SUCCEEDED", "FAILED", "CANCELED":
							return
						}
					}
				}
				if time.Now().After(stop) {
					o.JobLost = true
					return
				}
				time.Sleep(200 * time.Millisecond)
			}
		}(&obs[i])
	}
	wg.Wait()
}

// buildReport assembles the telemetry-lake scenario report.
func buildReport(prog *scenario.Program, target string, elapsed time.Duration, sum scenario.Summary, results []scenario.InvariantResult) telemetry.ScenarioReport {
	r := telemetry.ScenarioReport{
		Name:          prog.Name,
		Seed:          prog.Seed,
		Digest:        prog.Digest(),
		FaultSpec:     prog.FaultSpec,
		Target:        target,
		DurationMS:    elapsed.Milliseconds(),
		Requests:      sum.Requests,
		ByStatus:      sum.ByStatus,
		ByCache:       sum.ByCache,
		ShedFrac:      sum.ShedFrac,
		P50us:         sum.P50us,
		P90us:         sum.P90us,
		P99us:         sum.P99us,
		JobsAccepted:  sum.JobsAccepted,
		JobsSucceeded: sum.JobsSucceeded,
		JobsFailed:    sum.JobsFailed,
		JobsLost:      sum.JobsLost,
		Passed:        scenario.AllOK(results),
	}
	for _, res := range results {
		r.Invariants = append(r.Invariants, telemetry.ScenarioInvariant{Name: res.Name, OK: res.OK, Detail: res.Detail})
	}
	return r
}

// printVerdict writes the human-readable run summary and invariant table.
func printVerdict(w io.Writer, sum scenario.Summary, results []scenario.InvariantResult, elapsed time.Duration) {
	statuses := make([]string, 0, len(sum.ByStatus))
	for k := range sum.ByStatus {
		statuses = append(statuses, k)
	}
	sort.Strings(statuses)
	parts := make([]string, 0, len(statuses))
	for _, k := range statuses {
		parts = append(parts, fmt.Sprintf("%s:%d", k, sum.ByStatus[k]))
	}
	fmt.Fprintf(w, "streakload: %d requests in %s [%s] shed %.1f%% p50 %s p99 %s\n",
		sum.Requests, elapsed.Round(time.Millisecond), strings.Join(parts, " "),
		100*sum.ShedFrac,
		time.Duration(sum.P50us)*time.Microsecond,
		time.Duration(sum.P99us)*time.Microsecond)
	if sum.JobsAccepted > 0 {
		fmt.Fprintf(w, "streakload: jobs accepted %d succeeded %d failed %d lost %d\n",
			sum.JobsAccepted, sum.JobsSucceeded, sum.JobsFailed, sum.JobsLost)
	}
	for _, r := range results {
		mark := "PASS"
		if !r.OK {
			mark = "FAIL"
		}
		line := fmt.Sprintf("streakload: [%s] %s", mark, r.Name)
		if r.Detail != "" {
			line += ": " + r.Detail
		}
		fmt.Fprintln(w, line)
	}
}
