// Command experiments regenerates the paper's evaluation tables and
// figures on the synthetic Industry benchmarks.
//
// Usage:
//
//	experiments -table 1                # Table I (manual vs ILP vs PD)
//	experiments -table 2                # Table II (post optimization)
//	experiments -fig 11                 # Industry7 congestion maps
//	experiments -fig 13                 # scalability CSV
//	experiments -all                    # everything
//	experiments -all -scale 0.1 -ilptime 5s -bench 1,3,7
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		table   = flag.Int("table", 0, "regenerate Table N (1 or 2)")
		fig     = flag.Int("fig", 0, "regenerate Fig N (11, 12, 13, 14 or 15)")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		scale   = flag.Float64("scale", 0.2, "benchmark scale factor (1 = full size)")
		ilpTime = flag.Duration("ilptime", 20*time.Second, "ILP time limit")
		benchs  = flag.String("bench", "", "comma-separated Industry numbers (default all)")
	)
	flag.Parse()

	cfg := experiments.Config{
		Out:     os.Stdout,
		Scale:   *scale,
		ILPTime: *ilpTime,
	}
	if *benchs != "" {
		for _, part := range strings.Split(*benchs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 || n > 7 {
				fmt.Fprintf(os.Stderr, "experiments: bad benchmark %q\n", part)
				os.Exit(2)
			}
			cfg.Benchmarks = append(cfg.Benchmarks, n)
		}
	}

	run := func(name string, fn func(experiments.Config) error) {
		fmt.Printf("\n===== %s =====\n", name)
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	did := false
	if *all || *table == 1 {
		run("Table I", experiments.Table1)
		did = true
	}
	if *all || *table == 2 {
		run("Table II", experiments.Table2)
		did = true
	}
	if *all || *fig == 11 {
		run("Fig 11", func(c experiments.Config) error { return experiments.CongestionMaps(c, 7) })
		did = true
	}
	if *all || *fig == 12 {
		run("Fig 12", func(c experiments.Config) error { return experiments.CongestionMaps(c, 6) })
		did = true
	}
	if *all || *fig == 13 {
		run("Fig 13", experiments.Fig13)
		did = true
	}
	if *all || *fig == 14 {
		run("Fig 14", experiments.Fig14)
		did = true
	}
	if *all || *fig == 15 {
		run("Fig 15", experiments.Fig15)
		did = true
	}
	if !did {
		fmt.Fprintln(os.Stderr, "experiments: nothing to do; use -table, -fig or -all")
		os.Exit(2)
	}
}
