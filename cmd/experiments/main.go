// Command experiments regenerates the paper's evaluation tables and
// figures on the synthetic Industry benchmarks.
//
// Usage:
//
//	experiments -table 1                # Table I (manual vs ILP vs PD)
//	experiments -table 2                # Table II (post optimization)
//	experiments -fig 11                 # Industry7 congestion maps
//	experiments -fig 13                 # scalability CSV
//	experiments -all                    # everything
//	experiments -all -scale 0.1 -ilptime 5s -bench 1,3,7
//	experiments -table 1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	experiments -table 1 -stats stats.json   # per-bench stage telemetry
//
// With -stats every solver run is recorded (stage spans, counters); the
// per-bench stage table prints after the experiments and the full reports
// are written to the given JSON file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

// run executes the requested experiments and returns the exit code. It is
// separate from main so the profiling defers flush before the process
// exits.
func run() int {
	var (
		table      = flag.Int("table", 0, "regenerate Table N (1 or 2)")
		fig        = flag.Int("fig", 0, "regenerate Fig N (11, 12, 13, 14 or 15)")
		all        = flag.Bool("all", false, "regenerate every table and figure")
		scale      = flag.Float64("scale", 0.2, "benchmark scale factor (1 = full size)")
		ilpTime    = flag.Duration("ilptime", 20*time.Second, "ILP time limit")
		benchs     = flag.String("bench", "", "comma-separated Industry numbers (default all)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		statsOut   = flag.String("stats", "", "collect per-run solver telemetry, print the stage table and write the reports as JSON to this file")
		convOut    = flag.String("convergence", "", "with -stats: write the solver convergence samples as CSV to this file and print the convergence table")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiments.Config{
		Out:     os.Stdout,
		Scale:   *scale,
		ILPTime: *ilpTime,
	}
	if *statsOut != "" || *convOut != "" {
		cfg.Stats = obs.NewCollector()
	}
	if *benchs != "" {
		for _, part := range strings.Split(*benchs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 || n > 7 {
				fmt.Fprintf(os.Stderr, "experiments: bad benchmark %q\n", part)
				return 2
			}
			cfg.Benchmarks = append(cfg.Benchmarks, n)
		}
	}

	do := func(name string, fn func(experiments.Config) error) error {
		fmt.Printf("\n===== %s =====\n", name)
		if err := fn(cfg); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return nil
	}

	type job struct {
		enabled bool
		name    string
		fn      func(experiments.Config) error
	}
	jobs := []job{
		{*all || *table == 1, "Table I", experiments.Table1},
		{*all || *table == 2, "Table II", experiments.Table2},
		{*all || *fig == 11, "Fig 11", func(c experiments.Config) error { return experiments.CongestionMaps(c, 7) }},
		{*all || *fig == 12, "Fig 12", func(c experiments.Config) error { return experiments.CongestionMaps(c, 6) }},
		{*all || *fig == 13, "Fig 13", experiments.Fig13},
		{*all || *fig == 14, "Fig 14", experiments.Fig14},
		{*all || *fig == 15, "Fig 15", experiments.Fig15},
	}
	did := false
	for _, j := range jobs {
		if !j.enabled {
			continue
		}
		if err := do(j.name, j.fn); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		did = true
	}
	if !did {
		fmt.Fprintln(os.Stderr, "experiments: nothing to do; use -table, -fig or -all")
		return 2
	}
	if cfg.Stats != nil {
		fmt.Println()
		experiments.StageTable(os.Stdout, cfg.Stats)
		if *convOut != "" {
			fmt.Println()
			experiments.ConvergenceTable(os.Stdout, cfg.Stats)
			if err := writeFileWith(*convOut, func(f *os.File) error {
				experiments.ConvergenceCSV(f, cfg.Stats)
				return nil
			}); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: convergence: %v\n", err)
				return 1
			}
			fmt.Printf("\nconvergence samples written to %s\n", *convOut)
		}
		if *statsOut != "" {
			if err := writeFileWith(*statsOut, func(f *os.File) error {
				return experiments.WriteStats(f, cfg.Stats)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: stats: %v\n", err)
				return 1
			}
			fmt.Printf("\nstats written to %s (%d runs)\n", *statsOut, len(cfg.Stats.Runs()))
		}
	}
	return 0
}

// writeFileWith creates the file, runs the writer and closes it, reporting
// the first error.
func writeFileWith(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
