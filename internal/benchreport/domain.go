package benchreport

import (
	"context"
	"fmt"

	"repro/internal/benchgen"
	"repro/internal/core"
)

// DomainMetrics runs the primal-dual flow in-process on one scaled Industry
// benchmark and returns its quality numbers as a synthetic "domain/..." row,
// so BENCH artifacts track routing quality (routed fraction, wirelength,
// regularity) next to the ns/op numbers — a perf win that costs routed
// groups is a regression, not an improvement.
func DomainMetrics(ctx context.Context, industry int, scale float64) (Benchmark, error) {
	d := benchgen.Scale(benchgen.Industry(industry), scale).Generate()
	res, err := core.RunCtx(ctx, d, core.Options{Method: core.PrimalDual})
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchreport: domain run: %w", err)
	}
	m := res.Metrics
	return Benchmark{
		Name: fmt.Sprintf("domain/Industry%d@%g", industry, scale),
		Metrics: map[string]float64{
			"route%":    m.RouteFrac * 100,
			"wl":        m.WL,
			"reg%":      m.AvgReg * 100,
			"overflow":  float64(m.Overflow),
			"runtime_s": res.Runtime.Seconds(),
		},
	}, nil
}
