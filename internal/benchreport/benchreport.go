// Package benchreport is the perf-regression harness: it parses `go test
// -bench` output into a schema-versioned JSON artifact (BENCH_<date>.json),
// folds in domain quality metrics from an in-process routing run, and
// compares two artifacts to flag regressions past a threshold. The artifact
// format is additive-stable: SchemaVersion only bumps on an incompatible
// change (see DESIGN.md "Tracing & convergence").
package benchreport

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion stamps every artifact. Adding fields is backward compatible
// and keeps the version; renaming, removing or reinterpreting one bumps it.
const SchemaVersion = 1

// Benchmark is one measured row: a `go test -bench` benchmark or a
// synthetic "domain/..." quality row. Metrics maps unit to value (ns/op,
// B/op, allocs/op, plus custom units like route%).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the BENCH artifact layout.
type File struct {
	// Schema is SchemaVersion at write time.
	Schema int `json:"schema"`
	// GeneratedAt is an RFC 3339 timestamp (informational only; Compare
	// ignores it).
	GeneratedAt string `json:"generated_at,omitempty"`
	// Labels carries build identification (go version, VCS revision) from
	// obs.BuildInfoLabels.
	Labels map[string]string `json:"labels,omitempty"`
	// Benchmarks are the measured rows, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches one benchmark result line: name, iteration count, then
// value-unit pairs. The -<procs> suffix go test appends to names is kept —
// artifacts are compared on like-for-like machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.*)$`)

// ParseBenchOutput extracts benchmark rows from `go test -bench` output.
// Non-benchmark lines (goos/pkg headers, PASS, ok) are skipped; a line that
// looks like a benchmark but fails to parse is an error, so format drift is
// caught instead of silently dropping rows.
func ParseBenchOutput(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchreport: bad iteration count in %q", sc.Text())
		}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("benchreport: odd value/unit fields in %q", sc.Text())
		}
		b := Benchmark{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchreport: bad value %q in %q", fields[i], sc.Text())
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchreport: %w", err)
	}
	return out, nil
}

// Delta is one metric compared across two artifacts. Ratio is new/old
// (1 = unchanged); Regressed is set when the metric moved past the
// threshold in its bad direction. Metrics with no known direction are
// informational and never regress.
type Delta struct {
	Name   string  `json:"name"`
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Ratio  float64 `json:"ratio"`
	// Direction is -1 when lower is better, +1 when higher is better, 0
	// when the metric is informational.
	Direction int  `json:"direction"`
	Regressed bool `json:"regressed"`
}

// metricDirection classifies units: -1 lower-is-better, +1
// higher-is-better, 0 informational.
func metricDirection(unit string) int {
	switch unit {
	case "ns/op", "B/op", "allocs/op", "wl", "overflow", "reg%", "vio":
		return -1
	case "route%":
		return +1
	default:
		return 0
	}
}

// Thresholds sets the fractional move tolerated in a metric's bad
// direction, with optional per-unit overrides. Allocation metrics
// (allocs/op, B/op) typically get a tighter bound than timing metrics:
// allocation counts are deterministic per operation, so any growth is a
// real change in the code path, not scheduler noise.
type Thresholds struct {
	// Default applies to any unit without an override (0.30 = 30%).
	Default float64
	// PerUnit overrides the default for specific units, e.g.
	// {"allocs/op": 0.10, "B/op": 0.10}.
	PerUnit map[string]float64
}

// For returns the threshold for one unit.
func (t Thresholds) For(unit string) float64 {
	if v, ok := t.PerUnit[unit]; ok {
		return v
	}
	return t.Default
}

// Compare diffs every (benchmark, metric) present in both artifacts.
// threshold is the fractional move tolerated in the bad direction (0.30 =
// 30%); quality metrics near zero compare on absolute difference against
// threshold itself, avoiding spurious ratios. Results are sorted by
// (name, metric) so output and tests are deterministic.
func Compare(old, new File, threshold float64) []Delta {
	return CompareThresholds(old, new, Thresholds{Default: threshold})
}

// CompareThresholds is Compare with per-unit thresholds.
func CompareThresholds(old, new File, th Thresholds) []Delta {
	oldBy := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	var out []Delta
	for _, nb := range new.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			continue
		}
		for unit, nv := range nb.Metrics {
			ov, ok := ob.Metrics[unit]
			if !ok {
				continue
			}
			d := Delta{Name: nb.Name, Metric: unit, Old: ov, New: nv, Direction: metricDirection(unit)}
			if ov != 0 {
				d.Ratio = nv / ov
			} else if nv == 0 {
				d.Ratio = 1
			}
			threshold := th.For(unit)
			switch {
			case d.Direction == 0:
			case ov == 0:
				// No meaningful ratio; regress on absolute slip only.
				d.Regressed = d.Direction == -1 && nv > threshold
			case d.Direction == -1:
				d.Regressed = nv > ov*(1+threshold)
			case d.Direction == +1:
				d.Regressed = nv < ov*(1-threshold)
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Regressions filters a comparison down to the regressed deltas.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// WriteDeltas renders a comparison as an aligned text report.
func WriteDeltas(w io.Writer, deltas []Delta) {
	for _, d := range deltas {
		mark := " "
		if d.Regressed {
			mark = "!"
		}
		fmt.Fprintf(w, "%s %-60s %-10s %14.4g -> %-14.4g (x%.3f)\n",
			mark, d.Name, d.Metric, d.Old, d.New, d.Ratio)
	}
}
