package benchreport

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPairCost 	       1	     34919 ns/op	       720.0 lookups/op
BenchmarkTable1PrimalDual/Industry1-8 	       2	  51234567 ns/op	      98.75 route%	       1.25 reg%	  123456 B/op	    1234 allocs/op
PASS
ok  	repro	0.113s
`

func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d rows, want 2: %+v", len(got), got)
	}
	if got[0].Name != "BenchmarkPairCost" || got[0].Iterations != 1 {
		t.Errorf("row 0 = %+v", got[0])
	}
	if got[0].Metrics["ns/op"] != 34919 || got[0].Metrics["lookups/op"] != 720 {
		t.Errorf("row 0 metrics = %v", got[0].Metrics)
	}
	b := got[1]
	if b.Name != "BenchmarkTable1PrimalDual/Industry1-8" || b.Iterations != 2 {
		t.Errorf("row 1 = %+v", b)
	}
	want := map[string]float64{
		"ns/op": 51234567, "route%": 98.75, "reg%": 1.25, "B/op": 123456, "allocs/op": 1234,
	}
	for unit, v := range want {
		if b.Metrics[unit] != v {
			t.Errorf("metric %s = %v, want %v", unit, b.Metrics[unit], v)
		}
	}
}

func TestParseBenchOutputRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 12 34919 ns/op extra\n",       // odd value/unit fields
		"BenchmarkX 12 notanumber ns/op\n",        // bad value
		"BenchmarkX 99999999999999999999 5 x/op\n", // iteration overflow
	} {
		if _, err := ParseBenchOutput(strings.NewReader(bad)); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func file(rows ...Benchmark) File {
	return File{Schema: SchemaVersion, Benchmarks: rows}
}

func row(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: metrics}
}

// TestCompareSelfIsZeroDelta pins the round-trip acceptance criterion:
// comparing an artifact against itself yields all-unchanged deltas and no
// regressions.
func TestCompareSelfIsZeroDelta(t *testing.T) {
	f := file(
		row("BenchmarkA", map[string]float64{"ns/op": 1000, "route%": 99.5}),
		row("domain/Industry3@0.06", map[string]float64{"wl": 123456, "overflow": 0}),
	)
	// Round-trip through JSON, as the CLI does with -in.
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	deltas := Compare(f, back, 0.30)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(deltas), deltas)
	}
	for _, d := range deltas {
		if d.Ratio != 1 || d.Regressed {
			t.Errorf("self-compare delta not clean: %+v", d)
		}
	}
	if n := len(Regressions(deltas)); n != 0 {
		t.Errorf("%d regressions on self-compare", n)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	old := file(row("B", map[string]float64{
		"ns/op": 1000, "route%": 100, "lookups/op": 50,
	}))
	newer := file(row("B", map[string]float64{
		"ns/op": 1400, "route%": 60, "lookups/op": 500,
	}))
	deltas := Compare(old, newer, 0.30)
	got := map[string]bool{}
	for _, d := range deltas {
		got[d.Metric] = d.Regressed
	}
	if !got["ns/op"] {
		t.Error("40% ns/op slowdown not flagged at 30% threshold")
	}
	if !got["route%"] {
		t.Error("routed-fraction collapse not flagged")
	}
	if got["lookups/op"] {
		t.Error("informational metric flagged as regression")
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	old := file(row("B", map[string]float64{"ns/op": 1000, "route%": 100}))
	newer := file(row("B", map[string]float64{"ns/op": 1200, "route%": 95}))
	if regs := Regressions(Compare(old, newer, 0.30)); len(regs) != 0 {
		t.Errorf("within-threshold moves flagged: %+v", regs)
	}
}

func TestCompareThresholdsPerUnit(t *testing.T) {
	old := file(row("B", map[string]float64{
		"ns/op": 1000, "allocs/op": 100, "B/op": 4096,
	}))
	// ns/op +20% (inside the 30% default), allocations +20% (outside the
	// tighter 10% alloc bound) — only the alloc metrics must flag.
	newer := file(row("B", map[string]float64{
		"ns/op": 1200, "allocs/op": 120, "B/op": 4915,
	}))
	th := Thresholds{Default: 0.30, PerUnit: map[string]float64{"allocs/op": 0.10, "B/op": 0.10}}
	got := map[string]bool{}
	for _, d := range CompareThresholds(old, newer, th) {
		got[d.Metric] = d.Regressed
	}
	if got["ns/op"] {
		t.Error("20% ns/op move flagged despite 30% default threshold")
	}
	if !got["allocs/op"] || !got["B/op"] {
		t.Errorf("20%% allocation growth not flagged at 10%% alloc threshold: %+v", got)
	}
	// An allocation move inside the tighter bound stays green.
	ok := file(row("B", map[string]float64{"ns/op": 1000, "allocs/op": 105, "B/op": 4096}))
	if regs := Regressions(CompareThresholds(old, ok, th)); len(regs) != 0 {
		t.Errorf("within-alloc-threshold move flagged: %+v", regs)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	old := file(row("B", map[string]float64{"overflow": 0}))
	bad := file(row("B", map[string]float64{"overflow": 7}))
	if regs := Regressions(Compare(old, bad, 0.30)); len(regs) != 1 {
		t.Errorf("overflow from zero not flagged: %+v", regs)
	}
	same := file(row("B", map[string]float64{"overflow": 0}))
	if regs := Regressions(Compare(old, same, 0.30)); len(regs) != 0 {
		t.Errorf("zero-to-zero flagged: %+v", regs)
	}
}

func TestCompareIgnoresUnmatchedRows(t *testing.T) {
	old := file(row("Gone", map[string]float64{"ns/op": 1}))
	newer := file(row("New", map[string]float64{"ns/op": 99999}))
	if deltas := Compare(old, newer, 0.30); len(deltas) != 0 {
		t.Errorf("unmatched rows compared: %+v", deltas)
	}
}

func TestWriteDeltasMarksRegressions(t *testing.T) {
	var buf strings.Builder
	WriteDeltas(&buf, []Delta{
		{Name: "B", Metric: "ns/op", Old: 1, New: 2, Ratio: 2, Direction: -1, Regressed: true},
		{Name: "B", Metric: "route%", Old: 100, New: 100, Ratio: 1, Direction: 1},
	})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasPrefix(lines[0], "!") {
		t.Errorf("regressed line not marked: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], " ") {
		t.Errorf("clean line marked: %q", lines[1])
	}
}

func TestDomainMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("domain run in -short mode")
	}
	b, err := DomainMetrics(context.Background(), 1, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "domain/Industry1@0.04" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Metrics["route%"] <= 0 || b.Metrics["wl"] <= 0 {
		t.Errorf("suspicious domain metrics: %v", b.Metrics)
	}
}
