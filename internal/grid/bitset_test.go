package grid

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// checkBlockedInvariant asserts bit idx of BlockedWords(l) is set exactly
// when Avail(l, idx) < 1, for every edge of every layer.
func checkBlockedInvariant(t *testing.T, u *Usage) {
	t.Helper()
	g := u.Grid()
	for l := range g.Layers {
		words := u.BlockedWords(l)
		for idx := 0; idx < g.EdgeCount(l); idx++ {
			got := words[idx>>6]&(1<<(idx&63)) != 0
			want := u.Avail(l, idx) < 1
			if got != want {
				t.Fatalf("layer %d edge %d: blocked=%v avail=%d", l, idx, got, u.Avail(l, idx))
			}
		}
	}
}

func TestBlockedBitsetTracksAvail(t *testing.T) {
	g := New(9, 7, DefaultLayers(4, 2))
	g.SetRegionCap(0, geom.Rect{Lo: geom.Pt(2, 2), Hi: geom.Pt(4, 4)}, 0)
	u := NewUsage(g)
	checkBlockedInvariant(t, u)

	rng := rand.New(rand.NewSource(5))
	type op struct{ l, idx int }
	var held []op
	for i := 0; i < 3000; i++ {
		l := rng.Intn(len(g.Layers))
		idx := rng.Intn(g.EdgeCount(l))
		if len(held) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(held))
			u.Add(held[k].l, held[k].idx, -1)
			held = append(held[:k], held[k+1:]...)
		} else {
			u.Add(l, idx, 1)
			held = append(held, op{l, idx})
		}
	}
	checkBlockedInvariant(t, u)

	// A capacity edit after NewUsage must fold in lazily.
	g.SetCap(1, 3, 3, 0)
	checkBlockedInvariant(t, u)
	g.SetRegionCap(2, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(8, 6)}, 1)
	checkBlockedInvariant(t, u)

	// Clone carries the bitset; Reset restores the all-zero state.
	c := u.Clone()
	checkBlockedInvariant(t, c)
	u.Reset()
	if u.TotalUse() != 0 {
		t.Fatalf("Reset left %d tracks in use", u.TotalUse())
	}
	checkBlockedInvariant(t, u)
}

func TestUsagePool(t *testing.T) {
	g := New(6, 6, DefaultLayers(2, 3))
	p := NewUsagePool(g)
	u := p.Get()
	u.Add(0, 1, 3)
	p.Put(u)
	v := p.Get()
	if v.TotalUse() != 0 {
		t.Fatalf("pooled tracker not reset: %d tracks in use", v.TotalUse())
	}
	checkBlockedInvariant(t, v)
	p.Put(v)
	gets, fresh := p.Counters()
	if gets != 2 {
		t.Fatalf("gets=%d want 2", gets)
	}
	if fresh < 1 || fresh > gets {
		t.Fatalf("fresh=%d out of range (gets=%d)", fresh, gets)
	}

	other := New(6, 6, DefaultLayers(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("Put accepted a tracker for a different grid")
		}
	}()
	p.Put(NewUsage(other))
}
