package grid

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func testGrid() *Grid {
	return New(8, 6, DefaultLayers(4, 3))
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(1, 5, DefaultLayers(2, 1)) },
		func() { New(5, 1, DefaultLayers(2, 1)) },
		func() { New(5, 5, nil) },
		func() { DefaultLayers(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDefaultLayers(t *testing.T) {
	layers := DefaultLayers(5, 7)
	if len(layers) != 5 {
		t.Fatalf("len = %d", len(layers))
	}
	for i, l := range layers {
		wantDir := Horizontal
		if i%2 == 1 {
			wantDir = Vertical
		}
		if l.Dir != wantDir || l.Cap != 7 {
			t.Errorf("layer %d = %+v", i, l)
		}
	}
	g := New(4, 4, layers)
	if got := g.HLayers(); len(got) != 3 {
		t.Errorf("HLayers = %v", got)
	}
	if got := g.VLayers(); len(got) != 2 {
		t.Errorf("VLayers = %v", got)
	}
}

func TestEdgeIndexRoundTrip(t *testing.T) {
	g := testGrid()
	for l := range g.Layers {
		n := g.EdgeCount(l)
		seen := make(map[int]bool)
		maxX, maxY := g.W-1, g.H
		if g.Layers[l].Dir == Vertical {
			maxX, maxY = g.W, g.H-1
		}
		for y := 0; y < maxY; y++ {
			for x := 0; x < maxX; x++ {
				idx := g.EdgeIndex(l, x, y)
				if idx < 0 || idx >= n {
					t.Fatalf("index %d out of range [0,%d)", idx, n)
				}
				if seen[idx] {
					t.Fatalf("duplicate index %d", idx)
				}
				seen[idx] = true
				gx, gy := g.EdgeCell(l, idx)
				if gx != x || gy != y {
					t.Fatalf("EdgeCell(%d) = (%d,%d), want (%d,%d)", idx, gx, gy, x, y)
				}
			}
		}
		if len(seen) != n {
			t.Fatalf("layer %d covered %d of %d edges", l, len(seen), n)
		}
	}
}

func TestEdgeIndexPanicsOutOfRange(t *testing.T) {
	g := testGrid()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.EdgeIndex(0, g.W-1, 0) // horizontal edge source must be < W-1
}

func TestCapAndRegion(t *testing.T) {
	g := testGrid()
	if g.Cap(0, 2, 2) != 3 {
		t.Fatalf("default cap = %d", g.Cap(0, 2, 2))
	}
	g.SetCap(0, 2, 2, 9)
	if g.Cap(0, 2, 2) != 9 {
		t.Fatal("SetCap did not take")
	}
	g.SetRegionCap(0, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(3, 3)}, 0)
	for y := 0; y <= 3; y++ {
		for x := 0; x <= 3 && x < g.W-1; x++ {
			if g.Cap(0, x, y) != 0 {
				t.Errorf("edge (%d,%d) cap = %d, want 0", x, y, g.Cap(0, x, y))
			}
		}
	}
	// Region clamps at grid boundary without panicking.
	g.SetRegionCap(1, geom.Rect{Lo: geom.Pt(-5, -5), Hi: geom.Pt(50, 50)}, 1)
}

func TestSegFits(t *testing.T) {
	g := testGrid()
	h := geom.S(geom.Pt(0, 2), geom.Pt(5, 2))
	v := geom.S(geom.Pt(3, 0), geom.Pt(3, 4))
	if !g.SegFits(0, h) || g.SegFits(0, v) {
		t.Error("layer 0 is horizontal")
	}
	if !g.SegFits(1, v) || g.SegFits(1, h) {
		t.Error("layer 1 is vertical")
	}
	out := geom.S(geom.Pt(0, 0), geom.Pt(20, 0))
	if g.SegFits(0, out) {
		t.Error("out-of-bounds segment fits")
	}
	zero := geom.S(geom.Pt(2, 2), geom.Pt(2, 2))
	if !g.SegFits(0, zero) || !g.SegFits(1, zero) {
		t.Error("zero segment should fit both directions")
	}
}

func TestSegEdges(t *testing.T) {
	g := testGrid()
	var idxs []int
	g.SegEdges(0, geom.S(geom.Pt(1, 2), geom.Pt(4, 2)), func(i int) { idxs = append(idxs, i) })
	if len(idxs) != 3 {
		t.Fatalf("edges = %v", idxs)
	}
	for k, i := range idxs {
		x, y := g.EdgeCell(0, i)
		if y != 2 || x != 1+k {
			t.Errorf("edge %d = (%d,%d)", k, x, y)
		}
	}
	// Reversed segment covers the same edges.
	var rev []int
	g.SegEdges(0, geom.S(geom.Pt(4, 2), geom.Pt(1, 2)), func(i int) { rev = append(rev, i) })
	if len(rev) != len(idxs) {
		t.Error("reversed segment covers different edges")
	}
}

func TestUsageBasics(t *testing.T) {
	g := testGrid()
	u := NewUsage(g)
	s := geom.S(geom.Pt(0, 1), geom.Pt(4, 1))
	if !u.SegFits(0, s, 3) {
		t.Fatal("empty grid should fit 3 tracks")
	}
	if u.SegFits(0, s, 4) {
		t.Fatal("capacity is 3; 4 should not fit")
	}
	u.AddSeg(0, s, 2)
	if u.TotalUse() != 8 {
		t.Errorf("TotalUse = %d, want 8", u.TotalUse())
	}
	if !u.SegFits(0, s, 1) || u.SegFits(0, s, 2) {
		t.Error("remaining capacity should be exactly 1")
	}
	if u.Overflow() != 0 {
		t.Error("no overflow expected")
	}
	u.AddSeg(0, s, 2)
	if u.Overflow() != 4 || u.OverflowEdges() != 4 {
		t.Errorf("Overflow = %d edges=%d, want 4/4", u.Overflow(), u.OverflowEdges())
	}
	u.AddSeg(0, s, -4)
	if u.TotalUse() != 0 {
		t.Error("release did not restore zero usage")
	}
}

func TestUsageUnderflowPanics(t *testing.T) {
	u := NewUsage(testGrid())
	defer func() {
		if recover() == nil {
			t.Fatal("expected underflow panic")
		}
	}()
	u.Add(0, 0, -1)
}

func TestUsageClone(t *testing.T) {
	u := NewUsage(testGrid())
	u.Add(0, 3, 2)
	c := u.Clone()
	c.Add(0, 3, 1)
	if u.Use(0, 3) != 2 || c.Use(0, 3) != 3 {
		t.Error("clone is not independent")
	}
}

func TestCellCongestion(t *testing.T) {
	g := testGrid()
	u := NewUsage(g)
	u.AddSeg(0, geom.S(geom.Pt(2, 3), geom.Pt(4, 3)), 3) // exactly full
	m := u.CellCongestion()
	if m[3][2] != 1000 || m[3][3] != 1000 || m[3][4] != 1000 {
		t.Errorf("congestion row = %v", m[3])
	}
	if m[0][0] != 0 {
		t.Error("untouched cell should be 0")
	}
	// Blocked edge carrying wires shows > 1000.
	g.SetCap(1, 1, 1, 0)
	u.AddSeg(1, geom.S(geom.Pt(1, 1), geom.Pt(1, 2)), 1)
	m = u.CellCongestion()
	if m[1][1] <= 1000 {
		t.Errorf("blocked-edge congestion = %d", m[1][1])
	}
}

func TestUsageConservationProperty(t *testing.T) {
	g := testGrid()
	f := func(x1, y1, len1 uint8, delta uint8) bool {
		u := NewUsage(g)
		x := int(x1) % (g.W - 1)
		y := int(y1) % g.H
		l := 1 + int(len1)%(g.W-1-x)
		d := 1 + int(delta)%4
		s := geom.S(geom.Pt(x, y), geom.Pt(x+l, y))
		u.AddSeg(0, s, d)
		if u.TotalUse() != l*d {
			return false
		}
		u.AddSeg(0, s, -d)
		return u.TotalUse() == 0 && u.Overflow() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
