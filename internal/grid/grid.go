// Package grid models the 3-D global routing grid used by Streak: each
// metal layer is divided into rectangular G-cells; edges between adjacent
// cells carry routing tracks with per-edge capacities. Layers are
// unidirectional: a horizontal layer only carries horizontal wires and a
// vertical layer only vertical wires, matching §II-B of the paper.
package grid

import (
	"fmt"

	"repro/internal/geom"
)

// Dir is a layer's preferred (and only) routing direction.
type Dir uint8

const (
	// Horizontal layers route along the X axis.
	Horizontal Dir = iota
	// Vertical layers route along the Y axis.
	Vertical
)

// String returns "H" or "V".
func (d Dir) String() string {
	if d == Horizontal {
		return "H"
	}
	return "V"
}

// Layer describes one unidirectional metal layer.
type Layer struct {
	// Name is a human-readable layer name such as "M2".
	Name string
	// Dir is the routing direction of every track on the layer.
	Dir Dir
	// Cap is the default per-edge track capacity.
	Cap int
}

// Grid is a W x H x len(Layers) G-cell routing grid with per-edge
// capacities. The zero value is not usable; call New.
type Grid struct {
	// W and H are the grid dimensions in G-cells.
	W, H int
	// Layers lists the metal stack, bottom-up.
	Layers []Layer

	// caps[l] holds the remaining-capacity-independent base capacity for
	// every edge on layer l, indexed by EdgeIndex.
	caps [][]int32

	// capGen counts capacity edits (SetCap/SetRegionCap); Usage trackers
	// compare it against the generation their blocked-edge bitsets were
	// built from and resync lazily, so capacity edits after NewUsage stay
	// correct without a hot-path cost beyond one comparison.
	capGen uint64
}

// New creates a grid with every edge set to its layer's default capacity.
// It panics on non-positive dimensions or an empty layer stack, which are
// always caller bugs.
func New(w, h int, layers []Layer) *Grid {
	if w < 2 || h < 2 {
		panic(fmt.Sprintf("grid: dimensions %dx%d too small", w, h))
	}
	if len(layers) == 0 {
		panic("grid: no layers")
	}
	g := &Grid{W: w, H: h, Layers: append([]Layer(nil), layers...)}
	g.caps = make([][]int32, len(layers))
	for l, layer := range layers {
		n := g.EdgeCount(l)
		g.caps[l] = make([]int32, n)
		for i := range g.caps[l] {
			g.caps[l][i] = int32(layer.Cap)
		}
	}
	return g
}

// DefaultLayers returns a typical 10 nm-style stack of n alternating
// unidirectional layers (H, V, H, V, ...) each with capacity cap.
// n must be at least 2 so both directions are routable.
func DefaultLayers(n, cap int) []Layer {
	if n < 2 {
		panic("grid: need at least 2 layers")
	}
	layers := make([]Layer, n)
	for i := range layers {
		d := Horizontal
		if i%2 == 1 {
			d = Vertical
		}
		layers[i] = Layer{Name: fmt.Sprintf("M%d", i+2), Dir: d, Cap: cap}
	}
	return layers
}

// HLayers returns the indices of horizontal layers, bottom-up.
func (g *Grid) HLayers() []int { return g.layersOf(Horizontal) }

// VLayers returns the indices of vertical layers, bottom-up.
func (g *Grid) VLayers() []int { return g.layersOf(Vertical) }

func (g *Grid) layersOf(d Dir) []int {
	var out []int
	for i, l := range g.Layers {
		if l.Dir == d {
			out = append(out, i)
		}
	}
	return out
}

// EdgeCount returns the number of routing edges on layer l.
func (g *Grid) EdgeCount(l int) int {
	if g.Layers[l].Dir == Horizontal {
		return (g.W - 1) * g.H
	}
	return g.W * (g.H - 1)
}

// EdgeIndex returns the dense index of the edge leaving cell (x, y) in the
// layer's routing direction: for a horizontal layer the edge
// (x,y)-(x+1,y); for a vertical layer the edge (x,y)-(x,y+1).
// It panics on out-of-range coordinates.
func (g *Grid) EdgeIndex(l, x, y int) int {
	if g.Layers[l].Dir == Horizontal {
		if x < 0 || x >= g.W-1 || y < 0 || y >= g.H {
			panic(fmt.Sprintf("grid: horizontal edge (%d,%d) out of range on layer %d", x, y, l))
		}
		return y*(g.W-1) + x
	}
	if x < 0 || x >= g.W || y < 0 || y >= g.H-1 {
		panic(fmt.Sprintf("grid: vertical edge (%d,%d) out of range on layer %d", x, y, l))
	}
	return y*g.W + x
}

// EdgeCell returns the (x, y) cell whose outgoing edge has the given dense
// index on layer l — the inverse of EdgeIndex.
func (g *Grid) EdgeCell(l, idx int) (x, y int) {
	if g.Layers[l].Dir == Horizontal {
		return idx % (g.W - 1), idx / (g.W - 1)
	}
	return idx % g.W, idx / g.W
}

// Cap returns the base capacity of edge (x, y) on layer l.
func (g *Grid) Cap(l, x, y int) int {
	return int(g.caps[l][g.EdgeIndex(l, x, y)])
}

// SetCap overrides the base capacity of a single edge.
func (g *Grid) SetCap(l, x, y, c int) {
	g.caps[l][g.EdgeIndex(l, x, y)] = int32(c)
	g.capGen++
}

// SetRegionCap sets the capacity of every edge on layer l whose source cell
// lies inside r (inclusive) — used to model blockages and congested macros.
func (g *Grid) SetRegionCap(l int, r geom.Rect, c int) {
	g.capGen++
	for y := max(0, r.Lo.Y); y <= min(g.H-1, r.Hi.Y); y++ {
		for x := max(0, r.Lo.X); x <= min(g.W-1, r.Hi.X); x++ {
			if g.Layers[l].Dir == Horizontal && x < g.W-1 {
				g.caps[l][g.EdgeIndex(l, x, y)] = int32(c)
			}
			if g.Layers[l].Dir == Vertical && y < g.H-1 {
				g.caps[l][g.EdgeIndex(l, x, y)] = int32(c)
			}
		}
	}
}

// InBounds reports whether the cell (x, y) lies on the grid.
func (g *Grid) InBounds(x, y int) bool {
	return x >= 0 && x < g.W && y >= 0 && y < g.H
}

// ClampPoint clamps p to the grid.
func (g *Grid) ClampPoint(p geom.Point) geom.Point {
	return geom.Pt(min(max(p.X, 0), g.W-1), min(max(p.Y, 0), g.H-1))
}

// SegFits reports whether the segment's orientation matches layer l's
// direction and the segment stays in bounds. Zero-length segments fit any
// layer.
func (g *Grid) SegFits(l int, s geom.Seg) bool {
	n := s.Norm()
	if !g.InBounds(n.A.X, n.A.Y) || !g.InBounds(n.B.X, n.B.Y) {
		return false
	}
	if n.Len() == 0 {
		return true
	}
	if g.Layers[l].Dir == Horizontal {
		return n.Horizontal()
	}
	return n.Vertical()
}

// SegEdges calls fn for every edge index the segment occupies on layer l.
// It panics if the segment does not fit the layer (orientation or bounds).
func (g *Grid) SegEdges(l int, s geom.Seg, fn func(idx int)) {
	n := s.Norm()
	if !g.SegFits(l, n) {
		panic(fmt.Sprintf("grid: segment %v does not fit layer %d (%s)", s, l, g.Layers[l].Dir))
	}
	if n.Len() == 0 {
		return
	}
	if n.Horizontal() {
		for x := n.A.X; x < n.B.X; x++ {
			fn(g.EdgeIndex(l, x, n.A.Y))
		}
		return
	}
	for y := n.A.Y; y < n.B.Y; y++ {
		fn(g.EdgeIndex(l, n.A.X, y))
	}
}
