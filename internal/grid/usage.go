package grid

import (
	"fmt"

	"repro/internal/geom"
)

// Usage tracks the number of tracks in use on every edge of a Grid. It is
// the mutable routing state layered over the immutable base capacities.
type Usage struct {
	g   *Grid
	use [][]int32
}

// NewUsage creates an all-zero usage tracker for g.
func NewUsage(g *Grid) *Usage {
	u := &Usage{g: g, use: make([][]int32, len(g.Layers))}
	for l := range g.Layers {
		u.use[l] = make([]int32, g.EdgeCount(l))
	}
	return u
}

// Grid returns the grid this usage tracks.
func (u *Usage) Grid() *Grid { return u.g }

// Clone returns an independent copy of the usage state.
func (u *Usage) Clone() *Usage {
	c := &Usage{g: u.g, use: make([][]int32, len(u.use))}
	for l := range u.use {
		c.use[l] = append([]int32(nil), u.use[l]...)
	}
	return c
}

// Use returns the tracks in use on edge idx of layer l.
func (u *Usage) Use(l, idx int) int { return int(u.use[l][idx]) }

// Avail returns the remaining tracks on edge idx of layer l. Negative when
// the edge is overflowed.
func (u *Usage) Avail(l, idx int) int {
	return int(u.g.caps[l][idx] - u.use[l][idx])
}

// EdgeCap returns the base capacity of edge idx of layer l — the dense
// counterpart of Grid.Cap, so snapshotters can walk every edge without the
// cell-coordinate round trip.
func (u *Usage) EdgeCap(l, idx int) int {
	return int(u.g.caps[l][idx])
}

// Add adjusts the usage on edge idx of layer l by delta (may be negative
// to release tracks). It panics if usage would go negative, which means a
// release without a matching reservation.
func (u *Usage) Add(l, idx, delta int) {
	v := u.use[l][idx] + int32(delta)
	if v < 0 {
		panic(fmt.Sprintf("grid: usage underflow on layer %d edge %d", l, idx))
	}
	u.use[l][idx] = v
}

// AddSeg adds delta tracks along every edge the segment covers on layer l.
func (u *Usage) AddSeg(l int, s geom.Seg, delta int) {
	u.g.SegEdges(l, s, func(idx int) { u.Add(l, idx, delta) })
}

// SegFits reports whether the segment can take `need` additional tracks on
// layer l without overflowing any edge it covers.
func (u *Usage) SegFits(l int, s geom.Seg, need int) bool {
	if !u.g.SegFits(l, s) {
		return false
	}
	ok := true
	u.g.SegEdges(l, s, func(idx int) {
		if u.Avail(l, idx) < need {
			ok = false
		}
	})
	return ok
}

// Overflow returns the total overflow (usage beyond capacity, summed over
// all edges and layers).
func (u *Usage) Overflow() int {
	total := 0
	for l := range u.use {
		for idx, v := range u.use[l] {
			if over := int(v) - int(u.g.caps[l][idx]); over > 0 {
				total += over
			}
		}
	}
	return total
}

// OverflowEdges returns the number of edges whose usage exceeds capacity.
func (u *Usage) OverflowEdges() int {
	n := 0
	for l := range u.use {
		for idx, v := range u.use[l] {
			if int(v) > int(u.g.caps[l][idx]) {
				n++
			}
		}
	}
	return n
}

// TotalUse returns the total number of used edge-tracks across all layers,
// i.e. the routed wirelength in G-cell edge units.
func (u *Usage) TotalUse() int {
	total := 0
	for l := range u.use {
		for _, v := range u.use[l] {
			total += int(v)
		}
	}
	return total
}

// CellCongestion returns a 2-D map of congestion per cell: for each cell the
// maximum use/capacity ratio over the incident edges of all layers, in
// per-mille (1000 = exactly full). Cells beyond 1000 are overflowed. This is
// the data behind the paper's congestion heatmaps (Figs. 11 and 12).
func (u *Usage) CellCongestion() [][]int {
	m := make([][]int, u.g.H)
	for y := range m {
		m[y] = make([]int, u.g.W)
	}
	note := func(x, y, ratio int) {
		if ratio > m[y][x] {
			m[y][x] = ratio
		}
	}
	for l, layer := range u.g.Layers {
		for idx, v := range u.use[l] {
			cap := int(u.g.caps[l][idx])
			var ratio int
			switch {
			case cap > 0:
				ratio = int(v) * 1000 / cap
			case v > 0:
				ratio = 2000 // wires through a blocked edge
			}
			x, y := u.g.EdgeCell(l, idx)
			note(x, y, ratio)
			if layer.Dir == Horizontal {
				note(x+1, y, ratio)
			} else {
				note(x, y+1, ratio)
			}
		}
	}
	return m
}
