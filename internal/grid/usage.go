package grid

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// Usage tracks the number of tracks in use on every edge of a Grid. It is
// the mutable routing state layered over the immutable base capacities.
//
// Alongside the scalar per-edge counts it maintains a words-wide
// blocked-edge bitset per layer: bit idx of blocked[l] is set exactly when
// edge idx has no remaining track (Avail < 1). Candidate capacity checks
// intersect precomputed candidate masks against these words — O(edges/64)
// word-ANDs instead of a segment-at-a-time walk (see BlockedWords).
type Usage struct {
	g       *Grid
	use     [][]int32
	blocked [][]uint64
	// capGen is the Grid.capGen the blocked bitset was last synced to;
	// a capacity edit after NewUsage triggers a lazy rebuild.
	capGen uint64
}

// NewUsage creates an all-zero usage tracker for g.
func NewUsage(g *Grid) *Usage {
	u := &Usage{g: g, use: make([][]int32, len(g.Layers)), blocked: make([][]uint64, len(g.Layers))}
	for l := range g.Layers {
		n := g.EdgeCount(l)
		u.use[l] = make([]int32, n)
		u.blocked[l] = make([]uint64, (n+63)/64)
	}
	u.rebuildBlocked()
	return u
}

// Grid returns the grid this usage tracks.
func (u *Usage) Grid() *Grid { return u.g }

// Clone returns an independent copy of the usage state. Clones are born
// synced: if the grid's capacities were edited after u's last bitset
// resync, u is resynced first, so the copy never carries a stale blocked
// bitset — Clone callers frequently hand the copy to code that mutates
// the grid again before the first BlockedWords read, and a stale bitset
// paired with a matching generation stamp would survive that read.
func (u *Usage) Clone() *Usage {
	if u.capGen != u.g.capGen {
		u.rebuildBlocked()
	}
	c := &Usage{g: u.g, use: make([][]int32, len(u.use)), blocked: make([][]uint64, len(u.blocked)), capGen: u.capGen}
	for l := range u.use {
		c.use[l] = append([]int32(nil), u.use[l]...)
		c.blocked[l] = append([]uint64(nil), u.blocked[l]...)
	}
	return c
}

// Reset returns the tracker to the all-zero state, keeping its storage —
// the pooled-scratch path for steady-state serving.
func (u *Usage) Reset() {
	for l := range u.use {
		s := u.use[l]
		for i := range s {
			s[i] = 0
		}
	}
	u.rebuildBlocked()
}

// rebuildBlocked recomputes every layer's blocked bitset from the current
// use counts and capacities.
func (u *Usage) rebuildBlocked() {
	for l := range u.use {
		b := u.blocked[l]
		for i := range b {
			b[i] = 0
		}
		caps := u.g.caps[l]
		for idx, v := range u.use[l] {
			if v >= caps[idx] {
				b[idx>>6] |= 1 << (idx & 63)
			}
		}
	}
	u.capGen = u.g.capGen
}

// BlockedWords returns layer l's blocked-edge bitset: bit idx is set iff
// edge idx has no remaining track. The slice aliases the tracker's state —
// read-only, valid until the next mutation. Capacity edits on the grid
// since the last call are folded in lazily.
func (u *Usage) BlockedWords(l int) []uint64 {
	if u.capGen != u.g.capGen {
		u.rebuildBlocked()
	}
	return u.blocked[l]
}

// Use returns the tracks in use on edge idx of layer l.
func (u *Usage) Use(l, idx int) int { return int(u.use[l][idx]) }

// Avail returns the remaining tracks on edge idx of layer l. Negative when
// the edge is overflowed.
func (u *Usage) Avail(l, idx int) int {
	return int(u.g.caps[l][idx] - u.use[l][idx])
}

// EdgeCap returns the base capacity of edge idx of layer l — the dense
// counterpart of Grid.Cap, so snapshotters can walk every edge without the
// cell-coordinate round trip.
func (u *Usage) EdgeCap(l, idx int) int {
	return int(u.g.caps[l][idx])
}

// Add adjusts the usage on edge idx of layer l by delta (may be negative
// to release tracks). It panics if usage would go negative, which means a
// release without a matching reservation.
func (u *Usage) Add(l, idx, delta int) {
	v := u.use[l][idx] + int32(delta)
	if v < 0 {
		panic(fmt.Sprintf("grid: usage underflow on layer %d edge %d", l, idx))
	}
	u.use[l][idx] = v
	if v >= u.g.caps[l][idx] {
		u.blocked[l][idx>>6] |= 1 << (idx & 63)
	} else {
		u.blocked[l][idx>>6] &^= 1 << (idx & 63)
	}
}

// AddSeg adds delta tracks along every edge the segment covers on layer l.
func (u *Usage) AddSeg(l int, s geom.Seg, delta int) {
	u.g.SegEdges(l, s, func(idx int) { u.Add(l, idx, delta) })
}

// SegFits reports whether the segment can take `need` additional tracks on
// layer l without overflowing any edge it covers.
func (u *Usage) SegFits(l int, s geom.Seg, need int) bool {
	if !u.g.SegFits(l, s) {
		return false
	}
	ok := true
	u.g.SegEdges(l, s, func(idx int) {
		if u.Avail(l, idx) < need {
			ok = false
		}
	})
	return ok
}

// Overflow returns the total overflow (usage beyond capacity, summed over
// all edges and layers).
func (u *Usage) Overflow() int {
	total := 0
	for l := range u.use {
		for idx, v := range u.use[l] {
			if over := int(v) - int(u.g.caps[l][idx]); over > 0 {
				total += over
			}
		}
	}
	return total
}

// OverflowEdges returns the number of edges whose usage exceeds capacity.
func (u *Usage) OverflowEdges() int {
	n := 0
	for l := range u.use {
		for idx, v := range u.use[l] {
			if int(v) > int(u.g.caps[l][idx]) {
				n++
			}
		}
	}
	return n
}

// TotalUse returns the total number of used edge-tracks across all layers,
// i.e. the routed wirelength in G-cell edge units.
func (u *Usage) TotalUse() int {
	total := 0
	for l := range u.use {
		for _, v := range u.use[l] {
			total += int(v)
		}
	}
	return total
}

// CellCongestion returns a 2-D map of congestion per cell: for each cell the
// maximum use/capacity ratio over the incident edges of all layers, in
// per-mille (1000 = exactly full). Cells beyond 1000 are overflowed. This is
// the data behind the paper's congestion heatmaps (Figs. 11 and 12).
func (u *Usage) CellCongestion() [][]int {
	m := make([][]int, u.g.H)
	for y := range m {
		m[y] = make([]int, u.g.W)
	}
	note := func(x, y, ratio int) {
		if ratio > m[y][x] {
			m[y][x] = ratio
		}
	}
	for l, layer := range u.g.Layers {
		for idx, v := range u.use[l] {
			cap := int(u.g.caps[l][idx])
			var ratio int
			switch {
			case cap > 0:
				ratio = int(v) * 1000 / cap
			case v > 0:
				ratio = 2000 // wires through a blocked edge
			}
			x, y := u.g.EdgeCell(l, idx)
			note(x, y, ratio)
			if layer.Dir == Horizontal {
				note(x+1, y, ratio)
			} else {
				note(x, y+1, ratio)
			}
		}
	}
	return m
}

// UsagePool pools Usage trackers for one grid so steady-state solve paths
// (one tracker per pd/hier solve, per-request scratch under streakd) reuse
// storage instead of reallocating every layer's edge arrays. Get returns a
// zeroed tracker; Put recycles one. Safe for concurrent use.
type UsagePool struct {
	g    *Grid
	pool sync.Pool

	gets  atomic.Int64
	fresh atomic.Int64
}

// NewUsagePool creates a pool handing out trackers for g.
func NewUsagePool(g *Grid) *UsagePool {
	p := &UsagePool{g: g}
	p.pool.New = func() any {
		p.fresh.Add(1)
		return NewUsage(p.g)
	}
	return p
}

// Get returns an all-zero tracker, reusing a pooled one when available.
func (p *UsagePool) Get() *Usage {
	p.gets.Add(1)
	u := p.pool.Get().(*Usage)
	u.Reset()
	return u
}

// Put recycles the tracker. It panics when u tracks a different grid,
// which is always a caller bug.
func (p *UsagePool) Put(u *Usage) {
	if u.g != p.g {
		panic("grid: UsagePool.Put with a tracker for a different grid")
	}
	p.pool.Put(u)
}

// Counters reports cumulative Get calls and how many of them had to
// allocate a fresh tracker — the pooled-vs-fresh telemetry split.
func (p *UsagePool) Counters() (gets, fresh int64) {
	return p.gets.Load(), p.fresh.Load()
}
