package grid

import "testing"

// TestCloneBornSynced pins the Clone staleness contract: cloning a tracker
// whose blocked bitset is stale (the grid's capacities were edited after
// the tracker's last resync) must produce a clone that is already synced —
// stamp current AND bitset reflecting the edited capacities. Before the
// fix, Clone copied the stale bitset with the stale stamp verbatim;
// single-threaded reads were saved by BlockedWords' lazy resync, but the
// clone was born carrying state it would have to throw away, and any future
// read path trusting the stamp-matches-generation invariant at birth would
// have seen blocked edges as free.
func TestCloneBornSynced(t *testing.T) {
	g := New(8, 8, DefaultLayers(2, 2))
	u := NewUsage(g)

	// Stale the tracker: zero out one edge's capacity after the tracker's
	// last bitset sync.
	g.SetCap(0, 2, 2, 0)
	if u.capGen == g.capGen {
		t.Fatal("test setup broken: tracker not stale after SetCap")
	}

	c := u.Clone()
	if c.capGen != g.capGen {
		t.Fatalf("clone born stale: stamp %d, grid generation %d", c.capGen, g.capGen)
	}
	idx := g.EdgeIndex(0, 2, 2)
	if c.blocked[0][idx>>6]&(1<<(idx&63)) == 0 {
		t.Fatal("clone's bitset misses the capacity edit that preceded Clone")
	}
	// The source tracker was resynced in passing, not corrupted.
	if u.capGen != g.capGen {
		t.Fatal("source tracker left stale after Clone")
	}
}

// TestCloneSurvivesInterleavedCapEdit mutates the grid between Clone and
// the clone's first read, the exact interleaving the eager resync protects:
// the clone must fold BOTH capacity edits into its first BlockedWords view.
func TestCloneSurvivesInterleavedCapEdit(t *testing.T) {
	g := New(8, 8, DefaultLayers(2, 2))
	u := NewUsage(g)
	g.SetCap(0, 2, 2, 0) // edit #1: tracker goes stale
	c := u.Clone()
	g.SetCap(0, 4, 4, 0) // edit #2: between Clone and first read

	for name, tr := range map[string]*Usage{"clone": c, "source": u} {
		w := tr.BlockedWords(0)
		for _, pt := range [][2]int{{2, 2}, {4, 4}} {
			idx := g.EdgeIndex(0, pt[0], pt[1])
			if w[idx>>6]&(1<<(idx&63)) == 0 {
				t.Fatalf("%s: edge (%d,%d) blocked by capacity edit but not in bitset", name, pt[0], pt[1])
			}
		}
	}
}

// TestCloneIsolation checks that usage mutations on a clone never leak into
// the source tracker and vice versa.
func TestCloneIsolation(t *testing.T) {
	g := New(8, 8, DefaultLayers(2, 1))
	u := NewUsage(g)
	c := u.Clone()

	idx := g.EdgeIndex(0, 1, 1)
	c.Add(0, idx, 1) // fills the edge (cap 1) on the clone only
	if u.Use(0, idx) != 0 {
		t.Fatal("clone mutation leaked into source usage")
	}
	if u.BlockedWords(0)[idx>>6]&(1<<(idx&63)) != 0 {
		t.Fatal("clone mutation leaked into source bitset")
	}
	if c.BlockedWords(0)[idx>>6]&(1<<(idx&63)) == 0 {
		t.Fatal("clone lost its own mutation")
	}
}
