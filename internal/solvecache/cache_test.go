package solvecache

import (
	"testing"

	"repro/internal/core"
)

func testEntry(k byte, family uint64) *entry {
	var key Key
	key[0] = k
	return &entry{key: key, family: family, result: &core.Result{}}
}

func TestCacheLRUBound(t *testing.T) {
	c := NewCache(2)
	c.insert(testEntry(1, 10))
	c.insert(testEntry(2, 20))
	c.insert(testEntry(3, 30)) // evicts entry 1

	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	var k1, k2 Key
	k1[0], k2[0] = 1, 2
	if c.get(k1) != nil {
		t.Fatal("oldest entry survived past the bound")
	}
	if c.get(k2) == nil {
		t.Fatal("entry 2 evicted early")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 eviction, 1 hit, 1 miss", st)
	}
	if c.base(10) != nil {
		t.Fatal("family index still points at the evicted entry")
	}
	if c.base(20) == nil {
		t.Fatal("family index lost a live entry")
	}
}

func TestCacheLRUPromotion(t *testing.T) {
	c := NewCache(2)
	c.insert(testEntry(1, 10))
	c.insert(testEntry(2, 20))
	var k1 Key
	k1[0] = 1
	if c.get(k1) == nil { // promote 1 to MRU
		t.Fatal("entry 1 missing")
	}
	c.insert(testEntry(3, 30)) // must evict 2, not the promoted 1
	if c.get(k1) == nil {
		t.Fatal("promoted entry evicted")
	}
	var k2 Key
	k2[0] = 2
	if c.get(k2) != nil {
		t.Fatal("LRU victim survived")
	}
}

func TestCacheFamilyTracksMRU(t *testing.T) {
	c := NewCache(4)
	c.insert(testEntry(1, 10))
	c.insert(testEntry(2, 10)) // same family, newer
	if e := c.base(10); e == nil || e.key[0] != 2 {
		t.Fatal("family index not pointing at the newest same-family entry")
	}
	var k1 Key
	k1[0] = 1
	c.get(k1) // promoting entry 1 repoints the family index
	if e := c.base(10); e == nil || e.key[0] != 1 {
		t.Fatal("family index did not follow the most recently used entry")
	}
}

func TestCacheSameKeyReplaces(t *testing.T) {
	c := NewCache(2)
	c.insert(testEntry(1, 10))
	c.insert(testEntry(1, 10))
	if c.Len() != 1 {
		t.Fatalf("len %d after duplicate insert, want 1", c.Len())
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("duplicate insert counted as eviction")
	}
}
