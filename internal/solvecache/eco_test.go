package solvecache

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/benchgen"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/signal"
)

// mutate applies one random ECO-style edit — add a blockage, remove a
// blockage, or translate a whole group — keeping the design valid.
func mutate(r *rand.Rand, d *signal.Design) string {
	for {
		switch r.Intn(3) {
		case 0: // add a small full blockage
			w, h := 1+r.Intn(3), 1+r.Intn(3)
			x := r.Intn(d.Grid.W - w)
			y := r.Intn(d.Grid.H - h)
			d.Grid.Blockages = append(d.Grid.Blockages, signal.Blockage{
				Layer: r.Intn(d.Grid.NumLayers),
				Rect:  geom.Rect{Lo: geom.Pt(x, y), Hi: geom.Pt(x+w, y+h)},
			})
			return "add-blockage"
		case 1: // remove a blockage
			if len(d.Grid.Blockages) == 0 {
				continue
			}
			i := r.Intn(len(d.Grid.Blockages))
			d.Grid.Blockages = append(d.Grid.Blockages[:i], d.Grid.Blockages[i+1:]...)
			return "remove-blockage"
		case 2: // translate one group, clamped in-bounds
			gi := r.Intn(len(d.Groups))
			g := &d.Groups[gi]
			lo := geom.Pt(d.Grid.W, d.Grid.H)
			hi := geom.Pt(0, 0)
			for bi := range g.Bits {
				for _, p := range g.Bits[bi].Pins {
					lo.X, lo.Y = min(lo.X, p.Loc.X), min(lo.Y, p.Loc.Y)
					hi.X, hi.Y = max(hi.X, p.Loc.X), max(hi.Y, p.Loc.Y)
				}
			}
			dx := clampShift(r.Intn(5)-2, lo.X, hi.X, d.Grid.W)
			dy := clampShift(r.Intn(5)-2, lo.Y, hi.Y, d.Grid.H)
			if dx == 0 && dy == 0 {
				dy = clampShift(1, lo.Y, hi.Y, d.Grid.H)
				if dy == 0 {
					continue
				}
			}
			for bi := range g.Bits {
				for pi := range g.Bits[bi].Pins {
					g.Bits[bi].Pins[pi].Loc.X += dx
					g.Bits[bi].Pins[pi].Loc.Y += dy
				}
			}
			return "move-group"
		}
	}
}

// clampShift shrinks a shift so [lo,hi] stays inside [0,dim).
func clampShift(s, lo, hi, dim int) int {
	for s != 0 && (lo+s < 0 || hi+s >= dim) {
		if s > 0 {
			s--
		} else {
			s++
		}
	}
	return s
}

// TestECOSweep drives a randomized edit sequence through the cached solver
// and checks, at every step, that the served result is (a) legal under the
// independent audit for the *current* design and (b) metric-identical to a
// cold solve of that design. At least one step must have been served
// incrementally, or the sweep proved nothing.
func TestECOSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("ECO sweep solves the design twice per step")
	}
	ctx := context.Background()
	opt := core.Options{PostOpt: true}
	sv := NewSolver(NewCache(8))
	r := rand.New(rand.NewSource(42))
	d := benchgen.Scale(benchgen.Industry(1), 0.05).Generate()

	incrementals := 0
	for step := 0; step < 9; step++ {
		op := "initial"
		if step > 0 {
			d = cloneDesign(d)
			op = mutate(r, d)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("step %d (%s): mutated design invalid: %v", step, op, err)
		}

		res, outcome, err := sv.Solve(ctx, d, opt)
		if err != nil {
			t.Fatalf("step %d (%s): cached solve: %v", step, op, err)
		}
		if outcome == OutcomeIncremental {
			incrementals++
		}

		if rep := audit.Check(d, route.NewGrid(d), res.Routing); !rep.OK() {
			t.Fatalf("step %d (%s, %s): audit violations on served result: %v",
				step, op, outcome, rep.Err())
		}

		cold, err := core.RunCtx(ctx, d, opt)
		if err != nil {
			t.Fatalf("step %d (%s): cold solve: %v", step, op, err)
		}
		mGot, mWant := res.Metrics, cold.Metrics
		mGot.Runtime, mWant.Runtime = 0, 0
		if !reflect.DeepEqual(mGot, mWant) {
			t.Fatalf("step %d (%s, %s): metrics diverge from cold solve:\n got %+v\nwant %+v",
				step, op, outcome, mGot, mWant)
		}
	}
	if incrementals == 0 {
		t.Fatal("sweep never took the incremental path; the test is vacuous")
	}
	st := sv.Cache().Stats()
	t.Logf("sweep: %d incrementals, stats %+v", incrementals, st)
}

// TestSolveExactHit checks that resubmitting an identical design is served
// from the cache without solving, and that a renamed copy still hits.
func TestSolveExactHit(t *testing.T) {
	ctx := context.Background()
	opt := core.Options{}
	sv := NewSolver(NewCache(4))
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()

	first, outcome, err := sv.Solve(ctx, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeCold {
		t.Fatalf("first solve outcome %q, want cold", outcome)
	}

	renamed := cloneDesign(d)
	renamed.Name = "same-geometry-new-name"
	second, outcome, err := sv.Solve(ctx, renamed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomeHit {
		t.Fatalf("second solve outcome %q, want hit", outcome)
	}
	if second.Metrics.Bench != renamed.Name {
		t.Fatalf("hit kept stale bench label %q", second.Metrics.Bench)
	}
	mGot, mWant := second.Metrics, first.Metrics
	mGot.Bench, mWant.Bench = "", ""
	mGot.Runtime, mWant.Runtime = 0, 0
	if !reflect.DeepEqual(mGot, mWant) {
		t.Fatalf("hit metrics diverge:\n got %+v\nwant %+v", mGot, mWant)
	}
	if st := sv.Cache().Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit over 1 entry", st)
	}
}

// TestSolveBypass checks the two pass-through paths: a nil solver and an
// unfingerprintable custom fallback chain.
func TestSolveBypass(t *testing.T) {
	ctx := context.Background()
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()

	var nilSolver *Solver
	if _, outcome, err := nilSolver.Solve(ctx, d, core.Options{}); err != nil || outcome != OutcomeBypass {
		t.Fatalf("nil solver: outcome %q err %v, want bypass", outcome, err)
	}

	sv := NewSolver(NewCache(4))
	opt := core.Options{Fallback: core.Fallback{Chain: []core.Solver{core.MethodSolver(core.PrimalDual)}}}
	if _, outcome, err := sv.Solve(ctx, d, opt); err != nil || outcome != OutcomeBypass {
		t.Fatalf("custom chain: outcome %q err %v, want bypass", outcome, err)
	}
	if sv.Cache().Len() != 0 {
		t.Fatal("bypass populated the cache")
	}
}
