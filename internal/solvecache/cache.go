package solvecache

import (
	"container/list"
	"sync"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/signal"
)

// DefaultSize is the entry bound used when NewCache is given a
// non-positive size.
const DefaultSize = 64

// Cache is a bounded, mutex-guarded LRU of solved results keyed by content
// hash. Alongside the exact-match index it keeps a per-family index — the
// most recently touched entry of each (grid shape, group count, options)
// bucket — which is the base-candidate lookup for incremental re-routing.
//
// Cached *core.Results are shared by every hit and must be treated as
// immutable by callers; Solve returns a shallow per-request copy of the
// Result struct itself so response-level fields can be adapted safely.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used; values are *entry
	byKey    map[Key]*list.Element
	byFamily map[uint64]*list.Element

	hits, misses, incrementals  int64
	coldFallbacks, auditRejects int64
	evictions, invalidatedSum   int64
}

type entry struct {
	key    Key
	family uint64
	design *signal.Design // private deep copy: the incremental diff base
	result *core.Result   // immutable once cached
	audit  audit.Report   // legality report, clean by insertion contract
}

// NewCache creates a cache bounded to size entries (DefaultSize when
// size <= 0).
func NewCache(size int) *Cache {
	if size <= 0 {
		size = DefaultSize
	}
	return &Cache{
		max:      size,
		ll:       list.New(),
		byKey:    make(map[Key]*list.Element),
		byFamily: make(map[uint64]*list.Element),
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time snapshot of the cache counters, exported on
// streakd's /healthz.
type Stats struct {
	// Entries is the live entry count (bounded by the configured size).
	Entries int `json:"entries"`
	// Hits counts exact content-hash hits served straight from the cache.
	Hits int64 `json:"hits"`
	// Misses counts lookups that found no exact entry.
	Misses int64 `json:"misses"`
	// Incrementals counts misses served by incremental re-routing from a
	// cached base design.
	Incrementals int64 `json:"incrementals"`
	// ColdFallbacks counts incremental attempts abandoned for a full cold
	// solve (rebuild or solver failure, or an audit rejection).
	ColdFallbacks int64 `json:"cold_fallbacks"`
	// AuditRejects counts incremental results the legality audit rejected;
	// each is also a cold fallback.
	AuditRejects int64 `json:"audit_rejects"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// InvalidatedObjects sums the objects regenerated across all
	// incremental rebuilds (the invalidation-geometry cost meter).
	InvalidatedObjects int64 `json:"invalidated_objects"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:            c.ll.Len(),
		Hits:               c.hits,
		Misses:             c.misses,
		Incrementals:       c.incrementals,
		ColdFallbacks:      c.coldFallbacks,
		AuditRejects:       c.auditRejects,
		Evictions:          c.evictions,
		InvalidatedObjects: c.invalidatedSum,
	}
}

// get returns the entry for k, promoting it to most-recently-used, and
// counts the hit or miss.
func (c *Cache) get(k Key) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.touch(el)
	return el.Value.(*entry)
}

// base returns the most recently used entry of the family, or nil. It does
// not count hits or misses — the exact lookup already did.
func (c *Cache) base(family uint64) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byFamily[family]
	if !ok {
		return nil
	}
	return el.Value.(*entry)
}

// insert stores a solved entry, replacing any entry with the same key and
// evicting from the LRU tail past the size bound.
func (c *Cache) insert(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.key]; ok {
		el.Value = e
		c.touch(el)
		c.byFamily[e.family] = el
		return
	}
	el := c.ll.PushFront(e)
	c.byKey[e.key] = el
	c.byFamily[e.family] = el
	for c.ll.Len() > c.max {
		c.evict(c.ll.Back())
	}
}

// touch moves an element to the front and repoints its family index.
func (c *Cache) touch(el *list.Element) {
	c.ll.MoveToFront(el)
	c.byFamily[el.Value.(*entry).family] = el
}

// evict drops an element; a family index pointing at it is dropped too
// (an older same-family entry, if any, is simply no longer reachable as a
// delta base — correct, just less lucky).
func (c *Cache) evict(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.byKey, e.key)
	if c.byFamily[e.family] == el {
		delete(c.byFamily, e.family)
	}
	c.evictions++
}

func (c *Cache) noteIncremental(invalidated int) {
	c.mu.Lock()
	c.incrementals++
	c.invalidatedSum += int64(invalidated)
	c.mu.Unlock()
}

func (c *Cache) noteColdFallback(auditReject bool) {
	c.mu.Lock()
	c.coldFallbacks++
	if auditReject {
		c.auditRejects++
	}
	c.mu.Unlock()
}
