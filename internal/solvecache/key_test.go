package solvecache

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/signal"
)

// keyDesign builds a small two-group design with a multi-sink bit and a
// couple of blockages — enough structure for every canonicalization axis.
func keyDesign() *signal.Design {
	return &signal.Design{
		Name: "key-test",
		Grid: signal.GridSpec{
			W: 16, H: 16, NumLayers: 4, EdgeCap: 4,
			Blockages: []signal.Blockage{
				{Layer: 0, Rect: geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(2, 2)}},
				{Layer: 1, Rect: geom.Rect{Lo: geom.Pt(8, 8), Hi: geom.Pt(9, 9)}},
			},
		},
		Groups: []signal.Group{
			{Name: "g0", Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 3)}, {Loc: geom.Pt(10, 3)}, {Loc: geom.Pt(10, 6)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 4)}, {Loc: geom.Pt(10, 4)}}},
			}},
			{Name: "g1", Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(3, 12)}, {Loc: geom.Pt(12, 12)}}},
			}},
		},
	}
}

func TestKeyCanonicalization(t *testing.T) {
	opt := core.Options{}
	base := KeyFor(keyDesign(), opt)

	t.Run("pin order does not change the key", func(t *testing.T) {
		d := keyDesign()
		// Rotate the multi-sink bit's pins and repoint Driver at the same
		// location: identical geometry, different presentation.
		b := &d.Groups[0].Bits[0]
		b.Pins = []signal.Pin{b.Pins[2], b.Pins[0], b.Pins[1]}
		b.Driver = 1
		if KeyFor(d, opt) != base {
			t.Fatal("permuting pins changed the key")
		}
	})

	t.Run("blockage order does not change the key", func(t *testing.T) {
		d := keyDesign()
		d.Grid.Blockages[0], d.Grid.Blockages[1] = d.Grid.Blockages[1], d.Grid.Blockages[0]
		if KeyFor(d, opt) != base {
			t.Fatal("permuting blockages changed the key")
		}
	})

	t.Run("names do not change the key", func(t *testing.T) {
		d := keyDesign()
		d.Name = "other"
		d.Groups[0].Name = "renamed"
		d.Groups[0].Bits[0].Name = "bitname"
		d.Groups[0].Bits[0].Pins[0].Name = "pinname"
		if KeyFor(d, opt) != base {
			t.Fatal("renaming changed the key")
		}
	})

	t.Run("moving a pin changes the key", func(t *testing.T) {
		d := keyDesign()
		d.Groups[0].Bits[0].Pins[1].Loc.X++
		if KeyFor(d, opt) == base {
			t.Fatal("moving a pin kept the key")
		}
	})

	t.Run("changing the driver changes the key", func(t *testing.T) {
		d := keyDesign()
		d.Groups[0].Bits[0].Driver = 1
		if KeyFor(d, opt) == base {
			t.Fatal("repointing the driver at another pin kept the key")
		}
	})

	t.Run("blockage and grid edits change the key", func(t *testing.T) {
		d := keyDesign()
		d.Grid.Blockages = d.Grid.Blockages[:1]
		if KeyFor(d, opt) == base {
			t.Fatal("dropping a blockage kept the key")
		}
		d = keyDesign()
		d.Grid.EdgeCap++
		if KeyFor(d, opt) == base {
			t.Fatal("changing edge capacity kept the key")
		}
	})

	t.Run("solve-relevant options change the key", func(t *testing.T) {
		if KeyFor(keyDesign(), core.Options{Method: core.ILP}) == base {
			t.Fatal("changing the method kept the key")
		}
		if KeyFor(keyDesign(), core.Options{PostOpt: true}) == base {
			t.Fatal("enabling post-optimization kept the key")
		}
	})

	t.Run("worker counts do not change the key", func(t *testing.T) {
		o := opt
		o.Route.Workers = 7
		o.HierWorkers = 3
		o.Route.LazyKernelCells = -1
		if KeyFor(keyDesign(), o) != base {
			t.Fatal("parallelism knobs changed the key despite bit-identical results")
		}
	})
}

func TestFamilyIgnoresBlockagesAndPins(t *testing.T) {
	opt := core.Options{}
	base := familyOf(keyDesign(), opt)
	d := keyDesign()
	d.Grid.Blockages = nil
	d.Groups[0].Bits[0].Pins[0].Loc.X++
	if familyOf(d, opt) != base {
		t.Fatal("blockage/pin edits changed the family; they must stay delta-bridgeable")
	}
	d = keyDesign()
	d.Grid.W++
	if familyOf(d, opt) == base {
		t.Fatal("grid resize kept the family")
	}
}
