package solvecache

import (
	"context"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/signal"
)

// Outcome labels how a Solve was served.
type Outcome string

const (
	// OutcomeHit is an exact content-hash hit: the cached Result was
	// returned without solving anything.
	OutcomeHit Outcome = "hit"
	// OutcomeIncremental is a miss served by patching a cached base
	// problem with the design delta and re-running selection.
	OutcomeIncremental Outcome = "incremental"
	// OutcomeCold is a full solve: no usable cached base existed.
	OutcomeCold Outcome = "cold"
	// OutcomeColdFallback is a full solve after an incremental attempt was
	// rejected (rebuild/solver failure or an audit violation).
	OutcomeColdFallback Outcome = "cold-fallback"
	// OutcomeBypass is a full solve that never consulted the cache
	// (disabled cache, or options carrying an unfingerprintable custom
	// fallback chain).
	OutcomeBypass Outcome = "bypass"
)

// Solver serves solves through a content-addressed cache. A nil Solver (or
// one with a nil cache) degrades to plain core.RunCtx, so callers can
// thread it unconditionally.
type Solver struct {
	cache *Cache
}

// NewSolver wraps a cache; c may be nil for a pass-through solver.
func NewSolver(c *Cache) *Solver { return &Solver{cache: c} }

// Cache exposes the underlying cache (nil for a pass-through solver).
func (s *Solver) Cache() *Cache {
	if s == nil {
		return nil
	}
	return s.cache
}

// Solve routes the design, consulting the cache first.
//
// Exact hit: the cached Result is returned (shallow-copied, with the
// benchmark label re-pointed at the requesting design's name and the audit
// report attached or stripped per opt.Audit). Near miss: when a cached
// entry shares the design's family and DiffDesigns bridges the two, the
// base problem is patched incrementally — survivors keep their committed
// candidates — and full deterministic selection re-runs over the freed
// capacity; the result must pass the independent legality audit before it
// is returned or cached, otherwise Solve falls back to a cold solve. Only
// clean, complete results (audit-legal, not timed out, not degraded) are
// inserted, so a hit can never replay a transient failure.
//
// Designs passed to Solve must not be mutated afterwards while the
// returned Result is in use (the cache deep-copies what it stores, so the
// cache itself is insulated either way). Counters flow to the obs Recorder
// on ctx under the obs.CounterCache* names.
func (s *Solver) Solve(ctx context.Context, d *signal.Design, opt core.Options) (*core.Result, Outcome, error) {
	if s == nil || s.cache == nil || opt.Fallback.Chain != nil {
		res, err := core.RunCtx(ctx, d, opt)
		return res, OutcomeBypass, err
	}
	rec := obs.FromContext(ctx)
	key := KeyFor(d, opt)
	if e := s.cache.get(key); e != nil {
		rec.Add(obs.CounterCacheHit, 1)
		return adaptHit(e, d, opt), OutcomeHit, nil
	}
	rec.Add(obs.CounterCacheMiss, 1)

	outcome := OutcomeCold
	fam := familyOf(d, opt)
	if base := s.cache.base(fam); base != nil {
		if delta, ok := route.DiffDesigns(base.design, d); ok {
			res, auditReject, err := s.incremental(ctx, base, d, opt, delta, key, fam)
			if err != nil {
				return nil, OutcomeIncremental, err
			}
			if res != nil {
				rec.Add(obs.CounterCacheIncremental, 1)
				return res, OutcomeIncremental, nil
			}
			// Rejected (rebuild/solver failure or an audit violation);
			// fall through to the authoritative cold solve.
			rec.Add(obs.CounterCacheColdFall, 1)
			s.cache.noteColdFallback(auditReject)
			outcome = OutcomeColdFallback
		}
	}

	res, err := core.RunCtx(ctx, d, opt)
	if err != nil {
		return res, outcome, err
	}
	s.cacheResult(ctx, key, fam, d, res)
	return res, outcome, nil
}

// incremental patches base's problem with the delta and re-solves. A nil
// result with a nil error means the attempt was abandoned for a cold solve
// (auditReject tells the two abandon reasons apart); a context error is
// returned as-is.
func (s *Solver) incremental(ctx context.Context, base *entry, d *signal.Design, opt core.Options, delta route.Delta, key Key, fam uint64) (res *core.Result, auditReject bool, err error) {
	rec := obs.FromContext(ctx)
	// The rebuilt problem references this copy; it becomes the cache
	// entry's diff base, so it must be decoupled from the caller.
	dc := cloneDesign(d)
	np, rstats, err := base.result.Problem.RebuildCtx(ctx, dc, delta)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, false, nil
	}
	rec.Add(obs.CounterCacheKept, int64(rstats.KeptObjects))
	rec.Add(obs.CounterCacheInvalidated, int64(rstats.Regenerated))
	res, err = core.RunProblemCtx(ctx, np, opt)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		// Solver failure, or a strict-mode audit violation: either way the
		// incremental result is not trusted; the cold solve is
		// authoritative.
		reject := res != nil && res.Audit != nil && !res.Audit.OK()
		if reject {
			rec.Add(obs.CounterCacheAuditReject, 1)
		}
		return nil, reject, nil
	}
	// Mandatory legality gate, independent of the request's audit mode:
	// an incremental result never leaves the cache layer unaudited.
	rep := res.Audit
	if rep == nil {
		r := audit.CheckCtx(ctx, dc, np.Grid, res.Routing)
		rep = &r
	}
	if !rep.OK() {
		rec.Add(obs.CounterCacheAuditReject, 1)
		return nil, true, nil
	}
	s.cache.noteIncremental(rstats.Regenerated)
	if !res.TimedOut && !res.Degraded {
		s.cache.insert(&entry{key: key, family: fam, design: dc, result: res, audit: *rep})
	}
	return res, false, nil
}

// cacheResult audits and inserts a cold result. Timed-out, degraded or
// audit-dirty results are returned to the caller but never cached.
func (s *Solver) cacheResult(ctx context.Context, key Key, fam uint64, d *signal.Design, res *core.Result) {
	if res.TimedOut || res.Degraded {
		return
	}
	rep := res.Audit
	if rep == nil {
		r := audit.CheckCtx(ctx, d, res.Problem.Grid, res.Routing)
		rep = &r
	}
	if !rep.OK() {
		return
	}
	s.cache.insert(&entry{key: key, family: fam, design: cloneDesign(d), result: res, audit: *rep})
}

// adaptHit shallow-copies the cached result for one request: the benchmark
// label tracks the requesting design's name (names are excluded from the
// content key), and the audit report is attached or stripped to match the
// request's audit mode. Deep state (problem, routing, usage) is shared and
// immutable.
func adaptHit(e *entry, d *signal.Design, opt core.Options) *core.Result {
	res := *e.result
	res.Metrics.Bench = d.Name
	if opt.Audit == core.AuditOff {
		res.Audit = nil
	} else {
		rep := e.audit
		res.Audit = &rep
	}
	return &res
}
