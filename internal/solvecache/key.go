// Package solvecache is the content-addressed solve cache behind streakd's
// interactive serving path: designs are canonicalized into a content hash,
// exact hits are served as full cached Results, and near-misses — the same
// floorplan after a small edit — are re-routed incrementally from the
// cached base problem, keeping survivors' committed candidates and
// re-running selection over the freed capacity. Every incremental result
// passes the independent legality audit before it is returned or cached;
// any violation falls back to a full cold solve.
package solvecache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/signal"
)

// Key identifies one (design geometry, solve options) pair by content. Two
// designs that differ only in labels (design, group, bit, pin names) or in
// presentation order (pin order within a bit, blockage order) map to the
// same key; anything that can change the routed result maps to a different
// one.
type Key [sha256.Size]byte

// String renders a short hex prefix for logs.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// KeyFor computes the content key of a design under the given options.
//
// Canonicalization: the grid shape (W, H, layers, base capacity, pitch),
// the blockage multiset sorted by (layer, rect, cap), and per group —
// in group order — each bit's driver location followed by its sink
// locations in sorted order. Bit pin order and blockage list order are
// presentation details and do not reach the hash; pin locations, driver
// choice and group order do. Options are folded in via a fingerprint of
// every solve-relevant field (see optionsFingerprint).
func KeyFor(d *signal.Design, opt core.Options) Key {
	h := sha256.New()
	hashDesign(h, d)
	puti(h, int(optionsFingerprint(opt)))
	var k Key
	h.Sum(k[:0])
	return k
}

// familyOf coarsely buckets keys that DiffDesigns could bridge: same grid
// shape, same group count, same options. Blockages and pin geometry are
// deliberately excluded — they are exactly what a structured delta edits.
func familyOf(d *signal.Design, opt core.Options) uint64 {
	h := fnv.New64a()
	puti(h, d.Grid.W, d.Grid.H, d.Grid.NumLayers, d.Grid.EdgeCap, d.Grid.Pitch, len(d.Groups))
	puti(h, int(optionsFingerprint(opt)))
	return h.Sum64()
}

// puti writes integers in fixed-width little-endian form, keeping the hash
// input unambiguous (every field is exactly eight bytes).
func puti(w io.Writer, vs ...int) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		w.Write(buf[:])
	}
}

func hashDesign(w io.Writer, d *signal.Design) {
	puti(w, d.Grid.W, d.Grid.H, d.Grid.NumLayers, d.Grid.EdgeCap, d.Grid.Pitch)
	blks := append([]signal.Blockage(nil), d.Grid.Blockages...)
	sort.Slice(blks, func(i, j int) bool {
		a, b := blks[i], blks[j]
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Rect.Lo != b.Rect.Lo {
			return pointLess(a.Rect.Lo, b.Rect.Lo)
		}
		if a.Rect.Hi != b.Rect.Hi {
			return pointLess(a.Rect.Hi, b.Rect.Hi)
		}
		return a.Cap < b.Cap
	})
	puti(w, len(blks))
	for _, b := range blks {
		puti(w, b.Layer, b.Rect.Lo.X, b.Rect.Lo.Y, b.Rect.Hi.X, b.Rect.Hi.Y, b.Cap)
	}
	puti(w, len(d.Groups))
	for gi := range d.Groups {
		g := &d.Groups[gi]
		puti(w, len(g.Bits))
		for bi := range g.Bits {
			b := &g.Bits[bi]
			drv := b.DriverLoc()
			sinks := make([]geom.Point, 0, len(b.Pins)-1)
			for pi := range b.Pins {
				if pi != b.Driver {
					sinks = append(sinks, b.Pins[pi].Loc)
				}
			}
			sort.Slice(sinks, func(i, j int) bool { return pointLess(sinks[i], sinks[j]) })
			puti(w, len(b.Pins), drv.X, drv.Y)
			for _, p := range sinks {
				puti(w, p.X, p.Y)
			}
		}
	}
}

func pointLess(a, b geom.Point) bool {
	if a.X != b.X {
		return a.X < b.X
	}
	return a.Y < b.Y
}

// optionsFingerprint folds every option that can change the solved result
// into one value. Deliberately excluded: Route.Workers, HierWorkers and
// Route.LazyKernelCells (results are bit-identical for any value by
// contract), and Audit (the audit annotates a result, it never changes
// it — the cache attaches or strips reports per request). Options carrying
// a custom Fallback.Chain never reach the fingerprint: Solve bypasses the
// cache for them, because function values cannot be content-addressed.
func optionsFingerprint(opt core.Options) uint64 {
	h := fnv.New64a()
	r, p, t := opt.Route, opt.Post, opt.Route.Topo
	fmt.Fprintf(h, "m%d|po%t|cl%t|rf%t|it%d|iw%t|iv%d|ht%d|hp%d|fb%t|",
		opt.Method, opt.PostOpt, opt.Clustering, opt.Refinement,
		opt.ILPTimeLimit, opt.ILPWarmStart, opt.ILPMaxVars,
		opt.HierTiles, opt.HierTimePerTile, opt.Fallback.Enabled)
	fmt.Fprintf(h, "M%g|rw%g|ns%g|lp%g|mc%d|pn%d|",
		r.M, r.RegWeight, r.NoShare, r.LayerPenalty, r.MaxCandidates, r.PairNeighbors)
	fmt.Fprintf(h, "nb%d|bw%d|vw%d|ml%d|",
		t.NumBackbones, t.BendWeight, t.ViaWeight, t.MaxLayerPairs)
	fmt.Fprintf(h, "prw%g|pns%g|pbw%d|pdf%g", p.RegWeight, p.NoShare, p.BendWeight, p.DistFrac)
	return h.Sum64()
}

// cloneDesign deep-copies a design so cache entries are decoupled from
// caller-owned memory: the copy is the diff base for future incremental
// solves and must stay exactly what was solved.
func cloneDesign(d *signal.Design) *signal.Design {
	nd := *d
	nd.Grid.Blockages = append([]signal.Blockage(nil), d.Grid.Blockages...)
	nd.Groups = make([]signal.Group, len(d.Groups))
	for gi := range d.Groups {
		g := d.Groups[gi]
		g.Bits = append([]signal.Bit(nil), g.Bits...)
		for bi := range g.Bits {
			g.Bits[bi].Pins = append([]signal.Pin(nil), g.Bits[bi].Pins...)
		}
		nd.Groups[gi] = g
	}
	return &nd
}
