package postopt

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/signal"
)

// pinDistance returns the source-to-sink path length from the bit's driver
// to pin `pin` along its routed tree, or -1 when unrouted/off-tree.
func pinDistance(bit *signal.Bit, br *route.BitRoute, pin int) int {
	if !br.Routed {
		return -1
	}
	return br.Tree.PathLength(bit.DriverLoc(), bit.Pins[pin].Loc)
}

// groupMaxDistance returns the maximum source-to-sink distance over all
// routed bits and sinks of the group — the base of the paper's 50 %
// threshold rule.
func groupMaxDistance(g *signal.Group, bits []route.BitRoute) int {
	maxDst := 0
	for bi := range g.Bits {
		b := &g.Bits[bi]
		for _, s := range b.Sinks() {
			if d := pinDistance(b, &bits[bi], s); d > maxDst {
				maxDst = d
			}
		}
	}
	return maxDst
}

// violation identifies one under-distance pin: the group's bit and pin
// index plus the distance it should be brought up to.
type violation struct {
	group, bit, pin int
	current, target int
}

// findViolations detects the source-to-sink deviation violations of a
// routing: for every solution object with a pin correspondence, each
// mapped sink class whose distance spread exceeds threshold = DistFrac *
// (group max initial distance) flags its short pins. Returned slice is
// sorted deterministically.
func findViolations(d *signal.Design, r *route.Routing, opt Options) []violation {
	opt = opt.withDefaults()
	var out []violation
	for gi := range d.Groups {
		g := &d.Groups[gi]
		threshold := int(opt.DistFrac * float64(groupMaxDistance(g, r.Bits[gi])))
		if threshold <= 0 {
			continue
		}
		for _, so := range r.Objects[gi] {
			if so.PinMap == nil || len(so.BitIdx) < 2 {
				continue
			}
			rep := &g.Bits[so.RepBit]
			repK := -1
			for k, bi := range so.BitIdx {
				if bi == so.RepBit {
					repK = k
				}
			}
			if repK == -1 {
				continue
			}
			for _, repSink := range rep.Sinks() {
				// Gather the distances of the mapped pin class.
				type entry struct {
					bit, pin, dst int
				}
				var cls []entry
				maxDst := -1
				for k, bi := range so.BitIdx {
					pin := so.PinMap[k][mapToObjectPin(so.PinMap[repK], repSink)]
					dst := pinDistance(&g.Bits[bi], &r.Bits[gi][bi], pin)
					if dst < 0 {
						continue
					}
					cls = append(cls, entry{bi, pin, dst})
					if dst > maxDst {
						maxDst = dst
					}
				}
				for _, e := range cls {
					if maxDst-e.dst > threshold {
						out = append(out, violation{gi, e.bit, e.pin, e.dst, maxDst - threshold})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.group != b.group {
			return a.group < b.group
		}
		if a.bit != b.bit {
			return a.bit < b.bit
		}
		return a.pin < b.pin
	})
	return out
}

// mapToObjectPin inverts a representative pin map entry: given the map
// from object-representative pins to cluster-representative pins, find the
// object pin whose image is repPin. PinMap rows are permutations, so the
// inverse exists.
func mapToObjectPin(repMap []int, repPin int) int {
	for objPin, p := range repMap {
		if p == repPin {
			return objPin
		}
	}
	return repPin
}

// CountViolatedGroups returns the paper's Vio(dst) metric: the number of
// groups with at least one source-to-sink deviation violation.
func CountViolatedGroups(d *signal.Design, r *route.Routing, opt Options) int {
	seen := map[int]bool{}
	for _, v := range findViolations(d, r, opt) {
		seen[v.group] = true
	}
	return len(seen)
}

// RefineStats summarizes a refinement pass.
type RefineStats struct {
	// GroupsBefore and GroupsAfter count violated groups before and after.
	GroupsBefore, GroupsAfter int
	// PinsFixed counts violating pins whose detour succeeded.
	PinsFixed int
	// PinsLeft counts violating pins that could not be fixed (capacity or
	// boundary constraints).
	PinsLeft int
	// AddedWL is the total detour wirelength added.
	AddedWL int
}

// Refine runs Algorithm 4: for every violating pin it extracts the RC
// incident to the pin and tries perpendicular U-shaped shifts (Fig. 10) in
// both directions, checking multilayer capacity before committing. The
// routing and usage are updated in place.
func Refine(p *route.Problem, r *route.Routing, u *grid.Usage, opt Options) RefineStats {
	stats, _ := RefineCtx(context.Background(), p, r, u, opt)
	return stats
}

// RefineCtx is Refine honoring the context: cancellation is checked before
// every detour, so the call returns promptly with ctx's error. Detours
// already committed stay in place — each one is individually legal.
func RefineCtx(ctx context.Context, p *route.Problem, r *route.Routing, u *grid.Usage, opt Options) (RefineStats, error) {
	opt = opt.withDefaults()
	var stats RefineStats
	err := obs.Do(ctx, obs.StageRefine, 0, func(ctx context.Context) error {
		stats.GroupsBefore = CountViolatedGroups(p.Design, r, opt)
		for _, v := range findViolations(p.Design, r, opt) {
			if err := ctx.Err(); err != nil {
				stats.GroupsAfter = CountViolatedGroups(p.Design, r, opt)
				return fmt.Errorf("postopt: refine: %w", err)
			}
			if fixed, added := detourPin(p.Design, r, u, v); fixed {
				stats.PinsFixed++
				stats.AddedWL += added
			} else {
				stats.PinsLeft++
			}
		}
		stats.GroupsAfter = CountViolatedGroups(p.Design, r, opt)
		return nil
	})
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add(obs.CounterRefinePinsFixed, int64(stats.PinsFixed))
		rec.Add(obs.CounterRefinePinsLeft, int64(stats.PinsLeft))
		rec.Add(obs.CounterRefineAddedWL, int64(stats.AddedWL))
	}
	return stats, err
}

// detourPin lengthens the connection to the violating pin by a U-shaped
// twisting route so that its source-to-sink distance reaches the target.
// Returns whether the detour succeeded and the added wirelength.
func detourPin(d *signal.Design, r *route.Routing, u *grid.Usage, v violation) (bool, int) {
	g := d.Groups[v.group]
	bit := &g.Bits[v.bit]
	br := &r.Bits[v.group][v.bit]
	if !br.Routed {
		return false, 0
	}
	pinLoc := bit.Pins[v.pin].Loc
	conn, rest, ok := leafConnection(br.Tree, bit.PinLocs(), pinLoc)
	if !ok {
		return false, 0
	}
	need := v.target - v.current
	if need <= 0 {
		return false, 0
	}
	k := (need + 1) / 2 // each U adds 2k length

	gr := u.Grid()
	try := func(detour []geom.Seg) bool {
		// The replacement must fit the residual capacity once the old
		// connection is released.
		route.AddTreeUsage(u, geom.NewTree(conn), br.HLayer, br.VLayer, -1)
		newTree := geom.Tree{Segs: append(append([]geom.Seg{}, rest...), detour...)}
		if !treeInBounds(gr, newTree) || !route.TreeFits(u, geom.NewTree(detour...), br.HLayer, br.VLayer) {
			route.AddTreeUsage(u, geom.NewTree(conn), br.HLayer, br.VLayer, 1)
			return false
		}
		if !newTree.Connected(bit.PinLocs()) {
			route.AddTreeUsage(u, geom.NewTree(conn), br.HLayer, br.VLayer, 1)
			return false
		}
		route.AddTreeUsage(u, geom.NewTree(detour...), br.HLayer, br.VLayer, 1)
		br.Tree = newTree
		return true
	}

	n := conn.Norm()
	sp := n.A
	if sp == pinLoc {
		sp = n.B
	}
	if conn.Horizontal() {
		// Vertical shifting (upper and lower, Fig. 10 rotated).
		for _, dy := range []int{k, -k} {
			detour := uShape(sp, pinLoc, geom.Pt(0, dy))
			if try(detour) {
				return true, 2 * k
			}
		}
	} else {
		// Horizontal shifting (left and right, Fig. 10).
		for _, dx := range []int{k, -k} {
			detour := uShape(sp, pinLoc, geom.Pt(dx, 0))
			if try(detour) {
				return true, 2 * k
			}
		}
	}
	return false, 0
}

// uShape returns the three-segment detour replacing the straight
// connection sp -> pin: jog perpendicular by d, run parallel, jog back.
func uShape(sp, pin, d geom.Point) []geom.Seg {
	a := sp.Add(d)
	b := pin.Add(d)
	return []geom.Seg{geom.S(sp, a), geom.S(a, b), geom.S(b, pin)}
}

// leafConnection extracts the canonical RC incident to pin, requiring the
// pin to be a leaf (degree 1) so the detour disturbs no other connection
// (§IV-C keeps the other pins' connections intact). It returns the
// connection, the remaining segments, and ok.
func leafConnection(t geom.Tree, pins []geom.Point, pin geom.Point) (geom.Seg, []geom.Seg, bool) {
	segs := splitAt(t.Canon().Segs, pins)
	deg := 0
	var conn geom.Seg
	var rest []geom.Seg
	for _, s := range segs {
		if s.A == pin || s.B == pin {
			deg++
			conn = s
		} else {
			rest = append(rest, s)
		}
	}
	if deg != 1 {
		return geom.Seg{}, nil, false
	}
	return conn, rest, true
}

// splitAt cuts segments at any of the given points lying in their
// interiors.
func splitAt(segs []geom.Seg, pts []geom.Point) []geom.Seg {
	var out []geom.Seg
	for _, s := range segs {
		n := s.Norm()
		cuts := []geom.Point{n.A, n.B}
		for _, p := range pts {
			if n.Contains(p) && p != n.A && p != n.B {
				cuts = append(cuts, p)
			}
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i].Less(cuts[j]) })
		for i := 0; i+1 < len(cuts); i++ {
			if cuts[i] != cuts[i+1] {
				out = append(out, geom.Seg{A: cuts[i], B: cuts[i+1]})
			}
		}
	}
	return out
}

// treeInBounds reports whether every segment endpoint lies on the grid.
func treeInBounds(g *grid.Grid, t geom.Tree) bool {
	for _, s := range t.Segs {
		if !g.InBounds(s.A.X, s.A.Y) || !g.InBounds(s.B.X, s.B.Y) {
			return false
		}
	}
	return true
}
