// Package postopt implements Streak's post-optimization stage (§IV):
// congestion-based layer prediction (Eq. 7 and 8), bottom-up clustering of
// the bits of unrouted groups (Algorithm 3), and post-routing refinement of
// source-to-sink distance deviations via capacity-checked twisting detours
// (Algorithm 4, Figs. 9 and 10).
package postopt

import (
	"math"

	"repro/internal/geom"
	"repro/internal/grid"
)

// edge2D identifies a direction-specific 2-D routing edge.
type edge2D struct {
	horizontal bool
	x, y       int
}

// usageEstimate is the expected track demand per 2-D edge of a group
// (Eq. 7): each candidate topology of each bit contributes its edge usage
// weighted by 1/|candidates|.
type usageEstimate map[edge2D]float64

// estimateUsage accumulates the Eq. 7 estimate for a set of per-bit
// candidate tree lists.
func estimateUsage(bitCands [][]geom.Tree) usageEstimate {
	est := make(usageEstimate)
	for _, cands := range bitCands {
		if len(cands) == 0 {
			continue
		}
		w := 1.0 / float64(len(cands))
		for _, t := range cands {
			for _, s := range t.Canon().Segs {
				n := s.Norm()
				if n.Horizontal() {
					for x := n.A.X; x < n.B.X; x++ {
						est[edge2D{true, x, n.A.Y}] += w
					}
				} else {
					for y := n.A.Y; y < n.B.Y; y++ {
						est[edge2D{false, n.A.X, y}] += w
					}
				}
			}
		}
	}
	return est
}

// conflictValue computes cf(l, g) of Eq. 8: the estimated overflow of
// routing the group's expected demand on layer l given the residual
// capacity in u.
func conflictValue(u *grid.Usage, l int, est usageEstimate) float64 {
	g := u.Grid()
	horizontal := g.Layers[l].Dir == grid.Horizontal
	cf := 0.0
	for e, demand := range est {
		if e.horizontal != horizontal {
			continue
		}
		avail := float64(u.Avail(l, g.EdgeIndex(l, e.x, e.y)))
		if over := demand - avail; over > 0 {
			cf += over
		}
	}
	return cf
}

// PredictLayers picks the (H layer, V layer) pair with the least estimated
// conflict (Eq. 8) for a group whose bits have the given candidate trees.
// Ties break toward lower layers for determinism.
func PredictLayers(u *grid.Usage, bitCands [][]geom.Tree) (hLayer, vLayer int) {
	est := estimateUsage(bitCands)
	g := u.Grid()
	bestH, bestHCf := -1, math.Inf(1)
	for _, l := range g.HLayers() {
		if cf := conflictValue(u, l, est); cf < bestHCf {
			bestH, bestHCf = l, cf
		}
	}
	bestV, bestVCf := -1, math.Inf(1)
	for _, l := range g.VLayers() {
		if cf := conflictValue(u, l, est); cf < bestVCf {
			bestV, bestVCf = l, cf
		}
	}
	return bestH, bestV
}
