package postopt

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/signal"
	"repro/internal/steiner"
	"repro/internal/topo"
)

// Options tunes the post-optimization stage.
type Options struct {
	// RegWeight scales the regularity term of the cluster pair cost.
	// Default 20.
	RegWeight float64
	// NoShare is the pair cost when topologies share no RC. Default 2000.
	NoShare float64
	// BendWeight is used for fallback per-bit Steiner trees. Default 2.
	BendWeight int
	// DistFrac is the source-to-sink deviation threshold as a fraction of
	// the group's maximum initial distance (the paper uses 50 %).
	// Default 0.5.
	DistFrac float64
}

func (o Options) withDefaults() Options {
	if o.RegWeight == 0 {
		o.RegWeight = 20
	}
	if o.NoShare == 0 {
		o.NoShare = 2000
	}
	if o.BendWeight == 0 {
		o.BendWeight = 2
	}
	if o.DistFrac == 0 {
		o.DistFrac = 0.5
	}
	return o
}

// ClusterStats summarizes one clustering pass.
type ClusterStats struct {
	// BitsRouted counts bits the pass managed to route.
	BitsRouted int
	// BitsLeft counts bits that stayed unrouted.
	BitsLeft int
	// Clusters counts the solution clusters created.
	Clusters int
}

// bitRef addresses one unrouted bit within a group: the owning object
// (problem-wide index), member position, and group-relative bit index.
type bitRef struct {
	obj, member, bit int
}

// cluster is Algorithm 3's working unit.
type cluster struct {
	id     int
	bits   []bitRef
	routed bool
	trees  []geom.Tree // per bits entry when routed
}

// ClusterAndRoute runs layer prediction plus bottom-up clustering
// (Algorithm 3) for every group that still has unrouted bits, treating
// each bit as an individual routing object for flexibility (Fig. 7). It
// mutates the routing and usage in place and returns statistics.
func ClusterAndRoute(p *route.Problem, r *route.Routing, u *grid.Usage, opt Options) ClusterStats {
	stats, _ := ClusterAndRouteCtx(context.Background(), p, r, u, opt)
	return stats
}

// ClusterAndRouteCtx is ClusterAndRoute honoring the context: cancellation
// is checked between groups, so the call returns promptly with ctx's error
// and the statistics of the groups already processed. The routing and usage
// stay consistent — a group is either fully clustered or untouched.
func ClusterAndRouteCtx(ctx context.Context, p *route.Problem, r *route.Routing, u *grid.Usage, opt Options) (ClusterStats, error) {
	opt = opt.withDefaults()
	var stats ClusterStats
	err := obs.Do(ctx, obs.StageCluster, 0, func(ctx context.Context) error {
		for gi := range p.Design.Groups {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("postopt: cluster: %w", err)
			}
			if r.GroupRouted(gi) {
				continue
			}
			stats = addStats(stats, clusterGroup(p, r, u, gi, opt))
		}
		return nil
	})
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add(obs.CounterClusterBitsRouted, int64(stats.BitsRouted))
		rec.Add(obs.CounterClusterBitsLeft, int64(stats.BitsLeft))
		rec.Add(obs.CounterClusterClusters, int64(stats.Clusters))
	}
	return stats, err
}

func addStats(a, b ClusterStats) ClusterStats {
	a.BitsRouted += b.BitsRouted
	a.BitsLeft += b.BitsLeft
	a.Clusters += b.Clusters
	return a
}

// bitCandidates returns the candidate trees of one bit: its equivalent
// topologies from the object's distinct 2-D candidates plus a fallback
// fresh Steiner tree (line 1 of Algorithm 3).
func bitCandidates(p *route.Problem, ref bitRef, opt Options) []geom.Tree {
	seenTopo := map[int]bool{}
	var out []geom.Tree
	for _, c := range p.Cands[ref.obj] {
		if seenTopo[c.TopoIdx] {
			continue
		}
		seenTopo[c.TopoIdx] = true
		out = append(out, c.Topo.BitTrees[ref.member])
	}
	g := p.Group(ref.obj)
	bit := &g.Bits[ref.bit]
	fb := steiner.Iterated1Steiner(bit.PinLocs(), steiner.Options{BendWeight: opt.BendWeight})
	key := fb.String()
	dup := false
	for _, t := range out {
		if t.String() == key {
			dup = true
			break
		}
	}
	if !dup {
		out = append(out, fb)
	}
	return out
}

// clusterGroup runs Algorithm 3 on one group.
func clusterGroup(p *route.Problem, r *route.Routing, u *grid.Usage, gi int, opt Options) ClusterStats {
	g := &p.Design.Groups[gi]

	// Collect unrouted bits with their owning objects.
	var refs []bitRef
	for _, oi := range p.GroupObjs[gi] {
		for k, bi := range p.Objects[oi].BitIdx {
			if !r.Bits[gi][bi].Routed {
				refs = append(refs, bitRef{oi, k, bi})
			}
		}
	}
	if len(refs) == 0 {
		return ClusterStats{}
	}

	// Candidate trees per bit and layer prediction (lines 1-2).
	cands := make(map[bitRef][]geom.Tree, len(refs))
	var all [][]geom.Tree
	for _, ref := range refs {
		c := bitCandidates(p, ref, opt)
		cands[ref] = c
		all = append(all, c)
	}
	hl, vl := PredictLayers(u, all)
	if hl < 0 || vl < 0 {
		return ClusterStats{BitsLeft: len(refs)}
	}

	// Line 4: one cluster per bit.
	clusters := make([]*cluster, len(refs))
	for i, ref := range refs {
		clusters[i] = &cluster{id: i, bits: []bitRef{ref}}
	}

	bitOf := func(ref bitRef) *signal.Bit { return &g.Bits[ref.bit] }

	// pairCost evaluates the minimum achievable weighted cost of routing
	// the pair (wirelength + regularity), along with the best candidate
	// choice for each unrouted side. Infinite when no legal option exists.
	pairCost := func(a, b *cluster) (cost float64, ta, tb geom.Tree, ok bool) {
		regCost := func(t1 geom.Tree, b1 *signal.Bit, t2 geom.Tree, b2 *signal.Bit) float64 {
			ratio := topo.Ratio(t1, b1, t2, b2)
			return topo.PairIrregularity(ratio, opt.RegWeight, opt.NoShare, 1, 0)
		}
		switch {
		case a.routed && b.routed:
			return regCost(a.trees[0], bitOf(a.bits[0]), b.trees[0], bitOf(b.bits[0])), geom.Tree{}, geom.Tree{}, true
		case a.routed:
			cost, _, tb, ok := pairCostRoutedFirst(a, b, cands, bitOf, u, hl, vl, regCost)
			return cost, geom.Tree{}, tb, ok
		case b.routed:
			cost, _, ta, ok := pairCostRoutedFirst(b, a, cands, bitOf, u, hl, vl, regCost)
			return cost, ta, geom.Tree{}, ok
		}
		best := math.Inf(1)
		var bestA, bestB geom.Tree
		for _, t1 := range cands[a.bits[0]] {
			if !route.TreeFits(u, t1, hl, vl) {
				continue
			}
			for _, t2 := range cands[b.bits[0]] {
				if !route.TreeFits(u, t2, hl, vl) {
					continue
				}
				c := float64(t1.WireLength()+t2.WireLength()) +
					regCost(t1, bitOf(a.bits[0]), t2, bitOf(b.bits[0]))
				if c < best {
					best, bestA, bestB = c, t1, t2
				}
			}
		}
		return best, bestA, bestB, !math.IsInf(best, 1)
	}

	routeCluster := func(c *cluster, t geom.Tree) {
		c.routed = true
		c.trees = []geom.Tree{t}
		route.AddTreeUsage(u, t, hl, vl, 1)
		ref := c.bits[0]
		r.Bits[gi][ref.bit] = route.BitRoute{Routed: true, Tree: t, HLayer: hl, VLayer: vl}
	}

	// Lines 5-15: visit cluster pairs in minimum-cost order.
	visited := make(map[[2]int]bool)
	for {
		type pick struct {
			ai, bi int
			cost   float64
			ta, tb geom.Tree
			ok     bool
		}
		best := pick{cost: math.Inf(1)}
		found := false
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				key := [2]int{clusters[i].id, clusters[j].id}
				if visited[key] {
					continue
				}
				found = true
				c, ta, tb, ok := pairCost(clusters[i], clusters[j])
				if ok && c < best.cost {
					best = pick{i, j, c, ta, tb, ok}
				}
			}
		}
		if !found {
			break
		}
		if !best.ok {
			// Every unvisited pair is infeasible; mark them visited.
			for i := 0; i < len(clusters); i++ {
				for j := i + 1; j < len(clusters); j++ {
					visited[[2]int{clusters[i].id, clusters[j].id}] = true
				}
			}
			break
		}
		a, b := clusters[best.ai], clusters[best.bi]
		if !a.routed && len(best.ta.Segs) > 0 {
			routeCluster(a, best.ta)
		}
		// Routing a may have consumed tracks b's tree needs (overlapping
		// shifted topologies); re-verify before committing b.
		if !b.routed && len(best.tb.Segs) > 0 && route.TreeFits(u, best.tb, hl, vl) {
			routeCluster(b, best.tb)
		}
		visited[[2]int{a.id, b.id}] = true
		// Lines 11-13: merge equal-topology clusters.
		if a.routed && b.routed {
			if topo.Ratio(a.trees[0], bitOf(a.bits[0]), b.trees[0], bitOf(b.bits[0])) == 1 {
				a.bits = append(a.bits, b.bits...)
				a.trees = append(a.trees, b.trees...)
				clusters = append(clusters[:best.bi], clusters[best.bi+1:]...)
			}
		}
	}

	// Any cluster still unrouted (singleton group or all pairs infeasible):
	// try a direct cheapest-feasible route.
	for _, c := range clusters {
		if c.routed {
			continue
		}
		var bestT geom.Tree
		bestWL := math.MaxInt
		for _, t := range cands[c.bits[0]] {
			if route.TreeFits(u, t, hl, vl) && t.WireLength() < bestWL {
				bestWL, bestT = t.WireLength(), t
			}
		}
		if bestWL < math.MaxInt {
			routeCluster(c, bestT)
		}
	}

	// Record solution objects for routed clusters and compute stats.
	var stats ClusterStats
	for _, c := range clusters {
		if !c.routed {
			stats.BitsLeft += len(c.bits)
			continue
		}
		stats.BitsRouted += len(c.bits)
		stats.Clusters++
		so := route.SolutionObject{
			RepTree: c.trees[0],
			RepBit:  c.bits[0].bit,
			HLayer:  hl,
			VLayer:  vl,
		}
		// BitIdx stays in cluster-member order: PinMap rows are built in
		// the same order and the two must correspond index-for-index.
		for _, ref := range c.bits {
			so.BitIdx = append(so.BitIdx, ref.bit)
		}
		so.PinMap = clusterPinMap(p, c)
		r.Objects[gi] = append(r.Objects[gi], so)
	}
	return stats
}

// pairCostRoutedFirst handles the routed/unrouted case with the routed
// cluster first; it returns the cost and the chosen tree for the unrouted
// side.
func pairCostRoutedFirst(routed, open *cluster, cands map[bitRef][]geom.Tree,
	bitOf func(bitRef) *signal.Bit, u *grid.Usage, hl, vl int,
	regCost func(geom.Tree, *signal.Bit, geom.Tree, *signal.Bit) float64,
) (float64, geom.Tree, geom.Tree, bool) {
	best := math.Inf(1)
	var bestT geom.Tree
	for _, t := range cands[open.bits[0]] {
		if !route.TreeFits(u, t, hl, vl) {
			continue
		}
		c := float64(t.WireLength()) + regCost(routed.trees[0], bitOf(routed.bits[0]), t, bitOf(open.bits[0]))
		if c < best {
			best, bestT = c, t
		}
	}
	return best, geom.Tree{}, bestT, !math.IsInf(best, 1)
}

// clusterPinMap derives per-member pin maps for a cluster whose bits all
// come from one identification object; it returns nil otherwise (bits of
// different objects have no canonical pin correspondence).
func clusterPinMap(p *route.Problem, c *cluster) [][]int {
	obj := c.bits[0].obj
	for _, ref := range c.bits[1:] {
		if ref.obj != obj {
			return nil
		}
	}
	o := &p.Objects[obj]
	// Representative of the cluster is its first bit; express every
	// member's pins relative to it using the object-level maps.
	repMember := c.bits[0].member
	repMap := o.PinMap[repMember] // object-rep pin -> cluster-rep pin
	inv := make([]int, len(repMap))
	for objPin, clusterPin := range repMap {
		inv[clusterPin] = objPin
	}
	maps := make([][]int, len(c.bits))
	for k, ref := range c.bits {
		m := make([]int, len(repMap))
		for clusterPin := range m {
			m[clusterPin] = o.PinMap[ref.member][inv[clusterPin]]
		}
		maps[k] = m
	}
	return maps
}
