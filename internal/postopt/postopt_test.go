package postopt

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/pd"
	"repro/internal/route"
	"repro/internal/signal"
	"repro/internal/topo"
)

func TestPredictLayersAvoidsCongestion(t *testing.T) {
	g := grid.New(16, 16, grid.DefaultLayers(4, 4))
	u := grid.NewUsage(g)
	// Fill layer 0 (H) row 5 completely; the bit wants to route on row 5.
	u.AddSeg(0, geom.S(geom.Pt(0, 5), geom.Pt(15, 5)), 4)
	cands := [][]geom.Tree{{geom.NewTree(geom.S(geom.Pt(2, 5), geom.Pt(12, 5)))}}
	hl, vl := PredictLayers(u, cands)
	if hl != 2 {
		t.Errorf("hl = %d, want 2 (layer 0 congested)", hl)
	}
	if g.Layers[vl].Dir != grid.Vertical {
		t.Errorf("vl = %d not vertical", vl)
	}
}

func TestPredictLayersAveragesCandidates(t *testing.T) {
	g := grid.New(16, 16, grid.DefaultLayers(2, 2))
	u := grid.NewUsage(g)
	// Two candidates on different rows: each contributes 0.5 demand.
	cands := [][]geom.Tree{{
		geom.NewTree(geom.S(geom.Pt(0, 3), geom.Pt(8, 3))),
		geom.NewTree(geom.S(geom.Pt(0, 9), geom.Pt(8, 9))),
	}}
	est := estimateUsage(cands)
	if got := est[edge2D{true, 2, 3}]; got != 0.5 {
		t.Errorf("estimate = %v, want 0.5", got)
	}
	if cf := conflictValue(u, 0, est); cf != 0 {
		t.Errorf("conflict on empty grid = %v, want 0", cf)
	}
}

// congestedDesign: two identical overlapping 3-bit buses, one H layer pair,
// capacity 1 on layer 0 rows; phase-1 routes one group, clustering must
// recover bits of the other on the alternate rows/layers.
func overlapDesign(extraLayers int) *signal.Design {
	d := &signal.Design{
		Name: "overlap",
		Grid: signal.GridSpec{W: 24, H: 12, NumLayers: 2 + extraLayers, EdgeCap: 1},
	}
	for gi := 0; gi < 2; gi++ {
		var g signal.Group
		for b := 0; b < 3; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Driver: 0,
				Pins:   []signal.Pin{{Loc: geom.Pt(2, 2+b)}, {Loc: geom.Pt(20, 2+b)}}},
			)
		}
		d.Groups = append(d.Groups, g)
	}
	return d
}

func TestClusterAndRouteRoutesUnroutedBits(t *testing.T) {
	d := overlapDesign(0) // 1 H + 1 V layer: only one group can fit
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := pd.Solve(p)
	r := p.ExtractRouting(res.Assignment)
	u := r.UsageOf(p.Grid)
	before := 0
	for gi := range r.Bits {
		for _, b := range r.Bits[gi] {
			if b.Routed {
				before++
			}
		}
	}
	stats := ClusterAndRoute(p, r, u, Options{})
	after := 0
	for gi := range r.Bits {
		for _, b := range r.Bits[gi] {
			if b.Routed {
				after++
			}
		}
	}
	if after < before {
		t.Fatalf("clustering lost routes: %d -> %d", before, after)
	}
	if stats.BitsRouted+stats.BitsLeft == 0 {
		t.Fatal("clustering did not consider any unrouted bits")
	}
	if u.Overflow() != 0 {
		t.Fatalf("clustering overflowed the grid by %d", u.Overflow())
	}
}

func TestClusterAndRouteImprovesWithMoreLayers(t *testing.T) {
	// With 4 layers the unrouted group's bits all fit on the second H
	// layer: clustering must route every remaining bit.
	d := overlapDesign(2)
	d.Grid.EdgeCap = 1
	p, err := route.Build(d, route.Options{MaxCandidates: 2, Topo: topo.Options{NumBackbones: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res := pd.Solve(p)
	r := p.ExtractRouting(res.Assignment)
	u := r.UsageOf(p.Grid)
	ClusterAndRoute(p, r, u, Options{})
	for gi := range r.Bits {
		for bi, b := range r.Bits[gi] {
			if !b.Routed {
				t.Errorf("group %d bit %d still unrouted", gi, bi)
			}
		}
	}
	if u.Overflow() != 0 {
		t.Fatalf("overflow %d", u.Overflow())
	}
}

func TestClusterSolutionObjectsRecorded(t *testing.T) {
	d := overlapDesign(0)
	p, _ := route.Build(d, route.Options{})
	res := pd.Solve(p)
	r := p.ExtractRouting(res.Assignment)
	u := r.UsageOf(p.Grid)
	nBefore := len(r.Objects[0]) + len(r.Objects[1])
	stats := ClusterAndRoute(p, r, u, Options{})
	nAfter := len(r.Objects[0]) + len(r.Objects[1])
	if stats.Clusters > 0 && nAfter <= nBefore {
		t.Error("clusters created but no solution objects recorded")
	}
}

// refineDesign builds one group whose three bits share a topology but one
// bit has a much closer sink (Fig. 4(b) situation).
func refineDesign() *signal.Design {
	d := &signal.Design{
		Name: "refine",
		Grid: signal.GridSpec{W: 32, H: 32, NumLayers: 4, EdgeCap: 8},
	}
	var g signal.Group
	// Two far bits and one near bit, all east two-pin style (same SVs).
	g.Bits = append(g.Bits,
		signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 10)}, {Loc: geom.Pt(22, 10)}}},
		signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 11)}, {Loc: geom.Pt(22, 11)}}},
		signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 12)}, {Loc: geom.Pt(6, 12)}}},
	)
	d.Groups = []signal.Group{g}
	return d
}

func TestFindViolations(t *testing.T) {
	d := refineDesign()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := pd.Solve(p)
	r := p.ExtractRouting(res.Assignment)
	vios := findViolations(d, r, Options{})
	if len(vios) == 0 {
		t.Skip("identification split the short bit into its own object; no class to violate")
	}
	v := vios[0]
	if v.current >= v.target {
		t.Errorf("violation current %d >= target %d", v.current, v.target)
	}
}

func TestRefineFixesDeviation(t *testing.T) {
	// Force one object: same SVs, one sink much closer. All three bits are
	// east-style so they identify together; distances 20, 20, 4.
	d := refineDesign()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := pd.Solve(p)
	r := p.ExtractRouting(res.Assignment)
	u := r.UsageOf(p.Grid)
	before := CountViolatedGroups(d, r, Options{})
	if before == 0 {
		t.Skip("no violation produced; design too lenient")
	}
	stats := Refine(p, r, u, Options{})
	if stats.GroupsAfter >= stats.GroupsBefore {
		t.Errorf("refinement did not reduce violations: %d -> %d", stats.GroupsBefore, stats.GroupsAfter)
	}
	if stats.PinsFixed == 0 {
		t.Error("no pins fixed")
	}
	if stats.AddedWL <= 0 {
		t.Error("detours must add wirelength")
	}
	// The detoured tree still connects its pins and usage stays legal.
	for bi := range r.Bits[0] {
		b := r.Bits[0][bi]
		if !b.Routed {
			continue
		}
		if !b.Tree.Connected(d.Groups[0].Bits[bi].PinLocs()) {
			t.Errorf("bit %d disconnected after refinement", bi)
		}
	}
	if u.Overflow() != 0 {
		t.Errorf("refinement overflowed by %d", u.Overflow())
	}
}

func TestRefineRespectsCapacity(t *testing.T) {
	// Zero spare capacity anywhere: refinement must not fix anything and
	// must not overflow.
	d := refineDesign()
	d.Grid.EdgeCap = 1
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := pd.Solve(p)
	r := p.ExtractRouting(res.Assignment)
	u := r.UsageOf(p.Grid)
	// Saturate every edge.
	g := p.Grid
	for l := range g.Layers {
		for idx := 0; idx < g.EdgeCount(l); idx++ {
			for u.Avail(l, idx) > 0 {
				u.Add(l, idx, 1)
			}
		}
	}
	stats := Refine(p, r, u, Options{})
	if stats.PinsFixed != 0 {
		t.Errorf("fixed %d pins with zero capacity", stats.PinsFixed)
	}
}
