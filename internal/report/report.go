// Package report renders paper-style result tables (Tables I and II),
// ASCII congestion heatmaps (Figs. 11 and 12), and CSV series for the
// scalability and ablation figures (Figs. 13-15).
package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/grid"
	"repro/internal/metrics"
)

// FormatRuntime renders a runtime like the paper's CPU column: seconds
// with one decimal, or "> limit" when the solver hit its time limit.
func FormatRuntime(d time.Duration, timedOut bool, limit time.Duration) string {
	if timedOut {
		return fmt.Sprintf("> %.0f", limit.Seconds())
	}
	return fmt.Sprintf("%.1f", d.Seconds())
}

// Row is one benchmark line of a comparison table.
type Row struct {
	// Bench is the benchmark name.
	Bench string
	// Cells are the pre-formatted cell values.
	Cells []string
}

// Table renders an aligned ASCII table with the given headers and rows.
func Table(w io.Writer, title string, headers []string, rows []Row) {
	fmt.Fprintf(w, "%s\n", title)
	widths := make([]int, len(headers)+1)
	widths[0] = len("Bench")
	for _, r := range rows {
		if len(r.Bench) > widths[0] {
			widths[0] = len(r.Bench)
		}
		for i, c := range r.Cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	for i, h := range headers {
		if len(h) > widths[i+1] {
			widths[i+1] = len(h)
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	line(append([]string{"Bench"}, headers...))
	sep := make([]string, len(headers)+1)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(append([]string{r.Bench}, r.Cells...))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// MetricsCells formats the standard metric columns (Route, WL(1e5),
// Avg(Reg)) the way the paper prints them.
func MetricsCells(m metrics.Metrics) []string {
	return []string{
		fmt.Sprintf("%.2f%%", m.RouteFrac*100),
		fmt.Sprintf("%.2f", m.WL/1e5),
		fmt.Sprintf("%.2f%%", m.AvgReg*100),
	}
}

// Heatmap renders the cell-congestion map as ASCII art: ' ' empty, '.' to
// '#' increasing utilization, '@' overflow — the textual analogue of the
// paper's Figs. 11 and 12. Large grids are downsampled to at most maxDim
// rows/columns (taking the max congestion per block).
func Heatmap(w io.Writer, u *grid.Usage, maxDim int) {
	m := u.CellCongestion()
	h, wid := len(m), len(m[0])
	stepY, stepX := (h+maxDim-1)/maxDim, (wid+maxDim-1)/maxDim
	if stepY < 1 {
		stepY = 1
	}
	if stepX < 1 {
		stepX = 1
	}
	for y := 0; y < h; y += stepY {
		var sb strings.Builder
		for x := 0; x < wid; x += stepX {
			peak := 0
			for yy := y; yy < y+stepY && yy < h; yy++ {
				for xx := x; xx < x+stepX && xx < wid; xx++ {
					if m[yy][xx] > peak {
						peak = m[yy][xx]
					}
				}
			}
			sb.WriteByte(congChar(peak))
		}
		fmt.Fprintln(w, sb.String())
	}
	fmt.Fprintf(w, "legend: ' '<20%% '.'<50%% ':'<80%% '+'<100%% '#'=100%% '@'overflow; overflow edges: %d, total overflow: %d\n",
		u.OverflowEdges(), u.Overflow())
}

func congChar(perMille int) byte {
	switch {
	case perMille > 1000:
		return '@'
	case perMille == 1000:
		return '#'
	case perMille >= 800:
		return '+'
	case perMille >= 500:
		return ':'
	case perMille >= 200:
		return '.'
	default:
		return ' '
	}
}

// CSV writes a simple CSV series (header plus rows) for the figure data.
// Fields containing commas, quotes or newlines are quoted RFC 4180 style
// (embedded quotes doubled), so bench names and labels survive round-trips
// through spreadsheet tooling.
func CSV(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintln(w, joinCSV(header))
	for _, r := range rows {
		fmt.Fprintln(w, joinCSV(r))
	}
}

func joinCSV(fields []string) string {
	quoted := make([]string, len(fields))
	for i, f := range fields {
		quoted[i] = csvField(f)
	}
	return strings.Join(quoted, ",")
}

// csvField quotes one CSV field when it needs it.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
