package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/metrics"
)

func TestFormatRuntime(t *testing.T) {
	if got := FormatRuntime(2500*time.Millisecond, false, time.Hour); got != "2.5" {
		t.Errorf("FormatRuntime = %q", got)
	}
	if got := FormatRuntime(time.Hour, true, 3600*time.Second); got != "> 3600" {
		t.Errorf("timed out FormatRuntime = %q", got)
	}
}

func TestTable(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "TABLE I", []string{"Route", "WL"}, []Row{
		{Bench: "Industry1", Cells: []string{"99.13%", "7.30"}},
		{Bench: "I2", Cells: []string{"99.59%", "17.93"}},
	})
	out := sb.String()
	if !strings.Contains(out, "TABLE I") || !strings.Contains(out, "Industry1") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// All data lines equal width (aligned).
	if len(lines[1]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Error("table rows not aligned")
	}
}

func TestMetricsCells(t *testing.T) {
	m := metrics.Metrics{RouteFrac: 0.9913, WL: 730000, AvgReg: 0.9813}
	cells := MetricsCells(m)
	if cells[0] != "99.13%" || cells[1] != "7.30" || cells[2] != "98.13%" {
		t.Errorf("cells = %v", cells)
	}
}

func TestHeatmap(t *testing.T) {
	g := grid.New(8, 8, grid.DefaultLayers(2, 2))
	u := grid.NewUsage(g)
	u.AddSeg(0, geom.S(geom.Pt(0, 3), geom.Pt(7, 3)), 3) // overflow row
	var sb strings.Builder
	Heatmap(&sb, u, 16)
	out := sb.String()
	if !strings.Contains(out, "@") {
		t.Errorf("overflow row missing '@':\n%s", out)
	}
	if !strings.Contains(out, "overflow edges: 7") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestHeatmapDownsamples(t *testing.T) {
	g := grid.New(64, 64, grid.DefaultLayers(2, 2))
	u := grid.NewUsage(g)
	var sb strings.Builder
	Heatmap(&sb, u, 16)
	lines := strings.Split(sb.String(), "\n")
	// 64/16 = 4 cells per block -> 16 map rows + legend + trailing newline.
	if len(lines) != 18 {
		t.Errorf("lines = %d, want 18", len(lines))
	}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	CSV(&sb, []string{"pins", "cpu"}, [][]string{{"100", "1.5"}, {"200", "3.0"}})
	want := "pins,cpu\n100,1.5\n200,3.0\n"
	if sb.String() != want {
		t.Errorf("CSV = %q", sb.String())
	}
}

func TestCongChar(t *testing.T) {
	cases := []struct {
		v    int
		want byte
	}{{0, ' '}, {199, ' '}, {200, '.'}, {500, ':'}, {800, '+'}, {1000, '#'}, {1500, '@'}}
	for _, c := range cases {
		if got := congChar(c.v); got != c.want {
			t.Errorf("congChar(%d) = %c, want %c", c.v, got, c.want)
		}
	}
}

// TestCongCharBoundaries pins the exact per-mille thresholds of the heatmap
// glyph ramp, including both sides of every boundary.
func TestCongCharBoundaries(t *testing.T) {
	cases := []struct {
		perMille int
		want     byte
	}{
		{0, ' '}, {199, ' '},
		{200, '.'}, {499, '.'},
		{500, ':'}, {799, ':'},
		{800, '+'}, {999, '+'},
		{1000, '#'},
		{1001, '@'}, {5000, '@'},
	}
	for _, c := range cases {
		if got := congChar(c.perMille); got != c.want {
			t.Errorf("congChar(%d) = %q, want %q", c.perMille, got, c.want)
		}
	}
}

// TestCSVQuoting pins RFC 4180 escaping: commas, quotes and newlines force
// quoting; embedded quotes double; plain fields stay unquoted.
func TestCSVQuoting(t *testing.T) {
	var sb strings.Builder
	CSV(&sb, []string{"name", "note"}, [][]string{
		{"plain", "no quoting needed"},
		{"with,comma", `say "hi"`},
		{"multi\nline", "cr\rfield"},
	})
	want := "name,note\n" +
		"plain,no quoting needed\n" +
		`"with,comma","say ""hi"""` + "\n" +
		"\"multi\nline\",\"cr\rfield\"\n"
	if sb.String() != want {
		t.Errorf("CSV quoting:\ngot  %q\nwant %q", sb.String(), want)
	}
}

func TestCSVFieldEdgeCases(t *testing.T) {
	cases := map[string]string{
		"":           "",
		"simple":     "simple",
		"a,b":        `"a,b"`,
		`"`:          `""""`,
		"line\nfeed": "\"line\nfeed\"",
	}
	for in, want := range cases {
		if got := csvField(in); got != want {
			t.Errorf("csvField(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFormatRuntimeTimedOut covers the "> limit" rendering with sub-minute
// and fractional limits — the value printed is the limit, not the elapsed.
func TestFormatRuntimeTimedOut(t *testing.T) {
	if got := FormatRuntime(90*time.Second, true, 60*time.Second); got != "> 60" {
		t.Errorf("timed out = %q, want \"> 60\"", got)
	}
	if got := FormatRuntime(time.Second, true, 1500*time.Millisecond); got != "> 2" {
		t.Errorf("fractional limit = %q, want \"> 2\" (rounded)", got)
	}
	if got := FormatRuntime(0, false, 0); got != "0.0" {
		t.Errorf("zero runtime = %q, want \"0.0\"", got)
	}
}
