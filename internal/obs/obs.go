// Package obs is Streak's observability layer: an allocation-conscious,
// nil-safe telemetry Recorder that collects per-stage spans (problem build,
// kernel fill, solver rungs, post-optimization, audit), named solver
// counters (simplex iterations, branch-and-bound nodes, primal-dual
// commits, hierarchical tile solves, fallback attempts), congestion
// snapshots derived from grid.Usage, and an optional HTTP debug endpoint
// serving expvar, live stage progress, and net/http/pprof.
//
// Every method on a nil *Recorder is a no-op, so the entire pipeline can be
// instrumented unconditionally: a run without a recorder attached to its
// context pays one context lookup per stage and nothing else. Stages
// executed under a recorder additionally run inside runtime/pprof labels
// (stage=<name>) so CPU profiles attribute samples to pipeline phases.
package obs

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync"
	"time"
)

// SchemaVersion identifies the JSON layout of Report. Bump it when the
// report shape changes incompatibly (see DESIGN.md "Observability").
const SchemaVersion = 1

// Canonical stage names. Every pipeline phase records its span under one of
// these, so reports stay joinable across runs and tools.
const (
	StageBuild   = "build.candidates"
	StageKernel  = "build.kernel"
	StagePD      = "solve.pd"
	StageILP     = "solve.ilp"
	StageHier    = "solve.hier"
	StageCluster = "postopt.cluster"
	StageRefine  = "postopt.refine"
	StageAudit   = "audit"
	StageMetrics = "metrics"
)

// Recorder collects spans, counters and labels for one run. The zero value
// is not used directly; call NewRecorder. All methods are safe for
// concurrent use and safe on a nil receiver.
type Recorder struct {
	mu         sync.Mutex
	start      time.Time
	spans      []SpanRecord
	active     map[*Span]struct{}
	counters   map[string]int64
	labels     map[string]string
	samplers   map[string]*Sampler
	samplerCap int

	// The trace-event buffer has its own lock so hot-loop emitters do not
	// contend with span/counter bookkeeping or live Report reads.
	evMu      sync.Mutex
	events    []Event
	eventCap  int
	evDropped int64
}

// NewRecorder returns an empty recorder whose span offsets are measured
// from now.
func NewRecorder() *Recorder {
	return &Recorder{
		start:      time.Now(),
		active:     make(map[*Span]struct{}),
		counters:   make(map[string]int64),
		labels:     make(map[string]string),
		eventCap:   DefaultEventCap,
		samplerCap: DefaultSamplerCap,
	}
}

// Span is one in-flight stage measurement; End finishes it. A nil *Span
// (from a nil recorder) ignores every call. Spans nest: StartChild opens a
// sub-span whose record carries the parent's name, and obs.Do threads the
// current stage span through the context so nested stages parent
// automatically.
type Span struct {
	r       *Recorder
	name    string
	parent  string
	workers int
	t0      time.Time
}

// SpanRecord is one finished stage in a report. Offsets and durations are
// microseconds so the JSON stays integer-valued and stable.
type SpanRecord struct {
	// Name is the canonical stage name.
	Name string `json:"name"`
	// Parent is the name of the enclosing span ("" at top level).
	Parent string `json:"parent,omitempty"`
	// StartUS is the span's start offset from the recorder's creation.
	StartUS int64 `json:"start_us"`
	// DurUS is the span's wall-clock duration.
	DurUS int64 `json:"dur_us"`
	// Workers is the worker-pool size the stage ran with (0 = sequential
	// or not applicable).
	Workers int `json:"workers,omitempty"`
}

// ActiveSpan is one still-running stage in a live report.
type ActiveSpan struct {
	Name      string `json:"name"`
	ElapsedUS int64  `json:"elapsed_us"`
	Workers   int    `json:"workers,omitempty"`
}

// StartSpan opens a top-level stage span. Always End it, normally via
// defer.
func (r *Recorder) StartSpan(name string) *Span {
	return r.startSpan(name, "")
}

// StartChild opens a span nested under s; its record carries s's name as
// Parent, and trace encoders nest it under s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.r.startSpan(name, s.name)
}

func (r *Recorder) startSpan(name, parent string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{r: r, name: name, parent: parent, t0: time.Now()}
	r.mu.Lock()
	r.active[s] = struct{}{}
	r.mu.Unlock()
	return s
}

// SetWorkers annotates the span with the worker-pool size of its stage.
// The write takes the recorder's lock: Report reads live spans' workers
// concurrently.
func (s *Span) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	s.workers = n
	s.r.mu.Unlock()
}

// End finishes the span and appends it to the recorder.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	r := s.r
	r.mu.Lock()
	delete(r.active, s)
	r.spans = append(r.spans, SpanRecord{
		Name:    s.name,
		Parent:  s.parent,
		StartUS: s.t0.Sub(r.start).Microseconds(),
		DurUS:   now.Sub(s.t0).Microseconds(),
		Workers: s.workers,
	})
	r.mu.Unlock()
}

// Add increments a named counter by delta.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetLabel attaches a string label (solver used, bench name, ...) to the
// report. Later values for the same key overwrite earlier ones.
func (r *Recorder) SetLabel(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.labels[key] = value
	r.mu.Unlock()
}

// Counter returns the current value of a named counter (0 when absent).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Counters returns a copy of every counter — cheaper than a full Report
// when only the counter set is wanted (nil when none, including on a nil
// recorder).
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Report is the JSON-serializable telemetry of one run.
type Report struct {
	// Schema is SchemaVersion.
	Schema int `json:"schema"`
	// Labels carries run-level annotations (solver, bench, ...).
	Labels map[string]string `json:"labels,omitempty"`
	// Spans lists finished stages in completion order.
	Spans []SpanRecord `json:"spans"`
	// Active lists still-running stages (live reports only).
	Active []ActiveSpan `json:"active,omitempty"`
	// Counters holds the named solver counters.
	Counters map[string]int64 `json:"counters"`
	// Trace lists the fine-grained trace events in emission order (see
	// Event; encode with WriteChromeTrace for Chrome/Perfetto).
	Trace []Event `json:"trace,omitempty"`
	// EventsDropped counts trace events discarded by the buffer cap.
	EventsDropped int64 `json:"events_dropped,omitempty"`
	// Series holds the convergence time-series, one per solver ("pd",
	// "ilp", "hier").
	Series map[string][]Sample `json:"series,omitempty"`
	// Congestion is the optional usage snapshot (attached by the caller).
	Congestion *CongestionSnapshot `json:"congestion,omitempty"`
}

// Report snapshots the recorder: finished spans, live stages, counters and
// labels. Safe to call while stages are still recording. A nil recorder
// yields an empty (but schema-stamped) report.
func (r *Recorder) Report() Report {
	rep := Report{Schema: SchemaVersion}
	if r == nil {
		return rep
	}
	now := time.Now()
	r.mu.Lock()
	rep.Spans = append([]SpanRecord(nil), r.spans...)
	for s := range r.active {
		rep.Active = append(rep.Active, ActiveSpan{
			Name:      s.name,
			ElapsedUS: now.Sub(s.t0).Microseconds(),
			Workers:   s.workers,
		})
	}
	rep.Counters = make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		rep.Counters[k] = v
	}
	if len(r.labels) > 0 {
		rep.Labels = make(map[string]string, len(r.labels))
		for k, v := range r.labels {
			rep.Labels[k] = v
		}
	}
	var samplers map[string]*Sampler
	if len(r.samplers) > 0 {
		samplers = make(map[string]*Sampler, len(r.samplers))
		for k, v := range r.samplers {
			samplers[k] = v
		}
	}
	r.mu.Unlock()
	if samplers != nil {
		rep.Series = make(map[string][]Sample, len(samplers))
		for k, s := range samplers {
			rep.Series[k] = s.Snapshot()
		}
	}
	r.evMu.Lock()
	rep.Trace = append([]Event(nil), r.events...)
	rep.EventsDropped = r.evDropped
	r.evMu.Unlock()
	sort.Slice(rep.Active, func(i, j int) bool { return rep.Active[i].Name < rep.Active[j].Name })
	return rep
}

// SpanTotal sums the durations of every finished span with the given name
// (a stage can run more than once, e.g. a solver retried by the fallback
// chain).
func (rep Report) SpanTotal(name string) time.Duration {
	var us int64
	for _, s := range rep.Spans {
		if s.Name == name {
			us += s.DurUS
		}
	}
	return time.Duration(us) * time.Microsecond
}

// ctxKey keys the recorder in a context.
type ctxKey struct{}

// WithRecorder attaches the recorder to the context. Attaching nil returns
// ctx unchanged, keeping the disabled path allocation-free.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the recorder attached to ctx, or nil.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}

// spanKey keys the current span in a context.
type spanKey struct{}

// WithSpan attaches the span to the context so nested stages (and trace
// encoders) can parent under it. Attaching nil returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the innermost span attached to ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Do runs fn as a named pipeline stage: when ctx carries a recorder the
// call is wrapped in a span and executed under the pprof label
// stage=<name>, so CPU profiles attribute samples to the phase; without a
// recorder it is a plain call. workers annotates the span (0 = sequential).
// The stage span parents under the span already in ctx (if any) and is
// itself attached to the context fn sees, so stages nest.
func Do(ctx context.Context, name string, workers int, fn func(context.Context) error) error {
	r := FromContext(ctx)
	if r == nil {
		return fn(ctx)
	}
	parent := ""
	if ps := SpanFromContext(ctx); ps != nil {
		parent = ps.name
	}
	sp := r.startSpan(name, parent)
	sp.SetWorkers(workers)
	defer sp.End()
	var err error
	pprof.Do(WithSpan(ctx, sp), pprof.Labels("stage", name), func(ctx context.Context) {
		err = fn(ctx)
	})
	return err
}
