package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEmitAndCap pins the bounded buffer: events append until the cap,
// everything past it is dropped and counted, and the report carries both.
func TestEmitAndCap(t *testing.T) {
	r := NewRecorder()
	r.SetEventCap(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Name: "e", Cat: "test", Start: int64(i), Dur: 1})
	}
	if got := r.EventsDropped(); got != 6 {
		t.Errorf("EventsDropped = %d, want 6", got)
	}
	rep := r.Report()
	if len(rep.Trace) != 4 {
		t.Errorf("Trace len = %d, want 4", len(rep.Trace))
	}
	if rep.EventsDropped != 6 {
		t.Errorf("report EventsDropped = %d, want 6", rep.EventsDropped)
	}
}

// TestEmitAt pins the offset conversion: the event's start is measured from
// the recorder's creation on the same clock as spans.
func TestEmitAt(t *testing.T) {
	r := NewRecorder()
	t0 := time.Now()
	r.EmitAt("pd.commit", "pd", t0, 3*time.Millisecond, Args{"object": 7})
	rep := r.Report()
	if len(rep.Trace) != 1 {
		t.Fatalf("Trace len = %d", len(rep.Trace))
	}
	e := rep.Trace[0]
	if e.Name != "pd.commit" || e.Cat != "pd" || e.Dur != 3000 {
		t.Errorf("event = %+v", e)
	}
	if e.Start < 0 || e.Start > time.Since(r.start).Microseconds() {
		t.Errorf("start offset %d out of range", e.Start)
	}
	if e.Args["object"] != 7 {
		t.Errorf("args = %v", e.Args)
	}
}

// TestNilTraceSafe extends the nil-safety table to the trace/sampler API.
func TestNilTraceSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{Name: "x"})
	r.EmitAt("x", "c", time.Now(), time.Second, nil)
	r.SetEventCap(1)
	r.SetSamplerCap(1)
	r.AnnotateBuildInfo()
	if r.EventsDropped() != 0 {
		t.Error("nil EventsDropped != 0")
	}
	s := r.Sampler("pd")
	if s != nil {
		t.Fatal("nil recorder returned a sampler")
	}
	s.Record(1, 1, 0)
	if s.Snapshot() != nil || s.Len() != 0 {
		t.Error("nil sampler not empty")
	}
	var sp *Span
	if c := sp.StartChild("x"); c != nil {
		t.Error("nil span spawned a child")
	}
}

// TestStartChildParent pins span nesting: the child's record names its
// parent, and obs.Do parents under the span already in the context.
func TestStartChildParent(t *testing.T) {
	r := NewRecorder()
	root := r.StartSpan("run")
	child := root.StartChild(StagePD)
	child.End()
	root.End()
	rep := r.Report()
	if len(rep.Spans) != 2 {
		t.Fatalf("spans = %+v", rep.Spans)
	}
	if rep.Spans[0].Name != StagePD || rep.Spans[0].Parent != "run" {
		t.Errorf("child record = %+v", rep.Spans[0])
	}
	if rep.Spans[1].Parent != "" {
		t.Errorf("root record = %+v", rep.Spans[1])
	}
}

// TestDoNestsUnderContextSpan pins automatic stage nesting through Do.
func TestDoNestsUnderContextSpan(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	root := r.StartSpan("run")
	ctx = WithSpan(ctx, root)
	var sawStage bool
	err := Do(ctx, StageBuild, 0, func(ctx context.Context) error {
		if SpanFromContext(ctx) == nil {
			t.Error("stage span not attached to ctx")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	rep := r.Report()
	for _, s := range rep.Spans {
		if s.Name == StageBuild {
			sawStage = true
			if s.Parent != "run" {
				t.Errorf("stage parent = %q, want run", s.Parent)
			}
		}
	}
	if !sawStage {
		t.Errorf("no %s span recorded: %+v", StageBuild, rep.Spans)
	}
}

// TestWriteChromeTraceGolden pins the byte encoding of a fixed report so
// the trace format stays loadable and stable across refactors.
func TestWriteChromeTraceGolden(t *testing.T) {
	rep := Report{
		Spans: []SpanRecord{
			{Name: "solve.pd", StartUS: 0, DurUS: 100, Workers: 2},
			{Name: "audit", Parent: "run", StartUS: 150, DurUS: 20},
		},
		Trace: []Event{
			{Name: "pd.commit", Cat: "pd", Start: 10, Dur: 5, Args: Args{"object": 1, "cand": 2}},
			{Name: "pd.commit", Cat: "pd", Start: 12, Dur: 5, Args: Args{"object": 3}},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"dur":0,"pid":1,"tid":0,"args":{"name":"streak"}},` +
		`{"name":"solve.pd","cat":"stage","ph":"X","ts":0,"dur":100,"pid":1,"tid":0,"args":{"workers":2}},` +
		`{"name":"pd.commit","cat":"pd","ph":"X","ts":10,"dur":5,"pid":1,"tid":0,"args":{"cand":2,"object":1}},` +
		`{"name":"pd.commit","cat":"pd","ph":"X","ts":12,"dur":5,"pid":1,"tid":1,"args":{"object":3}},` +
		`{"name":"audit","cat":"stage","ph":"X","ts":150,"dur":20,"pid":1,"tid":0,"args":{"parent":"run"}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("chrome trace:\n got %s\nwant %s", got, want)
	}
}

// TestWriteChromeTraceCounters pins the counter export: end-of-run totals
// become "C" events at the report's final timestamp, sorted by name, after
// all span/trace entries.
func TestWriteChromeTraceCounters(t *testing.T) {
	rep := Report{
		Spans: []SpanRecord{
			{Name: "solve.pd", StartUS: 0, DurUS: 100},
		},
		Counters: map[string]int64{
			"ilp.lp.warm":           7,
			"ilp.lp.cold":           3,
			"build.arena.pool.gets": 42,
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"dur":0,"pid":1,"tid":0,"args":{"name":"streak"}},` +
		`{"name":"solve.pd","cat":"stage","ph":"X","ts":0,"dur":100,"pid":1,"tid":0},` +
		`{"name":"build.arena.pool.gets","cat":"counter","ph":"C","ts":100,"dur":0,"pid":1,"tid":0,"args":{"value":42}},` +
		`{"name":"ilp.lp.cold","cat":"counter","ph":"C","ts":100,"dur":0,"pid":1,"tid":0,"args":{"value":3}},` +
		`{"name":"ilp.lp.warm","cat":"counter","ph":"C","ts":100,"dur":0,"pid":1,"tid":0,"args":{"value":7}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != want {
		t.Errorf("chrome trace with counters:\n got %s\nwant %s", got, want)
	}
}

// TestWriteChromeTraceNesting checks the lane invariant on a busier
// synthetic report: the output is valid JSON, every lane's complete events
// are properly nested (no partial overlap on one tid), and events that fall
// inside their stage span's interval land on the span's lane when nothing
// overlaps.
func TestWriteChromeTraceNesting(t *testing.T) {
	rep := Report{
		Spans: []SpanRecord{{Name: "build.candidates", StartUS: 0, DurUS: 1000, Workers: 4}},
	}
	// Four workers emitting overlapping per-object events inside the stage.
	for i := 0; i < 16; i++ {
		rep.Trace = append(rep.Trace, Event{
			Name: "build.expand", Cat: "build",
			Start: int64(i * 50), Dur: 120, Args: Args{"object": float64(i)},
		})
	}
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	type iv struct{ ts, end int64 }
	byLane := map[int][]iv{}
	span := iv{}
	for _, e := range file.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		if e.Name == "build.candidates" {
			span = iv{e.TS, e.TS + e.Dur}
		} else if e.TS < 0 || e.TS+e.Dur > 1000 {
			t.Errorf("event %v escapes its stage", e)
		}
		byLane[e.TID] = append(byLane[e.TID], iv{e.TS, e.TS + e.Dur})
	}
	if span.end != 1000 {
		t.Fatal("stage span missing from trace")
	}
	for tid, ivs := range byLane {
		for i := 1; i < len(ivs); i++ {
			a, b := ivs[i-1], ivs[i]
			if b.ts < a.end && b.end > a.end {
				t.Errorf("lane %d: partial overlap %v then %v", tid, a, b)
			}
		}
	}
}

// TestConcurrentTrace hammers the event buffer and samplers from many
// goroutines while the main goroutine takes live reports and encodes
// traces (run under -race).
func TestConcurrentTrace(t *testing.T) {
	r := NewRecorder()
	r.SetEventCap(256)
	const workers, iters = 8, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			samp := r.Sampler("pd")
			sp := r.StartSpan(StagePD)
			child := sp.StartChild("leg")
			for i := 0; i < iters; i++ {
				r.EmitAt("pd.commit", "pd", time.Now(), time.Microsecond, Args{"object": float64(i)})
				samp.Record(float64(iters-i), i, 0)
			}
			child.End()
			sp.End()
		}(w)
	}
	// Live reader: takes reports and encodes traces while emitters run.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rep := r.Report()
			if err := rep.WriteChromeTrace(&bytes.Buffer{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone

	rep := r.Report()
	if len(rep.Trace) != 256 {
		t.Errorf("trace len = %d, want cap 256", len(rep.Trace))
	}
	if rep.EventsDropped != int64(workers*iters-256) {
		t.Errorf("dropped = %d, want %d", rep.EventsDropped, workers*iters-256)
	}
	if len(rep.Series["pd"]) == 0 {
		t.Error("no pd samples")
	}
}

// TestReportTraceJSONRoundTrip extends the wire-format pin to trace events
// and series.
func TestReportTraceJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Name: "e", Cat: "c", Start: 1, Dur: 2, Args: Args{"k": 3}})
	r.Sampler("pd").Record(42.5, 7, 40)
	rep := r.Report()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Trace) != 1 || back.Trace[0].Name != "e" || back.Trace[0].Args["k"] != 3 {
		t.Errorf("trace round-trip: %+v", back.Trace)
	}
	s := back.Series["pd"]
	if len(s) != 1 || s[0].Objective != 42.5 || s[0].Routed != 7 || s[0].Bound != 40 {
		t.Errorf("series round-trip: %+v", s)
	}
	if !strings.Contains(string(raw), `"events_dropped"`) == (rep.EventsDropped > 0) {
		t.Logf("raw: %s", raw)
	}
}

// TestBuildInfoLabels sanity-checks the build-info annotation: a go_version
// label always exists (VCS settings depend on how the test binary was
// built).
func TestBuildInfoLabels(t *testing.T) {
	r := NewRecorder()
	r.AnnotateBuildInfo()
	rep := r.Report()
	if rep.Labels["go_version"] == "" {
		t.Errorf("go_version label missing: %+v", rep.Labels)
	}
}
