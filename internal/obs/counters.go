package obs

import "sort"

// Canonical counter names. Every counter a pipeline stage emits is declared
// here — emitting packages reference these constants instead of repeating
// free-form strings, so a typo'd name is a compile error instead of a
// silently diverging metric, and downstream consumers (stats JSON, the
// telemetry lake, the Prometheus endpoint) can enumerate the full set.
// Names are dot-separated "<area>.<thing>[.<detail>]"; adding one here must
// be paired with adding it to knownCounters below (the registry test pins
// that a full Industry solve emits only registered names).
const (
	// Problem construction (internal/route).
	CounterBuildObjects        = "build.objects"
	CounterBuildCandidates     = "build.candidates"
	CounterBuildArenaPoolGets  = "build.arena.pool.gets"
	CounterBuildArenaPoolFresh = "build.arena.pool.fresh"
	CounterKernelPairsEager    = "kernel.pairs.eager"
	CounterKernelPairsLazy     = "kernel.pairs.lazy"

	// Primal-dual selection (internal/pd).
	CounterPDIterations     = "pd.iterations"
	CounterPDRouted         = "pd.routed"
	CounterPDPruneChecked   = "pd.prune.checked"
	CounterPDPruneSurvivors = "pd.prune.survivors"
	CounterPDUsagePoolGets  = "pd.usage.pool.gets"
	CounterPDUsagePoolFresh = "pd.usage.pool.fresh"

	// Exact model construction (internal/exact).
	CounterExactVars = "exact.vars"
	CounterExactCons = "exact.cons"

	// ILP branch and bound (internal/ilp).
	CounterILPSolves       = "ilp.solves"
	CounterILPBBNodes      = "ilp.bb.nodes"
	CounterILPBBPruned     = "ilp.bb.pruned"
	CounterILPSimplexIters = "ilp.simplex.iterations"
	CounterILPLazyActive   = "ilp.lazy.activated"
	CounterILPLPWarm       = "ilp.lp.warm"
	CounterILPLPCold       = "ilp.lp.cold"
	CounterILPScratchGets  = "ilp.scratch.gets"
	CounterILPScratchFresh = "ilp.scratch.fresh"

	// Hierarchical selection (internal/hier).
	CounterHierTilesSolved   = "hier.tiles.solved"
	CounterHierTilesTimedOut = "hier.tiles.timedout"
	CounterHierGreedyRouted  = "hier.greedy.routed"
	CounterHierUsagePoolGets = "hier.usage.pool.gets"
	CounterHierUsagePoolFresh = "hier.usage.pool.fresh"

	// Post-optimization (internal/postopt).
	CounterClusterBitsRouted = "postopt.cluster.bits_routed"
	CounterClusterBitsLeft   = "postopt.cluster.bits_left"
	CounterClusterClusters   = "postopt.cluster.clusters"
	CounterRefinePinsFixed   = "postopt.refine.pins_fixed"
	CounterRefinePinsLeft    = "postopt.refine.pins_left"
	CounterRefineAddedWL     = "postopt.refine.added_wl"

	// Legality audit (internal/audit).
	CounterAuditViolations = "audit.violations"
	CounterAuditBits       = "audit.bits"
	CounterAuditEdges      = "audit.edges"

	// Flow orchestration (internal/core).
	CounterFallbackAttempts = "core.fallback.attempts"

	// Async job tier (internal/jobs).
	CounterJobsReplayRecords = "jobs.replay.records"
	CounterJobsReplaySkipped = "jobs.replay.skipped"
	CounterJobsRecovered     = "jobs.recovered"
	CounterJobsSubmitted     = "jobs.submitted"
	CounterJobsDedup         = "jobs.dedup"
	CounterJobsStarted       = "jobs.started"
	CounterJobsRetries       = "jobs.retries"
	CounterJobsSucceeded     = "jobs.succeeded"
	CounterJobsFailed        = "jobs.failed"
	CounterJobsCanceled      = "jobs.canceled"
	CounterJobsInterrupted   = "jobs.interrupted"
	CounterJobsAppendErrors  = "jobs.store.append.errors"
)

// Canonical solve-cache counter names (recorded by internal/solvecache):
// exact content-hash hits and misses, misses served by incremental
// re-routing, per-rebuild object invalidation/reuse splits, incremental
// attempts abandoned for a cold solve, and incremental results the
// legality audit rejected.
const (
	CounterCacheHit         = "cache.hit"
	CounterCacheMiss        = "cache.miss"
	CounterCacheIncremental = "cache.incremental"
	CounterCacheInvalidated = "cache.objects.invalidated"
	CounterCacheKept        = "cache.objects.kept"
	CounterCacheColdFall    = "cache.fallback.cold"
	CounterCacheAuditReject = "cache.audit.reject"
)

// knownCounters is the registry: every canonical name above, as a set.
var knownCounters = func() map[string]struct{} {
	names := []string{
		CounterBuildObjects, CounterBuildCandidates,
		CounterBuildArenaPoolGets, CounterBuildArenaPoolFresh,
		CounterKernelPairsEager, CounterKernelPairsLazy,
		CounterPDIterations, CounterPDRouted,
		CounterPDPruneChecked, CounterPDPruneSurvivors,
		CounterPDUsagePoolGets, CounterPDUsagePoolFresh,
		CounterExactVars, CounterExactCons,
		CounterILPSolves, CounterILPBBNodes, CounterILPBBPruned,
		CounterILPSimplexIters, CounterILPLazyActive,
		CounterILPLPWarm, CounterILPLPCold,
		CounterILPScratchGets, CounterILPScratchFresh,
		CounterHierTilesSolved, CounterHierTilesTimedOut,
		CounterHierGreedyRouted,
		CounterHierUsagePoolGets, CounterHierUsagePoolFresh,
		CounterClusterBitsRouted, CounterClusterBitsLeft,
		CounterClusterClusters,
		CounterRefinePinsFixed, CounterRefinePinsLeft,
		CounterRefineAddedWL,
		CounterAuditViolations, CounterAuditBits, CounterAuditEdges,
		CounterFallbackAttempts,
		CounterJobsReplayRecords, CounterJobsReplaySkipped,
		CounterJobsRecovered, CounterJobsSubmitted, CounterJobsDedup,
		CounterJobsStarted, CounterJobsRetries, CounterJobsSucceeded,
		CounterJobsFailed, CounterJobsCanceled, CounterJobsInterrupted,
		CounterJobsAppendErrors,
		CounterCacheHit, CounterCacheMiss, CounterCacheIncremental,
		CounterCacheInvalidated, CounterCacheKept,
		CounterCacheColdFall, CounterCacheAuditReject,
	}
	m := make(map[string]struct{}, len(names))
	for _, n := range names {
		m[n] = struct{}{}
	}
	return m
}()

// KnownCounter reports whether name is in the canonical counter registry.
func KnownCounter(name string) bool {
	_, ok := knownCounters[name]
	return ok
}

// KnownCounterNames returns the sorted canonical counter registry.
func KnownCounterNames() []string {
	out := make([]string, 0, len(knownCounters))
	for n := range knownCounters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
