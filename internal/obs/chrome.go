package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in about://tracing and Perfetto. Complete events ("X") carry
// microsecond timestamps/durations — exactly the units of SpanRecord and
// Event, so the encoding is a field mapping, not a conversion.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object form of the trace format (the bare-array form is
// also legal, but the object form carries the display unit).
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace encodes the report's spans and trace events as Chrome
// trace_event JSON. All entries share pid 1; tids are synthetic "lanes"
// assigned so every lane is properly nested (Chrome and Perfetto render
// same-tid complete events as a flame stack, which requires containment):
// an entry joins the first lane where it either starts after everything
// open has ended or fits entirely inside the innermost open interval;
// overlapping entries from parallel workers spill into fresh lanes. The
// layout is deterministic for a fixed report, so golden tests can pin the
// byte encoding.
func (rep Report) WriteChromeTrace(w io.Writer) error {
	entries := make([]chromeEvent, 0, len(rep.Spans)+len(rep.Trace)+1)
	for _, s := range rep.Spans {
		args := map[string]any{}
		if s.Workers > 0 {
			args["workers"] = s.Workers
		}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		if len(args) == 0 {
			args = nil
		}
		entries = append(entries, chromeEvent{
			Name: s.Name, Cat: "stage", Ph: "X",
			TS: s.StartUS, Dur: s.DurUS, PID: 1, Args: args,
		})
	}
	for _, e := range rep.Trace {
		cat := e.Cat
		if cat == "" {
			cat = "event"
		}
		var args map[string]any
		if len(e.Args) > 0 {
			args = make(map[string]any, len(e.Args))
			for k, v := range e.Args {
				args[k] = v
			}
		}
		entries = append(entries, chromeEvent{
			Name: e.Name, Cat: cat, Ph: "X",
			TS: e.Start, Dur: e.Dur, PID: 1, Args: args,
		})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur // longer first, so parents precede children
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Cat < b.Cat
	})
	assignLanes(entries)

	// Counters are end-of-run totals, not timed samples, so they export as
	// Chrome counter events ("C") at the report's final timestamp: viewers
	// render them as a closing value track, and appending after lane
	// assignment keeps them from perturbing span lanes.
	if len(rep.Counters) > 0 {
		var endTS int64
		for _, e := range entries {
			if t := e.TS + e.Dur; t > endTS {
				endTS = t
			}
		}
		names := make([]string, 0, len(rep.Counters))
		for name := range rep.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			entries = append(entries, chromeEvent{
				Name: name, Cat: "counter", Ph: "C",
				TS: endTS, PID: 1,
				Args: map[string]any{"value": rep.Counters[name]},
			})
		}
	}

	file := chromeFile{
		TraceEvents: append([]chromeEvent{{
			Name: "process_name", Ph: "M", PID: 1,
			Args: map[string]any{"name": "streak"},
		}}, entries...),
		DisplayTimeUnit: "ms",
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// assignLanes sets each entry's TID. Entries must be sorted by (ts, -dur).
// Each lane keeps a stack of open interval end times (outermost first); an
// entry joins a lane when the lane is idle at its start or the entry is
// fully contained in the lane's innermost open interval.
func assignLanes(entries []chromeEvent) {
	var lanes [][]int64 // per-lane stack of open end times
	for i := range entries {
		ts, end := entries[i].TS, entries[i].TS+entries[i].Dur
		placed := false
		for li := range lanes {
			stack := lanes[li]
			for len(stack) > 0 && stack[len(stack)-1] <= ts {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 || end <= stack[len(stack)-1] {
				lanes[li] = append(stack, end)
				entries[i].TID = li
				placed = true
				break
			}
			lanes[li] = stack
		}
		if !placed {
			lanes = append(lanes, []int64{end})
			entries[i].TID = len(lanes) - 1
		}
	}
}
