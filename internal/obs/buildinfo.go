package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

var (
	buildInfoOnce sync.Once
	buildInfo     map[string]string
)

// BuildInfoLabels returns labels identifying the running binary: the Go
// version and, when the binary was built inside a VCS checkout, the
// revision, commit time and dirty flag. Telemetry surfaces stamp these on
// every report so BENCH/stats artifacts stay attributable to a commit. The
// lookup runs once per process.
func BuildInfoLabels() map[string]string {
	buildInfoOnce.Do(func() {
		m := map[string]string{"go_version": runtime.Version()}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				switch s.Key {
				case "vcs.revision":
					m["vcs_revision"] = s.Value
				case "vcs.time":
					m["vcs_time"] = s.Value
				case "vcs.modified":
					if s.Value == "true" {
						m["vcs_modified"] = "true"
					}
				}
			}
		}
		buildInfo = m
	})
	return buildInfo
}

// AnnotateBuildInfo stamps the build-info labels on the recorder's report.
func (r *Recorder) AnnotateBuildInfo() {
	for k, v := range BuildInfoLabels() {
		r.SetLabel(k, v)
	}
}
