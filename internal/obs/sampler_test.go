package obs

import "testing"

// TestSamplerFirstAlwaysKept pins the "≥1 sample per solver" guarantee: the
// very first offer lands even with stride decimation active later.
func TestSamplerFirstAlwaysKept(t *testing.T) {
	r := NewRecorder()
	s := r.Sampler("pd")
	s.Record(100, 0, 0)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after first Record", s.Len())
	}
	snap := s.Snapshot()
	if snap[0].Objective != 100 || snap[0].Routed != 0 {
		t.Errorf("first sample = %+v", snap[0])
	}
}

// TestSamplerDecimation feeds many offers through a small cap and checks the
// invariants: the buffer never exceeds the cap, the first sample survives
// every halving, samples stay in time order, and the kept set spans the full
// input range rather than truncating the tail.
func TestSamplerDecimation(t *testing.T) {
	r := NewRecorder()
	r.SetSamplerCap(8)
	s := r.Sampler("ilp")
	const offers = 1000
	for i := 0; i < offers; i++ {
		s.Record(float64(offers-i), i, float64(i)/2)
		if s.Len() > 8 {
			t.Fatalf("Len = %d exceeds cap after offer %d", s.Len(), i)
		}
	}
	snap := s.Snapshot()
	if len(snap) == 0 || len(snap) > 8 {
		t.Fatalf("kept %d samples", len(snap))
	}
	if snap[0].Objective != offers {
		t.Errorf("first sample lost: %+v", snap[0])
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].ElapsedUS < snap[i-1].ElapsedUS {
			t.Errorf("samples out of time order at %d", i)
		}
		// Objective decreases monotonically in the input; kept samples must too.
		if snap[i].Objective >= snap[i-1].Objective {
			t.Errorf("objective not decreasing at %d: %v then %v", i, snap[i-1].Objective, snap[i].Objective)
		}
	}
	// The tail of the curve must be represented: the last kept sample should
	// come from the final quarter of the offers.
	last := snap[len(snap)-1]
	if last.Routed < offers*3/4 {
		t.Errorf("tail truncated: last kept routed=%d of %d offers", last.Routed, offers)
	}
}

// TestSamplerPerNameIsolation checks that distinct names get distinct series
// and the same name returns the same series.
func TestSamplerPerNameIsolation(t *testing.T) {
	r := NewRecorder()
	a := r.Sampler("pd")
	b := r.Sampler("hier")
	if a == b {
		t.Fatal("distinct names shared a sampler")
	}
	if r.Sampler("pd") != a {
		t.Fatal("same name returned a new sampler")
	}
	a.Record(1, 1, 0)
	if b.Len() != 0 {
		t.Error("series leaked across names")
	}
}

// TestSamplerInReport checks the report carries every named series.
func TestSamplerInReport(t *testing.T) {
	r := NewRecorder()
	r.Sampler("pd").Record(10, 1, 0)
	r.Sampler("pd").Record(9, 2, 0)
	r.Sampler("hier").Record(5, 1, 0)
	rep := r.Report()
	if len(rep.Series) != 2 {
		t.Fatalf("series map = %+v", rep.Series)
	}
	if len(rep.Series["pd"]) != 2 || len(rep.Series["hier"]) != 1 {
		t.Errorf("series lengths: pd=%d hier=%d", len(rep.Series["pd"]), len(rep.Series["hier"]))
	}
	if rep.Series["pd"][1].Routed != 2 {
		t.Errorf("pd[1] = %+v", rep.Series["pd"][1])
	}
}
