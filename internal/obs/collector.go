package obs

import (
	"context"
	"sync"
)

// Run tags one collected report with the benchmark and flow it measured.
type Run struct {
	// Bench is the design name; Flow names the solver configuration
	// ("pd", "ilp", ...).
	Bench string `json:"bench"`
	Flow  string `json:"flow"`
	// Report is the run's telemetry.
	Report Report `json:"report"`
}

// Collector aggregates per-run reports across an experiment sweep. A nil
// collector disables collection: Start returns the context unchanged.
type Collector struct {
	mu   sync.Mutex
	runs []Run
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Start attaches a fresh recorder for one (bench, flow) run to the context
// and returns the finish function that collects its report. With a nil
// collector both the context and the finisher are pass-throughs.
func (c *Collector) Start(ctx context.Context, bench, flow string) (context.Context, func()) {
	if c == nil {
		return ctx, func() {}
	}
	rec := NewRecorder()
	rec.SetLabel("bench", bench)
	rec.SetLabel("flow", flow)
	rec.AnnotateBuildInfo()
	return WithRecorder(ctx, rec), func() {
		rep := rec.Report()
		c.mu.Lock()
		c.runs = append(c.runs, Run{Bench: bench, Flow: flow, Report: rep})
		c.mu.Unlock()
	}
}

// Runs returns a copy of the collected runs in completion order.
func (c *Collector) Runs() []Run {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Run(nil), c.runs...)
}
