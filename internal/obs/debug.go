package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"sync/atomic"
)

var (
	expvarOnce sync.Once
	expvarCur  atomic.Pointer[Recorder]
)

// PublishExpvar exposes the recorder's live report under the expvar name
// "streak". expvar names are process-global, so repeated calls re-point the
// published variable at the newest recorder instead of re-publishing.
func PublishExpvar(r *Recorder) {
	if r == nil {
		return
	}
	expvarCur.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("streak", expvar.Func(func() any {
			return expvarCur.Load().Report()
		}))
	})
}

// DebugMux builds the debug HTTP handler: /debug/vars (expvar, including
// the "streak" live report), /debug/streak (the recorder's report as plain
// JSON, for dashboards that do not want the whole expvar dump), and the
// net/http/pprof family under /debug/pprof/.
func DebugMux(r *Recorder) *http.ServeMux {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/streak", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Report())
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// ServeDebug starts the debug endpoint on addr (use port 0 for an
// OS-assigned port) and returns the server plus the bound address. The
// caller owns shutdown via srv.Close.
func ServeDebug(addr string, r *Recorder) (srv *http.Server, boundAddr string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv = &http.Server{Handler: DebugMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
