package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestServeDebugSmoke boots the debug endpoint on an ephemeral port and
// checks the three surfaces: /debug/streak (report JSON), /debug/vars
// (expvar including the "streak" var), and the pprof index.
func TestServeDebugSmoke(t *testing.T) {
	r := NewRecorder()
	r.SetLabel("bench", "smoke")
	sp := r.StartSpan(StagePD)
	sp.End()
	r.Add("pd.iterations", 5)

	srv, addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var rep Report
	if err := json.Unmarshal(get("/debug/streak"), &rep); err != nil {
		t.Fatalf("/debug/streak not JSON: %v", err)
	}
	if rep.Schema != SchemaVersion || rep.Counters["pd.iterations"] != 5 {
		t.Errorf("/debug/streak report = %+v", rep)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != StagePD {
		t.Errorf("/debug/streak spans = %+v", rep.Spans)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars["streak"]
	if !ok {
		t.Fatal("/debug/vars missing the streak var")
	}
	var live Report
	if err := json.Unmarshal(raw, &live); err != nil {
		t.Fatalf("streak expvar not a report: %v", err)
	}
	if live.Counters["pd.iterations"] != 5 {
		t.Errorf("expvar report = %+v", live)
	}

	if body := string(get("/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index looks wrong: %.120s", body)
	}
}

// TestPublishExpvarRepoints verifies repeated publication re-points the
// process-global expvar at the newest recorder instead of panicking on a
// duplicate name.
func TestPublishExpvarRepoints(t *testing.T) {
	r1 := NewRecorder()
	r1.Add("x", 1)
	PublishExpvar(r1)
	r2 := NewRecorder()
	r2.Add("x", 2)
	PublishExpvar(r2) // must not panic (expvar.Publish would)
	if got := expvarCur.Load(); got != r2 {
		t.Fatal("expvar not re-pointed at the newest recorder")
	}
	PublishExpvar(nil) // no-op, keeps r2
	if got := expvarCur.Load(); got != r2 {
		t.Fatal("nil publish clobbered the live recorder")
	}
}
