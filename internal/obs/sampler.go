package obs

import (
	"sync"
	"time"
)

// DefaultSamplerCap bounds each convergence series. When a series fills up
// it is decimated (every second sample dropped, recording stride doubled),
// so long solves keep a bounded, shape-preserving curve instead of either
// unbounded growth or a truncated tail.
const DefaultSamplerCap = 512

// Sample is one convergence observation: where the solver stood at one
// moment of its run. Objective is the formulation (3a) value driven down by
// Algorithm 2 / the ILP; Routed counts committed objects (selected binaries
// for the ILP); Bound carries the solver's dual/relaxation bound when it
// has one (0 otherwise).
type Sample struct {
	// ElapsedUS is microseconds since the recorder's creation.
	ElapsedUS int64 `json:"elapsed_us"`
	// Objective is the incumbent objective at this moment.
	Objective float64 `json:"objective"`
	// Routed counts routed/committed objects at this moment.
	Routed int64 `json:"routed"`
	// Bound is the relaxation bound, when the solver exposes one.
	Bound float64 `json:"bound,omitempty"`
}

// Sampler records one named convergence time-series with bounded memory.
// Record offers are decimated: the sampler keeps every stride-th offer and,
// when the buffer fills, halves it and doubles the stride. All methods are
// safe for concurrent use and safe on a nil receiver.
type Sampler struct {
	mu      sync.Mutex
	start   time.Time
	cap     int
	stride  int
	pending int
	samples []Sample
}

// Sampler returns the named convergence series, creating it on first use.
// A nil recorder returns a nil sampler whose methods are all no-ops, so
// solver loops can hold one unconditionally.
func (r *Recorder) Sampler(name string) *Sampler {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.samplers[name]
	if s == nil {
		s = &Sampler{start: r.start, cap: r.samplerCap, stride: 1}
		if s.cap < 2 {
			s.cap = 2
		}
		if r.samplers == nil {
			r.samplers = make(map[string]*Sampler)
		}
		r.samplers[name] = s
	}
	return s
}

// SetSamplerCap replaces the per-series cap (default DefaultSamplerCap) for
// samplers created afterwards; existing series keep their cap. Caps below 2
// are clamped to 2.
func (r *Recorder) SetSamplerCap(n int) {
	if r == nil {
		return
	}
	if n < 2 {
		n = 2
	}
	r.mu.Lock()
	r.samplerCap = n
	r.mu.Unlock()
}

// Record offers one observation. The first offer is always kept, so every
// solver that runs at all contributes at least one sample.
func (s *Sampler) Record(objective float64, routed int, bound float64) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending++
	if s.pending < s.stride {
		return
	}
	s.pending = 0
	s.samples = append(s.samples, Sample{
		ElapsedUS: now.Sub(s.start).Microseconds(),
		Objective: objective,
		Routed:    int64(routed),
		Bound:     bound,
	})
	if len(s.samples) >= s.cap {
		// Decimate in place: keep every second sample (the first always
		// survives) and double the stride for future offers.
		kept := s.samples[:0]
		for i := 0; i < len(s.samples); i += 2 {
			kept = append(kept, s.samples[i])
		}
		// Zero the tail so dropped samples don't linger in the backing array.
		for i := len(kept); i < len(s.samples); i++ {
			s.samples[i] = Sample{}
		}
		s.samples = kept
		s.stride *= 2
	}
}

// Snapshot returns a copy of the recorded samples in time order.
func (s *Sampler) Snapshot() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// Len returns the number of samples currently held.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}
