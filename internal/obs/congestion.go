package obs

import (
	"sort"

	"repro/internal/grid"
)

// HistBuckets is the number of utilization buckets in a layer histogram:
// bucket k (k < 10) counts edges with utilization in [k*10%, (k+1)*10%),
// bucket 10 counts exactly-full edges and everything up to 100%, and bucket
// 11 counts overflowed edges (utilization > 100%, including wires through
// zero-capacity edges).
const HistBuckets = 12

// LayerCongestion summarizes one layer's capacity pressure.
type LayerCongestion struct {
	// Layer is the layer index; Name and Dir describe it.
	Layer int    `json:"layer"`
	Name  string `json:"name"`
	Dir   string `json:"dir"`
	// Edges is the number of routing edges on the layer.
	Edges int `json:"edges"`
	// Used and Cap are total tracks in use and total base capacity.
	Used int64 `json:"used"`
	Cap  int64 `json:"cap"`
	// Overflow and OverflowEdges mirror grid.Usage for this layer.
	Overflow      int `json:"overflow"`
	OverflowEdges int `json:"overflow_edges"`
	// Hist is the utilization histogram (see HistBuckets).
	Hist [HistBuckets]int `json:"hist"`
}

// EdgeHotspot is one high-pressure edge in a snapshot.
type EdgeHotspot struct {
	Layer int `json:"layer"`
	X     int `json:"x"`
	Y     int `json:"y"`
	Use   int `json:"use"`
	Cap   int `json:"cap"`
	// UtilPct is use/cap as a percentage (overflowed edges exceed 100;
	// wires through zero-capacity edges report 200).
	UtilPct int `json:"util_pct"`
}

// CongestionSnapshot is a point-in-time summary of track usage: per-layer
// utilization histograms plus the top-K overflow-risk edges, ranked by
// utilization (then usage, then position, so the ranking is deterministic).
type CongestionSnapshot struct {
	Layers   []LayerCongestion `json:"layers"`
	TopEdges []EdgeHotspot     `json:"top_edges,omitempty"`
}

// utilPct computes the percentage utilization of one edge; zero-capacity
// edges carrying wires report 200 so they always rank as overflowed.
func utilPct(use, cap int) int {
	switch {
	case cap > 0:
		return use * 100 / cap
	case use > 0:
		return 200
	default:
		return 0
	}
}

// UtilBucket maps a utilization percentage (as produced by utilPct or
// grid.Usage.CellCongestion/10) to its histogram bucket: 0-9 are the 10%
// steps, HistBuckets-2 is exactly full, HistBuckets-1 is overflowed. The
// snapshot histograms and the SVG congestion tint share this bucketing.
func UtilBucket(pct int) int {
	switch {
	case pct > 100:
		return HistBuckets - 1
	case pct == 100:
		return HistBuckets - 2
	default:
		b := pct / 10
		if b > HistBuckets-2 {
			b = HistBuckets - 2
		}
		return b
	}
}

// SnapshotCongestion summarizes the usage tracker: per-layer histograms and
// the topK highest-utilization edges with non-zero use. A nil usage yields
// a nil snapshot.
func SnapshotCongestion(u *grid.Usage, topK int) *CongestionSnapshot {
	if u == nil {
		return nil
	}
	g := u.Grid()
	snap := &CongestionSnapshot{Layers: make([]LayerCongestion, len(g.Layers))}
	var hot []EdgeHotspot
	for l, layer := range g.Layers {
		lc := LayerCongestion{Layer: l, Name: layer.Name, Dir: layer.Dir.String(), Edges: g.EdgeCount(l)}
		for idx := 0; idx < lc.Edges; idx++ {
			use := u.Use(l, idx)
			cap := u.EdgeCap(l, idx)
			lc.Used += int64(use)
			lc.Cap += int64(cap)
			if over := use - cap; over > 0 {
				lc.Overflow += over
				lc.OverflowEdges++
			}
			// utilPct only reports 100 when use == cap > 0, so UtilBucket's
			// exactly-full bucket matches the "full and in use" case.
			pct := utilPct(use, cap)
			lc.Hist[UtilBucket(pct)]++
			if topK > 0 && use > 0 {
				x, y := g.EdgeCell(l, idx)
				hot = append(hot, EdgeHotspot{Layer: l, X: x, Y: y, Use: use, Cap: cap, UtilPct: pct})
			}
		}
		snap.Layers[l] = lc
	}
	if topK > 0 && len(hot) > 0 {
		sort.Slice(hot, func(i, j int) bool {
			a, b := hot[i], hot[j]
			if a.UtilPct != b.UtilPct {
				return a.UtilPct > b.UtilPct
			}
			if a.Use != b.Use {
				return a.Use > b.Use
			}
			if a.Layer != b.Layer {
				return a.Layer < b.Layer
			}
			if a.Y != b.Y {
				return a.Y < b.Y
			}
			return a.X < b.X
		})
		if len(hot) > topK {
			hot = hot[:topK]
		}
		snap.TopEdges = hot
	}
	return snap
}
