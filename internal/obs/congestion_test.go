package obs

import (
	"testing"

	"repro/internal/grid"
)

// snapGrid builds a 4x4 two-layer grid with capacity 2 everywhere.
func snapGrid() *grid.Grid {
	return grid.New(4, 4, grid.DefaultLayers(2, 2))
}

func TestSnapshotCongestionNilUsage(t *testing.T) {
	if snap := SnapshotCongestion(nil, 8); snap != nil {
		t.Fatalf("nil usage snapshot = %+v", snap)
	}
}

func TestSnapshotCongestionEmpty(t *testing.T) {
	u := grid.NewUsage(snapGrid())
	snap := SnapshotCongestion(u, 8)
	if len(snap.Layers) != 2 {
		t.Fatalf("layers = %d", len(snap.Layers))
	}
	for _, lc := range snap.Layers {
		if lc.Used != 0 || lc.Overflow != 0 {
			t.Errorf("layer %d not empty: %+v", lc.Layer, lc)
		}
		// Every edge idles in the 0% bucket.
		if lc.Hist[0] != lc.Edges {
			t.Errorf("layer %d hist = %v, edges = %d", lc.Layer, lc.Hist, lc.Edges)
		}
	}
	if len(snap.TopEdges) != 0 {
		t.Errorf("hotspots on empty usage: %+v", snap.TopEdges)
	}
}

func TestSnapshotCongestionBucketsAndHotspots(t *testing.T) {
	g := snapGrid()
	u := grid.NewUsage(g)
	// Layer 0 (horizontal): edge 0 half-full, edge 1 exactly full, edge 2
	// overflowed by 1.
	u.Add(0, 0, 1)
	u.Add(0, 1, 2)
	u.Add(0, 2, 3)
	snap := SnapshotCongestion(u, 2)

	l0 := snap.Layers[0]
	if l0.Used != 6 || l0.Overflow != 1 || l0.OverflowEdges != 1 {
		t.Errorf("layer 0 = %+v", l0)
	}
	if l0.Hist[5] != 1 { // 50%
		t.Errorf("50%% bucket = %d, hist %v", l0.Hist[5], l0.Hist)
	}
	if l0.Hist[HistBuckets-2] != 1 { // exactly full
		t.Errorf("full bucket = %d, hist %v", l0.Hist[HistBuckets-2], l0.Hist)
	}
	if l0.Hist[HistBuckets-1] != 1 { // overflowed
		t.Errorf("overflow bucket = %d, hist %v", l0.Hist[HistBuckets-1], l0.Hist)
	}

	// topK=2 keeps the overflowed and the full edge, in that order.
	if len(snap.TopEdges) != 2 {
		t.Fatalf("hotspots = %+v", snap.TopEdges)
	}
	if snap.TopEdges[0].UtilPct != 150 || snap.TopEdges[1].UtilPct != 100 {
		t.Errorf("hotspot ranking wrong: %+v", snap.TopEdges)
	}
}

func TestSnapshotZeroCapEdgeRanksOverflowed(t *testing.T) {
	g := snapGrid()
	g.SetCap(0, 0, 0, 0)
	u := grid.NewUsage(g)
	idx := g.EdgeIndex(0, 0, 0)
	u.Add(0, idx, 1) // a wire through a blocked edge
	snap := SnapshotCongestion(u, 1)
	if snap.Layers[0].Hist[HistBuckets-1] != 1 {
		t.Errorf("blocked edge not in overflow bucket: %v", snap.Layers[0].Hist)
	}
	if len(snap.TopEdges) != 1 || snap.TopEdges[0].UtilPct != 200 {
		t.Errorf("blocked edge hotspot = %+v", snap.TopEdges)
	}
}

// TestEdgeCapMatchesGridCap pins the dense capacity accessor against the
// cell-coordinate one it mirrors.
func TestEdgeCapMatchesGridCap(t *testing.T) {
	g := snapGrid()
	g.SetCap(1, 2, 1, 7)
	u := grid.NewUsage(g)
	for l := 0; l < 2; l++ {
		for idx := 0; idx < g.EdgeCount(l); idx++ {
			x, y := g.EdgeCell(l, idx)
			if got, want := u.EdgeCap(l, idx), g.Cap(l, x, y); got != want {
				t.Fatalf("EdgeCap(%d,%d) = %d, Cap(%d,%d,%d) = %d", l, idx, got, l, x, y, want)
			}
		}
	}
}
