package obs

import (
	"time"
)

// DefaultEventCap bounds the recorder's trace-event buffer. Hot loops emit
// one event per routing object / solver step, so a congested full-scale run
// can offer far more events than anyone wants to keep; past the cap events
// are counted (Report.EventsDropped) and discarded instead of growing the
// buffer without bound.
const DefaultEventCap = 16384

// Args annotates a trace event with small numeric facts (object index,
// candidate chosen, cost, ...). Values are float64 so integer indices and
// objective values share one map; JSON encoding sorts the keys, keeping
// serialized traces deterministic. The map is owned by the recorder after
// Emit — do not mutate it afterwards.
type Args map[string]float64

// Event is one fine-grained trace event: a named interval (or instant, when
// Dur is zero) inside a pipeline stage. Offsets are microseconds from the
// recorder's creation, the same clock as SpanRecord, so events nest under
// their stage spans by interval containment.
type Event struct {
	// Name identifies the event ("pd.commit", "hier.tile", ...).
	Name string `json:"name"`
	// Cat groups events for trace viewers ("build", "pd", "ilp", "hier").
	Cat string `json:"cat,omitempty"`
	// Start is the event's start offset from the recorder's creation, in
	// microseconds.
	Start int64 `json:"start_us"`
	// Dur is the event's duration in microseconds (0 = instant).
	Dur int64 `json:"dur_us"`
	// Args carries small numeric annotations.
	Args Args `json:"args,omitempty"`
}

// SetEventCap replaces the trace-event buffer cap (default DefaultEventCap).
// Call it before emitting; a cap below 1 is clamped to 1. Events already
// buffered are kept even if they exceed the new cap.
func (r *Recorder) SetEventCap(n int) {
	if r == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	r.evMu.Lock()
	r.eventCap = n
	r.evMu.Unlock()
}

// Emit appends a trace event to the bounded buffer. Past the cap the event
// is dropped and counted — emitters never block and never allocate beyond
// the cap. The event's Args map is owned by the recorder afterwards.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.evMu.Lock()
	if len(r.events) >= r.eventCap {
		r.evDropped++
		r.evMu.Unlock()
		return
	}
	r.events = append(r.events, e)
	r.evMu.Unlock()
}

// EmitAt emits an event measured by the caller: t0 is its wall-clock start,
// d its duration. The offset conversion uses the recorder's own epoch, so
// EmitAt composes with spans started anywhere in the pipeline.
func (r *Recorder) EmitAt(name, cat string, t0 time.Time, d time.Duration, args Args) {
	if r == nil {
		return
	}
	r.Emit(Event{
		Name:  name,
		Cat:   cat,
		Start: t0.Sub(r.start).Microseconds(),
		Dur:   d.Microseconds(),
		Args:  args,
	})
}

// EventsDropped returns how many events the cap discarded so far.
func (r *Recorder) EventsDropped() int64 {
	if r == nil {
		return 0
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	return r.evDropped
}
