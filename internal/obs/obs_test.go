package obs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderSafe is the nil-safety table: every Recorder/Span method
// must be a no-op (not a panic) on a nil receiver, because the entire
// pipeline calls them unconditionally.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	cases := []struct {
		name string
		call func()
	}{
		{"StartSpan", func() { r.StartSpan(StageBuild) }},
		{"Span.SetWorkers", func() { r.StartSpan(StagePD).SetWorkers(4) }},
		{"Span.End", func() { r.StartSpan(StagePD).End() }},
		{"Add", func() { r.Add("x", 1) }},
		{"SetLabel", func() { r.SetLabel("k", "v") }},
		{"Counter", func() {
			if got := r.Counter("x"); got != 0 {
				t.Errorf("nil Counter = %d", got)
			}
		}},
		{"Report", func() {
			rep := r.Report()
			if rep.Schema != SchemaVersion {
				t.Errorf("nil Report schema = %d", rep.Schema)
			}
			if len(rep.Spans) != 0 || len(rep.Counters) != 0 {
				t.Error("nil Report not empty")
			}
		}},
		{"WithRecorder", func() {
			ctx := WithRecorder(context.Background(), nil)
			if FromContext(ctx) != nil {
				t.Error("nil recorder attached")
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panicked: %v", p)
				}
			}()
			tc.call()
		})
	}
}

// TestDoWithoutRecorder pins the disabled path: no recorder means fn runs
// directly with the original context and its error passes through.
func TestDoWithoutRecorder(t *testing.T) {
	sentinel := errors.New("boom")
	ran := false
	err := Do(context.Background(), StageBuild, 2, func(ctx context.Context) error {
		ran = true
		if FromContext(ctx) != nil {
			t.Error("recorder appeared from nowhere")
		}
		return sentinel
	})
	if !ran || !errors.Is(err, sentinel) {
		t.Fatalf("ran=%v err=%v", ran, err)
	}
}

// TestDoRecordsSpan pins the enabled path: the stage appears as a finished
// span with its worker annotation, and the error still passes through.
func TestDoRecordsSpan(t *testing.T) {
	r := NewRecorder()
	ctx := WithRecorder(context.Background(), r)
	sentinel := errors.New("boom")
	err := Do(ctx, StagePD, 3, func(ctx context.Context) error {
		if FromContext(ctx) != r {
			t.Error("recorder not propagated into fn")
		}
		time.Sleep(time.Millisecond)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	rep := r.Report()
	if len(rep.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(rep.Spans))
	}
	sp := rep.Spans[0]
	if sp.Name != StagePD || sp.Workers != 3 {
		t.Errorf("span = %+v", sp)
	}
	if sp.DurUS <= 0 {
		t.Errorf("span duration %dus, want > 0", sp.DurUS)
	}
	if rep.SpanTotal(StagePD) != time.Duration(sp.DurUS)*time.Microsecond {
		t.Error("SpanTotal disagrees with the span record")
	}
}

// TestReportWhileActive pins live reporting: a Report taken while a span
// runs lists it under Active without corrupting the finished list.
func TestReportWhileActive(t *testing.T) {
	r := NewRecorder()
	sp := r.StartSpan(StageHier)
	sp.SetWorkers(2)
	rep := r.Report()
	if len(rep.Active) != 1 || rep.Active[0].Name != StageHier || rep.Active[0].Workers != 2 {
		t.Fatalf("active = %+v", rep.Active)
	}
	if len(rep.Spans) != 0 {
		t.Fatalf("premature finished span: %+v", rep.Spans)
	}
	sp.End()
	rep = r.Report()
	if len(rep.Active) != 0 || len(rep.Spans) != 1 {
		t.Fatalf("after End: active=%d spans=%d", len(rep.Active), len(rep.Spans))
	}
}

// TestConcurrentRecording hammers one recorder from many goroutines (run
// under -race): spans, counters, labels and mid-flight reports must all be
// safe together.
func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := r.StartSpan(StageILP)
				sp.SetWorkers(w)
				r.Add("ilp.bb.nodes", 1)
				r.SetLabel("solver", "ILP")
				_ = r.Report()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	rep := r.Report()
	if got := int64(workers * iters); rep.Counters["ilp.bb.nodes"] != got {
		t.Errorf("counter = %d, want %d", rep.Counters["ilp.bb.nodes"], got)
	}
	if len(rep.Spans) != workers*iters {
		t.Errorf("spans = %d, want %d", len(rep.Spans), workers*iters)
	}
	if len(rep.Active) != 0 {
		t.Errorf("leaked active spans: %+v", rep.Active)
	}
}

// TestReportJSONRoundTrip pins the wire format: a report marshals and
// unmarshals without loss.
func TestReportJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	sp := r.StartSpan(StageBuild)
	sp.SetWorkers(4)
	sp.End()
	r.Add("build.objects", 42)
	r.SetLabel("bench", "Industry3")
	rep := r.Report()

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion {
		t.Errorf("schema = %d", back.Schema)
	}
	if len(back.Spans) != 1 || back.Spans[0] != rep.Spans[0] {
		t.Errorf("spans round-trip: %+v vs %+v", back.Spans, rep.Spans)
	}
	if back.Counters["build.objects"] != 42 {
		t.Errorf("counters round-trip: %+v", back.Counters)
	}
	if back.Labels["bench"] != "Industry3" {
		t.Errorf("labels round-trip: %+v", back.Labels)
	}
}

// TestCollector pins the sweep aggregator: each Start hangs a fresh
// recorder on the context, finish collects the tagged report, and a nil
// collector is a pass-through.
func TestCollector(t *testing.T) {
	var nilC *Collector
	ctx, finish := nilC.Start(context.Background(), "b", "pd")
	if FromContext(ctx) != nil {
		t.Error("nil collector attached a recorder")
	}
	finish()
	if runs := nilC.Runs(); runs != nil {
		t.Errorf("nil collector runs = %v", runs)
	}

	c := NewCollector()
	for _, flow := range []string{"pd", "ilp"} {
		ctx, finish := c.Start(context.Background(), "Industry1", flow)
		rec := FromContext(ctx)
		if rec == nil {
			t.Fatal("no recorder attached")
		}
		rec.Add("x", 1)
		finish()
	}
	runs := c.Runs()
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[0].Flow != "pd" || runs[1].Flow != "ilp" || runs[0].Bench != "Industry1" {
		t.Errorf("run tags wrong: %+v", runs)
	}
	if runs[1].Report.Counters["x"] != 1 {
		t.Errorf("report not collected: %+v", runs[1].Report)
	}
	if runs[0].Report.Labels["flow"] != "pd" {
		t.Errorf("flow label missing: %+v", runs[0].Report.Labels)
	}
}
