// Package topo implements Streak's synergistic topology generation
// (§III-B): backbone construction per routing object, equivalent topology
// generation for every member bit via similarity-vector pin mapping
// (Algorithm 1), regularity-ratio evaluation between object topologies
// (Eq. 2), and expansion of 2-D topologies into 3-D layer-assigned
// candidates.
package topo

import (
	"slices"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/ident"
	"repro/internal/signal"
	"repro/internal/steiner"
)

// Options tunes topology generation.
type Options struct {
	// NumBackbones is how many distinct backbone topologies to generate
	// per object. Default 4.
	NumBackbones int
	// BendWeight is the per-bend cost during backbone construction.
	// Default 2.
	BendWeight int
	// ViaWeight is the per-via-level cost used in candidate costs.
	// Default 2.
	ViaWeight int
	// MaxLayerPairs bounds how many (H layer, V layer) combinations are
	// expanded per 2-D topology. Default 4.
	MaxLayerPairs int
}

// withDefaults fills zero fields with default values.
func (o Options) withDefaults() Options {
	if o.NumBackbones == 0 {
		o.NumBackbones = 4
	}
	if o.BendWeight == 0 {
		o.BendWeight = 2
	}
	if o.ViaWeight == 0 {
		o.ViaWeight = 2
	}
	if o.MaxLayerPairs == 0 {
		o.MaxLayerPairs = 6
	}
	return o
}

// Backbones generates backbone topologies for the object from its
// representative bit (§III-B1).
func Backbones(g *signal.Group, obj *ident.Object, opt Options) []geom.Tree {
	opt = opt.withDefaults()
	rep := obj.RepBit(g)
	return steiner.Backbones(rep.PinLocs(), opt.NumBackbones,
		steiner.Options{BendWeight: opt.BendWeight})
}

// Equivalent maps a backbone topology of the representative bit onto
// another member bit (Algorithm 1). Pins map through pinMap; bending points
// inherit their X from the mapped pin sharing their backbone X and their Y
// from the mapped pin sharing their backbone Y (Hanan alignment, Fig. 6).
// ok is false when the mapped tree fails to connect the bit's pins — the
// caller should then fall back to a fresh per-bit topology.
func Equivalent(backbone geom.Tree, rep, bit *signal.Bit, pinMap []int) (t geom.Tree, ok bool) {
	// LUT from each distinct backbone pin coordinate to the mapped bit
	// coordinate (lines 1-2 of Algorithm 1: in our grid the LUT can key on
	// coordinates directly because backbone nodes lie on the Hanan grid of
	// the representative pins).
	mapX := make(map[int]int)
	mapY := make(map[int]int)
	pinAt := make(map[geom.Point]int) // rep pin location -> rep pin index
	for i, p := range rep.Pins {
		if _, seen := mapX[p.Loc.X]; !seen {
			mapX[p.Loc.X] = bit.Pins[pinMap[i]].Loc.X
		}
		if _, seen := mapY[p.Loc.Y]; !seen {
			mapY[p.Loc.Y] = bit.Pins[pinMap[i]].Loc.Y
		}
		if _, seen := pinAt[p.Loc]; !seen {
			pinAt[p.Loc] = i
		}
	}
	mapPt := func(p geom.Point) (geom.Point, bool) {
		if i, isPin := pinAt[p]; isPin {
			return bit.Pins[pinMap[i]].Loc, true
		}
		x, okx := mapX[p.X]
		y, oky := mapY[p.Y]
		if !okx || !oky {
			return geom.Point{}, false
		}
		return geom.Pt(x, y), true
	}
	var out geom.Tree
	for _, s := range backbone.Canon().Segs {
		a, oka := mapPt(s.A)
		b, okb := mapPt(s.B)
		if !oka || !okb {
			return geom.Tree{}, false
		}
		if a.X != b.X && a.Y != b.Y {
			return geom.Tree{}, false // mapping broke axis alignment
		}
		if a != b {
			out.Append(geom.S(a, b))
		}
	}
	if !out.Connected(bit.PinLocs()) {
		return geom.Tree{}, false
	}
	return out, true
}

// ObjectTopology is one 2-D routing solution for an object: the backbone
// plus an equivalent (or fallback) topology per member bit.
type ObjectTopology struct {
	// Backbone is the representative topology.
	Backbone geom.Tree
	// BitTrees holds one topology per member of the object, in BitIdx
	// order.
	BitTrees []geom.Tree
	// Equivalent is false for bits where Algorithm 1 failed and a fresh
	// per-bit Steiner tree was used instead.
	Equivalent []bool
}

// WireLength returns the total wirelength over all member bits.
func (ot *ObjectTopology) WireLength() int {
	wl := 0
	for _, t := range ot.BitTrees {
		wl += t.WireLength()
	}
	return wl
}

// ObjectTopologies builds the 2-D candidate topologies for an object: one
// ObjectTopology per backbone, with equivalent topologies generated for
// every member bit, plus shifted "detour" variants of the best backbone
// (the wire-synthesis escape valve: a U-jog of the main trunk lets the
// solver trade a little wirelength for capacity, which is where Streak's
// WL overhead versus manual designs comes from in Table I).
func ObjectTopologies(g *signal.Group, obj *ident.Object, opt Options) []ObjectTopology {
	opt = opt.withDefaults()
	rep := obj.RepBit(g)
	var out []ObjectTopology
	for _, bb := range Backbones(g, obj, opt) {
		ot := ObjectTopology{Backbone: bb}
		for k, bi := range obj.BitIdx {
			bit := &g.Bits[bi]
			t, ok := Equivalent(bb, rep, bit, obj.PinMap[k])
			if !ok {
				t = steiner.Iterated1Steiner(bit.PinLocs(), steiner.Options{BendWeight: opt.BendWeight})
			}
			ot.BitTrees = append(ot.BitTrees, t)
			ot.Equivalent = append(ot.Equivalent, ok)
		}
		out = append(out, ot)
	}
	if len(out) > 0 {
		var pinSets [][]geom.Point
		for _, bi := range obj.BitIdx {
			pinSets = append(pinSets, g.Bits[bi].PinLocs())
		}
		for _, d := range []int{1, -1, 2, -2} {
			if sv, ok := shiftTopology(out[0], rep.PinLocs(), pinSets, d); ok {
				out = append(out, sv)
			}
		}
	}
	return out
}

// shiftTopology U-shifts the longest trunk segment of every bit tree (and
// the backbone) perpendicular by d G-cells, preserving connectivity: the
// segment a-b becomes a -> a+d -> b+d -> b. All bits shift identically so
// the object's regularity is preserved. Returns ok=false when any tree has
// no segment to shift.
func shiftTopology(ot ObjectTopology, repPins []geom.Point, pinSets [][]geom.Point, d int) (ObjectTopology, bool) {
	out := ObjectTopology{Equivalent: append([]bool(nil), ot.Equivalent...)}
	var ok bool
	if out.Backbone, ok = shiftTree(ot.Backbone, repPins, d); !ok {
		return ObjectTopology{}, false
	}
	for k, t := range ot.BitTrees {
		st, ok := shiftTree(t, pinSets[k], d)
		if !ok {
			return ObjectTopology{}, false
		}
		out.BitTrees = append(out.BitTrees, st)
	}
	return out, true
}

// shiftTree U-shifts the longest canonical segment of the tree. Segments
// are first split at pin locations so no pin can sit in the interior of
// the moved run — otherwise the shift would disconnect it.
func shiftTree(t geom.Tree, pins []geom.Point, d int) (geom.Tree, bool) {
	segs := splitSegsAt(t.Canon().Segs, pins)
	best := -1
	for i, s := range segs {
		if best == -1 || s.Len() > segs[best].Len() {
			best = i
		}
	}
	if best == -1 || segs[best].Len() < 2 {
		return geom.Tree{}, false
	}
	s := segs[best].Norm()
	var off geom.Point
	if s.Horizontal() {
		off = geom.Pt(0, d)
	} else {
		off = geom.Pt(d, 0)
	}
	a, b := s.A.Add(off), s.B.Add(off)
	var out geom.Tree
	for i, seg := range segs {
		if i != best {
			out.Append(seg)
		}
	}
	out.Append(geom.S(s.A, a), geom.S(a, b), geom.S(b, s.B))
	if !out.Connected(pins) {
		return geom.Tree{}, false
	}
	return out, true
}

// splitSegsAt cuts segments at any of the given points lying in their
// interiors.
func splitSegsAt(segs []geom.Seg, pts []geom.Point) []geom.Seg {
	var out []geom.Seg
	for _, s := range segs {
		n := s.Norm()
		cuts := []geom.Point{n.A, n.B}
		for _, p := range pts {
			if n.Contains(p) && p != n.A && p != n.B {
				cuts = append(cuts, p)
			}
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i].Less(cuts[j]) })
		for i := 0; i+1 < len(cuts); i++ {
			if cuts[i] != cuts[i+1] {
				out = append(out, geom.Seg{A: cuts[i], B: cuts[i+1]})
			}
		}
	}
	return out
}

// Candidate is a 3-D routing candidate for an object: a 2-D object
// topology with its horizontal trunks assigned to one H layer and vertical
// trunks to one V layer (§III-B2 keeps each direction on a single
// unidirectional layer for regularity).
type Candidate struct {
	// Topo is the underlying 2-D solution.
	Topo ObjectTopology
	// TopoIdx identifies the underlying 2-D topology within the object's
	// topology list, letting callers cache per-2-D-pair computations
	// across layer variants.
	TopoIdx int
	// HLayer and VLayer are the assigned layer indices.
	HLayer, VLayer int
	// WL is the total wirelength over member bits (G-cell units).
	WL int
	// Vias is the estimated via count: per bit, each bending point needs a
	// stack spanning |HLayer - VLayer| levels.
	Vias int
	// Cost is WL + ViaWeight * Vias, the c(i,j) of formulation (3).
	Cost int
	// Edges lists every 3-D edge the candidate occupies with its track
	// need — the u_el(i,j) of constraint (3c) — sorted by (Layer, Idx).
	// All edges of HLayer and VLayer form two contiguous runs.
	Edges []EdgeUse
	// Masks is the word-level occupancy view of Edges: per (layer, 64-edge
	// word) the bits of the occupied edge indices. A candidate fits a usage
	// state only if every mask ANDs to zero against the state's blocked
	// bitset (necessary, and also sufficient for edges needing one track).
	Masks []WordMask
	// Heavy lists the edges of Edges needing two or more tracks (several
	// member bits sharing an edge); these keep a scalar availability check
	// on top of the mask test. Nil for most candidates.
	Heavy []EdgeUse
}

// EdgeUse is one 3-D edge requirement of a candidate.
type EdgeUse struct {
	// Layer is the metal layer index.
	Layer int32
	// Idx is the dense edge index on the layer.
	Idx int32
	// N is the number of tracks the candidate needs on the edge.
	N int32
}

// WordMask is one 64-edge-wide slice of a candidate's occupancy: Bits has
// bit (idx & 63) set for every occupied edge idx with idx >> 6 == Word on
// the layer.
type WordMask struct {
	Layer int32
	Word  int32
	Bits  uint64
}

// EdgeKey identifies a 3-D grid edge.
type EdgeKey struct {
	// Layer is the metal layer index.
	Layer int
	// Idx is the dense edge index on that layer.
	Idx int
}

// Expand3D turns 2-D object topologies into 3-D candidates on the grid,
// enumerating (H layer, V layer) pairs in increasing via-distance order.
// Candidates whose segments leave the grid are dropped. Results are sorted
// by Cost.
//
// The per-candidate work is layer-independent up to the layer assignment:
// the 2-D edge footprint, wirelength and bend count of a topology are
// computed once (into pooled scratch, via the geom arena kernels) and every
// (H, V) pair then materializes its candidate as two flat edge-run copies —
// no per-pair tree walks, no per-edge map inserts.
func Expand3D(gr *grid.Grid, topos []ObjectTopology, opt Options) []Candidate {
	opt = opt.withDefaults()
	pairs := layerPairs(gr, opt.MaxLayerPairs)
	sc := expandPool.Get().(*expandScratch)
	ar := geom.GetArena()
	var out []Candidate
	for ti := range topos {
		ot := &topos[ti]
		if !sc.precompute2D(gr, ot, ar) {
			continue
		}
		for _, pr := range pairs {
			hl, vl := pr[0], pr[1]
			layerDist := iabs(hl - vl)
			if layerDist == 0 {
				layerDist = 1
			}
			c := Candidate{
				Topo:    *ot,
				TopoIdx: ti,
				HLayer:  hl,
				VLayer:  vl,
				WL:      sc.wl,
				Vias:    sc.bends * layerDist,
			}
			c.Cost = c.WL + opt.ViaWeight*c.Vias
			sc.assemble(&c)
			out = append(out, c)
		}
	}
	geom.PutArena(ar)
	expandPool.Put(sc)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// expandScratch is the reusable state behind Expand3D: dense per-direction
// 2-D edge counters (zeroed via the touched lists after every topology) and
// the layer-independent footprint of the topology under expansion.
type expandScratch struct {
	hCount, vCount     []int32
	hTouched, vTouched []int32
	hUse, vUse         []EdgeUse // Layer left 0; filled per pair by assemble
	masks              []WordMask
	heavy              int
	wl, bends          int
}

var expandPool = sync.Pool{New: func() any { return new(expandScratch) }}

// precompute2D accumulates the layer-independent footprint of ot: per-
// direction sorted edge runs (2-D dense indices — identical on every layer
// of the direction), total wirelength and bend count. It reports false,
// leaving the scratch clean, when any segment leaves the grid — which
// disqualifies the topology for every layer pair.
func (sc *expandScratch) precompute2D(gr *grid.Grid, ot *ObjectTopology, ar *geom.Arena) bool {
	hEdges, vEdges := (gr.W-1)*gr.H, gr.W*(gr.H-1)
	if len(sc.hCount) < hEdges {
		sc.hCount = make([]int32, hEdges)
	}
	if len(sc.vCount) < vEdges {
		sc.vCount = make([]int32, vEdges)
	}
	sc.hTouched, sc.vTouched = sc.hTouched[:0], sc.vTouched[:0]
	sc.wl, sc.bends, sc.heavy = 0, 0, 0
	ok := true
	for _, t := range ot.BitTrees {
		if !ok {
			break
		}
		for _, s := range ar.Canon(t.Segs) {
			// Canonical segments are normalized and non-degenerate, so
			// direction alone picks the dense 2-D index space (EdgeIndex is
			// the same formula on every layer of a direction).
			if s.Horizontal() {
				if s.A.X < 0 || s.B.X > gr.W-1 || s.A.Y < 0 || s.A.Y > gr.H-1 {
					ok = false
					break
				}
				base := s.A.Y * (gr.W - 1)
				for x := s.A.X; x < s.B.X; x++ {
					idx := int32(base + x)
					if sc.hCount[idx] == 0 {
						sc.hTouched = append(sc.hTouched, idx)
					}
					sc.hCount[idx]++
				}
			} else {
				if s.A.Y < 0 || s.B.Y > gr.H-1 || s.A.X < 0 || s.A.X > gr.W-1 {
					ok = false
					break
				}
				for y := s.A.Y; y < s.B.Y; y++ {
					idx := int32(y*gr.W + s.A.X)
					if sc.vCount[idx] == 0 {
						sc.vTouched = append(sc.vTouched, idx)
					}
					sc.vCount[idx]++
				}
			}
			sc.wl += s.Len()
		}
		sc.bends += ar.Bends(t.Segs)
	}
	if !ok {
		for _, idx := range sc.hTouched {
			sc.hCount[idx] = 0
		}
		for _, idx := range sc.vTouched {
			sc.vCount[idx] = 0
		}
		return false
	}
	slices.Sort(sc.hTouched)
	slices.Sort(sc.vTouched)
	sc.hUse, sc.vUse = sc.hUse[:0], sc.vUse[:0]
	for _, idx := range sc.hTouched {
		n := sc.hCount[idx]
		sc.hUse = append(sc.hUse, EdgeUse{Idx: idx, N: n})
		sc.hCount[idx] = 0
		if n >= 2 {
			sc.heavy++
		}
	}
	for _, idx := range sc.vTouched {
		n := sc.vCount[idx]
		sc.vUse = append(sc.vUse, EdgeUse{Idx: idx, N: n})
		sc.vCount[idx] = 0
		if n >= 2 {
			sc.heavy++
		}
	}
	return true
}

// assemble materializes the precomputed footprint onto the candidate's
// layer pair: Edges sorted by (Layer, Idx), word masks, heavy list.
func (sc *expandScratch) assemble(c *Candidate) {
	hl, vl := int32(c.HLayer), int32(c.VLayer)
	c.Edges = make([]EdgeUse, 0, len(sc.hUse)+len(sc.vUse))
	appendRun := func(l int32, use []EdgeUse) {
		for _, e := range use {
			c.Edges = append(c.Edges, EdgeUse{Layer: l, Idx: e.Idx, N: e.N})
		}
	}
	if hl < vl {
		appendRun(hl, sc.hUse)
		appendRun(vl, sc.vUse)
	} else {
		appendRun(vl, sc.vUse)
		appendRun(hl, sc.hUse)
	}
	masks := sc.masks[:0]
	for _, e := range c.Edges {
		w := e.Idx >> 6
		if n := len(masks); n > 0 && masks[n-1].Layer == e.Layer && masks[n-1].Word == w {
			masks[n-1].Bits |= 1 << (e.Idx & 63)
		} else {
			masks = append(masks, WordMask{Layer: e.Layer, Word: w, Bits: 1 << (e.Idx & 63)})
		}
	}
	sc.masks = masks
	c.Masks = make([]WordMask, len(masks))
	copy(c.Masks, masks)
	if sc.heavy > 0 {
		c.Heavy = make([]EdgeUse, 0, sc.heavy)
		for _, e := range c.Edges {
			if e.N >= 2 {
				c.Heavy = append(c.Heavy, e)
			}
		}
	}
}

// layerPairs lists (hLayer, vLayer) combinations sorted by layer distance
// (preferring neighboring layers to save vias, §III-B2), capped at maxPairs.
func layerPairs(gr *grid.Grid, maxPairs int) [][2]int {
	var pairs [][2]int
	for _, h := range gr.HLayers() {
		for _, v := range gr.VLayers() {
			pairs = append(pairs, [2]int{h, v})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		di := iabs(pairs[i][0] - pairs[i][1])
		dj := iabs(pairs[j][0] - pairs[j][1])
		if di != dj {
			return di < dj
		}
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	if len(pairs) > maxPairs {
		pairs = pairs[:maxPairs]
	}
	return pairs
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
