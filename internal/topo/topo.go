// Package topo implements Streak's synergistic topology generation
// (§III-B): backbone construction per routing object, equivalent topology
// generation for every member bit via similarity-vector pin mapping
// (Algorithm 1), regularity-ratio evaluation between object topologies
// (Eq. 2), and expansion of 2-D topologies into 3-D layer-assigned
// candidates.
package topo

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/ident"
	"repro/internal/signal"
	"repro/internal/steiner"
)

// Options tunes topology generation.
type Options struct {
	// NumBackbones is how many distinct backbone topologies to generate
	// per object. Default 4.
	NumBackbones int
	// BendWeight is the per-bend cost during backbone construction.
	// Default 2.
	BendWeight int
	// ViaWeight is the per-via-level cost used in candidate costs.
	// Default 2.
	ViaWeight int
	// MaxLayerPairs bounds how many (H layer, V layer) combinations are
	// expanded per 2-D topology. Default 4.
	MaxLayerPairs int
}

// withDefaults fills zero fields with default values.
func (o Options) withDefaults() Options {
	if o.NumBackbones == 0 {
		o.NumBackbones = 4
	}
	if o.BendWeight == 0 {
		o.BendWeight = 2
	}
	if o.ViaWeight == 0 {
		o.ViaWeight = 2
	}
	if o.MaxLayerPairs == 0 {
		o.MaxLayerPairs = 6
	}
	return o
}

// Backbones generates backbone topologies for the object from its
// representative bit (§III-B1).
func Backbones(g *signal.Group, obj *ident.Object, opt Options) []geom.Tree {
	opt = opt.withDefaults()
	rep := obj.RepBit(g)
	return steiner.Backbones(rep.PinLocs(), opt.NumBackbones,
		steiner.Options{BendWeight: opt.BendWeight})
}

// Equivalent maps a backbone topology of the representative bit onto
// another member bit (Algorithm 1). Pins map through pinMap; bending points
// inherit their X from the mapped pin sharing their backbone X and their Y
// from the mapped pin sharing their backbone Y (Hanan alignment, Fig. 6).
// ok is false when the mapped tree fails to connect the bit's pins — the
// caller should then fall back to a fresh per-bit topology.
func Equivalent(backbone geom.Tree, rep, bit *signal.Bit, pinMap []int) (t geom.Tree, ok bool) {
	// LUT from each distinct backbone pin coordinate to the mapped bit
	// coordinate (lines 1-2 of Algorithm 1: in our grid the LUT can key on
	// coordinates directly because backbone nodes lie on the Hanan grid of
	// the representative pins).
	mapX := make(map[int]int)
	mapY := make(map[int]int)
	pinAt := make(map[geom.Point]int) // rep pin location -> rep pin index
	for i, p := range rep.Pins {
		if _, seen := mapX[p.Loc.X]; !seen {
			mapX[p.Loc.X] = bit.Pins[pinMap[i]].Loc.X
		}
		if _, seen := mapY[p.Loc.Y]; !seen {
			mapY[p.Loc.Y] = bit.Pins[pinMap[i]].Loc.Y
		}
		if _, seen := pinAt[p.Loc]; !seen {
			pinAt[p.Loc] = i
		}
	}
	mapPt := func(p geom.Point) (geom.Point, bool) {
		if i, isPin := pinAt[p]; isPin {
			return bit.Pins[pinMap[i]].Loc, true
		}
		x, okx := mapX[p.X]
		y, oky := mapY[p.Y]
		if !okx || !oky {
			return geom.Point{}, false
		}
		return geom.Pt(x, y), true
	}
	var out geom.Tree
	for _, s := range backbone.Canon().Segs {
		a, oka := mapPt(s.A)
		b, okb := mapPt(s.B)
		if !oka || !okb {
			return geom.Tree{}, false
		}
		if a.X != b.X && a.Y != b.Y {
			return geom.Tree{}, false // mapping broke axis alignment
		}
		if a != b {
			out.Append(geom.S(a, b))
		}
	}
	if !out.Connected(bit.PinLocs()) {
		return geom.Tree{}, false
	}
	return out, true
}

// ObjectTopology is one 2-D routing solution for an object: the backbone
// plus an equivalent (or fallback) topology per member bit.
type ObjectTopology struct {
	// Backbone is the representative topology.
	Backbone geom.Tree
	// BitTrees holds one topology per member of the object, in BitIdx
	// order.
	BitTrees []geom.Tree
	// Equivalent is false for bits where Algorithm 1 failed and a fresh
	// per-bit Steiner tree was used instead.
	Equivalent []bool
}

// WireLength returns the total wirelength over all member bits.
func (ot *ObjectTopology) WireLength() int {
	wl := 0
	for _, t := range ot.BitTrees {
		wl += t.WireLength()
	}
	return wl
}

// ObjectTopologies builds the 2-D candidate topologies for an object: one
// ObjectTopology per backbone, with equivalent topologies generated for
// every member bit, plus shifted "detour" variants of the best backbone
// (the wire-synthesis escape valve: a U-jog of the main trunk lets the
// solver trade a little wirelength for capacity, which is where Streak's
// WL overhead versus manual designs comes from in Table I).
func ObjectTopologies(g *signal.Group, obj *ident.Object, opt Options) []ObjectTopology {
	opt = opt.withDefaults()
	rep := obj.RepBit(g)
	var out []ObjectTopology
	for _, bb := range Backbones(g, obj, opt) {
		ot := ObjectTopology{Backbone: bb}
		for k, bi := range obj.BitIdx {
			bit := &g.Bits[bi]
			t, ok := Equivalent(bb, rep, bit, obj.PinMap[k])
			if !ok {
				t = steiner.Iterated1Steiner(bit.PinLocs(), steiner.Options{BendWeight: opt.BendWeight})
			}
			ot.BitTrees = append(ot.BitTrees, t)
			ot.Equivalent = append(ot.Equivalent, ok)
		}
		out = append(out, ot)
	}
	if len(out) > 0 {
		var pinSets [][]geom.Point
		for _, bi := range obj.BitIdx {
			pinSets = append(pinSets, g.Bits[bi].PinLocs())
		}
		for _, d := range []int{1, -1, 2, -2} {
			if sv, ok := shiftTopology(out[0], rep.PinLocs(), pinSets, d); ok {
				out = append(out, sv)
			}
		}
	}
	return out
}

// shiftTopology U-shifts the longest trunk segment of every bit tree (and
// the backbone) perpendicular by d G-cells, preserving connectivity: the
// segment a-b becomes a -> a+d -> b+d -> b. All bits shift identically so
// the object's regularity is preserved. Returns ok=false when any tree has
// no segment to shift.
func shiftTopology(ot ObjectTopology, repPins []geom.Point, pinSets [][]geom.Point, d int) (ObjectTopology, bool) {
	out := ObjectTopology{Equivalent: append([]bool(nil), ot.Equivalent...)}
	var ok bool
	if out.Backbone, ok = shiftTree(ot.Backbone, repPins, d); !ok {
		return ObjectTopology{}, false
	}
	for k, t := range ot.BitTrees {
		st, ok := shiftTree(t, pinSets[k], d)
		if !ok {
			return ObjectTopology{}, false
		}
		out.BitTrees = append(out.BitTrees, st)
	}
	return out, true
}

// shiftTree U-shifts the longest canonical segment of the tree. Segments
// are first split at pin locations so no pin can sit in the interior of
// the moved run — otherwise the shift would disconnect it.
func shiftTree(t geom.Tree, pins []geom.Point, d int) (geom.Tree, bool) {
	segs := splitSegsAt(t.Canon().Segs, pins)
	best := -1
	for i, s := range segs {
		if best == -1 || s.Len() > segs[best].Len() {
			best = i
		}
	}
	if best == -1 || segs[best].Len() < 2 {
		return geom.Tree{}, false
	}
	s := segs[best].Norm()
	var off geom.Point
	if s.Horizontal() {
		off = geom.Pt(0, d)
	} else {
		off = geom.Pt(d, 0)
	}
	a, b := s.A.Add(off), s.B.Add(off)
	var out geom.Tree
	for i, seg := range segs {
		if i != best {
			out.Append(seg)
		}
	}
	out.Append(geom.S(s.A, a), geom.S(a, b), geom.S(b, s.B))
	if !out.Connected(pins) {
		return geom.Tree{}, false
	}
	return out, true
}

// splitSegsAt cuts segments at any of the given points lying in their
// interiors.
func splitSegsAt(segs []geom.Seg, pts []geom.Point) []geom.Seg {
	var out []geom.Seg
	for _, s := range segs {
		n := s.Norm()
		cuts := []geom.Point{n.A, n.B}
		for _, p := range pts {
			if n.Contains(p) && p != n.A && p != n.B {
				cuts = append(cuts, p)
			}
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i].Less(cuts[j]) })
		for i := 0; i+1 < len(cuts); i++ {
			if cuts[i] != cuts[i+1] {
				out = append(out, geom.Seg{A: cuts[i], B: cuts[i+1]})
			}
		}
	}
	return out
}

// Candidate is a 3-D routing candidate for an object: a 2-D object
// topology with its horizontal trunks assigned to one H layer and vertical
// trunks to one V layer (§III-B2 keeps each direction on a single
// unidirectional layer for regularity).
type Candidate struct {
	// Topo is the underlying 2-D solution.
	Topo ObjectTopology
	// TopoIdx identifies the underlying 2-D topology within the object's
	// topology list, letting callers cache per-2-D-pair computations
	// across layer variants.
	TopoIdx int
	// HLayer and VLayer are the assigned layer indices.
	HLayer, VLayer int
	// WL is the total wirelength over member bits (G-cell units).
	WL int
	// Vias is the estimated via count: per bit, each bending point needs a
	// stack spanning |HLayer - VLayer| levels.
	Vias int
	// Cost is WL + ViaWeight * Vias, the c(i,j) of formulation (3).
	Cost int
	// Usage maps 3-D edges to the number of tracks this candidate needs,
	// the u_el(i,j) of constraint (3c).
	Usage map[EdgeKey]int
}

// EdgeKey identifies a 3-D grid edge.
type EdgeKey struct {
	// Layer is the metal layer index.
	Layer int
	// Idx is the dense edge index on that layer.
	Idx int
}

// Expand3D turns 2-D object topologies into 3-D candidates on the grid,
// enumerating (H layer, V layer) pairs in increasing via-distance order.
// Candidates whose segments leave the grid are dropped. Results are sorted
// by Cost.
func Expand3D(gr *grid.Grid, topos []ObjectTopology, opt Options) []Candidate {
	opt = opt.withDefaults()
	pairs := layerPairs(gr, opt.MaxLayerPairs)
	var out []Candidate
	for ti, ot := range topos {
		for _, pr := range pairs {
			c, ok := buildCandidate(gr, ot, pr[0], pr[1], opt)
			if ok {
				c.TopoIdx = ti
				out = append(out, c)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// layerPairs lists (hLayer, vLayer) combinations sorted by layer distance
// (preferring neighboring layers to save vias, §III-B2), capped at maxPairs.
func layerPairs(gr *grid.Grid, maxPairs int) [][2]int {
	var pairs [][2]int
	for _, h := range gr.HLayers() {
		for _, v := range gr.VLayers() {
			pairs = append(pairs, [2]int{h, v})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		di := iabs(pairs[i][0] - pairs[i][1])
		dj := iabs(pairs[j][0] - pairs[j][1])
		if di != dj {
			return di < dj
		}
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	if len(pairs) > maxPairs {
		pairs = pairs[:maxPairs]
	}
	return pairs
}

func buildCandidate(gr *grid.Grid, ot ObjectTopology, hl, vl int, opt Options) (Candidate, bool) {
	c := Candidate{Topo: ot, HLayer: hl, VLayer: vl, Usage: make(map[EdgeKey]int)}
	layerDist := iabs(hl - vl)
	if layerDist == 0 {
		layerDist = 1
	}
	for _, t := range ot.BitTrees {
		for _, s := range t.Canon().Segs {
			l := hl
			if s.Vertical() && s.Len() > 0 {
				l = vl
			}
			if !gr.SegFits(l, s) {
				return Candidate{}, false
			}
			gr.SegEdges(l, s, func(idx int) {
				c.Usage[EdgeKey{l, idx}]++
			})
		}
		c.WL += t.WireLength()
		c.Vias += t.Bends() * layerDist
	}
	c.Cost = c.WL + opt.ViaWeight*c.Vias
	return c, true
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
