package topo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/ident"
	"repro/internal/signal"
)

// TestEquivalentTranslationProperty: for any base bit shape and any
// translation offsets, Algorithm 1 must produce an equivalent topology for
// every translated copy, with identical wirelength and bends.
func TestEquivalentTranslationProperty(t *testing.T) {
	f := func(seed int64, nBits uint8, dx, dy int8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nBits)%4
		// Random base bit with 2-4 pins.
		np := 2 + r.Intn(3)
		base := signal.Bit{Driver: 0}
		for k := 0; k < np; k++ {
			base.Pins = append(base.Pins, signal.Pin{Loc: geom.Pt(100+r.Intn(12), 100+r.Intn(12))})
		}
		// Skip degenerate duplicate-pin shapes: their SV ties make the
		// cross-bit pin mapping ambiguous by design.
		locs := geom.DedupPoints(base.PinLocs())
		if len(locs) != np {
			return true
		}
		g := signal.Group{}
		step := geom.Pt(int(dx)%3, 1+int(dy)%3)
		for b := 0; b < n; b++ {
			bit := signal.Bit{Driver: 0}
			off := geom.Pt(step.X*b, step.Y*b)
			for _, p := range base.Pins {
				bit.Pins = append(bit.Pins, signal.Pin{Loc: p.Loc.Add(off)})
			}
			g.Bits = append(g.Bits, bit)
		}
		objs := ident.Partition(0, &g)
		if len(objs) != 1 {
			return true // collinear pins can change SVs under translation
		}
		obj := objs[0]
		rep := obj.RepBit(&g)
		bbs := Backbones(&g, &obj, Options{})
		if len(bbs) == 0 {
			return false
		}
		for k, bi := range obj.BitIdx {
			eq, ok := Equivalent(bbs[0], rep, &g.Bits[bi], obj.PinMap[k])
			if !ok {
				return false
			}
			if !eq.Connected(g.Bits[bi].PinLocs()) {
				return false
			}
			if eq.WireLength() != bbs[0].WireLength() || eq.Bends() != bbs[0].Bends() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRatioSelfIdentityProperty: any topology compared with itself has
// ratio exactly 1, and PairIrregularity of ratio 1 on adjacent layers is 0.
func TestRatioSelfIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		np := 2 + r.Intn(4)
		b := signal.Bit{Driver: 0}
		for k := 0; k < np; k++ {
			b.Pins = append(b.Pins, signal.Pin{Loc: geom.Pt(r.Intn(15), r.Intn(15))})
		}
		var tr geom.Tree
		locs := b.PinLocs()
		for i := 1; i < len(locs); i++ {
			tr.Append(geom.LShape(locs[0], locs[i])...)
		}
		if len(tr.Segs) == 0 {
			return true
		}
		if Ratio(tr, &b, tr, &b) != 1 {
			return false
		}
		return PairIrregularity(1, 20, 2000, 1, 4) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestShiftTreePreservesConnectivityProperty: U-shifting the longest trunk
// never disconnects the tree and always adds exactly 2|d| wirelength when
// the shifted run does not overlap remaining segments.
func TestShiftTreePreservesConnectivityProperty(t *testing.T) {
	f := func(seed int64, dRaw int8) bool {
		r := rand.New(rand.NewSource(seed))
		d := 1 + int(dRaw)%3
		if d < 0 {
			d = -d
		}
		if d == 0 {
			d = 1
		}
		var pins []geom.Point
		np := 2 + r.Intn(3)
		for k := 0; k < np; k++ {
			pins = append(pins, geom.Pt(r.Intn(10), r.Intn(10)))
		}
		pins = geom.DedupPoints(pins)
		if len(pins) < 2 {
			return true
		}
		var tr geom.Tree
		for i := 1; i < len(pins); i++ {
			tr.Append(geom.LShape(pins[i-1], pins[i])...)
		}
		shifted, ok := shiftTree(tr, pins, d)
		if !ok {
			return true // nothing long enough to shift
		}
		if !shifted.Connected(pins) {
			return false
		}
		// Union effects can absorb the jog — or even more, when the
		// shifted run lands on an existing parallel segment — so the only
		// upper bound is the two jogs.
		added := shifted.WireLength() - tr.WireLength()
		return added <= 2*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
