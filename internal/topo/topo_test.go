package topo

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/ident"
	"repro/internal/signal"
)

// busGroup builds n parallel two-pin bits from x0 to x1 at consecutive rows.
func busGroup(n, x0, x1, y0 int) signal.Group {
	g := signal.Group{Name: "bus"}
	for i := 0; i < n; i++ {
		g.Bits = append(g.Bits, signal.Bit{
			Driver: 0,
			Pins:   []signal.Pin{{Loc: geom.Pt(x0, y0+i)}, {Loc: geom.Pt(x1, y0+i)}},
		})
	}
	return g
}

// multipinGroup builds n translated copies of a 3-pin bit.
func multipinGroup(n int, base geom.Point) signal.Group {
	g := signal.Group{Name: "mp"}
	for i := 0; i < n; i++ {
		o := base.Add(geom.Pt(0, i))
		g.Bits = append(g.Bits, signal.Bit{
			Driver: 0,
			Pins: []signal.Pin{
				{Loc: o},
				{Loc: o.Add(geom.Pt(6, 0))},
				{Loc: o.Add(geom.Pt(6, 8))},
			},
		})
	}
	return g
}

func TestEquivalentTranslatedBits(t *testing.T) {
	g := multipinGroup(4, geom.Pt(2, 2))
	objs := ident.Partition(0, &g)
	if len(objs) != 1 {
		t.Fatalf("objects = %d, want 1", len(objs))
	}
	obj := objs[0]
	rep := obj.RepBit(&g)
	bbs := Backbones(&g, &obj, Options{})
	if len(bbs) == 0 {
		t.Fatal("no backbones")
	}
	for k, bi := range obj.BitIdx {
		bit := &g.Bits[bi]
		eq, ok := Equivalent(bbs[0], rep, bit, obj.PinMap[k])
		if !ok {
			t.Fatalf("bit %d: Equivalent failed", bi)
		}
		if !eq.Connected(bit.PinLocs()) {
			t.Fatalf("bit %d: equivalent topology disconnected", bi)
		}
		if eq.WireLength() != bbs[0].WireLength() {
			t.Errorf("bit %d: WL %d != backbone WL %d (translated bits)", bi, eq.WireLength(), bbs[0].WireLength())
		}
		if eq.Bends() != bbs[0].Bends() {
			t.Errorf("bit %d: bends %d != backbone bends %d", bi, eq.Bends(), bbs[0].Bends())
		}
	}
}

func TestEquivalentIsIdentityOnRep(t *testing.T) {
	g := multipinGroup(3, geom.Pt(0, 0))
	obj := ident.Partition(0, &g)[0]
	rep := obj.RepBit(&g)
	bbs := Backbones(&g, &obj, Options{})
	eq, ok := Equivalent(bbs[0], rep, rep, obj.PinMap[obj.Rep])
	if !ok {
		t.Fatal("Equivalent failed on representative itself")
	}
	if eq.String() != bbs[0].String() {
		t.Errorf("identity mapping changed topology:\n%s\n%s", eq, bbs[0])
	}
}

func TestEquivalentStretchedBits(t *testing.T) {
	// Bits with same SVs but different pin spacing: equivalence must still
	// hold (shape preserved, lengths differ).
	g := signal.Group{Bits: []signal.Bit{
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(4, 0)}, {Loc: geom.Pt(4, 5)}}},
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 1)}, {Loc: geom.Pt(7, 1)}, {Loc: geom.Pt(7, 9)}}},
	}}
	objs := ident.Partition(0, &g)
	if len(objs) != 1 {
		t.Fatalf("objects = %d, want 1", len(objs))
	}
	obj := objs[0]
	rep := obj.RepBit(&g)
	bbs := Backbones(&g, &obj, Options{})
	for k, bi := range obj.BitIdx {
		bit := &g.Bits[bi]
		eq, ok := Equivalent(bbs[0], rep, bit, obj.PinMap[k])
		if !ok {
			t.Fatalf("bit %d: Equivalent failed", bi)
		}
		if !eq.Connected(bit.PinLocs()) {
			t.Fatalf("bit %d: disconnected", bi)
		}
		if r := Ratio(bbs[0], rep, eq, bit); r != 1 {
			t.Errorf("bit %d: ratio = %v, want 1", bi, r)
		}
	}
}

func TestObjectTopologies(t *testing.T) {
	g := busGroup(5, 0, 10, 0)
	obj := ident.Partition(0, &g)[0]
	ots := ObjectTopologies(&g, &obj, Options{})
	if len(ots) == 0 {
		t.Fatal("no object topologies")
	}
	for i, ot := range ots {
		if len(ot.BitTrees) != 5 {
			t.Fatalf("topology %d: %d bit trees", i, len(ot.BitTrees))
		}
		for k, bi := range obj.BitIdx {
			if !ot.BitTrees[k].Connected(g.Bits[bi].PinLocs()) {
				t.Errorf("topology %d bit %d disconnected", i, bi)
			}
		}
		// Base topologies are minimal (50); shifted detour variants add
		// exactly 2|d| per bit.
		switch wl := ot.WireLength(); wl {
		case 50, 60, 70:
		default:
			t.Errorf("topology %d WL = %d, want 50/60/70", i, wl)
		}
	}
	// The first topology is the minimal one.
	if ots[0].WireLength() != 50 {
		t.Errorf("base topology WL = %d, want 50", ots[0].WireLength())
	}
	// Detour variants are present (the wire-synthesis escape valve).
	found := false
	for _, ot := range ots {
		if ot.WireLength() > 50 {
			found = true
		}
	}
	if !found {
		t.Error("no shifted detour topologies generated")
	}
}

func TestRatioIdenticalStyles(t *testing.T) {
	// Two horizontal two-pin bits: ratio 1 (paper's Fig. 3(a) argument).
	b1 := signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(8, 0)}}}
	b2 := signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 5)}, {Loc: geom.Pt(8, 5)}}}
	t1 := geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(8, 0)))
	t2 := geom.NewTree(geom.S(geom.Pt(0, 5), geom.Pt(8, 5)))
	if r := Ratio(t1, &b1, t2, &b2); r != 1 {
		t.Errorf("ratio = %v, want 1", r)
	}
}

func TestRatioPaperBendExample(t *testing.T) {
	// Fig. 3(a): straight object vs object with one bend; the bend point
	// maps to the sink, ratio still 100%.
	b1 := signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(8, 0)}}}
	t1 := geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(8, 0)))
	b2 := signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 4)}, {Loc: geom.Pt(8, 2)}}}
	t2 := geom.NewTree(geom.S(geom.Pt(0, 4), geom.Pt(8, 4)), geom.S(geom.Pt(8, 4), geom.Pt(8, 2)))
	r := Ratio(t1, &b1, t2, &b2)
	if r != 1 {
		t.Errorf("ratio = %v, want 1 (min RC count is 1 and the horizontal trunk maps)", r)
	}
}

func TestRatioDisjointStyles(t *testing.T) {
	// Horizontal vs vertical two-pin: nothing maps.
	b1 := signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(8, 0)}}}
	t1 := geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(8, 0)))
	b2 := signal.Bit{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(0, 8)}}}
	t2 := geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(0, 8)))
	if r := Ratio(t1, &b1, t2, &b2); r != 0 {
		t.Errorf("ratio = %v, want 0", r)
	}
}

func TestRatioSymmetricAndBounded(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		mk := func() (geom.Tree, signal.Bit) {
			n := 2 + r.Intn(3)
			b := signal.Bit{Driver: 0}
			for i := 0; i < n; i++ {
				b.Pins = append(b.Pins, signal.Pin{Loc: geom.Pt(r.Intn(12), r.Intn(12))})
			}
			var tr geom.Tree
			locs := b.PinLocs()
			for i := 1; i < len(locs); i++ {
				tr.Append(geom.LShape(locs[i-1], locs[i])...)
			}
			return tr, b
		}
		t1, b1 := mk()
		t2, b2 := mk()
		r12 := Ratio(t1, &b1, t2, &b2)
		r21 := Ratio(t2, &b2, t1, &b1)
		if r12 != r21 {
			t.Fatalf("trial %d: ratio asymmetric %v vs %v", trial, r12, r21)
		}
		if r12 < 0 || r12 > 1 {
			t.Fatalf("trial %d: ratio %v out of [0,1]", trial, r12)
		}
		if got := Ratio(t1, &b1, t1, &b1); got != 1 {
			t.Fatalf("trial %d: self ratio = %v", trial, got)
		}
	}
}

func TestRCs(t *testing.T) {
	// Z-shape with a pin in the middle of the first leg.
	tr := geom.NewTree(
		geom.S(geom.Pt(0, 0), geom.Pt(4, 0)),
		geom.S(geom.Pt(4, 0), geom.Pt(4, 3)),
	)
	rcs := RCs(tr, []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(4, 3)})
	if len(rcs) != 3 {
		t.Fatalf("RCs = %d, want 3 (split at interior pin)", len(rcs))
	}
}

func TestPairIrregularity(t *testing.T) {
	if got := PairIrregularity(1, 10, 1000, 1, 5); got != 0 {
		t.Errorf("perfect ratio cost = %v, want 0", got)
	}
	if got := PairIrregularity(0.5, 10, 1000, 1, 5); got != 10 {
		t.Errorf("half ratio cost = %v, want 10", got)
	}
	if got := PairIrregularity(0, 10, 1000, 1, 5); got != 1005 {
		t.Errorf("no-share cost = %v, want 1005", got)
	}
	if got := PairIrregularity(1, 10, 1000, 3, 5); got != 10 {
		t.Errorf("layer-distance cost = %v, want 10", got)
	}
}

func TestExpand3D(t *testing.T) {
	gr := grid.New(16, 16, grid.DefaultLayers(4, 8))
	g := busGroup(3, 1, 9, 1)
	obj := ident.Partition(0, &g)[0]
	ots := ObjectTopologies(&g, &obj, Options{})
	cands := Expand3D(gr, ots, Options{})
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	prev := -1
	base := 0
	for i, c := range cands {
		if gr.Layers[c.HLayer].Dir != grid.Horizontal || gr.Layers[c.VLayer].Dir != grid.Vertical {
			t.Fatalf("candidate %d layer directions wrong", i)
		}
		if c.Cost < prev {
			t.Fatalf("candidates not sorted by cost")
		}
		prev = c.Cost
		total := 0
		for _, e := range c.Edges {
			total += int(e.N)
		}
		if total != c.WL {
			t.Errorf("candidate %d usage total %d != WL %d", i, total, c.WL)
		}
		if c.WL != 24 {
			continue // shifted detour variant
		}
		base++
		// Pure horizontal bus: all usage on the H layer, 8 edges per bit.
		for _, e := range c.Edges {
			if int(e.Layer) != c.HLayer {
				t.Errorf("candidate %d uses layer %d", i, e.Layer)
			}
		}
	}
	if base == 0 {
		t.Fatal("no minimal-WL candidates")
	}
}

func TestExpand3DDropsOutOfBounds(t *testing.T) {
	gr := grid.New(4, 4, grid.DefaultLayers(2, 8))
	g := busGroup(2, 0, 9, 0) // x=9 beyond 4-wide grid
	obj := ident.Partition(0, &g)[0]
	ots := ObjectTopologies(&g, &obj, Options{})
	if cands := Expand3D(gr, ots, Options{}); len(cands) != 0 {
		t.Errorf("expected no candidates, got %d", len(cands))
	}
}

func TestLayerPairsPreferAdjacent(t *testing.T) {
	gr := grid.New(8, 8, grid.DefaultLayers(6, 4))
	pairs := layerPairs(gr, 100)
	if len(pairs) != 9 {
		t.Fatalf("pairs = %d, want 9", len(pairs))
	}
	if d := iabs(pairs[0][0] - pairs[0][1]); d != 1 {
		t.Errorf("first pair distance = %d, want 1", d)
	}
	for i := 1; i < len(pairs); i++ {
		if iabs(pairs[i][0]-pairs[i][1]) < iabs(pairs[i-1][0]-pairs[i-1][1]) {
			t.Error("pairs not sorted by layer distance")
		}
	}
}
