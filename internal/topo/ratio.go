package topo

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/signal"
)

// RCs returns the rectilinear connections of the topology: canonical
// segments additionally split at the bit's pin locations, so every RC runs
// between two features (pins, corners, or junctions).
func RCs(t geom.Tree, pins []geom.Point) []geom.Seg {
	var out []geom.Seg
	for _, s := range t.Canon().Segs {
		n := s.Norm()
		cuts := []geom.Point{n.A, n.B}
		for _, p := range pins {
			if n.Contains(p) && p != n.A && p != n.B {
				cuts = append(cuts, p)
			}
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i].Less(cuts[j]) })
		for i := 0; i+1 < len(cuts); i++ {
			if cuts[i] != cuts[i+1] {
				out = append(out, geom.Seg{A: cuts[i], B: cuts[i+1]})
			}
		}
	}
	return out
}

// feature is a matchable topology point: a pin or a bending point, with its
// driver-weighted similarity vector (§III-B3).
type feature struct {
	p  geom.Point
	sv signal.SV
}

// features lists the distinct RC endpoints of the topology with weighted
// SVs computed against the bit's pins.
func features(rcs []geom.Seg, bit *signal.Bit) []feature {
	w := signal.DriverWeightFor(bit)
	pinIdx := make(map[geom.Point]int, len(bit.Pins))
	for i, p := range bit.Pins {
		if _, seen := pinIdx[p.Loc]; !seen {
			pinIdx[p.Loc] = i
		}
	}
	seen := make(map[geom.Point]bool)
	var out []feature
	add := func(p geom.Point) {
		if seen[p] {
			return
		}
		seen[p] = true
		var sv signal.SV
		if i, isPin := pinIdx[p]; isPin {
			sv = bit.WeightedPinSV(i, w)
		} else {
			sv = signal.WeightedPointSV(p, bit, w)
		}
		out = append(out, feature{p, sv})
	}
	for _, s := range rcs {
		add(s.A)
		add(s.B)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].p.Less(out[j].p) })
	return out
}

// Ratio computes the regularity ratio of two topologies (Eq. 2): pins and
// bending points are matched across the topologies by closest weighted SV;
// the ratio is the number of RCs whose two endpoints map onto an RC of the
// other topology, divided by the smaller RC count. The result is symmetric
// and lies in [0, 1]; 1 means the topologies share one structure.
func Ratio(t1 geom.Tree, bit1 *signal.Bit, t2 geom.Tree, bit2 *signal.Bit) float64 {
	rc1 := RCs(t1, bit1.PinLocs())
	rc2 := RCs(t2, bit2.PinLocs())
	if len(rc1) == 0 || len(rc2) == 0 {
		if len(rc1) == 0 && len(rc2) == 0 {
			return 1
		}
		return 0
	}
	f1 := features(rc1, bit1)
	f2 := features(rc2, bit2)
	m12 := matchedRCs(rc1, f1, rc2, f2)
	m21 := matchedRCs(rc2, f2, rc1, f1)
	matched := m12
	if m21 > matched {
		matched = m21
	}
	minRC := len(rc1)
	if len(rc2) < minRC {
		minRC = len(rc2)
	}
	if matched > minRC {
		matched = minRC
	}
	return float64(matched) / float64(minRC)
}

// matchedRCs maps every feature of side 1 to its closest-SV feature on side
// 2 and counts the RCs of side 1 whose mapped endpoints form an RC of side
// 2.
func matchedRCs(rc1 []geom.Seg, f1 []feature, rc2 []geom.Seg, f2 []feature) int {
	mapped := make(map[geom.Point]geom.Point, len(f1))
	for _, f := range f1 {
		best := 0
		bestD := f.sv.L1(f2[0].sv)
		for i := 1; i < len(f2); i++ {
			if d := f.sv.L1(f2[i].sv); d < bestD {
				best, bestD = i, d
			}
		}
		mapped[f.p] = f2[best].p
	}
	rcSet := make(map[[2]geom.Point]bool, len(rc2))
	for _, s := range rc2 {
		n := s.Norm()
		rcSet[[2]geom.Point{n.A, n.B}] = true
	}
	count := 0
	for _, s := range rc1 {
		a, b := mapped[s.A], mapped[s.B]
		if a == b {
			continue
		}
		if b.Less(a) {
			a, b = b, a
		}
		if rcSet[[2]geom.Point{a, b}] {
			count++
		}
	}
	return count
}

// RatioTable computes the dense table of regularity ratios between every
// backbone pair of two objects: entry [i*len(b2)+j] is Ratio(b1[i], bit1,
// b2[j], bit2). Nil backbones (2-D topologies that produced no surviving
// candidate) yield NaN entries, which callers must never index — the
// corresponding topology pair cannot be selected.
func RatioTable(b1 []*geom.Tree, bit1 *signal.Bit, b2 []*geom.Tree, bit2 *signal.Bit) []float64 {
	tab := make([]float64, len(b1)*len(b2))
	for i, t1 := range b1 {
		row := tab[i*len(b2) : (i+1)*len(b2)]
		if t1 == nil {
			for j := range row {
				row[j] = math.NaN()
			}
			continue
		}
		for j, t2 := range b2 {
			if t2 == nil {
				row[j] = math.NaN()
				continue
			}
			row[j] = Ratio(*t1, bit1, *t2, bit2)
		}
	}
	return tab
}

// PairIrregularity converts a regularity ratio into the cost contribution
// c(i,j,p,q) of formulation (3a): the reciprocal of the ratio, scaled by
// weight, with noShare charged when the topologies share no RCs at all
// (a large penalty that must stay below the non-routing penalty M), plus a
// layer-difference penalty when the shared trunks land on non-adjacent
// layers.
func PairIrregularity(ratio float64, weight float64, noShare float64, layerDist int, layerPenalty float64) float64 {
	if ratio <= 0 {
		return noShare + layerPenalty*float64(layerDist)
	}
	cost := weight * (1/ratio - 1)
	if layerDist > 1 {
		cost += layerPenalty * float64(layerDist-1)
	}
	return cost
}
