package steiner

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// naiveAttachL is the pre-optimization reference: materialize both full
// L-corner tree copies and re-cost each from scratch.
func naiveAttachL(t geom.Tree, a, b geom.Point, opt Options) geom.Tree {
	if a.X == b.X || a.Y == b.Y {
		t.Append(geom.S(a, b))
		return t
	}
	c1 := geom.Pt(b.X, a.Y)
	c2 := geom.Pt(a.X, b.Y)
	t1 := geom.Tree{Segs: append(append([]geom.Seg{}, t.Segs...), geom.S(a, c1), geom.S(c1, b))}
	t2 := geom.Tree{Segs: append(append([]geom.Seg{}, t.Segs...), geom.S(a, c2), geom.S(c2, b))}
	if opt.Cost(t1) <= opt.Cost(t2) {
		return t1
	}
	return t2
}

// TestAttachDeltaMatchesNaive asserts the incremental corner evaluation
// picks the same corner as re-costing both full tree copies, across random
// trees and bend weights, and that the local delta equals the true global
// cost change.
func TestAttachDeltaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		opt := Options{BendWeight: trial % 5}
		var tr geom.Tree
		// Grow a random connected tree.
		pts := []geom.Point{geom.Pt(rng.Intn(12), rng.Intn(12))}
		for i := 0; i < 2+rng.Intn(8); i++ {
			from := pts[rng.Intn(len(pts))]
			to := geom.Pt(rng.Intn(12), rng.Intn(12))
			if from == to {
				continue
			}
			tr = naiveAttachL(tr, from, to, opt)
			pts = append(pts, to)
		}
		a := pts[rng.Intn(len(pts))]
		b := geom.Pt(rng.Intn(12), rng.Intn(12))
		if a.X == b.X || a.Y == b.Y {
			continue
		}
		c1 := geom.Pt(b.X, a.Y)
		c2 := geom.Pt(a.X, b.Y)
		base := opt.Cost(tr)
		full1 := opt.Cost(geom.Tree{Segs: append(append([]geom.Seg{}, tr.Segs...), geom.S(a, c1), geom.S(c1, b))})
		full2 := opt.Cost(geom.Tree{Segs: append(append([]geom.Seg{}, tr.Segs...), geom.S(a, c2), geom.S(c2, b))})
		if d1 := attachDelta(tr, a, c1, b, opt); d1 != full1-base {
			t.Fatalf("trial %d: corner1 delta %d, full recost delta %d", trial, d1, full1-base)
		}
		if d2 := attachDelta(tr, a, c2, b, opt); d2 != full2-base {
			t.Fatalf("trial %d: corner2 delta %d, full recost delta %d", trial, d2, full2-base)
		}
		got := attachL(tr, a, b, opt)
		want := naiveAttachL(tr, a, b, opt)
		if opt.Cost(got) != opt.Cost(want) {
			t.Fatalf("trial %d: attachL cost %d, naive cost %d", trial, opt.Cost(got), opt.Cost(want))
		}
	}
}
