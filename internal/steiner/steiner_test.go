package steiner

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestMSTTwoPins(t *testing.T) {
	tr := MST([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}, Options{})
	if tr.WireLength() != 7 {
		t.Errorf("wirelength = %d, want 7", tr.WireLength())
	}
	if !tr.Connected([]geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}) {
		t.Error("not connected")
	}
}

func TestMSTDegenerate(t *testing.T) {
	if tr := MST(nil, Options{}); len(tr.Segs) != 0 {
		t.Error("empty pin set should yield empty tree")
	}
	if tr := MST([]geom.Point{geom.Pt(1, 1)}, Options{}); len(tr.Segs) != 0 {
		t.Error("single pin should yield empty tree")
	}
	// Duplicate pins collapse.
	tr := MST([]geom.Point{geom.Pt(0, 0), geom.Pt(0, 0), geom.Pt(2, 0)}, Options{})
	if tr.WireLength() != 2 {
		t.Errorf("wirelength = %d, want 2", tr.WireLength())
	}
}

func TestIterated1SteinerBeatsOrMatchesMST(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + r.Intn(6)
		pins := make([]geom.Point, n)
		for i := range pins {
			pins[i] = geom.Pt(r.Intn(16), r.Intn(16))
		}
		mst := MST(pins, Options{})
		st := Iterated1Steiner(pins, Options{})
		if !st.Connected(pins) {
			t.Fatalf("trial %d: Steiner tree disconnected", trial)
		}
		if st.WireLength() > mst.WireLength() {
			t.Fatalf("trial %d: Steiner WL %d > MST WL %d", trial, st.WireLength(), mst.WireLength())
		}
		// HPWL is a lower bound for any connecting tree.
		if st.WireLength() < geom.BBox(pins).HalfPerimeter() {
			t.Fatalf("trial %d: WL %d below HPWL bound %d", trial, st.WireLength(), geom.BBox(pins).HalfPerimeter())
		}
	}
}

func TestIterated1SteinerClassicCross(t *testing.T) {
	// Four corner pins of a diamond: the optimal RSMT uses a Steiner point.
	pins := []geom.Point{geom.Pt(0, 1), geom.Pt(2, 1), geom.Pt(1, 0), geom.Pt(1, 2)}
	st := Iterated1Steiner(pins, Options{})
	if st.WireLength() != 4 {
		t.Errorf("cross RSMT = %d, want 4", st.WireLength())
	}
}

func TestBendWeightReducesBends(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	worse := 0
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(5)
		pins := make([]geom.Point, n)
		for i := range pins {
			pins[i] = geom.Pt(r.Intn(20), r.Intn(20))
		}
		plain := Iterated1Steiner(pins, Options{})
		bendy := Iterated1Steiner(pins, Options{BendWeight: 5})
		if bendy.Bends() > plain.Bends() {
			worse++
		}
	}
	if worse > 8 {
		t.Errorf("bend weight made bends worse in %d/40 trials", worse)
	}
}

func TestLength(t *testing.T) {
	if got := Length([]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)}); got != 10 {
		t.Errorf("Length = %d, want 10", got)
	}
	if got := Length([]geom.Point{geom.Pt(2, 2)}); got != 0 {
		t.Errorf("single-pin Length = %d, want 0", got)
	}
}

func TestBackbonesDistinctAndConnected(t *testing.T) {
	pins := []geom.Point{geom.Pt(0, 0), geom.Pt(6, 2), geom.Pt(3, 7), geom.Pt(8, 8)}
	bbs := Backbones(pins, 5, Options{BendWeight: 2})
	if len(bbs) < 2 {
		t.Fatalf("want >= 2 backbones, got %d", len(bbs))
	}
	seen := map[string]bool{}
	opt := Options{BendWeight: 2}
	prev := -1
	for i, b := range bbs {
		if !b.Connected(pins) {
			t.Errorf("backbone %d disconnected", i)
		}
		key := b.String()
		if seen[key] {
			t.Errorf("backbone %d duplicates another", i)
		}
		seen[key] = true
		if c := opt.Cost(b); c < prev {
			t.Errorf("backbones not sorted by cost: %d after %d", c, prev)
		} else {
			prev = c
		}
	}
	// First backbone is the best one.
	if bbs[0].WireLength() > bbs[len(bbs)-1].WireLength()+opt.BendWeight*10 {
		t.Error("first backbone should be near-optimal")
	}
}

func TestBackbonesDegenerate(t *testing.T) {
	if got := Backbones([]geom.Point{geom.Pt(0, 0)}, 3, Options{}); got != nil {
		t.Errorf("single pin backbones = %v", got)
	}
	if got := Backbones([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}, 0, Options{}); got != nil {
		t.Errorf("k=0 backbones = %v", got)
	}
	// Two pins on a line: exactly one distinct topology.
	got := Backbones([]geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)}, 4, Options{})
	if len(got) != 1 {
		t.Errorf("collinear two-pin backbones = %d, want 1", len(got))
	}
}

func TestBackbonesTwoPinLShapes(t *testing.T) {
	// Diagonal two-pin nets have two L orientations; expect both.
	got := Backbones([]geom.Point{geom.Pt(0, 0), geom.Pt(4, 3)}, 4, Options{})
	if len(got) < 2 {
		t.Fatalf("want >= 2 L orientations, got %d", len(got))
	}
	for _, b := range got {
		if b.WireLength() != 7 {
			t.Errorf("two-pin backbone WL = %d, want 7", b.WireLength())
		}
	}
}

func TestMaxSteinerBound(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pins := make([]geom.Point, 8)
	for i := range pins {
		pins[i] = geom.Pt(r.Intn(30), r.Intn(30))
	}
	bounded := Iterated1Steiner(pins, Options{MaxSteiner: 1})
	if !bounded.Connected(pins) {
		t.Fatal("bounded tree disconnected")
	}
}

func BenchmarkIterated1Steiner8(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	pins := make([]geom.Point, 8)
	for i := range pins {
		pins[i] = geom.Pt(r.Intn(40), r.Intn(40))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Iterated1Steiner(pins, Options{BendWeight: 2})
	}
}
