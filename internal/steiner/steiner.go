// Package steiner builds rectilinear Steiner trees for signal-bit pin sets.
// It implements a Prim-based rectilinear MST, the batched iterated 1-Steiner
// heuristic of Kahng and Robins (BI1S, [16] in the paper) extended with a
// bend cost as §III-B1 requires — backbone topologies affect every bit in a
// routing object, so fewer bends matter as much as wirelength — and an
// enumerator that returns a diverse set of candidate backbones.
package steiner

import (
	"sort"

	"repro/internal/geom"
)

// Options tunes tree construction.
type Options struct {
	// BendWeight is the cost in G-cell units charged per bending point when
	// comparing topologies. Zero optimizes wirelength only.
	BendWeight int
	// MaxSteiner bounds how many Steiner points the iterated heuristic may
	// insert. Zero means no bound.
	MaxSteiner int
}

// Cost returns the option-weighted cost of a tree: wirelength plus
// BendWeight per bend.
func (o Options) Cost(t geom.Tree) int {
	return t.WireLength() + o.BendWeight*t.Bends()
}

// MST returns a rectilinear spanning tree of the pins built by Prim's
// algorithm on Manhattan distances, with each tree edge realized as an
// L-shape chosen to minimize the option cost against the partial tree.
func MST(pins []geom.Point, opt Options) geom.Tree {
	pins = geom.DedupPoints(pins)
	if len(pins) <= 1 {
		return geom.Tree{}
	}
	inTree := make([]bool, len(pins))
	dist := make([]int, len(pins))
	from := make([]int, len(pins))
	for i := range dist {
		dist[i] = geom.Dist(pins[0], pins[i])
		from[i] = 0
	}
	inTree[0] = true
	var t geom.Tree
	for added := 1; added < len(pins); added++ {
		best := -1
		for i := range pins {
			if !inTree[i] && (best == -1 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		t = attachL(t, pins[from[best]], pins[best], opt)
		for i := range pins {
			if d := geom.Dist(pins[best], pins[i]); !inTree[i] && d < dist[i] {
				dist[i] = d
				from[i] = best
			}
		}
	}
	return t
}

// attachL connects b to the tree at a using whichever L-shape corner yields
// the lower option cost for the union. The corners are compared through
// exact local cost deltas rather than by materializing and re-costing two
// full tree copies per attachment, which made MST construction quadratic
// in segment count.
func attachL(t geom.Tree, a, b geom.Point, opt Options) geom.Tree {
	if a.X == b.X || a.Y == b.Y {
		t.Append(geom.S(a, b))
		return t
	}
	c1 := geom.Pt(b.X, a.Y)
	c2 := geom.Pt(a.X, b.Y)
	if attachDelta(t, a, c1, b, opt) <= attachDelta(t, a, c2, b, opt) {
		t.Append(geom.S(a, c1), geom.S(c1, b))
	} else {
		t.Append(geom.S(a, c2), geom.S(c2, b))
	}
	return t
}

// attachDelta returns the exact option-cost increase of adding the L-path
// a -> c -> b to the tree. Wirelength coverage and bend status can only
// change on points of the new path, and every canonical segment incident
// to such a point shares a point with the path, so evaluating the cost on
// that local neighborhood before and after the insertion yields the same
// delta as re-costing the whole tree.
func attachDelta(t geom.Tree, a, c, b geom.Point, opt Options) int {
	s1, s2 := geom.S(a, c), geom.S(c, b)
	var local geom.Tree
	for _, s := range t.Segs {
		if s.Touches(s1) || s.Touches(s2) {
			local.Append(s)
		}
	}
	before := opt.Cost(local)
	local.Append(s1, s2)
	return opt.Cost(local) - before
}

// Iterated1Steiner implements the iterated 1-Steiner heuristic: repeatedly
// evaluate every promising Hanan candidate as an extra terminal, keep the
// one with the largest cost gain, and stop when no candidate improves the
// tree. Terminal sets stay small for signal bits (Np_max <= 14 in the
// paper's benchmarks), so the O(rounds * candidates * MST) cost is fine.
func Iterated1Steiner(pins []geom.Point, opt Options) geom.Tree {
	pins = geom.DedupPoints(pins)
	if len(pins) <= 2 {
		return MST(pins, opt)
	}
	terms := append([]geom.Point{}, pins...)
	best := MST(terms, opt)
	bestCost := opt.Cost(best)
	inserted := 0
	for {
		if opt.MaxSteiner > 0 && inserted >= opt.MaxSteiner {
			return best
		}
		cands := geom.HananCandidates(terms)
		var bestCand geom.Point
		var bestTree geom.Tree
		improved := false
		for _, c := range cands {
			t := MST(append(append([]geom.Point{}, terms...), c), opt)
			t = pruneDangling(t, pins)
			if cost := opt.Cost(t); cost < bestCost {
				bestCost = cost
				bestCand = c
				bestTree = t
				improved = true
			}
		}
		if !improved {
			return best
		}
		terms = append(terms, bestCand)
		best = bestTree
		inserted++
	}
}

// pruneDangling removes canonical leaf segments whose free endpoint is not a
// pin, repeating until fixpoint. Inserted Steiner candidates that end up as
// leaves contribute nothing and must not count as wirelength.
func pruneDangling(t geom.Tree, pins []geom.Point) geom.Tree {
	pinSet := make(map[geom.Point]bool, len(pins))
	for _, p := range pins {
		pinSet[p] = true
	}
	segs := splitAtPoints(t.Canon().Segs, pins)
	for {
		deg := make(map[geom.Point]int)
		for _, s := range segs {
			deg[s.A]++
			deg[s.B]++
		}
		keep := segs[:0:0]
		removed := false
		for _, s := range segs {
			if (deg[s.A] == 1 && !pinSet[s.A]) || (deg[s.B] == 1 && !pinSet[s.B]) {
				removed = true
				continue
			}
			keep = append(keep, s)
		}
		segs = keep
		if !removed {
			break
		}
	}
	return geom.Tree{Segs: segs}
}

// splitAtPoints cuts every segment at each of the given points lying in its
// interior, so those points become graph nodes (and can anchor pruning).
func splitAtPoints(segs []geom.Seg, pts []geom.Point) []geom.Seg {
	var out []geom.Seg
	for _, s := range segs {
		n := s.Norm()
		cuts := []geom.Point{n.A, n.B}
		for _, p := range pts {
			if n.Contains(p) && p != n.A && p != n.B {
				cuts = append(cuts, p)
			}
		}
		sort.Slice(cuts, func(i, j int) bool { return cuts[i].Less(cuts[j]) })
		for i := 0; i+1 < len(cuts); i++ {
			if cuts[i] != cuts[i+1] {
				out = append(out, geom.Seg{A: cuts[i], B: cuts[i+1]})
			}
		}
	}
	return out
}

// Length returns the wirelength of the iterated-1-Steiner tree over the
// pins — the RSMT estimate the paper uses to account for unrouted groups.
func Length(pins []geom.Point) int {
	return Iterated1Steiner(pins, Options{}).WireLength()
}

// Backbones returns up to k distinct backbone topologies for the pin set,
// ordered by increasing option cost, the best (iterated-1-Steiner) tree
// first. Diversity comes from the paper's priority queue of promising
// bending points: each additional topology commits to at least one
// different Hanan point or L-orientation. All returned trees connect every
// pin.
func Backbones(pins []geom.Point, k int, opt Options) []geom.Tree {
	pins = geom.DedupPoints(pins)
	if len(pins) <= 1 || k <= 0 {
		return nil
	}
	seen := make(map[string]bool)
	var out []geom.Tree
	add := func(t geom.Tree) {
		if len(out) >= k+8 { // gather a few extra, sort+trim at the end
			return
		}
		if !t.Connected(pins) {
			return
		}
		key := t.String()
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, t)
	}

	add(Iterated1Steiner(pins, opt))
	// Orientation variants of the plain MST: flipping the bend-weight
	// changes which L corners attachL picks.
	add(MST(pins, opt))
	add(MST(pins, Options{BendWeight: opt.BendWeight + 4}))
	add(reverseMST(pins, opt))

	// Promising Hanan points in priority order: smaller resulting cost
	// first. Each forced point yields a topology committed to that bending
	// point (§III-B1: every candidate tree adopts at least one different
	// bending point).
	type cand struct {
		p    geom.Point
		cost int
	}
	var cands []cand
	for _, c := range geom.HananCandidates(pins) {
		t := pruneDangling(MST(append(append([]geom.Point{}, pins...), c), opt), pins)
		cands = append(cands, cand{c, opt.Cost(t)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].p.Less(cands[j].p)
	})
	for _, c := range cands {
		if len(out) >= k+8 {
			break
		}
		t := pruneDangling(MST(append(append([]geom.Point{}, pins...), c.p), opt), pins)
		add(t)
	}

	sort.SliceStable(out, func(i, j int) bool { return opt.Cost(out[i]) < opt.Cost(out[j]) })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// reverseMST builds the MST visiting pins in reverse order, which tends to
// pick the opposite L corners and yields a distinct topology.
func reverseMST(pins []geom.Point, opt Options) geom.Tree {
	rev := make([]geom.Point, len(pins))
	for i, p := range pins {
		rev[len(pins)-1-i] = p
	}
	// Flip corner preference by swapping X/Y roles: mirror, solve, mirror back.
	mir := make([]geom.Point, len(rev))
	for i, p := range rev {
		mir[i] = geom.Pt(p.Y, p.X)
	}
	t := MST(mir, opt)
	var back geom.Tree
	for _, s := range t.Segs {
		back.Append(geom.S(geom.Pt(s.A.Y, s.A.X), geom.Pt(s.B.Y, s.B.X)))
	}
	return back
}
