package experiments

import (
	"strings"
	"testing"
	"time"
)

// fastCfg runs the harness at minimal scale so the whole test stays quick.
func fastCfg(out *strings.Builder) Config {
	return Config{
		Out:        out,
		Scale:      0.03,
		ILPTime:    2 * time.Second,
		Benchmarks: []int{1, 7},
	}
}

func TestTable1(t *testing.T) {
	var sb strings.Builder
	if err := Table1(fastCfg(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TABLE I", "Industry1@0.03", "Industry7@0.03", "average", "ratio", "Man.Route", "PD.CPU"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
	// Manual column is always 100%.
	if !strings.Contains(out, "100.00%") {
		t.Error("manual route column missing 100%")
	}
}

func TestTable2(t *testing.T) {
	var sb strings.Builder
	if err := Table2(fastCfg(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"TABLE II", "ILP.VioB", "PD.VioA", "Industry1@0.03"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestCongestionMaps(t *testing.T) {
	var sb strings.Builder
	if err := CongestionMaps(fastCfg(&sb), 7); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 11") || !strings.Contains(out, "manual design result") ||
		!strings.Contains(out, "Streak result") {
		t.Errorf("congestion map output malformed:\n%s", out)
	}
	if strings.Count(out, "legend") != 2 {
		t.Error("expected two heatmaps")
	}
}

func TestFig13(t *testing.T) {
	var sb strings.Builder
	if err := Fig13(fastCfg(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig. 13(a)") || !strings.Contains(out, "Fig. 13(b)") {
		t.Errorf("Fig13 output missing sections:\n%s", out)
	}
	if !strings.Contains(out, "bench,pins,ilp_cpu_s,ilp_timedout,pd_cpu_s") {
		t.Error("Fig13 CSV header missing")
	}
	// Two-pin series has 4 benches, multipin 4 (incl. enlarged Industry2).
	if got := strings.Count(out, "\nIndustry"); got < 8 {
		t.Errorf("Fig13 rows = %d, want >= 8:\n%s", got, out)
	}
}

func TestFig14(t *testing.T) {
	var sb strings.Builder
	if err := Fig14(fastCfg(&sb)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "route_noclus_pct,route_clus_pct") {
		t.Errorf("Fig14 CSV header missing:\n%s", sb.String())
	}
}

func TestFig15(t *testing.T) {
	var sb strings.Builder
	if err := Fig15(fastCfg(&sb)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "vio_norefine,vio_refine") {
		t.Errorf("Fig15 CSV header missing:\n%s", sb.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.2 || c.ILPTime != 20*time.Second || len(c.Benchmarks) != 7 {
		t.Errorf("defaults = %+v", c)
	}
}
