package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
)

// collectorWithSeries records one fake run carrying a convergence series.
func collectorWithSeries(t *testing.T) *obs.Collector {
	t.Helper()
	c := obs.NewCollector()
	ctx, finish := c.Start(context.Background(), "Industry1", "pd")
	rec := obs.FromContext(ctx)
	samp := rec.Sampler("pd")
	samp.Record(3e6, 0, 0)
	samp.Record(1234.5, 10, 0)
	rec.Sampler("hier").Record(99, 1, 0)
	finish()
	return c
}

func TestConvergenceTable(t *testing.T) {
	var buf strings.Builder
	ConvergenceTable(&buf, collectorWithSeries(t))
	out := buf.String()
	for _, want := range []string{"Industry1", "pd", "hier", "1234", "solver convergence"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestConvergenceTableEmpty(t *testing.T) {
	var buf strings.Builder
	ConvergenceTable(&buf, nil)
	ConvergenceTable(&buf, obs.NewCollector())
	if buf.Len() != 0 {
		t.Errorf("empty collector printed:\n%s", buf.String())
	}
}

func TestConvergenceCSV(t *testing.T) {
	var buf strings.Builder
	ConvergenceCSV(&buf, collectorWithSeries(t))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "bench,flow,series,elapsed_us,objective,routed,bound" {
		t.Fatalf("header = %q", lines[0])
	}
	// 2 pd samples + 1 hier sample; series in sorted order (hier before pd).
	if len(lines) != 4 {
		t.Fatalf("got %d data rows, want 3:\n%s", len(lines)-1, buf.String())
	}
	if !strings.HasPrefix(lines[1], "Industry1,pd,hier,") {
		t.Errorf("first row = %q, want the hier series first", lines[1])
	}
	if !strings.Contains(lines[3], ",1234.5,10,") {
		t.Errorf("last pd row = %q", lines[3])
	}
}
