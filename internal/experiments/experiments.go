// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on the synthetic Industry benchmarks: Table I
// (manual vs ILP vs primal-dual), Table II (post-optimization), Figs. 11
// and 12 (congestion maps), Fig. 13 (scalability), Fig. 14 (clustering
// ablation) and Fig. 15 (refinement ablation).
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/benchgen"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/postopt"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/signal"
)

// Config controls an experiment run.
type Config struct {
	// Out receives the rendered tables and CSV series.
	Out io.Writer
	// Scale shrinks the Industry presets (1 = full size). The paper's
	// full-scale congested benchmarks push the exact ILP past any
	// reasonable limit — which is the point of its Table I — but smaller
	// scales let every flow finish while preserving the comparisons.
	Scale float64
	// ILPTime is the exact-solver time limit (the paper's 3600 s).
	ILPTime time.Duration
	// ILPMaxVars guards the linearized model size; models beyond it are
	// reported as "> limit" rows like the paper's timeouts.
	ILPMaxVars int
	// Benchmarks lists the Industry numbers to run (default 1..7).
	Benchmarks []int
	// Stats, when non-nil, collects one telemetry report per (bench, flow)
	// solver run; render them with StageTable or serialize with WriteStats.
	Stats *obs.Collector
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.2
	}
	if c.ILPTime == 0 {
		c.ILPTime = 20 * time.Second
	}
	if c.ILPMaxVars == 0 {
		c.ILPMaxVars = 20000
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = []int{1, 2, 3, 4, 5, 6, 7}
	}
	return c
}

// design generates the (possibly scaled) benchmark.
func (c Config) design(n int) *benchDesign {
	spec := benchgen.Industry(n)
	if c.Scale < 1 {
		spec = benchgen.Scale(spec, c.Scale)
	}
	return &benchDesign{n: n, spec: spec, d: spec.Generate()}
}

// benchDesign bundles a preset with its generated design.
type benchDesign struct {
	n    int
	spec benchgen.Spec
	d    *signal.Design
}

// run executes one solver flow under the config's telemetry collector (a
// nil collector makes this a plain core.RunProblem). flow tags the run's
// report ("pd", "ilp", ...).
func (c Config) run(p *route.Problem, flow string, opt core.Options) (*core.Result, error) {
	ctx, finish := c.Stats.Start(context.Background(), p.Design.Name, flow)
	defer finish()
	return core.RunProblemCtx(ctx, p, opt)
}

// solveILP runs the exact flow; oversize models and timeouts both surface
// as timedOut (the paper's "> 3600" rows).
func (c Config) solveILP(p *route.Problem, post bool) (*core.Result, bool, error) {
	opt := core.Options{
		Method:       core.ILP,
		ILPTimeLimit: c.ILPTime,
		ILPWarmStart: true,
		ILPMaxVars:   c.ILPMaxVars,
		PostOpt:      post,
		Clustering:   post,
		Refinement:   post,
	}
	res, err := c.run(p, "ilp", opt)
	if err != nil {
		// Oversize model: fall back to the primal-dual solution but tag
		// the row as exceeding the limit, like the paper's congested rows.
		opt.Method = core.PrimalDual
		res, err2 := c.run(p, "ilp>pd", opt)
		if err2 != nil {
			return nil, true, err
		}
		return res, true, nil
	}
	return res, res.TimedOut, nil
}

func (c Config) solvePD(p *route.Problem, post bool) (*core.Result, error) {
	return c.run(p, "pd", core.Options{
		Method:     core.PrimalDual,
		PostOpt:    post,
		Clustering: post,
		Refinement: post,
	})
}

// Table1 regenerates Table I: manual design vs ILP vs primal-dual on
// routability, wirelength, average regularity and CPU seconds.
func Table1(cfg Config) error {
	cfg = cfg.withDefaults()
	headers := []string{
		"#SG", "#Net", "Np", "Wmax",
		"Man.Route", "Man.WL",
		"ILP.Route", "ILP.WL", "ILP.Reg", "ILP.CPU",
		"PD.Route", "PD.WL", "PD.Reg", "PD.CPU",
	}
	var rows []report.Row
	var sums struct {
		manWL, ilpRoute, ilpWL, ilpReg, pdRoute, pdWL, pdReg float64
	}
	count := 0
	for _, n := range cfg.Benchmarks {
		b := cfg.design(n)
		p, err := route.Build(b.d, route.Options{})
		if err != nil {
			return err
		}
		man := baseline.Route(p)
		manM := metrics.Compute(b.d, man.Routing, man.Usage, postopt.Options{})

		ilpRes, ilpTimedOut, err := cfg.solveILP(p, false)
		if err != nil {
			return err
		}
		pdRes, err := cfg.solvePD(p, false)
		if err != nil {
			return err
		}

		im, pm := ilpRes.Metrics, pdRes.Metrics
		rows = append(rows, report.Row{
			Bench: b.d.Name,
			Cells: []string{
				fmt.Sprint(len(b.d.Groups)), fmt.Sprint(b.d.NumNets()),
				fmt.Sprint(b.d.MaxPins()), fmt.Sprint(b.d.MaxWidth()),
				fmt.Sprintf("%.2f%%", manM.RouteFrac*100), fmt.Sprintf("%.2f", manM.WL/1e5),
				fmt.Sprintf("%.2f%%", im.RouteFrac*100), fmt.Sprintf("%.2f", im.WL/1e5),
				fmt.Sprintf("%.2f%%", im.AvgReg*100),
				report.FormatRuntime(ilpRes.Runtime, ilpTimedOut, cfg.ILPTime),
				fmt.Sprintf("%.2f%%", pm.RouteFrac*100), fmt.Sprintf("%.2f", pm.WL/1e5),
				fmt.Sprintf("%.2f%%", pm.AvgReg*100),
				report.FormatRuntime(pdRes.Runtime, false, 0),
			},
		})
		sums.manWL += manM.WL
		sums.ilpRoute += im.RouteFrac
		sums.ilpWL += im.WL
		sums.ilpReg += im.AvgReg
		sums.pdRoute += pm.RouteFrac
		sums.pdWL += pm.WL
		sums.pdReg += pm.AvgReg
		count++
	}
	k := float64(count)
	rows = append(rows, report.Row{
		Bench: "average",
		Cells: []string{"-", "-", "-", "-",
			"100.00%", fmt.Sprintf("%.2f", sums.manWL/k/1e5),
			fmt.Sprintf("%.2f%%", sums.ilpRoute/k*100), fmt.Sprintf("%.2f", sums.ilpWL/k/1e5),
			fmt.Sprintf("%.2f%%", sums.ilpReg/k*100), "-",
			fmt.Sprintf("%.2f%%", sums.pdRoute/k*100), fmt.Sprintf("%.2f", sums.pdWL/k/1e5),
			fmt.Sprintf("%.2f%%", sums.pdReg/k*100), "-",
		},
	})
	rows = append(rows, report.Row{
		Bench: "ratio",
		Cells: []string{"-", "-", "-", "-",
			"1.000", "1.000",
			fmt.Sprintf("%.4f", sums.ilpRoute/k), fmt.Sprintf("%.3f", sums.ilpWL/sums.manWL),
			"-", "-",
			fmt.Sprintf("%.4f", sums.pdRoute/k), fmt.Sprintf("%.3f", sums.pdWL/sums.manWL),
			"-", "-",
		},
	})
	report.Table(cfg.Out, fmt.Sprintf("TABLE I: performance comparison (scale %.2f, ILP limit %s)", cfg.Scale, cfg.ILPTime), headers, rows)
	return nil
}
