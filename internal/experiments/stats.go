package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// statsFile is the JSON layout of WriteStats: a schema stamp plus the
// per-run telemetry reports, in completion order.
type statsFile struct {
	Schema int       `json:"schema"`
	Runs   []obs.Run `json:"runs"`
}

// WriteStats serializes every collected run as indented JSON (schema
// obs.SchemaVersion). A nil collector writes an empty run list, so the
// output is always valid for downstream tooling.
func WriteStats(w io.Writer, c *obs.Collector) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(statsFile{Schema: obs.SchemaVersion, Runs: c.Runs()})
}

// stageColumns is the fixed column order of StageTable — the pipeline
// stages in execution order.
var stageColumns = []struct {
	name  string
	label string
}{
	{obs.StagePD, "pd"},
	{obs.StageILP, "ilp"},
	{obs.StageHier, "hier"},
	{obs.StageCluster, "clus"},
	{obs.StageRefine, "refine"},
	{obs.StageAudit, "audit"},
	{obs.StageMetrics, "metric"},
}

// fmtStage renders a stage total, "-" when the stage never ran.
func fmtStage(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// StageTable renders the per-run stage wall-clock table for every
// collected run: one row per (bench, flow) with the total time spent in
// each pipeline stage plus the headline solver counters. A nil or empty
// collector prints nothing.
func StageTable(w io.Writer, c *obs.Collector) {
	runs := c.Runs()
	if len(runs) == 0 {
		return
	}
	headers := []string{"flow"}
	for _, col := range stageColumns {
		headers = append(headers, col.label)
	}
	headers = append(headers, "pd.iters", "bb.nodes", "simplex")
	rows := make([]report.Row, 0, len(runs))
	for _, run := range runs {
		cells := []string{run.Flow}
		for _, col := range stageColumns {
			cells = append(cells, fmtStage(run.Report.SpanTotal(col.name)))
		}
		cells = append(cells,
			fmt.Sprint(run.Report.Counters["pd.iterations"]),
			fmt.Sprint(run.Report.Counters["ilp.bb.nodes"]),
			fmt.Sprint(run.Report.Counters["ilp.simplex.iterations"]),
		)
		rows = append(rows, report.Row{Bench: run.Bench, Cells: cells})
	}
	report.Table(w, "solver stage telemetry (wall-clock per stage; see DESIGN.md \"Observability\")", headers, rows)
}

// seriesNames returns a run's convergence series names in deterministic
// (sorted) order.
func seriesNames(series map[string][]obs.Sample) []string {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ConvergenceTable renders one row per (bench, flow, series): how many
// samples the solver recorded, the objective it started and ended at, the
// final routed count and the time of the last sample. A nil or empty
// collector — or runs recorded without solver samplers — prints nothing.
func ConvergenceTable(w io.Writer, c *obs.Collector) {
	var rows []report.Row
	for _, run := range c.Runs() {
		for _, name := range seriesNames(run.Report.Series) {
			s := run.Report.Series[name]
			if len(s) == 0 {
				continue
			}
			first, last := s[0], s[len(s)-1]
			rows = append(rows, report.Row{Bench: run.Bench, Cells: []string{
				run.Flow,
				name,
				fmt.Sprint(len(s)),
				fmt.Sprintf("%.4g", first.Objective),
				fmt.Sprintf("%.4g", last.Objective),
				fmt.Sprint(last.Routed),
				fmt.Sprintf("%.3fs", time.Duration(last.ElapsedUS*1000).Seconds()),
			}})
		}
	}
	if len(rows) == 0 {
		return
	}
	report.Table(w, "solver convergence (objective trajectory per run; see DESIGN.md \"Tracing & convergence\")",
		[]string{"flow", "series", "samples", "obj first", "obj last", "routed", "at"}, rows)
}

// ConvergenceCSV writes every convergence sample in long form — one row per
// (bench, flow, series, sample) — ready for plotting objective-vs-time
// curves across solvers.
func ConvergenceCSV(w io.Writer, c *obs.Collector) {
	header := []string{"bench", "flow", "series", "elapsed_us", "objective", "routed", "bound"}
	var rows [][]string
	for _, run := range c.Runs() {
		for _, name := range seriesNames(run.Report.Series) {
			for _, s := range run.Report.Series[name] {
				rows = append(rows, []string{
					run.Bench, run.Flow, name,
					fmt.Sprint(s.ElapsedUS),
					fmt.Sprintf("%g", s.Objective),
					fmt.Sprint(s.Routed),
					fmt.Sprintf("%g", s.Bound),
				})
			}
		}
	}
	report.CSV(w, header, rows)
}
