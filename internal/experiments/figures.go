package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/benchgen"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/route"
)

// Table2 regenerates Table II: the effect of post-optimization (bottom-up
// clustering + refinement) on top of ILP and primal-dual: Vio(dst) before
// and after, routability, wirelength, regularity and CPU.
func Table2(cfg Config) error {
	cfg = cfg.withDefaults()
	headers := []string{
		"ILP.VioB", "ILP.VioA", "ILP.Route", "ILP.WL", "ILP.Reg", "ILP.CPU",
		"PD.VioB", "PD.VioA", "PD.Route", "PD.WL", "PD.Reg", "PD.CPU",
	}
	var rows []report.Row
	for _, n := range cfg.Benchmarks {
		b := cfg.design(n)
		p, err := route.Build(b.d, route.Options{})
		if err != nil {
			return err
		}
		ilpRes, ilpTimedOut, err := cfg.solveILP(p, true)
		if err != nil {
			return err
		}
		pdRes, err := cfg.solvePD(p, true)
		if err != nil {
			return err
		}
		im, pm := ilpRes.Metrics, pdRes.Metrics
		rows = append(rows, report.Row{
			Bench: b.d.Name,
			Cells: []string{
				fmt.Sprint(ilpRes.VioBefore), fmt.Sprint(im.VioDst),
				fmt.Sprintf("%.2f%%", im.RouteFrac*100), fmt.Sprintf("%.2f", im.WL/1e5),
				fmt.Sprintf("%.2f%%", im.AvgReg*100),
				report.FormatRuntime(ilpRes.Runtime, ilpTimedOut, cfg.ILPTime),
				fmt.Sprint(pdRes.VioBefore), fmt.Sprint(pm.VioDst),
				fmt.Sprintf("%.2f%%", pm.RouteFrac*100), fmt.Sprintf("%.2f", pm.WL/1e5),
				fmt.Sprintf("%.2f%%", pm.AvgReg*100),
				report.FormatRuntime(pdRes.Runtime, false, 0),
			},
		})
	}
	report.Table(cfg.Out, fmt.Sprintf("TABLE II: post optimization (scale %.2f)", cfg.Scale), headers, rows)
	return nil
}

// CongestionMaps regenerates Fig. 11 (Industry7) or Fig. 12 (Industry6):
// side-by-side congestion maps of the manual design and the Streak result.
func CongestionMaps(cfg Config, industryN int) error {
	cfg = cfg.withDefaults()
	b := cfg.design(industryN)
	p, err := route.Build(b.d, route.Options{})
	if err != nil {
		return err
	}
	man := baseline.Route(p)
	fmt.Fprintf(cfg.Out, "Fig. %d analogue — %s congestion maps\n", figNumber(industryN), b.d.Name)
	fmt.Fprintf(cfg.Out, "\n(a) manual design result:\n")
	report.Heatmap(cfg.Out, man.Usage, 56)

	res, err := cfg.solvePD(p, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\n(b) Streak result:\n")
	report.Heatmap(cfg.Out, res.Usage, 56)
	return nil
}

func figNumber(industryN int) int {
	if industryN == 7 {
		return 11
	}
	return 12
}

// Fig13 regenerates the scalability comparison: ILP vs primal-dual CPU
// seconds against total pin count, for the two-pin benchmarks (a) and the
// multipin benchmarks including the enlarged Industry2-based case (b).
func Fig13(cfg Config) error {
	cfg = cfg.withDefaults()

	emit := func(title string, specs []benchgen.Spec) error {
		fmt.Fprintln(cfg.Out, title)
		header := []string{"bench", "pins", "ilp_cpu_s", "ilp_timedout", "pd_cpu_s"}
		var rows [][]string
		for _, spec := range specs {
			if cfg.Scale < 1 {
				spec = benchgen.Scale(spec, cfg.Scale)
			}
			d := spec.Generate()
			p, err := route.Build(d, route.Options{})
			if err != nil {
				return err
			}
			ilpRes, timedOut, err := cfg.solveILP(p, false)
			if err != nil {
				return err
			}
			pdRes, err := cfg.solvePD(p, false)
			if err != nil {
				return err
			}
			rows = append(rows, []string{
				d.Name,
				fmt.Sprint(d.NumPins()),
				fmt.Sprintf("%.2f", ilpRes.Runtime.Seconds()),
				fmt.Sprint(timedOut),
				fmt.Sprintf("%.2f", pdRes.Runtime.Seconds()),
			})
		}
		report.CSV(cfg.Out, header, rows)
		return nil
	}

	if err := emit("Fig. 13(a) analogue — two-pin scalability (CSV)", benchgen.TwoPin()); err != nil {
		return err
	}
	return emit("Fig. 13(b) analogue — multipin scalability (CSV)", benchgen.ScalabilitySeries())
}

// Fig14 regenerates the bottom-up clustering ablation: routability (a) and
// average regularity (b) of the primal-dual + post flow with and without
// clustering.
func Fig14(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "Fig. 14 analogue — bottom-up clustering ablation (CSV)")
	header := []string{"bench", "route_noclus_pct", "route_clus_pct", "reg_noclus_pct", "reg_clus_pct"}
	var rows [][]string
	for _, n := range cfg.Benchmarks {
		b := cfg.design(n)
		p, err := route.Build(b.d, route.Options{})
		if err != nil {
			return err
		}
		with, err := cfg.solvePD(p, true)
		if err != nil {
			return err
		}
		without, err := cfg.run(p, "pd-noclus", core.Options{
			Method: core.PrimalDual, PostOpt: true, Clustering: false, Refinement: true,
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			b.d.Name,
			fmt.Sprintf("%.2f", without.Metrics.RouteFrac*100),
			fmt.Sprintf("%.2f", with.Metrics.RouteFrac*100),
			fmt.Sprintf("%.2f", without.Metrics.AvgReg*100),
			fmt.Sprintf("%.2f", with.Metrics.AvgReg*100),
		})
	}
	report.CSV(cfg.Out, header, rows)
	return nil
}

// Fig15 regenerates the refinement ablation: Vio(dst) (a) and wirelength
// (b) of the primal-dual + post flow with and without refinement.
func Fig15(cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintln(cfg.Out, "Fig. 15 analogue — post refinement ablation (CSV)")
	header := []string{"bench", "vio_norefine", "vio_refine", "wl_norefine_1e5", "wl_refine_1e5"}
	var rows [][]string
	for _, n := range cfg.Benchmarks {
		b := cfg.design(n)
		p, err := route.Build(b.d, route.Options{})
		if err != nil {
			return err
		}
		with, err := cfg.solvePD(p, true)
		if err != nil {
			return err
		}
		without, err := cfg.run(p, "pd-norefine", core.Options{
			Method: core.PrimalDual, PostOpt: true, Clustering: true, Refinement: false,
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			b.d.Name,
			fmt.Sprint(without.Metrics.VioDst),
			fmt.Sprint(with.Metrics.VioDst),
			fmt.Sprintf("%.2f", without.Metrics.WL/1e5),
			fmt.Sprintf("%.2f", with.Metrics.WL/1e5),
		})
	}
	report.CSV(cfg.Out, header, rows)
	return nil
}
