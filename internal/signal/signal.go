// Package signal defines the design model of the Streak flow: pins, bits,
// signal groups (Definition 1 in the paper), whole designs, and the
// quadrant-based similarity vector (SV, Eq. 1) that captures each pin's
// relative location inside its bit and drives topology-equivalence
// identification and regularity evaluation.
package signal

import (
	"fmt"

	"repro/internal/geom"
)

// Pin is one terminal of a signal bit, placed at a G-cell.
type Pin struct {
	// Loc is the pin's G-cell location.
	Loc geom.Point
	// Name is an optional human-readable label.
	Name string
}

// Bit is one signal bit (a net): a driver plus one or more sinks. The
// driver is always Pins[Driver].
type Bit struct {
	// Name is an optional label such as "data[3]".
	Name string
	// Pins holds all terminals, driver included.
	Pins []Pin
	// Driver indexes the driver pin within Pins.
	Driver int
}

// Validate reports the first structural problem with the bit, or nil.
func (b *Bit) Validate() error {
	if len(b.Pins) < 2 {
		return fmt.Errorf("bit %q has %d pins, need >= 2", b.Name, len(b.Pins))
	}
	if b.Driver < 0 || b.Driver >= len(b.Pins) {
		return fmt.Errorf("bit %q driver index %d out of range", b.Name, b.Driver)
	}
	seen := make(map[geom.Point]int, len(b.Pins))
	for pi, p := range b.Pins {
		if prev, dup := seen[p.Loc]; dup {
			return fmt.Errorf("bit %q: pins %d and %d both at %v", b.Name, prev, pi, p.Loc)
		}
		seen[p.Loc] = pi
	}
	return nil
}

// PinLocs returns the locations of all pins, driver included.
func (b *Bit) PinLocs() []geom.Point {
	out := make([]geom.Point, len(b.Pins))
	for i, p := range b.Pins {
		out[i] = p.Loc
	}
	return out
}

// DriverLoc returns the driver pin's location.
func (b *Bit) DriverLoc() geom.Point { return b.Pins[b.Driver].Loc }

// Sinks returns the indices of non-driver pins.
func (b *Bit) Sinks() []int {
	out := make([]int, 0, len(b.Pins)-1)
	for i := range b.Pins {
		if i != b.Driver {
			out = append(out, i)
		}
	}
	return out
}

// Group is a signal group per Definition 1: performance-critical bits whose
// pins are adjacent and which must share common topologies.
type Group struct {
	// Name labels the group.
	Name string
	// Bits holds the member bits.
	Bits []Bit
}

// Validate reports the first structural problem with the group, or nil.
func (g *Group) Validate() error {
	if len(g.Bits) == 0 {
		return fmt.Errorf("group %q is empty", g.Name)
	}
	for i := range g.Bits {
		if err := g.Bits[i].Validate(); err != nil {
			return fmt.Errorf("group %q: %w", g.Name, err)
		}
	}
	return nil
}

// NumPins returns the total pin count across all bits of the group.
func (g *Group) NumPins() int {
	n := 0
	for i := range g.Bits {
		n += len(g.Bits[i].Pins)
	}
	return n
}

// MaxPins returns the maximum pin count of any bit in the group (the
// paper's per-benchmark Np statistic comes from this over all groups).
func (g *Group) MaxPins() int {
	m := 0
	for i := range g.Bits {
		if len(g.Bits[i].Pins) > m {
			m = len(g.Bits[i].Pins)
		}
	}
	return m
}

// GridSpec describes the routing grid of a design in serializable form.
type GridSpec struct {
	// W and H are grid dimensions in G-cells.
	W, H int
	// NumLayers is the size of the alternating H/V metal stack.
	NumLayers int
	// EdgeCap is the default per-edge track capacity on every layer.
	EdgeCap int
	// Blockages lists capacity-zero regions: each entry blocks one layer
	// inside a rectangle.
	Blockages []Blockage
	// Pitch scales G-cell wirelength into the physical unit used in
	// reports. Zero means 1.
	Pitch int
}

// Blockage zeroes (or reduces) edge capacity inside a rectangle on a layer.
type Blockage struct {
	// Layer is the blocked layer index.
	Layer int
	// Rect is the blocked cell region, inclusive.
	Rect geom.Rect
	// Cap is the residual capacity inside the region (usually 0).
	Cap int
}

// Design is a complete routing problem: a grid plus the signal groups.
type Design struct {
	// Name labels the design (e.g. "Industry3").
	Name string
	// Grid describes the routing fabric.
	Grid GridSpec
	// Groups holds the user-defined signal groups.
	Groups []Group
}

// Validate reports the first structural problem with the design, or nil:
// a usable grid (dimensions, positive layer count and edge capacity,
// blockages on existing layers), at least one signal group, per-bit
// structure (>= 2 pins, valid driver, no duplicate pin locations), and
// every pin inside the grid bounds. Errors name the offending group and
// bit so a caller can report exactly what to fix.
func (d *Design) Validate() error {
	if d.Grid.W < 2 || d.Grid.H < 2 {
		return fmt.Errorf("design %q: grid %dx%d too small", d.Name, d.Grid.W, d.Grid.H)
	}
	if d.Grid.NumLayers < 2 {
		return fmt.Errorf("design %q: need >= 2 layers", d.Name)
	}
	if d.Grid.EdgeCap < 1 {
		return fmt.Errorf("design %q: edge capacity %d, need >= 1", d.Name, d.Grid.EdgeCap)
	}
	if d.Grid.Pitch < 0 {
		return fmt.Errorf("design %q: negative pitch %d", d.Name, d.Grid.Pitch)
	}
	for i, b := range d.Grid.Blockages {
		if b.Layer < 0 || b.Layer >= d.Grid.NumLayers {
			return fmt.Errorf("design %q: blockage %d on layer %d, have %d layers", d.Name, i, b.Layer, d.Grid.NumLayers)
		}
		if b.Cap < 0 {
			return fmt.Errorf("design %q: blockage %d has negative capacity %d", d.Name, i, b.Cap)
		}
	}
	if len(d.Groups) == 0 {
		return fmt.Errorf("design %q has no signal groups", d.Name)
	}
	for i := range d.Groups {
		if err := d.Groups[i].Validate(); err != nil {
			return fmt.Errorf("design %q: %w", d.Name, err)
		}
	}
	for gi := range d.Groups {
		for bi := range d.Groups[gi].Bits {
			for _, p := range d.Groups[gi].Bits[bi].Pins {
				if p.Loc.X < 0 || p.Loc.X >= d.Grid.W || p.Loc.Y < 0 || p.Loc.Y >= d.Grid.H {
					return fmt.Errorf("design %q: pin %v of %s/%s off grid", d.Name,
						p.Loc, d.Groups[gi].Name, d.Groups[gi].Bits[bi].Name)
				}
			}
		}
	}
	return nil
}

// NumNets returns the total number of bits (nets) across all groups — the
// paper's "#Net" column.
func (d *Design) NumNets() int {
	n := 0
	for i := range d.Groups {
		n += len(d.Groups[i].Bits)
	}
	return n
}

// NumPins returns the total pin count of the design (x axis of Fig. 13).
func (d *Design) NumPins() int {
	n := 0
	for i := range d.Groups {
		n += d.Groups[i].NumPins()
	}
	return n
}

// MaxPins returns Np_max, the maximum pins of any net.
func (d *Design) MaxPins() int {
	m := 0
	for i := range d.Groups {
		if v := d.Groups[i].MaxPins(); v > m {
			m = v
		}
	}
	return m
}

// MaxWidth returns W_max, the maximum bit count of any group.
func (d *Design) MaxWidth() int {
	m := 0
	for i := range d.Groups {
		if len(d.Groups[i].Bits) > m {
			m = len(d.Groups[i].Bits)
		}
	}
	return m
}
