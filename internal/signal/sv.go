package signal

import (
	"fmt"
	"strings"

	"repro/internal/geom"
)

// NumDirs is the number of similarity-vector directions: four quadrants
// plus the four axis directions (Eq. 1).
const NumDirs = 8

// Direction indices, counter-clockwise from +x as in Eq. 1:
// {n(+x), n(I), n(+y), n(II), n(-x), n(III), n(-y), n(IV)}.
const (
	DirPosX = iota // on the +x axis
	DirQ1          // first quadrant  (dx>0, dy>0)
	DirPosY        // on the +y axis
	DirQ2          // second quadrant (dx<0, dy>0)
	DirNegX        // on the -x axis
	DirQ3          // third quadrant  (dx<0, dy<0)
	DirNegY        // on the -y axis
	DirQ4          // fourth quadrant (dx>0, dy<0)
)

// DirOf returns the SV direction of q as seen from p, or -1 when the points
// coincide (a coincident pin contributes to no direction).
func DirOf(p, q geom.Point) int {
	dx, dy := q.X-p.X, q.Y-p.Y
	switch {
	case dx == 0 && dy == 0:
		return -1
	case dx > 0 && dy == 0:
		return DirPosX
	case dx > 0 && dy > 0:
		return DirQ1
	case dx == 0 && dy > 0:
		return DirPosY
	case dx < 0 && dy > 0:
		return DirQ2
	case dx < 0 && dy == 0:
		return DirNegX
	case dx < 0 && dy < 0:
		return DirQ3
	case dx == 0 && dy < 0:
		return DirNegY
	default:
		return DirQ4
	}
}

// SV is a similarity vector: per direction, the number of other pins of the
// bit seen in that direction (Eq. 1). Driver-weighted variants add
// DriverWeight for the driver pin so that drivers map to drivers when bits
// have different pin counts (§III-B3).
type SV [NumDirs]int

// String renders the vector as "{a,b,...}" matching the paper's notation.
func (v SV) String() string {
	parts := make([]string, NumDirs)
	for i, n := range v {
		parts[i] = fmt.Sprint(n)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// L1 returns the L1 distance between two similarity vectors, the metric
// used to find "the most probable pin of another bit" during regularity
// evaluation.
func (v SV) L1(w SV) int {
	d := 0
	for i := range v {
		d += iabs(v[i] - w[i])
	}
	return d
}

// SVOf computes the similarity vector of the point p relative to the given
// other points. Points coincident with p are skipped.
func SVOf(p geom.Point, others []geom.Point) SV {
	var v SV
	for _, q := range others {
		if d := DirOf(p, q); d >= 0 {
			v[d]++
		}
	}
	return v
}

// PinSV returns the similarity vector of pin i of the bit: the direction
// histogram of every other pin of the bit as seen from pin i.
func (b *Bit) PinSV(i int) SV {
	var v SV
	from := b.Pins[i].Loc
	for j, q := range b.Pins {
		if j == i {
			continue
		}
		if d := DirOf(from, q.Loc); d >= 0 {
			v[d]++
		}
	}
	return v
}

// DriverSV returns the similarity vector of the bit's driver.
func (b *Bit) DriverSV() SV { return b.PinSV(b.Driver) }

// WeightedPinSV returns the driver-weighted SV of pin i: like PinSV, but
// the driver pin contributes `weight` instead of 1 to its direction bucket.
// The paper sets weight above the total pin count so that the relative
// position to the driver dominates pin matching across bits with different
// pin counts (§III-B3).
func (b *Bit) WeightedPinSV(i, weight int) SV {
	var v SV
	from := b.Pins[i].Loc
	for j, q := range b.Pins {
		if j == i {
			continue
		}
		d := DirOf(from, q.Loc)
		if d < 0 {
			continue
		}
		if j == b.Driver {
			v[d] += weight
		} else {
			v[d]++
		}
	}
	return v
}

// DriverWeightFor returns the driver weight to use for a bit: one more than
// the pin count, "higher than the overall number of pins".
func DriverWeightFor(b *Bit) int { return len(b.Pins) + 1 }

// WeightedPointSV computes the driver-weighted SV of an arbitrary point
// (e.g. a topology bending point) relative to the bit's pins.
func WeightedPointSV(p geom.Point, b *Bit, weight int) SV {
	var v SV
	for j, q := range b.Pins {
		d := DirOf(p, q.Loc)
		if d < 0 {
			continue
		}
		if j == b.Driver {
			v[d] += weight
		} else {
			v[d]++
		}
	}
	return v
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
