package signal

import (
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestDirOf(t *testing.T) {
	p := geom.Pt(0, 0)
	cases := []struct {
		q    geom.Point
		want int
	}{
		{geom.Pt(5, 0), DirPosX},
		{geom.Pt(5, 5), DirQ1},
		{geom.Pt(0, 5), DirPosY},
		{geom.Pt(-5, 5), DirQ2},
		{geom.Pt(-5, 0), DirNegX},
		{geom.Pt(-5, -5), DirQ3},
		{geom.Pt(0, -5), DirNegY},
		{geom.Pt(5, -5), DirQ4},
		{geom.Pt(0, 0), -1},
	}
	for _, c := range cases {
		if got := DirOf(p, c.q); got != c.want {
			t.Errorf("DirOf(%v,%v) = %d, want %d", p, c.q, got, c.want)
		}
	}
}

func TestDirOfOppositeDirections(t *testing.T) {
	// Swapping p and q lands in the opposite bucket (rotated by 4).
	f := func(px, py, qx, qy int8) bool {
		p, q := geom.Pt(int(px), int(py)), geom.Pt(int(qx), int(qy))
		d1, d2 := DirOf(p, q), DirOf(q, p)
		if d1 == -1 {
			return d2 == -1
		}
		return d2 == (d1+4)%NumDirs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// paperFig5aBit reproduces the Fig. 5(a) example: driver in the middle with
// one sink in each of the 8 directions.
func paperFig5aBit() Bit {
	return Bit{
		Name:   "fig5a",
		Driver: 0,
		Pins: []Pin{
			{Loc: geom.Pt(0, 0)},
			{Loc: geom.Pt(3, 0)},   // +x
			{Loc: geom.Pt(3, 3)},   // I
			{Loc: geom.Pt(0, 3)},   // +y
			{Loc: geom.Pt(-3, 3)},  // II
			{Loc: geom.Pt(-3, 0)},  // -x
			{Loc: geom.Pt(-3, -3)}, // III
			{Loc: geom.Pt(0, -3)},  // -y
			{Loc: geom.Pt(3, -3)},  // IV
		},
	}
}

func TestPinSVPaperExample(t *testing.T) {
	b := paperFig5aBit()
	got := b.DriverSV()
	want := SV{1, 1, 1, 1, 1, 1, 1, 1}
	if got != want {
		t.Errorf("driver SV = %v, want %v", got, want)
	}
	if got.String() != "{1,1,1,1,1,1,1,1}" {
		t.Errorf("String = %s", got.String())
	}
}

func TestPinSVTwoPinStyles(t *testing.T) {
	// Fig. 3(a) top routing style: driver with a sink to its +x side.
	b := Bit{Driver: 0, Pins: []Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(4, 0)}}}
	if got := b.PinSV(0); got != (SV{1, 0, 0, 0, 0, 0, 0, 0}) {
		t.Errorf("driver SV = %v", got)
	}
	if got := b.PinSV(1); got != (SV{0, 0, 0, 0, 1, 0, 0, 0}) {
		t.Errorf("sink SV = %v", got)
	}
}

func TestSVTranslationInvariant(t *testing.T) {
	f := func(dx, dy int8) bool {
		b := paperFig5aBit()
		moved := Bit{Driver: b.Driver, Pins: make([]Pin, len(b.Pins))}
		d := geom.Pt(int(dx), int(dy))
		for i, p := range b.Pins {
			moved.Pins[i] = Pin{Loc: p.Loc.Add(d)}
		}
		for i := range b.Pins {
			if b.PinSV(i) != moved.PinSV(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSVScaleInvariant(t *testing.T) {
	// SV depends on direction only, not distance.
	b := paperFig5aBit()
	scaled := Bit{Driver: 0, Pins: make([]Pin, len(b.Pins))}
	for i, p := range b.Pins {
		scaled.Pins[i] = Pin{Loc: geom.Pt(p.Loc.X*7, p.Loc.Y*7)}
	}
	for i := range b.Pins {
		if b.PinSV(i) != scaled.PinSV(i) {
			t.Fatalf("pin %d SV changed under scaling", i)
		}
	}
}

func TestWeightedPinSV(t *testing.T) {
	b := Bit{Driver: 0, Pins: []Pin{
		{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(2, 2)}, {Loc: geom.Pt(4, 4)},
	}}
	w := DriverWeightFor(&b)
	if w != 4 {
		t.Fatalf("DriverWeightFor = %d, want 4", w)
	}
	// From sink 1: driver in Q3 with weight, sink 2 in Q1.
	got := b.WeightedPinSV(1, w)
	want := SV{0, 1, 0, 0, 0, 4, 0, 0}
	if got != want {
		t.Errorf("weighted SV = %v, want %v", got, want)
	}
	// Unweighted equals PinSV with weight 1.
	if b.WeightedPinSV(1, 1) != b.PinSV(1) {
		t.Error("weight 1 should equal PinSV")
	}
}

func TestWeightedPointSV(t *testing.T) {
	b := Bit{Driver: 0, Pins: []Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(4, 0)}}}
	got := WeightedPointSV(geom.Pt(2, 0), &b, 5)
	want := SV{1, 0, 0, 0, 5, 0, 0, 0} // sink at +x, driver at -x weighted
	if got != want {
		t.Errorf("point SV = %v, want %v", got, want)
	}
	// A point coincident with a pin skips that pin.
	got = WeightedPointSV(geom.Pt(0, 0), &b, 5)
	want = SV{1, 0, 0, 0, 0, 0, 0, 0}
	if got != want {
		t.Errorf("coincident point SV = %v, want %v", got, want)
	}
}

func TestSVL1(t *testing.T) {
	a := SV{1, 0, 2, 0, 0, 0, 0, 0}
	b := SV{0, 1, 2, 0, 0, 0, 0, 3}
	if got := a.L1(b); got != 5 {
		t.Errorf("L1 = %d, want 5", got)
	}
	if a.L1(a) != 0 {
		t.Error("L1 with self should be 0")
	}
	f := func(v1, v2 [NumDirs]uint8) bool {
		var a, b SV
		for i := range a {
			a[i], b[i] = int(v1[i]), int(v2[i])
		}
		return a.L1(b) == b.L1(a) && a.L1(b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSVOf(t *testing.T) {
	v := SVOf(geom.Pt(0, 0), []geom.Point{geom.Pt(1, 0), geom.Pt(1, 0), geom.Pt(0, 0)})
	if v != (SV{2, 0, 0, 0, 0, 0, 0, 0}) {
		t.Errorf("SVOf = %v", v)
	}
}
