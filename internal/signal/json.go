package signal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the design to w as indented JSON.
func (d *Design) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadJSON parses a design from r and validates it.
func ReadJSON(r io.Reader) (*Design, error) {
	var d Design
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("signal: decoding design: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// SaveFile writes the design to the named file. The file is closed exactly
// once so the close error (the write may only surface there) is reported.
func (d *Design) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("signal: creating %s: %w", path, err)
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("signal: writing %s: %w", path, err)
	}
	return nil
}

// LoadFile reads and validates a design from the named file.
func LoadFile(path string) (*Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("signal: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSON(f)
}
