package signal

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
)

func sampleDesign() *Design {
	return &Design{
		Name: "sample",
		Grid: GridSpec{W: 16, H: 16, NumLayers: 4, EdgeCap: 4, Pitch: 10,
			Blockages: []Blockage{{Layer: 0, Rect: geom.Rect{Lo: geom.Pt(4, 4), Hi: geom.Pt(6, 6)}}}},
		Groups: []Group{
			{
				Name: "g0",
				Bits: []Bit{
					{Name: "b0", Driver: 0, Pins: []Pin{{Loc: geom.Pt(1, 1)}, {Loc: geom.Pt(9, 1)}}},
					{Name: "b1", Driver: 0, Pins: []Pin{{Loc: geom.Pt(1, 2)}, {Loc: geom.Pt(9, 2)}}},
				},
			},
			{
				Name: "g1",
				Bits: []Bit{
					{Name: "m0", Driver: 1, Pins: []Pin{{Loc: geom.Pt(3, 10)}, {Loc: geom.Pt(2, 8)}, {Loc: geom.Pt(6, 12)}}},
				},
			},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleDesign().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Design)
		want   string
	}{
		{func(d *Design) { d.Grid.W = 1 }, "too small"},
		{func(d *Design) { d.Grid.NumLayers = 1 }, "layers"},
		{func(d *Design) { d.Groups[0].Bits = nil }, "empty"},
		{func(d *Design) { d.Groups[0].Bits[0].Pins = d.Groups[0].Bits[0].Pins[:1] }, "pins"},
		{func(d *Design) { d.Groups[0].Bits[0].Driver = 5 }, "driver"},
		{func(d *Design) { d.Groups[1].Bits[0].Pins[2].Loc = geom.Pt(99, 99) }, "off grid"},
		{func(d *Design) { d.Grid.EdgeCap = 0 }, "edge capacity"},
		{func(d *Design) { d.Grid.EdgeCap = -3 }, "edge capacity"},
		{func(d *Design) { d.Grid.Pitch = -1 }, "pitch"},
		{func(d *Design) { d.Grid.Blockages[0].Layer = 9 }, "blockage"},
		{func(d *Design) { d.Grid.Blockages[0].Cap = -1 }, "blockage"},
		{func(d *Design) { d.Groups = nil }, "no signal groups"},
		{func(d *Design) { d.Groups[0].Bits[1].Pins[1].Loc = d.Groups[0].Bits[1].Pins[0].Loc }, "both at"},
	}
	for i, c := range cases {
		d := sampleDesign()
		c.mutate(d)
		err := d.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want contains %q", i, err, c.want)
		}
	}
}

// TestValidateNamesOffender pins that a duplicate-pin error names the
// design, group, and bit so server/CLI callers can report what to fix.
func TestValidateNamesOffender(t *testing.T) {
	d := sampleDesign()
	d.Groups[0].Bits[1].Pins[1].Loc = d.Groups[0].Bits[1].Pins[0].Loc
	err := d.Validate()
	if err == nil {
		t.Fatal("duplicate pin accepted")
	}
	for _, frag := range []string{`"sample"`, `"g0"`, `"b1"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("err %q does not name %s", err, frag)
		}
	}
}

func TestCounters(t *testing.T) {
	d := sampleDesign()
	if d.NumNets() != 3 {
		t.Errorf("NumNets = %d", d.NumNets())
	}
	if d.NumPins() != 7 {
		t.Errorf("NumPins = %d", d.NumPins())
	}
	if d.MaxPins() != 3 {
		t.Errorf("MaxPins = %d", d.MaxPins())
	}
	if d.MaxWidth() != 2 {
		t.Errorf("MaxWidth = %d", d.MaxWidth())
	}
}

func TestBitHelpers(t *testing.T) {
	b := sampleDesign().Groups[1].Bits[0]
	if b.DriverLoc() != geom.Pt(2, 8) {
		t.Errorf("DriverLoc = %v", b.DriverLoc())
	}
	sinks := b.Sinks()
	if len(sinks) != 2 || sinks[0] != 0 || sinks[1] != 2 {
		t.Errorf("Sinks = %v", sinks)
	}
	locs := b.PinLocs()
	if len(locs) != 3 || locs[1] != geom.Pt(2, 8) {
		t.Errorf("PinLocs = %v", locs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := sampleDesign()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.Name != d.Name || got.NumNets() != d.NumNets() || got.NumPins() != d.NumPins() {
		t.Error("round trip changed design stats")
	}
	if got.Groups[1].Bits[0].Driver != 1 {
		t.Error("driver index lost")
	}
	if len(got.Grid.Blockages) != 1 {
		t.Error("blockages lost")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"Name":"x","Grid":{"W":1,"H":1,"NumLayers":2,"EdgeCap":1}}`)); err == nil {
		t.Error("invalid design accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"Bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	d := sampleDesign()
	path := filepath.Join(t.TempDir(), "design.json")
	if err := d.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Name != "sample" || got.NumNets() != 3 {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestGroupMaxPins(t *testing.T) {
	g := sampleDesign().Groups[1]
	if g.MaxPins() != 3 || g.NumPins() != 3 {
		t.Errorf("MaxPins=%d NumPins=%d", g.MaxPins(), g.NumPins())
	}
}
