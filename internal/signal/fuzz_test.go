package signal

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
)

// FuzzReadJSON proves ReadJSON plus Validate never panic on malformed
// designs: whatever bytes arrive, the pair either yields a design that
// passes validation and survives a serialization round-trip, or a plain
// error.
func FuzzReadJSON(f *testing.F) {
	valid := &Design{
		Name: "fuzz-seed",
		Grid: GridSpec{W: 8, H: 8, NumLayers: 4, EdgeCap: 10,
			Blockages: []Blockage{{Layer: 1, Rect: geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(2, 2)}}}},
		Groups: []Group{{
			Name: "g0",
			Bits: []Bit{
				{Name: "b0", Driver: 0, Pins: []Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(3, 3)}}},
				{Name: "b1", Driver: 1, Pins: []Pin{{Loc: geom.Pt(0, 1)}, {Loc: geom.Pt(3, 4)}}},
			},
		}},
	}
	var buf bytes.Buffer
	if err := valid.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2]) // truncated mid-document
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"Unknown":1}`))
	f.Add([]byte(`{"Name":"x","Grid":{"W":-1,"H":2,"NumLayers":2}}`))
	f.Add([]byte(`{"Grid":{"W":8,"H":8,"NumLayers":2},"Groups":[{"Bits":[{"Driver":7,"Pins":[{},{}]}]}]}`))
	f.Add([]byte(`{"Grid":{"W":8,"H":8,"NumLayers":2},"Groups":[{"Bits":[{"Pins":[{"Loc":{"X":99,"Y":-3}},{}]}]}]}`))
	f.Add([]byte(strings.Repeat(`{"Groups":[`, 50)))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			if d != nil {
				t.Fatalf("error %v with non-nil design", err)
			}
			return
		}
		if d == nil {
			t.Fatal("nil design with nil error")
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted a design Validate rejects: %v", verr)
		}
		var out bytes.Buffer
		if werr := d.WriteJSON(&out); werr != nil {
			t.Fatalf("round-trip write failed: %v", werr)
		}
	})
}
