package viz

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/pd"
	"repro/internal/route"
	"repro/internal/signal"
)

func vizDesign() (*signal.Design, *route.Problem, *route.Routing) {
	d := &signal.Design{
		Name: "viz",
		Grid: signal.GridSpec{W: 20, H: 20, NumLayers: 4, EdgeCap: 4},
		Groups: []signal.Group{
			{Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 2)}, {Loc: geom.Pt(12, 2)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 3)}, {Loc: geom.Pt(12, 3)}}},
			}},
			{Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(4, 8)}, {Loc: geom.Pt(10, 14)}}},
			}},
		},
	}
	p, err := route.Build(d, route.Options{})
	if err != nil {
		panic(err)
	}
	res := pd.Solve(p)
	return d, p, p.ExtractRouting(res.Assignment)
}

func TestWriteSVG(t *testing.T) {
	d, _, r := vizDesign()
	var sb strings.Builder
	if err := WriteSVG(&sb, d, r, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// Two groups -> two distinct colors.
	if !strings.Contains(out, palette[0]) || !strings.Contains(out, palette[1]) {
		t.Error("group colors missing")
	}
	// Drivers are squares, sinks circles.
	if !strings.Contains(out, "<rect") || !strings.Contains(out, "<circle") {
		t.Error("pin markers missing")
	}
	// Routed wires appear as lines beyond the grid lines.
	if strings.Count(out, "<line") <= (d.Grid.W+1)+(d.Grid.H+1) {
		t.Error("no wire lines rendered")
	}
}

func TestWriteSVGOnlyGroups(t *testing.T) {
	d, _, r := vizDesign()
	var sb strings.Builder
	if err := WriteSVG(&sb, d, r, Options{OnlyGroups: []int{1}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, palette[0]) {
		t.Error("group 0 rendered despite OnlyGroups filter")
	}
	if !strings.Contains(out, palette[1]) {
		t.Error("group 1 missing")
	}
}

func TestWriteSVGShowUnrouted(t *testing.T) {
	d, p, _ := vizDesign()
	// Nothing routed: unrouted boxes drawn when requested.
	empty := p.NewRouting()
	var sb strings.Builder
	if err := WriteSVG(&sb, d, empty, Options{ShowUnrouted: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stroke-dasharray=\"2 2\"") {
		t.Error("unrouted boxes missing")
	}
	var sb2 strings.Builder
	if err := WriteSVG(&sb2, d, empty, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "stroke-dasharray=\"2 2\"") {
		t.Error("unrouted boxes drawn without ShowUnrouted")
	}
}

func TestWriteSVGCellSize(t *testing.T) {
	d, _, r := vizDesign()
	var sb strings.Builder
	if err := WriteSVG(&sb, d, r, Options{CellPx: 16}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `width="336"`) { // (20+1)*16
		t.Errorf("unexpected canvas size:\n%s", sb.String()[:120])
	}
}

// TestWriteSVGCongestionTint checks the Usage option: tinted cell rects
// appear behind the wires (before the grid group in document order), use
// the congestion palette, and vanish when Usage is nil.
func TestWriteSVGCongestionTint(t *testing.T) {
	d, p, r := vizDesign()
	u := r.UsageOf(p.Grid)
	var sb strings.Builder
	if err := WriteSVG(&sb, d, r, Options{Usage: u}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	tinted := false
	for _, c := range congPalette {
		if c != "" && strings.Contains(out, c) {
			tinted = true
			break
		}
	}
	if !tinted {
		t.Error("no congestion tint rects in SVG despite routed usage")
	}
	// The tint group must precede the grid lines so wires stay on top.
	tintAt := strings.Index(out, `<g stroke="none">`)
	gridAt := strings.Index(out, `<g stroke="#eeeeee"`)
	if tintAt < 0 || gridAt < 0 || tintAt > gridAt {
		t.Errorf("tint group at %d, grid at %d; want tint first", tintAt, gridAt)
	}

	var plain strings.Builder
	if err := WriteSVG(&plain, d, r, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, c := range congPalette {
		if c != "" && strings.Contains(plain.String(), c) {
			t.Errorf("tint color %s present without Usage", c)
		}
	}
}

// TestWriteSVGOverflowTint drives one edge past capacity and checks the
// overflow color shows up.
func TestWriteSVGOverflowTint(t *testing.T) {
	d, p, r := vizDesign()
	u := r.UsageOf(p.Grid)
	u.Add(0, 0, 1000) // force overflow on the first horizontal edge
	var sb strings.Builder
	if err := WriteSVG(&sb, d, r, Options{Usage: u}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), congPalette[len(congPalette)-1]) {
		t.Error("overflowed cell not tinted with the overflow color")
	}
}
