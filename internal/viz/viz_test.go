package viz

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/pd"
	"repro/internal/route"
	"repro/internal/signal"
)

func vizDesign() (*signal.Design, *route.Problem, *route.Routing) {
	d := &signal.Design{
		Name: "viz",
		Grid: signal.GridSpec{W: 20, H: 20, NumLayers: 4, EdgeCap: 4},
		Groups: []signal.Group{
			{Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 2)}, {Loc: geom.Pt(12, 2)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 3)}, {Loc: geom.Pt(12, 3)}}},
			}},
			{Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(4, 8)}, {Loc: geom.Pt(10, 14)}}},
			}},
		},
	}
	p, err := route.Build(d, route.Options{})
	if err != nil {
		panic(err)
	}
	res := pd.Solve(p)
	return d, p, p.ExtractRouting(res.Assignment)
}

func TestWriteSVG(t *testing.T) {
	d, _, r := vizDesign()
	var sb strings.Builder
	if err := WriteSVG(&sb, d, r, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// Two groups -> two distinct colors.
	if !strings.Contains(out, palette[0]) || !strings.Contains(out, palette[1]) {
		t.Error("group colors missing")
	}
	// Drivers are squares, sinks circles.
	if !strings.Contains(out, "<rect") || !strings.Contains(out, "<circle") {
		t.Error("pin markers missing")
	}
	// Routed wires appear as lines beyond the grid lines.
	if strings.Count(out, "<line") <= (d.Grid.W+1)+(d.Grid.H+1) {
		t.Error("no wire lines rendered")
	}
}

func TestWriteSVGOnlyGroups(t *testing.T) {
	d, _, r := vizDesign()
	var sb strings.Builder
	if err := WriteSVG(&sb, d, r, Options{OnlyGroups: []int{1}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, palette[0]) {
		t.Error("group 0 rendered despite OnlyGroups filter")
	}
	if !strings.Contains(out, palette[1]) {
		t.Error("group 1 missing")
	}
}

func TestWriteSVGShowUnrouted(t *testing.T) {
	d, p, _ := vizDesign()
	// Nothing routed: unrouted boxes drawn when requested.
	empty := p.NewRouting()
	var sb strings.Builder
	if err := WriteSVG(&sb, d, empty, Options{ShowUnrouted: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stroke-dasharray=\"2 2\"") {
		t.Error("unrouted boxes missing")
	}
	var sb2 strings.Builder
	if err := WriteSVG(&sb2, d, empty, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "stroke-dasharray=\"2 2\"") {
		t.Error("unrouted boxes drawn without ShowUnrouted")
	}
}

func TestWriteSVGCellSize(t *testing.T) {
	d, _, r := vizDesign()
	var sb strings.Builder
	if err := WriteSVG(&sb, d, r, Options{CellPx: 16}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `width="336"`) { // (20+1)*16
		t.Errorf("unexpected canvas size:\n%s", sb.String()[:120])
	}
}
