// Package viz renders routed designs as SVG: one color per signal group,
// one stroke style per layer pair, pins as dots, drivers as squares. The
// images make topology regularity visually obvious — parallel trunks with
// concurrent bending points, the property the whole flow optimizes.
package viz

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/signal"
)

// Options tunes the rendering.
type Options struct {
	// CellPx is the pixel size of one G-cell. Default 8.
	CellPx int
	// ShowUnrouted draws dashed bounding boxes for unrouted bits.
	ShowUnrouted bool
	// OnlyGroups restricts rendering to the listed group indices (nil =
	// all groups).
	OnlyGroups []int
	// Usage, when non-nil, tints G-cells by track utilization behind the
	// routed groups (the SVG analogue of the paper's congestion figures),
	// using the same utilization bucketing as the telemetry congestion
	// snapshots.
	Usage *grid.Usage
}

func (o Options) withDefaults() Options {
	if o.CellPx == 0 {
		o.CellPx = 8
	}
	return o
}

// palette is a color-blind-friendly cycle for group coloring.
var palette = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7",
	"#e69f00", "#56b4e9", "#f0e442", "#999999",
}

// congPalette maps obs.UtilBucket indices to background tints: buckets 1-9
// ramp light yellow to deep orange, HistBuckets-2 (exactly full) is red,
// HistBuckets-1 (overflow) dark red. Bucket 0 (<10% utilization) draws no
// tint at all, keeping uncongested regions white.
var congPalette = [obs.HistBuckets]string{
	1:  "#fffbe6",
	2:  "#fff3bf",
	3:  "#ffec99",
	4:  "#ffe066",
	5:  "#ffd43b",
	6:  "#ffc078",
	7:  "#ffa94d",
	8:  "#ff922b",
	9:  "#fd7e14",
	10: "#fa5252", // exactly full
	11: "#c92a2a", // overflow
}

// WriteSVG renders the routing of a design to w.
func WriteSVG(w io.Writer, d *signal.Design, r *route.Routing, opt Options) error {
	opt = opt.withDefaults()
	px := opt.CellPx
	width := (d.Grid.W + 1) * px
	height := (d.Grid.H + 1) * px

	var only map[int]bool
	if opt.OnlyGroups != nil {
		only = make(map[int]bool)
		for _, gi := range opt.OnlyGroups {
			only[gi] = true
		}
	}

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)

	// Congestion tint: one rect per G-cell whose peak-layer utilization
	// leaves bucket 0, drawn before the grid lines and wires so routing
	// stays legible on top. CellCongestion reports per-mille; /10 gives the
	// percentage obs.UtilBucket expects.
	if opt.Usage != nil {
		fmt.Fprintln(w, `<g stroke="none">`)
		for y, row := range opt.Usage.CellCongestion() {
			for x, perMille := range row {
				pct := perMille / 10
				if perMille > 1000 && pct == 100 {
					pct = 101 // keep barely-overflowed cells in the overflow bucket
				}
				b := obs.UtilBucket(pct)
				if congPalette[b] == "" {
					continue
				}
				fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
					x*px, y*px, px, px, congPalette[b])
			}
		}
		fmt.Fprintln(w, `</g>`)
	}

	// Light G-cell grid.
	fmt.Fprintf(w, `<g stroke="#eeeeee" stroke-width="0.5">`+"\n")
	for x := 0; x <= d.Grid.W; x++ {
		fmt.Fprintf(w, `<line x1="%d" y1="0" x2="%d" y2="%d"/>`+"\n", x*px, x*px, height)
	}
	for y := 0; y <= d.Grid.H; y++ {
		fmt.Fprintf(w, `<line x1="0" y1="%d" x2="%d" y2="%d"/>`+"\n", y*px, width, y*px)
	}
	fmt.Fprintln(w, `</g>`)

	// Wires, one <g> per signal group.
	for gi := range d.Groups {
		if only != nil && !only[gi] {
			continue
		}
		color := palette[gi%len(palette)]
		fmt.Fprintf(w, `<g stroke="%s" stroke-width="2" fill="none" stroke-linecap="round">`+"\n", color)
		for bi := range d.Groups[gi].Bits {
			br := r.Bits[gi][bi]
			if !br.Routed {
				continue
			}
			segs := br.Tree.Canon().Segs
			sort.Slice(segs, func(a, b int) bool {
				if segs[a].A != segs[b].A {
					return segs[a].A.Less(segs[b].A)
				}
				return segs[a].B.Less(segs[b].B)
			})
			for _, s := range segs {
				dash := ""
				if br.HLayer > 0 && s.Horizontal() || br.VLayer > 1 && s.Vertical() && s.Len() > 0 {
					dash = ` stroke-dasharray="4 2"` // upper-layer trunks dashed
				}
				fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d"%s/>`+"\n",
					s.A.X*px+px/2, s.A.Y*px+px/2, s.B.X*px+px/2, s.B.Y*px+px/2, dash)
			}
		}
		fmt.Fprintln(w, `</g>`)

		// Pins: drivers as squares, sinks as dots.
		fmt.Fprintf(w, `<g fill="%s">`+"\n", color)
		for bi := range d.Groups[gi].Bits {
			bit := &d.Groups[gi].Bits[bi]
			for pi, p := range bit.Pins {
				cx, cy := p.Loc.X*px+px/2, p.Loc.Y*px+px/2
				if pi == bit.Driver {
					fmt.Fprintf(w, `<rect x="%d" y="%d" width="%d" height="%d"/>`+"\n",
						cx-px/4, cy-px/4, px/2, px/2)
				} else {
					fmt.Fprintf(w, `<circle cx="%d" cy="%d" r="%d"/>`+"\n", cx, cy, px/4)
				}
			}
		}
		fmt.Fprintln(w, `</g>`)

		if opt.ShowUnrouted {
			for bi := range d.Groups[gi].Bits {
				if r.Bits[gi][bi].Routed {
					continue
				}
				locs := d.Groups[gi].Bits[bi].PinLocs()
				minX, minY, maxX, maxY := locs[0].X, locs[0].Y, locs[0].X, locs[0].Y
				for _, p := range locs[1:] {
					minX, maxX = min(minX, p.X), max(maxX, p.X)
					minY, maxY = min(minY, p.Y), max(maxY, p.Y)
				}
				fmt.Fprintf(w,
					`<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="%s" stroke-dasharray="2 2"/>`+"\n",
					minX*px, minY*px, (maxX-minX+1)*px, (maxY-minY+1)*px, color)
			}
		}
	}

	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}
