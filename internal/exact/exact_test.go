package exact

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/pd"
	"repro/internal/route"
	"repro/internal/signal"
)

func tinyDesign() *signal.Design {
	return &signal.Design{
		Name: "tiny",
		Grid: signal.GridSpec{W: 20, H: 20, NumLayers: 4, EdgeCap: 4},
		Groups: []signal.Group{
			{Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 2)}, {Loc: geom.Pt(12, 2)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 3)}, {Loc: geom.Pt(12, 3)}}},
			}},
			{Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(4, 8)}, {Loc: geom.Pt(10, 14)}}},
			}},
		},
	}
}

// bruteForce enumerates every assignment (including unrouted) and returns
// the minimum legal objective.
func bruteForce(p *route.Problem) float64 {
	best := math.Inf(1)
	a := p.NewAssignment()
	var rec func(i int)
	rec = func(i int) {
		if i == len(p.Objects) {
			if p.Legal(a) == nil {
				if v := p.ObjectiveValue(a); v < best {
					best = v
				}
			}
			return
		}
		for j := -1; j < len(p.Cands[i]); j++ {
			a.Choice[i] = j
			rec(i + 1)
		}
		a.Choice[i] = -1
	}
	rec(0)
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	p, err := route.Build(tinyDesign(), route.Options{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.TimedOut {
		t.Fatal("unexpected timeout on tiny model")
	}
	want := bruteForce(p)
	if math.Abs(res.Objective-want) > 1e-6 {
		t.Fatalf("objective = %v, want %v", res.Objective, want)
	}
	if err := p.Legal(res.Assignment); err != nil {
		t.Fatalf("ILP assignment illegal: %v", err)
	}
}

func TestSolveMatchesBruteForceUnderTightCapacity(t *testing.T) {
	d := tinyDesign()
	d.Grid.EdgeCap = 1
	p, err := route.Build(d, route.Options{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(p)
	if math.Abs(res.Objective-want) > 1e-6 {
		t.Fatalf("objective = %v, want %v", res.Objective, want)
	}
	if err := p.Legal(res.Assignment); err != nil {
		t.Fatalf("assignment illegal: %v", err)
	}
}

func TestSolveAtLeastAsGoodAsPrimalDual(t *testing.T) {
	p, err := route.Build(tinyDesign(), route.Options{MaxCandidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	pdRes := pd.Solve(p)
	ilpRes, err := Solve(p, Options{WarmStart: &pdRes.Assignment})
	if err != nil {
		t.Fatal(err)
	}
	if ilpRes.Objective > pdRes.Objective+1e-6 {
		t.Fatalf("ILP objective %v worse than PD %v", ilpRes.Objective, pdRes.Objective)
	}
}

func TestSolveTimeLimitReportsTimeout(t *testing.T) {
	// Congested multi-group design with a 1 ns limit: must time out
	// gracefully, never crash, and stay legal if it reports an assignment.
	d := &signal.Design{
		Name: "congested",
		Grid: signal.GridSpec{W: 24, H: 24, NumLayers: 4, EdgeCap: 2},
	}
	for gi := 0; gi < 4; gi++ {
		var g signal.Group
		for b := 0; b < 3; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Driver: 0,
				Pins:   []signal.Pin{{Loc: geom.Pt(2, 2+gi+b)}, {Loc: geom.Pt(20, 2+gi+b)}},
			})
		}
		d.Groups = append(d.Groups, g)
	}
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, Options{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.TimedOut {
		t.Skip("solver finished within a nanosecond timer tick; nothing to assert")
	}
	if res.Assignment.Choice != nil {
		if err := p.Legal(res.Assignment); err != nil {
			t.Fatalf("timed-out assignment illegal: %v", err)
		}
	}
}

func TestSolveMaxVarsGuard(t *testing.T) {
	p, err := route.Build(tinyDesign(), route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(p, Options{MaxVars: 1}); err == nil {
		t.Fatal("MaxVars guard did not trigger")
	}
}

func TestWarmStartSpeedsOrEqualsCold(t *testing.T) {
	p, err := route.Build(tinyDesign(), route.Options{MaxCandidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	pdRes := pd.Solve(p)
	warm, err := Solve(p, Options{WarmStart: &pdRes.Assignment})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
		t.Fatalf("warm %v != cold %v", warm.Objective, cold.Objective)
	}
}
