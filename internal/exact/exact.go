// Package exact solves Streak's formulation (3) exactly: it linearizes the
// quadratic regularity term with product variables (the standard
// y >= x1 + x2 - 1 relaxation, exact here because the products carry
// nonnegative costs under minimization) and hands the 0/1 program to the
// internal ILP solver. It plays the role GUROBI plays in the paper,
// including the time-limit behaviour on congested benchmarks.
package exact

import (
	"context"
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ilp"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/topo"
)

// Options tunes the exact solve.
type Options struct {
	// TimeLimit bounds the ILP solve (the paper uses 3600 s). Zero means
	// no limit.
	TimeLimit time.Duration
	// WarmStart, when non-nil, primes branch and bound with a known
	// feasible assignment (typically the primal-dual solution).
	WarmStart *route.Assignment
	// MaxVars aborts model construction when the linearized model would
	// exceed this many variables — a guard against building LPs the dense
	// simplex cannot hold in memory. Zero means 40000.
	MaxVars int
}

// Result is the outcome of an exact solve.
type Result struct {
	// Assignment is the best selection found.
	Assignment route.Assignment
	// Objective is the formulation (3a) value of Assignment.
	Objective float64
	// Status is the underlying ILP status.
	Status ilp.Status
	// TimedOut is true when the time limit interrupted the proof of
	// optimality (report as "> limit" like the paper's congested rows).
	TimedOut bool
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
	// Vars and Cons are the linearized model dimensions.
	Vars, Cons int
}

// pairTerm records one product variable linking two candidates.
type pairTerm struct {
	i, j, q, r int
	cost       float64
}

// Solve builds the linearized ILP for the problem and solves it.
func Solve(p *route.Problem, opt Options) (Result, error) {
	return SolveCtx(context.Background(), p, opt)
}

// SolveCtx is Solve honoring the context: cancellation aborts both model
// construction and the branch-and-bound search and returns ctx.Err(); a
// context deadline acts exactly like Options.TimeLimit (whichever expires
// first wins), so callers can drive the exact leg with one deadline
// mechanism.
func SolveCtx(ctx context.Context, p *route.Problem, opt Options) (Result, error) {
	var res Result
	err := obs.Do(ctx, obs.StageILP, 0, func(ctx context.Context) error {
		var err error
		res, err = solveCtx(ctx, p, opt)
		return err
	})
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add(obs.CounterExactVars, int64(res.Vars))
		rec.Add(obs.CounterExactCons, int64(res.Cons))
	}
	return res, err
}

// solveCtx is the span-free body of SolveCtx.
func solveCtx(ctx context.Context, p *route.Problem, opt Options) (Result, error) {
	start := time.Now()
	if err := faultinject.Fire(ctx, faultinject.ExactSolve); err != nil {
		return Result{}, fmt.Errorf("exact: %w", err)
	}
	maxVars := opt.MaxVars
	if maxVars == 0 {
		maxVars = 40000
	}

	// Variable layout: one binary per (object, candidate), then one
	// continuous product variable per costed same-group candidate pair.
	xIdx := make([][]int, len(p.Cands))
	nx := 0
	for i := range p.Cands {
		xIdx[i] = make([]int, len(p.Cands[i]))
		for j := range p.Cands[i] {
			xIdx[i][j] = nx
			nx++
		}
	}

	var pairs []pairTerm
	for i := range p.Objects {
		if err := ctx.Err(); err != nil {
			if err == context.DeadlineExceeded {
				return timedOutResult(p, start), nil
			}
			return Result{}, fmt.Errorf("exact: %w", err)
		}
		for _, q := range p.Partners(i) {
			if q <= i {
				continue
			}
			for j := range p.Cands[i] {
				for r := range p.Cands[q] {
					if c := p.PairCost(i, j, q, r); c > 1e-9 {
						pairs = append(pairs, pairTerm{i, j, q, r, c})
					}
				}
			}
		}
	}
	nVars := nx + len(pairs)
	if nVars > maxVars {
		return Result{}, fmt.Errorf("exact: linearized model needs %d variables (> %d limit)", nVars, maxVars)
	}

	m := ilp.NewModel(nVars)
	// Objective: c(i,j) - M per selection variable (equivalent to charging
	// M for every unrouted object, shifted by a constant), plus the pair
	// costs on product variables.
	for i := range p.Cands {
		for j := range p.Cands[i] {
			v := xIdx[i][j]
			m.SetInteger(v)
			m.SetObj(v, p.Cost(i, j)-p.Opt.M)
		}
	}
	for k, pr := range pairs {
		m.SetObj(nx+k, pr.cost)
	}

	// Constraint (3b): at most one candidate per object (s_i is the slack).
	// The same sets drive SOS branching in the solver.
	for i := range p.Cands {
		if len(p.Cands[i]) == 0 {
			continue
		}
		terms := make([]ilp.Term, 0, len(p.Cands[i]))
		for j := range p.Cands[i] {
			terms = append(terms, ilp.Term{Var: xIdx[i][j], Coef: 1})
		}
		m.AddConstraint(terms, 1)
		m.AddSOS(xIdx[i])
	}

	// Constraint (3c): per-edge capacities, but only for edges that could
	// actually overflow (sum of each object's maximum possible usage
	// exceeds capacity) — other rows can never bind.
	type edgeAgg struct {
		terms  []ilp.Term
		maxSum int
	}
	edges := make(map[topo.EdgeKey]*edgeAgg)
	var edgeOrder []topo.EdgeKey // deterministic first-touch row order
	perObjMax := make(map[topo.EdgeKey]int)
	for i := range p.Cands {
		for k := range perObjMax {
			delete(perObjMax, k)
		}
		for j := range p.Cands[i] {
			for _, eu := range p.Cands[i][j].Edges {
				k := topo.EdgeKey{Layer: int(eu.Layer), Idx: int(eu.Idx)}
				n := int(eu.N)
				if n > perObjMax[k] {
					perObjMax[k] = n
				}
				e := edges[k]
				if e == nil {
					e = &edgeAgg{}
					edges[k] = e
					edgeOrder = append(edgeOrder, k)
				}
				e.terms = append(e.terms, ilp.Term{Var: xIdx[i][j], Coef: float64(n)})
			}
		}
		for k, mx := range perObjMax {
			edges[k].maxSum += mx
		}
	}
	for _, k := range edgeOrder {
		e := edges[k]
		x, y := p.Grid.EdgeCell(k.Layer, k.Idx)
		cap := p.Grid.Cap(k.Layer, x, y)
		if e.maxSum <= cap {
			continue
		}
		m.AddLazyConstraint(e.terms, float64(cap))
	}

	// Product linearization: y >= x_ij + x_qr - 1, activated lazily (a
	// product row only binds when both its candidates are selected).
	for k, pr := range pairs {
		m.AddLazyConstraint([]ilp.Term{
			{Var: xIdx[pr.i][pr.j], Coef: 1},
			{Var: xIdx[pr.q][pr.r], Coef: 1},
			{Var: nx + k, Coef: -1},
		}, 1)
	}

	if rec := obs.FromContext(ctx); rec != nil {
		rec.EmitAt("exact.model", "ilp", start, time.Since(start), obs.Args{
			"vars": float64(nVars), "cons": float64(m.NumConstraints()),
			"pairs": float64(len(pairs)),
		})
	}

	solveOpt := ilp.SolveOptions{Ctx: ctx, TimeLimit: opt.TimeLimit}
	if opt.WarmStart != nil {
		inc := make([]float64, nVars)
		for i, c := range opt.WarmStart.Choice {
			if c >= 0 {
				inc[xIdx[i][c]] = 1
			}
		}
		for k, pr := range pairs {
			ci, cq := opt.WarmStart.Choice[pr.i], opt.WarmStart.Choice[pr.q]
			if ci == pr.j && cq == pr.r {
				inc[nx+k] = 1
			}
		}
		solveOpt.Incumbent = inc
	}

	res := ilp.Solve(m, solveOpt)
	out := Result{
		Status:  res.Status,
		Runtime: time.Since(start),
		Vars:    nVars,
		Cons:    m.NumConstraints(),
	}
	switch res.Status {
	case ilp.Optimal, ilp.Feasible:
		out.TimedOut = res.Status == ilp.Feasible
		out.Assignment = p.NewAssignment()
		for i := range p.Cands {
			for j := range p.Cands[i] {
				if res.X[xIdx[i][j]] > 0.5 {
					out.Assignment.Choice[i] = j
				}
			}
		}
		out.Objective = p.ObjectiveValue(out.Assignment)
		return out, nil
	case ilp.TimedOut:
		out.TimedOut = true
		out.Assignment = p.NewAssignment()
		out.Objective = p.ObjectiveValue(out.Assignment)
		return out, nil
	case ilp.Canceled:
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("exact: %w", err)
		}
		return out, fmt.Errorf("exact: solve canceled")
	default:
		return out, fmt.Errorf("exact: ILP reported %v", res.Status)
	}
}

// timedOutResult is the all-unrouted result reported when the deadline
// expired before the search could even start.
func timedOutResult(p *route.Problem, start time.Time) Result {
	out := Result{
		Status:     ilp.TimedOut,
		TimedOut:   true,
		Assignment: p.NewAssignment(),
		Runtime:    time.Since(start),
	}
	out.Objective = p.ObjectiveValue(out.Assignment)
	return out
}
