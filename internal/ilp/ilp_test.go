package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestLPSimpleKnapsackRelaxation(t *testing.T) {
	// min -3a -2b s.t. a + b <= 1.5, a,b in [0,1] -> a=1, b=0.5, obj -4.
	m := NewModel(2)
	m.SetObj(0, -3)
	m.SetObj(1, -2)
	m.AddConstraint([]Term{{0, 1}, {1, 1}}, 1.5)
	res := m.solveLP(context.Background(), m.cons, []float64{0, 0}, []float64{1, 1}, time.Time{})
	if res.status != lpOptimal {
		t.Fatalf("status = %v", res.status)
	}
	if math.Abs(res.obj-(-4)) > 1e-6 {
		t.Fatalf("obj = %v, want -4", res.obj)
	}
	if math.Abs(res.x[0]-1) > 1e-6 || math.Abs(res.x[1]-0.5) > 1e-6 {
		t.Fatalf("x = %v", res.x)
	}
}

func TestLPWithFixedLowerBounds(t *testing.T) {
	// Fixing a=1 with constraint a + b <= 1 forces b=0; infeasible start
	// exercise for the Big-M artificial path is below.
	m := NewModel(2)
	m.SetObj(0, 1)
	m.SetObj(1, -1)
	m.AddConstraint([]Term{{0, 1}, {1, 1}}, 1)
	res := m.solveLP(context.Background(), m.cons, []float64{1, 0}, []float64{1, 1}, time.Time{})
	if res.status != lpOptimal {
		t.Fatalf("status = %v", res.status)
	}
	if math.Abs(res.x[1]) > 1e-6 {
		t.Fatalf("b = %v, want 0", res.x[1])
	}
}

func TestLPInfeasible(t *testing.T) {
	// a + b <= 1 with both fixed to 1.
	m := NewModel(2)
	m.AddConstraint([]Term{{0, 1}, {1, 1}}, 1)
	res := m.solveLP(context.Background(), m.cons, []float64{1, 1}, []float64{1, 1}, time.Time{})
	if res.status != lpInfeasible {
		t.Fatalf("status = %v, want infeasible", res.status)
	}
}

func TestLPNegativeRHSFeasible(t *testing.T) {
	// -a <= -0.5 means a >= 0.5; minimize a -> 0.5.
	m := NewModel(1)
	m.SetObj(0, 1)
	m.AddConstraint([]Term{{0, -1}}, -0.5)
	res := m.solveLP(context.Background(), m.cons, []float64{0}, []float64{1}, time.Time{})
	if res.status != lpOptimal || math.Abs(res.x[0]-0.5) > 1e-6 {
		t.Fatalf("res = %+v", res)
	}
}

func TestLPDegenerateAndEquality(t *testing.T) {
	// x + y <= 1 and -x - y <= -1 emulate x + y == 1; min x -> x=0,y=1.
	m := NewModel(2)
	m.SetObj(0, 1)
	m.AddConstraint([]Term{{0, 1}, {1, 1}}, 1)
	m.AddConstraint([]Term{{0, -1}, {1, -1}}, -1)
	res := m.solveLP(context.Background(), m.cons, []float64{0, 0}, []float64{1, 1}, time.Time{})
	if res.status != lpOptimal {
		t.Fatalf("status = %v", res.status)
	}
	if math.Abs(res.x[0]) > 1e-6 || math.Abs(res.x[1]-1) > 1e-6 {
		t.Fatalf("x = %v", res.x)
	}
}

func TestSolveTinyILP(t *testing.T) {
	// min -5a -4b -3c s.t. 2a+3b+c <= 5, 4a+b+2c <= 11, 3a+4b+2c <= 8.
	// Binary optimum: a=1, b=0 or 1... enumerate below to be sure.
	m := NewModel(3)
	m.SetObj(0, -5)
	m.SetObj(1, -4)
	m.SetObj(2, -3)
	for i := 0; i < 3; i++ {
		m.SetInteger(i)
	}
	m.AddConstraint([]Term{{0, 2}, {1, 3}, {2, 1}}, 5)
	m.AddConstraint([]Term{{0, 4}, {1, 1}, {2, 2}}, 11)
	m.AddConstraint([]Term{{0, 3}, {1, 4}, {2, 2}}, 8)
	res := Solve(m, SolveOptions{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	want := bruteForce(m)
	if math.Abs(res.Obj-want) > 1e-6 {
		t.Fatalf("obj = %v, want %v", res.Obj, want)
	}
}

func TestSolveInfeasibleILP(t *testing.T) {
	m := NewModel(2)
	m.SetInteger(0)
	m.SetInteger(1)
	m.AddConstraint([]Term{{0, -1}, {1, -1}}, -3) // a + b >= 3 impossible
	res := Solve(m, SolveOptions{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

// bruteForce enumerates all binary assignments (continuous vars greedily
// set to satisfy product constraints at their minimum) and returns the best
// objective. Only valid for models whose continuous variables appear in
// constraints of the form x1 + x2 - y <= 1 with nonnegative objective.
func bruteForce(m *Model) float64 {
	n := m.NumVars()
	var ints []int
	for i := 0; i < n; i++ {
		if m.integer[i] {
			ints = append(ints, i)
		}
	}
	best := inf
	x := make([]float64, n)
	for mask := 0; mask < 1<<len(ints); mask++ {
		for i := range x {
			x[i] = 0
		}
		for k, v := range ints {
			if mask&(1<<k) != 0 {
				x[v] = 1
			}
		}
		// Set continuous vars to the minimum forced by their constraints.
		for _, con := range m.cons {
			var yv = -1
			lhs := 0.0
			for _, tm := range con.terms {
				if !m.integer[tm.Var] && tm.Coef < 0 {
					yv = tm.Var
				} else {
					lhs += tm.Coef * x[tm.Var]
				}
			}
			if yv >= 0 {
				need := lhs - con.rhs
				if need > x[yv] {
					x[yv] = need
				}
			}
		}
		if !m.Feasible(x, 1e-9) {
			continue
		}
		if obj := m.Eval(x); obj < best {
			best = obj
		}
	}
	return best
}

// randomModel builds a random selection-style ILP: groups of binaries with
// sum <= 1, random capacity constraints, random costs, and a few product
// terms — the same structure route.Problem generates.
func randomModel(r *rand.Rand) *Model {
	nGroups := 2 + r.Intn(3)
	perGroup := 2 + r.Intn(2)
	nBin := nGroups * perGroup
	nProd := r.Intn(3)
	m := NewModel(nBin + nProd)
	for i := 0; i < nBin; i++ {
		m.SetInteger(i)
		m.SetObj(i, float64(1+r.Intn(20)))
	}
	for g := 0; g < nGroups; g++ {
		var terms []Term
		for k := 0; k < perGroup; k++ {
			terms = append(terms, Term{g*perGroup + k, 1})
		}
		m.AddConstraint(terms, 1)
	}
	// Capacity constraints over random subsets.
	for c := 0; c < 2+r.Intn(3); c++ {
		var terms []Term
		for i := 0; i < nBin; i++ {
			if r.Intn(3) == 0 {
				terms = append(terms, Term{i, float64(1 + r.Intn(3))})
			}
		}
		if len(terms) > 0 {
			m.AddConstraint(terms, float64(1+r.Intn(4)))
		}
	}
	// Force some binaries on: -x_a - x_b <= -1 (at least one of a pair).
	if r.Intn(2) == 0 {
		a, b := r.Intn(nBin), r.Intn(nBin)
		if a != b {
			m.AddConstraint([]Term{{a, -1}, {b, -1}}, -1)
		}
	}
	for p := 0; p < nProd; p++ {
		y := nBin + p
		m.SetObj(y, float64(1+r.Intn(30)))
		a, b := r.Intn(nBin), r.Intn(nBin)
		if a == b {
			continue
		}
		m.AddProduct(a, b, y)
	}
	return m
}

func TestSolveMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		m := randomModel(r)
		res := Solve(m, SolveOptions{})
		want := bruteForce(m)
		if math.IsInf(want, 1) {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible but solver says %v (obj %v)", trial, res.Status, res.Obj)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status = %v, want optimal (brute force obj %v)", trial, res.Status, want)
		}
		if math.Abs(res.Obj-want) > 1e-5 {
			t.Fatalf("trial %d: obj = %v, want %v (x=%v)", trial, res.Obj, want, res.X)
		}
		if !m.Feasible(res.X, 1e-5) {
			t.Fatalf("trial %d: solver returned infeasible x", trial)
		}
	}
}

func TestSolveRespectsIncumbent(t *testing.T) {
	m := NewModel(2)
	m.SetInteger(0)
	m.SetInteger(1)
	m.SetObj(0, 5)
	m.SetObj(1, 3)
	m.AddConstraint([]Term{{0, -1}, {1, -1}}, -1) // at least one on
	inc := []float64{1, 0}                        // obj 5; optimum is {0,1} obj 3
	res := Solve(m, SolveOptions{Incumbent: inc})
	if res.Status != Optimal || math.Abs(res.Obj-3) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
	// An infeasible incumbent is ignored, not trusted.
	bad := []float64{0, 0}
	res = Solve(m, SolveOptions{Incumbent: bad})
	if res.Status != Optimal || math.Abs(res.Obj-3) > 1e-9 {
		t.Fatalf("res with bad incumbent = %+v", res)
	}
}

func TestSolveTimeLimit(t *testing.T) {
	// A large random model with a microscopic time limit must stop quickly
	// and report TimedOut or Feasible (if the incumbent arrived first).
	r := rand.New(rand.NewSource(7))
	nBin := 60
	m := NewModel(nBin)
	for i := 0; i < nBin; i++ {
		m.SetInteger(i)
		m.SetObj(i, float64(-1-r.Intn(50)))
	}
	for c := 0; c < 40; c++ {
		var terms []Term
		for i := 0; i < nBin; i++ {
			if r.Intn(2) == 0 {
				terms = append(terms, Term{i, float64(1 + r.Intn(5))})
			}
		}
		m.AddConstraint(terms, float64(5+r.Intn(10)))
	}
	start := time.Now()
	res := Solve(m, SolveOptions{TimeLimit: 30 * time.Millisecond})
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("time limit ignored: ran %v", el)
	}
	if res.Status == Optimal && res.Nodes < 3 {
		t.Fatalf("suspiciously fast optimal: %+v", res)
	}
	if res.Status == Feasible && !m.Feasible(res.X, 1e-6) {
		t.Fatal("feasible status with infeasible x")
	}
}

func TestSolveMaxNodes(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	m := randomModel(r)
	res := Solve(m, SolveOptions{MaxNodes: 1})
	if res.Nodes > 1 {
		t.Fatalf("explored %d nodes with MaxNodes 1", res.Nodes)
	}
}

func TestAddConstraintMergesDuplicates(t *testing.T) {
	m := NewModel(2)
	m.AddConstraint([]Term{{0, 1}, {0, 2}, {1, 1}}, 2)
	if len(m.cons[0].terms) != 2 {
		t.Fatalf("terms = %v", m.cons[0].terms)
	}
	for _, tm := range m.cons[0].terms {
		if tm.Var == 0 && tm.Coef != 3 {
			t.Errorf("merged coef = %v, want 3", tm.Coef)
		}
	}
}

func TestAddConstraintPanicsOutOfRange(t *testing.T) {
	m := NewModel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.AddConstraint([]Term{{5, 1}}, 1)
}

func TestFeasibleAndEval(t *testing.T) {
	m := NewModel(2)
	m.SetObj(0, 2)
	m.SetObj(1, -1)
	m.AddConstraint([]Term{{0, 1}, {1, 1}}, 1)
	if !m.Feasible([]float64{0.5, 0.5}, 1e-9) {
		t.Error("boundary point should be feasible")
	}
	if m.Feasible([]float64{1, 1}, 1e-9) {
		t.Error("violating point accepted")
	}
	if m.Feasible([]float64{-0.1, 0}, 1e-9) {
		t.Error("below-bound point accepted")
	}
	if got := m.Eval([]float64{1, 1}); got != 1 {
		t.Errorf("Eval = %v", got)
	}
}

func TestProductLinearization(t *testing.T) {
	// min 10y + (-1)a + (-1)b with y >= a + b - 1: both on costs 10 - 2 = 8,
	// one on costs -1, so optimum is one on.
	m := NewModel(3)
	m.SetInteger(0)
	m.SetInteger(1)
	m.SetObj(0, -1)
	m.SetObj(1, -1)
	m.SetObj(2, 10)
	m.AddProduct(0, 1, 2)
	res := Solve(m, SolveOptions{})
	if res.Status != Optimal || math.Abs(res.Obj-(-1)) > 1e-6 {
		t.Fatalf("res = %+v, want obj -1", res)
	}
	// With a cheap product cost both go on: -1 -1 + 0.5 = -1.5.
	m2 := NewModel(3)
	m2.SetInteger(0)
	m2.SetInteger(1)
	m2.SetObj(0, -1)
	m2.SetObj(1, -1)
	m2.SetObj(2, 0.5)
	m2.AddProduct(0, 1, 2)
	res = Solve(m2, SolveOptions{})
	if res.Status != Optimal || math.Abs(res.Obj-(-1.5)) > 1e-6 {
		t.Fatalf("res = %+v, want obj -1.5", res)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || TimedOut.String() != "timed-out" {
		t.Error("status strings wrong")
	}
}
