// Package ilp is a self-contained 0/1 integer linear programming solver:
// a bounded-variable primal simplex for the LP relaxation plus branch and
// bound with a wall-clock time limit. It substitutes for the commercial
// GUROBI solver the paper uses for formulation (3); the paper's headline
// ILP behaviour — optimal quality, prohibitive runtime on congested
// instances, 3600 s timeout — is reproduced faithfully by an exact solver
// with a configurable limit.
//
// The solver handles minimization of c'x subject to linear <= constraints
// with every variable bounded to [0, 1]. Variables marked integer are
// branched to {0, 1}; continuous variables (used for linearized quadratic
// product terms) stay fractional.
package ilp

import (
	"fmt"
	"math"
)

// Term is one coefficient of a linear constraint.
type Term struct {
	// Var is the variable index.
	Var int
	// Coef is the coefficient.
	Coef float64
}

// constraint is sum(Coef * x[Var]) <= RHS.
type constraint struct {
	terms []Term
	rhs   float64
}

// Model is a 0/1 ILP: minimize Obj'x subject to the added <= constraints,
// 0 <= x <= 1 for every variable, and x integer where flagged.
type Model struct {
	obj     []float64
	integer []bool
	cons    []constraint
	lazy    []constraint
	sos     [][]int
}

// NewModel creates a model with n variables, all continuous with zero
// objective coefficient.
func NewModel(n int) *Model {
	return &Model{obj: make([]float64, n), integer: make([]bool, n)}
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstraints returns the number of constraints.
func (m *Model) NumConstraints() int { return len(m.cons) }

// SetObj sets the objective coefficient of variable v.
func (m *Model) SetObj(v int, c float64) { m.obj[v] = c }

// Obj returns the objective coefficient of variable v.
func (m *Model) Obj(v int) float64 { return m.obj[v] }

// SetInteger marks variable v as binary (branched to {0,1}).
func (m *Model) SetInteger(v int) { m.integer[v] = true }

// AddSOS declares a selection group: at most one of the listed binary
// variables may be 1 (the caller must also add the matching sum <= 1
// constraint). Branch and bound branches on whole groups — one child per
// candidate plus a none-selected child — which suits one-candidate-per-
// object selection problems far better than single-variable branching.
func (m *Model) AddSOS(vars []int) {
	for _, v := range vars {
		if v < 0 || v >= len(m.obj) {
			panic(fmt.Sprintf("ilp: SOS variable %d out of range", v))
		}
	}
	m.sos = append(m.sos, append([]int(nil), vars...))
}

// AddConstraint appends the constraint sum(terms) <= rhs. Duplicate
// variables within one constraint are summed. It panics on out-of-range
// variable indices — always a caller bug.
func (m *Model) AddConstraint(terms []Term, rhs float64) {
	merged := make(map[int]float64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.obj) {
			panic(fmt.Sprintf("ilp: variable %d out of range", t.Var))
		}
		merged[t.Var] += t.Coef
	}
	out := make([]Term, 0, len(merged))
	for _, t := range terms {
		if c, ok := merged[t.Var]; ok && c != 0 {
			out = append(out, Term{t.Var, c})
			delete(merged, t.Var)
		}
	}
	m.cons = append(m.cons, constraint{terms: out, rhs: rhs})
}

// AddLazyConstraint appends a constraint that branch and bound activates
// only once a relaxation solution violates it. Selection problems have
// thousands of capacity/product rows of which only a handful ever bind;
// keeping the rest out of the tableau is what makes the dense simplex
// viable at benchmark scale.
func (m *Model) AddLazyConstraint(terms []Term, rhs float64) {
	m.AddConstraint(terms, rhs)
	last := m.cons[len(m.cons)-1]
	m.cons = m.cons[:len(m.cons)-1]
	m.lazy = append(m.lazy, last)
}

// NumLazyConstraints returns the number of lazily-activated constraints.
func (m *Model) NumLazyConstraints() int { return len(m.lazy) }

// violatedLazy returns the indices of inactive lazy rows violated by x.
func (m *Model) violatedLazy(x []float64, active []bool) []int {
	var out []int
	for li, con := range m.lazy {
		if active[li] {
			continue
		}
		lhs := 0.0
		for _, t := range con.terms {
			lhs += t.Coef * x[t.Var]
		}
		if lhs > con.rhs+1e-7 {
			out = append(out, li)
		}
	}
	return out
}

// Eval returns the objective value of an assignment.
func (m *Model) Eval(x []float64) float64 {
	v := 0.0
	for i, c := range m.obj {
		v += c * x[i]
	}
	return v
}

// Feasible reports whether x satisfies every constraint (lazy included)
// and bound within tolerance tol.
func (m *Model) Feasible(x []float64, tol float64) bool {
	for i := range x {
		if x[i] < -tol || x[i] > 1+tol {
			return false
		}
	}
	for _, group := range [][]constraint{m.cons, m.lazy} {
		for _, con := range group {
			lhs := 0.0
			for _, t := range con.terms {
				lhs += t.Coef * x[t.Var]
			}
			if lhs > con.rhs+tol {
				return false
			}
		}
	}
	return true
}

// AddProduct linearizes the binary product x1*x2 with cost weight: it
// allocates (conceptually) a continuous variable y already present in the
// model at index yVar, constrains y >= x1 + x2 - 1, and relies on weight
// >= 0 plus minimization to keep y at max(0, x1+x2-1). The caller sets the
// objective weight on yVar.
func (m *Model) AddProduct(x1, x2, yVar int) {
	m.AddConstraint([]Term{{x1, 1}, {x2, 1}, {yVar, -1}}, 1)
}

const (
	// tol is the general numeric tolerance.
	tol = 1e-7
	// intTol is the integrality tolerance.
	intTol = 1e-6
)

// inf is the internal representation of an unbounded value.
var inf = math.Inf(1)
