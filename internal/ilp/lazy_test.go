package ilp

import (
	"math"
	"math/rand"
	"testing"
)

// lazyVariant rebuilds a model with every constraint after the first
// declared lazy instead of eager.
func lazyVariant(m *Model) *Model {
	out := NewModel(m.NumVars())
	copy(out.obj, m.obj)
	copy(out.integer, m.integer)
	for _, s := range m.sos {
		out.AddSOS(s)
	}
	for i, con := range m.cons {
		if i == 0 {
			out.AddConstraint(con.terms, con.rhs)
		} else {
			out.AddLazyConstraint(con.terms, con.rhs)
		}
	}
	return out
}

// TestLazyEqualsEager: declaring constraints lazy must never change the
// optimum — only the solve path.
func TestLazyEqualsEager(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(r)
		lz := lazyVariant(m)
		eager := Solve(m, SolveOptions{})
		lazy := Solve(lz, SolveOptions{})
		if eager.Status != lazy.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, eager.Status, lazy.Status)
		}
		if eager.Status != Optimal {
			continue
		}
		if math.Abs(eager.Obj-lazy.Obj) > 1e-5 {
			t.Fatalf("trial %d: eager obj %v != lazy obj %v", trial, eager.Obj, lazy.Obj)
		}
		if !lz.Feasible(lazy.X, 1e-5) {
			t.Fatalf("trial %d: lazy solution infeasible against full model", trial)
		}
	}
}

// TestSOSBranchingMatchesBinary: adding SOS declarations must never change
// the optimum either.
func TestSOSBranchingMatchesBinary(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		m := randomModel(r) // randomModel has selection rows but no SOS
		withSOS := NewModel(m.NumVars())
		copy(withSOS.obj, m.obj)
		copy(withSOS.integer, m.integer)
		for _, con := range m.cons {
			withSOS.AddConstraint(con.terms, con.rhs)
			// Declare an SOS for rows that look like selection rows:
			// all-ones coefficients and rhs 1 over binaries.
			if con.rhs == 1 {
				ok := true
				var vars []int
				for _, tm := range con.terms {
					if tm.Coef != 1 || !m.integer[tm.Var] {
						ok = false
						break
					}
					vars = append(vars, tm.Var)
				}
				if ok && len(vars) > 1 {
					withSOS.AddSOS(vars)
				}
			}
		}
		plain := Solve(m, SolveOptions{})
		sos := Solve(withSOS, SolveOptions{})
		if plain.Status != sos.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, plain.Status, sos.Status)
		}
		if plain.Status == Optimal && math.Abs(plain.Obj-sos.Obj) > 1e-5 {
			t.Fatalf("trial %d: plain obj %v != SOS obj %v", trial, plain.Obj, sos.Obj)
		}
	}
}
