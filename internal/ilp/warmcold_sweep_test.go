package ilp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/obs"
)

// sweepModel draws a random selection model: groups of binary candidates
// (SOS-branched, at least one required), plus random capacity rows — half
// eager, half lazy to exercise the warm-snapshot invalidation on lazy
// activation. Integer costs (every other trial) manufacture the degenerate
// ties that force the warm path's uniqueness certificate to defer to cold.
func sweepModel(trial int) *Model {
	rng := rand.New(rand.NewSource(int64(trial)))
	nGroups := 3 + rng.Intn(4)
	per := 2 + rng.Intn(2)
	m := NewModel(nGroups * per)
	groups := make([][]int, nGroups)
	for g := 0; g < nGroups; g++ {
		vars := make([]int, per)
		terms := make([]Term, per)
		for k := 0; k < per; k++ {
			v := g*per + k
			cost := 1 + rng.Float64()*10
			if trial%2 == 0 {
				cost = float64(1 + rng.Intn(6)) // integral: degenerate ties
			}
			m.SetObj(v, cost)
			m.SetInteger(v)
			vars[k] = v
			terms[k] = Term{Var: v, Coef: -1}
		}
		groups[g] = vars
		m.AddSOS(vars)
		m.AddConstraint(terms, -1) // select at least one per group
	}
	for e := 0; e < nGroups*2; e++ {
		terms := make([]Term, 0, nGroups)
		for _, vars := range groups {
			terms = append(terms, Term{Var: vars[rng.Intn(len(vars))], Coef: 1})
		}
		rhs := float64(1 + rng.Intn(2))
		if e%2 == 0 {
			m.AddLazyConstraint(terms, rhs)
		} else {
			m.AddConstraint(terms, rhs)
		}
	}
	return m
}

// sameResult compares two solve results bit-for-bit (runtime excluded).
func sameResult(t *testing.T, trial int, warm, cold Result) {
	t.Helper()
	if warm.Status != cold.Status {
		t.Fatalf("trial %d: status warm=%v cold=%v", trial, warm.Status, cold.Status)
	}
	if math.Float64bits(warm.Obj) != math.Float64bits(cold.Obj) {
		t.Fatalf("trial %d: obj warm=%x cold=%x", trial, math.Float64bits(warm.Obj), math.Float64bits(cold.Obj))
	}
	if warm.Nodes != cold.Nodes {
		t.Fatalf("trial %d: nodes warm=%d cold=%d (search trajectories diverged)", trial, warm.Nodes, cold.Nodes)
	}
	if len(warm.X) != len(cold.X) {
		t.Fatalf("trial %d: |X| warm=%d cold=%d", trial, len(warm.X), len(cold.X))
	}
	for i := range warm.X {
		if math.Float64bits(warm.X[i]) != math.Float64bits(cold.X[i]) {
			t.Fatalf("trial %d: X[%d] warm=%v cold=%v", trial, i, warm.X[i], cold.X[i])
		}
	}
}

// TestWarmVsColdSweep proves warm-started branch and bound is bit-identical
// to the cold solver on 300 randomized selection models: same status,
// objective bits, solution bits, and node count (identical trajectories).
// It also asserts the warm path genuinely engages across the sweep — a
// certificate so strict it never fires would make this suite vacuous.
func TestWarmVsColdSweep(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 30
	}
	warmTotal := int64(0)
	for trial := 0; trial < trials; trial++ {
		m := sweepModel(trial)
		rec := obs.NewRecorder()
		ctx := obs.WithRecorder(context.Background(), rec)
		warm := Solve(m, SolveOptions{Ctx: ctx})
		cold := Solve(m, SolveOptions{DisableWarmLP: true})
		sameResult(t, trial, warm, cold)
		warmTotal += rec.Counters()["ilp.lp.warm"]
	}
	if warmTotal == 0 {
		t.Fatal("warm path never engaged across the sweep")
	}
	t.Logf("warm solves across sweep: %d", warmTotal)
}

// sweepModelFloat draws a harder variant: fractional capacity coefficients
// and right-hand sides, no lazy rows. Pivoting on these produces genuinely
// inexact arithmetic (unlike the ±1 models above, whose pivots stay on
// dyadic rationals), with deep search trees — the regime that exposed a
// divergence in an early exact-tie relaxation of the decision guard.
func sweepModelFloat(trial int) *Model {
	rng := rand.New(rand.NewSource(int64(10_000 + trial)))
	nGroups, per := 8, 3
	m := NewModel(nGroups * per)
	groups := make([][]int, nGroups)
	for g := 0; g < nGroups; g++ {
		vars := make([]int, per)
		terms := make([]Term, per)
		for k := 0; k < per; k++ {
			v := g*per + k
			m.SetObj(v, 1+rng.Float64()*10)
			m.SetInteger(v)
			vars[k] = v
			terms[k] = Term{Var: v, Coef: -1}
		}
		groups[g] = vars
		m.AddSOS(vars)
		m.AddConstraint(terms, -1)
	}
	for e := 0; e < nGroups; e++ {
		terms := make([]Term, 0, nGroups)
		for _, vars := range groups {
			terms = append(terms, Term{Var: vars[rng.Intn(len(vars))], Coef: 1 + rng.Float64()})
		}
		m.AddConstraint(terms, 2+rng.Float64()*2)
	}
	return m
}

// TestWarmVsColdSweepFloatCaps repeats the bit-identity sweep on the
// fractional-coefficient models, where cross-solve noise is real and the
// dual-simplex infeasibility certificate carries most of the warm traffic.
func TestWarmVsColdSweepFloatCaps(t *testing.T) {
	trials := 100
	if testing.Short() {
		trials = 15
	}
	warmTotal := int64(0)
	for trial := 0; trial < trials; trial++ {
		m := sweepModelFloat(trial)
		rec := obs.NewRecorder()
		ctx := obs.WithRecorder(context.Background(), rec)
		warm := Solve(m, SolveOptions{Ctx: ctx})
		cold := Solve(m, SolveOptions{DisableWarmLP: true})
		sameResult(t, trial, warm, cold)
		warmTotal += rec.Counters()["ilp.lp.warm"]
	}
	if warmTotal == 0 {
		t.Fatal("warm path never engaged across the float-cap sweep")
	}
	t.Logf("warm solves across float-cap sweep: %d", warmTotal)
}

// TestWarmCancellationMidSolve cancels solves at staggered points with the
// warm path active: every run must come back with a sane status, and the
// pooled scratch must come out clean — a fresh solve afterwards still
// matches the cold reference bit-for-bit.
func TestWarmCancellationMidSolve(t *testing.T) {
	m := sweepModel(101)
	ref := Solve(m, SolveOptions{DisableWarmLP: true})
	for trial := 0; trial < 25; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(trial%5) * 100 * time.Microsecond)
		// Any terminal status is legitimate — a cancel landing inside the
		// root relaxation surfaces as an infeasible root (seed semantics);
		// what matters is that the solver neither panics nor corrupts the
		// pooled scratch it hands back.
		_ = Solve(m, SolveOptions{Ctx: ctx})
		cancel()
		clean := Solve(m, SolveOptions{})
		sameResult(t, trial, clean, ref)
	}
}
