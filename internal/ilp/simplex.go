package ilp

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// uniqueTol bounds how close a nonbasic reduced cost may sit to zero before
// the warm path treats the LP optimum as non-unique and defers to cold.
const uniqueTol = 1e-6

// lpStatus reports the outcome of an LP relaxation solve.
type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpIterLimit
)

// lpResult carries the solution of one LP relaxation.
type lpResult struct {
	status lpStatus
	x      []float64 // structural variable values
	obj    float64
	iters  int // simplex iterations spent (pivots + bound flips)
}

// lpState is one simplex tableau with its basis bookkeeping. Cold solves
// build it from the all-slack basis; warm solves rebuild it from a parent
// node's final basis. All storage comes from an lpScratch freelist so
// steady-state branch-and-bound allocates (almost) nothing per node.
type lpState struct {
	n, rows, ncols int
	t              [][]float64
	basis          []int
	xB             []float64
	atUpper        []bool
	inBasis        []bool
	colLo, colHi   []float64
	cost, objRow   []float64
}

func (st *lpState) nbVal(j int) float64 {
	if st.atUpper[j] {
		return st.colHi[j]
	}
	return st.colLo[j]
}

// lpScratch recycles tableau rows and bookkeeping vectors across the many
// LP solves of one branch-and-bound run. Scratches themselves are pooled
// across runs (with pooled-vs-fresh counters for telemetry), so a serving
// process reaches near-zero steady-state allocation in the solver.
type lpScratch struct {
	vecs   [][]float64
	ints   [][]int
	bools  [][]bool
	states []*lpState
	fresh  bool // true until first reuse; lets callers report pooled-vs-fresh
}

var (
	lpScratchPool = sync.Pool{New: func() any {
		scratchFresh.Add(1)
		return &lpScratch{fresh: true}
	}}
	scratchGets  atomic.Int64
	scratchFresh atomic.Int64
)

func getScratch() *lpScratch {
	scratchGets.Add(1)
	return lpScratchPool.Get().(*lpScratch)
}

func putScratch(s *lpScratch) { lpScratchPool.Put(s) }

// ScratchCounters reports cumulative simplex-scratch acquisitions and how
// many had to allocate fresh — the pooled-vs-fresh telemetry split.
func ScratchCounters() (gets, fresh int64) {
	return scratchGets.Load(), scratchFresh.Load()
}

func (s *lpScratch) vec(size int) []float64 {
	for len(s.vecs) > 0 {
		v := s.vecs[len(s.vecs)-1]
		s.vecs = s.vecs[:len(s.vecs)-1]
		if cap(v) >= size {
			v = v[:size]
			for i := range v {
				v[i] = 0
			}
			return v
		}
	}
	return make([]float64, size)
}

func (s *lpScratch) ivec(size int) []int {
	for len(s.ints) > 0 {
		v := s.ints[len(s.ints)-1]
		s.ints = s.ints[:len(s.ints)-1]
		if cap(v) >= size {
			v = v[:size]
			for i := range v {
				v[i] = 0
			}
			return v
		}
	}
	return make([]int, size)
}

func (s *lpScratch) bvec(size int) []bool {
	for len(s.bools) > 0 {
		v := s.bools[len(s.bools)-1]
		s.bools = s.bools[:len(s.bools)-1]
		if cap(v) >= size {
			v = v[:size]
			for i := range v {
				v[i] = false
			}
			return v
		}
	}
	return make([]bool, size)
}

// newState hands out a state shell with rows/vectors sized for the solve.
func (s *lpScratch) newState(n, rows, ncols int) *lpState {
	var st *lpState
	if k := len(s.states); k > 0 {
		st = s.states[k-1]
		s.states = s.states[:k-1]
	} else {
		st = new(lpState)
	}
	st.n, st.rows, st.ncols = n, rows, ncols
	if cap(st.t) >= rows {
		st.t = st.t[:rows]
	} else {
		st.t = make([][]float64, rows)
	}
	for i := range st.t {
		st.t[i] = s.vec(ncols)
	}
	st.basis = s.ivec(rows)
	st.xB = s.vec(rows)
	st.atUpper = s.bvec(ncols)
	st.inBasis = s.bvec(ncols)
	st.colLo = s.vec(ncols)
	st.colHi = s.vec(ncols)
	st.cost = s.vec(ncols)
	st.objRow = s.vec(ncols)
	return st
}

// free returns every slice of st to the freelists.
func (s *lpScratch) free(st *lpState) {
	if st == nil {
		return
	}
	for i := range st.t {
		if st.t[i] != nil {
			s.vecs = append(s.vecs, st.t[i])
			st.t[i] = nil
		}
	}
	st.t = st.t[:0]
	s.ints = append(s.ints, st.basis)
	s.vecs = append(s.vecs, st.xB, st.colLo, st.colHi, st.cost, st.objRow)
	s.bools = append(s.bools, st.atUpper, st.inBasis)
	st.basis, st.xB, st.colLo, st.colHi, st.cost, st.objRow = nil, nil, nil, nil, nil, nil
	st.atUpper, st.inBasis = nil, nil
	s.states = append(s.states, st)
}

// solveLP minimizes the model objective over the LP relaxation with the
// given per-variable bounds, using a bounded-variable primal simplex on a
// dense tableau. Rows that start infeasible (possible once branching fixes
// lower bounds to 1) get Big-M artificial variables. A non-zero deadline or
// a done context aborts long solves with lpIterLimit so the branch-and-bound
// time limit and cancellation hold even when a single relaxation is
// expensive.
func (m *Model) solveLP(ctx context.Context, cons []constraint, lo, hi []float64, deadline time.Time) lpResult {
	scr := getScratch()
	res, st := m.solveLPCold(ctx, cons, lo, hi, deadline, scr)
	scr.free(st)
	putScratch(scr)
	return res
}

// solveLPCold is solveLP building the tableau from the all-slack basis; it
// returns the final state alongside the result so branch-and-bound can
// detach it as a warm-start snapshot for child nodes. The caller owns the
// returned state and must scr.free it (or detach it) eventually.
func (m *Model) solveLPCold(ctx context.Context, cons []constraint, lo, hi []float64, deadline time.Time, scr *lpScratch) (lpResult, *lpState) {
	// Fault seam: an injected error reports this relaxation infeasible (the
	// node is pruned; at the root the whole solve turns infeasible), a delay
	// stretches the relaxation past the branch-and-bound deadline.
	if err := faultinject.Fire(ctx, faultinject.Simplex); err != nil {
		return lpResult{status: lpInfeasible}, nil
	}
	n := len(m.obj)
	rows := len(cons)
	if n == 0 {
		return lpResult{status: lpOptimal, x: nil, obj: 0}, nil
	}

	// Column layout: [0,n) structural, [n,n+rows) slack, then artificials.
	// Bounds per column; artificials and slacks are [0, +inf).
	ncols := n + rows
	st := scr.newState(n, rows, ncols)
	colLo := st.colLo
	colHi := st.colHi
	copy(colLo, lo)
	copy(colHi, hi)
	for j := n; j < ncols; j++ {
		colHi[j] = inf
	}

	// Big-M cost for artificials, scaled to dominate any structural cost.
	bigM := 1.0
	for _, c := range m.obj {
		bigM += math.Abs(c)
	}
	bigM *= 1e4

	cost := st.cost
	copy(cost, m.obj)

	// Dense tableau rows plus initial basic values.
	t := st.t
	basis := st.basis
	xB := st.xB
	atUpper := st.atUpper
	for j := 0; j < n; j++ {
		// Start nonbasic structurals at the bound nearer the objective
		// descent direction to reduce iterations.
		if m.obj[j] < 0 && !math.IsInf(hi[j], 1) {
			atUpper[j] = true
		}
		if lo[j] == hi[j] {
			atUpper[j] = false
		}
	}
	nbVal := func(j int) float64 {
		if atUpper[j] {
			return colHi[j]
		}
		return colLo[j]
	}

	for i, con := range cons {
		row := t[i]
		t[i] = nil // mark unfilled for the artificial-extension pass
		for _, tm := range con.terms {
			row[tm.Var] += tm.Coef
		}
		row[n+i] = 1
		act := 0.0
		for j := 0; j < n; j++ {
			act += row[j] * nbVal(j)
		}
		slack := con.rhs - act
		if slack >= 0 {
			basis[i] = n + i
			xB[i] = slack
			t[i] = row
			continue
		}
		// Infeasible start: negate the row and give it an artificial.
		for j := range row {
			row[j] = -row[j]
		}
		art := len(colLo)
		colLo = append(colLo, 0)
		colHi = append(colHi, inf)
		cost = append(cost, bigM)
		atUpper = append(atUpper, false)
		for k := range t {
			if t[k] != nil {
				t[k] = append(t[k], 0)
			}
		}
		for len(row) <= art {
			row = append(row, 0)
		}
		row[art] = 1
		basis[i] = art
		xB[i] = -slack
		t[i] = row
	}
	// Rows created before a later artificial column appeared were extended
	// in the loop; normalize lengths for safety.
	ncols = len(colLo)
	for i := range t {
		for len(t[i]) < ncols {
			t[i] = append(t[i], 0)
		}
	}
	st.ncols = ncols
	st.colLo, st.colHi, st.cost, st.atUpper = colLo, colHi, cost, atUpper

	inBasis := st.inBasis
	for len(inBasis) < ncols {
		inBasis = append(inBasis, false)
	}
	for _, b := range basis {
		inBasis[b] = true
	}
	st.inBasis = inBasis

	// Objective row (reduced costs): d_j = c_j - c_B' T_j, maintained by
	// pivoting alongside the tableau.
	objRow := st.objRow
	for len(objRow) < ncols {
		objRow = append(objRow, 0)
	}
	copy(objRow, cost)
	for i, b := range basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		for j := 0; j < ncols; j++ {
			objRow[j] -= cb * t[i][j]
		}
	}
	st.objRow = objRow

	status, iter := st.primal(ctx, deadline, 0)
	if status != lpOptimal {
		return lpResult{status: status, iters: iter}, st
	}
	return st.extract(m, iter), st
}

// primal runs the bounded-variable primal simplex loop on the state until
// optimality, iteration limit, deadline, or cancellation. It returns the
// terminal status (lpOptimal or lpIterLimit) and the iteration count,
// starting from startIter (warm solves have already spent dual pivots).
func (st *lpState) primal(ctx context.Context, deadline time.Time, startIter int) (lpStatus, int) {
	n, rows, ncols := st.n, st.rows, st.ncols
	t, basis, xB := st.t, st.basis, st.xB
	atUpper, inBasis := st.atUpper, st.inBasis
	colLo, colHi, objRow := st.colLo, st.colHi, st.objRow
	nbVal := st.nbVal

	maxIter := 200 * (rows + ncols + 10)
	blandAfter := 20 * (rows + ncols + 10)
	iter := startIter
	for ; ; iter++ {
		if iter > maxIter {
			return lpIterLimit, iter
		}
		if iter%64 == 63 {
			if !deadline.IsZero() && time.Now().After(deadline) {
				return lpIterLimit, iter
			}
			if ctx.Err() != nil {
				return lpIterLimit, iter
			}
		}
		useBland := iter > blandAfter

		// Entering variable: a nonbasic column whose reduced cost allows
		// descent from its current bound.
		enter, dir := -1, 0.0
		bestViol := tol
		for j := 0; j < ncols; j++ {
			if inBasis[j] || colLo[j] == colHi[j] {
				continue
			}
			var viol float64
			var d float64
			if !atUpper[j] && objRow[j] < -tol {
				viol, d = -objRow[j], 1
			} else if atUpper[j] && objRow[j] > tol {
				viol, d = objRow[j], -1
			} else {
				continue
			}
			if useBland {
				enter, dir = j, d
				break
			}
			if viol > bestViol {
				bestViol, enter, dir = viol, j, d
			}
		}
		if enter == -1 {
			break // optimal
		}

		// Ratio test: the entering variable moves by dir*tstep from its
		// bound; basic variables must stay within their own bounds and the
		// entering variable within its span.
		tstep := colHi[enter] - colLo[enter]
		leave := -1
		leaveToUpper := false
		for i := 0; i < rows; i++ {
			coeff := t[i][enter] * dir
			bi := basis[i]
			var limit float64
			var toUpper bool
			switch {
			case coeff > tol:
				limit, toUpper = (xB[i]-colLo[bi])/coeff, false
			case coeff < -tol:
				if math.IsInf(colHi[bi], 1) {
					continue
				}
				limit, toUpper = (colHi[bi]-xB[i])/-coeff, true
			default:
				continue
			}
			if limit < 0 {
				limit = 0
			}
			// Strictly better limit wins; near-ties prefer the smaller
			// basis index (Bland-style, guards against cycling).
			if limit < tstep-tol || (limit < tstep+tol && leave != -1 && basis[i] < basis[leave]) {
				if limit < tstep {
					tstep = limit
				}
				leave, leaveToUpper = i, toUpper
			}
		}
		if math.IsInf(tstep, 1) {
			// Unbounded descent cannot happen with bounded structurals and
			// slack-only rays; treat as numeric trouble.
			return lpIterLimit, iter
		}

		if leave == -1 {
			// Bound flip: entering moves to its opposite bound.
			delta := dir * tstep
			for i := 0; i < rows; i++ {
				xB[i] -= t[i][enter] * delta
			}
			atUpper[enter] = !atUpper[enter]
			continue
		}

		// Pivot: entering becomes basic at value bound + dir*tstep.
		newVal := nbVal(enter) + dir*tstep
		delta := dir * tstep
		for i := 0; i < rows; i++ {
			if i != leave {
				xB[i] -= t[i][enter] * delta
			}
		}
		leavingVar := basis[leave]
		inBasis[leavingVar] = false
		atUpper[leavingVar] = leaveToUpper
		basis[leave] = enter
		inBasis[enter] = true
		xB[leave] = newVal

		st.pivot(leave, enter)
	}
	_ = n
	return lpOptimal, iter
}

// pivot performs the tableau row reduction making column enter basic in row
// leave, updating the reduced-cost row alongside.
func (st *lpState) pivot(leave, enter int) {
	t, objRow, ncols := st.t, st.objRow, st.ncols
	piv := t[leave][enter]
	prow := t[leave]
	invPiv := 1 / piv
	for j := 0; j < ncols; j++ {
		prow[j] *= invPiv
	}
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if f == 0 {
			continue
		}
		ri := t[i]
		for j := 0; j < ncols; j++ {
			ri[j] -= f * prow[j]
		}
		ri[enter] = 0 // exact zero against drift
	}
	if f := objRow[enter]; f != 0 {
		for j := 0; j < ncols; j++ {
			objRow[j] -= f * prow[j]
		}
		objRow[enter] = 0
	}
}

// extract reads the structural solution off an optimal state. Any
// artificial still carrying value means the constraints cannot be satisfied
// under the given bounds.
func (st *lpState) extract(m *Model, iter int) lpResult {
	n, rows := st.n, st.rows
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = st.nbVal(j)
	}
	for i, b := range st.basis {
		if b < n {
			x[b] = st.xB[i]
		} else if b >= n+rows && st.xB[i] > 1e-6 {
			return lpResult{status: lpInfeasible, iters: iter}
		}
	}
	obj := 0.0
	lo, hi := st.colLo, st.colHi
	for j := 0; j < n; j++ {
		// Clamp tiny numeric drift back into bounds.
		if x[j] < lo[j] {
			x[j] = lo[j]
		}
		if x[j] > hi[j] {
			x[j] = hi[j]
		}
		obj += m.obj[j] * x[j]
	}
	return lpResult{status: lpOptimal, x: x, obj: obj, iters: iter}
}

// solveLPWarm re-solves the relaxation under tightened bounds starting from
// a parent node's final basis: the parent tableau is still valid (same rows,
// same basis), only the basic values move, and branching only tightens
// bounds so the parent's optimal basis stays dual feasible. A short dual
// simplex restores primal feasibility, then the shared primal loop confirms
// optimality. Returns ok=false when the snapshot does not apply (row count
// changed, an artificial is basic, numeric trouble) — the caller falls back
// to a cold solve, which also owns infeasibility detection.
func (m *Model) solveLPWarm(ctx context.Context, cons []constraint, lo, hi []float64, deadline time.Time, src *lpState, scr *lpScratch) (lpResult, *lpState, bool) {
	if err := faultinject.Fire(ctx, faultinject.Simplex); err != nil {
		return lpResult{status: lpInfeasible}, nil, true
	}
	n := len(m.obj)
	rows := len(cons)
	if src == nil || src.n != n || src.rows != rows || n == 0 {
		return lpResult{}, nil, false
	}
	ncols := n + rows
	for _, b := range src.basis {
		if b >= ncols {
			return lpResult{}, nil, false // artificial basic in parent
		}
	}
	// Early uniqueness screen on the parent's reduced costs, before paying
	// for the tableau copy: a zero reduced cost on a column still movable
	// under the child bounds almost always survives to the child optimum,
	// where the final certificate would reject the solve anyway. (The final
	// certificate below remains authoritative; this is a fast filter.)
	for j := 0; j < ncols; j++ {
		if src.inBasis[j] {
			continue
		}
		if j < n && lo[j] == hi[j] {
			continue
		}
		if r := src.objRow[j]; r > -uniqueTol && r < uniqueTol {
			return lpResult{}, nil, false
		}
	}

	st := scr.newState(n, rows, ncols)
	copy(st.basis, src.basis)
	copy(st.atUpper, src.atUpper[:ncols])
	for i := range st.t {
		copy(st.t[i], src.t[i][:ncols])
	}
	copy(st.colLo, lo)
	copy(st.colHi, hi)
	copy(st.cost, m.obj)
	for j := n; j < ncols; j++ {
		st.colHi[j] = inf
	}
	for j := 0; j < n; j++ {
		if lo[j] == hi[j] {
			st.atUpper[j] = false
		}
	}
	for _, b := range st.basis {
		st.inBasis[b] = true
	}

	// Reduced costs for the parent basis (costs unchanged, so this is the
	// parent's dual-feasible objective row rebuilt in the child's state).
	copy(st.objRow, st.cost)
	for i, b := range st.basis {
		cb := st.cost[b]
		if cb == 0 {
			continue
		}
		ti := st.t[i]
		for j := 0; j < ncols; j++ {
			st.objRow[j] -= cb * ti[j]
		}
	}
	// Dual feasibility must hold exactly (up to drift) for the dual simplex
	// to apply; bound tightenings cannot break it, but accumulated pivot
	// error can. Bail to cold when it does.
	for j := 0; j < ncols; j++ {
		if st.inBasis[j] || st.colLo[j] == st.colHi[j] {
			continue
		}
		if !st.atUpper[j] && st.objRow[j] < -1e-6 {
			scr.free(st)
			return lpResult{}, nil, false
		}
		if st.atUpper[j] && st.objRow[j] > 1e-6 {
			scr.free(st)
			return lpResult{}, nil, false
		}
	}

	// Basic values under the child bounds: xB = B^-1 b - sum_j T_j x_j over
	// nonbasic columns at non-zero bounds. B^-1 sits in the slack block of
	// the tableau (slack columns of A form the identity).
	for i := 0; i < rows; i++ {
		v := 0.0
		ti := st.t[i]
		for k := 0; k < rows; k++ {
			if r := cons[k].rhs; r != 0 {
				v += ti[n+k] * r
			}
		}
		st.xB[i] = v
	}
	for j := 0; j < n; j++ {
		if st.inBasis[j] {
			continue
		}
		if v := st.nbVal(j); v != 0 {
			for i := 0; i < rows; i++ {
				st.xB[i] -= st.t[i][j] * v
			}
		}
	}

	// Dual simplex: repeatedly drive the most-violated basic variable to its
	// violated bound, entering the nonbasic column that keeps the objective
	// row dual feasible (minimum ratio).
	maxIter := 100 * (rows + ncols + 10)
	iter := 0
	for ; ; iter++ {
		if iter > maxIter {
			scr.free(st)
			return lpResult{}, nil, false
		}
		if iter%64 == 63 {
			if !deadline.IsZero() && time.Now().After(deadline) {
				scr.free(st)
				return lpResult{}, nil, false
			}
			if ctx.Err() != nil {
				scr.free(st)
				return lpResult{}, nil, false
			}
		}
		leave, worst := -1, tol
		below := false
		for i := 0; i < rows; i++ {
			b := st.basis[i]
			if d := st.colLo[b] - st.xB[i]; d > worst {
				leave, worst, below = i, d, true
			}
			if d := st.xB[i] - st.colHi[b]; d > worst {
				leave, worst, below = i, d, false
			}
		}
		if leave == -1 {
			break // primal feasible
		}
		b := st.basis[leave]
		beta := st.colHi[b]
		if below {
			beta = st.colLo[b]
		}
		tr := st.t[leave]
		// Entering column: admissible sign moves x_b toward beta; minimum
		// reduced-cost ratio preserves dual feasibility; ties take the
		// smallest column index (deterministic).
		enter := -1
		bestRatio := inf
		for j := 0; j < ncols; j++ {
			if st.inBasis[j] || st.colLo[j] == st.colHi[j] {
				continue
			}
			c := tr[j]
			if c > -tol && c < tol {
				continue
			}
			// Moving x_j by delta changes x_b by -c*delta; x_j at its lower
			// bound may only increase, at its upper only decrease.
			var ok bool
			if !st.atUpper[j] {
				ok = (below && c < 0) || (!below && c > 0)
			} else {
				ok = (below && c > 0) || (!below && c < 0)
			}
			if !ok {
				continue
			}
			ratio := math.Abs(st.objRow[j] / c)
			if ratio < bestRatio-tol {
				bestRatio, enter = ratio, j
			}
		}
		if enter == -1 {
			// Dual unbounded means primal infeasible. Declaring it here is
			// safe only when the certificate is exact: the bound violation
			// clears the decision guard and every admissible-direction
			// coefficient in the leaving row is exactly zero (common — these
			// models pivot on small dyadic rationals). The caller prunes the
			// node either way, so the search stays bit-identical to cold. A
			// nonzero sub-tolerance coefficient or a knife-edge violation
			// could classify differently under Big-M; those fall back cold.
			if worst > 1e-6 {
				exact := true
				for j := 0; j < ncols && exact; j++ {
					if st.inBasis[j] || st.colLo[j] == st.colHi[j] {
						continue
					}
					c := tr[j]
					if c == 0 || c <= -tol || c >= tol {
						continue
					}
					if !st.atUpper[j] {
						if (below && c < 0) || (!below && c > 0) {
							exact = false
						}
					} else if (below && c > 0) || (!below && c < 0) {
						exact = false
					}
				}
				if exact {
					scr.free(st)
					return lpResult{status: lpInfeasible, iters: iter}, nil, true
				}
			}
			scr.free(st)
			return lpResult{}, nil, false
		}
		delta := (st.xB[leave] - beta) / tr[enter]
		newVal := st.nbVal(enter) + delta
		for i := 0; i < rows; i++ {
			if i != leave {
				st.xB[i] -= st.t[i][enter] * delta
			}
		}
		st.inBasis[b] = false
		st.atUpper[b] = !below
		st.basis[leave] = enter
		st.inBasis[enter] = true
		st.xB[leave] = newVal
		st.pivot(leave, enter)
	}

	status, iters := st.primal(ctx, deadline, iter)
	if status != lpOptimal {
		// A warm start must never degrade the search: retry cold.
		scr.free(st)
		return lpResult{}, nil, false
	}
	// Vertex-uniqueness certificate: a zero reduced cost on any movable
	// nonbasic column means alternative optima exist, and the cold solve's
	// tie-breaking could land on a different one — which would steer
	// branching differently and break bit-identity with cold search. Only a
	// certified-unique optimum is safe to hand back.
	for j := 0; j < ncols; j++ {
		if st.inBasis[j] || st.colLo[j] == st.colHi[j] {
			continue
		}
		if r := st.objRow[j]; r > -uniqueTol && r < uniqueTol {
			scr.free(st)
			return lpResult{}, nil, false
		}
	}
	res := st.extract(m, iters)
	if res.status != lpOptimal {
		// Extraction can only reject via artificials, which the warm path
		// has none of; keep the guard anyway.
		scr.free(st)
		return lpResult{}, nil, false
	}
	return res, st, true
}
