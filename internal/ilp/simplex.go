package ilp

import (
	"context"
	"math"
	"time"

	"repro/internal/faultinject"
)

// lpStatus reports the outcome of an LP relaxation solve.
type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpIterLimit
)

// lpResult carries the solution of one LP relaxation.
type lpResult struct {
	status lpStatus
	x      []float64 // structural variable values
	obj    float64
	iters  int // simplex iterations spent (pivots + bound flips)
}

// solveLP minimizes the model objective over the LP relaxation with the
// given per-variable bounds, using a bounded-variable primal simplex on a
// dense tableau. Rows that start infeasible (possible once branching fixes
// lower bounds to 1) get Big-M artificial variables. A non-zero deadline or
// a done context aborts long solves with lpIterLimit so the branch-and-bound
// time limit and cancellation hold even when a single relaxation is
// expensive.
func (m *Model) solveLP(ctx context.Context, cons []constraint, lo, hi []float64, deadline time.Time) lpResult {
	// Fault seam: an injected error reports this relaxation infeasible (the
	// node is pruned; at the root the whole solve turns infeasible), a delay
	// stretches the relaxation past the branch-and-bound deadline.
	if err := faultinject.Fire(ctx, faultinject.Simplex); err != nil {
		return lpResult{status: lpInfeasible}
	}
	n := len(m.obj)
	rows := len(cons)
	if n == 0 {
		return lpResult{status: lpOptimal, x: nil, obj: 0}
	}

	// Column layout: [0,n) structural, [n,n+rows) slack, then artificials.
	// Bounds per column; artificials and slacks are [0, +inf).
	ncols := n + rows
	colLo := make([]float64, ncols, ncols+rows)
	colHi := make([]float64, ncols, ncols+rows)
	copy(colLo, lo)
	copy(colHi, hi)
	for j := n; j < ncols; j++ {
		colHi[j] = inf
	}

	// Big-M cost for artificials, scaled to dominate any structural cost.
	bigM := 1.0
	for _, c := range m.obj {
		bigM += math.Abs(c)
	}
	bigM *= 1e4

	cost := make([]float64, ncols, ncols+rows)
	copy(cost, m.obj)

	// Dense tableau rows plus initial basic values.
	t := make([][]float64, rows)
	basis := make([]int, rows)
	xB := make([]float64, rows)
	atUpper := make([]bool, ncols, ncols+rows)
	for j := 0; j < n; j++ {
		// Start nonbasic structurals at the bound nearer the objective
		// descent direction to reduce iterations.
		if m.obj[j] < 0 && !math.IsInf(hi[j], 1) {
			atUpper[j] = true
		}
		if lo[j] == hi[j] {
			atUpper[j] = false
		}
	}
	nbVal := func(j int) float64 {
		if atUpper[j] {
			return colHi[j]
		}
		return colLo[j]
	}

	for i, con := range cons {
		row := make([]float64, ncols, ncols+rows)
		for _, tm := range con.terms {
			row[tm.Var] += tm.Coef
		}
		row[n+i] = 1
		act := 0.0
		for j := 0; j < n; j++ {
			act += row[j] * nbVal(j)
		}
		slack := con.rhs - act
		if slack >= 0 {
			basis[i] = n + i
			xB[i] = slack
			t[i] = row
			continue
		}
		// Infeasible start: negate the row and give it an artificial.
		for j := range row {
			row[j] = -row[j]
		}
		art := len(colLo)
		colLo = append(colLo, 0)
		colHi = append(colHi, inf)
		cost = append(cost, bigM)
		atUpper = append(atUpper, false)
		for k := range t {
			if t[k] != nil {
				t[k] = append(t[k], 0)
			}
		}
		for len(row) <= art {
			row = append(row, 0)
		}
		row[art] = 1
		basis[i] = art
		xB[i] = -slack
		t[i] = row
	}
	// Rows created before a later artificial column appeared were extended
	// in the loop; normalize lengths for safety.
	ncols = len(colLo)
	for i := range t {
		for len(t[i]) < ncols {
			t[i] = append(t[i], 0)
		}
	}

	inBasis := make([]bool, ncols)
	for _, b := range basis {
		inBasis[b] = true
	}

	// Objective row (reduced costs): d_j = c_j - c_B' T_j, maintained by
	// pivoting alongside the tableau.
	objRow := make([]float64, ncols)
	copy(objRow, cost)
	for i, b := range basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		for j := 0; j < ncols; j++ {
			objRow[j] -= cb * t[i][j]
		}
	}

	maxIter := 200 * (rows + ncols + 10)
	blandAfter := 20 * (rows + ncols + 10)
	iter := 0
	for ; ; iter++ {
		if iter > maxIter {
			return lpResult{status: lpIterLimit, iters: iter}
		}
		if iter%64 == 63 {
			if !deadline.IsZero() && time.Now().After(deadline) {
				return lpResult{status: lpIterLimit, iters: iter}
			}
			if ctx.Err() != nil {
				return lpResult{status: lpIterLimit, iters: iter}
			}
		}
		useBland := iter > blandAfter

		// Entering variable: a nonbasic column whose reduced cost allows
		// descent from its current bound.
		enter, dir := -1, 0.0
		bestViol := tol
		for j := 0; j < ncols; j++ {
			if inBasis[j] || colLo[j] == colHi[j] {
				continue
			}
			var viol float64
			var d float64
			if !atUpper[j] && objRow[j] < -tol {
				viol, d = -objRow[j], 1
			} else if atUpper[j] && objRow[j] > tol {
				viol, d = objRow[j], -1
			} else {
				continue
			}
			if useBland {
				enter, dir = j, d
				break
			}
			if viol > bestViol {
				bestViol, enter, dir = viol, j, d
			}
		}
		if enter == -1 {
			break // optimal
		}

		// Ratio test: the entering variable moves by dir*tstep from its
		// bound; basic variables must stay within their own bounds and the
		// entering variable within its span.
		tstep := colHi[enter] - colLo[enter]
		leave := -1
		leaveToUpper := false
		for i := 0; i < rows; i++ {
			coeff := t[i][enter] * dir
			bi := basis[i]
			var limit float64
			var toUpper bool
			switch {
			case coeff > tol:
				limit, toUpper = (xB[i]-colLo[bi])/coeff, false
			case coeff < -tol:
				if math.IsInf(colHi[bi], 1) {
					continue
				}
				limit, toUpper = (colHi[bi]-xB[i])/-coeff, true
			default:
				continue
			}
			if limit < 0 {
				limit = 0
			}
			// Strictly better limit wins; near-ties prefer the smaller
			// basis index (Bland-style, guards against cycling).
			if limit < tstep-tol || (limit < tstep+tol && leave != -1 && basis[i] < basis[leave]) {
				if limit < tstep {
					tstep = limit
				}
				leave, leaveToUpper = i, toUpper
			}
		}
		if math.IsInf(tstep, 1) {
			// Unbounded descent cannot happen with bounded structurals and
			// slack-only rays; treat as numeric trouble.
			return lpResult{status: lpIterLimit, iters: iter}
		}

		if leave == -1 {
			// Bound flip: entering moves to its opposite bound.
			delta := dir * tstep
			for i := 0; i < rows; i++ {
				xB[i] -= t[i][enter] * delta
			}
			atUpper[enter] = !atUpper[enter]
			continue
		}

		// Pivot: entering becomes basic at value bound + dir*tstep.
		newVal := nbVal(enter) + dir*tstep
		delta := dir * tstep
		for i := 0; i < rows; i++ {
			if i != leave {
				xB[i] -= t[i][enter] * delta
			}
		}
		leavingVar := basis[leave]
		inBasis[leavingVar] = false
		atUpper[leavingVar] = leaveToUpper
		basis[leave] = enter
		inBasis[enter] = true
		xB[leave] = newVal

		piv := t[leave][enter]
		prow := t[leave]
		invPiv := 1 / piv
		for j := 0; j < ncols; j++ {
			prow[j] *= invPiv
		}
		for i := 0; i < rows; i++ {
			if i == leave {
				continue
			}
			f := t[i][enter]
			if f == 0 {
				continue
			}
			ri := t[i]
			for j := 0; j < ncols; j++ {
				ri[j] -= f * prow[j]
			}
			ri[enter] = 0 // exact zero against drift
		}
		if f := objRow[enter]; f != 0 {
			for j := 0; j < ncols; j++ {
				objRow[j] -= f * prow[j]
			}
			objRow[enter] = 0
		}
	}

	// Feasibility check: any artificial still carrying value means the
	// constraints cannot be satisfied under the given bounds.
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = nbVal(j)
	}
	for i, b := range basis {
		if b < n {
			x[b] = xB[i]
		} else if b >= n+rows && xB[i] > 1e-6 {
			return lpResult{status: lpInfeasible, iters: iter}
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		// Clamp tiny numeric drift back into bounds.
		if x[j] < lo[j] {
			x[j] = lo[j]
		}
		if x[j] > hi[j] {
			x[j] = hi[j]
		}
		obj += m.obj[j] * x[j]
	}
	return lpResult{status: lpOptimal, x: x, obj: obj, iters: iter}
}
