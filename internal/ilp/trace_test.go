package ilp

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// selectionModel builds a tiny pick-one-of-two model: min -2a - b with
// a + b <= 1, both binary. Optimum a=1, obj -2.
func selectionModel() *Model {
	m := NewModel(2)
	m.SetInteger(0)
	m.SetInteger(1)
	m.SetObj(0, -2)
	m.SetObj(1, -1)
	m.AddConstraint([]Term{{0, 1}, {1, 1}}, 1)
	return m
}

// TestSolveConvergenceSeries checks the traced search: every incumbent
// (warm start included) lands in the "ilp" series, improvements emit
// ilp.incumbent events, and samples carry the root relaxation bound once
// known.
func TestSolveConvergenceSeries(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	m := selectionModel()
	// Warm start with the inferior feasible point b=1 (obj -1) so the search
	// must improve at least once.
	res := Solve(m, SolveOptions{Ctx: ctx, Incumbent: []float64{0, 1}})
	if res.Status != Optimal || res.Obj != -2 {
		t.Fatalf("res = %+v", res)
	}
	rep := rec.Report()
	samples := rep.Series["ilp"]
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want warm start + improvement", len(samples))
	}
	if samples[0].Objective != -1 || samples[0].Routed != 1 {
		t.Errorf("warm-start sample = %+v", samples[0])
	}
	last := samples[len(samples)-1]
	if last.Objective != -2 {
		t.Errorf("final incumbent sample = %+v", last)
	}
	if last.Bound == 0 || last.Bound < -2-1e-6 {
		// The root LP relaxation of this model is exactly -2.
		t.Errorf("bound = %v, want root relaxation near -2", last.Bound)
	}
	var warm, improved int
	for _, e := range rep.Trace {
		if e.Name != "ilp.incumbent" {
			continue
		}
		if e.Args["warm_start"] == 1 {
			warm++
		} else {
			improved++
		}
	}
	if warm != 1 || improved < 1 {
		t.Errorf("incumbent events: warm=%d improved=%d", warm, improved)
	}
}

// TestSolveNoIncumbentNoSamples pins that an infeasible search contributes
// no samples (objectives stay finite in serialized reports).
func TestSolveNoIncumbentNoSamples(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	m := NewModel(1)
	m.SetInteger(0)
	// x <= 1 and -x <= -2 is infeasible for a binary.
	m.AddConstraint([]Term{{0, 1}}, 1)
	m.AddConstraint([]Term{{0, -1}}, -2)
	res := Solve(m, SolveOptions{Ctx: ctx})
	if res.Status != Infeasible {
		t.Fatalf("status = %v", res.Status)
	}
	if n := len(rec.Report().Series["ilp"]); n != 0 {
		t.Errorf("infeasible search recorded %d samples", n)
	}
}
