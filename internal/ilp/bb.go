package ilp

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// Status reports the outcome of an ILP solve.
type Status int

const (
	// Optimal means the returned solution is proven optimal.
	Optimal Status = iota
	// Feasible means a solution was found but the time limit stopped the
	// proof of optimality (the paper's "> 3600 s" rows).
	Feasible
	// Infeasible means no assignment satisfies the constraints.
	Infeasible
	// TimedOut means the time limit expired before any solution was found.
	TimedOut
	// Canceled means the caller's context was canceled mid-solve. The best
	// incumbent found so far, if any, is still attached to the result.
	Canceled
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Canceled:
		return "canceled"
	default:
		return "timed-out"
	}
}

// SolveOptions tunes the branch-and-bound search.
type SolveOptions struct {
	// Ctx, when non-nil, carries the caller's cancellation signal and
	// deadline into the search: cancellation yields the Canceled status,
	// while a context deadline behaves exactly like TimeLimit (whichever
	// expires first wins).
	Ctx context.Context
	// TimeLimit bounds the wall-clock solve time. Zero means no limit.
	TimeLimit time.Duration
	// Incumbent optionally provides a known-feasible starting solution
	// whose objective primes the pruning bound.
	Incumbent []float64
	// MaxNodes bounds the number of explored B&B nodes. Zero means no
	// limit.
	MaxNodes int
	// DisableWarmLP forces every node's LP relaxation to solve cold from
	// the all-slack basis instead of warm-starting from the parent's final
	// basis. Escape hatch for debugging and the warm-vs-cold equivalence
	// suite; results are identical either way.
	DisableWarmLP bool
}

// Result is the outcome of Solve.
type Result struct {
	// Status classifies the outcome.
	Status Status
	// X is the best assignment found (nil unless Optimal or Feasible).
	X []float64
	// Obj is the objective of X.
	Obj float64
	// Nodes is the number of B&B nodes explored.
	Nodes int
	// Runtime is the wall-clock solve duration.
	Runtime time.Duration
}

// Solve runs branch and bound with LP-relaxation bounds on the model.
// Integer variables are branched on the most fractional LP value;
// continuous variables keep their LP values (our models only use them for
// product terms whose integrality follows from the binaries).
func Solve(m *Model, opt SolveOptions) Result {
	start := time.Now()
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	n := m.NumVars()

	var bestX []float64
	bestObj := inf
	if opt.Incumbent != nil && m.Feasible(opt.Incumbent, 1e-6) {
		bestX = append([]float64(nil), opt.Incumbent...)
		bestObj = m.Eval(opt.Incumbent)
	}

	rootLo := make([]float64, n)
	rootHi := make([]float64, n)
	for i := range rootHi {
		rootHi[i] = 1
	}
	stack := []bbNode{{lo: rootLo, hi: rootHi}}
	nodes := 0
	timedOut := false
	canceled := false
	pruned := 0
	simplexIters := 0
	lazyActivated := 0
	warmSolves := 0
	coldSolves := 0
	// Adaptive warm gate: a failed warm attempt (certificate or guard bail)
	// pays its dual-simplex work on top of the cold solve it falls back to,
	// so a model whose LPs keep rejecting warm starts must stop attempting
	// them. The gate is a deterministic function of the search trajectory —
	// every attempt outcome is result-identical to cold by construction — so
	// bit-identity with the cold solver is unaffected.
	warmFails := 0
	scr := getScratch()
	scrFresh := scr.fresh
	scr.fresh = false
	defer putScratch(scr)
	rec := obs.FromContext(ctx)
	defer func() {
		if rec == nil {
			return
		}
		// One ilp.Solve call per monolithic exact solve, many per
		// hierarchical run (one per tile) — counters accumulate across them.
		rec.Add(obs.CounterILPSolves, 1)
		rec.Add(obs.CounterILPBBNodes, int64(nodes))
		rec.Add(obs.CounterILPBBPruned, int64(pruned))
		rec.Add(obs.CounterILPSimplexIters, int64(simplexIters))
		rec.Add(obs.CounterILPLazyActive, int64(lazyActivated))
		rec.Add(obs.CounterILPLPWarm, int64(warmSolves))
		rec.Add(obs.CounterILPLPCold, int64(coldSolves))
		rec.Add(obs.CounterILPScratchGets, 1)
		if scrFresh {
			rec.Add(obs.CounterILPScratchFresh, 1)
		}
	}()
	// Convergence series: one sample per incumbent (warm start included),
	// carrying the root-relaxation bound once it is known. Samples are only
	// taken on finite objectives — an infeasible search contributes none.
	samp := rec.Sampler("ilp")
	var rootBound float64
	if rec != nil && bestX != nil {
		samp.Record(bestObj, countSelected(m, bestX), 0)
		rec.EmitAt("ilp.incumbent", "ilp", time.Now(), 0, obs.Args{
			"objective": bestObj, "nodes": 0, "warm_start": 1,
		})
	}

	// Lazy-row management: the LP starts with only the base constraints;
	// violated lazy rows are activated globally as relaxation solutions
	// expose them. Bounds from the smaller LPs remain valid relaxation
	// bounds; incumbents are only accepted once no lazy row is violated.
	lazyActive := make([]bool, len(m.lazy))
	activeCons := append([]constraint(nil), m.cons...)
	activate := func(idxs []int) {
		for _, li := range idxs {
			if !lazyActive[li] {
				lazyActive[li] = true
				lazyActivated++
				activeCons = append(activeCons, m.lazy[li])
			}
		}
	}

	for len(stack) > 0 {
		if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			canceled = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			timedOut = true
			break
		}
		if opt.MaxNodes > 0 && nodes >= opt.MaxNodes {
			timedOut = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		// Warm start: re-solve from the parent node's final basis when the
		// snapshot still matches the active row set (a lazy activation in
		// between invalidates it). The warm path only ever returns proven
		// optima — anything questionable falls back to a cold solve, so the
		// search sees identical relaxation results either way.
		var res lpResult
		var st *lpState
		warmed := false
		if nd.warm != nil {
			if !opt.DisableWarmLP && warmFails < 16+4*warmSolves && nd.warmCons == len(activeCons) {
				if wres, wst, ok := m.solveLPWarm(ctx, activeCons, nd.lo, nd.hi, deadline, nd.warm, scr); ok {
					if wres.status != lpOptimal || warmDecisionSafe(m, wres, bestObj, lazyActive) {
						res, st, warmed = wres, wst, true
					} else {
						warmFails++
						scr.free(wst)
					}
				} else {
					warmFails++
				}
			}
			scr.free(nd.warm)
			nd.warm = nil
		}
		if warmed {
			warmSolves++
		} else {
			res, st = m.solveLPCold(ctx, activeCons, nd.lo, nd.hi, deadline, scr)
			coldSolves++
		}
		simplexIters += res.iters
		// Activate violated lazy rows and re-solve until the relaxation
		// respects every discovered constraint (bounded rounds per node).
		// Re-solves go cold: the row set just grew, so no snapshot applies.
		for round := 0; res.status == lpOptimal && round < 20; round++ {
			viol := m.violatedLazy(res.x, lazyActive)
			if len(viol) == 0 {
				break
			}
			activate(viol)
			scr.free(st)
			res, st = m.solveLPCold(ctx, activeCons, nd.lo, nd.hi, deadline, scr)
			coldSolves++
			simplexIters += res.iters
		}
		switch res.status {
		case lpInfeasible:
			scr.free(st)
			continue
		case lpIterLimit:
			scr.free(st)
			if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
				canceled = true
				continue
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				timedOut = true
				continue
			}
			// No usable bound; branch blindly on the first unfixed binary.
			// The aborted tableau is useless mid-pivot, so no warm handoff.
			j := firstUnfixedInt(m, nd.lo, nd.hi)
			if j == -1 {
				continue
			}
			stack = pushChildren(stack, nd.lo, nd.hi, j)
			continue
		}
		if rec != nil && nodes == 1 {
			// The first node's relaxation over the full variable box is the
			// global lower bound reported alongside incumbents.
			rootBound = res.obj
		}
		if res.obj >= bestObj-1e-9 {
			pruned++
			scr.free(st)
			continue // bound prune
		}
		if gi := fractionalSOS(m, res.x); gi >= 0 {
			before := len(stack)
			stack = pushSOSChildren(stack, m.sos[gi], nd.lo, nd.hi, res.x)
			attachWarm(stack, before, st, scr, len(activeCons), opt.DisableWarmLP)
			continue
		}
		frac := mostFractionalInt(m, res.x)
		if frac == -1 {
			// Integral on all binaries: round negligible drift and accept,
			// unless a still-inactive lazy row rejects it — then activate
			// and revisit the node (possible only when the per-node
			// activation round cap was hit).
			x := append([]float64(nil), res.x...)
			for i := range x {
				if m.integer[i] {
					x[i] = math.Round(x[i])
				}
			}
			scr.free(st)
			if viol := m.violatedLazy(x, lazyActive); len(viol) > 0 {
				activate(viol)
				stack = append(stack, nd)
				continue
			}
			if obj := m.Eval(x); obj < bestObj {
				bestObj = obj
				bestX = x
				if rec != nil {
					samp.Record(bestObj, countSelected(m, x), rootBound)
					rec.EmitAt("ilp.incumbent", "ilp", time.Now(), 0, obs.Args{
						"objective": bestObj, "nodes": float64(nodes),
					})
				}
			}
			continue
		}
		before := len(stack)
		stack = pushChildren(stack, nd.lo, nd.hi, frac)
		attachWarm(stack, before, st, scr, len(activeCons), opt.DisableWarmLP)
	}

	// Nodes abandoned by a timeout or cancellation may still hold basis
	// snapshots; release them so the slices return to the scratch freelists.
	for i := range stack {
		scr.free(stack[i].warm)
	}

	r := Result{Nodes: nodes, Runtime: time.Since(start)}
	switch {
	case canceled:
		r.Status, r.X, r.Obj = Canceled, bestX, bestObj
	case bestX == nil && timedOut:
		r.Status = TimedOut
	case bestX == nil:
		r.Status = Infeasible
	case timedOut:
		r.Status, r.X, r.Obj = Feasible, bestX, bestObj
	default:
		r.Status, r.X, r.Obj = Optimal, bestX, bestObj
	}
	return r
}

// decisionGuard is the margin every search decision derived from a warm LP
// result must clear. A warm and a cold solve of the same unique-optimum LP
// agree to roughly machine precision (~1e-12 observed on these tableaus),
// so any decision quantity at least this far from its threshold resolves
// identically under either solve; anything closer makes the warm result
// unusable. The width is three orders of magnitude above the observed
// cross-solve noise while staying far below intTol, so ordinary basic
// values (drift ~1e-16) pass and only genuine knife-edges bail to cold.
const decisionGuard = 1e-7

// warmDecisionSafe reports whether every decision branch-and-bound would
// take from res is robust to the sub-decisionGuard numeric differences
// between a warm and a cold solve of the same LP. It mirrors, in order,
// each use the search makes of res: lazy-row activation, the incumbent
// bound prune, integrality classification, SOS group selection and child
// ordering, and most-fractional variable selection. Any quantity within
// decisionGuard of its threshold — or any tie the relevant comparison
// breaks by low-order bits — disqualifies the result.
func warmDecisionSafe(m *Model, res lpResult, bestObj float64, lazyActive []bool) bool {
	// Lazy activation: every inactive row must be decisively violated or
	// decisively satisfied. With any clear violation the node activates and
	// re-solves cold, so nothing further depends on res.
	clearViol := false
	for li, con := range m.lazy {
		if lazyActive[li] {
			continue
		}
		lhs := 0.0
		for _, t := range con.terms {
			lhs += t.Coef * res.x[t.Var]
		}
		d := lhs - (con.rhs + 1e-7)
		if d > -decisionGuard && d < decisionGuard {
			return false
		}
		if d > 0 {
			clearViol = true
		}
	}
	if clearViol {
		return true
	}
	// Incumbent bound prune must be decisive; a clear prune ends the node.
	if !math.IsInf(bestObj, 1) {
		d := res.obj - (bestObj - 1e-9)
		if d > -decisionGuard && d < decisionGuard {
			return false
		}
		if d > 0 {
			return true
		}
	}
	// Integrality classification of every binary must be decisive.
	for i, v := range res.x {
		if !m.integer[i] {
			continue
		}
		f := math.Abs(v - math.Round(v))
		if d := f - intTol; d > -decisionGuard && d < decisionGuard {
			return false
		}
	}
	// SOS group selection: the winning group's fractional mass must clear
	// both the intTol floor and the runner-up by the guard, and the chosen
	// group's member values must be pairwise separated — child push order
	// sorts on them.
	best, bestMass, secondMass := -1, intTol, intTol
	for gi, vars := range m.sos {
		mass := 0.0
		frac := false
		for _, v := range vars {
			mass += res.x[v]
			if f := math.Abs(res.x[v] - math.Round(res.x[v])); f > intTol {
				frac = true
			}
		}
		if !frac {
			continue
		}
		if d := mass - intTol; d > -decisionGuard && d < decisionGuard {
			return false
		}
		if mass > bestMass {
			best, secondMass, bestMass = gi, bestMass, mass
		} else if mass > secondMass {
			secondMass = mass
		}
	}
	if best >= 0 {
		// An exact bitwise tie is safe: selection uses a strict comparison,
		// so the first group wins deterministically in either run. Only a
		// near-tie broken by low-order bits is disqualifying.
		if bestMass-secondMass < decisionGuard {
			return false
		}
		vars := m.sos[best]
		for a := 0; a < len(vars); a++ {
			for b := a + 1; b < len(vars); b++ {
				d := res.x[vars[a]] - res.x[vars[b]]
				// Exactly equal members sort identically (the comparator is
				// strict and the sort deterministic); near-equal ones don't.
				if d > -decisionGuard && d < decisionGuard {
					return false
				}
			}
		}
		return true
	}
	// Most-fractional branching: winner and runner-up distances to 0.5 must
	// be separated, and every contender must clear the initial threshold.
	bestDist, secondDist := 0.5-intTol, 0.5-intTol
	found := false
	for i, v := range res.x {
		if !m.integer[i] {
			continue
		}
		if math.Abs(v-math.Round(v)) < intTol {
			continue
		}
		d := math.Abs(v - 0.5)
		if diff := d - (0.5 - intTol); diff > -decisionGuard && diff < decisionGuard {
			return false
		}
		if d < bestDist {
			secondDist, bestDist = bestDist, d
			found = true
		} else if d < secondDist {
			secondDist = d
		}
	}
	if found && secondDist-bestDist < decisionGuard {
		return false
	}
	return true
}

// bbNode is one branch-and-bound node: per-variable bounds, plus an
// optional warm-start snapshot of the parent's final simplex basis.
// warmCons remembers how many rows were active when the snapshot was
// taken — a global lazy activation in the meantime invalidates it.
type bbNode struct {
	lo, hi   []float64
	warm     *lpState
	warmCons int
}

// attachWarm hands the solved node's final state to the stack-top child —
// the one depth-first search pops next, whose LP differs from the parent
// by a single bound change and is therefore the best warm candidate. The
// snapshot is consumed (and its storage recycled) on the very next loop
// iteration instead of being pinned for the whole sibling set, which keeps
// the freelist hot and the retention overhead near zero. With no children
// (or warm starts disabled, or no state to give) the state is recycled
// immediately.
func attachWarm(stack []bbNode, from int, st *lpState, scr *lpScratch, nCons int, disabled bool) {
	if st == nil {
		return
	}
	if len(stack) == from || disabled {
		scr.free(st)
		return
	}
	top := len(stack) - 1
	stack[top].warm = st
	stack[top].warmCons = nCons
}

// countSelected counts the binaries set in a solution — the "routed" axis of
// the ILP convergence series (selection binaries dominate the integer set).
func countSelected(m *Model, x []float64) int {
	n := 0
	for i, v := range x {
		if m.integer[i] && v > 0.5 {
			n++
		}
	}
	return n
}

// pushChildren pushes the two child nodes fixing variable j to 0 and 1.
// The 1-branch is pushed last so depth-first search tries it first —
// selection problems usually want variables on.
func pushChildren(stack []bbNode, lo, hi []float64, j int) []bbNode {
	lo0 := append([]float64(nil), lo...)
	hi0 := append([]float64(nil), hi...)
	hi0[j] = 0
	lo1 := append([]float64(nil), lo...)
	hi1 := append([]float64(nil), hi...)
	lo1[j] = 1
	stack = append(stack, bbNode{lo: lo0, hi: hi0})
	stack = append(stack, bbNode{lo: lo1, hi: hi1})
	return stack
}

// fractionalSOS returns the index of an SOS group containing a fractional
// variable (the one with the largest fractional mass), or -1.
func fractionalSOS(m *Model, x []float64) int {
	best, bestMass := -1, intTol
	for gi, vars := range m.sos {
		mass := 0.0
		frac := false
		for _, v := range vars {
			mass += x[v]
			if f := math.Abs(x[v] - math.Round(x[v])); f > intTol {
				frac = true
			}
		}
		if frac && mass > bestMass {
			best, bestMass = gi, mass
		}
	}
	return best
}

// pushSOSChildren branches a selection group: one child per candidate
// fixing that candidate on (and its siblings off), plus one child with the
// whole group off. Children with the largest LP value are pushed last so
// depth-first search explores them first. Candidates already fixed off are
// skipped.
func pushSOSChildren(stack []bbNode, vars []int, lo, hi, x []float64) []bbNode {
	ordered := append([]int(nil), vars...)
	sort.Slice(ordered, func(a, b int) bool { return x[ordered[a]] < x[ordered[b]] })

	// None-selected child first (explored last).
	loN := append([]float64(nil), lo...)
	hiN := append([]float64(nil), hi...)
	feasible := true
	for _, v := range vars {
		if loN[v] > 0.5 {
			feasible = false
			break
		}
		hiN[v] = 0
	}
	if feasible {
		stack = append(stack, bbNode{lo: loN, hi: hiN})
	}
	for _, v := range ordered {
		if hi[v] < 0.5 {
			continue // already excluded
		}
		loC := append([]float64(nil), lo...)
		hiC := append([]float64(nil), hi...)
		loC[v] = 1
		ok := true
		for _, w := range vars {
			if w == v {
				continue
			}
			if loC[w] > 0.5 {
				ok = false
				break
			}
			hiC[w] = 0
		}
		if ok {
			stack = append(stack, bbNode{lo: loC, hi: hiC})
		}
	}
	return stack
}

// mostFractionalInt returns the integer variable whose LP value is closest
// to 0.5, or -1 when all integer variables are integral.
func mostFractionalInt(m *Model, x []float64) int {
	best, bestDist := -1, 0.5-intTol
	for i, v := range x {
		if !m.integer[i] {
			continue
		}
		f := math.Abs(v - math.Round(v))
		if f < intTol {
			continue
		}
		if d := math.Abs(v - 0.5); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// firstUnfixedInt returns the first binary variable with lo < hi, or -1.
func firstUnfixedInt(m *Model, lo, hi []float64) int {
	for i := range lo {
		if m.integer[i] && hi[i]-lo[i] > intTol {
			return i
		}
	}
	return -1
}
