package ilp

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// Status reports the outcome of an ILP solve.
type Status int

const (
	// Optimal means the returned solution is proven optimal.
	Optimal Status = iota
	// Feasible means a solution was found but the time limit stopped the
	// proof of optimality (the paper's "> 3600 s" rows).
	Feasible
	// Infeasible means no assignment satisfies the constraints.
	Infeasible
	// TimedOut means the time limit expired before any solution was found.
	TimedOut
	// Canceled means the caller's context was canceled mid-solve. The best
	// incumbent found so far, if any, is still attached to the result.
	Canceled
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Canceled:
		return "canceled"
	default:
		return "timed-out"
	}
}

// SolveOptions tunes the branch-and-bound search.
type SolveOptions struct {
	// Ctx, when non-nil, carries the caller's cancellation signal and
	// deadline into the search: cancellation yields the Canceled status,
	// while a context deadline behaves exactly like TimeLimit (whichever
	// expires first wins).
	Ctx context.Context
	// TimeLimit bounds the wall-clock solve time. Zero means no limit.
	TimeLimit time.Duration
	// Incumbent optionally provides a known-feasible starting solution
	// whose objective primes the pruning bound.
	Incumbent []float64
	// MaxNodes bounds the number of explored B&B nodes. Zero means no
	// limit.
	MaxNodes int
}

// Result is the outcome of Solve.
type Result struct {
	// Status classifies the outcome.
	Status Status
	// X is the best assignment found (nil unless Optimal or Feasible).
	X []float64
	// Obj is the objective of X.
	Obj float64
	// Nodes is the number of B&B nodes explored.
	Nodes int
	// Runtime is the wall-clock solve duration.
	Runtime time.Duration
}

// Solve runs branch and bound with LP-relaxation bounds on the model.
// Integer variables are branched on the most fractional LP value;
// continuous variables keep their LP values (our models only use them for
// product terms whose integrality follows from the binaries).
func Solve(m *Model, opt SolveOptions) Result {
	start := time.Now()
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = start.Add(opt.TimeLimit)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	n := m.NumVars()

	var bestX []float64
	bestObj := inf
	if opt.Incumbent != nil && m.Feasible(opt.Incumbent, 1e-6) {
		bestX = append([]float64(nil), opt.Incumbent...)
		bestObj = m.Eval(opt.Incumbent)
	}

	rootLo := make([]float64, n)
	rootHi := make([]float64, n)
	for i := range rootHi {
		rootHi[i] = 1
	}
	stack := []bbNode{{rootLo, rootHi}}
	nodes := 0
	timedOut := false
	canceled := false
	pruned := 0
	simplexIters := 0
	lazyActivated := 0
	rec := obs.FromContext(ctx)
	defer func() {
		if rec == nil {
			return
		}
		// One ilp.Solve call per monolithic exact solve, many per
		// hierarchical run (one per tile) — counters accumulate across them.
		rec.Add("ilp.solves", 1)
		rec.Add("ilp.bb.nodes", int64(nodes))
		rec.Add("ilp.bb.pruned", int64(pruned))
		rec.Add("ilp.simplex.iterations", int64(simplexIters))
		rec.Add("ilp.lazy.activated", int64(lazyActivated))
	}()
	// Convergence series: one sample per incumbent (warm start included),
	// carrying the root-relaxation bound once it is known. Samples are only
	// taken on finite objectives — an infeasible search contributes none.
	samp := rec.Sampler("ilp")
	var rootBound float64
	if rec != nil && bestX != nil {
		samp.Record(bestObj, countSelected(m, bestX), 0)
		rec.EmitAt("ilp.incumbent", "ilp", time.Now(), 0, obs.Args{
			"objective": bestObj, "nodes": 0, "warm_start": 1,
		})
	}

	// Lazy-row management: the LP starts with only the base constraints;
	// violated lazy rows are activated globally as relaxation solutions
	// expose them. Bounds from the smaller LPs remain valid relaxation
	// bounds; incumbents are only accepted once no lazy row is violated.
	lazyActive := make([]bool, len(m.lazy))
	activeCons := append([]constraint(nil), m.cons...)
	activate := func(idxs []int) {
		for _, li := range idxs {
			if !lazyActive[li] {
				lazyActive[li] = true
				lazyActivated++
				activeCons = append(activeCons, m.lazy[li])
			}
		}
	}

	for len(stack) > 0 {
		if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			canceled = true
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			timedOut = true
			break
		}
		if opt.MaxNodes > 0 && nodes >= opt.MaxNodes {
			timedOut = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		res := m.solveLP(ctx, activeCons, nd.lo, nd.hi, deadline)
		simplexIters += res.iters
		// Activate violated lazy rows and re-solve until the relaxation
		// respects every discovered constraint (bounded rounds per node).
		for round := 0; res.status == lpOptimal && round < 20; round++ {
			viol := m.violatedLazy(res.x, lazyActive)
			if len(viol) == 0 {
				break
			}
			activate(viol)
			res = m.solveLP(ctx, activeCons, nd.lo, nd.hi, deadline)
			simplexIters += res.iters
		}
		switch res.status {
		case lpInfeasible:
			continue
		case lpIterLimit:
			if err := ctx.Err(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
				canceled = true
				continue
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				timedOut = true
				continue
			}
			// No usable bound; branch blindly on the first unfixed binary.
			j := firstUnfixedInt(m, nd.lo, nd.hi)
			if j == -1 {
				continue
			}
			stack = pushChildren(stack, nd.lo, nd.hi, j)
			continue
		}
		if rec != nil && nodes == 1 {
			// The first node's relaxation over the full variable box is the
			// global lower bound reported alongside incumbents.
			rootBound = res.obj
		}
		if res.obj >= bestObj-1e-9 {
			pruned++
			continue // bound prune
		}
		if gi := fractionalSOS(m, res.x); gi >= 0 {
			stack = pushSOSChildren(stack, m.sos[gi], nd.lo, nd.hi, res.x)
			continue
		}
		frac := mostFractionalInt(m, res.x)
		if frac == -1 {
			// Integral on all binaries: round negligible drift and accept,
			// unless a still-inactive lazy row rejects it — then activate
			// and revisit the node (possible only when the per-node
			// activation round cap was hit).
			x := append([]float64(nil), res.x...)
			for i := range x {
				if m.integer[i] {
					x[i] = math.Round(x[i])
				}
			}
			if viol := m.violatedLazy(x, lazyActive); len(viol) > 0 {
				activate(viol)
				stack = append(stack, nd)
				continue
			}
			if obj := m.Eval(x); obj < bestObj {
				bestObj = obj
				bestX = x
				if rec != nil {
					samp.Record(bestObj, countSelected(m, x), rootBound)
					rec.EmitAt("ilp.incumbent", "ilp", time.Now(), 0, obs.Args{
						"objective": bestObj, "nodes": float64(nodes),
					})
				}
			}
			continue
		}
		stack = pushChildren(stack, nd.lo, nd.hi, frac)
	}

	r := Result{Nodes: nodes, Runtime: time.Since(start)}
	switch {
	case canceled:
		r.Status, r.X, r.Obj = Canceled, bestX, bestObj
	case bestX == nil && timedOut:
		r.Status = TimedOut
	case bestX == nil:
		r.Status = Infeasible
	case timedOut:
		r.Status, r.X, r.Obj = Feasible, bestX, bestObj
	default:
		r.Status, r.X, r.Obj = Optimal, bestX, bestObj
	}
	return r
}

// bbNode is one branch-and-bound node: per-variable bounds.
type bbNode struct {
	lo, hi []float64
}

// countSelected counts the binaries set in a solution — the "routed" axis of
// the ILP convergence series (selection binaries dominate the integer set).
func countSelected(m *Model, x []float64) int {
	n := 0
	for i, v := range x {
		if m.integer[i] && v > 0.5 {
			n++
		}
	}
	return n
}

// pushChildren pushes the two child nodes fixing variable j to 0 and 1.
// The 1-branch is pushed last so depth-first search tries it first —
// selection problems usually want variables on.
func pushChildren(stack []bbNode, lo, hi []float64, j int) []bbNode {
	lo0 := append([]float64(nil), lo...)
	hi0 := append([]float64(nil), hi...)
	hi0[j] = 0
	lo1 := append([]float64(nil), lo...)
	hi1 := append([]float64(nil), hi...)
	lo1[j] = 1
	stack = append(stack, bbNode{lo0, hi0})
	stack = append(stack, bbNode{lo1, hi1})
	return stack
}

// fractionalSOS returns the index of an SOS group containing a fractional
// variable (the one with the largest fractional mass), or -1.
func fractionalSOS(m *Model, x []float64) int {
	best, bestMass := -1, intTol
	for gi, vars := range m.sos {
		mass := 0.0
		frac := false
		for _, v := range vars {
			mass += x[v]
			if f := math.Abs(x[v] - math.Round(x[v])); f > intTol {
				frac = true
			}
		}
		if frac && mass > bestMass {
			best, bestMass = gi, mass
		}
	}
	return best
}

// pushSOSChildren branches a selection group: one child per candidate
// fixing that candidate on (and its siblings off), plus one child with the
// whole group off. Children with the largest LP value are pushed last so
// depth-first search explores them first. Candidates already fixed off are
// skipped.
func pushSOSChildren(stack []bbNode, vars []int, lo, hi, x []float64) []bbNode {
	ordered := append([]int(nil), vars...)
	sort.Slice(ordered, func(a, b int) bool { return x[ordered[a]] < x[ordered[b]] })

	// None-selected child first (explored last).
	loN := append([]float64(nil), lo...)
	hiN := append([]float64(nil), hi...)
	feasible := true
	for _, v := range vars {
		if loN[v] > 0.5 {
			feasible = false
			break
		}
		hiN[v] = 0
	}
	if feasible {
		stack = append(stack, bbNode{loN, hiN})
	}
	for _, v := range ordered {
		if hi[v] < 0.5 {
			continue // already excluded
		}
		loC := append([]float64(nil), lo...)
		hiC := append([]float64(nil), hi...)
		loC[v] = 1
		ok := true
		for _, w := range vars {
			if w == v {
				continue
			}
			if loC[w] > 0.5 {
				ok = false
				break
			}
			hiC[w] = 0
		}
		if ok {
			stack = append(stack, bbNode{loC, hiC})
		}
	}
	return stack
}

// mostFractionalInt returns the integer variable whose LP value is closest
// to 0.5, or -1 when all integer variables are integral.
func mostFractionalInt(m *Model, x []float64) int {
	best, bestDist := -1, 0.5-intTol
	for i, v := range x {
		if !m.integer[i] {
			continue
		}
		f := math.Abs(v - math.Round(v))
		if f < intTol {
			continue
		}
		if d := math.Abs(v - 0.5); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// firstUnfixedInt returns the first binary variable with lo < hi, or -1.
func firstUnfixedInt(m *Model, lo, hi []float64) int {
	for i := range lo {
		if m.integer[i] && hi[i]-lo[i] > intTol {
			return i
		}
	}
	return -1
}
