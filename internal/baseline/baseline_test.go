package baseline

import (
	"testing"

	"repro/internal/benchgen"
	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/signal"
)

func TestRouteEverythingRouted(t *testing.T) {
	spec := benchgen.Scale(benchgen.Industry(1), 0.05)
	d := spec.Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Route(p)
	for gi := range res.Routing.Bits {
		for bi, b := range res.Routing.Bits[gi] {
			if !b.Routed {
				t.Fatalf("manual baseline left group %d bit %d unrouted", gi, bi)
			}
			if !b.Tree.Connected(d.Groups[gi].Bits[bi].PinLocs()) {
				t.Fatalf("group %d bit %d tree disconnected", gi, bi)
			}
		}
	}
	if res.Routing.RoutedGroups() != len(d.Groups) {
		t.Error("manual baseline must route 100% of groups")
	}
}

func TestRouteMayOverflowButTracksIt(t *testing.T) {
	// Overlapping buses with tiny capacity: manual still routes all, and
	// overflow shows up in the usage (the Fig. 11(a)/12(a) hotspots).
	d := &signal.Design{
		Name: "hot",
		Grid: signal.GridSpec{W: 24, H: 12, NumLayers: 2, EdgeCap: 1},
	}
	for gi := 0; gi < 3; gi++ {
		var g signal.Group
		for b := 0; b < 3; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Driver: 0,
				Pins:   []signal.Pin{{Loc: geom.Pt(2, 2+b)}, {Loc: geom.Pt(20, 2+b)}},
			})
		}
		d.Groups = append(d.Groups, g)
	}
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Route(p)
	if res.Routing.RoutedGroups() != 3 {
		t.Fatalf("routed %d of 3 groups", res.Routing.RoutedGroups())
	}
	if res.Usage.Overflow() == 0 {
		t.Error("three stacked buses over capacity 1 must overflow")
	}
}

func TestRouteDeterministic(t *testing.T) {
	spec := benchgen.Scale(benchgen.Industry(3), 0.05)
	d := spec.Generate()
	p1, _ := route.Build(d, route.Options{})
	p2, _ := route.Build(d, route.Options{})
	r1, r2 := Route(p1), Route(p2)
	if r1.Usage.TotalUse() != r2.Usage.TotalUse() {
		t.Error("baseline nondeterministic")
	}
}

func TestRouteSolutionObjectsRecorded(t *testing.T) {
	spec := benchgen.Scale(benchgen.Industry(1), 0.05)
	d := spec.Generate()
	p, _ := route.Build(d, route.Options{})
	res := Route(p)
	for gi := range d.Groups {
		if len(res.Routing.Objects[gi]) == 0 {
			t.Fatalf("group %d has no solution objects", gi)
		}
	}
}
