// Package baseline emulates the paper's comparison point: manual designs
// by experienced industrial designers. Manual layouts in Table I are 100 %
// routed with the lowest wirelength but show overflow hotspots in the
// congestion maps (Figs. 11(a) and 12(a)). A capacity-oblivious sequential
// router reproduces exactly these properties: it routes every group
// bit-by-bit on its cheapest regular topology, preferring the currently
// least-used layer pair but committing regardless of overflow.
package baseline

import (
	"time"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/route"
	"repro/internal/signal"
	"repro/internal/steiner"
)

// Result is the outcome of the manual-design emulation.
type Result struct {
	// Routing holds the per-bit geometry; every bit is routed.
	Routing *route.Routing
	// Usage is the resulting track usage; overflow is permitted.
	Usage *grid.Usage
	// Runtime is the wall-clock routing time.
	Runtime time.Duration
}

// Route runs the sequential bit-by-bit baseline over the problem's
// candidate sets: for each object it takes the cheapest 2-D topology (as a
// careful designer would draw it) on the lowest layer pair — designers
// prefer the bottom metals for signal wiring — and commits even if edges
// overflow. The resulting hotspots are the ones visible in the paper's
// Figs. 11(a) and 12(a).
func Route(p *route.Problem) Result {
	start := time.Now()
	r := p.NewRouting()
	u := grid.NewUsage(p.Grid)
	for i := range p.Objects {
		cands := p.Cands[i]
		if len(cands) == 0 {
			// No in-bounds candidate; route each bit with its own tree on
			// the first layer pair (a designer always finds some path).
			routeFallback(p, r, u, i)
			continue
		}
		// Candidates are cost-sorted with adjacent bottom layer pairs
		// first, so the head of the list is the designer's default choice.
		c := &cands[0]
		for _, e := range c.Edges {
			u.Add(int(e.Layer), int(e.Idx), int(e.N))
		}
		obj := &p.Objects[i]
		gi := obj.GroupIdx
		for k, bi := range obj.BitIdx {
			r.Bits[gi][bi] = route.BitRoute{Routed: true, Tree: c.Topo.BitTrees[k], HLayer: c.HLayer, VLayer: c.VLayer}
		}
		r.Objects[gi] = append(r.Objects[gi], route.SolutionObject{
			RepTree: c.Topo.Backbone,
			RepBit:  obj.BitIdx[obj.Rep],
			BitIdx:  append([]int(nil), obj.BitIdx...),
			HLayer:  c.HLayer,
			VLayer:  c.VLayer,
			PinMap:  obj.PinMap,
		})
	}
	return Result{Routing: r, Usage: u, Runtime: time.Since(start)}
}

// routeFallback routes every bit of object i with a fresh minimal tree on
// the bottom layer pair, ignoring capacity.
func routeFallback(p *route.Problem, r *route.Routing, u *grid.Usage, i int) {
	obj := &p.Objects[i]
	gi := obj.GroupIdx
	g := &p.Design.Groups[gi]
	hl := p.Grid.HLayers()[0]
	vl := p.Grid.VLayers()[0]
	for _, bi := range obj.BitIdx {
		t := minTree(&g.Bits[bi])
		clampTree(p, &t)
		route.AddTreeUsage(u, t, hl, vl, 1)
		r.Bits[gi][bi] = route.BitRoute{Routed: true, Tree: t, HLayer: hl, VLayer: vl}
	}
	rep := obj.RepBit(g)
	t := minTree(rep)
	clampTree(p, &t)
	r.Objects[gi] = append(r.Objects[gi], route.SolutionObject{
		RepTree: t,
		RepBit:  obj.BitIdx[obj.Rep],
		BitIdx:  append([]int(nil), obj.BitIdx...),
		HLayer:  hl,
		VLayer:  vl,
		PinMap:  obj.PinMap,
	})
}

func clampTree(p *route.Problem, t *geom.Tree) {
	for si := range t.Segs {
		a := p.Grid.ClampPoint(t.Segs[si].A)
		b := p.Grid.ClampPoint(t.Segs[si].B)
		t.Segs[si].A, t.Segs[si].B = a, b
	}
}

func minTree(b *signal.Bit) geom.Tree {
	return steiner.Iterated1Steiner(b.PinLocs(), steiner.Options{BendWeight: 2})
}
