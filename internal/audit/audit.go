// Package audit independently verifies the legality of a finished routing.
// It trusts nothing the solvers computed: track usage is re-derived from
// the routed geometry (the same arithmetic as Routing.UsageOf, but guarded
// so hostile inputs cannot panic), per-edge per-layer capacity is checked
// against the grid's base capacities, every routed bit must connect all of
// its pins, and every layer assignment must name a real layer of the right
// direction. The result is a structured violation report the flow can
// surface in warn mode or turn into a hard error in strict mode.
package audit

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/signal"
)

// Kind classifies a legality violation.
type Kind int

const (
	// Malformed means the routing's shape does not match the design
	// (missing groups or bits).
	Malformed Kind = iota
	// BadLayer means a routed bit names a layer outside the metal stack or
	// with the wrong routing direction for its trunks.
	BadLayer
	// OffGrid means a routed segment leaves the grid.
	OffGrid
	// Disconnected means a routed bit's tree does not span all its pins.
	Disconnected
	// OverCapacity means an edge carries more tracks than its capacity.
	OverCapacity
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Malformed:
		return "malformed"
	case BadLayer:
		return "bad-layer"
	case OffGrid:
		return "off-grid"
	case Disconnected:
		return "disconnected"
	case OverCapacity:
		return "over-capacity"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Violation is one legality failure. Group and Bit address the offending
// bit for per-bit kinds and are -1 for grid-level kinds (OverCapacity).
type Violation struct {
	// Kind classifies the failure.
	Kind Kind
	// Group and Bit index the offending bit, or -1.
	Group, Bit int
	// Layer is the offending layer, or -1.
	Layer int
	// Detail is a human-readable description.
	Detail string
}

// String formats the violation.
func (v Violation) String() string {
	loc := ""
	if v.Group >= 0 {
		loc = fmt.Sprintf("group %d bit %d: ", v.Group, v.Bit)
	}
	return fmt.Sprintf("%s: %s%s", v.Kind, loc, v.Detail)
}

// Report is the outcome of one audit.
type Report struct {
	// Violations lists every failure found, in deterministic order.
	Violations []Violation
	// BitsAudited counts the routed bits inspected.
	BitsAudited int
	// EdgesAudited counts the grid edges whose capacity was checked.
	EdgesAudited int
}

// OK reports whether the audit found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Count returns the number of violations of one kind.
func (r *Report) Count(k Kind) int {
	n := 0
	for _, v := range r.Violations {
		if v.Kind == k {
			n++
		}
	}
	return n
}

// Summary is a one-line digest ("legal" or per-kind counts).
func (r *Report) Summary() string {
	if r.OK() {
		return fmt.Sprintf("legal (%d bits, %d edges audited)", r.BitsAudited, r.EdgesAudited)
	}
	parts := []string{}
	for _, k := range []Kind{Malformed, BadLayer, OffGrid, Disconnected, OverCapacity} {
		if n := r.Count(k); n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, k))
		}
	}
	return fmt.Sprintf("%d violations: %s", len(r.Violations), strings.Join(parts, ", "))
}

// Err returns nil for a clean report, or an error carrying the summary and
// the first violations.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	const show = 5
	lines := make([]string, 0, show+1)
	for i, v := range r.Violations {
		if i == show {
			lines = append(lines, fmt.Sprintf("... and %d more", len(r.Violations)-show))
			break
		}
		lines = append(lines, v.String())
	}
	return fmt.Errorf("audit: %s\n  %s", r.Summary(), strings.Join(lines, "\n  "))
}

// CheckCtx is Check instrumented through the context's telemetry recorder
// (if any): the audit runs inside an "audit" stage span and records its
// violation and coverage counters. The audit itself is identical to Check.
func CheckCtx(ctx context.Context, d *signal.Design, g *grid.Grid, r *route.Routing) Report {
	var rep Report
	_ = obs.Do(ctx, obs.StageAudit, 0, func(context.Context) error {
		rep = Check(d, g, r)
		return nil
	})
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add(obs.CounterAuditViolations, int64(len(rep.Violations)))
		rec.Add(obs.CounterAuditBits, int64(rep.BitsAudited))
		rec.Add(obs.CounterAuditEdges, int64(rep.EdgesAudited))
	}
	return rep
}

// Check audits a routing against its design and grid. The grid must be the
// one the routing was produced on (blockages applied), typically
// Problem.Grid. It never panics, whatever the routing contains: bits whose
// geometry cannot be legally applied are reported and excluded from the
// capacity accounting.
func Check(d *signal.Design, g *grid.Grid, r *route.Routing) Report {
	var rep Report
	if r == nil {
		rep.Violations = append(rep.Violations, Violation{
			Kind: Malformed, Group: -1, Bit: -1, Layer: -1, Detail: "nil routing",
		})
		return rep
	}
	if len(r.Bits) != len(d.Groups) {
		rep.Violations = append(rep.Violations, Violation{
			Kind: Malformed, Group: -1, Bit: -1, Layer: -1,
			Detail: fmt.Sprintf("routing covers %d of %d groups", len(r.Bits), len(d.Groups)),
		})
		return rep
	}

	// Per-bit legality: layer range and direction, bounds, connectivity.
	// Only clean bits contribute to the re-derived usage so one corrupt
	// tree cannot mask (or fabricate) capacity violations elsewhere.
	u := grid.NewUsage(g)
	for gi := range r.Bits {
		if len(r.Bits[gi]) != len(d.Groups[gi].Bits) {
			rep.Violations = append(rep.Violations, Violation{
				Kind: Malformed, Group: gi, Bit: -1, Layer: -1,
				Detail: fmt.Sprintf("routing covers %d of %d bits", len(r.Bits[gi]), len(d.Groups[gi].Bits)),
			})
			continue
		}
		for bi := range r.Bits[gi] {
			br := &r.Bits[gi][bi]
			if !br.Routed {
				continue
			}
			rep.BitsAudited++
			if vs := auditBit(d, g, gi, bi, br); len(vs) > 0 {
				rep.Violations = append(rep.Violations, vs...)
				continue
			}
			route.AddTreeUsage(u, br.Tree, br.HLayer, br.VLayer, 1)
		}
	}

	// Capacity: every edge of every layer against the re-derived usage.
	for l := range g.Layers {
		for idx := 0; idx < g.EdgeCount(l); idx++ {
			rep.EdgesAudited++
			if over := -u.Avail(l, idx); over > 0 {
				x, y := g.EdgeCell(l, idx)
				rep.Violations = append(rep.Violations, Violation{
					Kind: OverCapacity, Group: -1, Bit: -1, Layer: l,
					Detail: fmt.Sprintf("edge (%d,%d) layer %d over capacity by %d (%d > %d)",
						x, y, l, over, u.Use(l, idx), g.Cap(l, x, y)),
				})
			}
		}
	}
	return rep
}

// auditBit checks one routed bit's layers, bounds and connectivity. A
// non-empty return means the bit's usage must not be applied to the grid.
func auditBit(d *signal.Design, g *grid.Grid, gi, bi int, br *route.BitRoute) []Violation {
	var out []Violation
	badLayer := func(l int, want grid.Dir, role string) {
		if l < 0 || l >= len(g.Layers) {
			out = append(out, Violation{
				Kind: BadLayer, Group: gi, Bit: bi, Layer: l,
				Detail: fmt.Sprintf("%s layer %d outside metal stack of %d", role, l, len(g.Layers)),
			})
			return
		}
		if g.Layers[l].Dir != want {
			out = append(out, Violation{
				Kind: BadLayer, Group: gi, Bit: bi, Layer: l,
				Detail: fmt.Sprintf("%s layer %d (%s) routes %s wires", role, l, g.Layers[l].Dir, want),
			})
		}
	}
	badLayer(br.HLayer, grid.Horizontal, "horizontal")
	badLayer(br.VLayer, grid.Vertical, "vertical")

	for _, s := range br.Tree.Canon().Segs {
		n := s.Norm()
		if !n.Horizontal() && !n.Vertical() {
			out = append(out, Violation{
				Kind: OffGrid, Group: gi, Bit: bi, Layer: -1,
				Detail: fmt.Sprintf("segment %v is not rectilinear", s),
			})
			continue
		}
		if !g.InBounds(n.A.X, n.A.Y) || !g.InBounds(n.B.X, n.B.Y) {
			out = append(out, Violation{
				Kind: OffGrid, Group: gi, Bit: bi, Layer: -1,
				Detail: fmt.Sprintf("segment %v leaves the %dx%d grid", s, g.W, g.H),
			})
			continue
		}
	}

	bit := &d.Groups[gi].Bits[bi]
	if !br.Tree.Connected(bit.PinLocs()) {
		out = append(out, Violation{
			Kind: Disconnected, Group: gi, Bit: bi, Layer: -1,
			Detail: fmt.Sprintf("tree does not connect all %d pins", len(bit.Pins)),
		})
	}
	return out
}
