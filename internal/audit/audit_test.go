package audit

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/route"
	"repro/internal/signal"
)

// testDesign is an 8x8 grid with 4 alternating layers (0:H 1:V 2:H 3:V),
// capacity 2, and one group of two straight horizontal bits.
func testDesign() *signal.Design {
	return &signal.Design{
		Name: "audit-test",
		Grid: signal.GridSpec{W: 8, H: 8, NumLayers: 4, EdgeCap: 2},
		Groups: []signal.Group{{
			Name: "g0",
			Bits: []signal.Bit{
				{Name: "b0", Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(3, 0)}}},
				{Name: "b1", Pins: []signal.Pin{{Loc: geom.Pt(0, 1)}, {Loc: geom.Pt(3, 1)}}},
			},
		}},
	}
}

// routedPair returns the design, its grid, and a legal hand-made routing.
func routedPair() (*signal.Design, *grid.Grid, *route.Routing) {
	d := testDesign()
	g := route.NewGrid(d)
	r := &route.Routing{
		Bits: [][]route.BitRoute{{
			{Routed: true, Tree: geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(3, 0))), HLayer: 0, VLayer: 1},
			{Routed: true, Tree: geom.NewTree(geom.S(geom.Pt(0, 1), geom.Pt(3, 1))), HLayer: 0, VLayer: 1},
		}},
		Objects: [][]route.SolutionObject{nil},
	}
	return d, g, r
}

func TestCheckLegalRouting(t *testing.T) {
	d, g, r := routedPair()
	rep := Check(d, g, r)
	if !rep.OK() {
		t.Fatalf("legal routing flagged: %s", rep.Summary())
	}
	if rep.BitsAudited != 2 {
		t.Errorf("BitsAudited = %d, want 2", rep.BitsAudited)
	}
	if rep.EdgesAudited == 0 {
		t.Error("no edges audited")
	}
	if err := rep.Err(); err != nil {
		t.Errorf("Err() = %v on clean report", err)
	}
}

func TestCheckOverCapacity(t *testing.T) {
	d, g, r := routedPair()
	// Move b1's pins and tree onto row 0 so both (still connected) bits
	// share row 0's edges, then squeeze one edge's capacity below 2.
	d.Groups[0].Bits[1].Pins = []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(3, 0)}}
	r.Bits[0][1].Tree = geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(3, 0)))
	g.SetCap(0, 1, 0, 1)
	rep := Check(d, g, r)
	if n := rep.Count(OverCapacity); n != 1 {
		t.Fatalf("OverCapacity count = %d, want 1 (%s)", n, rep.Summary())
	}
	if rep.Violations[0].Layer != 0 {
		t.Errorf("violation layer = %d, want 0", rep.Violations[0].Layer)
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "over-capacity") {
		t.Errorf("Err() = %v, want over-capacity", err)
	}
}

func TestCheckDisconnected(t *testing.T) {
	d, g, r := routedPair()
	// b0's tree stops one cell short of its sink at (3,0).
	r.Bits[0][0].Tree = geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(2, 0)))
	rep := Check(d, g, r)
	if n := rep.Count(Disconnected); n != 1 {
		t.Fatalf("Disconnected count = %d, want 1 (%s)", n, rep.Summary())
	}
	v := rep.Violations[0]
	if v.Group != 0 || v.Bit != 0 {
		t.Errorf("violation at group %d bit %d, want 0/0", v.Group, v.Bit)
	}
}

func TestCheckBadLayers(t *testing.T) {
	d, g, r := routedPair()
	r.Bits[0][0].HLayer = 1  // vertical layer for horizontal trunks
	r.Bits[0][1].VLayer = 99 // outside the stack
	rep := Check(d, g, r)
	if n := rep.Count(BadLayer); n != 2 {
		t.Fatalf("BadLayer count = %d, want 2 (%s)", n, rep.Summary())
	}
	// Corrupt bits must not contribute usage: no capacity violations.
	if n := rep.Count(OverCapacity); n != 0 {
		t.Errorf("OverCapacity count = %d, want 0", n)
	}
}

func TestCheckOffGridAndDiagonalNeverPanic(t *testing.T) {
	d, g, r := routedPair()
	r.Bits[0][0].Tree = geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(30, 0)))
	// geom.S rejects diagonals at construction, but hostile or corrupted
	// routings can still carry one via the struct literal. Canon reshapes
	// it into a vertical run, so the auditor sees the symptom — the bit no
	// longer touches its pins — and must report it rather than panic.
	r.Bits[0][1].Tree = geom.Tree{Segs: []geom.Seg{{A: geom.Pt(0, 1), B: geom.Pt(3, 4)}}}
	rep := Check(d, g, r)
	if n := rep.Count(OffGrid); n != 1 {
		t.Fatalf("OffGrid count = %d, want 1 (%s)", n, rep.Summary())
	}
	if n := rep.Count(Disconnected); n != 1 {
		t.Fatalf("Disconnected count = %d, want 1 (%s)", n, rep.Summary())
	}
	// Neither corrupt bit may contribute usage.
	if n := rep.Count(OverCapacity); n != 0 {
		t.Errorf("OverCapacity count = %d, want 0", n)
	}
}

func TestCheckMalformedShapes(t *testing.T) {
	d, g, _ := routedPair()
	if rep := Check(d, g, nil); rep.Count(Malformed) != 1 {
		t.Error("nil routing not flagged")
	}
	if rep := Check(d, g, &route.Routing{}); rep.Count(Malformed) != 1 {
		t.Error("group-less routing not flagged")
	}
	short := &route.Routing{Bits: [][]route.BitRoute{{{}}}}
	if rep := Check(d, g, short); rep.Count(Malformed) != 1 {
		t.Error("short bit slice not flagged")
	}
}
