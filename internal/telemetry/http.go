package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// maxIngestBytes bounds ingest request bodies.
const maxIngestBytes = 8 << 20

// Service bundles the lake's three tiers for mounting in streakd: the
// durable Store, the non-blocking producer Client the server pushes its
// own solves through, and the HTTP ingest/query handlers.
type Service struct {
	store  *Store
	client *Client
}

// NewService wraps a store with a producer client (buffer <= 0 means the
// client default). logf receives ingest diagnostics.
func NewService(store *Store, buffer int, logf func(format string, args ...any)) *Service {
	return &Service{store: store, client: NewClient(store, buffer, logf)}
}

// Client returns the producer side (Push never blocks).
func (s *Service) Client() *Client { return s.client }

// Store returns the embedded segment store.
func (s *Service) Store() *Store { return s.store }

// Close flushes the client's buffer into the store, then seals the store.
func (s *Service) Close(ctx context.Context) error {
	cerr := s.client.Close(ctx)
	if err := s.store.Close(); err != nil {
		return err
	}
	return cerr
}

// Register mounts the telemetry endpoints on mux. wrap (optional) lets the
// caller thread its panic-isolation middleware around each handler.
func (s *Service) Register(mux *http.ServeMux, wrap func(http.HandlerFunc) http.HandlerFunc) {
	if wrap == nil {
		wrap = func(h http.HandlerFunc) http.HandlerFunc { return h }
	}
	mux.HandleFunc("POST /telemetry/v1/reports", wrap(s.HandleIngestReport))
	mux.HandleFunc("POST /telemetry/v1/bench", wrap(s.HandleIngestBench))
	mux.HandleFunc("POST /telemetry/v1/scenarios", wrap(s.HandleIngestScenario))
	mux.HandleFunc("GET /telemetry/v1/scenarios", wrap(s.HandleScenarios))
	mux.HandleFunc("GET /telemetry/v1/series", wrap(s.HandleSeries))
	mux.HandleFunc("GET /telemetry/v1/bench/trajectory", wrap(s.HandleTrajectory))
	mux.HandleFunc("GET /telemetry/v1/stats", wrap(s.HandleStats))
	mux.HandleFunc("GET /debug/telemetry", wrap(s.HandleDashboard))
}

// HandleIngestReport is POST /telemetry/v1/reports: the body is one
// obs.Report (schema-versioned); ?source= names the producer. The report
// is distilled and appended durably before the 202.
func (s *Service) HandleIngestReport(w http.ResponseWriter, r *http.Request) {
	var rep obs.Report
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes)).Decode(&rep); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding obs report: %v", err))
		return
	}
	if rep.Schema > obs.SchemaVersion {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("report schema %d is newer than this server's %d", rep.Schema, obs.SchemaVersion))
		return
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "ingest"
	}
	rec := NewReportRecord(source, DistillReport(rep))
	// An ingested report carries its producing binary's revision, not this
	// process's.
	if c := rep.Labels["vcs_revision"]; c != "" {
		rec.Commit = c
	}
	if err := s.store.Append([]Record{rec}); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"stored": 1, "kind": KindReport})
}

// benchFile mirrors the BENCH_*.json artifact fields the lake keeps
// (decoupled from internal/benchreport so remote pushers only need the
// documented artifact shape).
type benchFile struct {
	Schema      int               `json:"schema"`
	GeneratedAt string            `json:"generated_at"`
	Labels      map[string]string `json:"labels"`
	Benchmarks  []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// HandleIngestBench is POST /telemetry/v1/bench: the body is one
// BENCH_*.json artifact. The point is commit-keyed by the artifact's
// vcs_revision label; re-pushing the same commit replaces its point.
func (s *Service) HandleIngestBench(w http.ResponseWriter, r *http.Request) {
	var f benchFile
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes)).Decode(&f); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding BENCH artifact: %v", err))
		return
	}
	if len(f.Benchmarks) == 0 {
		httpError(w, http.StatusBadRequest, "BENCH artifact has no benchmark rows")
		return
	}
	rows := make(map[string]map[string]float64, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		if b.Name == "" || len(b.Metrics) == 0 {
			continue
		}
		rows[b.Name] = b.Metrics
	}
	if len(rows) == 0 {
		httpError(w, http.StatusBadRequest, "BENCH artifact rows carry no metrics")
		return
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "benchreport"
	}
	rec := NewBenchRecord(source, f.Labels["vcs_revision"], f.GeneratedAt, rows)
	if err := s.store.Append([]Record{rec}); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"stored": 1, "kind": KindBench, "commit": rec.Commit})
}

// HandleIngestScenario is POST /telemetry/v1/scenarios: the body is one
// ScenarioReport; ?source= names the pusher (default "streakload"). The
// report lands durably before the 202, so a CI soak's verdict survives
// the runner.
func (s *Service) HandleIngestScenario(w http.ResponseWriter, r *http.Request) {
	var sr ScenarioReport
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBytes)).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding scenario report: %v", err))
		return
	}
	if sr.Name == "" {
		httpError(w, http.StatusBadRequest, "scenario report has no name")
		return
	}
	source := r.URL.Query().Get("source")
	if source == "" {
		source = "streakload"
	}
	if err := s.store.Append([]Record{NewScenarioRecord(source, sr)}); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"stored": 1, "kind": KindScenario, "name": sr.Name})
}

// HandleScenarios is GET /telemetry/v1/scenarios[?name=...]: the stored
// scenario runs, oldest first, optionally filtered by scenario name —
// the robustness trajectory next to the perf one.
func (s *Service) HandleScenarios(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	out := []Record{}
	for _, rec := range s.store.Records() {
		if rec.Kind != KindScenario || rec.Scenario == nil {
			continue
		}
		if name != "" && rec.Scenario.Name != name {
			continue
		}
		out = append(out, rec)
	}
	writeJSON(w, http.StatusOK, out)
}

// HandleSeries is GET /telemetry/v1/series?metric=...&window=...: the
// aggregated report series (see ComputeSeries).
func (s *Service) HandleSeries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opt := SeriesOptions{Metric: q.Get("metric")}
	if ws := q.Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad window %q (want a duration like 15m)", ws))
			return
		}
		opt.Window = d
	}
	series, err := ComputeSeries(s.store.Records(), opt)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, series)
}

// HandleTrajectory is GET /telemetry/v1/bench/trajectory: the per-commit
// BENCH series.
func (s *Service) HandleTrajectory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ComputeTrajectory(s.store.Records()))
}

// HandleStats is GET /telemetry/v1/stats: store and producer counters.
func (s *Service) HandleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"store":  s.store.Stats(),
		"client": s.client.Stats(),
	})
}

// HandleDashboard is GET /debug/telemetry: a small self-contained HTML
// view over the series and trajectory endpoints.
func (s *Service) HandleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, dashboardHTML)
}

// PushBench posts one BENCH artifact (its raw JSON bytes) to the ingest
// endpoint rooted at baseURL (e.g. http://host:8080). Non-2xx responses
// become errors carrying the server's message.
func PushBench(ctx context.Context, baseURL string, artifact []byte) error {
	url := strings.TrimRight(baseURL, "/") + "/telemetry/v1/bench"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(artifact))
	if err != nil {
		return fmt.Errorf("telemetry: building push request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("telemetry: pushing BENCH artifact: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("telemetry: push rejected: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

// PushScenario posts one scenario report to the ingest endpoint rooted at
// baseURL. Non-2xx responses become errors carrying the server's message.
func PushScenario(ctx context.Context, baseURL, source string, sr ScenarioReport) error {
	body, err := json.Marshal(sr)
	if err != nil {
		return fmt.Errorf("telemetry: encoding scenario report: %w", err)
	}
	url := strings.TrimRight(baseURL, "/") + "/telemetry/v1/scenarios"
	if source != "" {
		url += "?source=" + source
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("telemetry: building scenario push: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("telemetry: pushing scenario report: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("telemetry: scenario push rejected: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
