package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func scenarioRec(t int64, name string, passed bool) Record {
	return Record{
		Schema: SchemaVersion,
		Kind:   KindScenario,
		TimeMS: t,
		Source: "streakload",
		Scenario: &ScenarioReport{
			Name: name, Seed: 42, Digest: "abc", DurationMS: 1200,
			Requests: 60, ShedFrac: 0.1, Passed: passed,
			Invariants: []ScenarioInvariant{{Name: "transport-clean", OK: passed}},
		},
	}
}

// TestScenarioRecordSurvivesReplay: scenario records are a first-class
// stored kind — they must round-trip the WAL framing and boot replay like
// reports and bench points.
func TestScenarioRecordSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if err := s.Append([]Record{scenarioRec(100, "churnchaos", true)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTestStore(t, dir)
	defer s2.Close()
	got := s2.Records()
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
	if got[0].Kind != KindScenario || got[0].Scenario == nil || got[0].Scenario.Name != "churnchaos" {
		t.Fatalf("replayed scenario mangled: %+v", got[0])
	}
	if !got[0].Scenario.Passed || len(got[0].Scenario.Invariants) != 1 {
		t.Fatalf("scenario verdict mangled: %+v", got[0].Scenario)
	}
	if st := s2.Stats(); st.ReplaySkipped != 0 {
		t.Fatalf("clean replay skipped %d records", st.ReplaySkipped)
	}
}

// TestScenarioIngestAndQuery: the HTTP tier — POST stores durably, GET
// filters by name, PushScenario round-trips end to end.
func TestScenarioIngestAndQuery(t *testing.T) {
	svc := NewService(openTestStore(t, t.TempDir()), 0, t.Logf)
	defer svc.Close(context.Background())
	mux := http.NewServeMux()
	svc.Register(mux, nil)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	if err := PushScenario(context.Background(), ts.URL, "ci", ScenarioReport{
		Name: "churnchaos", Seed: 7, Passed: true, Requests: 40,
	}); err != nil {
		t.Fatalf("PushScenario: %v", err)
	}
	if err := PushScenario(context.Background(), ts.URL, "", ScenarioReport{
		Name: "burst", Seed: 7, Passed: false,
	}); err != nil {
		t.Fatalf("PushScenario 2: %v", err)
	}

	// Nameless reports are rejected before anything persists.
	resp, err := http.Post(ts.URL+"/telemetry/v1/scenarios", "application/json", strings.NewReader(`{"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless scenario: status %d, want 400", resp.StatusCode)
	}

	get := func(url string) []Record {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		var out []Record
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	all := get(ts.URL + "/telemetry/v1/scenarios")
	if len(all) != 2 {
		t.Fatalf("got %d scenario records, want 2", len(all))
	}
	if all[0].Source != "ci" || all[1].Source != "streakload" {
		t.Fatalf("sources = %s, %s", all[0].Source, all[1].Source)
	}
	churn := get(ts.URL + "/telemetry/v1/scenarios?name=churnchaos")
	if len(churn) != 1 || !churn[0].Scenario.Passed {
		t.Fatalf("name filter returned %+v", churn)
	}
}
