package telemetry

import (
	"testing"
	"time"
)

func TestComputeSeriesLatencyQuantiles(t *testing.T) {
	var recs []Record
	// 100 pd solves at 1..100us: nearest-rank p50=50, p90=90, p99=99.
	for i := 1; i <= 100; i++ {
		recs = append(recs, reportRec(int64(i), "d", "pd", int64(i)))
	}
	// One ilp solve, and a bench record the series must ignore.
	recs = append(recs, reportRec(200, "d", "ilp", 5000), benchRec(201, "c1", 1))

	s, err := ComputeSeries(recs, SeriesOptions{Metric: MetricSolveLatency})
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples != 101 {
		t.Errorf("Samples = %d, want 101 (bench excluded)", s.Samples)
	}
	pd := s.Latency["pd"]
	if pd == nil || pd.Count != 100 {
		t.Fatalf("pd bucket = %+v", pd)
	}
	if pd.P50US != 50 || pd.P90US != 90 || pd.P99US != 99 || pd.MaxUS != 100 {
		t.Errorf("pd quantiles = %+v, want p50=50 p90=90 p99=99 max=100", pd)
	}
	if ilp := s.Latency["ilp"]; ilp == nil || ilp.P50US != 5000 || ilp.Count != 1 {
		t.Errorf("ilp bucket = %+v", ilp)
	}
	// Only latency was asked for.
	if s.Rates != nil || s.Cache != nil || s.Drift != nil {
		t.Error("unrequested sections populated")
	}
}

func TestComputeSeriesWindow(t *testing.T) {
	now := time.UnixMilli(10_000)
	recs := []Record{
		reportRec(1_000, "d", "pd", 1), // outside a 5s window
		reportRec(6_000, "d", "pd", 2),
		reportRec(9_000, "d", "pd", 3),
	}
	s, err := ComputeSeries(recs, SeriesOptions{Metric: MetricSolveLatency, Window: 5 * time.Second, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if s.Samples != 2 || s.FromMS != 6_000 || s.ToMS != 9_000 {
		t.Errorf("window filter: samples=%d from=%d to=%d", s.Samples, s.FromMS, s.ToMS)
	}
}

func TestComputeSeriesUnknownMetric(t *testing.T) {
	if _, err := ComputeSeries(nil, SeriesOptions{Metric: "bogus"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestComputeSeriesRates(t *testing.T) {
	mk := func(t int64, degraded bool, auditRan bool, viol int64, attempt int) Record {
		r := reportRec(t, "d", "pd", 1)
		r.Report.Degraded = degraded
		r.Report.AuditRan = auditRan
		r.Report.AuditViolations = viol
		r.Report.Attempt = attempt
		return r
	}
	recs := []Record{
		mk(1, false, true, 0, 0),
		mk(2, true, true, 0, 1),
		mk(3, true, true, 2, 2),
		mk(4, false, false, 0, 3),
	}
	s, err := ComputeSeries(recs, SeriesOptions{Metric: MetricRates})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Rates
	if r.Solves != 4 || r.Degraded != 2 || r.DegradedRate != 0.5 {
		t.Errorf("degradation: %+v", r)
	}
	if r.AuditRan != 3 || r.AuditViolated != 1 {
		t.Errorf("audit counts: %+v", r)
	}
	if want := 1.0 / 3.0; r.ViolationRate != want {
		t.Errorf("ViolationRate = %v, want %v", r.ViolationRate, want)
	}
	if r.Retries != 2 {
		t.Errorf("Retries = %d, want 2 (attempts > 1)", r.Retries)
	}
}

func TestComputeSeriesCacheMix(t *testing.T) {
	mk := func(t int64, outcome string) Record {
		r := reportRec(t, "d", "pd", 1)
		r.Report.Cache = outcome
		return r
	}
	recs := []Record{
		mk(1, "hit"), mk(2, "hit"), mk(3, "incremental"),
		mk(4, "cold"), mk(5, "cold-fallback"), mk(6, "bypass"),
		mk(7, ""), // cache off: not part of the mix
	}
	s, err := ComputeSeries(recs, SeriesOptions{Metric: MetricCache})
	if err != nil {
		t.Fatal(err)
	}
	c := s.Cache
	if c.Solves != 6 || c.Hits != 2 || c.Incrementals != 1 || c.Cold != 1 || c.ColdFallbacks != 1 || c.Bypass != 1 {
		t.Errorf("mix = %+v", c)
	}
	if want := 2.0 / 6.0; c.HitRatio != want {
		t.Errorf("HitRatio = %v, want %v", c.HitRatio, want)
	}
	if want := 2.0 / 6.0; c.ColdRatio != want { // cold + cold-fallback
		t.Errorf("ColdRatio = %v, want %v", c.ColdRatio, want)
	}
}

func TestComputeSeriesDrift(t *testing.T) {
	mk := func(t int64, design string, util float64) Record {
		r := reportRec(t, design, "pd", 1)
		r.Report.Congestion = &CongestionSummary{MeanUtilPct: util}
		return r
	}
	recs := []Record{
		mk(1, "a", 10),
		mk(2, "b", 50),
		mk(3, "a", 35), // a drifts +25
		mk(4, "b", 48), // b drifts -2
	}
	s, err := ComputeSeries(recs, SeriesOptions{Metric: MetricCongestionDrift})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Drift) != 4 {
		t.Fatalf("drift points = %d, want 4", len(s.Drift))
	}
	if s.Drift[0].DriftPct != 0 || s.Drift[1].DriftPct != 0 {
		t.Errorf("first point per design must have zero drift: %+v", s.Drift[:2])
	}
	if s.Drift[2].Design != "a" || s.Drift[2].DriftPct != 25 {
		t.Errorf("a's second point = %+v, want drift +25", s.Drift[2])
	}
	if s.Drift[3].Design != "b" || s.Drift[3].DriftPct != -2 {
		t.Errorf("b's second point = %+v, want drift -2", s.Drift[3])
	}
}

func TestComputeTrajectory(t *testing.T) {
	recs := []Record{
		benchRec(200, "c2", 20),
		benchRec(100, "c1", 10), // out of order: trajectory sorts by time
		reportRec(300, "d", "pd", 1),
	}
	tr := ComputeTrajectory(recs)
	if tr.Points != 2 {
		t.Fatalf("Points = %d, want 2", tr.Points)
	}
	series := tr.Series["BenchmarkX/ns/op"]
	if len(series) != 2 {
		t.Fatalf("series = %+v", tr.Series)
	}
	if series[0].Commit != "c1" || series[0].Value != 10 || series[1].Commit != "c2" || series[1].Value != 20 {
		t.Errorf("trajectory order wrong: %+v", series)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
	one := []int64{7}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		if q := quantile(one, p); q != 7 {
			t.Errorf("single-element p%v = %d, want 7", p, q)
		}
	}
}
