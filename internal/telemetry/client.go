package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
)

// Sink receives ingested record batches. *Store is the embedded sink;
// remote pushers go through HTTP instead (see PushBench).
type Sink interface {
	Ingest(recs []Record) error
}

// batchMax bounds how many buffered records one Ingest call drains.
const batchMax = 64

// Client is the bounded, non-blocking producer side of the lake: Push
// enqueues a record and returns immediately — when the buffer is full
// (the sink is slow or stalled) the record is dropped and counted, never
// awaited. The solve path must not pay for telemetry.
type Client struct {
	sink Sink
	ch   chan Record
	quit chan struct{}
	wg   sync.WaitGroup

	closed  atomic.Bool
	pushed  atomic.Int64
	dropped atomic.Int64
	ingErrs atomic.Int64
	logf    func(format string, args ...any)
}

// NewClient starts a client draining into sink with the given buffer
// (default 256 when <= 0). logf receives ingest failures; nil discards.
func NewClient(sink Sink, buffer int, logf func(format string, args ...any)) *Client {
	if buffer <= 0 {
		buffer = 256
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Client{
		sink: sink,
		ch:   make(chan Record, buffer),
		quit: make(chan struct{}),
		logf: logf,
	}
	c.wg.Add(1)
	go c.drain()
	return c
}

// Push enqueues one record. It never blocks: a full buffer or a closed
// client drops the record, increments the drop counter and returns false.
func (c *Client) Push(rec Record) bool {
	if c.closed.Load() {
		c.dropped.Add(1)
		return false
	}
	select {
	case c.ch <- rec:
		c.pushed.Add(1)
		return true
	default:
		c.dropped.Add(1)
		return false
	}
}

// drain batches buffered records into the sink until Close.
func (c *Client) drain() {
	defer c.wg.Done()
	for {
		select {
		case rec := <-c.ch:
			c.flushBatch(rec)
		case <-c.quit:
			// Final sweep: everything already buffered still lands.
			for {
				select {
				case rec := <-c.ch:
					c.flushBatch(rec)
				default:
					return
				}
			}
		}
	}
}

// flushBatch ingests first plus up to batchMax-1 more already-buffered
// records in one sink call (one fsync per batch instead of per record).
func (c *Client) flushBatch(first Record) {
	batch := make([]Record, 1, batchMax)
	batch[0] = first
	for len(batch) < batchMax {
		select {
		case rec := <-c.ch:
			batch = append(batch, rec)
		default:
			goto full
		}
	}
full:
	if err := c.sink.Ingest(batch); err != nil {
		// Ingest failures are counted and logged, never retried: the lake
		// is best-effort downstream of the solve path, and a wedged sink
		// must not accumulate unbounded retry state.
		c.ingErrs.Add(int64(len(batch)))
		c.logf("telemetry: ingest failed, %d record(s) lost: %v", len(batch), err)
	}
}

// Close stops accepting pushes, flushes the buffer into the sink, and
// waits for the drain goroutine — bounded by ctx. Idempotent.
func (c *Client) Close(ctx context.Context) error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.quit)
	}
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ClientStats is a point-in-time snapshot of the producer counters.
type ClientStats struct {
	// Pushed counts records accepted into the buffer; Dropped counts
	// records discarded by backpressure or a closed client; IngestErrors
	// counts records lost to sink failures.
	Pushed       int64 `json:"pushed"`
	Dropped      int64 `json:"dropped"`
	IngestErrors int64 `json:"ingest_errors"`
}

// Stats snapshots the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Pushed:       c.pushed.Load(),
		Dropped:      c.dropped.Load(),
		IngestErrors: c.ingErrs.Load(),
	}
}

// Dropped returns the backpressure-drop count.
func (c *Client) Dropped() int64 { return c.dropped.Load() }
