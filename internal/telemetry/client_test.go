package telemetry

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// memSink collects ingested batches; optionally blocks until released or
// fails every call.
type memSink struct {
	mu      sync.Mutex
	recs    []Record
	batches int

	block chan struct{} // non-nil: Ingest waits for close
	err   error
}

func (m *memSink) Ingest(recs []Record) error {
	if m.block != nil {
		<-m.block
	}
	if m.err != nil {
		return m.err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, recs...)
	m.batches++
	return nil
}

func (m *memSink) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// TestClientDeliversAndFlushesOnClose: everything pushed before Close
// lands in the sink.
func TestClientDeliversAndFlushesOnClose(t *testing.T) {
	sink := &memSink{}
	c := NewClient(sink, 128, t.Logf)
	const n = 100
	for i := 0; i < n; i++ {
		if !c.Push(reportRec(int64(i), "d", "pd", 1)) {
			t.Fatalf("push %d rejected with room in the buffer", i)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := sink.count(); got != n {
		t.Errorf("sink received %d records, want %d", got, n)
	}
	st := c.Stats()
	if st.Pushed != n || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestClientNeverBlocks is the backpressure contract: with the sink wedged
// and the buffer full, Push must return immediately (dropping), never
// stall the caller. This is the property that keeps telemetry off the
// solve path's critical section.
func TestClientNeverBlocks(t *testing.T) {
	sink := &memSink{block: make(chan struct{})}
	c := NewClient(sink, 4, t.Logf)
	defer func() {
		close(sink.block)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		c.Close(ctx)
	}()

	// Saturate: the drain goroutine takes one record and wedges in Ingest;
	// the buffer holds 4 more. Everything beyond that must drop.
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 100; i++ {
		c.Push(reportRec(int64(i), "d", "pd", 1))
		if time.Now().After(deadline) {
			t.Fatalf("Push blocked: only %d pushes in 2s with a wedged sink", i)
		}
	}
	st := c.Stats()
	if st.Dropped == 0 {
		t.Error("wedged sink produced zero drops")
	}
	if st.Pushed+st.Dropped != 100 {
		t.Errorf("pushed %d + dropped %d != 100", st.Pushed, st.Dropped)
	}
}

// TestClientPushAfterClose: a closed client drops instead of panicking or
// blocking.
func TestClientPushAfterClose(t *testing.T) {
	c := NewClient(&memSink{}, 4, t.Logf)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if c.Push(reportRec(1, "d", "pd", 1)) {
		t.Error("push after Close accepted")
	}
	if c.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", c.Dropped())
	}
	// Close is idempotent.
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClientIngestErrorsCounted: sink failures are counted and logged,
// never retried, and don't kill the drain loop.
func TestClientIngestErrorsCounted(t *testing.T) {
	sink := &memSink{err: errors.New("disk full")}
	c := NewClient(sink, 16, t.Logf)
	for i := 0; i < 10; i++ {
		c.Push(reportRec(int64(i), "d", "pd", 1))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.IngestErrors != 10 {
		t.Errorf("IngestErrors = %d, want 10", st.IngestErrors)
	}
}

// TestClientBatches: buffered records drain in batches (bounded by
// batchMax), not one fsync per record.
func TestClientBatches(t *testing.T) {
	sink := &memSink{block: make(chan struct{})}
	c := NewClient(sink, 256, t.Logf)
	for i := 0; i < 100; i++ {
		c.Push(reportRec(int64(i), "d", "pd", 1))
	}
	close(sink.block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.recs) != 100 {
		t.Fatalf("sink received %d records, want 100", len(sink.recs))
	}
	// 100 records with batchMax 64 needs at least 2 calls but far fewer
	// than 100; the first call may have raced ahead with a single record.
	if sink.batches > 25 {
		t.Errorf("%d ingest calls for 100 records; batching is not engaging", sink.batches)
	}
}
