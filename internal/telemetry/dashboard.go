package telemetry

// dashboardHTML is the /debug/telemetry page: a dependency-free view over
// /telemetry/v1/series?metric=all and /telemetry/v1/bench/trajectory.
// Everything renders client-side from the two JSON endpoints, so the page
// stays a single constant string.
const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>streak telemetry</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5rem; max-width: 70rem; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; margin: .4rem 0; }
  th, td { border: 1px solid #8885; padding: .2rem .6rem; text-align: right; }
  th:first-child, td:first-child { text-align: left; }
  .tiles { display: flex; gap: .8rem; flex-wrap: wrap; margin: .6rem 0; }
  .tile { border: 1px solid #8885; border-radius: 6px; padding: .5rem .9rem; }
  .tile b { display: block; font-size: 1.3rem; }
  .muted { opacity: .65; } svg { display: block; }
  .spark path { fill: none; stroke: #4477cc; stroke-width: 1.5; }
  code { font-size: .9em; }
</style>
</head>
<body>
<h1>streak telemetry lake</h1>
<p class="muted">window <select id="win">
  <option value="">all</option><option value="15m">15m</option>
  <option value="1h">1h</option><option value="24h">24h</option>
</select> · <span id="meta"></span></p>
<div class="tiles" id="tiles"></div>
<h2>solve latency by method</h2><div id="latency"></div>
<h2>cache serving mix</h2><div id="cache"></div>
<h2>congestion drift</h2><div id="drift"></div>
<h2>bench trajectory (per commit)</h2><div id="traj"></div>
<script>
const $ = id => document.getElementById(id);
const fmtUS = us => us >= 1e6 ? (us/1e6).toFixed(2)+' s'
  : us >= 1e3 ? (us/1e3).toFixed(1)+' ms' : us+' µs';
const pct = f => (100*f).toFixed(1)+'%';
function tile(label, value) {
  return '<div class="tile"><b>'+value+'</b><span class="muted">'+label+'</span></div>';
}
function table(headers, rows) {
  let h = '<table><tr>'+headers.map(x=>'<th>'+x+'</th>').join('')+'</tr>';
  for (const r of rows) h += '<tr>'+r.map(x=>'<td>'+x+'</td>').join('')+'</tr>';
  return h+'</table>';
}
function spark(values, w=180, h=36) {
  if (values.length < 2) return '<span class="muted">'+(values.length? values[0].toPrecision(4):'–')+'</span>';
  const min = Math.min(...values), max = Math.max(...values), span = (max-min) || 1;
  const pts = values.map((v,i)=>
    (i*(w-4)/(values.length-1)+2).toFixed(1)+','+((h-4)*(1-(v-min)/span)+2).toFixed(1));
  return '<svg class="spark" width="'+w+'" height="'+h+'"><path d="M'+pts.join(' L')+'"/></svg>';
}
async function load() {
  const win = $('win').value, q = win ? '&window='+win : '';
  const series = await (await fetch('/telemetry/v1/series?metric=all'+q)).json();
  const traj = await (await fetch('/telemetry/v1/bench/trajectory')).json();
  $('meta').textContent = series.samples+' solve report(s)';
  const rt = series.rates || {};
  $('tiles').innerHTML =
    tile('solves', rt.solves ?? 0) +
    tile('degraded rate', pct(rt.degraded_rate ?? 0)) +
    tile('audit violation rate', pct(rt.violation_rate ?? 0)) +
    tile('job retries', rt.retries ?? 0);
  const lat = series.latency || {};
  $('latency').innerHTML = Object.keys(lat).length
    ? table(['method','count','p50','p90','p99','max'],
        Object.entries(lat).map(([m,s]) =>
          [m, s.count, fmtUS(s.p50_us), fmtUS(s.p90_us), fmtUS(s.p99_us), fmtUS(s.max_us)]))
    : '<p class="muted">no solves recorded yet</p>';
  const c = series.cache;
  $('cache').innerHTML = c && c.solves
    ? table(['solves','hit','incremental','cold','cold-fallback','bypass','hit ratio','incr ratio'],
        [[c.solves, c.hits, c.incrementals, c.cold, c.cold_fallbacks, c.bypass,
          pct(c.hit_ratio), pct(c.incremental_ratio)]])
    : '<p class="muted">no cache-served solves in window</p>';
  const d = series.drift || [];
  $('drift').innerHTML = d.length
    ? table(['time','design','mean util %','overflow edges','drift %'],
        d.slice(-20).map(p => [new Date(p.t_ms).toLocaleTimeString(), p.design || '–',
          p.mean_util_pct.toFixed(2), p.overflow_edges, p.drift_pct.toFixed(2)]))
      + spark(d.map(p => p.mean_util_pct))
    : '<p class="muted">no congestion snapshots in window</p>';
  const ts = traj.series || {}, keys = Object.keys(ts).sort();
  $('traj').innerHTML = keys.length
    ? table(['metric','points','latest commit','latest','trend'],
        keys.map(k => {
          const pts = ts[k], lastPt = pts[pts.length-1];
          return ['<code>'+k+'</code>', pts.length,
            '<code>'+(lastPt.commit||'').slice(0,10)+'</code>',
            lastPt.value.toPrecision(5), spark(pts.map(p=>p.value))];
        }))
    : '<p class="muted">no BENCH artifacts pushed yet (benchreport -push)</p>';
}
$('win').addEventListener('change', load);
load(); setInterval(load, 5000);
</script>
</body>
</html>
`
