package telemetry

import (
	"fmt"
	"sort"
	"time"
)

// Series metric names accepted by GET /telemetry/v1/series.
const (
	MetricSolveLatency    = "solve_latency"
	MetricRates           = "rates"
	MetricCache           = "cache"
	MetricCongestionDrift = "congestion_drift"
	MetricAll             = "all"
)

// SeriesOptions selects what ComputeSeries aggregates.
type SeriesOptions struct {
	// Metric is one of the Metric* names ("" means MetricAll).
	Metric string
	// Window restricts records to [Now-Window, Now]; zero means all.
	Window time.Duration
	// Now anchors the window (zero value means time.Now()).
	Now time.Time
}

// LatencySummary is the solve-latency quantile row for one method.
type LatencySummary struct {
	Count int   `json:"count"`
	P50US int64 `json:"p50_us"`
	P90US int64 `json:"p90_us"`
	P99US int64 `json:"p99_us"`
	MaxUS int64 `json:"max_us"`
}

// RateSummary carries the degradation and audit health of the window.
type RateSummary struct {
	// Solves counts report records in the window.
	Solves int `json:"solves"`
	// Degraded counts solves answered by a fallback rung.
	Degraded     int     `json:"degraded"`
	DegradedRate float64 `json:"degraded_rate"`
	// AuditRan counts solves with an independent legality verdict;
	// AuditViolated counts those whose audit found violations.
	AuditRan      int     `json:"audit_ran"`
	AuditViolated int     `json:"audit_violated"`
	ViolationRate float64 `json:"violation_rate"`
	// Attempts counts async-job retry attempts (attempt > 1).
	Retries int `json:"retries"`
}

// CacheSummary carries the solve-cache serving mix of the window.
type CacheSummary struct {
	// Solves counts report records that went through the cache (non-empty
	// outcome label).
	Solves           int     `json:"solves"`
	Hits             int     `json:"hits"`
	Incrementals     int     `json:"incrementals"`
	Cold             int     `json:"cold"`
	ColdFallbacks    int     `json:"cold_fallbacks"`
	Bypass           int     `json:"bypass"`
	HitRatio         float64 `json:"hit_ratio"`
	IncrementalRatio float64 `json:"incremental_ratio"`
	ColdRatio        float64 `json:"cold_ratio"`
}

// DriftPoint is one step of a design's congestion trajectory: the mean
// utilization of the snapshot and its delta against the design's previous
// snapshot in the window.
type DriftPoint struct {
	TimeMS int64  `json:"t_ms"`
	Design string `json:"design,omitempty"`
	// MeanUtilPct is the snapshot's capacity-weighted mean utilization.
	MeanUtilPct   float64 `json:"mean_util_pct"`
	OverflowEdges int     `json:"overflow_edges"`
	// DriftPct is MeanUtilPct minus the previous snapshot's (0 for the
	// first point of a design).
	DriftPct float64 `json:"drift_pct"`
}

// Series is the GET /telemetry/v1/series payload.
type Series struct {
	Metric   string `json:"metric"`
	WindowMS int64  `json:"window_ms,omitempty"`
	FromMS   int64  `json:"from_ms,omitempty"`
	ToMS     int64  `json:"to_ms,omitempty"`
	// Samples counts the report records aggregated.
	Samples int `json:"samples"`
	// Latency maps method name to its quantile row (solve_latency).
	Latency map[string]*LatencySummary `json:"latency,omitempty"`
	Rates   *RateSummary               `json:"rates,omitempty"`
	Cache   *CacheSummary              `json:"cache,omitempty"`
	Drift   []DriftPoint               `json:"drift,omitempty"`
}

// ComputeSeries aggregates the report records into the requested series.
// Unknown metric names error (the HTTP layer maps that to 400).
func ComputeSeries(recs []Record, opt SeriesOptions) (Series, error) {
	metric := opt.Metric
	if metric == "" {
		metric = MetricAll
	}
	switch metric {
	case MetricSolveLatency, MetricRates, MetricCache, MetricCongestionDrift, MetricAll:
	default:
		return Series{}, fmt.Errorf("unknown metric %q (want %s, %s, %s, %s or %s)",
			metric, MetricSolveLatency, MetricRates, MetricCache, MetricCongestionDrift, MetricAll)
	}
	now := opt.Now
	if now.IsZero() {
		now = time.Now()
	}
	out := Series{Metric: metric}
	var fromMS int64
	if opt.Window > 0 {
		out.WindowMS = opt.Window.Milliseconds()
		fromMS = now.Add(-opt.Window).UnixMilli()
	}

	// Collect the in-window report records in time order.
	var reports []Record
	for _, r := range recs {
		if r.Kind != KindReport || r.Report == nil {
			continue
		}
		if fromMS > 0 && r.TimeMS < fromMS {
			continue
		}
		reports = append(reports, r)
	}
	sort.SliceStable(reports, func(i, j int) bool { return reports[i].TimeMS < reports[j].TimeMS })
	out.Samples = len(reports)
	if len(reports) > 0 {
		out.FromMS = reports[0].TimeMS
		out.ToMS = reports[len(reports)-1].TimeMS
	}

	if metric == MetricSolveLatency || metric == MetricAll {
		out.Latency = latencyByMethod(reports)
	}
	if metric == MetricRates || metric == MetricAll {
		out.Rates = rates(reports)
	}
	if metric == MetricCache || metric == MetricAll {
		out.Cache = cacheMix(reports)
	}
	if metric == MetricCongestionDrift || metric == MetricAll {
		out.Drift = drift(reports)
	}
	return out, nil
}

// latencyByMethod buckets solve durations per method and summarizes each
// with nearest-rank quantiles.
func latencyByMethod(reports []Record) map[string]*LatencySummary {
	buckets := make(map[string][]int64)
	for _, r := range reports {
		m := r.Report.Method
		if m == "" {
			m = "unknown"
		}
		buckets[m] = append(buckets[m], r.Report.DurUS)
	}
	if len(buckets) == 0 {
		return nil
	}
	out := make(map[string]*LatencySummary, len(buckets))
	for m, durs := range buckets {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		out[m] = &LatencySummary{
			Count: len(durs),
			P50US: quantile(durs, 0.50),
			P90US: quantile(durs, 0.90),
			P99US: quantile(durs, 0.99),
			MaxUS: durs[len(durs)-1],
		}
	}
	return out
}

// quantile is the nearest-rank quantile of a sorted slice.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func rates(reports []Record) *RateSummary {
	rs := &RateSummary{Solves: len(reports)}
	for _, r := range reports {
		sr := r.Report
		if sr.Degraded {
			rs.Degraded++
		}
		if sr.AuditRan {
			rs.AuditRan++
			if sr.AuditViolations > 0 {
				rs.AuditViolated++
			}
		}
		if sr.Attempt > 1 {
			rs.Retries++
		}
	}
	if rs.Solves > 0 {
		rs.DegradedRate = float64(rs.Degraded) / float64(rs.Solves)
	}
	if rs.AuditRan > 0 {
		rs.ViolationRate = float64(rs.AuditViolated) / float64(rs.AuditRan)
	}
	return rs
}

func cacheMix(reports []Record) *CacheSummary {
	cs := &CacheSummary{}
	for _, r := range reports {
		switch r.Report.Cache {
		case "":
			continue
		case "hit":
			cs.Hits++
		case "incremental":
			cs.Incrementals++
		case "cold":
			cs.Cold++
		case "cold-fallback":
			cs.ColdFallbacks++
		case "bypass":
			cs.Bypass++
		}
		cs.Solves++
	}
	if cs.Solves > 0 {
		n := float64(cs.Solves)
		cs.HitRatio = float64(cs.Hits) / n
		cs.IncrementalRatio = float64(cs.Incrementals) / n
		cs.ColdRatio = float64(cs.Cold+cs.ColdFallbacks) / n
	}
	return cs
}

// drift walks each design's congestion snapshots in time order and emits
// the per-step mean-utilization delta — the series that makes a capacity
// or density shift between two solves of the same design visible.
func drift(reports []Record) []DriftPoint {
	last := make(map[string]float64)
	seen := make(map[string]bool)
	var out []DriftPoint
	for _, r := range reports {
		sr := r.Report
		if sr.Congestion == nil {
			continue
		}
		p := DriftPoint{
			TimeMS:        r.TimeMS,
			Design:        sr.Design,
			MeanUtilPct:   sr.Congestion.MeanUtilPct,
			OverflowEdges: sr.Congestion.OverflowEdges,
		}
		if seen[sr.Design] {
			p.DriftPct = p.MeanUtilPct - last[sr.Design]
		}
		seen[sr.Design] = true
		last[sr.Design] = p.MeanUtilPct
		out = append(out, p)
	}
	return out
}

// TrajectoryPoint is one commit's value of one benchmark metric.
type TrajectoryPoint struct {
	TimeMS int64  `json:"t_ms"`
	Commit string `json:"commit,omitempty"`
	Value  float64 `json:"value"`
}

// Trajectory is the GET /telemetry/v1/bench/trajectory payload: one series
// per "<benchmark>/<unit>", each ordered by ingest time — the per-commit
// BENCH curve.
type Trajectory struct {
	// Points counts the bench records folded in.
	Points int `json:"points"`
	// Series maps "<benchmark>/<unit>" to its commit-ordered values.
	Series map[string][]TrajectoryPoint `json:"series"`
}

// ComputeTrajectory folds the bench records into per-metric series.
func ComputeTrajectory(recs []Record) Trajectory {
	var bench []Record
	for _, r := range recs {
		if r.Kind == KindBench && r.Bench != nil {
			bench = append(bench, r)
		}
	}
	sort.SliceStable(bench, func(i, j int) bool { return bench[i].TimeMS < bench[j].TimeMS })
	out := Trajectory{Points: len(bench), Series: make(map[string][]TrajectoryPoint)}
	for _, r := range bench {
		for name, units := range r.Bench.Rows {
			for unit, v := range units {
				key := name + "/" + unit
				out.Series[key] = append(out.Series[key], TrajectoryPoint{
					TimeMS: r.TimeMS,
					Commit: r.Commit,
					Value:  v,
				})
			}
		}
	}
	return out
}
