package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	store := openTestStore(t, t.TempDir())
	svc := NewService(store, 16, t.Logf)
	mux := http.NewServeMux()
	svc.Register(mux, nil)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return svc, ts
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestIngestReportToSeries is the remote-fleet round trip: POST an
// obs.Report, then read it back aggregated from the series endpoint.
func TestIngestReportToSeries(t *testing.T) {
	_, ts := newTestService(t)

	rec := obs.NewRecorder()
	rec.SetLabel("bench", "remote-design")
	rec.SetLabel("method", "PrimalDual")
	rec.Add("pd.iterations", 7)
	rep := rec.Report()
	resp := postJSON(t, ts.URL+"/telemetry/v1/reports?source=fleet-7", rep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	var series Series
	if resp := getJSON(t, ts.URL+"/telemetry/v1/series?metric=all", &series); resp.StatusCode != http.StatusOK {
		t.Fatalf("series status = %d", resp.StatusCode)
	}
	if series.Samples != 1 {
		t.Fatalf("Samples = %d, want 1", series.Samples)
	}
	if series.Latency["PrimalDual"] == nil {
		t.Errorf("latency missing the ingested method: %+v", series.Latency)
	}
	if series.Rates == nil || series.Rates.Solves != 1 {
		t.Errorf("rates = %+v", series.Rates)
	}
}

// TestIngestReportRejectsNewerSchema: a report stamped by a future obs
// schema is a 400, not a silent mis-parse.
func TestIngestReportRejectsNewerSchema(t *testing.T) {
	_, ts := newTestService(t)
	resp := postJSON(t, ts.URL+"/telemetry/v1/reports",
		map[string]any{"schema": obs.SchemaVersion + 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestIngestBenchAndTrajectory: pushed BENCH artifacts come back as
// per-commit trajectory series, with same-commit re-pushes replacing the
// point.
func TestIngestBenchAndTrajectory(t *testing.T) {
	_, ts := newTestService(t)
	artifact := func(commit string, ns float64) map[string]any {
		return map[string]any{
			"schema":       1,
			"generated_at": "2026-08-08T00:00:00Z",
			"labels":       map[string]string{"vcs_revision": commit},
			"benchmarks": []map[string]any{
				{"name": "BenchmarkBuildParallel", "metrics": map[string]float64{"ns/op": ns}},
			},
		}
	}
	for _, a := range []map[string]any{artifact("c1", 100), artifact("c2", 120), artifact("c1", 90)} {
		resp := postJSON(t, ts.URL+"/telemetry/v1/bench", a)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("bench ingest status = %d", resp.StatusCode)
		}
	}

	var tr Trajectory
	getJSON(t, ts.URL+"/telemetry/v1/bench/trajectory", &tr)
	if tr.Points != 2 {
		t.Fatalf("Points = %d, want 2 (c1 re-push replaced)", tr.Points)
	}
	series := tr.Series["BenchmarkBuildParallel/ns/op"]
	vals := map[string]float64{}
	for _, p := range series {
		vals[p.Commit] = p.Value
	}
	if vals["c1"] != 90 || vals["c2"] != 120 {
		t.Errorf("trajectory = %+v", series)
	}

	// An artifact with no rows is rejected.
	resp := postJSON(t, ts.URL+"/telemetry/v1/bench", map[string]any{"schema": 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty artifact status = %d, want 400", resp.StatusCode)
	}
}

// TestPushBenchClient exercises the helper cmd/benchreport -push uses,
// including the error path carrying the server's message.
func TestPushBenchClient(t *testing.T) {
	_, ts := newTestService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	good := []byte(`{"schema":1,"benchmarks":[{"name":"B","metrics":{"ns/op":5}}]}`)
	if err := PushBench(ctx, ts.URL+"/", good); err != nil {
		t.Fatalf("push: %v", err)
	}
	err := PushBench(ctx, ts.URL, []byte(`{"schema":1}`))
	if err == nil || !strings.Contains(err.Error(), "no benchmark rows") {
		t.Errorf("bad-artifact push error = %v", err)
	}
}

func TestSeriesBadParams(t *testing.T) {
	_, ts := newTestService(t)
	for _, q := range []string{"?metric=bogus", "?window=yesterday", "?window=-5m"} {
		resp := getJSON(t, ts.URL+"/telemetry/v1/series"+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestStatsAndDashboard(t *testing.T) {
	svc, ts := newTestService(t)
	svc.Client().Push(reportRec(1, "d", "pd", 1))

	var st map[string]json.RawMessage
	if resp := getJSON(t, ts.URL+"/telemetry/v1/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	for _, k := range []string{"store", "client"} {
		if _, ok := st[k]; !ok {
			t.Errorf("stats missing %q: %v", k, st)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("dashboard content type = %q", ct)
	}
}

// TestServiceEndToEndPersistence: solves pushed through the producer
// client land durably and survive a service restart on the same dir — the
// unit-scale version of the CI kill-and-restart smoke.
func TestServiceEndToEndPersistence(t *testing.T) {
	dir := t.TempDir()
	store := openTestStore(t, dir)
	svc := NewService(store, 64, t.Logf)
	for i := 0; i < 20; i++ {
		svc.Client().Push(reportRec(int64(i), fmt.Sprintf("d%d", i%3), "pd", int64(100+i)))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	store2 := openTestStore(t, dir)
	svc2 := NewService(store2, 64, t.Logf)
	defer svc2.Close(ctx)
	series, err := ComputeSeries(store2.Records(), SeriesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if series.Samples != 20 {
		t.Fatalf("after restart Samples = %d, want 20", series.Samples)
	}
	if series.Latency["pd"] == nil || series.Latency["pd"].P50US == 0 {
		t.Errorf("latency lost across restart: %+v", series.Latency)
	}
}
