package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// reportRec builds a minimal report record with a controlled timestamp.
func reportRec(t int64, design, method string, durUS int64) Record {
	return Record{
		Schema: SchemaVersion,
		Kind:   KindReport,
		TimeMS: t,
		Source: "test",
		Report: &SolveReport{Design: design, Method: method, DurUS: durUS,
			Counters: map[string]int64{"pd.iterations": 3}},
	}
}

func benchRec(t int64, commit string, v float64) Record {
	return Record{
		Schema: SchemaVersion,
		Kind:   KindBench,
		TimeMS: t,
		Commit: commit,
		Bench:  &BenchPoint{Rows: map[string]map[string]float64{"BenchmarkX": {"ns/op": v}}},
	}
}

func openTestStore(t *testing.T, dir string, mut ...func(*StoreConfig)) *Store {
	t.Helper()
	cfg := StoreConfig{Dir: dir, NoSync: true, Logf: t.Logf}
	for _, m := range mut {
		m(&cfg)
	}
	s, err := OpenStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreReplay is the restart path: append, close, reopen, and the
// working set (records, counter aggregate, bench points) must be intact.
func TestStoreReplay(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	recs := []Record{
		reportRec(100, "d1", "PrimalDual", 500),
		reportRec(200, "d1", "ILP", 900),
		benchRec(300, "abc123", 42),
	}
	if err := s.Append(recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir)
	defer s2.Close()
	got := s2.Records()
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	if got[0].Report.Design != "d1" || got[2].Bench.Rows["BenchmarkX"]["ns/op"] != 42 {
		t.Errorf("replayed records mangled: %+v", got)
	}
	if agg := s2.AggregateCounters(); agg["pd.iterations"] != 6 {
		t.Errorf("counter aggregate = %v, want pd.iterations 6", agg)
	}
	if st := s2.Stats(); st.ReplaySkipped != 0 {
		t.Errorf("clean replay skipped %d records", st.ReplaySkipped)
	}
}

// TestStoreTornTail simulates a crash mid-append: a final line without its
// newline must be skipped at replay, with every record before it intact.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if err := s.Append([]Record{reportRec(100, "d1", "pd", 10), reportRec(200, "d1", "pd", 20)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, fmt.Sprintf(segPattern, 1))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Half a record: checksum and a truncated payload, no newline.
	if _, err := f.WriteString(`deadbeef {"schema":1,"kind":"rep`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openTestStore(t, dir)
	defer s2.Close()
	if got := s2.Records(); len(got) != 2 {
		t.Fatalf("replayed %d records past the torn tail, want 2", len(got))
	}
	if st := s2.Stats(); st.ReplaySkipped != 1 {
		t.Errorf("ReplaySkipped = %d, want 1", st.ReplaySkipped)
	}
}

// TestStoreCorruptRecord flips payload bytes of a middle record: the
// checksum rejects it, and records on both sides survive.
func TestStoreCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if err := s.Append([]Record{
		reportRec(100, "a", "pd", 1),
		reportRec(200, "b", "pd", 2),
		reportRec(300, "c", "pd", 3),
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	seg := filepath.Join(dir, fmt.Sprintf(segPattern, 1))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	lines[1] = strings.Replace(lines[1], `"design":"b"`, `"design":"X"`, 1)
	if err := os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir)
	defer s2.Close()
	got := s2.Records()
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2 (corrupt middle skipped)", len(got))
	}
	if got[0].Report.Design != "a" || got[1].Report.Design != "c" {
		t.Errorf("wrong survivors: %+v", got)
	}
	if st := s2.Stats(); st.ReplaySkipped != 1 {
		t.Errorf("ReplaySkipped = %d, want 1", st.ReplaySkipped)
	}
}

// TestStoreNewerSchemaSkipped: a record stamped by a future version is
// skipped at replay instead of failing the boot.
func TestStoreNewerSchemaSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	future := reportRec(100, "d", "pd", 1)
	future.Schema = SchemaVersion + 1
	if err := s.Append([]Record{future, reportRec(200, "d", "pd", 2)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openTestStore(t, dir)
	defer s2.Close()
	if got := s2.Records(); len(got) != 1 || got[0].TimeMS != 200 {
		t.Fatalf("want only the current-schema record, got %+v", got)
	}
}

// TestStoreRotationRetention drives the segment size bound low enough to
// force rotations and checks MaxSegments holds: old segments disappear from
// disk and their records leave the working set.
func TestStoreRotationRetention(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, func(c *StoreConfig) {
		c.SegmentBytes = 256
		c.MaxSegments = 2
	})
	defer s.Close()
	for i := 0; i < 40; i++ {
		if err := s.Append([]Record{reportRec(int64(i), "d", "pd", int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Segments > 2 {
		t.Errorf("Segments = %d, want <= 2", st.Segments)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) > 2 {
		t.Errorf("%d segment files on disk, want <= 2", len(entries))
	}
	if st.Records >= 40 {
		t.Errorf("working set kept all %d records despite retention", st.Records)
	}
	// The aggregate tracks the surviving records, not history.
	recs := s.Records()
	var want int64
	for _, r := range recs {
		want += r.Report.Counters["pd.iterations"]
	}
	if got := s.AggregateCounters()["pd.iterations"]; got != want {
		t.Errorf("aggregate = %d, want %d (working set only)", got, want)
	}
}

// TestStoreMaxAge: sealed segments whose newest record is older than
// MaxAge retire at rotation, while fresh ones stay.
func TestStoreMaxAge(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, func(c *StoreConfig) {
		c.SegmentBytes = 256
		c.MaxAge = time.Hour
	})
	defer s.Close()
	old := time.Now().Add(-2 * time.Hour).UnixMilli()
	for i := 0; i < 10; i++ {
		if err := s.Append([]Record{reportRec(old, "stale", "pd", 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Fresh records force rotations that trigger the age check.
	now := time.Now().UnixMilli()
	for i := 0; i < 10; i++ {
		if err := s.Append([]Record{reportRec(now, "fresh", "pd", 1)}); err != nil {
			t.Fatal(err)
		}
	}
	var stale int
	for _, r := range s.Records() {
		if r.Report.Design == "stale" {
			stale++
		}
	}
	// The active segment is never retired, so a tail of stale records may
	// survive — but the sealed stale segments must be gone.
	if stale == 10 {
		t.Errorf("all %d stale records survived; age retention never fired", stale)
	}
}

// TestStoreBenchCommitKeyed: re-pushing a bench artifact for the same
// commit replaces the point instead of duplicating the trajectory x axis.
func TestStoreBenchCommitKeyed(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if err := s.Append([]Record{benchRec(100, "c1", 10), benchRec(200, "c2", 20)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]Record{benchRec(300, "c1", 15)}); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store) {
		t.Helper()
		recs := s.Records()
		if len(recs) != 2 {
			t.Fatalf("%d bench records, want 2 (c1 deduped)", len(recs))
		}
		var c1 float64
		for _, r := range recs {
			if r.Commit == "c1" {
				c1 = r.Bench.Rows["BenchmarkX"]["ns/op"]
			}
		}
		if c1 != 15 {
			t.Errorf("c1 value = %v, want the re-pushed 15", c1)
		}
	}
	check(s)
	s.Close()
	// Replay dedupes too: disk keeps both lines, the working set keys by
	// commit.
	s2 := openTestStore(t, dir)
	defer s2.Close()
	check(s2)
}

// TestStoreConcurrentAppend exercises the mutex under -race: concurrent
// appends and reads must not trip the detector or lose records.
func TestStoreConcurrentAppend(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	defer s.Close()
	var wg sync.WaitGroup
	const writers, per = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = s.Append([]Record{reportRec(int64(w*1000+i), "d", "pd", 1)})
				_ = s.Records()
				_ = s.Stats()
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Appended != writers*per {
		t.Errorf("Appended = %d, want %d", st.Appended, writers*per)
	}
}

// TestStoreClosedAppend: appends after Close fail instead of panicking.
func TestStoreClosedAppend(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	s.Close()
	if err := s.Append([]Record{reportRec(1, "d", "pd", 1)}); err == nil {
		t.Fatal("append after Close succeeded")
	}
}
