package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Segment file naming: telemetry-<seq>.seg, seq monotonically increasing.
const segPattern = "telemetry-%06d.seg"

// StoreConfig tunes the segment store. The zero value (plus Dir) is usable.
type StoreConfig struct {
	// Dir is the segment directory (required).
	Dir string
	// SegmentBytes rotates the active segment once it grows past this many
	// bytes. Default 2 MiB.
	SegmentBytes int64
	// MaxSegments bounds the total segment count; rotation deletes the
	// oldest sealed segments (and drops their records from the working
	// set) beyond it. Default 16.
	MaxSegments int
	// MaxAge, when positive, retires sealed segments whose newest record
	// is older than this at rotation time. Zero keeps segments until
	// MaxSegments evicts them.
	MaxAge time.Duration
	// NoSync skips the per-append fsync (tests only; production keeps the
	// jobs-WAL durability bar).
	NoSync bool
	// Logf receives replay diagnostics (torn records, skips) and retention
	// actions. nil discards them.
	Logf func(format string, args ...any)
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 2 << 20
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 16
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// storedRec tags an in-memory record with its segment, so retention can
// drop the working-set slice a retired segment backed.
type storedRec struct {
	seg int
	rec Record
}

// Store is the embedded telemetry lake: an append-only directory of
// checksummed record segments (the jobs-WAL framing: "<crc32-hex>
// <json>\n", fsync'd per append batch) plus an in-memory working set
// replayed at boot and served to the query tier. A crash loses at most the
// batch being written; everything before the torn tail replays intact.
type Store struct {
	cfg StoreConfig

	mu       sync.Mutex
	f        *os.File
	seq      int   // active segment sequence number
	size     int64 // active segment size in bytes
	segs     []int // live segment sequence numbers, ascending (incl. active)
	recs     []storedRec
	agg      map[string]int64 // running sum of report counters
	appended int64
	skipped  int64 // unreadable records skipped during replay
}

// OpenStore opens (creating if needed) the segment store under cfg.Dir,
// replaying every live segment into the working set. Unreadable records —
// torn tails, checksum mismatches, malformed JSON, newer schemas — are
// logged, counted and skipped, never a boot failure.
func OpenStore(cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("telemetry: store dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: creating store dir: %w", err)
	}
	s := &Store{cfg: cfg, agg: make(map[string]int64)}

	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("telemetry: reading store dir: %w", err)
	}
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), segPattern, &seq); err == nil {
			s.segs = append(s.segs, seq)
		}
	}
	sort.Ints(s.segs)
	for _, seq := range s.segs {
		if err := s.replaySegment(seq); err != nil {
			return nil, err
		}
	}

	// Continue appending to the newest segment while it has room;
	// otherwise start a fresh one.
	s.seq = 1
	if n := len(s.segs); n > 0 {
		last := s.segs[n-1]
		if fi, err := os.Stat(s.segPath(last)); err == nil && fi.Size() < cfg.SegmentBytes {
			s.seq = last
		} else {
			s.seq = last + 1
		}
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	s.retain()
	return s, nil
}

func (s *Store) segPath(seq int) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf(segPattern, seq))
}

// openActive opens the active segment for append, registering it in segs.
func (s *Store) openActive() error {
	f, err := os.OpenFile(s.segPath(s.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: opening segment: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("telemetry: sizing segment: %w", err)
	}
	s.f, s.size = f, fi.Size()
	if len(s.segs) == 0 || s.segs[len(s.segs)-1] != s.seq {
		s.segs = append(s.segs, s.seq)
	}
	return nil
}

// replaySegment streams one segment's intact records into the working set.
func (s *Store) replaySegment(seq int) error {
	f, err := os.Open(s.segPath(seq))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("telemetry: opening segment for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for lineNo := 1; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(bytes.TrimSpace(line)) > 0 {
				// A final line without its newline is a torn write: the
				// process died mid-append. The record is lost; the segment
				// before it is intact.
				s.skipped++
				s.cfg.Logf("telemetry: replay %s: skipping torn record at line %d (%d bytes, no newline)",
					filepath.Base(s.segPath(seq)), lineNo, len(line))
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("telemetry: reading segment: %w", err)
		}
		rec, perr := decodeLine(line)
		if perr != nil {
			s.skipped++
			s.cfg.Logf("telemetry: replay %s: skipping unreadable record at line %d: %v",
				filepath.Base(s.segPath(seq)), lineNo, perr)
			continue
		}
		s.admit(seq, rec)
	}
}

// admit adds one record to the working set and running aggregates. Bench
// records are commit-keyed: a new point for an already-seen commit
// replaces the old one (re-runs on the same commit update in place rather
// than duplicating the trajectory's x axis).
func (s *Store) admit(seq int, rec Record) {
	if rec.Kind == KindBench && rec.Commit != "" {
		for i := range s.recs {
			old := &s.recs[i]
			if old.rec.Kind == KindBench && old.rec.Commit == rec.Commit {
				*old = storedRec{seg: seq, rec: rec}
				return
			}
		}
	}
	s.recs = append(s.recs, storedRec{seg: seq, rec: rec})
	if rec.Kind == KindReport && rec.Report != nil {
		for k, v := range rec.Report.Counters {
			s.agg[k] += v
		}
	}
}

// decodeLine parses and checksums one segment line.
func decodeLine(line []byte) (Record, error) {
	var rec Record
	line = bytes.TrimRight(line, "\n")
	crcHex, payload, ok := bytes.Cut(line, []byte(" "))
	if !ok {
		return rec, fmt.Errorf("no checksum separator")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(crcHex), "%08x", &want); err != nil {
		return rec, fmt.Errorf("bad checksum field %q", crcHex)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return rec, fmt.Errorf("checksum mismatch (want %08x, got %08x)", want, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("bad record JSON: %w", err)
	}
	if rec.Schema > SchemaVersion {
		return rec, fmt.Errorf("record schema %d newer than this store's %d", rec.Schema, SchemaVersion)
	}
	if rec.Kind != KindReport && rec.Kind != KindBench && rec.Kind != KindScenario {
		return rec, fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	return rec, nil
}

// Append writes the batch as checksummed record lines and fsyncs once:
// when Append returns nil the batch survives a crash. The batch lands in
// the working set and, when the active segment crosses the size bound,
// triggers rotation and retention.
func (s *Store) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	for i := range recs {
		data, err := json.Marshal(recs[i])
		if err != nil {
			return fmt.Errorf("telemetry: encoding record: %w", err)
		}
		fmt.Fprintf(&buf, "%08x %s\n", crc32.ChecksumIEEE(data), data)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("telemetry: store is closed")
	}
	n, err := s.f.Write(buf.Bytes())
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("telemetry: appending records: %w", err)
	}
	if !s.cfg.NoSync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("telemetry: syncing segment: %w", err)
		}
	}
	for _, rec := range recs {
		s.admit(s.seq, rec)
		s.appended++
	}
	if s.size >= s.cfg.SegmentBytes {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// rotate seals the active segment and opens the next, then applies
// retention. Caller holds mu.
func (s *Store) rotate() error {
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("telemetry: sealing segment: %w", err)
	}
	s.seq++
	if err := s.openActive(); err != nil {
		return err
	}
	s.retain()
	return nil
}

// retain applies the segment-count and age bounds: oldest sealed segments
// beyond MaxSegments, and sealed segments whose newest record is older
// than MaxAge, are deleted and their records dropped from the working set.
// The active segment is never retired. Caller holds mu.
func (s *Store) retain() {
	cutoffMS := int64(0)
	if s.cfg.MaxAge > 0 {
		cutoffMS = time.Now().Add(-s.cfg.MaxAge).UnixMilli()
	}
	var drop []int
	for len(s.segs) > 1 && len(s.segs) > s.cfg.MaxSegments {
		drop = append(drop, s.segs[0])
		s.segs = s.segs[1:]
	}
	if cutoffMS > 0 {
		newest := make(map[int]int64)
		for i := range s.recs {
			if t := s.recs[i].rec.TimeMS; t > newest[s.recs[i].seg] {
				newest[s.recs[i].seg] = t
			}
		}
		for len(s.segs) > 1 {
			seq := s.segs[0]
			if n, ok := newest[seq]; ok && n >= cutoffMS {
				break
			}
			drop = append(drop, seq)
			s.segs = s.segs[1:]
		}
	}
	if len(drop) == 0 {
		return
	}
	retired := make(map[int]bool, len(drop))
	for _, seq := range drop {
		retired[seq] = true
		if err := os.Remove(s.segPath(seq)); err != nil && !os.IsNotExist(err) {
			s.cfg.Logf("telemetry: retention: removing %s: %v", filepath.Base(s.segPath(seq)), err)
		} else {
			s.cfg.Logf("telemetry: retention: retired segment %06d", seq)
		}
	}
	kept := s.recs[:0]
	for _, sr := range s.recs {
		if !retired[sr.seg] {
			kept = append(kept, sr)
		}
	}
	s.recs = kept
	// Rebuild the counter aggregate from the surviving working set so the
	// Prometheus view tracks the lake's actual contents.
	s.agg = make(map[string]int64)
	for _, sr := range s.recs {
		if sr.rec.Kind == KindReport && sr.rec.Report != nil {
			for k, v := range sr.rec.Report.Counters {
				s.agg[k] += v
			}
		}
	}
}

// Ingest implements Sink: it appends the batch durably.
func (s *Store) Ingest(recs []Record) error { return s.Append(recs) }

// Records returns a copy of the working set, in append order (bench
// records keep the slot of the commit they replaced).
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	for i := range s.recs {
		out[i] = s.recs[i].rec
	}
	return out
}

// AggregateCounters returns the summed solver counters across every report
// record in the working set (nil when none) — the fleet-wide view the
// /metrics endpoint exposes.
func (s *Store) AggregateCounters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.agg) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.agg))
	for k, v := range s.agg {
		out[k] = v
	}
	return out
}

// StoreStats is a point-in-time snapshot of the store.
type StoreStats struct {
	// Dir is the segment directory.
	Dir string `json:"dir"`
	// Records is the working-set size; Segments the live segment count.
	Records  int `json:"records"`
	Segments int `json:"segments"`
	// Appended counts records written by this process; ReplaySkipped
	// counts unreadable records skipped at boot.
	Appended      int64 `json:"appended"`
	ReplaySkipped int64 `json:"replay_skipped"`
}

// Stats snapshots the store.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Dir:           s.cfg.Dir,
		Records:       len(s.recs),
		Segments:      len(s.segs),
		Appended:      s.appended,
		ReplaySkipped: s.skipped,
	}
}

// Close seals the active segment. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
