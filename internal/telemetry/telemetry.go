// Package telemetry is Streak's embedded telemetry lake: a durable home
// for the per-solve observability reports and BENCH perf artifacts that
// previously died as stdout or one-shot CI uploads.
//
// It has three tiers:
//
//   - Ingest: streakd mounts POST /telemetry/v1/reports (an obs.Report,
//     schema-versioned) and POST /telemetry/v1/bench (a benchreport.File),
//     and pushes its own solves through a Client with bounded buffering
//     that drops on backpressure — telemetry never blocks a solve.
//   - Store: an append-only segment store using the same checksummed
//     fsync'd record framing as the jobs WAL ("<crc32-hex> <json>\n"),
//     with boot-time replay, torn-tail tolerance, size-based segment
//     rotation and segment-count/age retention, plus an in-memory working
//     set mirroring the live segments for queries.
//   - Query: GET /telemetry/v1/series aggregates the report series —
//     p50/p90/p99 solve latency by method, fallback-degradation and
//     audit-violation rates, cache hit/incremental/cold ratios, and
//     congestion-histogram drift per design — and GET
//     /telemetry/v1/bench/trajectory returns the per-commit BENCH series
//     so a perf regression is visible as a curve, not a single -compare
//     gate. /debug/telemetry renders both as a small HTML dashboard.
//
// Records are distilled, not raw: an ingested obs.Report is reduced to the
// fields the query tier aggregates (SolveReport), so the lake stays small
// enough to replay into memory at boot.
package telemetry

import (
	"time"

	"repro/internal/obs"
)

// SchemaVersion stamps every stored record. Bump on an incompatible layout
// change; replay skips records with a newer schema instead of failing.
const SchemaVersion = 1

// Record kinds.
const (
	// KindReport is one solve's distilled observability report.
	KindReport = "report"
	// KindBench is one BENCH_*.json perf artifact, keyed by commit.
	KindBench = "bench"
	// KindScenario is one load/chaos scenario run's report: the program's
	// identity (name, seed, digest, fault spec), its aggregate latency and
	// shed numbers, and the end-to-end invariant verdicts (cmd/streakload).
	KindScenario = "scenario"
)

// Record is one ingested telemetry envelope — exactly one of Report or
// Bench is set, per Kind.
type Record struct {
	// Schema is SchemaVersion at append time.
	Schema int `json:"schema"`
	// Kind is KindReport or KindBench.
	Kind string `json:"kind"`
	// TimeMS is the ingest wall-clock in Unix milliseconds; the query
	// tier's time axis.
	TimeMS int64 `json:"t_ms"`
	// Source names the producer ("streakd", "jobs", "benchreport", or
	// whatever a remote pusher sends).
	Source string `json:"source,omitempty"`
	// Commit is the VCS revision of the producing binary when known.
	Commit string `json:"commit,omitempty"`
	// Report is the distilled solve report (Kind == KindReport).
	Report *SolveReport `json:"report,omitempty"`
	// Bench is the perf artifact point (Kind == KindBench).
	Bench *BenchPoint `json:"bench,omitempty"`
	// Scenario is the load/chaos run report (Kind == KindScenario).
	Scenario *ScenarioReport `json:"scenario,omitempty"`
}

// SolveReport distills one solve's obs.Report into the fields the query
// tier aggregates.
type SolveReport struct {
	// Design is the routed design's name (the recorder's "bench" label).
	Design string `json:"design,omitempty"`
	// Method is the requested selection method; Solver names the rung that
	// actually produced the assignment.
	Method string `json:"method,omitempty"`
	Solver string `json:"solver,omitempty"`
	// Degraded is true when a fallback rung answered.
	Degraded bool `json:"degraded,omitempty"`
	// Cache labels how the solve was served (solvecache.Outcome: "hit",
	// "incremental", "cold", "cold-fallback", "bypass"; empty = cache off).
	Cache string `json:"cache,omitempty"`
	// Attempt is the async-job attempt number (0 for synchronous solves).
	Attempt int `json:"attempt,omitempty"`
	// AuditRan / AuditViolations carry the independent legality verdict.
	AuditRan        bool  `json:"audit_ran,omitempty"`
	AuditViolations int64 `json:"audit_violations,omitempty"`
	// DurUS is the solve's wall-clock in microseconds (the run span, or
	// the server-measured elapsed time for cache hits that never entered
	// the pipeline).
	DurUS int64 `json:"dur_us"`
	// Counters is the run's full named-counter set.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Congestion summarizes the post-solve usage snapshot.
	Congestion *CongestionSummary `json:"congestion,omitempty"`
}

// CongestionSummary reduces an obs.CongestionSnapshot to the per-layer
// utilization shape the drift series tracks.
type CongestionSummary struct {
	// MeanUtilPct is total used tracks over total capacity, as a
	// percentage, across every layer with capacity.
	MeanUtilPct float64 `json:"mean_util_pct"`
	// OverflowEdges counts overflowed edges across layers.
	OverflowEdges int `json:"overflow_edges"`
	// Layers carries each layer's utilization and histogram.
	Layers []LayerUtil `json:"layers,omitempty"`
}

// LayerUtil is one layer's utilization summary.
type LayerUtil struct {
	Layer int    `json:"layer"`
	Name  string `json:"name,omitempty"`
	// UtilPct is used/cap as a percentage (0 when the layer has no
	// capacity).
	UtilPct float64 `json:"util_pct"`
	// Hist is the obs.HistBuckets-wide utilization histogram.
	Hist []int `json:"hist,omitempty"`
}

// BenchPoint is one BENCH artifact reduced to its metric rows.
type BenchPoint struct {
	// GeneratedAt echoes the artifact's timestamp (informational).
	GeneratedAt string `json:"generated_at,omitempty"`
	// Rows maps benchmark name to unit to value (ns/op, allocs/op,
	// route%, ...).
	Rows map[string]map[string]float64 `json:"rows"`
}

// DistillReport reduces a full obs.Report to the stored SolveReport:
// identity from the canonical labels (bench, method, solver, degraded,
// cache, job_attempt), the audit verdict from the audit.* counters, the
// duration from the root "run" span, and the complete counter map.
func DistillReport(rep obs.Report) SolveReport {
	sr := SolveReport{
		Design:   rep.Labels["bench"],
		Method:   rep.Labels["method"],
		Solver:   rep.Labels["solver"],
		Degraded: rep.Labels["degraded"] == "true",
		Cache:    rep.Labels["cache"],
		DurUS:    rep.SpanTotal("run").Microseconds(),
	}
	if a := rep.Labels["job_attempt"]; a != "" {
		for _, c := range a {
			if c < '0' || c > '9' {
				sr.Attempt = 0
				break
			}
			sr.Attempt = sr.Attempt*10 + int(c-'0')
		}
	}
	if len(rep.Counters) > 0 {
		sr.Counters = make(map[string]int64, len(rep.Counters))
		for k, v := range rep.Counters {
			sr.Counters[k] = v
		}
		if rep.Counters[obs.CounterAuditBits] > 0 || rep.Counters[obs.CounterAuditEdges] > 0 {
			sr.AuditRan = true
			sr.AuditViolations = rep.Counters[obs.CounterAuditViolations]
		}
	}
	sr.Congestion = SummarizeCongestion(rep.Congestion)
	return sr
}

// SummarizeCongestion reduces a congestion snapshot to its per-layer
// utilization summary (nil in, nil out).
func SummarizeCongestion(snap *obs.CongestionSnapshot) *CongestionSummary {
	if snap == nil {
		return nil
	}
	cs := &CongestionSummary{Layers: make([]LayerUtil, 0, len(snap.Layers))}
	var used, capTotal int64
	for _, l := range snap.Layers {
		lu := LayerUtil{Layer: l.Layer, Name: l.Name, Hist: append([]int(nil), l.Hist[:]...)}
		if l.Cap > 0 {
			lu.UtilPct = 100 * float64(l.Used) / float64(l.Cap)
		}
		used += l.Used
		capTotal += l.Cap
		cs.OverflowEdges += l.OverflowEdges
		cs.Layers = append(cs.Layers, lu)
	}
	if capTotal > 0 {
		cs.MeanUtilPct = 100 * float64(used) / float64(capTotal)
	}
	return cs
}

// ScenarioReport is one scenario run, distilled for the lake. The field
// shapes mirror internal/scenario's Summary/InvariantResult but are
// declared here so the lake's stored schema does not depend on the
// harness package (remote pushers only need this documented shape).
type ScenarioReport struct {
	// Name and Seed identify the scenario family and its instantiation.
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// Digest is the program's canonical-JSON SHA-256 — two runs with the
	// same digest fired the identical request sequence.
	Digest string `json:"digest,omitempty"`
	// FaultSpec is the faultinject plan armed alongside the run.
	FaultSpec string `json:"fault_spec,omitempty"`
	// Target is the daemon the scenario was fired at.
	Target string `json:"target,omitempty"`
	// DurationMS is the run's wall clock.
	DurationMS int64 `json:"duration_ms"`
	// Requests, ByStatus, ByCache and ShedFrac aggregate the responses.
	Requests int            `json:"requests"`
	ByStatus map[string]int `json:"by_status,omitempty"`
	ByCache  map[string]int `json:"by_cache,omitempty"`
	ShedFrac float64        `json:"shed_frac"`
	// P50us/P90us/P99us are 2xx latency percentiles in microseconds.
	P50us int64 `json:"p50_us"`
	P90us int64 `json:"p90_us"`
	P99us int64 `json:"p99_us"`
	// Jobs* summarize the async submissions the scenario made.
	JobsAccepted  int `json:"jobs_accepted,omitempty"`
	JobsSucceeded int `json:"jobs_succeeded,omitempty"`
	JobsFailed    int `json:"jobs_failed,omitempty"`
	JobsLost      int `json:"jobs_lost,omitempty"`
	// Invariants carries every checked invariant's verdict; Passed is
	// their conjunction.
	Invariants []ScenarioInvariant `json:"invariants,omitempty"`
	Passed     bool                `json:"passed"`
}

// ScenarioInvariant is one invariant's verdict within a scenario report.
type ScenarioInvariant struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// NewScenarioRecord wraps a scenario report in a stamped envelope.
func NewScenarioRecord(source string, sr ScenarioReport) Record {
	return Record{
		Schema:   SchemaVersion,
		Kind:     KindScenario,
		TimeMS:   time.Now().UnixMilli(),
		Source:   source,
		Commit:   obs.BuildInfoLabels()["vcs_revision"],
		Scenario: &sr,
	}
}

// NewReportRecord wraps a distilled solve report in a stamped envelope:
// schema, kind, ingest time, source, and the producing binary's commit.
func NewReportRecord(source string, sr SolveReport) Record {
	return Record{
		Schema: SchemaVersion,
		Kind:   KindReport,
		TimeMS: time.Now().UnixMilli(),
		Source: source,
		Commit: obs.BuildInfoLabels()["vcs_revision"],
		Report: &sr,
	}
}

// NewBenchRecord wraps a bench point in a stamped envelope. commit may be
// empty (an artifact built outside a VCS checkout).
func NewBenchRecord(source, commit, generatedAt string, rows map[string]map[string]float64) Record {
	return Record{
		Schema: SchemaVersion,
		Kind:   KindBench,
		TimeMS: time.Now().UnixMilli(),
		Source: source,
		Commit: commit,
		Bench:  &BenchPoint{GeneratedAt: generatedAt, Rows: rows},
	}
}
