package geom

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// This file holds the allocation-free SoA kernels behind Canon, WireLength
// and Bends. The map-and-nested-slice implementations they replace dominated
// the candidate-build and selection hot paths; the kernels below reduce each
// of them to packed-key sorts plus linear merges over scratch slices owned
// by a pooled Arena, so steady-state callers allocate nothing. Outputs are
// byte-identical to the legacy implementations (pinned by the fuzz and
// golden suites): merged lines order horizontal-first, then fixed ascending,
// then span start ascending, and canonical segments split at ascending
// deduplicated cuts.

// coordBias shifts signed G-cell coordinates into the 31-bit unsigned range
// used by the packed sort keys. Coordinates must stay within
// [-2^30, 2^30); packKey panics otherwise rather than silently mis-sorting.
const coordBias = 1 << 30

const coordMask = 1<<31 - 1

// lineRec is one collinear run in packed SoA form: key orders runs
// (direction, fixed coordinate, span start) so a single flat sort reproduces
// the legacy per-group ordering; hi is the span end on the moving axis.
type lineRec struct {
	key uint64
	hi  int32
}

// packKey builds a sort key ordering horizontal runs first, then fixed
// ascending, then lo ascending — the canonical line order.
func packKey(vertical bool, fixed, lo int) uint64 {
	bf, bl := uint64(int64(fixed)+coordBias), uint64(int64(lo)+coordBias)
	if bf > coordMask || bl > coordMask {
		panic(fmt.Sprintf("geom: coordinate out of packed range: fixed=%d lo=%d", fixed, lo))
	}
	k := bf<<31 | bl
	if vertical {
		k |= 1 << 62
	}
	return k
}

func (r lineRec) vertical() bool { return r.key>>62 != 0 }
func (r lineRec) fixed() int     { return int(r.key>>31&coordMask) - coordBias }
func (r lineRec) lo() int        { return int(r.key&coordMask) - coordBias }

// dirFixedMask selects the (direction, fixed) part of a key — two runs merge
// only when these bits match.
const dirFixedMask = 1<<62 | uint64(coordMask)<<31

// packPt packs a point for sorted set intersection.
func packPt(x, y int) uint64 {
	return uint64(int64(x)+coordBias)<<31 | uint64(int64(y)+coordBias)
}

// Arena is reusable scratch for the geometry kernels. The zero value is
// ready to use; Get/PutArena pool arenas so steady-state solve paths reuse
// grown scratch instead of reallocating it. An Arena is not safe for
// concurrent use; pool one per goroutine.
type Arena struct {
	recs  []lineRec
	cuts  []int32
	hpts  []uint64
	vpts  []uint64
	canon []Seg
}

var arenaPool = sync.Pool{New: func() any {
	arenaFresh.Add(1)
	return new(Arena)
}}

var (
	arenaGets  atomic.Int64
	arenaFresh atomic.Int64
)

// GetArena returns a pooled arena (allocating a fresh one only when the pool
// is empty). Pair with PutArena.
func GetArena() *Arena {
	arenaGets.Add(1)
	return arenaPool.Get().(*Arena)
}

// PutArena returns the arena to the pool for reuse.
func PutArena(a *Arena) { arenaPool.Put(a) }

// ArenaCounters reports cumulative GetArena calls and how many of them had
// to allocate a fresh arena; solvers snapshot the pair around a stage to
// surface pooled-vs-fresh acquisition counts in telemetry.
func ArenaCounters() (gets, fresh int64) {
	return arenaGets.Load(), arenaFresh.Load()
}

// merge fills a.recs with the maximal disjoint collinear runs of segs, in
// canonical order (horizontal first, fixed ascending, lo ascending), and
// returns the merged prefix.
func (a *Arena) merge(segs []Seg) []lineRec {
	recs := a.recs[:0]
	for _, s := range segs {
		if s.A == s.B {
			continue
		}
		n := s.Norm()
		if n.Horizontal() {
			recs = append(recs, lineRec{packKey(false, n.A.Y, n.A.X), int32(n.B.X)})
		} else {
			recs = append(recs, lineRec{packKey(true, n.A.X, n.A.Y), int32(n.B.Y)})
		}
	}
	a.recs = recs
	slices.SortFunc(recs, func(x, y lineRec) int {
		if x.key < y.key {
			return -1
		}
		if x.key > y.key {
			return 1
		}
		return 0
	})
	// Merge overlapping runs in place: the write index never passes the
	// read index.
	m := 0
	for i := 0; i < len(recs); {
		cur := recs[i]
		j := i + 1
		for ; j < len(recs); j++ {
			r := recs[j]
			if r.key&dirFixedMask != cur.key&dirFixedMask || int32(r.lo()) > cur.hi {
				break
			}
			if r.hi > cur.hi {
				cur.hi = r.hi
			}
		}
		recs[m] = cur
		m++
		i = j
	}
	return recs[:m]
}

// WireLength returns the total length of the union of the segments —
// Tree.WireLength without the per-call map and group slices.
func (a *Arena) WireLength(segs []Seg) int {
	if !segsInPackedRange(segs) {
		return wideWireLength(segs)
	}
	total := 0
	for _, r := range a.merge(segs) {
		total += int(r.hi) - r.lo()
	}
	return total
}

// Bends counts the bending points of the segment set: canonical nodes with
// exactly one horizontal and one vertical incident segment. Merged runs are
// disjoint per direction, so at most one run per direction passes through
// any point and a node is a bend iff it is an extremity of both a
// horizontal and a vertical run; the kernel intersects the two sorted
// extremity sets.
func (a *Arena) Bends(segs []Seg) int {
	if !segsInPackedRange(segs) {
		return wideBends(segs)
	}
	lines := a.merge(segs)
	hp, vp := a.hpts[:0], a.vpts[:0]
	for _, l := range lines {
		if l.vertical() {
			x := l.fixed()
			vp = append(vp, packPt(x, l.lo()), packPt(x, int(l.hi)))
		} else {
			y := l.fixed()
			hp = append(hp, packPt(l.lo(), y), packPt(int(l.hi), y))
		}
	}
	a.hpts, a.vpts = hp, vp
	slices.Sort(hp)
	slices.Sort(vp)
	bends := 0
	for i, j := 0, 0; i < len(hp) && j < len(vp); {
		switch {
		case hp[i] < vp[j]:
			i++
		case hp[i] > vp[j]:
			j++
		default:
			bends++
			i++
			j++
		}
	}
	return bends
}

// AppendCanon appends the canonical form of segs to dst and returns it:
// merged runs split at every endpoint or crossing touching them, in the
// same order and with the same endpoints as Tree.Canon.
func (a *Arena) AppendCanon(dst []Seg, segs []Seg) []Seg {
	if !segsInPackedRange(segs) {
		return wideAppendCanon(dst, segs)
	}
	lines := a.merge(segs)
	// Horizontal runs sort first; hb is the first vertical index.
	hb := len(lines)
	for i, l := range lines {
		if l.vertical() {
			hb = i
			break
		}
	}
	horiz, vert := lines[:hb], lines[hb:]
	for i, l := range lines {
		lo := int32(l.lo())
		cuts := append(a.cuts[:0], lo, l.hi)
		fixed := int32(l.fixed())
		// Perpendicular runs cut this one where they cross it (endpoint
		// contact included).
		var perp []lineRec
		if i < hb {
			perp = vert
		} else {
			perp = horiz
		}
		for _, b := range perp {
			bf := int32(b.fixed())
			if bf >= lo && bf <= l.hi && fixed >= int32(b.lo()) && fixed <= b.hi {
				cuts = append(cuts, bf)
			}
		}
		a.cuts = cuts
		slices.Sort(cuts)
		prev := cuts[0]
		for _, c := range cuts[1:] {
			if c == prev {
				continue
			}
			if l.vertical() {
				dst = append(dst, Seg{A: Point{int(fixed), int(prev)}, B: Point{int(fixed), int(c)}})
			} else {
				dst = append(dst, Seg{A: Point{int(prev), int(fixed)}, B: Point{int(c), int(fixed)}})
			}
			prev = c
		}
	}
	return dst
}

// Canon returns the canonical segments of segs in arena-owned scratch. The
// result is valid until the arena's next kernel call or PutArena; callers
// needing to keep it must copy.
func (a *Arena) Canon(segs []Seg) []Seg {
	out := a.AppendCanon(a.canon[:0], segs)
	a.canon = out
	return out
}

// ---- wide-coordinate fallback ----
//
// The packed keys carry biased 31-bit coordinates, plenty for G-cell grids
// but not for huge physical-unit spans (metrics on billion-cell grids). Each
// kernel checks the input once and falls back to the wide path below, which
// keeps the legacy full-int-range semantics at legacy speed; the fallback is
// cold and allocates freely.

// segsInPackedRange reports whether every endpoint fits the packed keys.
func segsInPackedRange(segs []Seg) bool {
	for _, s := range segs {
		if !ptInPackedRange(s.A) || !ptInPackedRange(s.B) {
			return false
		}
	}
	return true
}

func ptInPackedRange(p Point) bool {
	return p.X >= -coordBias && p.X < coordBias && p.Y >= -coordBias && p.Y < coordBias
}

// wideLine is a merged collinear run with unbounded coordinates.
type wideLine struct {
	vertical bool
	fixed    int
	lo, hi   int
}

// wideMerge is merge for out-of-range coordinates, producing the same
// canonical run order (horizontal first, fixed ascending, lo ascending).
func wideMerge(segs []Seg) []wideLine {
	var runs []wideLine
	for _, s := range segs {
		if s.A == s.B {
			continue
		}
		n := s.Norm()
		if n.Horizontal() {
			runs = append(runs, wideLine{false, n.A.Y, n.A.X, n.B.X})
		} else {
			runs = append(runs, wideLine{true, n.A.X, n.A.Y, n.B.Y})
		}
	}
	slices.SortFunc(runs, func(x, y wideLine) int {
		if x.vertical != y.vertical {
			if x.vertical {
				return 1
			}
			return -1
		}
		if x.fixed != y.fixed {
			if x.fixed < y.fixed {
				return -1
			}
			return 1
		}
		if x.lo != y.lo {
			if x.lo < y.lo {
				return -1
			}
			return 1
		}
		return 0
	})
	m := 0
	for i := 0; i < len(runs); {
		cur := runs[i]
		j := i + 1
		for ; j < len(runs); j++ {
			r := runs[j]
			if r.vertical != cur.vertical || r.fixed != cur.fixed || r.lo > cur.hi {
				break
			}
			if r.hi > cur.hi {
				cur.hi = r.hi
			}
		}
		runs[m] = cur
		m++
		i = j
	}
	return runs[:m]
}

func wideWireLength(segs []Seg) int {
	total := 0
	for _, l := range wideMerge(segs) {
		total += l.hi - l.lo
	}
	return total
}

func wideAppendCanon(dst []Seg, segs []Seg) []Seg {
	lines := wideMerge(segs)
	for _, l := range lines {
		cuts := []int{l.lo, l.hi}
		for _, b := range lines {
			if b.vertical == l.vertical {
				continue
			}
			if b.fixed >= l.lo && b.fixed <= l.hi && l.fixed >= b.lo && l.fixed <= b.hi {
				cuts = append(cuts, b.fixed)
			}
		}
		slices.Sort(cuts)
		prev := cuts[0]
		for _, c := range cuts[1:] {
			if c == prev {
				continue
			}
			if l.vertical {
				dst = append(dst, Seg{A: Point{l.fixed, prev}, B: Point{l.fixed, c}})
			} else {
				dst = append(dst, Seg{A: Point{prev, l.fixed}, B: Point{c, l.fixed}})
			}
			prev = c
		}
	}
	return dst
}

func wideBends(segs []Seg) int {
	var hp, vp [][2]int
	for _, l := range wideMerge(segs) {
		if l.vertical {
			vp = append(vp, [2]int{l.fixed, l.lo}, [2]int{l.fixed, l.hi})
		} else {
			hp = append(hp, [2]int{l.lo, l.fixed}, [2]int{l.hi, l.fixed})
		}
	}
	cmp := func(x, y [2]int) int {
		if x[0] != y[0] {
			if x[0] < y[0] {
				return -1
			}
			return 1
		}
		if x[1] != y[1] {
			if x[1] < y[1] {
				return -1
			}
			return 1
		}
		return 0
	}
	slices.SortFunc(hp, cmp)
	slices.SortFunc(vp, cmp)
	bends := 0
	for i, j := 0, 0; i < len(hp) && j < len(vp); {
		switch c := cmp(hp[i], vp[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			bends++
			i++
			j++
		}
	}
	return bends
}
