package geom

import (
	"testing"
	"testing/quick"
)

func TestSegBasics(t *testing.T) {
	s := S(Pt(3, 2), Pt(0, 2))
	if !s.Horizontal() || s.Vertical() {
		t.Error("expected horizontal segment")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	n := s.Norm()
	if n.A != Pt(0, 2) || n.B != Pt(3, 2) {
		t.Errorf("Norm = %v", n)
	}
	v := S(Pt(1, 1), Pt(1, 5))
	if !v.Vertical() || v.Horizontal() {
		t.Error("expected vertical segment")
	}
	zero := S(Pt(2, 2), Pt(2, 2))
	if !zero.Horizontal() || !zero.Vertical() || zero.Len() != 0 {
		t.Error("zero-length segment should be both orientations with Len 0")
	}
}

func TestSegDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("diagonal S() did not panic")
		}
	}()
	S(Pt(0, 0), Pt(1, 1))
}

func TestSegContains(t *testing.T) {
	s := S(Pt(0, 3), Pt(5, 3))
	for x := 0; x <= 5; x++ {
		if !s.Contains(Pt(x, 3)) {
			t.Errorf("should contain (%d,3)", x)
		}
	}
	if s.Contains(Pt(6, 3)) || s.Contains(Pt(-1, 3)) || s.Contains(Pt(2, 4)) {
		t.Error("contains point off segment")
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a, b Seg
		want int
	}{
		{S(Pt(0, 0), Pt(5, 0)), S(Pt(3, 0), Pt(8, 0)), 2},
		{S(Pt(0, 0), Pt(5, 0)), S(Pt(5, 0), Pt(8, 0)), 0},  // touch only
		{S(Pt(0, 0), Pt(5, 0)), S(Pt(0, 1), Pt(5, 1)), 0},  // parallel rows
		{S(Pt(0, 0), Pt(0, 5)), S(Pt(0, 2), Pt(0, 3)), 1},  // nested vertical
		{S(Pt(0, 0), Pt(5, 0)), S(Pt(2, -1), Pt(2, 4)), 0}, // perpendicular
	}
	for _, c := range cases {
		if got := Overlap(c.a, c.b); got != c.want {
			t.Errorf("Overlap(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOverlapSymmetric(t *testing.T) {
	f := func(ax, bx, cx, dx, y int8, vertical bool) bool {
		var a, b Seg
		if vertical {
			a = S(Pt(int(y), int(ax)), Pt(int(y), int(bx)))
			b = S(Pt(int(y), int(cx)), Pt(int(y), int(dx)))
		} else {
			a = S(Pt(int(ax), int(y)), Pt(int(bx), int(y)))
			b = S(Pt(int(cx), int(y)), Pt(int(dx), int(y)))
		}
		o := Overlap(a, b)
		return o == Overlap(b, a) && o >= 0 && o <= min(a.Len(), b.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLShape(t *testing.T) {
	segs := LShape(Pt(0, 0), Pt(3, 4))
	if len(segs) != 2 {
		t.Fatalf("want 2 segments, got %d", len(segs))
	}
	tr := NewTree(segs...)
	if tr.WireLength() != 7 {
		t.Errorf("L-shape wirelength = %d, want 7", tr.WireLength())
	}
	if !tr.Connected([]Point{Pt(0, 0), Pt(3, 4)}) {
		t.Error("L-shape not connected")
	}
	// Degenerate: collinear points produce a single segment.
	if got := LShape(Pt(0, 0), Pt(5, 0)); len(got) != 1 {
		t.Errorf("collinear L-shape = %v", got)
	}
	if got := LShape(Pt(2, 2), Pt(2, 2)); len(got) != 0 {
		t.Errorf("zero L-shape = %v", got)
	}
}

func TestLShapeVia(t *testing.T) {
	segs := LShapeVia(Pt(0, 0), Pt(0, 4), Pt(3, 4))
	tr := NewTree(segs...)
	if tr.WireLength() != 7 {
		t.Errorf("wirelength = %d", tr.WireLength())
	}
	if tr.Bends() != 1 {
		t.Errorf("bends = %d, want 1", tr.Bends())
	}
}

func TestLShapeProperty(t *testing.T) {
	// Any L-shape has wirelength exactly the Manhattan distance.
	f := func(ax, ay, bx, by int8) bool {
		a, b := Pt(int(ax), int(ay)), Pt(int(bx), int(by))
		tr := NewTree(LShape(a, b)...)
		return tr.WireLength() == Dist(a, b) && tr.Connected([]Point{a, b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
