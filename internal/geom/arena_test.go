package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// The reference implementations below are verbatim copies of the map-based
// kernels the Arena replaced; the tests pin the SoA kernels against them on
// randomized segment soups, including the byte-for-byte output order of
// Canon that downstream usage accounting depends on.

type refLine struct {
	horizontal bool
	fixed      int
	lo, hi     int
}

func refMergeLines(segs []Seg) []refLine {
	type key struct {
		horizontal bool
		fixed      int
	}
	groups := make(map[key][][2]int)
	for _, s := range segs {
		if s.Len() == 0 {
			continue
		}
		n := s.Norm()
		if n.Horizontal() {
			k := key{true, n.A.Y}
			groups[k] = append(groups[k], [2]int{n.A.X, n.B.X})
		} else {
			k := key{false, n.A.X}
			groups[k] = append(groups[k], [2]int{n.A.Y, n.B.Y})
		}
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].horizontal != keys[j].horizontal {
			return keys[i].horizontal
		}
		return keys[i].fixed < keys[j].fixed
	})
	var out []refLine
	for _, k := range keys {
		ivs := groups[k]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
		cur := ivs[0]
		for _, iv := range ivs[1:] {
			if iv[0] <= cur[1] {
				if iv[1] > cur[1] {
					cur[1] = iv[1]
				}
				continue
			}
			out = append(out, refLine{k.horizontal, k.fixed, cur[0], cur[1]})
			cur = iv
		}
		out = append(out, refLine{k.horizontal, k.fixed, cur[0], cur[1]})
	}
	return out
}

func refWireLength(segs []Seg) int {
	total := 0
	for _, iv := range refMergeLines(segs) {
		total += iv.hi - iv.lo
	}
	return total
}

func refCanon(segs []Seg) []Seg {
	lines := refMergeLines(segs)
	cuts := make([][]int, len(lines))
	for i, l := range lines {
		cuts[i] = []int{l.lo, l.hi}
	}
	for i, a := range lines {
		for j, b := range lines {
			if i == j || a.horizontal == b.horizontal {
				continue
			}
			if b.fixed >= a.lo && b.fixed <= a.hi && a.fixed >= b.lo && a.fixed <= b.hi {
				cuts[i] = append(cuts[i], b.fixed)
			}
		}
	}
	var out []Seg
	for i, l := range lines {
		cs := cuts[i]
		sort.Ints(cs)
		prev := cs[0]
		for _, c := range cs[1:] {
			if c == prev {
				continue
			}
			if l.horizontal {
				out = append(out, Seg{A: Point{prev, l.fixed}, B: Point{c, l.fixed}})
			} else {
				out = append(out, Seg{A: Point{l.fixed, prev}, B: Point{l.fixed, c}})
			}
			prev = c
		}
	}
	return out
}

func refBends(segs []Seg) int {
	c := refCanon(segs)
	type inc struct{ h, v, deg int }
	m := make(map[Point]*inc)
	touch := func(p Point, horizontal bool) {
		e := m[p]
		if e == nil {
			e = &inc{}
			m[p] = e
		}
		e.deg++
		if horizontal {
			e.h++
		} else {
			e.v++
		}
	}
	for _, s := range c {
		touch(s.A, s.Horizontal())
		touch(s.B, s.Horizontal())
	}
	bends := 0
	for _, e := range m {
		if e.deg == 2 && e.h == 1 && e.v == 1 {
			bends++
		}
	}
	return bends
}

// randSegs draws a random rectilinear segment soup: overlapping runs,
// duplicate and zero-length segments, negative coordinates, crossings.
func randSegs(rng *rand.Rand, n int) []Seg {
	segs := make([]Seg, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Intn(21) - 10
		y := rng.Intn(21) - 10
		d := rng.Intn(11) - 5
		if rng.Intn(2) == 0 {
			segs = append(segs, Seg{A: Point{x, y}, B: Point{x + d, y}})
		} else {
			segs = append(segs, Seg{A: Point{x, y}, B: Point{x, y + d}})
		}
	}
	return segs
}

func TestArenaKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := GetArena()
	defer PutArena(a)
	for trial := 0; trial < 2000; trial++ {
		segs := randSegs(rng, 1+rng.Intn(14))
		t1 := Tree{Segs: segs}

		if got, want := a.WireLength(segs), refWireLength(segs); got != want {
			t.Fatalf("trial %d: WireLength=%d want %d (segs %v)", trial, got, want, segs)
		}
		if got, want := t1.WireLength(), refWireLength(segs); got != want {
			t.Fatalf("trial %d: Tree.WireLength=%d want %d", trial, got, want)
		}

		wantCanon := refCanon(segs)
		gotCanon := a.Canon(segs)
		if len(gotCanon) != len(wantCanon) {
			t.Fatalf("trial %d: Canon len=%d want %d (segs %v)", trial, len(gotCanon), len(wantCanon), segs)
		}
		for i := range gotCanon {
			if gotCanon[i] != wantCanon[i] {
				t.Fatalf("trial %d: Canon[%d]=%v want %v (segs %v)", trial, i, gotCanon[i], wantCanon[i], segs)
			}
		}
		treeCanon := t1.Canon().Segs
		if len(treeCanon) != len(wantCanon) {
			t.Fatalf("trial %d: Tree.Canon len=%d want %d", trial, len(treeCanon), len(wantCanon))
		}
		for i := range treeCanon {
			if treeCanon[i] != wantCanon[i] {
				t.Fatalf("trial %d: Tree.Canon[%d]=%v want %v", trial, i, treeCanon[i], wantCanon[i])
			}
		}

		if got, want := a.Bends(segs), refBends(segs); got != want {
			t.Fatalf("trial %d: Bends=%d want %d (segs %v)", trial, got, want, segs)
		}
		if got, want := t1.Bends(), refBends(segs); got != want {
			t.Fatalf("trial %d: Tree.Bends=%d want %d (segs %v)", trial, got, want, segs)
		}
	}
}

func TestArenaWideCoordinates(t *testing.T) {
	// Coordinates beyond the packed 31-bit range must take the wide
	// fallback and still match the reference kernels exactly.
	rng := rand.New(rand.NewSource(13))
	a := GetArena()
	defer PutArena(a)
	offsets := []Point{
		{1 << 32, 0}, {0, -(1 << 40)}, {4_000_000_000, 4_000_000_000}, {-(1 << 31), 1 << 33},
	}
	for trial := 0; trial < 200; trial++ {
		off := offsets[trial%len(offsets)]
		segs := randSegs(rng, 1+rng.Intn(10))
		for i := range segs {
			segs[i].A = segs[i].A.Add(off)
			segs[i].B = segs[i].B.Add(off)
		}
		if got, want := a.WireLength(segs), refWireLength(segs); got != want {
			t.Fatalf("trial %d: wide WireLength=%d want %d", trial, got, want)
		}
		gotCanon, wantCanon := a.Canon(segs), refCanon(segs)
		if len(gotCanon) != len(wantCanon) {
			t.Fatalf("trial %d: wide Canon len=%d want %d", trial, len(gotCanon), len(wantCanon))
		}
		for i := range gotCanon {
			if gotCanon[i] != wantCanon[i] {
				t.Fatalf("trial %d: wide Canon[%d]=%v want %v", trial, i, gotCanon[i], wantCanon[i])
			}
		}
		if got, want := a.Bends(segs), refBends(segs); got != want {
			t.Fatalf("trial %d: wide Bends=%d want %d", trial, got, want)
		}
	}
	// A single maximal span reproduces the metrics huge-grid scenario.
	const span = 4_000_000_000
	if got := a.WireLength([]Seg{S(Pt(0, 0), Pt(span, 0))}); got != span {
		t.Fatalf("huge span WireLength=%d want %d", got, span)
	}
}

func TestArenaScratchReuse(t *testing.T) {
	// The same arena must produce correct results across interleaved kernel
	// calls; scratch from one call must not leak into the next.
	rng := rand.New(rand.NewSource(11))
	a := GetArena()
	defer PutArena(a)
	segsA := randSegs(rng, 12)
	segsB := randSegs(rng, 3)
	wantA, wantB := refCanon(segsA), refCanon(segsB)
	for i := 0; i < 50; i++ {
		ca := append([]Seg(nil), a.Canon(segsA)...)
		_ = a.WireLength(segsB)
		_ = a.Bends(segsA)
		cb := append([]Seg(nil), a.Canon(segsB)...)
		if len(ca) != len(wantA) || len(cb) != len(wantB) {
			t.Fatalf("iter %d: scratch leak: lens %d/%d want %d/%d", i, len(ca), len(cb), len(wantA), len(wantB))
		}
		for j := range ca {
			if ca[j] != wantA[j] {
				t.Fatalf("iter %d: Canon A mismatch at %d", i, j)
			}
		}
		for j := range cb {
			if cb[j] != wantB[j] {
				t.Fatalf("iter %d: Canon B mismatch at %d", i, j)
			}
		}
	}
}

func TestArenaCountersAdvance(t *testing.T) {
	g0, _ := ArenaCounters()
	a := GetArena()
	PutArena(a)
	g1, f1 := ArenaCounters()
	if g1 <= g0 {
		t.Fatalf("gets did not advance: %d -> %d", g0, g1)
	}
	if f1 > g1 {
		t.Fatalf("fresh %d exceeds gets %d", f1, g1)
	}
}

func TestPackKeyRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("packKey accepted an out-of-range coordinate")
		}
	}()
	packKey(false, 1<<30, 0)
}

func BenchmarkArenaKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	segs := randSegs(rng, 12)
	b.Run("canon", func(b *testing.B) {
		b.ReportAllocs()
		a := GetArena()
		defer PutArena(a)
		for i := 0; i < b.N; i++ {
			a.Canon(segs)
		}
	})
	b.Run("bends", func(b *testing.B) {
		b.ReportAllocs()
		a := GetArena()
		defer PutArena(a)
		for i := 0; i < b.N; i++ {
			a.Bends(segs)
		}
	})
	b.Run("wirelength", func(b *testing.B) {
		b.ReportAllocs()
		a := GetArena()
		defer PutArena(a)
		for i := 0; i < b.N; i++ {
			a.WireLength(segs)
		}
	})
}
