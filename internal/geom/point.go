// Package geom provides integer rectilinear geometry primitives used by the
// Streak signal-group router: points on the G-cell grid, axis-aligned
// segments (the paper's "rectilinear connections"), rectilinear trees, and
// Hanan-grid helpers.
//
// All coordinates are integer G-cell indices. Distances are Manhattan.
package geom

import "fmt"

// Point is a location on the 2-D G-cell grid.
type Point struct {
	X, Y int
}

// Pt is a convenience constructor for Point.
func Pt(x, y int) Point { return Point{X: x, Y: y} }

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p translated by d.
func (p Point) Add(d Point) Point { return Point{p.X + d.X, p.Y + d.Y} }

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Less orders points lexicographically by (X, Y). It gives a deterministic
// total order for canonicalizing pin lists and tree segments.
func (p Point) Less(q Point) bool {
	if p.X != q.X {
		return p.X < q.X
	}
	return p.Y < q.Y
}

// Dist returns the Manhattan distance between p and q.
func Dist(p, q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// BBox returns the bounding rectangle of the given points. It panics if
// pts is empty, because an empty bounding box has no meaningful value.
func BBox(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BBox of empty point set")
	}
	r := Rect{Lo: pts[0], Hi: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.X > r.Hi.X {
			r.Hi.X = p.X
		}
		if p.Y > r.Hi.Y {
			r.Hi.Y = p.Y
		}
	}
	return r
}

// Rect is an axis-aligned rectangle with inclusive corners Lo and Hi.
type Rect struct {
	Lo, Hi Point
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// W returns the rectangle width in G-cells (Hi.X - Lo.X).
func (r Rect) W() int { return r.Hi.X - r.Lo.X }

// H returns the rectangle height in G-cells (Hi.Y - Lo.Y).
func (r Rect) H() int { return r.Hi.Y - r.Lo.Y }

// Center returns the integer center of the rectangle (rounded down).
func (r Rect) Center() Point {
	return Point{(r.Lo.X + r.Hi.X) / 2, (r.Lo.Y + r.Hi.Y) / 2}
}

// HalfPerimeter returns the half-perimeter wirelength (HPWL) of the
// rectangle, the classic lower bound for connecting its corner points.
func (r Rect) HalfPerimeter() int { return r.W() + r.H() }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
