package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPathLengthBounds: on a random spanning tree, the path length between
// two pins is at least their Manhattan distance and at most the total
// wirelength.
func TestPathLengthBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, pts := randomSpanTree(r, 2+r.Intn(6))
		a, b := pts[0], pts[len(pts)-1]
		d := tr.PathLength(a, b)
		if d < 0 {
			return false // pins always on their own spanning tree
		}
		return d >= Dist(a, b) && d <= tr.WireLength()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPathLengthSymmetric: path length is direction-independent.
func TestPathLengthSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, pts := randomSpanTree(r, 2+r.Intn(6))
		a, b := pts[r.Intn(len(pts))], pts[r.Intn(len(pts))]
		return tr.PathLength(a, b) == tr.PathLength(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestCanonPreservesCoverage: every point covered by the original segments
// is covered by the canonical form and vice versa (sampled).
func TestCanonPreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, _ := randomSpanTree(r, 2+r.Intn(6))
		c := tr.Canon()
		for trial := 0; trial < 20; trial++ {
			p := Pt(r.Intn(22)-1, r.Intn(22)-1)
			if tr.OnTree(p) != c.OnTree(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBendsNonNegativeAndStable: bends are non-negative and invariant
// under segment order shuffling.
func TestBendsNonNegativeAndStable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, _ := randomSpanTree(r, 2+r.Intn(6))
		b1 := tr.Bends()
		if b1 < 0 {
			return false
		}
		shuffled := Tree{Segs: append([]Seg(nil), tr.Segs...)}
		r.Shuffle(len(shuffled.Segs), func(i, j int) {
			shuffled.Segs[i], shuffled.Segs[j] = shuffled.Segs[j], shuffled.Segs[i]
		})
		return shuffled.Bends() == b1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
