package geom

import "fmt"

// Seg is an axis-aligned segment between two G-cell points — the paper's
// "rectilinear connection" (RC). A Seg is normalized when A.Less(B) or A==B;
// use Norm to canonicalize. A zero-length Seg (A==B) is permitted and counts
// as both horizontal and vertical.
type Seg struct {
	A, B Point
}

// S constructs a segment between two points. It panics if the points are
// not axis-aligned, because diagonal RCs never occur in rectilinear routing
// and indicate a logic error upstream.
func S(a, b Point) Seg {
	if a.X != b.X && a.Y != b.Y {
		panic(fmt.Sprintf("geom: diagonal segment %v-%v", a, b))
	}
	return Seg{A: a, B: b}
}

// Norm returns the segment with endpoints ordered so that A.Less(B) (or
// A==B). Normalized segments compare equal iff they cover the same RC.
func (s Seg) Norm() Seg {
	if s.B.Less(s.A) {
		return Seg{A: s.B, B: s.A}
	}
	return s
}

// Horizontal reports whether the segment runs along the X axis.
// Zero-length segments report true.
func (s Seg) Horizontal() bool { return s.A.Y == s.B.Y }

// Vertical reports whether the segment runs along the Y axis.
// Zero-length segments report true.
func (s Seg) Vertical() bool { return s.A.X == s.B.X }

// Len returns the segment length in G-cells.
func (s Seg) Len() int { return Dist(s.A, s.B) }

// String renders the segment as "(x,y)-(x,y)".
func (s Seg) String() string { return s.A.String() + "-" + s.B.String() }

// Contains reports whether point p lies on the segment (inclusive).
func (s Seg) Contains(p Point) bool {
	n := s.Norm()
	if n.Horizontal() {
		return p.Y == n.A.Y && p.X >= n.A.X && p.X <= n.B.X
	}
	return p.X == n.A.X && p.Y >= n.A.Y && p.Y <= n.B.Y
}

// Translate returns the segment shifted by d.
func (s Seg) Translate(d Point) Seg {
	return Seg{A: s.A.Add(d), B: s.B.Add(d)}
}

// Touches reports whether the two segments share at least one point:
// collinear overlap, endpoint contact, or a perpendicular crossing.
func (s Seg) Touches(o Seg) bool {
	s, o = s.Norm(), o.Norm()
	switch {
	case s.Horizontal() && o.Horizontal():
		return s.A.Y == o.A.Y && s.A.X <= o.B.X && o.A.X <= s.B.X
	case s.Vertical() && o.Vertical():
		return s.A.X == o.A.X && s.A.Y <= o.B.Y && o.A.Y <= s.B.Y
	case s.Horizontal(): // o vertical
		return o.A.X >= s.A.X && o.A.X <= s.B.X && s.A.Y >= o.A.Y && s.A.Y <= o.B.Y
	default: // s vertical, o horizontal
		return s.A.X >= o.A.X && s.A.X <= o.B.X && o.A.Y >= s.A.Y && o.A.Y <= s.B.Y
	}
}

// Overlap returns the shared length of two collinear segments, or 0 when
// they are not collinear or do not overlap. Touching at a single point
// contributes zero length.
func Overlap(a, b Seg) int {
	a, b = a.Norm(), b.Norm()
	switch {
	case a.Horizontal() && b.Horizontal() && a.A.Y == b.A.Y:
		lo := max(a.A.X, b.A.X)
		hi := min(a.B.X, b.B.X)
		if hi > lo {
			return hi - lo
		}
	case a.Vertical() && b.Vertical() && a.A.X == b.A.X:
		lo := max(a.A.Y, b.A.Y)
		hi := min(a.B.Y, b.B.Y)
		if hi > lo {
			return hi - lo
		}
	}
	return 0
}

// LShape returns the one- or two-segment rectilinear connection between a
// and b that bends at the corner point (b.X, a.Y) ("lower-L" when a is the
// horizontal-first endpoint). Zero-length legs are omitted.
func LShape(a, b Point) []Seg {
	corner := Point{b.X, a.Y}
	var out []Seg
	if a != corner {
		out = append(out, Seg{A: a, B: corner})
	}
	if corner != b {
		out = append(out, Seg{A: corner, B: b})
	}
	return out
}

// LShapeVia returns the rectilinear connection between a and b bending at
// the explicit corner point v. It panics if v is not axis-aligned with both
// endpoints.
func LShapeVia(a, v, b Point) []Seg {
	var out []Seg
	if a != v {
		out = append(out, S(a, v))
	}
	if v != b {
		out = append(out, S(v, b))
	}
	return out
}
