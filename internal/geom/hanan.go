package geom

import "sort"

// HananGrid returns the Hanan grid points of the given pins: every point
// (x, y) where x is some pin's X coordinate and y is some pin's Y
// coordinate. Steiner points of an optimal rectilinear Steiner tree can
// always be chosen from this set (Hanan's theorem), and the paper draws its
// candidate bending points from it (§III-B1).
func HananGrid(pins []Point) []Point {
	xs := make(map[int]bool)
	ys := make(map[int]bool)
	for _, p := range pins {
		xs[p.X] = true
		ys[p.Y] = true
	}
	xl := make([]int, 0, len(xs))
	for x := range xs {
		xl = append(xl, x)
	}
	yl := make([]int, 0, len(ys))
	for y := range ys {
		yl = append(yl, y)
	}
	sort.Ints(xl)
	sort.Ints(yl)
	out := make([]Point, 0, len(xl)*len(yl))
	for _, x := range xl {
		for _, y := range yl {
			out = append(out, Point{x, y})
		}
	}
	return out
}

// HananCandidates returns the Hanan grid points that are not pins
// themselves, i.e. the candidate Steiner/bending points.
func HananCandidates(pins []Point) []Point {
	pinSet := make(map[Point]bool, len(pins))
	for _, p := range pins {
		pinSet[p] = true
	}
	var out []Point
	for _, p := range HananGrid(pins) {
		if !pinSet[p] {
			out = append(out, p)
		}
	}
	return out
}

// DedupPoints returns the distinct points, sorted lexicographically.
func DedupPoints(pts []Point) []Point {
	set := make(map[Point]bool, len(pts))
	for _, p := range pts {
		set[p] = true
	}
	out := make([]Point, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
