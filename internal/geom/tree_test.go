package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// cross builds a + shaped tree centered at (2,2).
func crossTree() Tree {
	return NewTree(
		S(Pt(0, 2), Pt(4, 2)),
		S(Pt(2, 0), Pt(2, 4)),
	)
}

func TestWireLengthOverlap(t *testing.T) {
	// Two overlapping horizontal segments count once.
	tr := NewTree(S(Pt(0, 0), Pt(5, 0)), S(Pt(3, 0), Pt(8, 0)))
	if got := tr.WireLength(); got != 8 {
		t.Errorf("WireLength = %d, want 8", got)
	}
	// Duplicate segment.
	tr2 := NewTree(S(Pt(0, 0), Pt(5, 0)), S(Pt(0, 0), Pt(5, 0)))
	if got := tr2.WireLength(); got != 5 {
		t.Errorf("WireLength = %d, want 5", got)
	}
}

func TestCanonSplitsAtJunctions(t *testing.T) {
	tr := crossTree()
	c := tr.Canon()
	if len(c.Segs) != 4 {
		t.Fatalf("Canon segs = %d, want 4 (%v)", len(c.Segs), c.Segs)
	}
	nodes := tr.Nodes()
	if len(nodes) != 5 {
		t.Fatalf("Nodes = %d, want 5", len(nodes))
	}
}

func TestBends(t *testing.T) {
	l := NewTree(LShape(Pt(0, 0), Pt(3, 4))...)
	if got := l.Bends(); got != 1 {
		t.Errorf("L bends = %d, want 1", got)
	}
	// Z shape: two bends.
	z := NewTree(
		S(Pt(0, 0), Pt(2, 0)),
		S(Pt(2, 0), Pt(2, 3)),
		S(Pt(2, 3), Pt(5, 3)),
	)
	if got := z.Bends(); got != 2 {
		t.Errorf("Z bends = %d, want 2", got)
	}
	// Straight line: no bends. Cross: center is degree 4, not a bend.
	if got := NewTree(S(Pt(0, 0), Pt(9, 0))).Bends(); got != 0 {
		t.Errorf("line bends = %d", got)
	}
	if got := crossTree().Bends(); got != 0 {
		t.Errorf("cross bends = %d", got)
	}
}

func TestBendPoints(t *testing.T) {
	z := NewTree(
		S(Pt(0, 0), Pt(2, 0)),
		S(Pt(2, 0), Pt(2, 3)),
		S(Pt(2, 3), Pt(5, 3)),
	)
	bp := z.BendPoints()
	if len(bp) != 2 || bp[0] != Pt(2, 0) || bp[1] != Pt(2, 3) {
		t.Errorf("BendPoints = %v", bp)
	}
	// T junction has both orientations: it is a bend point (junction).
	tj := NewTree(S(Pt(0, 0), Pt(4, 0)), S(Pt(2, 0), Pt(2, 3)))
	if got := tj.BendPoints(); len(got) != 1 || got[0] != Pt(2, 0) {
		t.Errorf("T BendPoints = %v", got)
	}
}

func TestConnected(t *testing.T) {
	tr := crossTree()
	if !tr.Connected([]Point{Pt(0, 2), Pt(4, 2), Pt(2, 0), Pt(2, 4)}) {
		t.Error("cross should be connected to its tips")
	}
	if tr.Connected([]Point{Pt(5, 5)}) {
		t.Error("cross should not contain (5,5)")
	}
	// Disjoint segments are not connected.
	dis := NewTree(S(Pt(0, 0), Pt(1, 0)), S(Pt(3, 3), Pt(4, 3)))
	if dis.Connected(nil) {
		t.Error("disjoint tree reported connected")
	}
}

func TestIsTree(t *testing.T) {
	if !crossTree().IsTree() {
		t.Error("cross should be a tree")
	}
	// A rectangle loop has a cycle.
	loop := NewTree(
		S(Pt(0, 0), Pt(3, 0)),
		S(Pt(3, 0), Pt(3, 3)),
		S(Pt(3, 3), Pt(0, 3)),
		S(Pt(0, 3), Pt(0, 0)),
	)
	if loop.IsTree() {
		t.Error("loop reported as tree")
	}
}

func TestPathLength(t *testing.T) {
	z := NewTree(
		S(Pt(0, 0), Pt(2, 0)),
		S(Pt(2, 0), Pt(2, 3)),
		S(Pt(2, 3), Pt(5, 3)),
	)
	cases := []struct {
		a, b Point
		want int
	}{
		{Pt(0, 0), Pt(5, 3), 8},
		{Pt(0, 0), Pt(2, 0), 2},
		{Pt(1, 0), Pt(2, 2), 3}, // interior points
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(9, 9), -1}, // off tree
	}
	for _, c := range cases {
		if got := z.PathLength(c.a, c.b); got != c.want {
			t.Errorf("PathLength(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTranslate(t *testing.T) {
	tr := crossTree()
	moved := tr.Translate(Pt(10, -3))
	if moved.WireLength() != tr.WireLength() {
		t.Error("translation changed wirelength")
	}
	if !moved.OnTree(Pt(12, -1)) {
		t.Error("translated center missing")
	}
}

// randomSpanTree builds a random connected rectilinear tree by L-connecting
// each point to a previously added one.
func randomSpanTree(r *rand.Rand, n int) (Tree, []Point) {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Pt(r.Intn(20), r.Intn(20))
	}
	var tr Tree
	for i := 1; i < n; i++ {
		tr.Append(LShape(pts[r.Intn(i)], pts[i])...)
	}
	return tr, pts
}

func TestRandomTreesConnectedAndCanonInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		tr, pts := randomSpanTree(r, 2+r.Intn(8))
		if !tr.Connected(pts) {
			t.Fatalf("trial %d: random span tree disconnected", trial)
		}
		if tr.Canon().WireLength() != tr.WireLength() {
			t.Fatalf("trial %d: Canon changed wirelength", trial)
		}
		// Canon is idempotent.
		c := tr.Canon()
		if len(c.Canon().Segs) != len(c.Segs) {
			t.Fatalf("trial %d: Canon not idempotent", trial)
		}
	}
}

func TestWireLengthTranslationInvariant(t *testing.T) {
	f := func(dx, dy int8) bool {
		tr := crossTree()
		return tr.Translate(Pt(int(dx), int(dy))).WireLength() == tr.WireLength()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHananGrid(t *testing.T) {
	pins := []Point{Pt(0, 0), Pt(3, 5), Pt(7, 2)}
	grid := HananGrid(pins)
	if len(grid) != 9 {
		t.Fatalf("Hanan grid size = %d, want 9", len(grid))
	}
	cands := HananCandidates(pins)
	if len(cands) != 6 {
		t.Fatalf("Hanan candidates = %d, want 6", len(cands))
	}
	seen := map[Point]bool{}
	for _, p := range cands {
		seen[p] = true
	}
	for _, p := range pins {
		if seen[p] {
			t.Errorf("candidate set contains pin %v", p)
		}
	}
}

func TestDedupPoints(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(0, 0), Pt(1, 1), Pt(0, 0), Pt(2, 0)}
	out := DedupPoints(pts)
	if len(out) != 3 || out[0] != Pt(0, 0) || out[1] != Pt(1, 1) || out[2] != Pt(2, 0) {
		t.Errorf("DedupPoints = %v", out)
	}
}
