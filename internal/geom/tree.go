package geom

import (
	"sort"
	"strings"
)

// Tree is a rectilinear routing tree: a set of axis-aligned segments (RCs).
// Trees are value types; Canon returns a canonical form with merged
// collinear runs and splits at every junction.
type Tree struct {
	Segs []Seg
}

// NewTree builds a tree from the given segments, dropping zero-length ones.
func NewTree(segs ...Seg) Tree {
	t := Tree{Segs: make([]Seg, 0, len(segs))}
	for _, s := range segs {
		if s.Len() > 0 {
			t.Segs = append(t.Segs, s.Norm())
		}
	}
	return t
}

// Append adds segments to the tree, dropping zero-length ones.
func (t *Tree) Append(segs ...Seg) {
	for _, s := range segs {
		if s.Len() > 0 {
			t.Segs = append(t.Segs, s.Norm())
		}
	}
}

// Translate returns the tree shifted by d.
func (t Tree) Translate(d Point) Tree {
	out := Tree{Segs: make([]Seg, len(t.Segs))}
	for i, s := range t.Segs {
		out.Segs[i] = s.Translate(d)
	}
	return out
}

// WireLength returns the total length of the union of the tree's segments.
// Overlapping collinear segments are counted once.
func (t Tree) WireLength() int {
	a := GetArena()
	total := a.WireLength(t.Segs)
	PutArena(a)
	return total
}

// String renders the tree's canonical segments, sorted, for debugging.
func (t Tree) String() string {
	c := t.Canon()
	parts := make([]string, len(c.Segs))
	for i, s := range c.Segs {
		parts[i] = s.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, " ") + "}"
}

// Canon returns the canonical form of the tree: collinear overlaps merged,
// then every run split at each endpoint or crossing that touches it. In the
// canonical form two segments share at most a single endpoint. The segments
// come back in canonical order: horizontal runs first, then by fixed
// coordinate ascending, cuts ascending.
func (t Tree) Canon() Tree {
	a := GetArena()
	cs := a.Canon(t.Segs)
	out := Tree{}
	if len(cs) > 0 {
		out.Segs = make([]Seg, len(cs))
		copy(out.Segs, cs)
	}
	PutArena(a)
	return out
}

// Nodes returns the distinct endpoints of the canonical tree, sorted.
func (t Tree) Nodes() []Point {
	c := t.Canon()
	set := make(map[Point]bool)
	for _, s := range c.Segs {
		set[s.A] = true
		set[s.B] = true
	}
	out := make([]Point, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// adjacency returns node list and adjacency (indices) of the canonical tree.
func (t Tree) adjacency() ([]Point, map[Point][]Point) {
	c := t.Canon()
	adj := make(map[Point][]Point)
	for _, s := range c.Segs {
		adj[s.A] = append(adj[s.A], s.B)
		adj[s.B] = append(adj[s.B], s.A)
	}
	nodes := make([]Point, 0, len(adj))
	for p := range adj {
		nodes = append(nodes, p)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Less(nodes[j]) })
	return nodes, adj
}

// Bends returns the number of bending points: canonical nodes of degree 2
// whose incident segments are perpendicular.
func (t Tree) Bends() int {
	a := GetArena()
	bends := a.Bends(t.Segs)
	PutArena(a)
	return bends
}

// BendPoints returns the canonical nodes of degree >= 2 that have both a
// horizontal and a vertical incident segment — the paper's "bending points"
// (corners and T/X junctions), used for SV-based topology matching.
func (t Tree) BendPoints() []Point {
	c := t.Canon()
	type inc struct{ h, v int }
	m := make(map[Point]*inc)
	touch := func(p Point, horizontal bool) {
		e := m[p]
		if e == nil {
			e = &inc{}
			m[p] = e
		}
		if horizontal {
			e.h++
		} else {
			e.v++
		}
	}
	for _, s := range c.Segs {
		touch(s.A, s.Horizontal())
		touch(s.B, s.Horizontal())
	}
	var out []Point
	for p, e := range m {
		if e.h > 0 && e.v > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// OnTree reports whether p lies on any segment of the tree.
func (t Tree) OnTree(p Point) bool {
	for _, s := range t.Segs {
		if s.Contains(p) {
			return true
		}
	}
	return false
}

// Connected reports whether the tree is a single connected component that
// touches every one of the given pins. An empty tree is connected iff all
// pins coincide.
func (t Tree) Connected(pins []Point) bool {
	if len(t.Segs) == 0 {
		for _, p := range pins[1:] {
			if p != pins[0] {
				return false
			}
		}
		return true
	}
	for _, p := range pins {
		if !t.OnTree(p) {
			return false
		}
	}
	nodes, adj := t.adjacency()
	seen := map[Point]bool{nodes[0]: true}
	stack := []Point{nodes[0]}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, q := range adj[p] {
			if !seen[q] {
				seen[q] = true
				stack = append(stack, q)
			}
		}
	}
	return len(seen) == len(nodes)
}

// IsTree reports whether the canonical segment graph is connected and
// acyclic (|E| == |V| - 1).
func (t Tree) IsTree() bool {
	if len(t.Segs) == 0 {
		return true
	}
	if !t.Connected(nil) {
		return false
	}
	c := t.Canon()
	nodes, _ := t.adjacency()
	return len(c.Segs) == len(nodes)-1
}

// PathLength returns the length of the unique path between two points on
// the tree, or -1 when either point is off-tree or the tree is disconnected
// between them. Used for source-to-sink distance accounting.
func (t Tree) PathLength(from, to Point) int {
	if from == to {
		if t.OnTree(from) || len(t.Segs) == 0 {
			return 0
		}
		return -1
	}
	if !t.OnTree(from) || !t.OnTree(to) {
		return -1
	}
	// Split segments at from/to by adding zero-extent markers is not enough;
	// instead cut the canonical segs that contain the endpoints.
	c := t.Canon()
	var segs []Seg
	for _, s := range c.Segs {
		pts := []int{}
		horiz := s.Horizontal()
		coord := func(p Point) int {
			if horiz {
				return p.X
			}
			return p.Y
		}
		n := s.Norm()
		for _, p := range []Point{from, to} {
			if s.Contains(p) && p != n.A && p != n.B {
				pts = append(pts, coord(p))
			}
		}
		if len(pts) == 0 {
			segs = append(segs, n)
			continue
		}
		pts = append(pts, coord(n.A), coord(n.B))
		sort.Ints(pts)
		for i := 0; i+1 < len(pts); i++ {
			if pts[i] == pts[i+1] {
				continue
			}
			if horiz {
				segs = append(segs, Seg{A: Point{pts[i], n.A.Y}, B: Point{pts[i+1], n.A.Y}})
			} else {
				segs = append(segs, Seg{A: Point{n.A.X, pts[i]}, B: Point{n.A.X, pts[i+1]}})
			}
		}
	}
	adj := make(map[Point][]Point)
	for _, s := range segs {
		adj[s.A] = append(adj[s.A], s.B)
		adj[s.B] = append(adj[s.B], s.A)
	}
	// Dijkstra with linear extraction — segment graphs are tiny, and the
	// shortest path is well-defined even when overlapping segments form
	// cycles (a proper tree has a unique path, which is then also the
	// shortest).
	dist := map[Point]int{from: 0}
	done := map[Point]bool{}
	for {
		cur, curD := Point{}, -1
		for p, d := range dist {
			if !done[p] && (curD == -1 || d < curD) {
				cur, curD = p, d
			}
		}
		if curD == -1 {
			return -1
		}
		if cur == to {
			return curD
		}
		done[cur] = true
		for _, q := range adj[cur] {
			nd := curD + Dist(cur, q)
			if old, ok := dist[q]; !ok || nd < old {
				dist[q] = nd
			}
		}
	}
}
