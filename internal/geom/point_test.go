package geom

import (
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want int
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-2, 5), Pt(1, 1), 7},
		{Pt(10, 0), Pt(0, 0), 10},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by int16) bool {
		a, b := Pt(int(ax), int(ay)), Pt(int(bx), int(by))
		return Dist(a, b) == Dist(b, a) && Dist(a, b) >= 0
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	triangle := func(ax, ay, bx, by, cx, cy int16) bool {
		a, b, c := Pt(int(ax), int(ay)), Pt(int(bx), int(by)), Pt(int(cx), int(cy))
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
	translationInvariant := func(ax, ay, bx, by, dx, dy int16) bool {
		a, b, d := Pt(int(ax), int(ay)), Pt(int(bx), int(by)), Pt(int(dx), int(dy))
		return Dist(a.Add(d), b.Add(d)) == Dist(a, b)
	}
	if err := quick.Check(translationInvariant, nil); err != nil {
		t.Error(err)
	}
}

func TestBBox(t *testing.T) {
	pts := []Point{Pt(3, 7), Pt(-1, 2), Pt(5, 5)}
	r := BBox(pts)
	if r.Lo != Pt(-1, 2) || r.Hi != Pt(5, 7) {
		t.Fatalf("BBox = %v-%v", r.Lo, r.Hi)
	}
	if r.W() != 6 || r.H() != 5 || r.HalfPerimeter() != 11 {
		t.Errorf("W=%d H=%d HPWL=%d", r.W(), r.H(), r.HalfPerimeter())
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("BBox does not contain %v", p)
		}
	}
	if r.Contains(Pt(6, 5)) || r.Contains(Pt(0, 1)) {
		t.Error("BBox contains outside point")
	}
}

func TestBBoxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BBox(nil) did not panic")
		}
	}()
	BBox(nil)
}

func TestBBoxProperty(t *testing.T) {
	containsAll := func(raw []struct{ X, Y int8 }) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Pt(int(r.X), int(r.Y))
		}
		box := BBox(pts)
		for _, p := range pts {
			if !box.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(containsAll, nil); err != nil {
		t.Error(err)
	}
}

func TestPointLessIsTotalOrder(t *testing.T) {
	antisym := func(ax, ay, bx, by int16) bool {
		a, b := Pt(int(ax), int(ay)), Pt(int(bx), int(by))
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{Lo: Pt(0, 0), Hi: Pt(4, 6)}
	if got := r.Center(); got != Pt(2, 3) {
		t.Errorf("Center = %v", got)
	}
}
