// Package metrics computes the evaluation numbers the paper reports:
// routability (fraction of fully routed groups), total wirelength (routed
// geometry plus RSMT estimates for unrouted bits, scaled by the design
// pitch — the paper's WL column uses the same convention), the average
// regularity rate Avg(Reg) of Eq. 9, the Vio(dst) distance-violation
// count, and overflow statistics.
package metrics

import (
	"time"

	"repro/internal/grid"
	"repro/internal/postopt"
	"repro/internal/route"
	"repro/internal/signal"
	"repro/internal/steiner"
	"repro/internal/topo"
)

// Metrics is one row of the paper's result tables.
type Metrics struct {
	// Bench is the design name.
	Bench string
	// Groups, Nets, Pins are design statistics.
	Groups, Nets, Pins int
	// RoutedGroups counts fully routed groups; RouteFrac = RoutedGroups /
	// Groups.
	RoutedGroups int
	// RouteFrac is the paper's "Route" column.
	RouteFrac float64
	// WL is the wirelength in pitch units (paper reports it /1e5).
	WL float64
	// AvgReg is Eq. 9 averaged over routed groups with more than one
	// solution object.
	AvgReg float64
	// VioDst counts groups with source-to-sink deviation violations.
	VioDst int
	// Overflow is total track overflow (0 for Streak results by
	// construction; positive for the manual baseline).
	Overflow int
	// OverflowEdges counts overflowed edges (hotspot extent).
	OverflowEdges int
	// Runtime is the solver wall-clock time.
	Runtime time.Duration
}

// Compute evaluates a routing against its design.
func Compute(d *signal.Design, r *route.Routing, u *grid.Usage, opt postopt.Options) Metrics {
	m := Metrics{
		Bench:  d.Name,
		Groups: len(d.Groups),
		Nets:   d.NumNets(),
		Pins:   d.NumPins(),
	}
	pitch := d.Grid.Pitch
	if pitch == 0 {
		pitch = 1
	}
	// Wirelength accumulates in int64 and is scaled by the pitch in
	// float64: the old int accumulation (`float64(wl * pitch)`) silently
	// overflowed the multiply on large grids and pitches before the
	// conversion could save it.
	var wl int64
	for gi := range d.Groups {
		g := &d.Groups[gi]
		groupRouted := true
		for bi := range g.Bits {
			br := &r.Bits[gi][bi]
			if br.Routed {
				wl += int64(br.Tree.WireLength())
			} else {
				groupRouted = false
				// RSMT estimate for unrouted bits, as the paper does for
				// fair whole-design wirelength reporting.
				wl += int64(steiner.Length(g.Bits[bi].PinLocs()))
			}
		}
		if groupRouted {
			m.RoutedGroups++
		}
	}
	m.WL = float64(wl) * float64(pitch)
	if m.Groups > 0 {
		m.RouteFrac = float64(m.RoutedGroups) / float64(m.Groups)
	}
	m.AvgReg = AvgReg(d, r)
	m.VioDst = postopt.CountViolatedGroups(d, r, opt)
	if u != nil {
		m.Overflow = u.Overflow()
		m.OverflowEdges = u.OverflowEdges()
	}
	return m
}

// GroupReg computes Eq. 9 for one group: the mean pairwise regularity
// ratio over its solution objects' representative topologies. Returns
// (value, ok); ok is false when the group has fewer than two objects (the
// paper requires N_o > 1).
func GroupReg(g *signal.Group, objs []route.SolutionObject) (float64, bool) {
	if len(objs) < 2 {
		return 0, false
	}
	sum := 0.0
	n := 0
	for i := 0; i < len(objs); i++ {
		for j := i + 1; j < len(objs); j++ {
			b1 := &g.Bits[objs[i].RepBit]
			b2 := &g.Bits[objs[j].RepBit]
			sum += topo.Ratio(objs[i].RepTree, b1, objs[j].RepTree, b2)
			n++
		}
	}
	return sum / float64(n), true
}

// AvgReg averages Eq. 9 over the routed groups that have more than one
// solution object. When no group qualifies the result is 1 (every routed
// group shares a single topology — perfectly regular).
func AvgReg(d *signal.Design, r *route.Routing) float64 {
	sum, n := 0.0, 0
	for gi := range d.Groups {
		if !r.GroupRouted(gi) {
			continue
		}
		if v, ok := GroupReg(&d.Groups[gi], r.Objects[gi]); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
