package metrics

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/benchgen"
	"repro/internal/geom"
	"repro/internal/pd"
	"repro/internal/postopt"
	"repro/internal/route"
	"repro/internal/signal"
)

func testDesign() *signal.Design {
	return benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
}

func TestComputeOnPrimalDual(t *testing.T) {
	d := testDesign()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := pd.Solve(p)
	r := p.ExtractRouting(res.Assignment)
	u := r.UsageOf(p.Grid)
	m := Compute(d, r, u, postopt.Options{})
	if m.Groups != len(d.Groups) || m.Nets != d.NumNets() {
		t.Error("design stats wrong")
	}
	if m.RouteFrac < 0 || m.RouteFrac > 1 {
		t.Errorf("RouteFrac = %v", m.RouteFrac)
	}
	if m.WL <= 0 {
		t.Errorf("WL = %v", m.WL)
	}
	if m.AvgReg < 0 || m.AvgReg > 1 {
		t.Errorf("AvgReg = %v", m.AvgReg)
	}
	if m.Overflow != 0 {
		t.Errorf("Streak routing must not overflow, got %d", m.Overflow)
	}
}

func TestWLIncludesUnroutedEstimate(t *testing.T) {
	d := testDesign()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Unrouted everywhere: WL must still be positive (RSMT estimates).
	r := p.NewRouting()
	m := Compute(d, r, nil, postopt.Options{})
	if m.WL <= 0 {
		t.Fatalf("unrouted WL estimate = %v", m.WL)
	}
	if m.RoutedGroups != 0 || m.RouteFrac != 0 {
		t.Error("nothing is routed")
	}
	// Pitch scaling: same design with pitch 10 doubles the pitch-5 WL.
	d2 := testDesign()
	d2.Grid.Pitch = 10
	m2 := Compute(d2, p.NewRouting(), nil, postopt.Options{})
	if math.Abs(m2.WL-2*m.WL) > 1e-9 {
		t.Errorf("pitch scaling wrong: %v vs %v", m2.WL, m.WL)
	}
}

func TestManualBaselineBeatsOnWLButOverflows(t *testing.T) {
	// The relationships behind Table I: manual routes 100 % with minimal
	// WL; Streak (PD) routes slightly fewer groups, never overflows.
	d := benchgen.Scale(benchgen.Industry(3), 0.06).Generate()
	pm, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	man := baseline.Route(pm)
	mManual := Compute(d, man.Routing, man.Usage, postopt.Options{})

	pp, _ := route.Build(d, route.Options{})
	res := pd.Solve(pp)
	r := pp.ExtractRouting(res.Assignment)
	u := r.UsageOf(pp.Grid)
	mPD := Compute(d, r, u, postopt.Options{})

	if mManual.RouteFrac != 1 {
		t.Errorf("manual route frac = %v, want 1", mManual.RouteFrac)
	}
	if mPD.Overflow != 0 {
		t.Errorf("PD overflow = %d, want 0", mPD.Overflow)
	}
	if mPD.WL < mManual.WL*0.95 {
		t.Errorf("PD WL %v unexpectedly far below manual %v", mPD.WL, mManual.WL)
	}
}

func TestWLHugeGridNoOverflow(t *testing.T) {
	// Regression: WL used to be computed as float64(wl * pitch), where the
	// int multiply overflows before the conversion. A single routed segment
	// of 4e9 cells at pitch 4e9 puts the product at 1.6e19 > MaxInt64, so
	// the pre-fix code reported a negative wirelength.
	const span = 4_000_000_000
	d := &signal.Design{
		Name: "huge",
		Grid: signal.GridSpec{W: span + 1, H: 2, NumLayers: 2, EdgeCap: 1, Pitch: span},
		Groups: []signal.Group{{Bits: []signal.Bit{
			{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(span, 0)}}},
		}}},
	}
	r := &route.Routing{
		Bits: [][]route.BitRoute{{{
			Routed: true,
			Tree:   geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(span, 0))),
		}}},
		Objects: make([][]route.SolutionObject, 1),
	}
	m := Compute(d, r, nil, postopt.Options{})
	want := float64(span) * float64(span) // 1.6e19
	if m.WL != want {
		t.Fatalf("WL = %v, want %v (int overflow in wl*pitch?)", m.WL, want)
	}
	if m.WL < 0 {
		t.Fatal("WL went negative: wl*pitch overflowed")
	}
}

func TestGroupReg(t *testing.T) {
	// Two parallel straight objects: Reg = 1. Perpendicular: Reg = 0.
	g := &signal.Group{Bits: []signal.Bit{
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 0)}, {Loc: geom.Pt(8, 0)}}},
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 2)}, {Loc: geom.Pt(8, 2)}}},
		{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(0, 4)}, {Loc: geom.Pt(0, 12)}}},
	}}
	parallel := []route.SolutionObject{
		{RepTree: geom.NewTree(geom.S(geom.Pt(0, 0), geom.Pt(8, 0))), RepBit: 0, BitIdx: []int{0}},
		{RepTree: geom.NewTree(geom.S(geom.Pt(0, 2), geom.Pt(8, 2))), RepBit: 1, BitIdx: []int{1}},
	}
	if v, ok := GroupReg(g, parallel); !ok || v != 1 {
		t.Errorf("parallel GroupReg = %v,%v", v, ok)
	}
	mixed := append(parallel, route.SolutionObject{
		RepTree: geom.NewTree(geom.S(geom.Pt(0, 4), geom.Pt(0, 12))), RepBit: 2, BitIdx: []int{2}})
	v, ok := GroupReg(g, mixed)
	if !ok {
		t.Fatal("GroupReg not ok")
	}
	want := 1.0 / 3.0 // pairs: (0,1)=1, (0,2)=0, (1,2)=0
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("mixed GroupReg = %v, want %v", v, want)
	}
	if _, ok := GroupReg(g, parallel[:1]); ok {
		t.Error("single object group must be excluded (N_o > 1)")
	}
}

func TestAvgRegAllSingleObjects(t *testing.T) {
	d := &signal.Design{
		Name: "single",
		Grid: signal.GridSpec{W: 16, H: 16, NumLayers: 2, EdgeCap: 4},
		Groups: []signal.Group{{Bits: []signal.Bit{
			{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(1, 1)}, {Loc: geom.Pt(9, 1)}}},
		}}},
	}
	p, _ := route.Build(d, route.Options{})
	res := pd.Solve(p)
	r := p.ExtractRouting(res.Assignment)
	if got := AvgReg(d, r); got != 1 {
		t.Errorf("AvgReg with no multi-object groups = %v, want 1", got)
	}
}
