// Package hier implements the scalability extension the paper sketches in
// §V-A and §VI: a hierarchical, divide-and-conquer exact flow. The design
// is cut into spatial tiles; each tile's objects form a small ILP solved
// against the residual capacities left by earlier tiles, and objects that
// span tiles (or that a tile ILP left unrouted) are swept up by a final
// greedy pass. Tile models stay tiny, so the exact solver scales to
// benchmarks whose monolithic formulation (3) is far beyond any time
// limit.
package hier

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/exact"
	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/ilp"
	"repro/internal/obs"
	"repro/internal/route"
	"repro/internal/topo"
)

// Options tunes the hierarchical solve.
type Options struct {
	// Tiles splits the grid into Tiles x Tiles regions. Default 2.
	Tiles int
	// TimePerTile bounds each tile's ILP. Default 5s.
	TimePerTile time.Duration
	// MaxVarsPerTile guards each tile model's size; oversized tiles fall
	// back to the greedy pass. Default 20000.
	MaxVarsPerTile int
	// Workers bounds how many tile ILPs solve concurrently. The default
	// (anything below 2) keeps the sequential flow, where each tile prices
	// against the residual capacity left by earlier tiles. With Workers
	// >= 2 every tile plans against the initial capacities in parallel and
	// the plans commit in deterministic tile order with per-candidate
	// capacity re-checks, so results are reproducible (though not
	// necessarily equal to the sequential schedule's).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Tiles == 0 {
		o.Tiles = 2
	}
	if o.TimePerTile == 0 {
		o.TimePerTile = 5 * time.Second
	}
	if o.MaxVarsPerTile == 0 {
		o.MaxVarsPerTile = 20000
	}
	return o
}

// Result is the outcome of a hierarchical solve.
type Result struct {
	// Assignment is the combined selection.
	Assignment route.Assignment
	// Objective is the formulation (3a) value.
	Objective float64
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
	// TilesSolved counts tile ILPs that ran; TilesTimedOut counts those
	// that hit their per-tile limit.
	TilesSolved, TilesTimedOut int
	// GreedyRouted counts objects the final sweep routed.
	GreedyRouted int
}

// Solve runs the divide-and-conquer flow on a built problem.
func Solve(p *route.Problem, opt Options) Result {
	r, _ := SolveCtx(context.Background(), p, opt) // background ctx never cancels
	return r
}

// SolveCtx is Solve honoring the context: cancellation is checked between
// tiles, inside every tile ILP, and per object of the greedy sweep, so the
// call returns promptly with ctx's error and the partial assignment
// committed so far. Each tile's ILP deadline is the smaller of TimePerTile
// and the context deadline.
func SolveCtx(ctx context.Context, p *route.Problem, opt Options) (Result, error) {
	var res Result
	err := obs.Do(ctx, obs.StageHier, opt.Workers, func(ctx context.Context) error {
		var err error
		res, err = solveCtx(ctx, p, opt)
		return err
	})
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add(obs.CounterHierTilesSolved, int64(res.TilesSolved))
		rec.Add(obs.CounterHierTilesTimedOut, int64(res.TilesTimedOut))
		rec.Add(obs.CounterHierGreedyRouted, int64(res.GreedyRouted))
	}
	return res, err
}

// solveCtx is the span-free body of SolveCtx.
func solveCtx(ctx context.Context, p *route.Problem, opt Options) (Result, error) {
	start := time.Now()
	opt = opt.withDefaults()

	tiles := partition(p, opt.Tiles)
	a := p.NewAssignment()
	pool := p.UsagePool()
	// Counter snapshot precedes the first Get so the solve's own
	// acquisitions are part of the reported delta.
	if rec := obs.FromContext(ctx); rec != nil {
		g0, f0 := pool.Counters()
		defer func() {
			g1, f1 := pool.Counters()
			rec.Add(obs.CounterHierUsagePoolGets, g1-g0)
			rec.Add(obs.CounterHierUsagePoolFresh, f1-f0)
		}()
	}
	u := pool.Get()
	defer pool.Put(u)
	var res Result

	finish := func(err error) (Result, error) {
		res.Assignment = a
		res.Objective = p.ObjectiveValue(a)
		res.Runtime = time.Since(start)
		return res, err
	}

	// Convergence series: one sample per tile commit plus one after the
	// sweep. Tiles are few, so evaluating (3a) per commit is cheap relative
	// to the tile ILPs it brackets; the disabled path never calls it.
	rec := obs.FromContext(ctx)
	samp := rec.Sampler("hier")
	if rec != nil {
		samp.Record(p.ObjectiveValue(a), 0, 0)
	}

	if opt.Workers >= 2 {
		if err := solveTilesParallel(ctx, p, tiles, u, &a, opt, &res, rec, samp); err != nil {
			return finish(fmt.Errorf("hier: %w", err))
		}
	} else {
		for ti, objs := range tiles {
			if len(objs) == 0 {
				continue
			}
			if err := ctx.Err(); err != nil {
				return finish(fmt.Errorf("hier: %w", err))
			}
			if err := faultinject.Fire(ctx, faultinject.HierTile); err != nil {
				return finish(fmt.Errorf("hier: %w", err))
			}
			var t0 time.Time
			if rec != nil {
				t0 = time.Now()
			}
			plan, timedOut := planTile(ctx, p, objs, u, a.Choice, opt)
			commitPlan(p, plan, u, &a)
			res.TilesSolved++
			if timedOut {
				res.TilesTimedOut++
			}
			if rec != nil {
				rec.EmitAt("hier.tile", "hier", t0, time.Since(t0), obs.Args{
					"tile": float64(ti), "objects": float64(len(objs)),
					"planned": float64(len(plan)), "timed_out": b2f(timedOut),
				})
				samp.Record(p.ObjectiveValue(a), a.RoutedObjects(), 0)
			}
		}
	}

	// Final sweep: greedily route whatever remains (spanning objects,
	// oversize tiles, tile-ILP leftovers) against residual capacity.
	var t0 time.Time
	if rec != nil {
		t0 = time.Now()
	}
	routed, err := greedySweep(ctx, p, u, &a)
	res.GreedyRouted = routed
	if rec != nil {
		rec.EmitAt("hier.greedy", "hier", t0, time.Since(t0), obs.Args{
			"routed": float64(routed),
		})
		samp.Record(p.ObjectiveValue(a), a.RoutedObjects(), 0)
	}
	if err != nil {
		return finish(fmt.Errorf("hier: %w", err))
	}
	return finish(nil)
}

// b2f encodes a flag as a trace-event arg.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// partition buckets object indices by the tile containing their pin
// bounding-box center; the order is deterministic (row-major tiles, then
// a final bucket for nothing — spanning objects stay with their center
// tile, which is correct because capacities are rechecked there).
func partition(p *route.Problem, tiles int) [][]int {
	out := make([][]int, tiles*tiles)
	tw := (p.Grid.W + tiles - 1) / tiles
	th := (p.Grid.H + tiles - 1) / tiles
	for i := range p.Objects {
		g := p.Group(i)
		var pts []geom.Point
		for _, bi := range p.Objects[i].BitIdx {
			pts = append(pts, g.Bits[bi].PinLocs()...)
		}
		c := geom.BBox(pts).Center()
		tx := min(c.X/tw, tiles-1)
		ty := min(c.Y/th, tiles-1)
		out[ty*tiles+tx] = append(out[ty*tiles+tx], i)
	}
	return out
}

// candSel names candidate j of object i, picked by a tile plan.
type candSel struct{ i, j int }

// solveTilesParallel plans every tile's ILP concurrently (Workers at a
// time) against the capacities as they stand on entry, then commits the
// plans sequentially in tile order. Commits re-check residual capacity per
// candidate, so later tiles' plans lose gracefully where parallel planning
// double-booked an edge; the greedy sweep picks those objects up. Choices
// are snapshotted before planning, keeping every tile's view identical
// regardless of scheduling — the outcome is deterministic in tile order.
func solveTilesParallel(ctx context.Context, p *route.Problem, tiles [][]int, u *grid.Usage, a *route.Assignment, opt Options, res *Result, rec *obs.Recorder, samp *obs.Sampler) error {
	type outcome struct {
		plan     []candSel
		timedOut bool
		ran      bool
	}
	choice := append([]int(nil), a.Choice...)
	outs := make([]outcome, len(tiles))
	sem := make(chan struct{}, opt.Workers)
	var wg sync.WaitGroup
	for ti, objs := range tiles {
		if len(objs) == 0 {
			continue
		}
		// Fault seam: fire on the coordinating goroutine before dispatch so
		// an injected panic stays on the stack core.runRung can recover.
		if err := faultinject.Fire(ctx, faultinject.HierTile); err != nil {
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func(ti int, objs []int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			var t0 time.Time
			if rec != nil {
				t0 = time.Now()
			}
			plan, timedOut := planTile(ctx, p, objs, u, choice, opt)
			outs[ti] = outcome{plan: plan, timedOut: timedOut, ran: true}
			if rec != nil {
				rec.EmitAt("hier.tile", "hier", t0, time.Since(t0), obs.Args{
					"tile": float64(ti), "objects": float64(len(objs)),
					"planned": float64(len(plan)), "timed_out": b2f(timedOut),
				})
			}
		}(ti, objs)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, out := range outs {
		if !out.ran {
			continue
		}
		commitPlan(p, out.plan, u, a)
		res.TilesSolved++
		if out.timedOut {
			res.TilesTimedOut++
		}
		if rec != nil {
			samp.Record(p.ObjectiveValue(*a), a.RoutedObjects(), 0)
		}
	}
	return nil
}

// commitPlan applies a tile plan: each selection commits iff its object is
// still unrouted and the candidate fits the remaining capacity.
func commitPlan(p *route.Problem, plan []candSel, u *grid.Usage, a *route.Assignment) {
	for _, s := range plan {
		if a.Choice[s.i] >= 0 || !p.CandidateFits(s.i, s.j, u) {
			continue
		}
		a.Choice[s.i] = s.j
		for _, e := range p.Cands[s.i][s.j].Edges {
			u.Add(int(e.Layer), int(e.Idx), int(e.N))
		}
	}
}

// planTile builds and solves the tile-restricted ILP against the residual
// capacities in u and the committed choices snapshot, returning the
// selections to commit and whether the tile hit its time limit. It never
// mutates shared state, so plans may be computed concurrently. A canceled
// context aborts the tile ILP with an empty plan; the caller notices the
// cancellation itself.
func planTile(ctx context.Context, p *route.Problem, objs []int, u *grid.Usage, choice []int, opt Options) (plan []candSel, timedOut bool) {
	// Variable layout: per (tile object, candidate).
	type ref struct{ i, j int }
	var vars []ref
	varOf := make(map[ref]int)
	inTile := make(map[int]bool, len(objs))
	for _, i := range objs {
		inTile[i] = true
		for j := range p.Cands[i] {
			varOf[ref{i, j}] = len(vars)
			vars = append(vars, ref{i, j})
		}
	}
	if len(vars) == 0 || len(vars) > opt.MaxVarsPerTile {
		return nil, false
	}

	// Within-tile pair terms keep the regularity objective alive inside
	// each subproblem; they are linearized exactly like exact.Solve does.
	type pair struct {
		v1, v2 int
		cost   float64
	}
	var pairs []pair
	for _, i := range objs {
		for _, q := range p.Partners(i) {
			if q <= i || !inTile[q] {
				continue
			}
			for j := range p.Cands[i] {
				for r := range p.Cands[q] {
					if c := p.PairCost(i, j, q, r); c > 1e-9 {
						pairs = append(pairs, pair{varOf[ref{i, j}], varOf[ref{q, r}], c})
					}
				}
			}
		}
	}
	if len(vars)+len(pairs) > opt.MaxVarsPerTile {
		pairs = nil // keep the tile solvable; regularity falls to the sweep
	}

	m := ilp.NewModel(len(vars) + len(pairs))
	for vi, r := range vars {
		m.SetInteger(vi)
		cost := p.Cost(r.i, r.j) - p.Opt.M
		// Pair costs against already-committed partners fold into the
		// linear cost (the Eq. 4 trick).
		for _, q := range p.Partners(r.i) {
			if choice[q] >= 0 {
				cost += p.PairCost(r.i, r.j, q, choice[q])
			}
		}
		m.SetObj(vi, cost)
	}
	for k, pr := range pairs {
		y := len(vars) + k
		m.SetObj(y, pr.cost)
		m.AddLazyConstraint([]ilp.Term{
			{Var: pr.v1, Coef: 1}, {Var: pr.v2, Coef: 1}, {Var: y, Coef: -1},
		}, 1)
	}
	for _, i := range objs {
		var terms []ilp.Term
		for j := range p.Cands[i] {
			terms = append(terms, ilp.Term{Var: varOf[ref{i, j}], Coef: 1})
		}
		if len(terms) > 0 {
			m.AddConstraint(terms, 1)
			sos := make([]int, len(terms))
			for k, t := range terms {
				sos[k] = t.Var
			}
			m.AddSOS(sos)
		}
	}
	// Residual capacity rows (lazy) over edges touched by tile candidates,
	// added in deterministic first-touch order.
	edgeTerms := make(map[topo.EdgeKey][]ilp.Term)
	var edgeOrder []topo.EdgeKey
	for vi, r := range vars {
		for _, e := range p.Cands[r.i][r.j].Edges {
			k := topo.EdgeKey{Layer: int(e.Layer), Idx: int(e.Idx)}
			if _, seen := edgeTerms[k]; !seen {
				edgeOrder = append(edgeOrder, k)
			}
			edgeTerms[k] = append(edgeTerms[k], ilp.Term{Var: vi, Coef: float64(e.N)})
		}
	}
	for _, k := range edgeOrder {
		avail := u.Avail(k.Layer, k.Idx)
		m.AddLazyConstraint(edgeTerms[k], float64(avail))
	}

	res := ilp.Solve(m, ilp.SolveOptions{Ctx: ctx, TimeLimit: opt.TimePerTile})
	if res.Status != ilp.Optimal && res.Status != ilp.Feasible {
		return nil, res.Status == ilp.TimedOut
	}
	// The capacity double-check (defense against numeric drift in the LP,
	// and against concurrent tiles planning over the same edges) happens at
	// commit time in commitPlan.
	for vi, r := range vars {
		if res.X[vi] > 0.5 && choice[r.i] < 0 {
			plan = append(plan, candSel{r.i, r.j})
		}
	}
	return plan, res.Status == ilp.Feasible
}

// greedySweep routes remaining objects cheapest-first (candidate cost plus
// pair cost against committed partners), capacity-checked. Returns how
// many objects it routed, stopping early with ctx's error on cancellation.
func greedySweep(ctx context.Context, p *route.Problem, u *grid.Usage, a *route.Assignment) (int, error) {
	var rest []int
	for i := range p.Objects {
		if a.Choice[i] < 0 {
			rest = append(rest, i)
		}
	}
	sort.Slice(rest, func(x, y int) bool {
		cx, cy := bestCost(p, rest[x], a), bestCost(p, rest[y], a)
		if cx != cy {
			return cx < cy
		}
		return rest[x] < rest[y]
	})
	routed := 0
	for _, i := range rest {
		if err := ctx.Err(); err != nil {
			return routed, err
		}
		bestJ, bestC := -1, 0.0
		for j := range p.Cands[i] {
			if !p.CandidateFits(i, j, u) {
				continue
			}
			c := p.Cost(i, j)
			for _, q := range p.Partners(i) {
				if a.Choice[q] >= 0 {
					c += p.PairCost(i, j, q, a.Choice[q])
				}
			}
			if bestJ == -1 || c < bestC {
				bestJ, bestC = j, c
			}
		}
		if bestJ == -1 {
			continue
		}
		a.Choice[i] = bestJ
		for _, e := range p.Cands[i][bestJ].Edges {
			u.Add(int(e.Layer), int(e.Idx), int(e.N))
		}
		routed++
	}
	return routed, nil
}

// bestCost returns the cheapest candidate cost of an object (for the sweep
// ordering).
func bestCost(p *route.Problem, i int, a *route.Assignment) float64 {
	if len(p.Cands[i]) == 0 {
		return 1e18
	}
	return p.Cost(i, 0)
}

// SolveMonolithic is the comparison point: the whole-design exact solve
// (identical to exact.Solve), exposed here so benchmarks can compare the
// two flows side by side.
func SolveMonolithic(p *route.Problem, timeLimit time.Duration, warm *route.Assignment) (exact.Result, error) {
	return exact.Solve(p, exact.Options{TimeLimit: timeLimit, WarmStart: warm})
}
