package hier

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/route"
)

// TestParallelTilesIndustry5 exercises the full parallel pipeline under
// the race detector: a parallel build of Industry5 followed by concurrent
// tile solves. The parallel schedule must be legal, reproducible, and
// route comparably to the sequential one.
func TestParallelTilesIndustry5(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(5), 0.06).Generate()
	p, err := route.Build(d, route.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	seq := Solve(p, Options{Tiles: 2, TimePerTile: 2 * time.Second})
	par := Solve(p, Options{Tiles: 2, TimePerTile: 2 * time.Second, Workers: 4})
	if err := p.Legal(par.Assignment); err != nil {
		t.Fatalf("parallel tile assignment illegal: %v", err)
	}
	if par.TilesSolved != seq.TilesSolved {
		t.Errorf("parallel solved %d tiles, sequential %d", par.TilesSolved, seq.TilesSolved)
	}
	// Parallel planning may double-book edges that only the commit pass
	// arbitrates, so allow a small routed-count gap versus sequential.
	if par.Assignment.RoutedObjects() < seq.Assignment.RoutedObjects()-2 {
		t.Errorf("parallel routed %d objects, sequential %d",
			par.Assignment.RoutedObjects(), seq.Assignment.RoutedObjects())
	}

	again := Solve(p, Options{Tiles: 2, TimePerTile: 2 * time.Second, Workers: 4})
	// Reproducibility is only guaranteed when no tile ILP hit its
	// wall-clock limit: a timed-out tile returns its incumbent, which
	// depends on how far the solve got (under -race the 2 s budget is
	// nondeterministically exhausted). Timed-out runs are still legal and
	// comparable above; only the bit-identical check needs clean solves.
	if par.TilesTimedOut > 0 || again.TilesTimedOut > 0 {
		t.Skipf("tile ILPs timed out (%d, %d); skipping reproducibility check",
			par.TilesTimedOut, again.TilesTimedOut)
	}
	if !reflect.DeepEqual(par.Assignment, again.Assignment) {
		t.Error("parallel tile solve is not reproducible across runs")
	}
}
