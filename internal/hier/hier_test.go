package hier

import (
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/pd"
	"repro/internal/route"
)

func hierProblem(t *testing.T, n int, scale float64) *route.Problem {
	t.Helper()
	d := benchgen.Scale(benchgen.Industry(n), scale).Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSolveLegalAndComparable(t *testing.T) {
	p := hierProblem(t, 1, 0.08)
	res := Solve(p, Options{Tiles: 2, TimePerTile: 3 * time.Second})
	if err := p.Legal(res.Assignment); err != nil {
		t.Fatalf("hierarchical assignment illegal: %v", err)
	}
	pdRes := pd.Solve(p)
	// The divide-and-conquer flow should route at least roughly as many
	// objects as plain primal-dual.
	if res.Assignment.RoutedObjects() < pdRes.Assignment.RoutedObjects()-2 {
		t.Errorf("hier routed %d, pd routed %d", res.Assignment.RoutedObjects(), pdRes.Assignment.RoutedObjects())
	}
	if res.TilesSolved == 0 {
		t.Error("no tiles solved")
	}
}

func TestSolveMoreTiles(t *testing.T) {
	p := hierProblem(t, 3, 0.08)
	for _, tiles := range []int{1, 2, 4} {
		res := Solve(p, Options{Tiles: tiles, TimePerTile: 2 * time.Second})
		if err := p.Legal(res.Assignment); err != nil {
			t.Fatalf("tiles=%d: illegal: %v", tiles, err)
		}
	}
}

func TestPartitionCoversAllObjects(t *testing.T) {
	p := hierProblem(t, 1, 0.08)
	tiles := partition(p, 3)
	if len(tiles) != 9 {
		t.Fatalf("tiles = %d", len(tiles))
	}
	seen := map[int]bool{}
	for _, objs := range tiles {
		for _, i := range objs {
			if seen[i] {
				t.Fatalf("object %d in two tiles", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(p.Objects) {
		t.Fatalf("partition covered %d of %d objects", len(seen), len(p.Objects))
	}
}

func TestGreedySweepRespectsCapacity(t *testing.T) {
	p := hierProblem(t, 3, 0.06)
	res := Solve(p, Options{Tiles: 4, TimePerTile: time.Second})
	u := p.Usage(res.Assignment)
	if u.Overflow() != 0 {
		t.Fatalf("overflow = %d", u.Overflow())
	}
}

func TestSolveDeterministic(t *testing.T) {
	// Time limits make tile ILP outcomes potentially timing-dependent, so
	// determinism is only guaranteed with limits comfortably above the
	// solve time of these tiny tiles.
	p1 := hierProblem(t, 1, 0.05)
	p2 := hierProblem(t, 1, 0.05)
	r1 := Solve(p1, Options{Tiles: 2, TimePerTile: 10 * time.Second})
	r2 := Solve(p2, Options{Tiles: 2, TimePerTile: 10 * time.Second})
	if r1.Assignment.RoutedObjects() != r2.Assignment.RoutedObjects() {
		t.Error("hier nondeterministic")
	}
}
