package hier

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSolveCtxConvergenceSeries checks the traced hierarchical flow: the
// "hier" series carries the initial point, one sample per tile commit and a
// final post-sweep sample; tile solves and the sweep leave trace events.
func TestSolveCtxConvergenceSeries(t *testing.T) {
	p := hierProblem(t, 1, 0.08)
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	res, err := SolveCtx(ctx, p, Options{Tiles: 2, TimePerTile: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	samples := rep.Series["hier"]
	if len(samples) != res.TilesSolved+2 {
		t.Fatalf("got %d samples, want initial + %d tiles + sweep", len(samples), res.TilesSolved)
	}
	if samples[0].Routed != 0 {
		t.Errorf("initial sample = %+v", samples[0])
	}
	last := samples[len(samples)-1]
	if last.Routed != int64(res.Assignment.RoutedObjects()) {
		t.Errorf("final routed = %d, want %d", last.Routed, res.Assignment.RoutedObjects())
	}
	if last.Objective != res.Objective {
		t.Errorf("final objective = %v, want %v", last.Objective, res.Objective)
	}
	var tiles, sweeps int
	for _, e := range rep.Trace {
		switch e.Name {
		case "hier.tile":
			tiles++
		case "hier.greedy":
			sweeps++
			if e.Args["routed"] != float64(res.GreedyRouted) {
				t.Errorf("sweep event = %+v, want routed %d", e, res.GreedyRouted)
			}
		}
	}
	if tiles != res.TilesSolved {
		t.Errorf("got %d hier.tile events, want %d", tiles, res.TilesSolved)
	}
	if sweeps != 1 {
		t.Errorf("got %d hier.greedy events", sweeps)
	}
}

// TestSolveCtxParallelSeries runs the parallel tile schedule under a
// recorder: per-commit samples still appear in deterministic tile order and
// each planned tile leaves its event (emitted from the worker goroutines —
// this doubles as a -race check on concurrent emits).
func TestSolveCtxParallelSeries(t *testing.T) {
	p := hierProblem(t, 1, 0.08)
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	res, err := SolveCtx(ctx, p, Options{Tiles: 2, TimePerTile: 3 * time.Second, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	if got := len(rep.Series["hier"]); got != res.TilesSolved+2 {
		t.Errorf("got %d samples, want %d", got, res.TilesSolved+2)
	}
	tiles := 0
	for _, e := range rep.Trace {
		if e.Name == "hier.tile" {
			tiles++
		}
	}
	if tiles != res.TilesSolved {
		t.Errorf("got %d hier.tile events, want %d", tiles, res.TilesSolved)
	}
}
