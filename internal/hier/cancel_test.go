package hier

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/route"
)

// flipCtx cancels deterministically after `after` Err() calls; Err is
// called concurrently by the parallel tile planners, so the counter is
// atomic.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestSolveCtxMidCancelPartialLegal audits the hierarchical solver's
// parallel leg under mid-solve cancellation: whatever tiles and sweep steps
// committed before the flip, the returned partial assignment must be
// well-formed (choices in range or -1), capacity-legal, and priced by (3a)
// over exactly that assignment — never a half-committed plan.
func TestSolveCtxMidCancelPartialLegal(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(5), 0.06).Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, after := range []int64{1, 3, 10, 50} {
			ctx := &flipCtx{Context: context.Background(), after: after}
			res, err := SolveCtx(ctx, p, Options{
				Tiles: 3, Workers: workers, TimePerTile: time.Second,
			})
			if err == nil {
				continue // flip landed past the last check; full solve is fine
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d after=%d: err = %v, want context.Canceled", workers, after, err)
			}
			if len(res.Assignment.Choice) != len(p.Objects) {
				t.Fatalf("workers=%d after=%d: assignment covers %d of %d objects",
					workers, after, len(res.Assignment.Choice), len(p.Objects))
			}
			for i, c := range res.Assignment.Choice {
				if c != -1 && (c < 0 || c >= len(p.Cands[i])) {
					t.Fatalf("workers=%d after=%d: object %d choice %d out of range",
						workers, after, i, c)
				}
			}
			if want := p.ObjectiveValue(res.Assignment); res.Objective != want {
				t.Errorf("workers=%d after=%d: Objective = %v, want %v (over the partial assignment)",
					workers, after, res.Objective, want)
			}
			r := p.ExtractRouting(res.Assignment)
			u := r.UsageOf(p.Grid)
			if of := u.Overflow(); of != 0 {
				t.Errorf("workers=%d after=%d: partial assignment overflows by %d",
					workers, after, of)
			}
		}
	}
}
