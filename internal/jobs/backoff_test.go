package jobs

import (
	mrand "math/rand"
	"sync"
	"testing"
	"time"
)

func jitterManager(seed int64) *Manager {
	m := New(Config{Store: NewMemStore(), Backoff: 2 * time.Second, MaxBackoff: time.Minute})
	m.jitter = mrand.New(mrand.NewSource(seed))
	return m
}

// TestBackoffJitterPerManager pins the fix for backoff jitter drawn from
// the shared global math/rand: each manager owns a seeded source, so two
// managers with the same seed produce the same jitter sequence and two
// managers with different seeds diverge — neither is possible when every
// manager races over one global stream.
func TestBackoffJitterPerManager(t *testing.T) {
	a, b := jitterManager(7), jitterManager(7)
	for attempt := 1; attempt <= 6; attempt++ {
		if da, db := a.backoff(attempt), b.backoff(attempt); da != db {
			t.Fatalf("attempt %d: same-seed managers diverged: %s vs %s", attempt, da, db)
		}
	}

	c, d := jitterManager(1), jitterManager(2)
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		if c.backoff(attempt) != d.backoff(attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("different-seed managers produced identical jitter sequences")
	}
}

// TestBackoffBounds checks the exponential schedule and the ±25% jitter
// window around it, including the MaxBackoff cap.
func TestBackoffBounds(t *testing.T) {
	m := jitterManager(99)
	base := m.cfg.Backoff
	for attempt := 1; attempt <= 10; attempt++ {
		want := base << (attempt - 1)
		if want > m.cfg.MaxBackoff || want <= 0 {
			want = m.cfg.MaxBackoff
		}
		for i := 0; i < 50; i++ {
			got := m.backoff(attempt)
			if got < want*3/4 || got > want*5/4 {
				t.Fatalf("attempt %d: backoff %s outside ±25%% of %s", attempt, got, want)
			}
		}
	}
}

// TestBackoffConcurrent hammers one manager's backoff from many goroutines;
// under -race this proves the private source is properly serialized.
func TestBackoffConcurrent(t *testing.T) {
	m := jitterManager(3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if d := m.backoff(1 + i%5); d <= 0 {
					t.Error("non-positive backoff")
					return
				}
			}
		}()
	}
	wg.Wait()
}
