package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"context"

	"repro/internal/faultinject"
)

// walFile is the journal's file name inside the WAL directory.
const walFile = "jobs.wal"

// WAL is the durable Store: an append-only journal of job state
// transitions, one record per line, each line checksummed and fsync'd so a
// crash loses at most the record being written when the power went out.
//
// Record framing is textual — "<crc32-hex> <json>\n" — which keeps the
// journal greppable during an incident and makes tail corruption
// detectable: a line whose checksum does not match its payload, or a final
// line without its newline (a torn write), is skipped with a log line and
// counted, never a boot failure. Because the journal is single-writer
// append-only, anything before the tail is intact by construction.
type WAL struct {
	path string
	logf func(format string, args ...any)

	mu sync.Mutex
	f  *os.File
}

// OpenWAL opens (creating if needed) the journal under dir. logf receives
// replay diagnostics (torn records, skips); nil discards them.
func OpenWAL(dir string, logf func(format string, args ...any)) (*WAL, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating WAL dir: %w", err)
	}
	path := filepath.Join(dir, walFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening WAL: %w", err)
	}
	return &WAL{path: path, logf: logf, f: f}, nil
}

// Append writes one checksummed record line and fsyncs it: when Append
// returns nil the transition survives a crash.
func (w *WAL) Append(ctx context.Context, rec Record) error {
	if err := faultinject.Fire(ctx, faultinject.JobsStoreAppend); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding WAL record: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(data), data)
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.WriteString(line); err != nil {
		return fmt.Errorf("jobs: appending WAL record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobs: syncing WAL: %w", err)
	}
	return nil
}

// Replay streams every intact record into fn, in append order. Unreadable
// records — torn final line, checksum mismatch, malformed JSON, or a
// record an armed jobs.store.replay corrupt fault hits — are logged,
// counted and skipped; only real I/O errors and fn failures abort.
func (w *WAL) Replay(ctx context.Context, fn func(Record) error) (int, error) {
	if err := faultinject.Fire(ctx, faultinject.JobsStoreReplay); err != nil {
		return 0, err
	}
	rf, err := os.Open(w.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("jobs: opening WAL for replay: %w", err)
	}
	defer rf.Close()

	skipped := 0
	r := bufio.NewReaderSize(rf, 1<<20)
	for lineNo := 1; ; lineNo++ {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(bytes.TrimSpace(line)) > 0 {
				// A final line without its newline is a torn write: the
				// process died mid-append. The record is lost; the journal
				// before it is intact.
				skipped++
				w.logf("jobs: WAL replay: skipping torn record at line %d (%d bytes, no newline)", lineNo, len(line))
			}
			return skipped, nil
		}
		if err != nil {
			return skipped, fmt.Errorf("jobs: reading WAL: %w", err)
		}
		rec, perr := decodeWALLine(line)
		if perr == nil && faultinject.Corrupt(ctx, faultinject.JobsStoreReplay) {
			perr = fmt.Errorf("record corrupted by fault injection")
		}
		if perr != nil {
			skipped++
			w.logf("jobs: WAL replay: skipping unreadable record at line %d: %v", lineNo, perr)
			continue
		}
		if err := fn(rec); err != nil {
			return skipped, err
		}
	}
}

// decodeWALLine parses and checksums one journal line.
func decodeWALLine(line []byte) (Record, error) {
	var rec Record
	line = bytes.TrimRight(line, "\n")
	crcHex, payload, ok := bytes.Cut(line, []byte(" "))
	if !ok {
		return rec, fmt.Errorf("no checksum separator")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(crcHex), "%08x", &want); err != nil {
		return rec, fmt.Errorf("bad checksum field %q", crcHex)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return rec, fmt.Errorf("checksum mismatch (want %08x, got %08x)", want, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("bad record JSON: %w", err)
	}
	if rec.JobID == "" {
		return rec, fmt.Errorf("record without job ID")
	}
	return rec, nil
}

// Close closes the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
