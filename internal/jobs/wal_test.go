package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func walRecord(id string, st State, attempt int) Record {
	rec := Record{JobID: id, State: st, Time: time.Unix(1700000000, 0).UTC(), Attempt: attempt}
	if st == Pending && attempt == 0 {
		rec.Spec = &Spec{Design: json.RawMessage(`{"name":"d"}`)}
	}
	return rec
}

func replayAll(t *testing.T, w *WAL) ([]Record, int) {
	t.Helper()
	var got []Record
	skipped, err := w.Replay(context.Background(), func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, skipped
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want := []Record{
		walRecord("a", Pending, 0),
		walRecord("a", Running, 1),
		walRecord("a", Succeeded, 1),
		walRecord("b", Pending, 0),
	}
	for _, rec := range want {
		if err := w.Append(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	got, skipped := replayAll(t, w)
	if skipped != 0 || len(got) != len(want) {
		t.Fatalf("replay: %d records, %d skipped (want %d, 0)", len(got), skipped, len(want))
	}
	for i := range want {
		if got[i].JobID != want[i].JobID || got[i].State != want[i].State || got[i].Attempt != want[i].Attempt {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Spec == nil || string(got[0].Spec.Design) != `{"name":"d"}` {
		t.Errorf("submit record lost its spec: %+v", got[0])
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALReopenAppends(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	w1, err := OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.Append(ctx, walRecord("a", Pending, 0)); err != nil {
		t.Fatal(err)
	}
	w1.Close()

	// A second open of the same directory appends, not truncates.
	w2, err := OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := w2.Append(ctx, walRecord("a", Running, 1)); err != nil {
		t.Fatal(err)
	}
	got, skipped := replayAll(t, w2)
	if skipped != 0 || len(got) != 2 || got[1].State != Running {
		t.Fatalf("after reopen: %d records, %d skipped: %+v", len(got), skipped, got)
	}
}

func TestWALTornTailSkipped(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	var logged []string
	logf := func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	w, err := OpenWAL(dir, logf)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(ctx, walRecord("a", Pending, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(ctx, walRecord("a", Running, 1)); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the final newline and half the
	// last record off the file.
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	got, skipped := replayAll(t, w)
	if len(got) != 1 || got[0].State != Pending {
		t.Fatalf("intact prefix not replayed: %+v", got)
	}
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1 (the torn tail)", skipped)
	}
	if len(logged) == 0 || !strings.Contains(strings.Join(logged, "\n"), "torn") {
		t.Errorf("torn tail not logged: %q", logged)
	}
}

func TestWALChecksumMismatchSkipped(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	w, err := OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, rec := range []Record{
		walRecord("a", Pending, 0),
		walRecord("b", Pending, 0),
		walRecord("b", Running, 1),
	} {
		if err := w.Append(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}

	// Flip bytes inside the middle record's payload: its checksum no
	// longer matches, but the records around it stay intact.
	path := filepath.Join(dir, walFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"job":"b"`, `"job":"X"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	got, skipped := replayAll(t, w)
	if skipped != 1 || len(got) != 2 {
		t.Fatalf("replay over corrupt middle: %d records, %d skipped", len(got), skipped)
	}
	if got[0].JobID != "a" || got[1].JobID != "b" || got[1].State != Running {
		t.Errorf("wrong survivors: %+v", got)
	}
}

func TestWALGarbageLinesSkipped(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a journal with every corruption flavor around one good
	// record.
	good := walRecord("a", Pending, 0)
	data, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	content := "no-separator-line\n" +
		"zzzzzzzz {\"job\":\"x\"}\n" + // unparseable checksum field
		"00000000 {not json}\n" + // checksum matches nothing
		encodeTestLine(t, data) +
		encodeTestLine(t, []byte(`{"state":"PENDING"}`)) // valid frame, empty job ID
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	got, skipped := replayAll(t, w)
	if len(got) != 1 || got[0].JobID != "a" {
		t.Fatalf("good record lost among garbage: %+v", got)
	}
	if skipped != 4 {
		t.Errorf("skipped = %d, want 4", skipped)
	}
}

// encodeTestLine frames a payload the way Append does.
func encodeTestLine(t *testing.T, payload []byte) string {
	t.Helper()
	return fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
}
