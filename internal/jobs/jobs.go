// Package jobs is streakd's durable async tier: submitted solves become
// jobs that survive daemon restarts. Every state transition is appended to
// a pluggable Store — in-memory for tests, a checksummed fsync'd WAL for
// production — and replayed at boot, so a crash mid-solve recovers the job
// instead of dropping it: RUNNING jobs found in the journal are marked
// INTERRUPTED and re-enqueued up to a per-job retry budget with
// exponential backoff + jitter.
//
// The package is routing-agnostic: the Manager executes an injected Runner
// and classifies its failures only as retryable (the default — timeouts,
// panics, interruptions) or terminal (anything wrapped with Terminal, e.g.
// an invalid design or an exhausted fallback chain). The chaos seams are
// the jobs.store.append, jobs.store.replay and jobs.run fault points.
//
// State machine:
//
//	PENDING ──▶ RUNNING ──▶ SUCCEEDED
//	   ▲           │ ├────▶ FAILED     (terminal error, or retry budget spent)
//	   │           │ ├────▶ CANCELED   (client DELETE)
//	   │(retry,    │ └────▶ INTERRUPTED (daemon stop/crash mid-run)
//	   │ backoff)  │              │
//	   └───────────┴──────────────┘ (re-enqueued at boot while attempts remain)
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// State is a job's lifecycle state.
type State string

const (
	// Pending jobs wait for a worker (first run or scheduled retry).
	Pending State = "PENDING"
	// Running jobs hold a worker and are solving.
	Running State = "RUNNING"
	// Interrupted jobs were RUNNING when the daemon stopped or crashed;
	// at boot they are re-enqueued while retry budget remains.
	Interrupted State = "INTERRUPTED"
	// Succeeded jobs finished with a result.
	Succeeded State = "SUCCEEDED"
	// Failed jobs exhausted their retry budget or hit a terminal error.
	Failed State = "FAILED"
	// Canceled jobs were canceled by the client.
	Canceled State = "CANCELED"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Succeeded || s == Failed || s == Canceled
}

// Spec is a job's payload: the validated design plus per-job solve
// parameters, persisted verbatim in the submit record.
type Spec struct {
	// Design is the validated design JSON.
	Design json.RawMessage `json:"design"`
	// Method and Audit override the daemon defaults ("" keeps them).
	Method string `json:"method,omitempty"`
	Audit  string `json:"audit,omitempty"`
	// Stats asks the result to carry the run's telemetry report.
	Stats bool `json:"stats,omitempty"`
	// NoCache opts the job out of the content-addressed solve cache
	// (?cache=off at submit time). Additive, so WAL records from before
	// the field existed replay as cache-enabled.
	NoCache bool `json:"no_cache,omitempty"`
}

// Runner executes one job attempt. rec is the attempt's live telemetry
// recorder (the events stream reads it while the attempt runs); attempt is
// 1-based. A nil error with a result marks the job SUCCEEDED; wrap
// non-retryable failures with Terminal.
type Runner func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error)

// Terminal marks err non-retryable: the job fails immediately instead of
// consuming its retry budget (invalid design, exhausted fallback chain,
// strict-audit violation).
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &terminalError{err: err}
}

// IsTerminal reports whether err (or anything it wraps) was marked with
// Terminal.
func IsTerminal(err error) bool {
	var te *terminalError
	return errors.As(err, &te)
}

type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// Errors returned by Manager methods.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrDraining reports a submit refused because the manager is draining.
	ErrDraining = errors.New("jobs: manager is draining")
)

// Config tunes a Manager. Store and Run are required.
type Config struct {
	// Store persists state transitions and replays them at boot.
	Store Store
	// Run executes one job attempt.
	Run Runner
	// Workers bounds concurrent job executions. Default 2.
	Workers int
	// MaxAttempts bounds executions per job (first run + retries).
	// Default 3.
	MaxAttempts int
	// Backoff is the base retry delay, doubled per attempt. Default 2s.
	Backoff time.Duration
	// MaxBackoff caps the retry delay. Default 1m.
	MaxBackoff time.Duration
	// BaseContext roots every execution context — the seam for fault
	// plans. Default context.Background().
	BaseContext context.Context
	// Logf receives replay and append diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 2 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Minute
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// View is a job snapshot for API responses and event streams.
type View struct {
	// ID is the job's identifier.
	ID string `json:"id"`
	// State is the lifecycle state at snapshot time.
	State State `json:"state"`
	// Attempts counts executions started so far; MaxAttempts is the
	// budget.
	Attempts    int `json:"attempts"`
	MaxAttempts int `json:"max_attempts"`
	// Created and Updated bound the job's lifetime so far.
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
	// Error is the most recent failure text ("" when none).
	Error string `json:"error,omitempty"`
	// Result is the marshaled solve result (SUCCEEDED only).
	Result json.RawMessage `json:"result,omitempty"`
}

// job is the manager's mutable record of one job.
type job struct {
	id          string
	idemKey     string
	spec        Spec
	state       State
	attempt     int
	maxAttempts int
	created     time.Time
	updated     time.Time
	errMsg      string
	result      json.RawMessage

	cancel     context.CancelFunc // non-nil while RUNNING
	userCancel bool               // client asked for cancellation
	rec        *obs.Recorder      // live recorder of the current attempt
	subs       []chan View
}

func (j *job) view() View {
	return View{
		ID:          j.id,
		State:       j.state,
		Attempts:    j.attempt,
		MaxAttempts: j.maxAttempts,
		Created:     j.created,
		Updated:     j.updated,
		Error:       j.errMsg,
		Result:      j.result,
	}
}

// Stats is the manager's live snapshot for health surfaces.
type Stats struct {
	// Ready is false while boot replay is still running.
	Ready bool `json:"ready"`
	// Draining reports BeginDrain was called.
	Draining bool `json:"draining"`
	// Jobs counts every tracked job; Running and Queued split the live
	// ones (Queued = PENDING or INTERRUPTED, whether runnable now or
	// waiting out a backoff).
	Jobs    int `json:"jobs"`
	Running int `json:"running"`
	Queued  int `json:"queued"`
	// Counters is the lifecycle counter set (jobs.submitted,
	// jobs.retries, jobs.recovered, jobs.replay.skipped, ...).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Manager owns the job table, the worker pool and the store. Create with
// New, then Start once; submit/query from any goroutine.
type Manager struct {
	cfg  Config
	rec  *obs.Recorder // lifecycle counters, independent of any one job
	base context.Context

	hardCtx  context.Context // canceled to abort running jobs
	hardStop context.CancelFunc

	ready    chan struct{} // closed when boot replay finished
	draining chan struct{} // closed by BeginDrain
	drained  atomic.Bool
	running  atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	byIdem   map[string]string
	runnable []string // job IDs due now, FIFO
	started  bool

	// jitter is the manager's private backoff-jitter source. Sharing the
	// global math/rand source across managers serializes every concurrent
	// worker's retry scheduling on one lock and, worse, lets co-located
	// managers interleave one deterministic stream — per-manager seeding
	// decorrelates their retry storms.
	jitterMu sync.Mutex
	jitter   *mrand.Rand
}

// New builds a manager. Call Start to replay the store and begin
// executing.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		rec:      obs.NewRecorder(),
		base:     cfg.BaseContext,
		ready:    make(chan struct{}),
		draining: make(chan struct{}),
		jobs:     make(map[string]*job),
		byIdem:   make(map[string]string),
	}
	m.cond = sync.NewCond(&m.mu)
	m.jitter = mrand.New(mrand.NewSource(cryptoSeed()))
	// Executions root at BaseContext so fault plans (and other
	// context-carried seams) reach the runner; hardStop cancels them all.
	m.hardCtx, m.hardStop = context.WithCancel(cfg.BaseContext)
	return m
}

// cryptoSeed draws a fresh seed for the manager's jitter source.
func cryptoSeed() int64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading jitter seed: %v", err))
	}
	return int64(binary.LittleEndian.Uint64(b[:]))
}

// Start replays the store in the background — recovering persisted jobs —
// then spawns the worker pool and marks the manager ready. Readiness
// gates every other method, so callers may use the manager immediately;
// they just wait out the replay.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go func() {
		m.replay()
		for i := 0; i < m.cfg.Workers; i++ {
			go m.worker()
		}
		close(m.ready)
	}()
}

// Ready reports whether boot replay has finished.
func (m *Manager) Ready() bool {
	select {
	case <-m.ready:
		return true
	default:
		return false
	}
}

// awaitReady blocks until replay finishes or ctx expires.
func (m *Manager) awaitReady(ctx context.Context) error {
	select {
	case <-m.ready:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// replay rebuilds the job table from the store and re-enqueues unfinished
// work: PENDING jobs go straight back to the queue; RUNNING/INTERRUPTED
// jobs — the daemon died or stopped under them — are marked INTERRUPTED
// (persisted) and re-enqueued while their retry budget lasts.
func (m *Manager) replay() {
	records := 0
	skipped, err := m.cfg.Store.Replay(m.base, func(rec Record) error {
		records++
		m.applyRecord(rec)
		return nil
	})
	if err != nil {
		// A replay failure degrades to whatever was recovered before it —
		// the daemon must boot even over a damaged journal.
		m.cfg.Logf("jobs: WAL replay failed after %d records: %v", records, err)
	}
	m.rec.Add(obs.CounterJobsReplayRecords, int64(records))
	m.rec.Add(obs.CounterJobsReplaySkipped, int64(skipped))
	if skipped > 0 {
		m.cfg.Logf("jobs: WAL replay skipped %d unreadable record(s)", skipped)
	}

	m.mu.Lock()
	var interrupted, requeue []*job
	for _, j := range m.jobs {
		switch j.state {
		case Pending:
			requeue = append(requeue, j)
		case Running, Interrupted:
			interrupted = append(interrupted, j)
		}
	}
	m.mu.Unlock()

	now := time.Now()
	for _, j := range interrupted {
		m.rec.Add(obs.CounterJobsRecovered, 1)
		if j.attempt >= j.maxAttempts {
			m.mu.Lock()
			j.state = Failed
			j.errMsg = fmt.Sprintf("interrupted on attempt %d/%d; retry budget exhausted", j.attempt, j.maxAttempts)
			j.updated = now
			m.mu.Unlock()
			m.append(Record{JobID: j.id, State: Failed, Time: now, Attempt: j.attempt, Error: j.errMsg})
			m.rec.Add(obs.CounterJobsFailed, 1)
			continue
		}
		m.mu.Lock()
		j.state = Interrupted
		j.errMsg = fmt.Sprintf("interrupted on attempt %d (daemon restart)", j.attempt)
		j.updated = now
		m.mu.Unlock()
		m.append(Record{JobID: j.id, State: Interrupted, Time: now, Attempt: j.attempt, Error: j.errMsg})
		m.rec.Add(obs.CounterJobsInterrupted, 1)
		requeue = append(requeue, j)
	}
	for _, j := range requeue {
		m.enqueue(j.id)
	}
	if n := len(requeue); n > 0 || len(interrupted) > 0 {
		m.cfg.Logf("jobs: replay recovered %d runnable job(s) (%d interrupted mid-run)", n, len(interrupted))
	}
}

// applyRecord folds one replayed record into the job table.
func (m *Manager) applyRecord(rec Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[rec.JobID]
	if j == nil {
		if rec.Spec == nil {
			// A transition for a job whose submit record was lost (torn
			// tail took it): nothing to recover.
			m.cfg.Logf("jobs: WAL replay: dropping orphan transition for %s (%s)", rec.JobID, rec.State)
			return
		}
		j = &job{
			id:          rec.JobID,
			idemKey:     rec.IdemKey,
			spec:        *rec.Spec,
			maxAttempts: m.cfg.MaxAttempts,
			created:     rec.Time,
		}
		m.jobs[j.id] = j
		if j.idemKey != "" {
			m.byIdem[j.idemKey] = j.id
		}
	}
	j.state = rec.State
	j.updated = rec.Time
	if rec.Attempt > 0 {
		j.attempt = rec.Attempt
	}
	j.errMsg = rec.Error
	if len(rec.Result) > 0 {
		j.result = rec.Result
	}
}

// Submit registers a new job and enqueues it. A repeated Idempotency-Key
// returns the existing job (existed=true) instead of duplicating work.
// Blocks until boot replay finishes so duplicates cannot slip past a
// not-yet-recovered key.
func (m *Manager) Submit(ctx context.Context, spec Spec, idemKey string) (View, bool, error) {
	if err := m.awaitReady(ctx); err != nil {
		return View{}, false, err
	}
	if m.isDraining() {
		return View{}, false, ErrDraining
	}
	now := time.Now()
	m.mu.Lock()
	if idemKey != "" {
		if id, ok := m.byIdem[idemKey]; ok {
			v := m.jobs[id].view()
			m.mu.Unlock()
			m.rec.Add(obs.CounterJobsDedup, 1)
			return v, true, nil
		}
	}
	j := &job{
		id:          newJobID(),
		idemKey:     idemKey,
		spec:        spec,
		state:       Pending,
		maxAttempts: m.cfg.MaxAttempts,
		created:     now,
		updated:     now,
	}
	m.jobs[j.id] = j
	if idemKey != "" {
		m.byIdem[idemKey] = j.id
	}
	v := j.view()
	m.mu.Unlock()

	if err := m.cfg.Store.Append(m.base, Record{
		JobID: j.id, State: Pending, Time: now, IdemKey: idemKey, Spec: &spec,
	}); err != nil {
		// Without a durable submit record the job would silently vanish on
		// restart; refuse it instead.
		m.mu.Lock()
		delete(m.jobs, j.id)
		if idemKey != "" {
			delete(m.byIdem, idemKey)
		}
		m.mu.Unlock()
		m.rec.Add(obs.CounterJobsAppendErrors, 1)
		return View{}, false, fmt.Errorf("jobs: persisting submit: %w", err)
	}
	m.rec.Add(obs.CounterJobsSubmitted, 1)
	m.enqueue(j.id)
	return v, false, nil
}

// Get returns a job snapshot.
func (m *Manager) Get(ctx context.Context, id string) (View, error) {
	if err := m.awaitReady(ctx); err != nil {
		return View{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return View{}, ErrNotFound
	}
	return j.view(), nil
}

// Cancel stops a job: a queued job is canceled immediately, a running one
// has its context canceled and transitions once the attempt unwinds.
// Canceling a terminal job is a no-op returning its final view.
func (m *Manager) Cancel(ctx context.Context, id string) (View, error) {
	if err := m.awaitReady(ctx); err != nil {
		return View{}, err
	}
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return View{}, ErrNotFound
	}
	switch {
	case j.state.Terminal():
		v := j.view()
		m.mu.Unlock()
		return v, nil
	case j.state == Running:
		j.userCancel = true
		cancel := j.cancel
		v := j.view()
		m.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return v, nil
	default: // Pending / Interrupted: cancel in place.
		j.state = Canceled
		j.updated = time.Now()
		v := j.view()
		m.mu.Unlock()
		m.append(Record{JobID: id, State: Canceled, Time: v.Updated, Attempt: v.Attempts})
		m.rec.Add(obs.CounterJobsCanceled, 1)
		m.publish(v)
		return v, nil
	}
}

// Watch subscribes to a job's state transitions. The returned channel
// receives a View per transition (buffered; slow readers miss
// intermediate states, never the terminal one if they keep reading).
// stop unsubscribes.
func (m *Manager) Watch(ctx context.Context, id string) (<-chan View, func(), error) {
	if err := m.awaitReady(ctx); err != nil {
		return nil, nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, nil, ErrNotFound
	}
	ch := make(chan View, 16)
	j.subs = append(j.subs, ch)
	stop := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
	}
	return ch, stop, nil
}

// LiveReport snapshots the telemetry of a job's in-flight attempt — the
// feed behind GET /jobs/{id}/events progress frames. ok is false when the
// job is unknown or not currently running.
func (m *Manager) LiveReport(id string) (obs.Report, bool) {
	m.mu.Lock()
	j := m.jobs[id]
	var rec *obs.Recorder
	if j != nil && j.state == Running {
		rec = j.rec
	}
	m.mu.Unlock()
	if rec == nil {
		return obs.Report{}, false
	}
	return rec.Report(), true
}

// StatsSnapshot returns the live manager statistics.
func (m *Manager) StatsSnapshot() Stats {
	st := Stats{
		Ready:    m.Ready(),
		Draining: m.isDraining(),
		Counters: m.rec.Counters(),
	}
	m.mu.Lock()
	st.Jobs = len(m.jobs)
	for _, j := range m.jobs {
		switch j.state {
		case Running:
			st.Running++
		case Pending, Interrupted:
			st.Queued++
		}
	}
	m.mu.Unlock()
	return st
}

// BeginDrain stops workers from picking up new PENDING work: in-flight
// attempts finish, everything queued stays persisted for the next boot.
// Idempotent.
func (m *Manager) BeginDrain() {
	if m.drained.CompareAndSwap(false, true) {
		close(m.draining)
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// Drain is the graceful-shutdown sequence: stop picking up work, wait for
// running attempts to finish, and — if ctx expires first — cancel them
// and wait for the unwind. Interrupted attempts persist as INTERRUPTED,
// so the next boot retries them.
func (m *Manager) Drain(ctx context.Context) error {
	m.BeginDrain()
	if m.awaitIdle(ctx) == nil {
		return nil
	}
	m.hardStop()
	final, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.awaitIdle(final); err != nil {
		return fmt.Errorf("jobs: %d attempts still running after hard cancel", m.running.Load())
	}
	return ctx.Err()
}

// awaitIdle polls until no attempt is executing.
func (m *Manager) awaitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if m.running.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (m *Manager) isDraining() bool {
	select {
	case <-m.draining:
		return true
	default:
		return false
	}
}

// enqueue makes the job runnable now. During a drain the job stays in its
// persisted state instead — the next boot picks it up.
func (m *Manager) enqueue(id string) {
	if m.isDraining() {
		return
	}
	m.mu.Lock()
	m.runnable = append(m.runnable, id)
	m.cond.Signal()
	m.mu.Unlock()
}

// worker executes runnable jobs until the manager drains.
func (m *Manager) worker() {
	for {
		m.mu.Lock()
		for len(m.runnable) == 0 && !m.isDraining() {
			m.cond.Wait()
		}
		if m.isDraining() {
			m.mu.Unlock()
			return
		}
		id := m.runnable[0]
		m.runnable = m.runnable[1:]
		m.mu.Unlock()
		m.execute(id)
	}
}

// execute runs one attempt of the job and applies the outcome transition.
func (m *Manager) execute(id string) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil || (j.state != Pending && j.state != Interrupted) {
		// Canceled (or otherwise finished) while queued.
		m.mu.Unlock()
		return
	}
	j.attempt++
	j.state = Running
	j.updated = time.Now()
	ctx, cancel := context.WithCancel(m.hardCtx)
	j.cancel = cancel
	rec := obs.NewRecorder()
	j.rec = rec
	attempt, spec := j.attempt, j.spec
	v := j.view()
	m.mu.Unlock()

	m.running.Add(1)
	defer m.running.Add(-1)
	m.append(Record{JobID: id, State: Running, Time: v.Updated, Attempt: attempt})
	m.rec.Add(obs.CounterJobsStarted, 1)
	if attempt > 1 {
		m.rec.Add(obs.CounterJobsRetries, 1)
	}
	m.publish(v)

	result, err := m.runAttempt(ctx, spec, rec, attempt)
	cancel()

	m.mu.Lock()
	j.cancel = nil
	j.rec = nil
	userCancel := j.userCancel
	m.mu.Unlock()

	now := time.Now()
	switch {
	case err == nil:
		m.finish(j, Succeeded, "", result, now)
		m.rec.Add(obs.CounterJobsSucceeded, 1)
	case userCancel:
		m.finish(j, Canceled, "canceled by client", nil, now)
		m.rec.Add(obs.CounterJobsCanceled, 1)
	case m.hardCtx.Err() != nil:
		// The manager is being torn down: persist the interruption so the
		// next boot retries the job, exactly like a crash would.
		m.finish(j, Interrupted, fmt.Sprintf("interrupted on attempt %d (shutdown): %v", attempt, err), nil, now)
		m.rec.Add(obs.CounterJobsInterrupted, 1)
	case IsTerminal(err):
		m.finish(j, Failed, err.Error(), nil, now)
		m.rec.Add(obs.CounterJobsFailed, 1)
	case attempt >= m.maxAttemptsOf(j):
		m.finish(j, Failed, fmt.Sprintf("attempt %d/%d: %v (retry budget exhausted)", attempt, m.maxAttemptsOf(j), err), nil, now)
		m.rec.Add(obs.CounterJobsFailed, 1)
	default:
		// Retryable: back off exponentially with jitter, persist the
		// PENDING transition so a restart retries without waiting.
		delay := m.backoff(attempt)
		m.finish(j, Pending, fmt.Sprintf("attempt %d/%d: %v (retrying in %s)", attempt, m.maxAttemptsOf(j), err, delay.Round(time.Millisecond)), nil, now)
		time.AfterFunc(delay, func() { m.enqueue(id) })
	}
}

// runAttempt isolates one execution: the jobs.run fault point fires first,
// and a panic anywhere below — the runner, the solve, injected chaos —
// becomes a retryable error instead of killing the worker.
func (m *Manager) runAttempt(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (result json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: attempt panicked: %v", r)
		}
	}()
	if ferr := faultinject.Fire(ctx, faultinject.JobsRun); ferr != nil {
		return nil, ferr
	}
	return m.cfg.Run(ctx, spec, rec, attempt)
}

// finish applies a transition, persists it and notifies watchers.
func (m *Manager) finish(j *job, st State, errMsg string, result json.RawMessage, now time.Time) {
	m.mu.Lock()
	j.state = st
	j.errMsg = errMsg
	j.updated = now
	if result != nil {
		j.result = result
	}
	v := j.view()
	m.mu.Unlock()
	m.append(Record{JobID: j.id, State: st, Time: now, Attempt: v.Attempts, Error: errMsg, Result: result})
	m.publish(v)
}

// append persists a transition record. Failures degrade durability, not
// availability: the in-memory state stands, the error is logged and
// counted.
func (m *Manager) append(rec Record) {
	if err := m.cfg.Store.Append(m.base, rec); err != nil {
		m.rec.Add(obs.CounterJobsAppendErrors, 1)
		m.cfg.Logf("jobs: persisting %s transition for %s: %v", rec.State, rec.JobID, err)
	}
}

// publish fans a snapshot out to the job's watchers without blocking.
func (m *Manager) publish(v View) {
	m.mu.Lock()
	j := m.jobs[v.ID]
	if j == nil {
		m.mu.Unlock()
		return
	}
	subs := append([]chan View(nil), j.subs...)
	m.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- v:
		default:
		}
	}
}

func (m *Manager) maxAttemptsOf(j *job) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return j.maxAttempts
}

// backoff is the retry delay after the given (1-based) failed attempt:
// Backoff·2^(attempt-1), capped at MaxBackoff, with ±25% jitter so
// recovered fleets do not retry in lockstep.
func (m *Manager) backoff(attempt int) time.Duration {
	d := m.cfg.Backoff
	for i := 1; i < attempt && d < m.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > m.cfg.MaxBackoff {
		d = m.cfg.MaxBackoff
	}
	if q := int64(d / 4); q > 0 {
		m.jitterMu.Lock()
		d += time.Duration(m.jitter.Int63n(2*q) - q)
		m.jitterMu.Unlock()
	}
	return d
}

// newJobID returns a fresh 16-hex-char job identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random ID: %v", err))
	}
	return hex.EncodeToString(b[:])
}
