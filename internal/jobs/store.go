package jobs

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// Record is one persisted job state transition. The journal of records for
// a job ID, replayed in order, reconstructs the job: the first record (the
// submit) carries the spec, later ones only the state change. Records are
// append-only — a job is never rewritten in place — so any store that can
// append and replay a sequence can back the tier.
type Record struct {
	// JobID identifies the job the transition belongs to.
	JobID string `json:"job"`
	// State is the job's state after this transition.
	State State `json:"state"`
	// Time is when the transition happened.
	Time time.Time `json:"time"`
	// Attempt is the execution attempt the transition belongs to (0 on
	// submit).
	Attempt int `json:"attempt,omitempty"`
	// IdemKey is the client's Idempotency-Key (submit records only).
	IdemKey string `json:"idem_key,omitempty"`
	// Spec is the job's payload (submit records only).
	Spec *Spec `json:"spec,omitempty"`
	// Result is the marshaled solve result (SUCCEEDED records only).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the failure text (FAILED, INTERRUPTED and retry records).
	Error string `json:"error,omitempty"`
}

// Store persists job state transitions. Implementations must serialize
// concurrent Appends; Replay is only called once, at boot, before the
// manager starts executing.
//
// Both implementations honor the jobs.store.append and jobs.store.replay
// fault points (see internal/faultinject), so chaos suites can fail
// appends and corrupt replays against either backend.
type Store interface {
	// Append durably adds one record to the journal.
	Append(ctx context.Context, rec Record) error
	// Replay streams every persisted record, in append order, into fn. It
	// returns how many records were skipped as unreadable (torn tail,
	// checksum mismatch); unreadable records degrade to a logged skip,
	// never a replay failure.
	Replay(ctx context.Context, fn func(Record) error) (skipped int, err error)
	// Close releases the store's resources.
	Close() error
}

// MemStore is the in-memory Store: no durability, same semantics. It backs
// tests and daemons running without a -jobs-dir.
type MemStore struct {
	mu   sync.Mutex
	recs []Record
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append adds the record to the in-memory journal.
func (s *MemStore) Append(ctx context.Context, rec Record) error {
	if err := faultinject.Fire(ctx, faultinject.JobsStoreAppend); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	return nil
}

// Replay streams the journal into fn. Records an armed jobs.store.replay
// corrupt action hits are skipped, mirroring the WAL's torn-record path.
func (s *MemStore) Replay(ctx context.Context, fn func(Record) error) (int, error) {
	if err := faultinject.Fire(ctx, faultinject.JobsStoreReplay); err != nil {
		return 0, err
	}
	s.mu.Lock()
	recs := append([]Record(nil), s.recs...)
	s.mu.Unlock()
	skipped := 0
	for _, rec := range recs {
		if faultinject.Corrupt(ctx, faultinject.JobsStoreReplay) {
			skipped++
			continue
		}
		if err := fn(rec); err != nil {
			return skipped, err
		}
	}
	return skipped, nil
}

// Close is a no-op.
func (s *MemStore) Close() error { return nil }

// Len reports how many records the store holds (test helper).
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}
