package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// newManager builds a started manager with test-friendly timings and the
// given runner, cleaning it up with the test.
func newManager(t *testing.T, store Store, run Runner) *Manager {
	t.Helper()
	m := New(Config{
		Store:       store,
		Run:         run,
		Workers:     2,
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	m.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
	})
	return m
}

// waitState polls until the job reaches the state or the test deadline.
func waitState(t *testing.T, m *Manager, id string, want State) View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := m.Get(context.Background(), id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s): %+v", id, v.State, want, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func okRunner(result string) Runner {
	return func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
		return json.RawMessage(result), nil
	}
}

func TestSubmitRunsToSuccess(t *testing.T) {
	store := NewMemStore()
	m := newManager(t, store, okRunner(`{"ok":true}`))
	v, existed, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil || existed {
		t.Fatalf("Submit = %+v existed=%v err=%v", v, existed, err)
	}
	if v.State != Pending || v.Attempts != 0 {
		t.Errorf("initial view = %+v", v)
	}
	got := waitState(t, m, v.ID, Succeeded)
	if got.Attempts != 1 || string(got.Result) != `{"ok":true}` || got.Error != "" {
		t.Errorf("final view = %+v", got)
	}
	st := m.StatsSnapshot()
	if st.Counters["jobs.submitted"] != 1 || st.Counters["jobs.succeeded"] != 1 {
		t.Errorf("counters = %+v", st.Counters)
	}
	// Journal: submit PENDING, RUNNING, SUCCEEDED.
	if store.Len() != 3 {
		t.Errorf("journal has %d records, want 3", store.Len())
	}
}

func TestIdempotencyKeyDedupes(t *testing.T) {
	var runs atomic.Int64
	m := newManager(t, NewMemStore(), func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
		runs.Add(1)
		return json.RawMessage(`{}`), nil
	})
	v1, existed, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "key-1")
	if err != nil || existed {
		t.Fatal(err)
	}
	v2, existed, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "key-1")
	if err != nil || !existed {
		t.Fatalf("repeat submit: existed=%v err=%v", existed, err)
	}
	if v1.ID != v2.ID {
		t.Errorf("dedup returned different IDs: %s vs %s", v1.ID, v2.ID)
	}
	waitState(t, m, v1.ID, Succeeded)
	if n := runs.Load(); n != 1 {
		t.Errorf("runner executed %d times, want 1", n)
	}
	if c := m.StatsSnapshot().Counters["jobs.dedup"]; c != 1 {
		t.Errorf("jobs.dedup = %d, want 1", c)
	}
}

func TestRetryWithBackoffThenSuccess(t *testing.T) {
	var runs atomic.Int64
	m := newManager(t, NewMemStore(), func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
		if runs.Add(1) < 3 {
			return nil, fmt.Errorf("transient failure %d", attempt)
		}
		return json.RawMessage(`{"ok":1}`), nil
	})
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, Succeeded)
	if got.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", got.Attempts)
	}
	if c := m.StatsSnapshot().Counters["jobs.retries"]; c != 2 {
		t.Errorf("jobs.retries = %d, want 2", c)
	}
}

func TestRetryBudgetExhaustedFails(t *testing.T) {
	m := newManager(t, NewMemStore(), func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
		return nil, errors.New("always down")
	})
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, Failed)
	if got.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3 (the full budget)", got.Attempts)
	}
	if got.Error == "" || got.Result != nil {
		t.Errorf("failed view = %+v", got)
	}
}

func TestTerminalErrorSkipsRetries(t *testing.T) {
	var runs atomic.Int64
	m := newManager(t, NewMemStore(), func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
		runs.Add(1)
		return nil, Terminal(errors.New("design is garbage"))
	})
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, Failed)
	if got.Attempts != 1 || runs.Load() != 1 {
		t.Errorf("terminal error retried: attempts=%d runs=%d", got.Attempts, runs.Load())
	}
}

func TestPanicInRunnerIsRetryable(t *testing.T) {
	var runs atomic.Int64
	m := newManager(t, NewMemStore(), func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
		if runs.Add(1) == 1 {
			panic("solver exploded")
		}
		return json.RawMessage(`{}`), nil
	})
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, Succeeded)
	if got.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (panic then success)", got.Attempts)
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	m := New(Config{
		Store:   NewMemStore(),
		Workers: 1, // one worker so the second job stays PENDING
		Backoff: time.Millisecond,
		Run: func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
			started <- "go"
			select {
			case <-release:
				return json.RawMessage(`{}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	m.Start()
	defer close(release)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
	})

	ctx := context.Background()
	running, _, err := m.Submit(ctx, Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := m.Submit(ctx, Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}

	// The queued job cancels in place, without ever running.
	if v, err := m.Cancel(ctx, queued.ID); err != nil || v.State != Canceled {
		t.Fatalf("cancel queued: %+v, %v", v, err)
	}
	// The running job cancels once its attempt unwinds, and is not
	// retried.
	if _, err := m.Cancel(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, running.ID, Canceled)
	if got.Attempts != 1 {
		t.Errorf("canceled running job retried: %+v", got)
	}
	// Canceling a terminal job is a no-op.
	if v, err := m.Cancel(ctx, running.ID); err != nil || v.State != Canceled {
		t.Errorf("re-cancel: %+v, %v", v, err)
	}
	if _, err := m.Cancel(ctx, "no-such-id"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown = %v, want ErrNotFound", err)
	}
}

func TestBeginDrainStopsPendingPickup(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	store := NewMemStore()
	m := New(Config{
		Store:   store,
		Workers: 1,
		Run: func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
			started <- struct{}{}
			select {
			case <-release:
				return json.RawMessage(`{}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	m.Start()

	ctx := context.Background()
	first, _, err := m.Submit(ctx, Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	second, _, err := m.Submit(ctx, Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}

	m.BeginDrain()
	close(release) // the in-flight attempt finishes...
	waitState(t, m, first.ID, Succeeded)

	// ...but the pending job must NOT be picked up: drain means finish
	// in-flight, persist the rest.
	time.Sleep(20 * time.Millisecond)
	if v, _ := m.Get(ctx, second.ID); v.State != Pending || v.Attempts != 0 {
		t.Errorf("drain picked up pending work: %+v", v)
	}
	// New submits are refused outright.
	if _, _, err := m.Submit(ctx, Spec{Design: json.RawMessage(`{}`)}, ""); !errors.Is(err, ErrDraining) {
		t.Errorf("submit while draining = %v, want ErrDraining", err)
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := m.Drain(dctx); err != nil {
		t.Errorf("Drain = %v", err)
	}
}

func TestWatchDeliversTransitions(t *testing.T) {
	m := newManager(t, NewMemStore(), okRunner(`{}`))
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	ch, stop, err := m.Watch(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	deadline := time.After(10 * time.Second)
	var states []State
	for {
		select {
		case got := <-ch:
			states = append(states, got.State)
			if got.State.Terminal() {
				if got.State != Succeeded {
					t.Fatalf("terminal state = %s, want SUCCEEDED (saw %v)", got.State, states)
				}
				return
			}
		case <-deadline:
			t.Fatalf("no terminal event (saw %v)", states)
		}
	}
}

func TestLiveReportOnlyWhileRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	m := newManager(t, NewMemStore(), func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
		rec.Add("test.progress", 7)
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	})
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	rep, ok := m.LiveReport(v.ID)
	if !ok || rep.Counters["test.progress"] != 7 {
		t.Errorf("live report = %+v ok=%v", rep.Counters, ok)
	}
	close(release)
	waitState(t, m, v.ID, Succeeded)
	if _, ok := m.LiveReport(v.ID); ok {
		t.Error("LiveReport still ok after the job finished")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	m := New(Config{
		Store:       NewMemStore(),
		Run:         okRunner(`{}`),
		Backoff:     100 * time.Millisecond,
		MaxBackoff:  400 * time.Millisecond,
		MaxAttempts: 10,
	})
	for attempt, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		9: 400 * time.Millisecond, // capped
	} {
		d := m.backoff(attempt)
		// ±25% jitter around the nominal value.
		if d < want*3/4 || d > want*5/4 {
			t.Errorf("backoff(%d) = %s, want %s ±25%%", attempt, d, want)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	m := newManager(t, NewMemStore(), okRunner(`{}`))
	if st := m.StatsSnapshot(); !st.Ready && st.Jobs != 0 {
		// Ready may race the Start goroutine; just exercise the call.
		t.Logf("early stats: %+v", st)
	}
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, Succeeded)
	st := m.StatsSnapshot()
	if !st.Ready || st.Draining || st.Jobs != 1 || st.Running != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGetUnknownJob(t *testing.T) {
	m := newManager(t, NewMemStore(), okRunner(`{}`))
	if _, err := m.Get(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown = %v, want ErrNotFound", err)
	}
}

func TestTerminalHelper(t *testing.T) {
	base := errors.New("root cause")
	if !IsTerminal(Terminal(base)) {
		t.Error("Terminal not detected")
	}
	if IsTerminal(base) {
		t.Error("plain error reported terminal")
	}
	if IsTerminal(nil) || Terminal(nil) != nil {
		t.Error("nil mishandled")
	}
	// Terminal wrapping is transparent to errors.Is and survives fmt
	// wrapping.
	wrapped := fmt.Errorf("attempt 2: %w", Terminal(base))
	if !IsTerminal(wrapped) || !errors.Is(wrapped, base) {
		t.Errorf("wrapped terminal lost: IsTerminal=%v Is=%v", IsTerminal(wrapped), errors.Is(wrapped, base))
	}
}
