package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestCrashRecoveryRetriesInterruptedJob is the kill-and-restart scenario
// at the package level: a manager with a job RUNNING in its WAL is
// abandoned without any shutdown (as a SIGKILL would), and a second
// manager booted on the same directory must recover the job as
// INTERRUPTED, re-run it and succeed with Attempts > 1.
func TestCrashRecoveryRetriesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	w1, err := OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	started := make(chan struct{})
	m1 := New(Config{
		Store:   w1,
		Workers: 1,
		Run: func(ctx context.Context, spec Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
			close(started)
			<-block // hangs forever: the "crash" leaves the job RUNNING
			return nil, errors.New("unreachable")
		},
	})
	m1.Start()
	v, _, err := m1.Submit(ctx, Spec{Design: json.RawMessage(`{"name":"d"}`)}, "crash-key")
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// No Drain, no Close: the process is "gone". Unblock the stuck runner
	// at test end so its goroutine can exit.
	t.Cleanup(func() { close(block) })

	w2, err := OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	m2 := newManager(t, w2, okRunner(`{"recovered":true}`))
	got := waitState(t, m2, v.ID, Succeeded)
	if got.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (interrupted attempt + recovery run)", got.Attempts)
	}
	if string(got.Result) != `{"recovered":true}` {
		t.Errorf("result = %s", got.Result)
	}
	st := m2.StatsSnapshot()
	if st.Counters["jobs.recovered"] != 1 || st.Counters["jobs.interrupted"] != 1 {
		t.Errorf("recovery counters = %+v", st.Counters)
	}
	// The idempotency key recovered with the job: a client retrying its
	// submit after the crash gets the same job back.
	dup, existed, err := m2.Submit(ctx, Spec{Design: json.RawMessage(`{"name":"d"}`)}, "crash-key")
	if err != nil || !existed || dup.ID != v.ID {
		t.Errorf("post-recovery dedup: %+v existed=%v err=%v", dup, existed, err)
	}
}

// TestCrashRecoveryExhaustedBudgetFails: a job that was already on its
// last attempt when the daemon died must not loop forever — recovery
// marks it FAILED.
func TestCrashRecoveryExhaustedBudgetFails(t *testing.T) {
	store := NewMemStore()
	ctx := context.Background()
	// Seed a journal: submitted, then crashed on attempt 2 of 2.
	spec := Spec{Design: json.RawMessage(`{}`)}
	for _, rec := range []Record{
		{JobID: "j1", State: Pending, Time: time.Now(), Spec: &spec},
		{JobID: "j1", State: Running, Time: time.Now(), Attempt: 2},
	} {
		if err := store.Append(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	m := New(Config{Store: store, Run: okRunner(`{}`), MaxAttempts: 2, Backoff: time.Millisecond})
	m.Start()
	got := waitState(t, m, "j1", Failed)
	if got.Attempts != 2 || got.Error == "" {
		t.Errorf("exhausted recovery = %+v", got)
	}
}

// TestFaultJobsRunRetriesThenSucceeds drives the retry path with the
// jobs.run fault point: the first two attempts fail with an injected
// error, the third runs clean.
func TestFaultJobsRunRetriesThenSucceeds(t *testing.T) {
	plan, err := faultinject.ParseSpec("jobs.run=error:injected chaos#2")
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{
		Store:       NewMemStore(),
		Run:         okRunner(`{}`),
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		BaseContext: faultinject.With(context.Background(), plan),
	})
	m.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
	})
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, Succeeded)
	if got.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", got.Attempts)
	}
	if fired := plan.Fired(faultinject.JobsRun); fired != 2 {
		t.Errorf("jobs.run fired %d times, want 2", fired)
	}
}

// TestFaultReplayCorruptDegradesToSkip: a corrupt record during boot
// replay is skipped and counted — never a boot failure. The corrupted
// record here is the submit itself, so its later transitions become
// orphans and the job is simply absent after boot.
func TestFaultReplayCorruptDegradesToSkip(t *testing.T) {
	store := NewMemStore()
	ctx := context.Background()
	spec := Spec{Design: json.RawMessage(`{}`)}
	for _, rec := range []Record{
		{JobID: "gone", State: Pending, Time: time.Now(), Spec: &spec},
		{JobID: "kept", State: Pending, Time: time.Now(), Spec: &spec},
	} {
		if err := store.Append(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	// Activation 1 is the Fire at the top of Replay; the first per-record
	// Corrupt check is activation 2, so corrupt exactly the first record.
	plan := faultinject.NewPlan().Arm(faultinject.JobsStoreReplay, faultinject.Action{Corrupt: true, After: 1, Times: 1})
	m := newManagerWithBase(t, store, okRunner(`{}`), faultinject.With(ctx, plan))
	if _, err := m.Get(ctx, "gone"); !errors.Is(err, ErrNotFound) {
		t.Errorf("corrupted submit survived replay: %v", err)
	}
	waitState(t, m, "kept", Succeeded)
	st := m.StatsSnapshot()
	if st.Counters["jobs.replay.skipped"] != 1 || st.Counters["jobs.replay.records"] != 1 {
		t.Errorf("replay counters = %+v", st.Counters)
	}
}

// TestFaultReplayErrorStillBoots: even a replay that aborts with an
// injected error must leave the manager ready (availability over
// durability at boot).
func TestFaultReplayErrorStillBoots(t *testing.T) {
	plan, err := faultinject.ParseSpec("jobs.store.replay=error:journal on fire")
	if err != nil {
		t.Fatal(err)
	}
	m := newManagerWithBase(t, NewMemStore(), okRunner(`{}`), faultinject.With(context.Background(), plan))
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, Succeeded)
}

// TestFaultReplayDelayGatesReadiness: while replay stalls, Ready is
// false and every manager method waits — the /readyz contract.
func TestFaultReplayDelayGatesReadiness(t *testing.T) {
	plan, err := faultinject.ParseSpec("jobs.store.replay=delay:150ms")
	if err != nil {
		t.Fatal(err)
	}
	m := newManagerWithBase(t, NewMemStore(), okRunner(`{}`), faultinject.With(context.Background(), plan))
	if m.Ready() {
		t.Error("ready while replay is stalled")
	}
	// A short-deadline call gives up during the stall...
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := m.Get(sctx, "x"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Get during stalled replay = %v, want deadline exceeded", err)
	}
	// ...a patient one waits replay out.
	if _, err := m.Get(context.Background(), "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after replay = %v, want ErrNotFound", err)
	}
	if !m.Ready() {
		t.Error("not ready after replay finished")
	}
}

// TestFaultAppendErrorFailsSubmit: when the submit record cannot be
// persisted the job is refused — accepting it would lose it on restart.
func TestFaultAppendErrorFailsSubmit(t *testing.T) {
	plan, err := faultinject.ParseSpec("jobs.store.append=error:disk full#1")
	if err != nil {
		t.Fatal(err)
	}
	m := newManagerWithBase(t, NewMemStore(), okRunner(`{}`), faultinject.With(context.Background(), plan))
	ctx := context.Background()
	if _, _, err := m.Submit(ctx, Spec{Design: json.RawMessage(`{}`)}, "k"); err == nil {
		t.Fatal("submit succeeded over a failed append")
	}
	if c := m.StatsSnapshot().Counters["jobs.store.append.errors"]; c != 1 {
		t.Errorf("jobs.store.append.errors = %d, want 1", c)
	}
	// The rollback released the idempotency key: the retry (fault
	// exhausted by #1) succeeds with a fresh job.
	v, existed, err := m.Submit(ctx, Spec{Design: json.RawMessage(`{}`)}, "k")
	if err != nil || existed {
		t.Fatalf("retry after append failure: existed=%v err=%v", existed, err)
	}
	waitState(t, m, v.ID, Succeeded)
}

// TestFaultAppendErrorMidRunDegrades: an append failure on a transition
// record (not the submit) degrades durability, not availability — the
// job still completes in memory.
func TestFaultAppendErrorMidRunDegrades(t *testing.T) {
	// Skip the submit append (activation 1), fail the RUNNING append
	// (activation 2) only.
	plan, err := faultinject.ParseSpec("jobs.store.append=error:disk blip@1#1")
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	m := newManagerWithBase(t, store, okRunner(`{"ok":true}`), faultinject.With(context.Background(), plan))
	v, _, err := m.Submit(context.Background(), Spec{Design: json.RawMessage(`{}`)}, "")
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, v.ID, Succeeded)
	if got.Attempts != 1 {
		t.Errorf("append blip caused retries: %+v", got)
	}
	if c := m.StatsSnapshot().Counters["jobs.store.append.errors"]; c != 1 {
		t.Errorf("jobs.store.append.errors = %d, want 1", c)
	}
	// Journal holds submit + SUCCEEDED; the RUNNING record was lost.
	if store.Len() != 2 {
		t.Errorf("journal has %d records, want 2", store.Len())
	}
}

// newManagerWithBase is newManager with a caller-supplied base context
// (the fault-plan seam).
func newManagerWithBase(t *testing.T, store Store, run Runner, base context.Context) *Manager {
	t.Helper()
	m := New(Config{
		Store:       store,
		Run:         run,
		Workers:     2,
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		BaseContext: base,
		Logf:        t.Logf,
	})
	m.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = m.Drain(ctx)
	})
	return m
}
