package benchgen

import (
	"testing"

	"repro/internal/ident"
)

func TestPresetsValidateAndMatchStats(t *testing.T) {
	wants := []struct {
		n, sg, npMax, wMax int
	}{
		{1, 230, 2, 75},
		{2, 492, 2, 136},
		{3, 234, 2, 70},
		{4, 146, 2, 147},
		{5, 587, 14, 77},
		{6, 409, 9, 256},
		{7, 171, 7, 147},
	}
	for _, w := range wants {
		spec := Industry(w.n)
		d := spec.Generate()
		if err := d.Validate(); err != nil {
			t.Fatalf("Industry%d invalid: %v", w.n, err)
		}
		if len(d.Groups) != w.sg {
			t.Errorf("Industry%d #SG = %d, want %d", w.n, len(d.Groups), w.sg)
		}
		if got := d.MaxPins(); got > w.npMax {
			t.Errorf("Industry%d Np_max = %d, want <= %d", w.n, got, w.npMax)
		}
		if got := d.MaxWidth(); got != w.wMax {
			t.Errorf("Industry%d W_max = %d, want %d", w.n, got, w.wMax)
		}
		// Net counts land within 30% of the paper's (exact counts depend
		// on the random width draw).
		paperNets := map[int]int{1: 3722, 2: 12239, 3: 4402, 4: 3446, 5: 11185, 6: 7278, 7: 4087}[w.n]
		if got := d.NumNets(); got < paperNets*7/10 || got > paperNets*13/10 {
			t.Errorf("Industry%d #Net = %d, want within 30%% of %d", w.n, got, paperNets)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Industry(1).Generate()
	b := Industry(1).Generate()
	if a.NumNets() != b.NumNets() || a.NumPins() != b.NumPins() {
		t.Fatal("same spec produced different designs")
	}
	for gi := range a.Groups {
		for bi := range a.Groups[gi].Bits {
			for pi := range a.Groups[gi].Bits[bi].Pins {
				if a.Groups[gi].Bits[bi].Pins[pi].Loc != b.Groups[gi].Bits[bi].Pins[pi].Loc {
					t.Fatalf("pin mismatch at %d/%d/%d", gi, bi, pi)
				}
			}
		}
	}
}

func TestGroupsIdentifyIntoFewObjects(t *testing.T) {
	// The generator builds at most 2 styles (+1 short-sink singleton), so
	// identification should find <= 4 objects per group.
	d := Industry(1).Generate()
	multi := 0
	for gi := range d.Groups {
		objs := ident.Partition(gi, &d.Groups[gi])
		if len(objs) > 4 {
			t.Fatalf("group %d identified into %d objects", gi, len(objs))
		}
		if len(objs) > 1 {
			multi++
		}
	}
	// TwoStyleFrac 0.5 means roughly half the groups are multi-object.
	if multi < len(d.Groups)/4 {
		t.Errorf("only %d of %d groups multi-object; Avg(Reg) would be trivial", multi, len(d.Groups))
	}
}

func TestMultipinPreset(t *testing.T) {
	d := Industry(7).Generate()
	if d.MaxPins() < 3 {
		t.Errorf("Industry7 should contain multipin bits, Np_max = %d", d.MaxPins())
	}
}

func TestScale(t *testing.T) {
	s := Scale(Industry(2), 0.2)
	d := s.Generate()
	if err := d.Validate(); err != nil {
		t.Fatalf("scaled design invalid: %v", err)
	}
	if len(d.Groups) >= 492 {
		t.Error("scaling did not reduce group count")
	}
	if s.W >= 192 {
		t.Error("scaling did not shrink grid")
	}
}

func TestScalePanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scale(Industry(1), 0)
}

func TestWithExtraPins(t *testing.T) {
	s := WithExtraPins(Industry(2), 8, 0.5)
	d := s.Generate()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.MaxPins() < 3 {
		t.Error("extra pins not inserted")
	}
	if d.NumPins() <= Industry(2).Generate().NumPins() {
		t.Error("pseudo pins should increase total pin count")
	}
}

func TestScalabilitySeries(t *testing.T) {
	series := ScalabilitySeries()
	if len(series) != 4 {
		t.Fatalf("series = %d entries, want 4", len(series))
	}
	last := series[len(series)-1]
	if last.MaxPins < 3 {
		t.Error("enlarged Industry2 should be multipin")
	}
}

func TestIndustryPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Industry(8)
}

func TestShortSinkBitsPresent(t *testing.T) {
	d := Industry(7).Generate() // ShortSinkFrac 0.1
	found := false
	for gi := range d.Groups {
		g := &d.Groups[gi]
		if len(g.Bits) < 3 {
			continue
		}
		last := &g.Bits[len(g.Bits)-1]
		first := &g.Bits[0]
		if len(last.Pins) == 2 && len(first.Pins) >= 2 {
			dLast := absInt(last.Pins[1].Loc.X-last.Pins[0].Loc.X) + absInt(last.Pins[1].Loc.Y-last.Pins[0].Loc.Y)
			dFirst := absInt(first.Pins[1].Loc.X-first.Pins[0].Loc.X) + absInt(first.Pins[1].Loc.Y-first.Pins[0].Loc.Y)
			if dLast*3 < dFirst {
				found = true
			}
		}
	}
	if !found {
		t.Error("no short-sink bits generated despite ShortSinkFrac > 0")
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
