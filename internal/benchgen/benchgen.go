// Package benchgen generates synthetic signal-group routing benchmarks.
// The paper evaluates on seven proprietary 10 nm industrial designs
// (Industry1–Industry7) of which only aggregate statistics are published:
// group count (#SG), net count (#Net), maximum pins per net (Np_max) and
// maximum group width (W_max), plus a qualitative congestion profile. The
// presets here reproduce those knobs with deterministic seeds: groups are
// placed with adjacent pins (Definition 1), a share of groups carries two
// routing styles so regularity is non-trivial, multipin benchmarks add
// extra same-direction sinks, and congested presets shrink grid capacity.
package benchgen

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/signal"
)

// Spec parametrizes one generated benchmark.
type Spec struct {
	// Name labels the design.
	Name string
	// Seed drives all randomness; same spec -> same design.
	Seed int64
	// W, H are grid dimensions in G-cells.
	W, H int
	// NumLayers and EdgeCap define the metal stack.
	NumLayers, EdgeCap int
	// NumGroups is the number of signal groups (#SG).
	NumGroups int
	// AvgWidth is the mean bits per group; widths are drawn around it.
	AvgWidth int
	// MaxWidth caps group width; exactly one group gets this width (W_max).
	MaxWidth int
	// MaxPins is the maximum pins per bit (Np_max). 2 = classic two-pin.
	MaxPins int
	// MultipinFrac is the fraction of groups whose bits get extra sinks
	// (only meaningful when MaxPins > 2).
	MultipinFrac float64
	// TwoStyleFrac is the fraction of groups split into two routing
	// styles (two identification objects), which makes Avg(Reg)
	// non-trivial.
	TwoStyleFrac float64
	// MixedDirFrac is the fraction of groups whose second style runs
	// perpendicular to the first (Fig. 1's branching groups). Such styles
	// share no RC, so they pull Avg(Reg) below 100 % the way the paper's
	// real designs do.
	MixedDirFrac float64
	// ShortSinkFrac is the fraction of groups given one bit with a much
	// closer sink, seeding source-to-sink distance violations (Fig. 4(b)).
	ShortSinkFrac float64
	// CenterBias is the fraction of groups placed around the grid center
	// instead of uniformly. Industrial floorplans concentrate signal
	// groups near macrocell channels; the bias creates the local hotspots
	// visible in the paper's congestion maps (Figs. 11 and 12).
	CenterBias float64
	// Pitch scales G-cell wirelength into report units.
	Pitch int
}

// Generate materializes the benchmark design.
func (s Spec) Generate() *signal.Design {
	r := rand.New(rand.NewSource(s.Seed))
	d := &signal.Design{
		Name: s.Name,
		Grid: signal.GridSpec{W: s.W, H: s.H, NumLayers: s.NumLayers, EdgeCap: s.EdgeCap, Pitch: s.Pitch},
	}
	for gi := 0; gi < s.NumGroups; gi++ {
		width := s.groupWidth(r, gi)
		g := s.makeGroup(r, gi, width)
		d.Groups = append(d.Groups, g)
	}
	return d
}

// groupWidth draws a group width around AvgWidth; group 0 gets MaxWidth.
func (s Spec) groupWidth(r *rand.Rand, gi int) int {
	if gi == 0 && s.MaxWidth > 0 {
		return s.MaxWidth
	}
	w := s.AvgWidth/2 + r.Intn(s.AvgWidth+1)
	if w < 2 {
		w = 2
	}
	if s.MaxWidth > 0 && w > s.MaxWidth {
		w = s.MaxWidth
	}
	return w
}

// makeGroup builds one signal group of the given width: a bundle of bits
// with adjacent pins, horizontal or vertical trunk direction, optionally
// two styles, extra sinks, and a short-sink bit.
func (s Spec) makeGroup(r *rand.Rand, gi, width int) signal.Group {
	g := signal.Group{Name: fmt.Sprintf("sg%03d", gi)}
	horizontal := r.Intn(2) == 0
	trunk := 8 + r.Intn(s.trunkMax())
	twoStyle := r.Float64() < s.TwoStyleFrac
	mixedDir := r.Float64() < s.MixedDirFrac
	multipin := s.MaxPins > 2 && (r.Float64() < s.MultipinFrac || gi == 1)
	shortSink := r.Float64() < s.ShortSinkFrac

	// Group origin: the bundle occupies `width` adjacent rows (or columns)
	// and `trunk` cells along the routing direction. Center-biased groups
	// cluster around the grid middle to form hotspots.
	var ox, oy int
	spanX, spanY := s.W-trunk-6, s.H-width-4
	if !horizontal {
		spanX, spanY = s.W-width-4, s.H-trunk-6
	}
	if r.Float64() < s.CenterBias {
		ox = 1 + clampInt(int(float64(spanX)/2+r.NormFloat64()*float64(spanX)/7), 0, max(0, spanX-1))
		oy = 1 + clampInt(int(float64(spanY)/2+r.NormFloat64()*float64(spanY)/7), 0, max(0, spanY-1))
	} else {
		ox = 1 + r.Intn(max(1, spanX))
		oy = 1 + r.Intn(max(1, spanY))
	}

	// Second-style bits get an extra jog at the sink end.
	styleSplit := width
	if twoStyle && width >= 4 {
		styleSplit = width / 2
	}
	jog := 2 + r.Intn(3)

	// Extra sinks for multipin bits: same relative offsets for every bit
	// in a style so identification groups them.
	// Extra-sink counts are light-tailed (most multipin bits have 3-5
	// pins); group 1 carries the full Np_max so the benchmark statistic
	// holds.
	extraSinks := 0
	if multipin {
		if gi == 1 {
			extraSinks = s.MaxPins - 2
		} else {
			extraSinks = 1 + r.Intn(min(3, s.MaxPins-2))
		}
	}
	extraOff := make([]geom.Point, extraSinks)
	for e := range extraOff {
		along := 3 + r.Intn(max(2, trunk-3))
		across := 2 + r.Intn(4)
		if horizontal {
			extraOff[e] = geom.Pt(along, across)
		} else {
			extraOff[e] = geom.Pt(across, along)
		}
	}

	shortIdx := -1
	if shortSink && width >= 3 {
		shortIdx = width - 1
	}

	for b := 0; b < width; b++ {
		var drv, snk geom.Point
		if horizontal {
			drv = geom.Pt(ox, oy+b)
			snk = geom.Pt(ox+trunk, oy+b)
		} else {
			drv = geom.Pt(ox+b, oy)
			snk = geom.Pt(ox+b, oy+trunk)
		}
		if b >= styleSplit {
			if mixedDir {
				// Perpendicular second style: sinks branch off across the
				// trunk direction (Fig. 1's Group3 shape), fanned out over
				// distinct columns/rows so their trunks can run in parallel.
				k := b - styleSplit
				if horizontal {
					snk = geom.Pt(ox+3+k, oy+width+2+trunk/3)
				} else {
					snk = geom.Pt(ox+width+2+trunk/3, oy+3+k)
				}
			} else if horizontal {
				// Second style: sink jogs across the trunk direction.
				snk = snk.Add(geom.Pt(0, jog))
			} else {
				snk = snk.Add(geom.Pt(jog, 0))
			}
		}
		if b == shortIdx {
			// Short-sink bit: the sink sits much closer to the driver,
			// seeding a distance-deviation violation. Keep the SVs equal
			// (same direction) so the bit stays in the object.
			if horizontal {
				snk = geom.Pt(ox+max(2, trunk/5), oy+b)
			} else {
				snk = geom.Pt(ox+b, oy+max(2, trunk/5))
			}
		}
		// Clamping near the grid edge can collapse pins onto each other;
		// bits must not carry duplicate pin locations (Design.Validate
		// rejects them), so the sink is nudged off a coincident driver and
		// coincident extra sinks are dropped.
		cdrv, csnk := s.clamp(drv), s.clamp(snk)
		if csnk == cdrv {
			csnk = s.nudge(csnk, cdrv)
		}
		bit := signal.Bit{
			Name:   fmt.Sprintf("%s[%d]", g.Name, b),
			Driver: 0,
			Pins:   []signal.Pin{{Loc: cdrv}, {Loc: csnk}},
		}
		if b != shortIdx {
			seen := map[geom.Point]bool{cdrv: true, csnk: true}
			for _, off := range extraOff {
				loc := s.clamp(drv.Add(off))
				if seen[loc] {
					continue
				}
				seen[loc] = true
				bit.Pins = append(bit.Pins, signal.Pin{Loc: loc})
			}
		}
		g.Bits = append(g.Bits, bit)
	}
	return g
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (s Spec) trunkMax() int {
	m := s.W
	if s.H < m {
		m = s.H
	}
	m = m/2 - 8
	if m < 4 {
		m = 4
	}
	return m
}

// nudge moves p one cell to the first in-bounds neighbor distinct from
// avoid, deterministically (right, left, up, down).
func (s Spec) nudge(p, avoid geom.Point) geom.Point {
	for _, q := range []geom.Point{
		geom.Pt(p.X+1, p.Y), geom.Pt(p.X-1, p.Y),
		geom.Pt(p.X, p.Y+1), geom.Pt(p.X, p.Y-1),
	} {
		if q.X >= 0 && q.X < s.W && q.Y >= 0 && q.Y < s.H && q != avoid {
			return q
		}
	}
	return p
}

func (s Spec) clamp(p geom.Point) geom.Point {
	x, y := p.X, p.Y
	if x < 0 {
		x = 0
	}
	if x >= s.W {
		x = s.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= s.H {
		y = s.H - 1
	}
	return geom.Pt(x, y)
}

// Scale shrinks a spec's group count (and grid area proportionally) by
// factor f in (0, 1], producing a faster benchmark with the same character.
func Scale(s Spec, f float64) Spec {
	if f <= 0 || f > 1 {
		panic("benchgen: scale factor must be in (0,1]")
	}
	out := s
	out.Name = fmt.Sprintf("%s@%.2f", s.Name, f)
	out.NumGroups = max(1, int(float64(s.NumGroups)*f))
	shrink := 0.35 + 0.65*f // grid shrinks slower than group count
	out.W = max(24, int(float64(s.W)*shrink))
	out.H = max(24, int(float64(s.H)*shrink))
	// Wide groups must still fit the shrunken grid.
	lim := min(out.W, out.H) - 8
	if out.MaxWidth > lim {
		out.MaxWidth = lim
	}
	if out.AvgWidth > out.MaxWidth/2 && out.MaxWidth >= 4 {
		out.AvgWidth = out.MaxWidth / 2
	}
	return out
}

// WithExtraPins returns a spec with more multipin content — the paper's
// scalability study (Fig. 13(b)) inserts pseudo pins into Industry2-based
// benchmarks to stress multipin routing.
func WithExtraPins(s Spec, maxPins int, frac float64) Spec {
	out := s
	out.Name = s.Name + "+mp"
	out.MaxPins = maxPins
	out.MultipinFrac = frac
	return out
}
