package benchgen

import (
	"encoding/json"
	"testing"

	"repro/internal/signal"
)

// TestDegeneratePresetsValidate: every named preset must produce a design
// that passes full structural validation — these get fired at a live
// daemon, where a Validate failure is a 400, not a scenario.
func TestDegeneratePresetsValidate(t *testing.T) {
	for _, name := range DegeneratePresets() {
		d, err := Degenerate(name, 42)
		if err != nil {
			t.Fatalf("Degenerate(%q): %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("preset %q: %v", name, err)
		}
	}
}

// TestDegenerateDeterministic: same name+seed must produce byte-identical
// designs — the scenario engine's reproducibility contract rests on it.
func TestDegenerateDeterministic(t *testing.T) {
	for _, name := range DegeneratePresets() {
		a, _ := Degenerate(name, 7)
		b, _ := Degenerate(name, 7)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Errorf("preset %q: same seed produced different designs", name)
		}
		c, _ := Degenerate(name, 8)
		cj, _ := json.Marshal(c)
		if string(aj) == string(cj) && name != "maze" && name != "cliff" && name != "widebus" {
			// Fully deterministic shapes (no randomness beyond placement)
			// may collide across seeds; the randomized ones must not.
			t.Errorf("preset %q: different seeds produced identical designs", name)
		}
	}
}

// TestDegenerateShapes pins the properties each preset exists for.
func TestDegenerateShapes(t *testing.T) {
	sb := SingleBitGroups(1, 24, 48, 48)
	for _, g := range sb.Groups {
		if len(g.Bits) != 1 {
			t.Fatalf("single-bit group %q has %d bits", g.Name, len(g.Bits))
		}
	}

	wb := WideBus(1, 1000)
	if got := wb.MaxWidth(); got != 1000 {
		t.Fatalf("widebus MaxWidth = %d, want 1000", got)
	}
	if err := wb.Validate(); err != nil {
		t.Fatalf("widebus invalid: %v", err)
	}

	mz := Maze(1, 64, 64, 4)
	if len(mz.Grid.Blockages) == 0 {
		t.Fatal("maze has no blockages")
	}

	cliff := CapacityCliff(1, 6)
	if cliff.Grid.EdgeCap > 4 {
		t.Fatalf("cliff EdgeCap = %d, want a tight capacity", cliff.Grid.EdgeCap)
	}

	pd := PinDense(1, 28)
	var lo, hi = pd.Grid.W, 0
	for _, g := range pd.Groups {
		for _, b := range g.Bits {
			for _, p := range b.Pins {
				if p.Loc.X < lo {
					lo = p.Loc.X
				}
				if p.Loc.X > hi {
					hi = p.Loc.X
				}
			}
		}
	}
	if hi-lo > pd.Grid.W/2 {
		t.Fatalf("pindense pins span %d columns, want a hotspot", hi-lo)
	}
	_ = signal.Design{}
}
