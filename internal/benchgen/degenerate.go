package benchgen

// Degenerate and adversarial presets. The Industry presets reproduce the
// paper's published benchmark statistics; production traffic is nastier.
// The builders here emit the shapes a scenario run throws at streakd:
// single-bit groups (the narrowest legal group), very wide buses (W_max
// far beyond the paper's 256), pin-dense hotspots, serpentine blockage
// mazes that force long detours, and capacity cliffs where demand sits
// just at the edge-capacity supply. All of them are deterministic in the
// seed and pass signal.Design Validate, so they can be fired at a live
// daemon or diffed/mutated by the churn engine like any other design.

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/signal"
)

// DegeneratePresets lists the named degenerate/adversarial builders, for
// cmd/benchgen -preset and the scenario engine. Sorted.
func DegeneratePresets() []string {
	names := make([]string, 0, len(degenerateBuilders))
	for name := range degenerateBuilders {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Degenerate builds the named preset with the seed. Unknown names error
// and list what exists.
func Degenerate(name string, seed int64) (*signal.Design, error) {
	b, ok := degenerateBuilders[name]
	if !ok {
		return nil, fmt.Errorf("benchgen: unknown preset %q (have: %v)", name, DegeneratePresets())
	}
	return b(seed), nil
}

var degenerateBuilders = map[string]func(seed int64) *signal.Design{
	"single-bit": func(seed int64) *signal.Design { return SingleBitGroups(seed, 24, 48, 48) },
	"widebus":    func(seed int64) *signal.Design { return WideBus(seed, 1000) },
	"pindense":   func(seed int64) *signal.Design { return PinDense(seed, 28) },
	"maze":       func(seed int64) *signal.Design { return Maze(seed, 64, 64, 4) },
	"cliff":      func(seed int64) *signal.Design { return CapacityCliff(seed, 6) },
}

// SingleBitGroups builds n groups of exactly one two-pin bit each — the
// narrowest group Definition 1 admits. Identification, regularity and
// selection must all survive the width-1 edge case.
func SingleBitGroups(seed int64, n, w, h int) *signal.Design {
	r := rand.New(rand.NewSource(seed))
	d := &signal.Design{
		Name: fmt.Sprintf("single-bit-%d", seed),
		Grid: signal.GridSpec{W: w, H: h, NumLayers: 4, EdgeCap: 8, Pitch: 5},
	}
	for gi := 0; gi < n; gi++ {
		trunk := 4 + r.Intn(max(4, min(w, h)/2))
		horizontal := r.Intn(2) == 0
		var drv, snk geom.Point
		if horizontal {
			drv = geom.Pt(1+r.Intn(w-trunk-2), 1+r.Intn(h-2))
			snk = drv.Add(geom.Pt(trunk, 0))
		} else {
			drv = geom.Pt(1+r.Intn(w-2), 1+r.Intn(h-trunk-2))
			snk = drv.Add(geom.Pt(0, trunk))
		}
		name := fmt.Sprintf("sb%03d", gi)
		d.Groups = append(d.Groups, signal.Group{
			Name: name,
			Bits: []signal.Bit{{
				Name: name + "[0]",
				Pins: []signal.Pin{{Loc: drv}, {Loc: snk}},
			}},
		})
	}
	return d
}

// WideBus builds one group of `width` parallel bits — far wider than the
// paper's W_max of 256 — plus two ordinary groups so selection still has
// inter-group competition. The grid is sized to fit the bus.
func WideBus(seed int64, width int) *signal.Design {
	if width < 1 {
		width = 1
	}
	r := rand.New(rand.NewSource(seed))
	h := width + 10
	w := 48
	trunk := 32
	d := &signal.Design{
		Name: fmt.Sprintf("widebus-%d-%d", width, seed),
		Grid: signal.GridSpec{W: w, H: h, NumLayers: 4, EdgeCap: 8, Pitch: 5},
	}
	bus := signal.Group{Name: "bus"}
	for b := 0; b < width; b++ {
		bus.Bits = append(bus.Bits, signal.Bit{
			Name: fmt.Sprintf("bus[%d]", b),
			Pins: []signal.Pin{{Loc: geom.Pt(4, 4+b)}, {Loc: geom.Pt(4+trunk, 4+b)}},
		})
	}
	d.Groups = append(d.Groups, bus)
	for gi := 0; gi < 2; gi++ {
		g := signal.Group{Name: fmt.Sprintf("side%d", gi)}
		oy := 2 + r.Intn(max(1, h-12))
		for b := 0; b < 3; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Name: fmt.Sprintf("%s[%d]", g.Name, b),
				Pins: []signal.Pin{{Loc: geom.Pt(1, oy+b)}, {Loc: geom.Pt(1+8+r.Intn(6), oy+b)}},
			})
		}
		d.Groups = append(d.Groups, g)
	}
	return d
}

// PinDense crams n multipin groups into a small hotspot at the center of
// the grid — the pin-access pathology of macrocell channels. Every pin of
// every group lands inside a hotspot a fraction of the grid's area.
func PinDense(seed int64, n int) *signal.Design {
	r := rand.New(rand.NewSource(seed))
	const w, h = 64, 64
	// Hotspot: the central quarter.
	hx, hy, hw, hh := w/2-10, h/2-10, 20, 20
	d := &signal.Design{
		Name: fmt.Sprintf("pindense-%d", seed),
		Grid: signal.GridSpec{W: w, H: h, NumLayers: 4, EdgeCap: 9, Pitch: 5},
	}
	for gi := 0; gi < n; gi++ {
		width := 2 + r.Intn(3)
		trunk := 6 + r.Intn(8)
		horizontal := r.Intn(2) == 0
		ox := hx + r.Intn(max(1, hw-trunk-1))
		oy := hy + r.Intn(max(1, hh-width-1))
		if !horizontal {
			ox = hx + r.Intn(max(1, hw-width-1))
			oy = hy + r.Intn(max(1, hh-trunk-1))
		}
		g := signal.Group{Name: fmt.Sprintf("hot%03d", gi)}
		extra := r.Intn(2) // 0 or 1 extra sink per bit, same offset per group
		off := geom.Pt(2+r.Intn(3), 1+r.Intn(2))
		for b := 0; b < width; b++ {
			var drv, snk geom.Point
			if horizontal {
				drv, snk = geom.Pt(ox, oy+b), geom.Pt(ox+trunk, oy+b)
			} else {
				drv, snk = geom.Pt(ox+b, oy), geom.Pt(ox+b, oy+trunk)
			}
			bit := signal.Bit{
				Name: fmt.Sprintf("%s[%d]", g.Name, b),
				Pins: []signal.Pin{{Loc: drv}, {Loc: snk}},
			}
			if extra == 1 {
				loc := drv.Add(off)
				if loc.X < w && loc.Y < h && loc != drv && loc != snk {
					bit.Pins = append(bit.Pins, signal.Pin{Loc: loc})
				}
			}
			g.Bits = append(g.Bits, bit)
		}
		d.Groups = append(d.Groups, g)
	}
	return d
}

// Maze builds a serpentine blockage maze: vertical walls attached to
// alternating edges leave one corridor each, so left-to-right groups must
// wind through every gap. Walls block every layer, which stresses detour
// length, congestion in the corridors, and the audit's blockage checks.
func Maze(seed int64, w, h, layers int) *signal.Design {
	r := rand.New(rand.NewSource(seed))
	d := &signal.Design{
		Name: fmt.Sprintf("maze-%d", seed),
		Grid: signal.GridSpec{W: w, H: h, NumLayers: layers, EdgeCap: 8, Pitch: 5},
	}
	// Walls every 8 columns, 2 wide, leaving a corridor of 8 cells at the
	// top or bottom, alternating.
	const spacing, wallW, corridor = 8, 2, 8
	for x := spacing; x+wallW < w-spacing; x += spacing {
		top := (x/spacing)%2 == 0
		var rect geom.Rect
		if top {
			rect = geom.Rect{Lo: geom.Pt(x, corridor), Hi: geom.Pt(x+wallW-1, h-1)}
		} else {
			rect = geom.Rect{Lo: geom.Pt(x, 0), Hi: geom.Pt(x+wallW-1, h-1-corridor)}
		}
		for l := 0; l < layers; l++ {
			d.Grid.Blockages = append(d.Grid.Blockages, signal.Blockage{Layer: l, Rect: rect})
		}
	}
	// Groups crossing the maze, drivers on the left wall, sinks on the
	// right, in distinct row bands so their pins never collide.
	for gi := 0; gi < 5; gi++ {
		width := 3 + r.Intn(3)
		oy := 2 + gi*(h-8)/5
		g := signal.Group{Name: fmt.Sprintf("mz%02d", gi)}
		for b := 0; b < width; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Name: fmt.Sprintf("%s[%d]", g.Name, b),
				Pins: []signal.Pin{{Loc: geom.Pt(1, oy+b)}, {Loc: geom.Pt(w-2, oy+b)}},
			})
		}
		d.Groups = append(d.Groups, g)
	}
	return d
}

// CapacityCliff funnels n groups through one shared horizontal channel
// with edge capacity sized barely at demand, so a single extra track —
// one more group, a churn step that moves a group into the band, or a
// corrupted capacity bookkeeping — tips routing over the cliff.
func CapacityCliff(seed int64, n int) *signal.Design {
	r := rand.New(rand.NewSource(seed))
	const w, h = 56, 56
	const groupWidth = 6
	band := groupWidth + 4 // rows of the shared channel
	// Demand: every group's groupWidth bits cross every column of the
	// channel. Supply: band rows x horizontal layers x EdgeCap. Two of the
	// four layers run horizontally.
	demand := n * groupWidth
	edgeCap := max(1, demand/(band*2))
	d := &signal.Design{
		Name: fmt.Sprintf("cliff-%d", seed),
		Grid: signal.GridSpec{W: w, H: h, NumLayers: 4, EdgeCap: edgeCap, Pitch: 5},
	}
	oy := h/2 - band/2
	for gi := 0; gi < n; gi++ {
		g := signal.Group{Name: fmt.Sprintf("cl%02d", gi)}
		// All groups share the same row band; staggered start columns keep
		// pins distinct while trunks still overlap along the channel.
		row := oy + r.Intn(max(1, band-groupWidth))
		x0 := 1 + gi%3
		for b := 0; b < groupWidth; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Name: fmt.Sprintf("%s[%d]", g.Name, b),
				Pins: []signal.Pin{{Loc: geom.Pt(x0, row+b)}, {Loc: geom.Pt(w-2-gi%3, row+b)}},
			})
		}
		d.Groups = append(d.Groups, g)
	}
	return d
}
