package benchgen

import "fmt"

// Industry returns the preset spec reproducing the published statistics of
// benchmark Industry<n> (Table I: #SG, #Net ~ NumGroups*AvgWidth, Np_max,
// W_max) with a grid sized to match its congestion profile: Industry3,
// Industry5 and Industry6 are the congested cases on which the paper's ILP
// hits its time limit; Industry1/2/4/7 are milder. n ranges 1..7.
func Industry(n int) Spec {
	switch n {
	case 1:
		return Spec{
			Name: "Industry1", Seed: 101,
			W: 128, H: 128, NumLayers: 4, EdgeCap: 10,
			NumGroups: 230, AvgWidth: 16, MaxWidth: 75, MaxPins: 2,
			TwoStyleFrac: 0.5, MixedDirFrac: 0.02, ShortSinkFrac: 0.05, CenterBias: 0.3, Pitch: 5,
		}
	case 2:
		return Spec{
			Name: "Industry2", Seed: 102,
			W: 192, H: 192, NumLayers: 6, EdgeCap: 14,
			NumGroups: 492, AvgWidth: 25, MaxWidth: 136, MaxPins: 2,
			TwoStyleFrac: 0.5, MixedDirFrac: 0.025, ShortSinkFrac: 0.03, CenterBias: 0.3, Pitch: 5,
		}
	case 3:
		return Spec{
			Name: "Industry3", Seed: 103,
			W: 112, H: 112, NumLayers: 4, EdgeCap: 11,
			NumGroups: 234, AvgWidth: 19, MaxWidth: 70, MaxPins: 2,
			TwoStyleFrac: 0.5, MixedDirFrac: 0.06, ShortSinkFrac: 0.05, CenterBias: 0.35, Pitch: 5,
		}
	case 4:
		return Spec{
			Name: "Industry4", Seed: 104,
			W: 160, H: 160, NumLayers: 4, EdgeCap: 10,
			NumGroups: 146, AvgWidth: 24, MaxWidth: 147, MaxPins: 2,
			TwoStyleFrac: 0.5, MixedDirFrac: 0.045, ShortSinkFrac: 0.05, CenterBias: 0.3, Pitch: 5,
		}
	case 5:
		return Spec{
			Name: "Industry5", Seed: 105,
			W: 208, H: 208, NumLayers: 6, EdgeCap: 16,
			NumGroups: 587, AvgWidth: 19, MaxWidth: 77, MaxPins: 14,
			MultipinFrac: 0.5, TwoStyleFrac: 0.5, MixedDirFrac: 0.10, ShortSinkFrac: 0.01, CenterBias: 0.3, Pitch: 5,
		}
	case 6:
		return Spec{
			Name: "Industry6", Seed: 106,
			W: 288, H: 288, NumLayers: 6, EdgeCap: 10,
			NumGroups: 409, AvgWidth: 18, MaxWidth: 256, MaxPins: 9,
			MultipinFrac: 0.45, TwoStyleFrac: 0.5, MixedDirFrac: 0.09, ShortSinkFrac: 0.02, CenterBias: 0.3, Pitch: 5,
		}
	case 7:
		return Spec{
			Name: "Industry7", Seed: 107,
			W: 160, H: 160, NumLayers: 6, EdgeCap: 12,
			NumGroups: 171, AvgWidth: 24, MaxWidth: 147, MaxPins: 7,
			MultipinFrac: 0.4, TwoStyleFrac: 0.5, MixedDirFrac: 0.04, ShortSinkFrac: 0.1, CenterBias: 0.25, Pitch: 5,
		}
	default:
		panic(fmt.Sprintf("benchgen: no preset Industry%d", n))
	}
}

// AllIndustry returns the seven presets in order.
func AllIndustry() []Spec {
	out := make([]Spec, 7)
	for i := range out {
		out[i] = Industry(i + 1)
	}
	return out
}

// TwoPin returns the two-pin presets (Industry1–4, Fig. 13(a)).
func TwoPin() []Spec {
	return []Spec{Industry(1), Industry(2), Industry(3), Industry(4)}
}

// Multipin returns the multipin presets (Industry5–7, Fig. 13(b)).
func Multipin() []Spec {
	return []Spec{Industry(5), Industry(6), Industry(7)}
}

// ScalabilitySeries returns the Fig. 13(b) series: the multipin presets
// plus an enlarged Industry2-based benchmark with pseudo pins inserted
// ("the largest benchmark" in §V-A).
func ScalabilitySeries() []Spec {
	series := Multipin()
	big := WithExtraPins(Industry(2), 8, 0.4)
	big.Name = "Industry2-mp"
	series = append(series, big)
	return series
}
