package route

import (
	"math/rand"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/geom"
	"repro/internal/grid"
)

// refCandidateFits is the pre-bitset reference: walk every edge the
// candidate occupies and check remaining capacity scalar-by-scalar. The
// word-mask fast path in CandidateFits must agree with this on every
// reachable tracker state.
func refCandidateFits(p *Problem, i, j int, u *grid.Usage) bool {
	for _, e := range p.Cands[i][j].Edges {
		if u.Avail(int(e.Layer), int(e.Idx)) < int(e.N) {
			return false
		}
	}
	return true
}

// sweepSpec draws a small randomized design; the seed drives benchgen's
// internal randomness so every trial sees different pin placements.
func sweepSpec(trial int) benchgen.Spec {
	return benchgen.Spec{
		Name: "capfits-sweep", Seed: int64(1000 + trial),
		W: 24, H: 20, NumLayers: 4, EdgeCap: 1 + trial%3,
		NumGroups: 3, AvgWidth: 3, MaxWidth: 4, MaxPins: 2, Pitch: 1,
	}
}

// TestCandidateFitsMatchesReferenceWalk cross-checks the bitset capacity
// kernel against the scalar reference on 300 randomized problems, each
// probed under several tracker states: empty, partially committed, edge
// saturated and oversubscribed, usage removed again, and after region
// capacity changes (which force the lazy blocked-bitset resync).
func TestCandidateFitsMatchesReferenceWalk(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 30
	}
	checkAll := func(trial int, p *Problem, u *grid.Usage, stage string) {
		t.Helper()
		for i := range p.Cands {
			for j := range p.Cands[i] {
				got := p.CandidateFits(i, j, u)
				want := refCandidateFits(p, i, j, u)
				if got != want {
					t.Fatalf("trial %d %s: CandidateFits(%d,%d)=%v reference=%v", trial, stage, i, j, got, want)
				}
			}
		}
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		p, err := Build(sweepSpec(trial).Generate(), Options{})
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		pool := p.UsagePool()
		u := pool.Get()

		checkAll(trial, p, u, "empty")

		// Commit a random partial assignment.
		a := p.NewAssignment()
		for i := range a.Choice {
			if rng.Intn(2) == 0 {
				a.Choice[i] = rng.Intn(len(p.Cands[i]))
			}
		}
		p.AddUsage(a, u, 1)
		checkAll(trial, p, u, "committed")

		// Saturate and oversubscribe a few random edges directly.
		for k := 0; k < 4; k++ {
			l := rng.Intn(len(p.Grid.Layers))
			if n := p.Grid.EdgeCount(l); n > 0 {
				u.Add(l, rng.Intn(n), 1+rng.Intn(3))
			}
		}
		checkAll(trial, p, u, "saturated")

		// Capacity changes bump the grid generation; the bitset must resync.
		l := rng.Intn(len(p.Grid.Layers))
		p.Grid.SetRegionCap(l, geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(10, 10)}, rng.Intn(3))
		checkAll(trial, p, u, "recapped")

		// Removal must clear blocked bits as capacity frees up again.
		p.AddUsage(a, u, -1)
		checkAll(trial, p, u, "removed")

		pool.Put(u)
	}
}
