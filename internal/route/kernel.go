// Pair-cost kernel: the regularity ratios entering c(i,j,p,q) depend only
// on the 2-D topology pair behind the two candidates, so they are stored
// as flattened, immutable per-pair tables instead of the per-lookup hashed
// map the solvers previously shared. Tables for normally-sized objects are
// filled once at build time (in parallel); oversized pairs keep a
// sync.Once-guarded lazy path so huge groups neither stall the build nor
// race when concurrent solver legs touch them first.
package route

import (
	"context"
	"sync"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/topo"
)

// pairKey identifies an unordered same-group object pair (lo < hi).
type pairKey struct{ lo, hi int }

// pairTab is the dense ratio table of one object pair: tab[ti*nTopo[hi]+tq]
// is the backbone regularity ratio between 2-D topology ti of object lo and
// 2-D topology tq of object hi.
type pairTab struct {
	once sync.Once
	tab  []float64
}

// kernel is the precomputed pair-cost state of a problem. After Build it is
// only ever read (or lazily filled behind each table's sync.Once), so the
// solvers may call PairCost from any number of goroutines.
type kernel struct {
	// nTopo[i] is 1 + the largest TopoIdx among object i's candidates
	// (0 when the object has none).
	nTopo []int
	// backbones[i][ti] points at the backbone tree of 2-D topology ti of
	// object i, nil when no surviving candidate references ti.
	backbones [][]*geom.Tree
	// pairs holds one table per partnered object pair.
	pairs map[pairKey]*pairTab
}

// buildKernel indexes every object's 2-D topologies and precomputes the
// ratio tables of all partnered pairs up to the lazy-threshold, fanning the
// table fills out across the build workers.
func (p *Problem) buildKernel(ctx context.Context, workers int) error {
	n := len(p.Objects)
	p.kern.nTopo = make([]int, n)
	p.kern.backbones = make([][]*geom.Tree, n)
	for i := range p.Cands {
		nt := 0
		for j := range p.Cands[i] {
			if ti := p.Cands[i][j].TopoIdx; ti+1 > nt {
				nt = ti + 1
			}
		}
		p.kern.nTopo[i] = nt
		bbs := make([]*geom.Tree, nt)
		for j := range p.Cands[i] {
			if ti := p.Cands[i][j].TopoIdx; bbs[ti] == nil {
				bbs[ti] = &p.Cands[i][j].Topo.Backbone
			}
		}
		p.kern.backbones[i] = bbs
	}

	p.kern.pairs = make(map[pairKey]*pairTab)
	var eager []pairKey
	for i := 0; i < n; i++ {
		for _, q := range p.Partners(i) {
			if q <= i {
				continue
			}
			k := pairKey{i, q}
			if _, seen := p.kern.pairs[k]; seen {
				continue
			}
			p.kern.pairs[k] = &pairTab{}
			if p.kern.nTopo[i]*p.kern.nTopo[q] <= p.Opt.LazyKernelCells {
				eager = append(eager, k)
			}
		}
	}
	if rec := obs.FromContext(ctx); rec != nil {
		rec.Add(obs.CounterKernelPairsEager, int64(len(eager)))
		rec.Add(obs.CounterKernelPairsLazy, int64(len(p.kern.pairs)-len(eager)))
	}
	return parallelFor(ctx, workers, len(eager), func(x int) {
		p.fillPair(eager[x])
	})
}

// fillPair computes (at most once) and returns the ratio table of a pair.
func (p *Problem) fillPair(k pairKey) *pairTab {
	t := p.kern.pairs[k]
	t.once.Do(func() {
		t.tab = topo.RatioTable(
			p.kern.backbones[k.lo], p.RepBit(k.lo),
			p.kern.backbones[k.hi], p.RepBit(k.hi),
		)
	})
	return t
}

// pairRatio returns the regularity ratio between 2-D topology ti of object
// i and tq of object q (same group, i != q): two array indexings for
// precomputed pairs, a one-time lazy fill for oversized ones, and a direct
// computation for pairs outside the Partners neighborhood (which the
// solvers never price, but direct callers may probe).
func (p *Problem) pairRatio(i, ti, q, tq int) float64 {
	if q < i {
		i, ti, q, tq = q, tq, i, ti
	}
	t := p.kern.pairs[pairKey{i, q}]
	if t == nil {
		return topo.Ratio(
			*p.kern.backbones[i][ti], p.RepBit(i),
			*p.kern.backbones[q][tq], p.RepBit(q),
		)
	}
	return p.fillPair(pairKey{i, q}).tab[ti*p.kern.nTopo[q]+tq]
}
