package route

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/signal"
)

// smallDesign builds a 2-group design on a roomy grid: a 3-bit horizontal
// bus and a 2-bit L-shaped group.
func smallDesign() *signal.Design {
	d := &signal.Design{
		Name: "small",
		Grid: signal.GridSpec{W: 24, H: 24, NumLayers: 4, EdgeCap: 6},
	}
	var bus signal.Group
	bus.Name = "bus"
	for i := 0; i < 3; i++ {
		bus.Bits = append(bus.Bits, signal.Bit{
			Driver: 0,
			Pins:   []signal.Pin{{Loc: geom.Pt(2, 2+i)}, {Loc: geom.Pt(14, 2+i)}},
		})
	}
	var lg signal.Group
	lg.Name = "lshape"
	for i := 0; i < 2; i++ {
		lg.Bits = append(lg.Bits, signal.Bit{
			Driver: 0,
			Pins:   []signal.Pin{{Loc: geom.Pt(4, 10+i)}, {Loc: geom.Pt(12, 16+i)}},
		})
	}
	d.Groups = []signal.Group{bus, lg}
	return d
}

func TestBuild(t *testing.T) {
	p, err := Build(smallDesign(), Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(p.Objects) != 2 {
		t.Fatalf("objects = %d, want 2", len(p.Objects))
	}
	for i, cands := range p.Cands {
		if len(cands) == 0 {
			t.Fatalf("object %d has no candidates", i)
		}
		if len(cands) > p.Opt.MaxCandidates {
			t.Fatalf("object %d has %d candidates > cap", i, len(cands))
		}
	}
	if len(p.GroupObjs) != 2 || len(p.GroupObjs[0]) != 1 || len(p.GroupObjs[1]) != 1 {
		t.Errorf("GroupObjs = %v", p.GroupObjs)
	}
}

func TestBuildRejectsInvalidDesign(t *testing.T) {
	d := smallDesign()
	d.Grid.W = 1
	if _, err := Build(d, Options{}); err == nil {
		t.Fatal("invalid design accepted")
	}
}

func TestNewGridAppliesBlockages(t *testing.T) {
	d := smallDesign()
	d.Grid.Blockages = []signal.Blockage{{Layer: 0, Rect: geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(5, 5)}}}
	g := NewGrid(d)
	if g.Cap(0, 1, 1) != 0 {
		t.Error("blockage not applied")
	}
	if g.Cap(0, 10, 10) != 6 {
		t.Error("default capacity wrong")
	}
}

func TestEmptyAssignment(t *testing.T) {
	p, _ := Build(smallDesign(), Options{})
	a := p.NewAssignment()
	if a.RoutedObjects() != 0 {
		t.Error("fresh assignment should route nothing")
	}
	if err := p.Legal(a); err != nil {
		t.Errorf("empty assignment illegal: %v", err)
	}
	want := p.Opt.M * float64(len(p.Objects))
	if got := p.ObjectiveValue(a); got != want {
		t.Errorf("objective = %v, want %v", got, want)
	}
}

func TestAssignmentUsageAndLegal(t *testing.T) {
	p, _ := Build(smallDesign(), Options{})
	a := p.NewAssignment()
	for i := range a.Choice {
		a.Choice[i] = 0
	}
	if err := p.Legal(a); err != nil {
		t.Fatalf("best candidates illegal on roomy grid: %v", err)
	}
	u := p.Usage(a)
	if u.TotalUse() == 0 {
		t.Fatal("usage empty")
	}
	// Removing usage restores zero.
	p.AddUsage(a, u, -1)
	if u.TotalUse() != 0 {
		t.Error("AddUsage(-1) did not cancel usage")
	}
}

func TestLegalDetectsOverflow(t *testing.T) {
	d := smallDesign()
	d.Grid.EdgeCap = 1 // 3-bit bus over capacity-1 edges must overflow
	p, _ := Build(d, Options{})
	a := p.NewAssignment()
	for i := range a.Choice {
		a.Choice[i] = 0
	}
	err := p.Legal(a)
	if err == nil {
		t.Fatal("overflow not detected")
	}
	if !strings.Contains(err.Error(), "overflow") {
		t.Errorf("err = %v", err)
	}
}

func TestLegalSizeMismatch(t *testing.T) {
	p, _ := Build(smallDesign(), Options{})
	if err := p.Legal(Assignment{Choice: []int{0}}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPairCostAcrossGroupsIsZero(t *testing.T) {
	p, _ := Build(smallDesign(), Options{})
	if got := p.PairCost(0, 0, 1, 0); got != 0 {
		t.Errorf("cross-group pair cost = %v, want 0", got)
	}
	if got := p.PairCost(0, 0, 0, 0); got != 0 {
		t.Errorf("self pair cost = %v, want 0", got)
	}
}

func TestPairCostWithinGroup(t *testing.T) {
	// One group, two styles: east two-pin bits and north two-pin bits.
	d := &signal.Design{
		Name: "mixed",
		Grid: signal.GridSpec{W: 24, H: 24, NumLayers: 4, EdgeCap: 6},
		Groups: []signal.Group{{
			Name: "g",
			Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 2)}, {Loc: geom.Pt(12, 2)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 3)}, {Loc: geom.Pt(12, 3)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 5)}, {Loc: geom.Pt(2, 15)}}},
			},
		}},
	}
	p, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objects) != 2 {
		t.Fatalf("objects = %d, want 2", len(p.Objects))
	}
	// A horizontal trunk and a vertical trunk share no RC: NoShare penalty.
	c := p.PairCost(0, 0, 1, 0)
	if c < p.Opt.NoShare {
		t.Errorf("pair cost = %v, want >= NoShare %v", c, p.Opt.NoShare)
	}
	if c >= p.Opt.M {
		t.Errorf("pair cost %v must stay below M %v", c, p.Opt.M)
	}
}

func TestPartnersNeighborBound(t *testing.T) {
	// Ten single-bit objects in one group with PairNeighbors 2.
	var g signal.Group
	for i := 0; i < 10; i++ {
		x0 := 2 + (i % 3)
		g.Bits = append(g.Bits, signal.Bit{
			Driver: 0,
			Pins:   []signal.Pin{{Loc: geom.Pt(x0, 2*i)}, {Loc: geom.Pt(x0+5+i, 2*i+1)}},
		})
	}
	d := &signal.Design{Name: "many", Grid: signal.GridSpec{W: 32, H: 32, NumLayers: 4, EdgeCap: 8}, Groups: []signal.Group{g}}
	p, err := Build(d, Options{PairNeighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objects) < 5 {
		t.Skipf("expected many objects, got %d", len(p.Objects))
	}
	mid := len(p.Objects) / 2
	partners := p.Partners(mid)
	if len(partners) > 4 {
		t.Errorf("partners = %v, want <= 4 with neighbor bound 2", partners)
	}
}

func TestObjectiveValueCountsPairsOnce(t *testing.T) {
	d := &signal.Design{
		Name: "pair",
		Grid: signal.GridSpec{W: 24, H: 24, NumLayers: 4, EdgeCap: 6},
		Groups: []signal.Group{{
			Name: "g",
			Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 2)}, {Loc: geom.Pt(12, 2)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 5)}, {Loc: geom.Pt(2, 15)}}},
			},
		}},
	}
	p, _ := Build(d, Options{})
	a := p.NewAssignment()
	a.Choice[0], a.Choice[1] = 0, 0
	want := p.Cost(0, 0) + p.Cost(1, 0) + p.PairCost(0, 0, 1, 0)
	if got := p.ObjectiveValue(a); got != want {
		t.Errorf("objective = %v, want %v", got, want)
	}
}

func TestBitTree(t *testing.T) {
	p, _ := Build(smallDesign(), Options{})
	a := p.NewAssignment()
	a.Choice[0] = 0
	tr := p.BitTree(a, 0, 1)
	if tr == nil {
		t.Fatal("BitTree returned nil for routed bit")
	}
	bit := &p.Design.Groups[0].Bits[1]
	if !tr.Connected(bit.PinLocs()) {
		t.Error("bit tree does not connect its pins")
	}
	if got := p.BitTree(a, 1, 0); got != nil {
		t.Error("unrouted object should return nil tree")
	}
	if got := p.BitTree(a, 7, 0); got != nil {
		t.Error("unknown group should return nil")
	}
}
