package route

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// WorkerCount resolves the Workers option: a positive value is used as-is,
// anything else means runtime.GOMAXPROCS(0). Solver packages use this to
// size their own parallel legs consistently with the build fan-out.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelFor runs fn(i) for every i in [0, n) on up to workers
// goroutines, checking ctx between items so cancellation stops the fan-out
// promptly (items already started still finish). fn must only write state
// owned by item i, which makes the combined result independent of
// goroutine scheduling — the determinism guarantee of the parallel build.
func parallelFor(ctx context.Context, workers, n int, fn func(int)) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
