package route

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/topo"
)

// buildWithWorkers builds a mid-sized multi-group benchmark: big enough
// that the worker pool actually fans out and groups hold several partnered
// objects.
func buildWithWorkers(t *testing.T, workers int) *Problem {
	t.Helper()
	d := benchgen.Scale(benchgen.Industry(5), 0.06).Generate()
	p, err := Build(d, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBuildParallelDeterminism asserts the tentpole guarantee: the
// parallel build produces bit-identical candidates and pair costs for any
// worker count.
func TestBuildParallelDeterminism(t *testing.T) {
	p1 := buildWithWorkers(t, 1)
	p8 := buildWithWorkers(t, 8)

	if !reflect.DeepEqual(p1.Objects, p8.Objects) {
		t.Fatal("object lists differ between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(p1.GroupObjs, p8.GroupObjs) {
		t.Fatal("group-object lists differ between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(p1.Cands, p8.Cands) {
		t.Fatal("candidate sets differ between Workers=1 and Workers=8")
	}
	for i := range p1.Cands {
		for _, q := range p1.Partners(i) {
			for j := range p1.Cands[i] {
				for r := range p1.Cands[q] {
					c1 := p1.PairCost(i, j, q, r)
					c8 := p8.PairCost(i, j, q, r)
					if c1 != c8 {
						t.Fatalf("PairCost(%d,%d,%d,%d) = %v (1 worker) vs %v (8 workers)",
							i, j, q, r, c1, c8)
					}
				}
			}
		}
	}
}

// TestPairCostMatchesDirect checks the dense kernel against a direct
// (uncached) evaluation of the regularity ratio and irregularity formula.
func TestPairCostMatchesDirect(t *testing.T) {
	p := buildWithWorkers(t, 4)
	checked := 0
	for i := range p.Cands {
		for _, q := range p.Partners(i) {
			for j := range p.Cands[i] {
				for r := range p.Cands[q] {
					ci, cq := &p.Cands[i][j], &p.Cands[q][r]
					want := topo.PairIrregularity(
						topo.Ratio(ci.Topo.Backbone, p.RepBit(i), cq.Topo.Backbone, p.RepBit(q)),
						p.Opt.RegWeight, p.Opt.NoShare,
						layerDist(ci, cq), p.Opt.LayerPenalty,
					)
					if got := p.PairCost(i, j, q, r); got != want {
						t.Fatalf("PairCost(%d,%d,%d,%d) = %v, direct evaluation %v", i, j, q, r, got, want)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no partnered candidate pairs checked; benchmark too small")
	}
}

// TestLazyKernelMatchesEager forces every pair table onto the lazy path
// and asserts the costs match the eagerly precomputed kernel.
func TestLazyKernelMatchesEager(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(5), 0.06).Generate()
	eager, err := Build(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Build(d, Options{LazyKernelCells: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range lazy.kern.pairs {
		if pt.tab != nil {
			t.Fatal("lazy kernel filled a table at build time")
		}
	}
	for i := range eager.Cands {
		for _, q := range eager.Partners(i) {
			for j := range eager.Cands[i] {
				for r := range eager.Cands[q] {
					if e, l := eager.PairCost(i, j, q, r), lazy.PairCost(i, j, q, r); e != l {
						t.Fatalf("PairCost(%d,%d,%d,%d): eager %v, lazy %v", i, j, q, r, e, l)
					}
				}
			}
		}
	}
}

// TestBuildCtxCanceled asserts a canceled context aborts the build.
func TestBuildCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := benchgen.Scale(benchgen.Industry(5), 0.06).Generate()
	if _, err := BuildCtx(ctx, d, Options{Workers: 4}); err == nil {
		t.Fatal("BuildCtx succeeded under a canceled context")
	}
}

// TestBitTreeMatchesScan cross-checks the (group, bit) index against the
// exhaustive object scan BitTree used to perform.
func TestBitTreeMatchesScan(t *testing.T) {
	p := buildWithWorkers(t, 2)
	a := p.NewAssignment()
	for i := range a.Choice {
		if len(p.Cands[i]) > 0 && i%2 == 0 {
			a.Choice[i] = 0
		}
	}
	for gi := range p.Design.Groups {
		for bi := range p.Design.Groups[gi].Bits {
			got := p.BitTree(a, gi, bi)
			// Reference: the linear scan BitTree used to perform.
			found := false
			for i := range p.Objects {
				if p.Objects[i].GroupIdx != gi {
					continue
				}
				for k, b := range p.Objects[i].BitIdx {
					if b != bi {
						continue
					}
					found = true
					if a.Choice[i] < 0 {
						if got != nil {
							t.Fatalf("bit (%d,%d): index returned a tree for unrouted object", gi, bi)
						}
						continue
					}
					want := p.Cands[i][a.Choice[i]].Topo.BitTrees[k]
					if got == nil || got.String() != want.String() {
						t.Fatalf("bit (%d,%d): index tree mismatch", gi, bi)
					}
				}
			}
			if !found && got != nil {
				t.Fatalf("bit (%d,%d): tree for unknown bit", gi, bi)
			}
		}
	}
}
