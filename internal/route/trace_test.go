package route

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestBuildCtxEmitsPerObjectEvents checks the traced build: each object
// leaves one build.topo and one build.expand event whose candidate count
// matches the built problem, and the events ride inside the build stage
// span's interval.
func TestBuildCtxEmitsPerObjectEvents(t *testing.T) {
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	p, err := BuildCtx(ctx, smallDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()

	var stageStart, stageEnd int64 = -1, -1
	for _, s := range rep.Spans {
		if s.Name == obs.StageBuild {
			stageStart, stageEnd = s.StartUS, s.StartUS+s.DurUS
		}
	}
	if stageStart < 0 {
		t.Fatalf("no %s span: %+v", obs.StageBuild, rep.Spans)
	}

	topoSeen := make(map[int]bool)
	expandSeen := make(map[int]bool)
	for _, e := range rep.Trace {
		if e.Name != "build.topo" && e.Name != "build.expand" {
			continue
		}
		i := int(e.Args["object"])
		if i < 0 || i >= len(p.Objects) {
			t.Fatalf("event names unknown object: %+v", e)
		}
		if e.Start < stageStart || e.Start+e.Dur > stageEnd {
			t.Errorf("event escapes the build span: %+v (span [%d,%d])", e, stageStart, stageEnd)
		}
		switch e.Name {
		case "build.topo":
			topoSeen[i] = true
		case "build.expand":
			expandSeen[i] = true
			if got := int(e.Args["candidates"]); got != len(p.Cands[i]) {
				t.Errorf("object %d expand event reports %d candidates, problem has %d", i, got, len(p.Cands[i]))
			}
		}
	}
	if len(topoSeen) != len(p.Objects) || len(expandSeen) != len(p.Objects) {
		t.Errorf("events cover %d topo / %d expand of %d objects", len(topoSeen), len(expandSeen), len(p.Objects))
	}
}

// TestBuildCtxUntracedIdentical pins that tracing never changes the built
// problem.
func TestBuildCtxUntracedIdentical(t *testing.T) {
	plain, err := Build(smallDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	traced, err := BuildCtx(obs.WithRecorder(context.Background(), rec), smallDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Objects) != len(traced.Objects) {
		t.Fatalf("object counts differ: %d vs %d", len(plain.Objects), len(traced.Objects))
	}
	for i := range plain.Cands {
		if len(plain.Cands[i]) != len(traced.Cands[i]) {
			t.Fatalf("object %d candidate counts differ", i)
		}
		for j := range plain.Cands[i] {
			if plain.Cands[i][j].Cost != traced.Cands[i][j].Cost {
				t.Errorf("object %d candidate %d cost differs", i, j)
			}
		}
	}
}
