package route

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoutedJSONRoundTrip(t *testing.T) {
	p, err := Build(smallDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := p.NewAssignment()
	for i := range a.Choice {
		a.Choice[i] = 0
	}
	r := p.ExtractRouting(a)

	var buf bytes.Buffer
	if err := p.WriteRoutedJSON(&buf, r); err != nil {
		t.Fatalf("WriteRoutedJSON: %v", err)
	}
	trees, err := ReadRoutedJSON(&buf)
	if err != nil {
		t.Fatalf("ReadRoutedJSON: %v", err)
	}
	routed := 0
	for gi := range r.Bits {
		for _, br := range r.Bits[gi] {
			if br.Routed {
				routed++
			}
		}
	}
	if len(trees) != routed {
		t.Fatalf("exported %d trees, want %d", len(trees), routed)
	}
	for key, tree := range trees {
		if tree.WireLength() == 0 {
			t.Errorf("%s exported empty tree", key)
		}
	}
}

func TestRoutedJSONUnroutedBitsMarked(t *testing.T) {
	p, err := Build(smallDesign(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := p.NewRouting() // nothing routed
	var buf bytes.Buffer
	if err := p.WriteRoutedJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"routed": false`) {
		t.Error("unrouted bits not marked")
	}
	trees, err := ReadRoutedJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 0 {
		t.Errorf("expected no trees, got %d", len(trees))
	}
}

func TestReadRoutedJSONRejectsBrokenRoutes(t *testing.T) {
	// Disconnected route: segments don't touch the second pin.
	bad := `{"design":"x","bits":[{"group":"g","bit":"b","routed":true,
	 "pins":[[0,0],[9,0]],"driver":0,"segs":[[0,0,4,0]]}]}`
	if _, err := ReadRoutedJSON(strings.NewReader(bad)); err == nil {
		t.Error("disconnected route accepted")
	}
	diag := `{"design":"x","bits":[{"group":"g","bit":"b","routed":true,
	 "pins":[[0,0],[3,3]],"driver":0,"segs":[[0,0,3,3]]}]}`
	if _, err := ReadRoutedJSON(strings.NewReader(diag)); err == nil {
		t.Error("diagonal segment accepted")
	}
	if _, err := ReadRoutedJSON(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
}
