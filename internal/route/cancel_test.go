package route

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/benchgen"
)

// flipCtx is a context whose Err() starts returning context.Canceled after
// the first `after` calls, cancelling deterministically at an exact
// ctx-check boundary. Err is called concurrently by parallelFor workers, so
// the counter is atomic.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestBuildCtxMidCancelNilProblem pins BuildCtx's error contract: a
// cancellation at ANY point of the build — candidate fan-out or kernel
// fill, sequential or parallel — yields (nil, err), never a half-stitched
// Problem the caller could use after cancel.
func TestBuildCtxMidCancelNilProblem(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(3), 0.06).Generate()
	for _, workers := range []int{1, 4} {
		// Sweep the cancellation point across the whole build: small
		// `after` values cancel during candidate generation, larger ones
		// during the kernel fill.
		for _, after := range []int64{1, 2, 8, 64, 512} {
			ctx := &flipCtx{Context: context.Background(), after: after}
			p, err := BuildCtx(ctx, d, Options{Workers: workers})
			if err == nil {
				// The flip point landed past the last ctx check — the build
				// legitimately completed. That only happens for the largest
				// `after` values; nothing to assert beyond a usable problem.
				if p == nil {
					t.Fatalf("workers=%d after=%d: nil problem without error", workers, after)
				}
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d after=%d: err = %v, want context.Canceled", workers, after, err)
			}
			if p != nil {
				t.Fatalf("workers=%d after=%d: BuildCtx returned a non-nil problem alongside %v",
					workers, after, err)
			}
		}
	}
}

// TestParallelForMidCancelStops pins that parallelFor stops handing out
// work once the context flips: no item index at or past the flip point may
// start more than `workers` items later (each in-flight worker may finish
// the item it already claimed).
func TestParallelForMidCancelStops(t *testing.T) {
	const n, workers, after = 1000, 4, 10
	ctx := &flipCtx{Context: context.Background(), after: after}
	var ran atomic.Int64
	err := parallelFor(ctx, workers, n, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each of the `workers` goroutines checks Err before claiming an item,
	// so at most `after` items can ever start.
	if got := ran.Load(); got > after {
		t.Errorf("%d items ran after cancellation (flip at %d checks)", got, after)
	}
}
