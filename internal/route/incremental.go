package route

import (
	"context"
	"fmt"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/ident"
	"repro/internal/signal"
	"repro/internal/topo"
)

// Delta is a structured design edit: the regions whose capacity or pin
// geometry changed, plus the groups whose pins moved. DiffDesigns produces
// it; Problem.RebuildCtx consumes it to decide which objects keep their
// committed candidate lists and which must regenerate.
type Delta struct {
	// DirtyRects are the edited regions in inclusive cell coordinates:
	// every added or removed blockage rectangle, and the old and new pin
	// bounding boxes of every moved group.
	DirtyRects []geom.Rect
	// ChangedGroups lists the indices of groups whose pin geometry (pin
	// locations or driver location, names ignored) differs between the two
	// designs. Their objects are always re-partitioned and regenerated.
	ChangedGroups []int
}

// Empty reports whether the delta describes no change at all.
func (d Delta) Empty() bool {
	return len(d.DirtyRects) == 0 && len(d.ChangedGroups) == 0
}

// intersects reports whether r overlaps any dirty rect (inclusive bounds).
func (d Delta) intersects(r geom.Rect) bool {
	for _, q := range d.DirtyRects {
		if r.Lo.X <= q.Hi.X && q.Lo.X <= r.Hi.X && r.Lo.Y <= q.Hi.Y && q.Lo.Y <= r.Hi.Y {
			return true
		}
	}
	return false
}

// DiffDesigns compares two designs and returns the structured delta from
// old to new. ok is false when the designs are not delta-compatible — the
// grid shape (dimensions, layer count, base capacity, pitch) or the group
// count differs — in which case an incremental rebuild is meaningless and
// the caller must do a full cold build. Design and group names are ignored:
// they do not affect routing.
func DiffDesigns(old, new *signal.Design) (Delta, bool) {
	var delta Delta
	if old.Grid.W != new.Grid.W || old.Grid.H != new.Grid.H ||
		old.Grid.NumLayers != new.Grid.NumLayers ||
		old.Grid.EdgeCap != new.Grid.EdgeCap ||
		old.Grid.Pitch != new.Grid.Pitch ||
		len(old.Groups) != len(new.Groups) {
		return delta, false
	}
	// Blockage edits: multiset difference, so reordering the blockage list
	// yields an empty delta while any add/remove dirties its rectangle.
	blks := make(map[signal.Blockage]int)
	for _, b := range old.Grid.Blockages {
		blks[b]++
	}
	for _, b := range new.Grid.Blockages {
		blks[b]--
	}
	for b, n := range blks {
		if n != 0 {
			delta.DirtyRects = append(delta.DirtyRects, b.Rect)
		}
	}
	// Group edits: any pin-geometry difference marks the group changed and
	// dirties the union of its old and new pin bounding boxes, so neighbor
	// objects overlapping the edited area are invalidated too.
	for gi := range old.Groups {
		if groupGeometryEqual(&old.Groups[gi], &new.Groups[gi]) {
			continue
		}
		delta.ChangedGroups = append(delta.ChangedGroups, gi)
		if r, ok := groupPinBBox(&old.Groups[gi]); ok {
			delta.DirtyRects = append(delta.DirtyRects, r)
		}
		if r, ok := groupPinBBox(&new.Groups[gi]); ok {
			delta.DirtyRects = append(delta.DirtyRects, r)
		}
	}
	return delta, true
}

// groupGeometryEqual reports whether two groups have identical routing
// geometry: same bit count, and per bit the same driver location and the
// same pin-location sequence. Names are irrelevant to routing and ignored.
func groupGeometryEqual(a, b *signal.Group) bool {
	if len(a.Bits) != len(b.Bits) {
		return false
	}
	for i := range a.Bits {
		ab, bb := &a.Bits[i], &b.Bits[i]
		if len(ab.Pins) != len(bb.Pins) || ab.DriverLoc() != bb.DriverLoc() {
			return false
		}
		for pi := range ab.Pins {
			if ab.Pins[pi].Loc != bb.Pins[pi].Loc {
				return false
			}
		}
	}
	return true
}

// groupPinBBox returns the bounding box of every pin in the group; ok is
// false for a group with no pins.
func groupPinBBox(g *signal.Group) (geom.Rect, bool) {
	var pts []geom.Point
	for i := range g.Bits {
		pts = append(pts, g.Bits[i].PinLocs()...)
	}
	if len(pts) == 0 {
		return geom.Rect{}, false
	}
	return geom.BBox(pts), true
}

// RebuildStats reports what an incremental rebuild reused versus redid.
type RebuildStats struct {
	// KeptObjects counts objects whose candidate lists were carried over
	// from the base problem unchanged.
	KeptObjects int
	// Regenerated counts objects whose candidates were generated afresh —
	// members of changed groups plus objects whose candidate footprint
	// intersects a dirty rect.
	Regenerated int
}

// RebuildCtx builds the selection problem for design d by patching the
// receiver, the problem of a previously solved base design, with the
// structured delta between the two designs (from DiffDesigns). Objects of
// unchanged groups whose candidate footprints avoid every dirty rect keep
// their committed candidate lists (the expensive artifact: topology
// generation plus 3-D expansion); everything else — changed groups, and
// any object overlapping the edited area — is re-partitioned and
// regenerated exactly as BuildCtx would. The pair-cost kernel is rebuilt
// for the patched candidate set, and selection then runs from scratch over
// the freed capacity, so the returned problem yields results identical to
// a full cold build of d.
//
// Candidate 3-D expansion depends only on the grid shape and the group's
// pin geometry — never on edge capacities — so carried-over candidate
// lists are provably identical to what a cold build would generate; the
// footprint-vs-dirty-rect invalidation is a conservative guard on top of
// that. Kept candidate slices are shared with the base problem (they are
// read-only after build).
//
// d must be delta-compatible with the base design (same grid shape and
// group count; see DiffDesigns).
func (p *Problem) RebuildCtx(ctx context.Context, d *signal.Design, delta Delta) (*Problem, RebuildStats, error) {
	var stats RebuildStats
	if err := d.Validate(); err != nil {
		return nil, stats, err
	}
	if len(d.Groups) != len(p.Design.Groups) {
		return nil, stats, fmt.Errorf("route: rebuild across group counts (%d -> %d); need a full build",
			len(p.Design.Groups), len(d.Groups))
	}
	changed := make(map[int]bool, len(delta.ChangedGroups))
	for _, gi := range delta.ChangedGroups {
		changed[gi] = true
	}
	np := &Problem{
		Design:    d,
		Grid:      NewGrid(d),
		Opt:       p.Opt, // already defaulted by the base build
		GroupObjs: make([][]int, len(d.Groups)),
	}
	// np.Cands grows in lockstep with np.Objects: survivors get the base
	// problem's candidate slice, regen slots get nil and are filled by the
	// fan-out below.
	var regen []int // indices into np.Objects needing candidate generation
	for gi := range d.Groups {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if changed[gi] {
			for _, o := range ident.Partition(gi, &d.Groups[gi]) {
				idx := len(np.Objects)
				np.Objects = append(np.Objects, o)
				np.Cands = append(np.Cands, nil)
				np.GroupObjs[gi] = append(np.GroupObjs[gi], idx)
				regen = append(regen, idx)
			}
			continue
		}
		for _, oi := range p.GroupObjs[gi] {
			idx := len(np.Objects)
			np.Objects = append(np.Objects, p.Objects[oi])
			np.GroupObjs[gi] = append(np.GroupObjs[gi], idx)
			if delta.intersects(p.candFootprint(oi)) {
				np.Cands = append(np.Cands, nil)
				regen = append(regen, idx)
			} else {
				np.Cands = append(np.Cands, p.Cands[oi])
				stats.KeptObjects++
			}
		}
	}
	stats.Regenerated = len(regen)
	workers := np.Opt.WorkerCount()
	err := parallelFor(ctx, workers, len(regen), func(i int) {
		idx := regen[i]
		obj := &np.Objects[idx]
		np.Cands[idx] = genCandidates(np.Grid, &d.Groups[obj.GroupIdx], obj, np.Opt)
	})
	if err != nil {
		return nil, stats, fmt.Errorf("route: %w", err)
	}
	np.indexBits()
	if err := np.buildKernel(ctx, workers); err != nil {
		return nil, stats, fmt.Errorf("route: %w", err)
	}
	return np, stats, nil
}

// genCandidates generates the candidate list for one object the same way
// BuildCtx does: 2-D topology generation, 3-D layer expansion, and the
// diversity-preserving trim. opt must already carry defaults.
func genCandidates(gr *grid.Grid, g *signal.Group, obj *ident.Object, opt Options) []topo.Candidate {
	ots := topo.ObjectTopologies(g, obj, opt.Topo)
	return trimDiverse(topo.Expand3D(gr, ots, opt.Topo), opt.MaxCandidates)
}

// candFootprint returns the bounding box, in cell coordinates, of every
// cell any candidate of object oi touches; objects with no candidates fall
// back to the object's pin bounding box. This is the region an edit must
// intersect for the object's committed candidates to be invalidated.
func (p *Problem) candFootprint(oi int) geom.Rect {
	var r geom.Rect
	have := false
	add := func(x, y int) {
		if !have {
			r = geom.Rect{Lo: geom.Point{X: x, Y: y}, Hi: geom.Point{X: x, Y: y}}
			have = true
			return
		}
		if x < r.Lo.X {
			r.Lo.X = x
		}
		if y < r.Lo.Y {
			r.Lo.Y = y
		}
		if x > r.Hi.X {
			r.Hi.X = x
		}
		if y > r.Hi.Y {
			r.Hi.Y = y
		}
	}
	for ci := range p.Cands[oi] {
		for _, e := range p.Cands[oi][ci].Edges {
			x, y := p.Grid.EdgeCell(int(e.Layer), int(e.Idx))
			add(x, y)
			if p.Grid.Layers[e.Layer].Dir == grid.Horizontal {
				add(x+1, y)
			} else {
				add(x, y+1)
			}
		}
	}
	if !have {
		obj := &p.Objects[oi]
		g := &p.Design.Groups[obj.GroupIdx]
		for _, bi := range obj.BitIdx {
			for _, pt := range g.Bits[bi].PinLocs() {
				add(pt.X, pt.Y)
			}
		}
	}
	return r
}
