package route

import (
	"repro/internal/geom"
	"repro/internal/grid"
)

// BitRoute is the final routed geometry of one bit.
type BitRoute struct {
	// Routed is false when the bit has no route.
	Routed bool
	// Tree is the 2-D routing tree (valid when Routed).
	Tree geom.Tree
	// HLayer and VLayer carry the layer assignment of the horizontal and
	// vertical trunks.
	HLayer, VLayer int
}

// SolutionObject is one routed topology class inside a group: the set of
// bits sharing an equivalent topology, with a representative. The initial
// identification objects produce one each; post-optimization clustering
// may add more (one per cluster).
type SolutionObject struct {
	// RepTree is the representative topology (the backbone).
	RepTree geom.Tree
	// RepBit indexes the representative bit within the group.
	RepBit int
	// BitIdx lists the member bits (group-relative indices).
	BitIdx []int
	// HLayer and VLayer carry the layer assignment.
	HLayer, VLayer int
	// PinMap[k][i] maps pin i of the representative to the corresponding
	// pin of member k, mirroring ident.Object. Nil when unknown (clusters
	// of a single bit map trivially).
	PinMap [][]int
}

// Routing is the complete routed state of a design: per-bit geometry plus
// the per-group solution objects used for regularity (Eq. 9) and distance
// (Vio(dst)) evaluation.
type Routing struct {
	// Bits is indexed [group][bit].
	Bits [][]BitRoute
	// Objects is indexed [group]; each entry lists the routed solution
	// objects of that group.
	Objects [][]SolutionObject
}

// NewRouting returns an all-unrouted routing shaped like the problem's
// design.
func (p *Problem) NewRouting() *Routing {
	r := &Routing{
		Bits:    make([][]BitRoute, len(p.Design.Groups)),
		Objects: make([][]SolutionObject, len(p.Design.Groups)),
	}
	for gi := range p.Design.Groups {
		r.Bits[gi] = make([]BitRoute, len(p.Design.Groups[gi].Bits))
	}
	return r
}

// ExtractRouting materializes the per-bit geometry of an assignment.
func (p *Problem) ExtractRouting(a Assignment) *Routing {
	r := p.NewRouting()
	for i, c := range a.Choice {
		if c < 0 {
			continue
		}
		obj := &p.Objects[i]
		cand := &p.Cands[i][c]
		gi := obj.GroupIdx
		for k, bi := range obj.BitIdx {
			r.Bits[gi][bi] = BitRoute{
				Routed: true,
				Tree:   cand.Topo.BitTrees[k],
				HLayer: cand.HLayer,
				VLayer: cand.VLayer,
			}
		}
		r.Objects[gi] = append(r.Objects[gi], SolutionObject{
			RepTree: cand.Topo.Backbone,
			RepBit:  obj.BitIdx[obj.Rep],
			BitIdx:  append([]int(nil), obj.BitIdx...),
			HLayer:  cand.HLayer,
			VLayer:  cand.VLayer,
			PinMap:  obj.PinMap,
		})
	}
	return r
}

// GroupRouted reports whether every bit of group gi is routed.
func (r *Routing) GroupRouted(gi int) bool {
	for _, b := range r.Bits[gi] {
		if !b.Routed {
			return false
		}
	}
	return true
}

// RoutedGroups counts fully routed groups.
func (r *Routing) RoutedGroups() int {
	n := 0
	for gi := range r.Bits {
		if r.GroupRouted(gi) {
			n++
		}
	}
	return n
}

// UsageOf accumulates the routing's track usage onto a fresh tracker.
func (r *Routing) UsageOf(g *grid.Grid) *grid.Usage {
	u := grid.NewUsage(g)
	for gi := range r.Bits {
		for _, b := range r.Bits[gi] {
			if !b.Routed {
				continue
			}
			AddTreeUsage(u, b.Tree, b.HLayer, b.VLayer, 1)
		}
	}
	return u
}

// AddTreeUsage applies (or removes, with delta -1) one bit tree's track
// usage: horizontal canonical segments on hLayer, vertical on vLayer.
func AddTreeUsage(u *grid.Usage, t geom.Tree, hLayer, vLayer, delta int) {
	for _, s := range t.Canon().Segs {
		l := hLayer
		if s.Vertical() && s.Len() > 0 {
			l = vLayer
		}
		u.AddSeg(l, s, delta)
	}
}

// TreeFits reports whether the tree can take one more track on its layers.
func TreeFits(u *grid.Usage, t geom.Tree, hLayer, vLayer int) bool {
	for _, s := range t.Canon().Segs {
		l := hLayer
		if s.Vertical() && s.Len() > 0 {
			l = vLayer
		}
		if !u.SegFits(l, s, 1) {
			return false
		}
	}
	return true
}
