package route

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/signal"
)

// cloneSmall deep-copies smallDesign's output so tests can mutate freely.
func cloneSmall() *signal.Design {
	d := smallDesign()
	nd := *d
	nd.Grid.Blockages = append([]signal.Blockage(nil), d.Grid.Blockages...)
	nd.Groups = make([]signal.Group, len(d.Groups))
	for gi := range d.Groups {
		g := d.Groups[gi]
		g.Bits = append([]signal.Bit(nil), g.Bits...)
		for bi := range g.Bits {
			g.Bits[bi].Pins = append([]signal.Pin(nil), g.Bits[bi].Pins...)
		}
		nd.Groups[gi] = g
	}
	return &nd
}

func TestDiffDesigns(t *testing.T) {
	base := cloneSmall()

	t.Run("identical", func(t *testing.T) {
		delta, ok := DiffDesigns(base, cloneSmall())
		if !ok || !delta.Empty() {
			t.Fatalf("identical designs: delta %+v ok=%v, want empty delta", delta, ok)
		}
	})

	t.Run("blockage order ignored", func(t *testing.T) {
		b1 := signal.Blockage{Layer: 0, Rect: geom.Rect{Lo: geom.Pt(1, 1), Hi: geom.Pt(2, 2)}}
		b2 := signal.Blockage{Layer: 1, Rect: geom.Rect{Lo: geom.Pt(5, 5), Hi: geom.Pt(6, 6)}}
		a, b := cloneSmall(), cloneSmall()
		a.Grid.Blockages = []signal.Blockage{b1, b2}
		b.Grid.Blockages = []signal.Blockage{b2, b1}
		delta, ok := DiffDesigns(a, b)
		if !ok || !delta.Empty() {
			t.Fatalf("reordered blockages: delta %+v ok=%v, want empty delta", delta, ok)
		}
	})

	t.Run("added blockage dirties its rect", func(t *testing.T) {
		edited := cloneSmall()
		r := geom.Rect{Lo: geom.Pt(3, 3), Hi: geom.Pt(5, 5)}
		edited.Grid.Blockages = append(edited.Grid.Blockages, signal.Blockage{Layer: 0, Rect: r})
		delta, ok := DiffDesigns(base, edited)
		if !ok || len(delta.DirtyRects) != 1 || delta.DirtyRects[0] != r || len(delta.ChangedGroups) != 0 {
			t.Fatalf("added blockage: delta %+v ok=%v, want one dirty rect %v", delta, ok, r)
		}
	})

	t.Run("moved group", func(t *testing.T) {
		edited := cloneSmall()
		for bi := range edited.Groups[1].Bits {
			for pi := range edited.Groups[1].Bits[bi].Pins {
				edited.Groups[1].Bits[bi].Pins[pi].Loc.X++
			}
		}
		delta, ok := DiffDesigns(base, edited)
		if !ok || len(delta.ChangedGroups) != 1 || delta.ChangedGroups[0] != 1 {
			t.Fatalf("moved group: delta %+v ok=%v, want group 1 changed", delta, ok)
		}
		if len(delta.DirtyRects) != 2 {
			t.Fatalf("moved group: %d dirty rects, want old+new pin bboxes", len(delta.DirtyRects))
		}
	})

	t.Run("pin names ignored", func(t *testing.T) {
		edited := cloneSmall()
		edited.Groups[0].Bits[0].Pins[0].Name = "renamed"
		edited.Groups[0].Name = "rebranded"
		delta, ok := DiffDesigns(base, edited)
		if !ok || !delta.Empty() {
			t.Fatalf("renames: delta %+v ok=%v, want empty delta", delta, ok)
		}
	})

	t.Run("grid shape change is incompatible", func(t *testing.T) {
		edited := cloneSmall()
		edited.Grid.W++
		if _, ok := DiffDesigns(base, edited); ok {
			t.Fatal("resized grid diffed as compatible")
		}
		edited = cloneSmall()
		edited.Grid.EdgeCap++
		if _, ok := DiffDesigns(base, edited); ok {
			t.Fatal("recapacitated grid diffed as compatible")
		}
	})
}

// rebuildEquals builds the edited design cold and via RebuildCtx from the
// base problem, and requires the problems to match on every public field
// the solvers read.
func rebuildEquals(t *testing.T, base *Problem, edited *signal.Design, delta Delta) RebuildStats {
	t.Helper()
	cold, err := Build(edited, base.Opt)
	if err != nil {
		t.Fatalf("cold build: %v", err)
	}
	inc, stats, err := base.RebuildCtx(context.Background(), edited, delta)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if !reflect.DeepEqual(cold.Objects, inc.Objects) {
		t.Fatalf("objects differ: cold %d vs incremental %d", len(cold.Objects), len(inc.Objects))
	}
	if !reflect.DeepEqual(cold.GroupObjs, inc.GroupObjs) {
		t.Fatalf("group-object maps differ")
	}
	if !reflect.DeepEqual(cold.Cands, inc.Cands) {
		t.Fatalf("candidate lists differ")
	}
	// The kernel is a pure function of (grid, objects, candidates, options);
	// spot-check it agrees through the public pair-cost API.
	for i := range cold.Objects {
		for _, q := range cold.Partners(i) {
			if len(cold.Cands[i]) == 0 || len(cold.Cands[q]) == 0 {
				continue
			}
			if c, in := cold.PairCost(i, 0, q, 0), inc.PairCost(i, 0, q, 0); c != in {
				t.Fatalf("pair cost (%d,%d) differs: cold %v incremental %v", i, q, c, in)
			}
		}
	}
	return stats
}

func TestRebuildMatchesColdBuild(t *testing.T) {
	base, err := Build(cloneSmall(), Options{})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("remote blockage keeps all candidates", func(t *testing.T) {
		edited := cloneSmall()
		edited.Grid.Blockages = append(edited.Grid.Blockages,
			signal.Blockage{Layer: 0, Rect: geom.Rect{Lo: geom.Pt(21, 21), Hi: geom.Pt(22, 22)}})
		delta, ok := DiffDesigns(base.Design, edited)
		if !ok {
			t.Fatal("diff not ok")
		}
		stats := rebuildEquals(t, base, edited, delta)
		if stats.Regenerated != 0 || stats.KeptObjects != len(base.Objects) {
			t.Fatalf("remote edit: kept %d regenerated %d, want all %d kept",
				stats.KeptObjects, stats.Regenerated, len(base.Objects))
		}
	})

	t.Run("overlapping blockage invalidates bus objects", func(t *testing.T) {
		edited := cloneSmall()
		edited.Grid.Blockages = append(edited.Grid.Blockages,
			signal.Blockage{Layer: 0, Rect: geom.Rect{Lo: geom.Pt(6, 2), Hi: geom.Pt(8, 3)}})
		delta, ok := DiffDesigns(base.Design, edited)
		if !ok {
			t.Fatal("diff not ok")
		}
		stats := rebuildEquals(t, base, edited, delta)
		if stats.Regenerated == 0 {
			t.Fatal("blockage across the bus footprint invalidated nothing")
		}
	})

	t.Run("moved group regenerates and matches", func(t *testing.T) {
		edited := cloneSmall()
		for bi := range edited.Groups[1].Bits {
			for pi := range edited.Groups[1].Bits[bi].Pins {
				edited.Groups[1].Bits[bi].Pins[pi].Loc.Y++
			}
		}
		delta, ok := DiffDesigns(base.Design, edited)
		if !ok {
			t.Fatal("diff not ok")
		}
		stats := rebuildEquals(t, base, edited, delta)
		if stats.Regenerated == 0 {
			t.Fatal("moved group regenerated nothing")
		}
	})

	t.Run("group count change refuses", func(t *testing.T) {
		edited := cloneSmall()
		edited.Groups = edited.Groups[:1]
		if _, _, err := base.RebuildCtx(context.Background(), edited, Delta{}); err == nil {
			t.Fatal("rebuild across group counts succeeded, want error")
		}
	})
}
