package route

// Degenerate-input coverage for the differ and the incremental rebuild:
// the shapes ECO churn actually produces — single-bit groups whose pin
// bounding boxes are lines, single-cell (zero-area) dirty rects, and a
// blockage added and another removed in the same edit.

import (
	"testing"

	"repro/internal/benchgen"
	"repro/internal/geom"
	"repro/internal/signal"
)

// moveGroupPins translates every pin of group gi by (dx, dy) in place.
func moveGroupPins(d *signal.Design, gi, dx, dy int) {
	for bi := range d.Groups[gi].Bits {
		for pi := range d.Groups[gi].Bits[bi].Pins {
			p := &d.Groups[gi].Bits[bi].Pins[pi]
			p.Loc = geom.Pt(p.Loc.X+dx, p.Loc.Y+dy)
		}
	}
}

// cloneDesign deep-copies any design (cloneSmall is pinned to smallDesign).
func cloneDesign(d *signal.Design) *signal.Design {
	nd := *d
	nd.Grid.Blockages = append([]signal.Blockage(nil), d.Grid.Blockages...)
	nd.Groups = make([]signal.Group, len(d.Groups))
	for gi := range d.Groups {
		g := d.Groups[gi]
		g.Bits = append([]signal.Bit(nil), g.Bits...)
		for bi := range g.Bits {
			g.Bits[bi].Pins = append([]signal.Pin(nil), g.Bits[bi].Pins...)
		}
		nd.Groups[gi] = g
	}
	return &nd
}

// TestDiffDesignsSingleBitGroups: width-1 groups have degenerate (line or
// point) pin bounding boxes; the diff must still classify a move and the
// incremental rebuild must still match the cold build exactly.
func TestDiffDesignsSingleBitGroups(t *testing.T) {
	baseD := benchgen.SingleBitGroups(5, 6, 24, 24)
	if err := baseD.Validate(); err != nil {
		t.Fatal(err)
	}
	base, err := Build(baseD, Options{})
	if err != nil {
		t.Fatal(err)
	}

	edited := cloneDesign(baseD)
	moveGroupPins(edited, 2, 1, 1)
	delta, ok := DiffDesigns(baseD, edited)
	if !ok {
		t.Fatal("single-bit designs diffed as incompatible")
	}
	if len(delta.ChangedGroups) != 1 || delta.ChangedGroups[0] != 2 {
		t.Fatalf("changed groups %v, want [2]", delta.ChangedGroups)
	}
	// A single-bit group's pin bbox is a line (or a point): the dirty rects
	// must still be present and degenerate, not dropped.
	if len(delta.DirtyRects) != 2 {
		t.Fatalf("%d dirty rects, want old+new pin bboxes", len(delta.DirtyRects))
	}
	for _, r := range delta.DirtyRects {
		if r.Lo.X != r.Hi.X && r.Lo.Y != r.Hi.Y {
			t.Fatalf("single-bit dirty rect %v is not a line", r)
		}
	}
	if stats := rebuildEquals(t, base, edited, delta); stats.Regenerated == 0 {
		t.Fatal("moved single-bit group regenerated nothing")
	}
}

// TestDiffDesignsZeroAreaDirtyRect: a one-cell blockage (Lo == Hi) is the
// smallest possible edit. The inclusive intersects test must still
// invalidate overlapping footprints, and the rebuild must match cold.
func TestDiffDesignsZeroAreaDirtyRect(t *testing.T) {
	baseD := cloneSmall()
	base, err := Build(baseD, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// One cell right on the bus trunk of smallDesign's group 0.
	cell := geom.Rect{Lo: geom.Pt(7, 2), Hi: geom.Pt(7, 2)}
	edited := cloneSmall()
	edited.Grid.Blockages = append(edited.Grid.Blockages, signal.Blockage{Layer: 0, Rect: cell})
	delta, ok := DiffDesigns(baseD, edited)
	if !ok || len(delta.DirtyRects) != 1 || delta.DirtyRects[0] != cell {
		t.Fatalf("delta %+v ok=%v, want the single cell %v dirty", delta, ok, cell)
	}
	if !delta.intersects(geom.Rect{Lo: geom.Pt(0, 0), Hi: geom.Pt(23, 23)}) {
		t.Fatal("zero-area dirty rect intersects nothing")
	}
	if delta.intersects(geom.Rect{Lo: geom.Pt(8, 3), Hi: geom.Pt(23, 23)}) {
		t.Fatal("zero-area dirty rect intersects a disjoint region")
	}
	if stats := rebuildEquals(t, base, edited, delta); stats.Regenerated == 0 {
		t.Fatal("one-cell blockage on the bus trunk invalidated nothing")
	}
}

// TestDiffDesignsAddAndRemoveBlockage: one edit step that removes a
// blockage and adds a different one — both rects must be dirty (capacity
// was freed under the removed one and taken under the added one), and the
// incremental rebuild must match cold.
func TestDiffDesignsAddAndRemoveBlockage(t *testing.T) {
	removed := signal.Blockage{Layer: 0, Rect: geom.Rect{Lo: geom.Pt(2, 2), Hi: geom.Pt(3, 3)}}
	added := signal.Blockage{Layer: 1, Rect: geom.Rect{Lo: geom.Pt(15, 15), Hi: geom.Pt(17, 16)}}

	baseD := cloneSmall()
	baseD.Grid.Blockages = append(baseD.Grid.Blockages, removed)
	base, err := Build(baseD, Options{})
	if err != nil {
		t.Fatal(err)
	}

	edited := cloneDesign(baseD)
	edited.Grid.Blockages = edited.Grid.Blockages[:len(edited.Grid.Blockages)-1]
	edited.Grid.Blockages = append(edited.Grid.Blockages, added)
	delta, ok := DiffDesigns(baseD, edited)
	if !ok {
		t.Fatal("diff not ok")
	}
	if len(delta.ChangedGroups) != 0 {
		t.Fatalf("changed groups %v, want none", delta.ChangedGroups)
	}
	if len(delta.DirtyRects) != 2 {
		t.Fatalf("%d dirty rects %v, want removed+added", len(delta.DirtyRects), delta.DirtyRects)
	}
	seen := map[geom.Rect]bool{}
	for _, r := range delta.DirtyRects {
		seen[r] = true
	}
	if !seen[removed.Rect] || !seen[added.Rect] {
		t.Fatalf("dirty rects %v, want both %v and %v", delta.DirtyRects, removed.Rect, added.Rect)
	}
	rebuildEquals(t, base, edited, delta)
}
