package route

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/geom"
)

// exportBit is the serialized form of one routed bit.
type exportBit struct {
	Group  string   `json:"group"`
	Bit    string   `json:"bit"`
	Routed bool     `json:"routed"`
	HLayer int      `json:"hLayer,omitempty"`
	VLayer int      `json:"vLayer,omitempty"`
	Segs   [][4]int `json:"segs,omitempty"`
	Pins   [][2]int `json:"pins"`
	Driver int      `json:"driver"`
}

// exportDoc is the serialized routing document.
type exportDoc struct {
	Design string      `json:"design"`
	Bits   []exportBit `json:"bits"`
}

// WriteRoutedJSON serializes the routed geometry of the problem's design:
// one record per bit with its layer assignment and canonical segments.
// The format is self-describing and stable, intended for downstream tools
// (DRC scripts, visualizers) rather than for round-tripping back into the
// solver.
func (p *Problem) WriteRoutedJSON(w io.Writer, r *Routing) error {
	doc := exportDoc{Design: p.Design.Name}
	for gi := range p.Design.Groups {
		g := &p.Design.Groups[gi]
		gname := g.Name
		if gname == "" {
			gname = fmt.Sprintf("g%d", gi)
		}
		for bi := range g.Bits {
			bit := &g.Bits[bi]
			bname := bit.Name
			if bname == "" {
				bname = fmt.Sprintf("b%d", bi)
			}
			eb := exportBit{
				Group:  gname,
				Bit:    bname,
				Driver: bit.Driver,
			}
			for _, pin := range bit.Pins {
				eb.Pins = append(eb.Pins, [2]int{pin.Loc.X, pin.Loc.Y})
			}
			br := r.Bits[gi][bi]
			if br.Routed {
				eb.Routed = true
				eb.HLayer, eb.VLayer = br.HLayer, br.VLayer
				for _, s := range br.Tree.Canon().Segs {
					eb.Segs = append(eb.Segs, [4]int{s.A.X, s.A.Y, s.B.X, s.B.Y})
				}
			}
			doc.Bits = append(doc.Bits, eb)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ReadRoutedJSON parses a routed-geometry document and validates that
// every routed bit's segments form a connected tree over its pins. It
// returns the per-bit trees keyed "group/bit" — a verification aid for
// externally post-processed routes.
func ReadRoutedJSON(rd io.Reader) (map[string]geom.Tree, error) {
	var doc exportDoc
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("route: decoding routed JSON: %w", err)
	}
	out := make(map[string]geom.Tree)
	for _, eb := range doc.Bits {
		if !eb.Routed {
			continue
		}
		var t geom.Tree
		for _, s := range eb.Segs {
			a := geom.Pt(s[0], s[1])
			b := geom.Pt(s[2], s[3])
			if a.X != b.X && a.Y != b.Y {
				return nil, fmt.Errorf("route: %s/%s has diagonal segment %v-%v", eb.Group, eb.Bit, a, b)
			}
			t.Append(geom.Seg{A: a, B: b})
		}
		pins := make([]geom.Point, len(eb.Pins))
		for i, p := range eb.Pins {
			pins[i] = geom.Pt(p[0], p[1])
		}
		if !t.Connected(pins) {
			return nil, fmt.Errorf("route: %s/%s route does not connect its pins", eb.Group, eb.Bit)
		}
		out[eb.Group+"/"+eb.Bit] = t
	}
	return out, nil
}
