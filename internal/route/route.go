// Package route turns a design into Streak's candidate-selection problem
// (formulation (3) in the paper): it partitions groups into objects,
// generates 3-D candidates for every object, prices candidates (c(i,j))
// and pairwise irregularity (c(i,j,p,q)), and provides assignment legality
// and cost evaluation shared by the ILP and primal-dual solvers.
package route

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/signal"
	"repro/internal/topo"
)

// Options tunes problem construction.
type Options struct {
	// Topo tunes backbone and candidate generation.
	Topo topo.Options
	// M is the non-routing penalty of formulation (3a). Default 1e6.
	M float64
	// RegWeight scales the 1/ratio irregularity cost. Default 20.
	RegWeight float64
	// NoShare is the penalty for topology pairs sharing no RC; it must
	// stay below M so routability keeps first priority. Default 2000.
	NoShare float64
	// LayerPenalty is charged per layer of distance between the shared
	// trunks of two candidates. Default 4.
	LayerPenalty float64
	// MaxCandidates caps the 3-D candidates kept per object. Default 8.
	MaxCandidates int
	// PairNeighbors bounds, per object, how many same-group neighbor
	// objects contribute pair terms (objects are neighbored in index
	// order). Zero means all pairs. Large multipin groups otherwise
	// explode quadratically. Default 4.
	PairNeighbors int
	// Workers sizes the worker pool used for candidate generation and the
	// pair-cost kernel fill. Zero (or negative) means
	// runtime.GOMAXPROCS(0); 1 forces a sequential build. Results are
	// bit-identical for every worker count.
	Workers int
	// LazyKernelCells is the per-pair table size (in cells) above which
	// the pair-cost kernel defers the ratio computation to first use
	// instead of filling it at build time. Default 4096; set negative to
	// make every table lazy.
	LazyKernelCells int
}

func (o Options) withDefaults() Options {
	if o.M == 0 {
		o.M = 1e6
	}
	if o.RegWeight == 0 {
		o.RegWeight = 20
	}
	if o.NoShare == 0 {
		o.NoShare = 2000
	}
	if o.LayerPenalty == 0 {
		o.LayerPenalty = 4
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 12
	}
	if o.PairNeighbors == 0 {
		o.PairNeighbors = 4
	}
	if o.LazyKernelCells == 0 {
		o.LazyKernelCells = 4096
	}
	return o
}

// Problem is the built selection problem.
type Problem struct {
	// Design is the input design.
	Design *signal.Design
	// Grid is the routing grid with blockages applied.
	Grid *grid.Grid
	// Objects lists every routing object across all groups.
	Objects []ident.Object
	// Cands[i] are the 3-D candidates of object i, sorted by cost.
	Cands [][]topo.Candidate
	// GroupObjs[g] lists the object indices belonging to group g.
	GroupObjs [][]int
	// Opt holds the options the problem was built with.
	Opt Options

	// kern is the precomputed pair-cost kernel (see kernel.go).
	kern kernel
	// bitObj indexes (group index, bit index) to the owning object and the
	// bit's position within it, replacing the linear all-objects scan that
	// metrics and refinement performed per bit.
	bitObj map[[2]int]bitRef

	// usagePool hands out pooled Usage trackers for Grid (see UsagePool).
	usagePool *grid.UsagePool
	poolOnce  sync.Once
}

// UsagePool returns the problem's shared pool of Usage trackers for Grid.
// Solvers draw per-solve scratch from it so steady-state serving (streakd
// answering request after request on one problem) reuses the per-layer edge
// arrays instead of reallocating them every solve. Safe for concurrent use.
func (p *Problem) UsagePool() *grid.UsagePool {
	p.poolOnce.Do(func() { p.usagePool = grid.NewUsagePool(p.Grid) })
	return p.usagePool
}

// bitRef locates one bit inside the object list: object index plus the
// bit's position in that object's BitIdx.
type bitRef struct{ obj, k int }

// NewGrid materializes the design's grid spec, applying blockages.
func NewGrid(d *signal.Design) *grid.Grid {
	g := grid.New(d.Grid.W, d.Grid.H, grid.DefaultLayers(d.Grid.NumLayers, d.Grid.EdgeCap))
	for _, b := range d.Grid.Blockages {
		g.SetRegionCap(b.Layer, b.Rect, b.Cap)
	}
	return g
}

// Build constructs the selection problem for a design.
func Build(d *signal.Design, opt Options) (*Problem, error) {
	return BuildCtx(context.Background(), d, opt)
}

// BuildCtx is Build honoring the context. Construction runs in three
// stages: a sequential identification pass, a parallel per-object
// candidate-generation fan-out (topology generation plus 3-D expansion,
// partitioned across Options.Workers goroutines and stitched back by
// object index, so the result is bit-identical to a sequential build), and
// a parallel pair-cost kernel fill. Cancellation stops the fan-out between
// objects and returns ctx's error.
func BuildCtx(ctx context.Context, d *signal.Design, opt Options) (*Problem, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := faultinject.Fire(ctx, faultinject.RouteBuild); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	opt = opt.withDefaults()
	p := &Problem{
		Design:    d,
		Grid:      NewGrid(d),
		Opt:       opt,
		GroupObjs: make([][]int, len(d.Groups)),
	}
	for gi := range d.Groups {
		for _, o := range ident.Partition(gi, &d.Groups[gi]) {
			idx := len(p.Objects)
			p.Objects = append(p.Objects, o)
			p.GroupObjs[gi] = append(p.GroupObjs[gi], idx)
		}
	}
	workers := opt.WorkerCount()
	p.Cands = make([][]topo.Candidate, len(p.Objects))
	rec := obs.FromContext(ctx)
	var arenaGets0, arenaFresh0 int64
	if rec != nil {
		arenaGets0, arenaFresh0 = geom.ArenaCounters()
	}
	err := obs.Do(ctx, obs.StageBuild, workers, func(ctx context.Context) error {
		return parallelFor(ctx, workers, len(p.Objects), func(i int) {
			obj := &p.Objects[i]
			g := &d.Groups[obj.GroupIdx]
			if rec == nil {
				ots := topo.ObjectTopologies(g, obj, opt.Topo)
				cands := topo.Expand3D(p.Grid, ots, opt.Topo)
				p.Cands[i] = trimDiverse(cands, opt.MaxCandidates)
				return
			}
			// Traced build: time the 2-D topology generation and the 3-D
			// expansion separately, one event pair per object.
			t0 := time.Now()
			ots := topo.ObjectTopologies(g, obj, opt.Topo)
			t1 := time.Now()
			rec.EmitAt("build.topo", "build", t0, t1.Sub(t0), obs.Args{
				"object": float64(i), "topologies": float64(len(ots)),
			})
			cands := topo.Expand3D(p.Grid, ots, opt.Topo)
			p.Cands[i] = trimDiverse(cands, opt.MaxCandidates)
			rec.EmitAt("build.expand", "build", t1, time.Since(t1), obs.Args{
				"object": float64(i), "candidates": float64(len(p.Cands[i])),
			})
		})
	})
	if err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	if rec != nil {
		total := 0
		for i := range p.Cands {
			total += len(p.Cands[i])
		}
		rec.Add(obs.CounterBuildObjects, int64(len(p.Objects)))
		rec.Add(obs.CounterBuildCandidates, int64(total))
		// Pooled-vs-fresh geometry-arena split for this build. The global
		// counters are shared across concurrent builds, so the deltas are
		// attributions, not exact per-build counts; in the common one-build-
		// per-recorder case they are exact.
		gets1, fresh1 := geom.ArenaCounters()
		rec.Add(obs.CounterBuildArenaPoolGets, gets1-arenaGets0)
		rec.Add(obs.CounterBuildArenaPoolFresh, fresh1-arenaFresh0)
	}
	p.indexBits()
	if err := obs.Do(ctx, obs.StageKernel, workers, func(ctx context.Context) error {
		return p.buildKernel(ctx, workers)
	}); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	return p, nil
}

// indexBits builds the (group, bit) -> object lookup behind BitTree.
func (p *Problem) indexBits() {
	p.bitObj = make(map[[2]int]bitRef)
	for i := range p.Objects {
		obj := &p.Objects[i]
		for k, bi := range obj.BitIdx {
			key := [2]int{obj.GroupIdx, bi}
			if _, dup := p.bitObj[key]; !dup {
				p.bitObj[key] = bitRef{i, k}
			}
		}
	}
}

// trimDiverse caps the candidate list at maxN while keeping topology
// diversity: candidates are taken round-robin across 2-D topologies in
// cost order, so a cheap topology's layer variants cannot crowd out the
// detour topologies the solver needs under congestion.
func trimDiverse(cands []topo.Candidate, maxN int) []topo.Candidate {
	if len(cands) <= maxN {
		return cands
	}
	byTopo := make(map[int][]topo.Candidate)
	var order []int
	for _, c := range cands { // already cost-sorted
		if _, seen := byTopo[c.TopoIdx]; !seen {
			order = append(order, c.TopoIdx)
		}
		byTopo[c.TopoIdx] = append(byTopo[c.TopoIdx], c)
	}
	out := make([]topo.Candidate, 0, maxN)
	for round := 0; len(out) < maxN; round++ {
		added := false
		for _, ti := range order {
			if round < len(byTopo[ti]) && len(out) < maxN {
				out = append(out, byTopo[ti][round])
				added = true
			}
		}
		if !added {
			break
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cost < out[j].Cost })
	return out
}

// Group returns the signal group owning object i.
func (p *Problem) Group(i int) *signal.Group {
	return &p.Design.Groups[p.Objects[i].GroupIdx]
}

// RepBit returns the representative bit of object i.
func (p *Problem) RepBit(i int) *signal.Bit {
	return p.Objects[i].RepBit(p.Group(i))
}

// Cost returns c(i,j): the wirelength-plus-via cost of candidate j of
// object i.
func (p *Problem) Cost(i, j int) float64 {
	return float64(p.Cands[i][j].Cost)
}

// Partners returns the same-group objects that contribute pair terms with
// object i, respecting the PairNeighbors bound.
func (p *Problem) Partners(i int) []int {
	objs := p.GroupObjs[p.Objects[i].GroupIdx]
	if len(objs) <= 1 {
		return nil
	}
	pos := -1
	for k, oi := range objs {
		if oi == i {
			pos = k
			break
		}
	}
	var out []int
	for k, oi := range objs {
		if oi == i {
			continue
		}
		if p.Opt.PairNeighbors > 0 && iabs(k-pos) > p.Opt.PairNeighbors {
			continue
		}
		out = append(out, oi)
	}
	return out
}

// PairCost returns c(i,j,p,q) of formulation (3a): the irregularity cost of
// simultaneously selecting candidate j of object i and candidate r of
// object q. Objects in different groups never pay pair costs. The
// regularity ratio behind the cost comes from the precomputed pair-cost
// kernel (two array indexings per lookup; see kernel.go), so the method is
// safe to call from concurrent solver legs.
func (p *Problem) PairCost(i, j, q, r int) float64 {
	if p.Objects[i].GroupIdx != p.Objects[q].GroupIdx || i == q {
		return 0
	}
	ratio := p.pairRatio(i, p.Cands[i][j].TopoIdx, q, p.Cands[q][r].TopoIdx)
	ld := layerDist(&p.Cands[i][j], &p.Cands[q][r])
	return topo.PairIrregularity(ratio, p.Opt.RegWeight, p.Opt.NoShare, ld, p.Opt.LayerPenalty)
}

// layerDist measures how far apart the trunks of two candidates sit in the
// metal stack.
func layerDist(a, b *topo.Candidate) int {
	return iabs(a.HLayer-b.HLayer) + iabs(a.VLayer-b.VLayer)
}

// Assignment selects one candidate per object (or -1 for unrouted).
type Assignment struct {
	// Choice[i] is the selected candidate index of object i, or -1.
	Choice []int
}

// NewAssignment returns an all-unrouted assignment for the problem.
func (p *Problem) NewAssignment() Assignment {
	a := Assignment{Choice: make([]int, len(p.Objects))}
	for i := range a.Choice {
		a.Choice[i] = -1
	}
	return a
}

// RoutedObjects counts objects with a selected candidate.
func (a Assignment) RoutedObjects() int {
	n := 0
	for _, c := range a.Choice {
		if c >= 0 {
			n++
		}
	}
	return n
}

// Usage accumulates the track usage of the assignment on a fresh tracker.
func (p *Problem) Usage(a Assignment) *grid.Usage {
	u := grid.NewUsage(p.Grid)
	p.AddUsage(a, u, 1)
	return u
}

// AddUsage applies (delta=+1) or removes (delta=-1) the assignment's track
// usage on an existing tracker.
func (p *Problem) AddUsage(a Assignment, u *grid.Usage, delta int) {
	for i, c := range a.Choice {
		if c < 0 {
			continue
		}
		for _, e := range p.Cands[i][c].Edges {
			u.Add(int(e.Layer), int(e.Idx), int(e.N)*delta)
		}
	}
}

// Legal reports whether the assignment satisfies every edge capacity
// (constraint (3c)); the returned error pinpoints the first overflow.
func (p *Problem) Legal(a Assignment) error {
	if len(a.Choice) != len(p.Objects) {
		return fmt.Errorf("route: assignment covers %d of %d objects", len(a.Choice), len(p.Objects))
	}
	u := p.Usage(a)
	if u.Overflow() == 0 {
		return nil
	}
	for l := range p.Grid.Layers {
		for idx := 0; idx < p.Grid.EdgeCount(l); idx++ {
			if u.Avail(l, idx) < 0 {
				x, y := p.Grid.EdgeCell(l, idx)
				return fmt.Errorf("route: edge (%d,%d) layer %d overflows by %d", x, y, l, -u.Avail(l, idx))
			}
		}
	}
	return nil
}

// CandidateFits reports whether candidate j of object i fits the remaining
// capacity in u. The check intersects the candidate's word masks against
// the tracker's blocked-edge bitset — O(occupied edges / 64) word-ANDs —
// and falls back to a scalar availability check only for the (rare) edges
// needing two or more tracks.
func (p *Problem) CandidateFits(i, j int, u *grid.Usage) bool {
	c := &p.Cands[i][j]
	layer := int32(-1)
	var words []uint64
	for _, m := range c.Masks {
		if m.Layer != layer {
			layer = m.Layer
			words = u.BlockedWords(int(layer))
		}
		if words[m.Word]&m.Bits != 0 {
			return false
		}
	}
	for _, e := range c.Heavy {
		if u.Avail(int(e.Layer), int(e.Idx)) < int(e.N) {
			return false
		}
	}
	return true
}

// ObjectiveValue evaluates formulation (3a) for the assignment: candidate
// costs, M per unrouted object, and pair irregularity over same-group
// partner pairs (each unordered pair counted once).
func (p *Problem) ObjectiveValue(a Assignment) float64 {
	total := 0.0
	for i, c := range a.Choice {
		if c < 0 {
			total += p.Opt.M
			continue
		}
		total += p.Cost(i, c)
		for _, q := range p.Partners(i) {
			if q > i && a.Choice[q] >= 0 {
				total += p.PairCost(i, c, q, a.Choice[q])
			}
		}
	}
	return total
}

// BitTree returns the routed tree of a specific bit under the assignment,
// or nil when its object is unrouted or the bit is unknown. The bit is
// addressed by group and bit index and resolved through the prebuilt
// (group, bit) -> object index, so per-bit callers (metrics, refinement)
// no longer scan every object.
func (p *Problem) BitTree(a Assignment, groupIdx, bitIdx int) *geom.Tree {
	ref, ok := p.bitObj[[2]int{groupIdx, bitIdx}]
	if !ok || a.Choice[ref.obj] < 0 {
		return nil
	}
	t := p.Cands[ref.obj][a.Choice[ref.obj]].Topo.BitTrees[ref.k]
	return &t
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
