package pd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/signal"
)

// TestSolveInvariantsProperty checks, over random designs, the three
// invariants Algorithm 2 guarantees by construction: the assignment is
// always capacity-legal, the reported objective matches an independent
// re-evaluation, and every object is either routed or genuinely had no
// feasible candidate left at some point (never both).
func TestSolveInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := &signal.Design{
			Name: "q",
			Grid: signal.GridSpec{W: 18 + r.Intn(8), H: 18 + r.Intn(8), NumLayers: 2 + 2*r.Intn(2), EdgeCap: 1 + r.Intn(3)},
		}
		for gi := 0; gi < 1+r.Intn(3); gi++ {
			var g signal.Group
			bits := 1 + r.Intn(4)
			bx, by := r.Intn(8), r.Intn(8)
			dx, dy := 3+r.Intn(7), r.Intn(5)
			for b := 0; b < bits; b++ {
				g.Bits = append(g.Bits, signal.Bit{
					Driver: 0,
					Pins: []signal.Pin{
						{Loc: geom.Pt(bx, by+b)},
						{Loc: geom.Pt(bx+dx, by+dy+b)},
					},
				})
			}
			d.Groups = append(d.Groups, g)
		}
		p, err := route.Build(d, route.Options{})
		if err != nil {
			return false
		}
		res := Solve(p)
		if p.Legal(res.Assignment) != nil {
			return false
		}
		if res.Objective != p.ObjectiveValue(res.Assignment) {
			return false
		}
		// Choices are in range.
		for i, c := range res.Assignment.Choice {
			if c < -1 || c >= len(p.Cands[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
