package pd

import (
	"reflect"
	"testing"

	"repro/internal/grid"
	"repro/internal/route"
)

// TestSolveParallelPruneDeterminism asserts the parallel line-9 prune
// changes nothing: problems built with 1 and 8 workers solve to identical
// assignments (the prune is a pure filter, so fan-out must not affect
// which candidates survive).
func TestSolveParallelPruneDeterminism(t *testing.T) {
	d := busDesign(4, 6, 2) // tight capacity: the prune actually fires
	p1, err := route.Build(d, route.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p8, err := route.Build(d, route.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	r1 := Solve(p1)
	r8 := Solve(p8)
	if !reflect.DeepEqual(r1.Assignment, r8.Assignment) {
		t.Fatalf("assignments differ: %v vs %v", r1.Assignment.Choice, r8.Assignment.Choice)
	}
	if r1.Objective != r8.Objective {
		t.Fatalf("objectives differ: %v vs %v", r1.Objective, r8.Objective)
	}
	if err := p8.Legal(r8.Assignment); err != nil {
		t.Fatal(err)
	}
}

// TestPruneParallelMatchesSequential drives pruneParallel directly with a
// batch large enough to fan out, comparing the surviving alive sets of the
// sequential and parallel paths (and letting the race detector watch the
// concurrent writes).
func TestPruneParallelMatchesSequential(t *testing.T) {
	p, err := route.Build(busDesign(8, 6, 2), route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var refs []candRef
	mkAlive := func() [][]bool {
		alive := make([][]bool, len(p.Cands))
		for i := range alive {
			alive[i] = make([]bool, len(p.Cands[i]))
			for j := range alive[i] {
				alive[i][j] = true
			}
		}
		return alive
	}
	for i := range p.Cands {
		for j := range p.Cands[i] {
			refs = append(refs, candRef{i, j})
		}
	}
	if len(refs) < 64 {
		t.Fatalf("only %d refs; batch too small to exercise the parallel path", len(refs))
	}
	u := grid.NewUsage(p.Grid)
	// Saturate one edge used by some candidate so the prune has work.
	e := p.Cands[0][0].Edges[0]
	u.Add(int(e.Layer), int(e.Idx), p.Grid.Layers[e.Layer].Cap)
	seq, par := mkAlive(), mkAlive()
	pruneParallel(p, u, seq, refs, 1)
	pruneParallel(p, u, par, refs, 8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel prune survivors differ from sequential")
	}
	pruned := 0
	for i := range seq {
		for j := range seq[i] {
			if !seq[i][j] {
				pruned++
			}
		}
	}
	if pruned == 0 {
		t.Fatal("prune killed nothing; test is vacuous")
	}
}
