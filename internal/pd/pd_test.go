package pd

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/route"
	"repro/internal/signal"
)

// busDesign builds nGroups horizontal buses of width bits each, stacked
// vertically with spacing, on a grid with the given edge capacity.
func busDesign(nGroups, bits, cap int) *signal.Design {
	d := &signal.Design{
		Name: "bus",
		Grid: signal.GridSpec{W: 32, H: 8 + nGroups*(bits+2), NumLayers: 4, EdgeCap: cap},
	}
	for gi := 0; gi < nGroups; gi++ {
		var g signal.Group
		y0 := 2 + gi*(bits+2)
		for b := 0; b < bits; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Driver: 0,
				Pins:   []signal.Pin{{Loc: geom.Pt(2, y0+b)}, {Loc: geom.Pt(20, y0+b)}},
			})
		}
		d.Groups = append(d.Groups, g)
	}
	return d
}

func TestSolveRoutesEverythingWhenRoomy(t *testing.T) {
	p, err := route.Build(busDesign(3, 4, 8), route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(p)
	if res.Assignment.RoutedObjects() != len(p.Objects) {
		t.Fatalf("routed %d of %d objects", res.Assignment.RoutedObjects(), len(p.Objects))
	}
	if err := p.Legal(res.Assignment); err != nil {
		t.Fatalf("assignment illegal: %v", err)
	}
	if res.Iterations != len(p.Objects) {
		t.Errorf("iterations = %d, want %d", res.Iterations, len(p.Objects))
	}
	if res.Objective <= 0 || res.Objective >= p.Opt.M {
		t.Errorf("objective = %v suspicious", res.Objective)
	}
}

func TestSolveNeverOverflows(t *testing.T) {
	// Tight capacity: some objects must be dropped, but capacity always
	// holds (the invariant Algorithm 2 maintains by construction).
	for _, cap := range []int{1, 2, 3} {
		p, err := route.Build(busDesign(2, 6, cap), route.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := Solve(p)
		if err := p.Legal(res.Assignment); err != nil {
			t.Fatalf("cap %d: assignment illegal: %v", cap, err)
		}
	}
}

func TestSolveDropsUnroutableObjects(t *testing.T) {
	// Two identical buses on the SAME rows with capacity 1 and a single H
	// layer: only one can route; the other must be unrouted — never
	// overflowed.
	d := &signal.Design{
		Name: "overlap",
		Grid: signal.GridSpec{W: 24, H: 12, NumLayers: 2, EdgeCap: 1},
	}
	for gi := 0; gi < 2; gi++ {
		var g signal.Group
		for b := 0; b < 3; b++ {
			g.Bits = append(g.Bits, signal.Bit{
				Driver: 0,
				Pins:   []signal.Pin{{Loc: geom.Pt(2, 2+b)}, {Loc: geom.Pt(20, 2+b)}},
			})
		}
		d.Groups = append(d.Groups, g)
	}
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(p)
	if err := p.Legal(res.Assignment); err != nil {
		t.Fatalf("assignment illegal: %v", err)
	}
	if got := res.Assignment.RoutedObjects(); got != 1 {
		t.Errorf("routed %d objects, want exactly 1", got)
	}
	if res.Objective < p.Opt.M {
		t.Errorf("objective %v should include the M penalty for the dropped bus", res.Objective)
	}
}

func TestSolveIsDeterministic(t *testing.T) {
	d := busDesign(3, 3, 4)
	p1, _ := route.Build(d, route.Options{})
	p2, _ := route.Build(d, route.Options{})
	r1, r2 := Solve(p1), Solve(p2)
	for i := range r1.Assignment.Choice {
		if r1.Assignment.Choice[i] != r2.Assignment.Choice[i] {
			t.Fatalf("nondeterministic choice at object %d", i)
		}
	}
}

func TestSolvePrefersSharedTopologyWithinGroup(t *testing.T) {
	// Two identical-SV objects in one group: their chosen candidates
	// should share the same layers (pair cost penalizes divergence).
	d := &signal.Design{
		Name: "share",
		Grid: signal.GridSpec{W: 24, H: 24, NumLayers: 6, EdgeCap: 4},
		Groups: []signal.Group{{
			Bits: []signal.Bit{
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 2)}, {Loc: geom.Pt(14, 2)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 3)}, {Loc: geom.Pt(14, 3)}}},
				{Driver: 0, Pins: []signal.Pin{{Loc: geom.Pt(2, 6)}, {Loc: geom.Pt(14, 8)}}},
			},
		}},
	}
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := Solve(p)
	if res.Assignment.RoutedObjects() != len(p.Objects) {
		t.Fatalf("routed %d of %d", res.Assignment.RoutedObjects(), len(p.Objects))
	}
	if len(p.Objects) < 2 {
		t.Skip("expected 2 objects")
	}
	c0 := p.Cands[0][res.Assignment.Choice[0]]
	c1 := p.Cands[1][res.Assignment.Choice[1]]
	if c0.HLayer != c1.HLayer {
		t.Errorf("same-group objects on H layers %d and %d, want shared", c0.HLayer, c1.HLayer)
	}
}

func TestSolveRandomDesignsStayLegal(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		d := &signal.Design{
			Name: "rand",
			Grid: signal.GridSpec{W: 20 + r.Intn(10), H: 20 + r.Intn(10), NumLayers: 4, EdgeCap: 1 + r.Intn(4)},
		}
		nG := 1 + r.Intn(4)
		for gi := 0; gi < nG; gi++ {
			var g signal.Group
			bits := 1 + r.Intn(5)
			bx, by := r.Intn(10), r.Intn(10)
			dx, dy := 3+r.Intn(8), r.Intn(6)
			for b := 0; b < bits; b++ {
				g.Bits = append(g.Bits, signal.Bit{
					Driver: 0,
					Pins: []signal.Pin{
						{Loc: geom.Pt(bx, by+b)},
						{Loc: geom.Pt(bx+dx, by+dy+b)},
					},
				})
			}
			d.Groups = append(d.Groups, g)
		}
		p, err := route.Build(d, route.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := Solve(p)
		if err := p.Legal(res.Assignment); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
