// Package pd implements Streak's primal-dual selection algorithm
// (Algorithm 2, §III-D). Starting from the all-zero (primal infeasible,
// dual feasible) solution it repeatedly commits the cheapest remaining
// candidate — cost c(i,j) plus the linearized pair cost c'(i,j) of Eq. (4)
// — updates the residual edge capacities, prunes candidates the update made
// infeasible, and marks objects whose candidate set emptied as unrouted.
// Edge capacity constraints hold at every step by construction.
package pd

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/route"
)

// Result carries the primal-dual outcome.
type Result struct {
	// Assignment is the selected candidate per object (-1 for unrouted).
	Assignment route.Assignment
	// Objective is the formulation (3a) value of the assignment.
	Objective float64
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
	// Iterations counts committed objects (routed or abandoned).
	Iterations int
}

// Solve runs Algorithm 2 on the problem.
func Solve(p *route.Problem) Result {
	r, _ := SolveCtx(context.Background(), p) // background ctx never cancels
	return r
}

// SolveCtx is Solve honoring the context: cancellation (or an expired
// deadline) is checked before every commit iteration, so the call returns
// promptly with ctx's error and the partial assignment committed so far.
// Edge capacities hold at every step, so the partial result is legal:
// committed objects carry their candidate index, every uncommitted object
// stays at -1, and Result.Objective is formulation (3a) evaluated over
// exactly that partial assignment.
func SolveCtx(ctx context.Context, p *route.Problem) (Result, error) {
	var res Result
	err := obs.Do(ctx, obs.StagePD, p.Opt.WorkerCount(), func(ctx context.Context) error {
		var err error
		res, err = solveCtx(ctx, p)
		return err
	})
	return res, err
}

// solveCtx is the span-free body of SolveCtx (Algorithm 2).
func solveCtx(ctx context.Context, p *route.Problem) (Result, error) {
	start := time.Now()
	if err := faultinject.Fire(ctx, faultinject.PDSolve); err != nil {
		return Result{}, fmt.Errorf("pd: %w", err)
	}
	n := len(p.Objects)
	a := p.NewAssignment()
	pool := p.UsagePool()
	// Counter snapshot precedes the first Get so the solve's own
	// acquisitions are part of the reported delta.
	poolGets0, poolFresh0 := pool.Counters()
	u := pool.Get()
	defer pool.Put(u)

	// alive[i][j] reports whether candidate j of object i is still primal
	// feasible under the residual capacities (line 9 prunes these).
	alive := make([][]bool, n)
	done := make([]bool, n)
	for i := range alive {
		alive[i] = make([]bool, len(p.Cands[i]))
		for j := range alive[i] {
			alive[i][j] = p.CandidateFits(i, j, u)
		}
	}

	// The edge-user index lets us re-check only candidates that touch edges
	// whose capacity changed, instead of the whole candidate universe. It is
	// a CSR over global edge ids (layer offset + dense index): one counting
	// pass, one prefix sum, one fill — no per-edge map buckets.
	idx := newEdgeIndex(p)
	workers := p.Opt.WorkerCount()
	var pruneRefs []candRef // reused across commits
	// mark dedups the recheck set per commit: mark[cand global id] == epoch
	// means the candidate is already queued this round.
	mark := make([]int32, idx.numCands)
	epoch := int32(0)

	iterations := 0
	rec := obs.FromContext(ctx)
	var pruneChecked, pruneSurvivors int64
	defer func() {
		if rec == nil {
			return
		}
		rec.Add(obs.CounterPDIterations, int64(iterations))
		rec.Add(obs.CounterPDRouted, int64(a.RoutedObjects()))
		rec.Add(obs.CounterPDPruneChecked, pruneChecked)
		rec.Add(obs.CounterPDPruneSurvivors, pruneSurvivors)
		gets, fresh := pool.Counters()
		rec.Add(obs.CounterPDUsagePoolGets, gets-poolGets0)
		rec.Add(obs.CounterPDUsagePoolFresh, fresh-poolFresh0)
	}()
	// Traced solves track the (3a) objective incrementally: it starts at n*M
	// (everything unrouted) and each commit replaces one M with the
	// candidate's cost plus its pair terms against already-committed
	// partners, so every pair is counted exactly once and each convergence
	// sample costs O(partners) instead of a full ObjectiveValue sweep.
	// Abandoning an object keeps its M, so no update is needed there.
	samp := rec.Sampler("pd")
	var obj float64
	var routed int
	var iterStart time.Time
	if rec != nil {
		obj = float64(n) * p.Opt.M
		samp.Record(obj, 0, 0)
	}
	for {
		if rec != nil {
			iterStart = time.Now()
		}
		if err := ctx.Err(); err != nil {
			return Result{
				Assignment: a,
				Objective:  p.ObjectiveValue(a),
				Runtime:    time.Since(start),
				Iterations: iterations,
			}, fmt.Errorf("pd: %w", err)
		}
		if err := faultinject.Fire(ctx, faultinject.PDCommit); err != nil {
			return Result{
				Assignment: a,
				Objective:  p.ObjectiveValue(a),
				Runtime:    time.Since(start),
				Iterations: iterations,
			}, fmt.Errorf("pd: %w", err)
		}
		// Line 6: among infeasible (uncommitted) objects pick the candidate
		// minimizing c(i,j) + c'(i,j).
		bestI, bestJ := -1, -1
		bestCost := math.Inf(1)
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			for j := range p.Cands[i] {
				if !alive[i][j] {
					continue
				}
				cost := p.Cost(i, j) + cPrime(p, a, alive, i, j)
				if cost < bestCost {
					bestCost, bestI, bestJ = cost, i, j
				}
			}
		}
		if bestI == -1 {
			// No live candidate anywhere: mark all remaining unrouted
			// (lines 10-12 applied collectively).
			allDone := true
			for i := 0; i < n; i++ {
				if !done[i] {
					done[i] = true
					a.Choice[i] = -1
					iterations++
					allDone = false
				}
			}
			if allDone {
				break
			}
			break
		}

		// Lines 7-8: commit and update residual capacities.
		a.Choice[bestI] = bestJ
		done[bestI] = true
		iterations++
		if rec != nil {
			delta := p.Cost(bestI, bestJ) - p.Opt.M
			for _, q := range p.Partners(bestI) {
				if a.Choice[q] >= 0 {
					delta += p.PairCost(bestI, bestJ, q, a.Choice[q])
				}
			}
			obj += delta
			routed++
			samp.Record(obj, routed, 0)
			rec.EmitAt("pd.commit", "pd", iterStart, time.Since(iterStart), obs.Args{
				"object": float64(bestI), "cand": float64(bestJ), "cost": bestCost,
			})
		}
		// Fault seam: a corrupted commit skips the capacity bookkeeping, so
		// later commits can over-subscribe the edges this candidate uses —
		// the independent legality audit must catch the resulting overflow.
		corrupted := faultinject.Corrupt(ctx, faultinject.PDCapacity)
		if !corrupted {
			for _, e := range p.Cands[bestI][bestJ].Edges {
				u.Add(int(e.Layer), int(e.Idx), int(e.N))
			}
		}

		// Line 9: prune candidates the capacity update made infeasible;
		// lines 10-12: objects whose sets emptied become unrouted. The
		// recheck set is the union of the CSR rows of the touched edges,
		// epoch-deduped (a candidate sharing several edges is checked once).
		epoch++
		pruneRefs = pruneRefs[:0]
		for _, e := range p.Cands[bestI][bestJ].Edges {
			gid := idx.layerOff[e.Layer] + e.Idx
			for _, cid := range idx.users[idx.rowStart[gid]:idx.rowStart[gid+1]] {
				ref := idx.refs[cid]
				if done[ref.i] || !alive[ref.i][ref.j] || mark[cid] == epoch {
					continue
				}
				mark[cid] = epoch
				pruneRefs = append(pruneRefs, ref)
			}
		}
		pruneParallel(p, u, alive, pruneRefs, workers)
		if rec != nil {
			pruneChecked += int64(len(pruneRefs))
			for _, ref := range pruneRefs {
				if alive[ref.i][ref.j] {
					pruneSurvivors++
				}
			}
		}
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			any := false
			for j := range p.Cands[i] {
				if alive[i][j] {
					any = true
					break
				}
			}
			if !any {
				done[i] = true
				a.Choice[i] = -1 // s_i = 1
				iterations++
			}
		}

		allDone := true
		for i := 0; i < n; i++ {
			if !done[i] {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}
	}

	return Result{
		Assignment: a,
		Objective:  p.ObjectiveValue(a),
		Runtime:    time.Since(start),
		Iterations: iterations,
	}, nil
}

// candRef addresses candidate j of object i.
type candRef struct{ i, j int }

// edgeIndex is the edge-to-candidate-users index behind the prune step, in
// CSR form over global edge ids (per-layer offset plus dense edge index)
// with candidates numbered globally: one counting pass, one prefix sum, one
// fill — no per-edge map buckets, and row lookups are two array reads.
type edgeIndex struct {
	layerOff []int32   // layer l's edges start at global id layerOff[l]
	rowStart []int32   // CSR row boundaries, len = total edges + 1
	users    []int32   // concatenated rows of candidate global ids
	refs     []candRef // candidate global id -> (object, candidate)
	numCands int
}

func newEdgeIndex(p *route.Problem) *edgeIndex {
	g := p.Grid
	layerOff := make([]int32, len(g.Layers)+1)
	for l := range g.Layers {
		layerOff[l+1] = layerOff[l] + int32(g.EdgeCount(l))
	}
	total := int(layerOff[len(g.Layers)])
	numCands := 0
	for i := range p.Cands {
		numCands += len(p.Cands[i])
	}
	idx := &edgeIndex{
		layerOff: layerOff,
		rowStart: make([]int32, total+1),
		refs:     make([]candRef, 0, numCands),
		numCands: numCands,
	}
	for i := range p.Cands {
		for j := range p.Cands[i] {
			idx.refs = append(idx.refs, candRef{i, j})
			for _, e := range p.Cands[i][j].Edges {
				idx.rowStart[layerOff[e.Layer]+e.Idx+1]++
			}
		}
	}
	for k := 1; k <= total; k++ {
		idx.rowStart[k] += idx.rowStart[k-1]
	}
	idx.users = make([]int32, idx.rowStart[total])
	cursor := append([]int32(nil), idx.rowStart[:total]...)
	cid := int32(0)
	for i := range p.Cands {
		for j := range p.Cands[i] {
			for _, e := range p.Cands[i][j].Edges {
				gid := layerOff[e.Layer] + e.Idx
				idx.users[cursor[gid]] = cid
				cursor[gid]++
			}
			cid++
		}
	}
	return idx
}

// pruneParallel re-checks the feasibility of the given candidates against
// the residual capacities and kills the ones that no longer fit,
// fanning the checks out across workers when the batch is worth it. Each
// ref owns its alive cell and the usage tracker is only read, so the
// outcome is independent of scheduling (line 9 of Algorithm 2 is a pure
// filter).
func pruneParallel(p *route.Problem, u *grid.Usage, alive [][]bool, refs []candRef, workers int) {
	// Below this batch size goroutine startup costs more than the checks.
	const minParallel = 64
	if workers <= 1 || len(refs) < minParallel {
		for _, ref := range refs {
			if !p.CandidateFits(ref.i, ref.j, u) {
				alive[ref.i][ref.j] = false
			}
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(refs) + workers - 1) / workers
	for lo := 0; lo < len(refs); lo += chunk {
		hi := lo + chunk
		if hi > len(refs) {
			hi = len(refs)
		}
		wg.Add(1)
		go func(part []candRef) {
			defer wg.Done()
			for _, ref := range part {
				if !p.CandidateFits(ref.i, ref.j, u) {
					alive[ref.i][ref.j] = false
				}
			}
		}(refs[lo:hi])
	}
	wg.Wait()
}

// cPrime evaluates Eq. (4)/(5): for each same-group partner of object i,
// add the pair cost against the partner's committed candidate, or the
// minimum pair cost over the partner's still-feasible candidates when the
// partner is undecided. Partners with no live candidates contribute
// nothing (they will be unrouted).
func cPrime(p *route.Problem, a route.Assignment, alive [][]bool, i, j int) float64 {
	total := 0.0
	for _, q := range p.Partners(i) {
		if a.Choice[q] >= 0 {
			total += p.PairCost(i, j, q, a.Choice[q])
			continue
		}
		best := math.Inf(1)
		for r := range p.Cands[q] {
			if !alive[q][r] {
				continue
			}
			if c := p.PairCost(i, j, q, r); c < best {
				best = c
			}
		}
		if !math.IsInf(best, 1) {
			total += best
		}
	}
	return total
}
