package pd

import (
	"context"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/route"
)

// TestSolveCtxConvergenceSeries checks the traced solve: the "pd" series
// carries the initial all-unrouted point plus one sample per commit, the
// incrementally tracked objective lands exactly on the full (3a) evaluation,
// and each commit leaves a trace event naming the object and candidate.
func TestSolveCtxConvergenceSeries(t *testing.T) {
	p, err := route.Build(busDesign(3, 4, 8), route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	res, err := SolveCtx(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()

	samples := rep.Series["pd"]
	routed := res.Assignment.RoutedObjects()
	if len(samples) != routed+1 {
		t.Fatalf("got %d samples, want %d (initial + per commit)", len(samples), routed+1)
	}
	if samples[0].Objective != float64(len(p.Objects))*p.Opt.M || samples[0].Routed != 0 {
		t.Errorf("initial sample = %+v", samples[0])
	}
	last := samples[len(samples)-1]
	if last.Routed != int64(routed) {
		t.Errorf("last sample routed = %d, want %d", last.Routed, routed)
	}
	// Incremental tracking must agree with the full evaluation to float
	// accumulation noise.
	if diff := math.Abs(last.Objective - res.Objective); diff > 1e-6*math.Max(1, math.Abs(res.Objective)) {
		t.Errorf("incremental objective %v vs full %v (diff %v)", last.Objective, res.Objective, diff)
	}
	// The curve is non-increasing: every commit replaces an M with a cheaper
	// candidate-plus-pair cost (pd never commits a candidate above M).
	for i := 1; i < len(samples); i++ {
		if samples[i].Objective > samples[i-1].Objective {
			t.Errorf("objective rose at sample %d: %v -> %v", i, samples[i-1].Objective, samples[i].Objective)
		}
	}

	commits := 0
	for _, e := range rep.Trace {
		if e.Name == "pd.commit" {
			commits++
			if e.Cat != "pd" || e.Args["object"] < 0 || e.Args["cand"] < 0 {
				t.Errorf("malformed commit event: %+v", e)
			}
		}
	}
	if commits != routed {
		t.Errorf("got %d pd.commit events, want %d", commits, routed)
	}
}

// TestSolveCtxNoRecorderNoSeries pins the disabled path: without a recorder
// the solve produces the same result and no samples exist anywhere to leak.
func TestSolveCtxNoRecorderNoSeries(t *testing.T) {
	p, err := route.Build(busDesign(2, 3, 8), route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveCtx(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	traced, err := SolveCtx(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != traced.Objective || res.Iterations != traced.Iterations {
		t.Errorf("tracing changed the solve: %+v vs %+v", res, traced)
	}
}
