package pd

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/benchgen"
	"repro/internal/route"
)

// flipCtx is a context whose Err() starts returning context.Canceled after
// the first `after` calls — a deterministic way to cancel mid-solve at an
// exact iteration boundary, independent of timing.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestSolveCtxMidCancelPartialResult pins the partial-result contract of
// SolveCtx under mid-solve cancellation: committed objects carry a valid
// candidate index, every uncommitted object stays at -1, and Objective is
// formulation (3a) evaluated over exactly that partial assignment — not a
// stale or full-solve value.
func TestSolveCtxMidCancelPartialResult(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := Solve(p)
	if full.Iterations < 3 {
		t.Skipf("need >= 3 commit iterations to cancel mid-solve, got %d", full.Iterations)
	}

	// Cancel after two commit iterations: the loop checks ctx.Err() once
	// per iteration, so call 3 sees the cancellation.
	for _, after := range []int64{1, 2, int64(full.Iterations) - 1} {
		ctx := &flipCtx{Context: context.Background(), after: after}
		res, err := SolveCtx(ctx, p)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
		}
		if got := int64(res.Iterations); got > after {
			t.Errorf("after=%d: %d iterations ran past the cancellation point", after, got)
		}
		if len(res.Assignment.Choice) != len(p.Objects) {
			t.Fatalf("after=%d: assignment covers %d of %d objects",
				after, len(res.Assignment.Choice), len(p.Objects))
		}
		committed := 0
		for i, c := range res.Assignment.Choice {
			if c == -1 {
				continue // uncommitted objects must stay at -1
			}
			if c < 0 || c >= len(p.Cands[i]) {
				t.Fatalf("after=%d: object %d choice %d out of range [0,%d)",
					after, i, c, len(p.Cands[i]))
			}
			committed++
		}
		if int64(committed) > after {
			t.Errorf("after=%d: %d objects committed past the cancellation point", after, committed)
		}
		// The reported objective must be (3a) over the partial assignment.
		if want := p.ObjectiveValue(res.Assignment); res.Objective != want {
			t.Errorf("after=%d: Objective = %v, want %v (objective over the partial assignment)",
				after, res.Objective, want)
		}
		// Capacity constraints hold at every step by construction: the
		// partial routing must be overflow-free.
		r := p.ExtractRouting(res.Assignment)
		u := r.UsageOf(p.Grid)
		if of := u.Overflow(); of != 0 {
			t.Errorf("after=%d: partial assignment overflows by %d", after, of)
		}
	}
}

// TestSolveCtxCancelBeforeStart pins the degenerate case: a context
// canceled before the first iteration yields the all-unrouted assignment
// (every choice -1) and its objective, not garbage.
func TestSolveCtxCancelBeforeStart(t *testing.T) {
	d := benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
	p, err := route.Build(d, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveCtx(ctx, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, c := range res.Assignment.Choice {
		if c != -1 {
			t.Fatalf("object %d choice = %d, want -1 (nothing committed)", i, c)
		}
	}
	if want := p.ObjectiveValue(res.Assignment); res.Objective != want {
		t.Errorf("Objective = %v, want %v", res.Objective, want)
	}
}
