package faultinject

import (
	"strings"
	"testing"
)

// FuzzParseSpec hammers the CLI fault-spec grammar. The invariants are the
// flag-parsing contract streakd relies on:
//
//   - ParseSpec never panics, whatever the input;
//   - on success the plan is non-nil and every armed point is a known one;
//   - on failure the plan is nil (no half-armed plans escape);
//   - a successful parse is stable: re-parsing the same spec succeeds.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"pd.solve=panic",
		"pd.solve=panic:custom message",
		"exact.solve=error:injected#3",
		"hier.tile=delay:50ms@2#1",
		"pd.capacity=corrupt@1",
		"jobs.run=error#2;jobs.store.replay=corrupt",
		"jobs.store.append=delay:10ms;route.build=panic",
		"route.build=panic;;pd.commit=error",
		" pd.solve = delay:1s ",
		// Invalid shapes the parser must reject cleanly.
		"bogus.point=panic",
		"pd.solve=frobnicate",
		"pd.solve",
		"pd.solve=delay:notaduration",
		"pd.solve=delay:-5s",
		"pd.solve=panic@x",
		"pd.solve=panic#0",
		"pd.solve=panic#-1",
		"=panic",
		"pd.solve=",
		"pd.solve=delay",
		"pd.solve=panic@9999999999999999999999",
		"jobs.store.replay=corrupt#\x00",
		// Duplicate point names in one spec must be rejected, not
		// last-wins.
		"pd.solve=panic;pd.solve=delay:1s",
		"hier.tile=delay:5ms; hier.tile =error",
		"pd.capacity=corrupt;pd.capacity=corrupt",
		"pd.solve=panic;exact.solve=error;pd.solve=panic",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseSpec(spec)
		if err != nil {
			if plan != nil {
				t.Fatalf("ParseSpec(%q) returned both a plan and error %v", spec, err)
			}
			return
		}
		if plan == nil {
			t.Fatalf("ParseSpec(%q) returned nil plan without error", spec)
		}
		known := make(map[string]bool)
		for _, p := range Points() {
			known[p] = true
		}
		plan.mu.Lock()
		for point := range plan.armed {
			if !known[point] {
				t.Errorf("ParseSpec(%q) armed unknown point %q", spec, point)
			}
		}
		plan.mu.Unlock()
		if _, err := ParseSpec(spec); err != nil {
			t.Errorf("ParseSpec(%q) not stable: re-parse failed: %v", spec, err)
		}
		// Entry count sanity: a successful parse arms at most one action
		// per non-empty entry.
		entries := 0
		for _, ent := range strings.Split(spec, ";") {
			if strings.TrimSpace(ent) != "" {
				entries++
			}
		}
		plan.mu.Lock()
		armed := len(plan.armed)
		plan.mu.Unlock()
		if armed > entries {
			t.Errorf("ParseSpec(%q) armed %d points from %d entries", spec, armed, entries)
		}
	})
}
