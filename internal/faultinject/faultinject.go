// Package faultinject provides deterministic, context-carried fault
// injection for the Streak pipeline. A Plan arms named fault points with
// actions (panic, artificial delay, injected error, state corruption) and
// rides on the context into every solver stage; the stages call Fire or
// Corrupt at compiled-in activation sites. With no plan on the context a
// site costs one context lookup and nothing else, so production paths pay
// effectively zero.
//
// Determinism is the point: actions trigger by activation count (After
// skips the first hits, Times bounds how often the action fires), never by
// randomness or timing, so a chaos test reproduces the same failure on
// every run. The plan records every activation so tests can assert that a
// site actually fired.
package faultinject

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Compiled-in fault points. Each constant names an activation site inside
// the pipeline; see the package comment of the owning package for where
// exactly the site sits. The registry below records which action kinds a
// site honors.
const (
	// RouteBuild fires at the start of problem construction
	// (route.BuildCtx), before the parallel candidate fan-out.
	// Honors: panic, delay, error.
	RouteBuild = "route.build"
	// PDSolve fires at the start of the primal-dual solve (pd.SolveCtx).
	// Honors: panic, delay, error.
	PDSolve = "pd.solve"
	// PDCommit fires before every primal-dual commit iteration.
	// Honors: panic, delay, error.
	PDCommit = "pd.commit"
	// PDCapacity fires at the capacity bookkeeping of each primal-dual
	// commit; an armed Corrupt action makes the solver skip booking the
	// committed candidate's track usage, silently corrupting its residual
	// capacities so later commits can over-subscribe edges (the legality
	// audit must catch the resulting overflow). Honors: corrupt.
	PDCapacity = "pd.capacity"
	// ExactSolve fires at the start of the exact ILP solve
	// (exact.SolveCtx). Honors: panic, delay, error.
	ExactSolve = "exact.solve"
	// Simplex fires at the top of every LP-relaxation solve inside branch
	// and bound. An injected error reports the relaxation infeasible, which
	// surfaces as an infeasible exact solve; a delay stretches the
	// relaxation past branch-and-bound deadlines. Honors: panic, delay,
	// error (as LP infeasibility).
	Simplex = "ilp.simplex"
	// HierTile fires before each hierarchical tile solve is dispatched, on
	// the coordinating goroutine in both the sequential and parallel tile
	// schedules. Honors: panic, delay, error.
	HierTile = "hier.tile"
	// JobsStoreAppend fires before every durable job-store append
	// (jobs.Store implementations); an injected error makes the append —
	// and therefore the submit or state transition — fail. Honors: panic,
	// delay, error.
	JobsStoreAppend = "jobs.store.append"
	// JobsStoreReplay fires during WAL replay at boot: once per Replay
	// call for delay/error actions (a delay stalls recovery, which
	// /readyz must report), and once per decoded record for Corrupt —
	// a corrupt firing makes the replayer treat that record as torn,
	// exercising the skip-and-log path without touching the file. Honors:
	// panic, delay, error, corrupt.
	JobsStoreReplay = "jobs.store.replay"
	// JobsRun fires at the start of every async job execution attempt,
	// before the solve is invoked; an injected error or panic fails the
	// attempt and exercises the retry/backoff path. Honors: panic, delay,
	// error.
	JobsRun = "jobs.run"
)

// Points returns every compiled-in fault point, sorted.
func Points() []string {
	pts := []string{RouteBuild, PDSolve, PDCommit, PDCapacity, ExactSolve, Simplex, HierTile,
		JobsStoreAppend, JobsStoreReplay, JobsRun}
	sort.Strings(pts)
	return pts
}

// Action describes what an armed fault point does when it activates.
// Exactly one of Panic, Delay, Err, Corrupt is normally set; when several
// are set a firing applies Delay first, then Panic, then Err.
type Action struct {
	// Panic, when non-empty, panics with this message at the site.
	Panic string
	// Delay sleeps this long before continuing. The sleep watches the
	// context so an expired deadline is noticed by the site's own
	// cancellation checks immediately after, exactly like a slow solver.
	Delay time.Duration
	// Err, when non-empty, returns an *Error with this message from Fire.
	Err string
	// Corrupt arms a state-corruption site (see the point's doc for what
	// exactly gets corrupted).
	Corrupt bool
	// After skips the first After activations of the point before firing.
	After int
	// Times bounds how many activations fire. Zero means every one.
	Times int
}

// Error is an injected failure returned by Fire.
type Error struct {
	// Point names the fault point that produced the error.
	Point string
	// Msg is the armed Action.Err text.
	Msg string
}

// Error formats the injected failure with its origin attached.
func (e *Error) Error() string { return fmt.Sprintf("faultinject: %s: %s", e.Point, e.Msg) }

// Activation records one hit of an armed fault point.
type Activation struct {
	// Point names the fault point.
	Point string
	// Seq is the 1-based hit count of the point at this activation.
	Seq int
	// Fired reports whether the action applied (false while skipped by
	// After or exhausted by Times).
	Fired bool
}

// Plan arms fault points and records activations. A Plan is safe for
// concurrent use; the zero value is not valid — use NewPlan.
type Plan struct {
	mu     sync.Mutex
	armed  map[string]*armedAction
	log    []Activation
	frozen bool
}

type armedAction struct {
	act   Action
	hits  int
	fired int
}

// NewPlan returns an empty plan.
func NewPlan() *Plan {
	return &Plan{armed: make(map[string]*armedAction)}
}

// Arm attaches an action to a fault point and returns the plan for
// chaining. Re-arming a point replaces its action and resets its counters.
func (p *Plan) Arm(point string, a Action) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.armed[point] = &armedAction{act: a}
	return p
}

// Log returns a copy of every recorded activation, in order.
func (p *Plan) Log() []Activation {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Activation(nil), p.log...)
}

// Fired returns how many times the point's action actually applied.
func (p *Plan) Fired(point string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ar := p.armed[point]; ar != nil {
		return ar.fired
	}
	return 0
}

// activate counts a hit and reports whether the action applies now.
func (p *Plan) activate(point string) (Action, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ar := p.armed[point]
	if ar == nil {
		return Action{}, false
	}
	ar.hits++
	fires := ar.hits > ar.act.After && (ar.act.Times == 0 || ar.fired < ar.act.Times)
	if fires {
		ar.fired++
	}
	p.log = append(p.log, Activation{Point: point, Seq: ar.hits, Fired: fires})
	return ar.act, fires
}

type ctxKey struct{}

// With attaches the plan to the context. A nil plan returns ctx unchanged.
func With(ctx context.Context, p *Plan) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, p)
}

// FromContext returns the plan carried by ctx, or nil.
func FromContext(ctx context.Context) *Plan {
	p, _ := ctx.Value(ctxKey{}).(*Plan)
	return p
}

// Fire activates the named fault point: depending on the armed action it
// sleeps, panics, or returns an injected *Error. With no plan on the
// context, no armed action, or an action outside its After/Times window it
// is a no-op returning nil. Corrupt-only actions never fire here — state
// corruption sites use Corrupt.
func Fire(ctx context.Context, point string) error {
	p := FromContext(ctx)
	if p == nil {
		return nil
	}
	act, fires := p.activate(point)
	if !fires {
		return nil
	}
	if act.Delay > 0 {
		sleep(ctx, act.Delay)
	}
	if act.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", point, act.Panic))
	}
	if act.Err != "" {
		return &Error{Point: point, Msg: act.Err}
	}
	return nil
}

// Corrupt activates a state-corruption site: it reports whether the site
// should corrupt its own state now. Only Action.Corrupt plans fire here.
func Corrupt(ctx context.Context, point string) bool {
	p := FromContext(ctx)
	if p == nil {
		return false
	}
	act, fires := p.activate(point)
	return fires && act.Corrupt
}

// sleep waits d honoring ctx cancellation. It returns silently either way:
// the site's own cancellation checks decide what an expired deadline means,
// exactly as they would for a genuinely slow solve.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// ParseSpec builds a plan from a compact textual spec, for wiring fault
// injection through command-line flags:
//
//	point=kind[:arg][@after][#times][;point=kind...]
//
// Kinds: "panic[:msg]", "delay:duration", "error[:msg]", "corrupt".
// "@after" skips the first N activations; "#times" bounds firings. Example:
//
//	exact.solve=panic;hier.tile=delay:50ms#2;pd.capacity=corrupt@1
//
// Unknown point names are rejected so a typo cannot silently disarm a
// chaos run, and naming the same point twice is an error rather than
// last-wins: a spec like "pd.solve=panic;pd.solve=delay:1s" almost always
// means the author expected both actions, and silently dropping the first
// would disarm half the chaos run.
func ParseSpec(spec string) (*Plan, error) {
	p := NewPlan()
	known := make(map[string]bool, len(Points()))
	for _, pt := range Points() {
		known[pt] = true
	}
	armed := make(map[string]bool)
	for _, ent := range strings.Split(spec, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		point, actSpec, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: entry %q: want point=action", ent)
		}
		point = strings.TrimSpace(point)
		if !known[point] {
			return nil, fmt.Errorf("faultinject: unknown point %q (known: %s)", point, strings.Join(Points(), ", "))
		}
		if armed[point] {
			return nil, fmt.Errorf("faultinject: point %q armed twice in one spec (a point holds one action; merge or drop one)", point)
		}
		armed[point] = true
		act, err := parseAction(strings.TrimSpace(actSpec))
		if err != nil {
			return nil, fmt.Errorf("faultinject: point %s: %w", point, err)
		}
		p.Arm(point, act)
	}
	return p, nil
}

// SpecEntry is one point=action clause for programmatic spec assembly
// (see FormatSpec).
type SpecEntry struct {
	// Point names a compiled-in fault point.
	Point string
	// Act is the action to arm there.
	Act Action
}

// FormatSpec renders entries into the textual spec grammar ParseSpec
// accepts, so a generator (the scenario engine's chaos schedules) can
// build fault plans programmatically and hand them to streakd's
// -faultinject flag. The round trip ParseSpec(FormatSpec(e)) arms exactly
// the given actions. Unknown points, duplicate points, and actions the
// grammar cannot express (several kinds at once, arguments containing the
// grammar's separators) are errors.
func FormatSpec(entries []SpecEntry) (string, error) {
	known := make(map[string]bool, len(Points()))
	for _, pt := range Points() {
		known[pt] = true
	}
	seen := make(map[string]bool, len(entries))
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		if !known[e.Point] {
			return "", fmt.Errorf("faultinject: unknown point %q", e.Point)
		}
		if seen[e.Point] {
			return "", fmt.Errorf("faultinject: point %q appears twice", e.Point)
		}
		seen[e.Point] = true
		clause, err := formatAction(e.Act)
		if err != nil {
			return "", fmt.Errorf("faultinject: point %s: %w", e.Point, err)
		}
		parts = append(parts, e.Point+"="+clause)
	}
	return strings.Join(parts, ";"), nil
}

// formatAction renders one action as a kind[:arg][@after][#times] clause.
func formatAction(a Action) (string, error) {
	set := 0
	for _, on := range []bool{a.Panic != "", a.Delay > 0, a.Err != "", a.Corrupt} {
		if on {
			set++
		}
	}
	if set != 1 {
		return "", fmt.Errorf("action must set exactly one of panic, delay, error, corrupt (have %d)", set)
	}
	var clause string
	switch {
	case a.Panic != "":
		if strings.ContainsAny(a.Panic, ";=@#") {
			return "", fmt.Errorf("panic message %q contains spec separators", a.Panic)
		}
		clause = "panic:" + a.Panic
	case a.Delay > 0:
		clause = "delay:" + a.Delay.String()
	case a.Err != "":
		if strings.ContainsAny(a.Err, ";=@#") {
			return "", fmt.Errorf("error message %q contains spec separators", a.Err)
		}
		clause = "error:" + a.Err
	case a.Corrupt:
		clause = "corrupt"
	}
	if a.After < 0 || a.Times < 0 {
		return "", fmt.Errorf("negative @after or #times")
	}
	if a.After > 0 {
		clause += fmt.Sprintf("@%d", a.After)
	}
	if a.Times > 0 {
		clause += fmt.Sprintf("#%d", a.Times)
	}
	return clause, nil
}

// parseAction parses one kind[:arg][@after][#times] clause.
func parseAction(s string) (Action, error) {
	var a Action
	if i := strings.IndexByte(s, '#'); i >= 0 {
		if _, err := fmt.Sscanf(s[i+1:], "%d", &a.Times); err != nil || a.Times < 1 {
			return a, fmt.Errorf("bad #times in %q", s)
		}
		s = s[:i]
	}
	if i := strings.IndexByte(s, '@'); i >= 0 {
		if _, err := fmt.Sscanf(s[i+1:], "%d", &a.After); err != nil || a.After < 0 {
			return a, fmt.Errorf("bad @after in %q", s)
		}
		s = s[:i]
	}
	kind, arg, _ := strings.Cut(s, ":")
	switch kind {
	case "panic":
		a.Panic = arg
		if a.Panic == "" {
			a.Panic = "injected panic"
		}
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return a, fmt.Errorf("bad delay duration %q", arg)
		}
		a.Delay = d
	case "error":
		a.Err = arg
		if a.Err == "" {
			a.Err = "injected error"
		}
	case "corrupt":
		a.Corrupt = true
	default:
		return a, fmt.Errorf("unknown action kind %q (want panic, delay, error or corrupt)", kind)
	}
	return a, nil
}
