package faultinject

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNoPlanIsNoop(t *testing.T) {
	ctx := context.Background()
	if err := Fire(ctx, PDSolve); err != nil {
		t.Fatalf("Fire with no plan = %v", err)
	}
	if Corrupt(ctx, PDCapacity) {
		t.Fatal("Corrupt with no plan fired")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare context non-nil")
	}
}

func TestUnarmedPointIsNoop(t *testing.T) {
	p := NewPlan().Arm(ExactSolve, Action{Err: "boom"})
	ctx := With(context.Background(), p)
	if err := Fire(ctx, PDSolve); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if len(p.Log()) != 0 {
		t.Fatalf("unarmed activation logged: %v", p.Log())
	}
}

func TestErrorInjection(t *testing.T) {
	p := NewPlan().Arm(ExactSolve, Action{Err: "boom"})
	ctx := With(context.Background(), p)
	err := Fire(ctx, ExactSolve)
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *Error", err)
	}
	if fe.Point != ExactSolve || !strings.Contains(fe.Error(), "boom") {
		t.Errorf("error = %v, want point+msg", fe)
	}
	if p.Fired(ExactSolve) != 1 {
		t.Errorf("Fired = %d, want 1", p.Fired(ExactSolve))
	}
}

func TestPanicInjection(t *testing.T) {
	p := NewPlan().Arm(PDSolve, Action{Panic: "kaboom"})
	ctx := With(context.Background(), p)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "kaboom") {
			t.Fatalf("recover = %v, want injected panic", r)
		}
	}()
	_ = Fire(ctx, PDSolve)
	t.Fatal("no panic")
}

func TestDelayHonorsContext(t *testing.T) {
	p := NewPlan().Arm(HierTile, Action{Delay: time.Minute})
	ctx, cancel := context.WithCancel(With(context.Background(), p))
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := Fire(ctx, HierTile); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("delay ignored cancellation, took %v", took)
	}
}

func TestAfterAndTimesWindow(t *testing.T) {
	p := NewPlan().Arm(PDCommit, Action{Err: "x", After: 2, Times: 2})
	ctx := With(context.Background(), p)
	var fired []bool
	for i := 0; i < 6; i++ {
		fired = append(fired, Fire(ctx, PDCommit) != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("activation %d fired=%v, want %v (all: %v)", i+1, fired[i], want[i], fired)
		}
	}
	log := p.Log()
	if len(log) != 6 || log[2].Seq != 3 || !log[2].Fired || log[0].Fired {
		t.Errorf("log = %+v", log)
	}
}

func TestCorrupt(t *testing.T) {
	p := NewPlan().Arm(PDCapacity, Action{Corrupt: true, Times: 1})
	ctx := With(context.Background(), p)
	if !Corrupt(ctx, PDCapacity) {
		t.Fatal("corrupt did not fire")
	}
	if Corrupt(ctx, PDCapacity) {
		t.Fatal("corrupt fired past Times")
	}
	// A corrupt-only action never leaks out of Fire.
	p2 := NewPlan().Arm(PDCapacity, Action{Corrupt: true})
	ctx2 := With(context.Background(), p2)
	if err := Fire(ctx2, PDCapacity); err != nil {
		t.Fatalf("Fire on corrupt action = %v", err)
	}
}

func TestConcurrentActivations(t *testing.T) {
	p := NewPlan().Arm(Simplex, Action{Err: "e", Times: 10})
	ctx := With(context.Background(), p)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if Fire(ctx, Simplex) != nil {
				mu.Lock()
				fired++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if fired != 10 || p.Fired(Simplex) != 10 {
		t.Errorf("fired = %d (plan %d), want 10", fired, p.Fired(Simplex))
	}
	if len(p.Log()) != 50 {
		t.Errorf("log entries = %d, want 50", len(p.Log()))
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("exact.solve=panic; hier.tile=delay:50ms#2 ;pd.capacity=corrupt@1;ilp.simplex=error:lp down")
	if err != nil {
		t.Fatal(err)
	}
	ctx := With(context.Background(), p)
	if err := Fire(ctx, Simplex); err == nil || !strings.Contains(err.Error(), "lp down") {
		t.Errorf("simplex error not armed: %v", err)
	}
	if Corrupt(ctx, PDCapacity) {
		t.Error("pd.capacity fired before @1 skip")
	}
	if !Corrupt(ctx, PDCapacity) {
		t.Error("pd.capacity did not fire on second hit")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("exact.solve panic not armed")
			}
		}()
		_ = Fire(ctx, ExactSolve)
	}()
}

func TestParseSpecRejects(t *testing.T) {
	for _, spec := range []string{
		"nosuch.point=panic",
		"pd.solve",
		"pd.solve=explode",
		"pd.solve=delay:notaduration",
		"pd.solve=delay",
		"pd.solve=panic#0",
		"pd.solve=panic@-1",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	if p, err := ParseSpec(""); err != nil || len(p.Log()) != 0 {
		t.Errorf("empty spec rejected: %v", err)
	}
}

func TestPointsRegistryCoversConstants(t *testing.T) {
	pts := Points()
	for _, want := range []string{RouteBuild, PDSolve, PDCommit, PDCapacity, ExactSolve, Simplex, HierTile,
		JobsStoreAppend, JobsStoreReplay, JobsRun} {
		found := false
		for _, p := range pts {
			if p == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Points() missing %s", want)
		}
	}
}

// TestParseSpecRejectsDuplicates: naming a point twice in one spec is an
// error, not last-wins — silently dropping the first action disarms half a
// chaos run.
func TestParseSpecRejectsDuplicates(t *testing.T) {
	for _, spec := range []string{
		"pd.solve=panic;pd.solve=delay:1s",
		"pd.solve=panic; pd.solve =panic",
		"hier.tile=delay:5ms;exact.solve=error;hier.tile=error",
	} {
		_, err := ParseSpec(spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted a duplicate point", spec)
			continue
		}
		if !strings.Contains(err.Error(), "twice") {
			t.Errorf("ParseSpec(%q) error %q does not name the duplicate", spec, err)
		}
	}
	// Distinct points stay fine.
	if _, err := ParseSpec("pd.solve=panic;exact.solve=panic"); err != nil {
		t.Errorf("distinct points rejected: %v", err)
	}
}

// TestFormatSpecRoundTrip: FormatSpec output must parse back into a plan
// arming exactly the given actions — the contract the scenario engine's
// generated chaos schedules rely on.
func TestFormatSpecRoundTrip(t *testing.T) {
	entries := []SpecEntry{
		{Point: PDSolve, Act: Action{Err: "injected chaos", After: 2, Times: 3}},
		{Point: HierTile, Act: Action{Delay: 50 * time.Millisecond, Times: 2}},
		{Point: JobsRun, Act: Action{Err: "injected chaos", Times: 1}},
		{Point: ExactSolve, Act: Action{Panic: "boom"}},
		{Point: PDCapacity, Act: Action{Corrupt: true, After: 1}},
	}
	spec, err := FormatSpec(entries)
	if err != nil {
		t.Fatalf("FormatSpec: %v", err)
	}
	plan, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	plan.mu.Lock()
	defer plan.mu.Unlock()
	if len(plan.armed) != len(entries) {
		t.Fatalf("round trip armed %d points, want %d", len(plan.armed), len(entries))
	}
	for _, e := range entries {
		ar := plan.armed[e.Point]
		if ar == nil {
			t.Errorf("point %s not armed after round trip", e.Point)
			continue
		}
		if ar.act != e.Act {
			t.Errorf("point %s action = %+v, want %+v", e.Point, ar.act, e.Act)
		}
	}
}

// TestFormatSpecRejects pins the unformattable cases.
func TestFormatSpecRejects(t *testing.T) {
	cases := []struct {
		name    string
		entries []SpecEntry
	}{
		{"unknown point", []SpecEntry{{Point: "nosuch.point", Act: Action{Panic: "x"}}}},
		{"duplicate point", []SpecEntry{
			{Point: PDSolve, Act: Action{Panic: "x"}},
			{Point: PDSolve, Act: Action{Err: "y"}},
		}},
		{"no action kind", []SpecEntry{{Point: PDSolve, Act: Action{}}}},
		{"two action kinds", []SpecEntry{{Point: PDSolve, Act: Action{Panic: "x", Err: "y"}}}},
		{"separator in message", []SpecEntry{{Point: PDSolve, Act: Action{Err: "a;b=c"}}}},
	}
	for _, tc := range cases {
		if _, err := FormatSpec(tc.entries); err == nil {
			t.Errorf("%s: FormatSpec accepted", tc.name)
		}
	}
}
