package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jobs"
)

// submitJob POSTs a design to /jobs and decodes the accepted view.
func submitJob(t *testing.T, ts *httptest.Server, path, idemKey string) (jobs.View, *http.Response) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+path, designBody(t, testDesign(t)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v jobs.View
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("decode submit response: %v\nbody: %s", err, raw)
		}
	}
	return v, resp
}

// getJob fetches one job snapshot.
func getJob(t *testing.T, ts *httptest.Server, id string) (jobs.View, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobs.View
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// awaitJob polls GET /jobs/{id} until the wanted state.
func awaitJob(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, code := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s settled in %s (want %s): %+v", id, v.State, want, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobSubmitRunsToSuccess(t *testing.T) {
	s := New(Config{JobStore: jobs.NewMemStore(), Logf: t.Logf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, resp := submitJob(t, ts, "/jobs?stats=1", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+v.ID {
		t.Errorf("Location = %q", loc)
	}
	if v.State != jobs.Pending || v.MaxAttempts != 3 {
		t.Errorf("accepted view = %+v", v)
	}

	done := awaitJob(t, ts, v.ID, jobs.Succeeded)
	if done.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", done.Attempts)
	}
	var rr RouteResponse
	if err := json.Unmarshal(done.Result, &rr); err != nil {
		t.Fatalf("result is not a RouteResponse: %v\n%s", err, done.Result)
	}
	if rr.Metrics.RoutedGroups == 0 || rr.AuditOK == nil || !*rr.AuditOK {
		t.Errorf("job result incomplete: %+v", rr)
	}
	if rr.Stats == nil || len(rr.Stats.Spans) == 0 {
		t.Error("stats=1 but result has no telemetry report")
	}

	// The async tier surfaces in /healthz.
	h := s.Stats()
	if h.Jobs == nil || h.Jobs.Counters["jobs.succeeded"] != 1 || h.Jobs.Jobs != 1 {
		t.Errorf("health jobs block = %+v", h.Jobs)
	}
}

func TestJobIdempotencyKey(t *testing.T) {
	ts := httptest.NewServer(New(Config{JobStore: jobs.NewMemStore()}).Handler())
	defer ts.Close()

	v1, resp1 := submitJob(t, ts, "/jobs", "retry-safe-1")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp1.StatusCode)
	}
	v2, resp2 := submitJob(t, ts, "/jobs", "retry-safe-1")
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("repeat submit = %d, want 200", resp2.StatusCode)
	}
	if v1.ID != v2.ID {
		t.Errorf("idempotent retry created a new job: %s vs %s", v1.ID, v2.ID)
	}
	awaitJob(t, ts, v1.ID, jobs.Succeeded)
}

func TestJobSubmitValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{JobStore: jobs.NewMemStore()}).Handler())
	defer ts.Close()

	// A bad option set is rejected before anything persists.
	resp, err := http.Post(ts.URL+"/jobs?method=quantum", "application/json", designBody(t, testDesign(t)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad method = %d, want 400", resp.StatusCode)
	}
	// So is a malformed design.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed design = %d, want 400", resp.StatusCode)
	}
	// Unknown job IDs are 404.
	if _, code := getJob(t, ts, "doesnotexist"); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
}

func TestJobCancelRunning(t *testing.T) {
	// Stall the solve so the job is reliably RUNNING when DELETE lands.
	plan := faultinject.NewPlan().
		Arm(faultinject.PDSolve, faultinject.Action{Delay: 30 * time.Second, Times: 1})
	ts := httptest.NewServer(New(Config{
		JobStore:    jobs.NewMemStore(),
		BaseContext: faultinject.With(context.Background(), plan),
	}).Handler())
	defer ts.Close()

	v, _ := submitJob(t, ts, "/jobs", "")
	awaitJob(t, ts, v.ID, jobs.Running)

	req, err := http.NewRequest("DELETE", ts.URL+"/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	done := awaitJob(t, ts, v.ID, jobs.Canceled)
	if done.Attempts != 1 {
		t.Errorf("canceled job retried: %+v", done)
	}
}

// TestJobEventsStream reads the SSE feed end to end: it must deliver a
// final "done" event carrying the SUCCEEDED snapshot with the result.
func TestJobEventsStream(t *testing.T) {
	ts := httptest.NewServer(New(Config{JobStore: jobs.NewMemStore()}).Handler())
	defer ts.Close()

	v, _ := submitJob(t, ts, "/jobs", "")
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}

	var event string
	var events []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events = append(events, event)
		case strings.HasPrefix(line, "data: ") && event == "done":
			var final jobs.View
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
				t.Fatalf("done payload: %v", err)
			}
			if final.State != jobs.Succeeded || len(final.Result) == 0 {
				t.Errorf("done view = %+v", final)
			}
			return
		}
	}
	t.Fatalf("stream ended without a done event (saw %v, err %v)", events, sc.Err())
}

// TestReadyzGatedOnReplay is the boot contract: while WAL replay is still
// running the instance must answer /readyz with 503 so load balancers keep
// it out of rotation, then flip to 200 once the job table is recovered.
func TestReadyzGatedOnReplay(t *testing.T) {
	plan := faultinject.NewPlan().
		Arm(faultinject.JobsStoreReplay, faultinject.Action{Delay: time.Second, Times: 1})
	ts := httptest.NewServer(New(Config{
		JobStore:    jobs.NewMemStore(),
		BaseContext: faultinject.With(context.Background(), plan),
	}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during replay = %d, want 503", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 200 after replay")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainLeavesQueuedJobPersisted: BeginDrain stops the jobs runner from
// picking up new PENDING work; submits are refused while in-flight
// attempts finish.
func TestDrainLeavesQueuedJobPersisted(t *testing.T) {
	plan := faultinject.NewPlan().
		Arm(faultinject.PDSolve, faultinject.Action{Delay: 30 * time.Second, Times: 1})
	s := New(Config{
		JobStore:    jobs.NewMemStore(),
		JobWorkers:  1,
		BaseContext: faultinject.With(context.Background(), plan),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running, _ := submitJob(t, ts, "/jobs", "")
	awaitJob(t, ts, running.ID, jobs.Running)
	queued, resp := submitJob(t, ts, "/jobs", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}

	s.BeginDrain()
	// The queued job must stay PENDING, untouched by the worker.
	time.Sleep(50 * time.Millisecond)
	if v, _ := getJob(t, ts, queued.ID); v.State != jobs.Pending || v.Attempts != 0 {
		t.Errorf("drain picked up queued job: %+v", v)
	}
	// New submits are refused with 503.
	if _, resp := submitJob(t, ts, "/jobs", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}

	// A short drain budget hard-cancels the stalled attempt; it persists
	// as INTERRUPTED for the next boot rather than FAILED.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Error("Drain reported clean despite a canceled straggler")
	}
	if v, _ := getJob(t, ts, running.ID); v.State != jobs.Interrupted {
		t.Errorf("stalled job after drain = %+v, want INTERRUPTED", v)
	}
}

// TestServerCrashRecoveryOverWAL is the acceptance scenario at the HTTP
// layer: a daemon dies mid-solve (hard drain cancel, same persistence path
// as a SIGKILL), and a second server booted on the same WAL directory
// recovers the job, reruns it and succeeds — with Attempts > 1 and the
// audit validating the retried result.
func TestServerCrashRecoveryOverWAL(t *testing.T) {
	dir := t.TempDir()
	wal1, err := jobs.OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan().
		Arm(faultinject.PDSolve, faultinject.Action{Delay: 30 * time.Second, Times: 1})
	s1 := New(Config{
		JobStore:    wal1,
		BaseContext: faultinject.With(context.Background(), plan),
		Logf:        t.Logf,
	})
	ts1 := httptest.NewServer(s1.Handler())

	v, _ := submitJob(t, ts1, "/jobs", "crash-idem")
	awaitJob(t, ts1, v.ID, jobs.Running)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	_ = s1.Drain(ctx) // expires: the attempt is hard-canceled and persisted INTERRUPTED
	cancel()
	ts1.Close()
	wal1.Close()

	wal2, err := jobs.OpenWAL(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{JobStore: wal2, Logf: t.Logf})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer wal2.Close()

	done := awaitJob(t, ts2, v.ID, jobs.Succeeded)
	if done.Attempts < 2 {
		t.Errorf("Attempts = %d, want > 1 (interrupted attempt + recovery)", done.Attempts)
	}
	var rr RouteResponse
	if err := json.Unmarshal(done.Result, &rr); err != nil {
		t.Fatalf("recovered result: %v\n%s", err, done.Result)
	}
	// The retried result carries the independent audit's verdict.
	if rr.AuditOK == nil || !*rr.AuditOK {
		t.Errorf("recovered result not audit-validated: %+v", rr)
	}
	// The idempotency key survived the restart too.
	dup, resp := submitJob(t, ts2, "/jobs", "crash-idem")
	if resp.StatusCode != http.StatusOK || dup.ID != v.ID {
		t.Errorf("post-restart dedup: %d, %s (want 200, %s)", resp.StatusCode, dup.ID, v.ID)
	}
	if h := s2.Stats(); h.Jobs == nil || h.Jobs.Counters["jobs.recovered"] != 1 {
		t.Errorf("recovery counters = %+v", h.Jobs)
	}
}

func ExampleServer_jobs() {
	s := New(Config{JobStore: jobs.NewMemStore()})
	fmt.Println(s.Jobs() != nil)
	// Output: true
}
