package server

// This file is the GET /metrics endpoint: Prometheus text exposition
// (version 0.0.4), hand-rolled — the format is a few lines of
// "name{labels} value", not worth a dependency. It exposes the admission
// health counters, the solve-cache statistics, the async-job lifecycle
// counters, the process-lifetime solver counter aggregate, and (when the
// lake is enabled) the telemetry producer/store counters.

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	var b bytes.Buffer

	promGauge(&b, "streak_up", "Whether the server is serving (0 while draining).", boolVal(st.Status == "ok"))
	promGauge(&b, "streak_inflight_solves", "Requests currently holding a solve slot.", float64(st.Inflight))
	promGauge(&b, "streak_waiting_requests", "Requests queued for a solve slot.", float64(st.Waiting))
	promGauge(&b, "streak_max_inflight", "Configured solve-slot bound.", float64(st.MaxInflight))
	promGauge(&b, "streak_queue_depth", "Configured wait-queue bound.", float64(st.QueueDepth))
	promCounter(&b, "streak_served_total", "Requests answered 2xx.", float64(st.Served))
	promCounter(&b, "streak_shed_total", "Requests shed with 429.", float64(st.Shed))
	promCounter(&b, "streak_failed_total", "Requests answered 5xx.", float64(st.Failed))
	promCounter(&b, "streak_panics_total", "Panics isolated by the request guard.", float64(st.Panics))

	if c := st.Cache; c != nil {
		promGauge(&b, "streak_cache_entries", "Live solve-cache entries.", float64(c.Entries))
		promCounter(&b, "streak_cache_hits_total", "Exact content-hash cache hits.", float64(c.Hits))
		promCounter(&b, "streak_cache_misses_total", "Cache lookups without an exact entry.", float64(c.Misses))
		promCounter(&b, "streak_cache_incrementals_total", "Misses served by incremental re-routing.", float64(c.Incrementals))
		promCounter(&b, "streak_cache_cold_fallbacks_total", "Incremental attempts abandoned for a cold solve.", float64(c.ColdFallbacks))
		promCounter(&b, "streak_cache_audit_rejects_total", "Incremental results rejected by the audit.", float64(c.AuditRejects))
		promCounter(&b, "streak_cache_evictions_total", "Entries dropped by the LRU bound.", float64(c.Evictions))
	}

	if j := st.Jobs; j != nil {
		promGauge(&b, "streak_jobs_ready", "Whether the job tier finished boot replay.", boolVal(j.Ready))
		promGauge(&b, "streak_jobs_tracked", "Jobs in the table.", float64(j.Jobs))
		promGauge(&b, "streak_jobs_running", "Job attempts running now.", float64(j.Running))
		promGauge(&b, "streak_jobs_queued", "Jobs queued or awaiting retry.", float64(j.Queued))
		promNamedCounters(&b, "streak_jobs_counter_total", "Async-job lifecycle counters by canonical name.", j.Counters)
	}

	// The process-lifetime solver counter aggregate: every request's obs
	// counters, summed since boot, keyed by canonical name.
	promNamedCounters(&b, "streak_solver_counter_total", "Solver counters aggregated across solves, by canonical obs name.", s.agg.Counters())

	if t := s.cfg.Telemetry; t != nil {
		cs := t.Client().Stats()
		promCounter(&b, "streak_telemetry_pushed_total", "Telemetry records accepted into the producer buffer.", float64(cs.Pushed))
		promCounter(&b, "streak_telemetry_dropped_total", "Telemetry records dropped by backpressure.", float64(cs.Dropped))
		promCounter(&b, "streak_telemetry_ingest_errors_total", "Telemetry records lost to store failures.", float64(cs.IngestErrors))
		ss := t.Store().Stats()
		promGauge(&b, "streak_telemetry_records", "Records in the lake's working set.", float64(ss.Records))
		promGauge(&b, "streak_telemetry_segments", "Live lake segments.", float64(ss.Segments))
		promCounter(&b, "streak_telemetry_replay_skipped_total", "Unreadable lake records skipped at boot replay.", float64(ss.ReplaySkipped))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func promCounter(b *bytes.Buffer, name, help string, v float64) {
	promMetric(b, name, help, "counter", v)
}

func promGauge(b *bytes.Buffer, name, help string, v float64) {
	promMetric(b, name, help, "gauge", v)
}

func promMetric(b *bytes.Buffer, name, help, typ string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, promFloat(v))
}

// promNamedCounters emits one metric family with a name label per counter,
// sorted for stable scrapes.
func promNamedCounters(b *bytes.Buffer, family, help string, counters map[string]int64) {
	if len(counters) == 0 {
		return
	}
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", family, help, family)
	for _, n := range names {
		fmt.Fprintf(b, "%s{name=\"%s\"} %d\n", family, escapeLabel(n), counters[n])
	}
}

// promFloat renders values the way Prometheus parses them (integers stay
// integral).
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}
