package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestMetricsEndpoint pins the Prometheus exposition with telemetry
// disabled: admission counters, cache statistics and the process-lifetime
// solver counter aggregate must all be present after one solve — the lake
// is optional, the scrape surface is not.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp := post(t, ts, "/route", designBody(t, testDesign(t)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("route status = %d", resp.StatusCode)
	}
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status = %d", code)
	}
	for _, want := range []string{
		"streak_up 1",
		"streak_served_total 1",
		"streak_max_inflight",
		"streak_cache_misses_total",
		`streak_solver_counter_total{name="pd.iterations"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if strings.Contains(body, "streak_telemetry_") {
		t.Error("telemetry family exposed with the lake disabled")
	}
}

// TestTelemetryWiredIntoSolvePath is the producer integration: with a lake
// configured, synchronous solves flow through the non-blocking client into
// the store and come back from the series endpoint, and /metrics exposes
// the producer counters.
func TestTelemetryWiredIntoSolvePath(t *testing.T) {
	store, err := telemetry.OpenStore(telemetry.StoreConfig{Dir: t.TempDir(), NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	svc := telemetry.NewService(store, 64, t.Logf)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Close(ctx)
	}()

	s := New(Config{Telemetry: svc})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := testDesign(t)
	// Same design twice: the second serve is a cache hit, so the series
	// sees both a cold and a hit outcome.
	for i := 0; i < 2; i++ {
		if resp := post(t, ts, "/route", designBody(t, d), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("route %d status = %d", i, resp.StatusCode)
		}
	}

	// The push path is asynchronous by design; poll the store briefly.
	deadline := time.Now().Add(5 * time.Second)
	var series telemetry.Series
	for {
		series, err = telemetry.ComputeSeries(store.Records(), telemetry.SeriesOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if series.Samples >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if series.Samples != 2 {
		t.Fatalf("lake has %d samples, want 2", series.Samples)
	}
	lat := series.Latency["Primal-Dual"]
	if lat == nil || lat.Count != 2 || lat.P50US <= 0 {
		t.Errorf("latency = %+v", lat)
	}
	if series.Cache == nil || series.Cache.Hits != 1 || series.Cache.Cold != 1 {
		t.Errorf("cache mix = %+v", series.Cache)
	}

	_, body := get(t, ts.URL+"/metrics")
	for _, want := range []string{"streak_telemetry_pushed_total 2", "streak_telemetry_dropped_total 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The query endpoints are mounted on the same mux as /route.
	if code, body := get(t, ts.URL+"/telemetry/v1/series?metric=solve_latency"); code != http.StatusOK || !strings.Contains(body, "p50_us") {
		t.Errorf("series endpoint: %d %s", code, body)
	}
	if code, _ := get(t, ts.URL+"/debug/telemetry"); code != http.StatusOK {
		t.Errorf("dashboard status = %d", code)
	}
}

// TestTelemetryAsyncJobAttemptsRecorded: async job attempts are pushed
// into the lake with source "jobs" and their attempt number.
func TestTelemetryAsyncJobAttemptsRecorded(t *testing.T) {
	store, err := telemetry.OpenStore(telemetry.StoreConfig{Dir: t.TempDir(), NoSync: true, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	svc := telemetry.NewService(store, 64, t.Logf)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Close(ctx)
	}()

	s := New(Config{Telemetry: svc, JobStore: jobs.NewMemStore()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})

	var view struct{ ID string }
	if resp := post(t, ts, "/jobs", designBody(t, testDesign(t)), &view); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var found bool
		for _, r := range store.Records() {
			if r.Source == "jobs" && r.Report != nil && r.Report.Attempt == 1 {
				found = true
			}
		}
		if found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no jobs-sourced record in the lake; records: %+v", store.Records())
		}
		time.Sleep(25 * time.Millisecond)
	}
}
