package server

// This file is streakd's producer side of the telemetry lake: every solve
// — synchronous /route requests and async job attempts alike — merges its
// counters into the process-lifetime aggregate (the /metrics view) and,
// when a lake is configured, pushes a distilled report through the
// non-blocking telemetry client. The push path never blocks a solve: a
// full buffer drops the record and counts the drop.

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// recordSolve folds one finished solve into the observability surfaces.
// res may be nil (the solve failed before producing a result); rec is the
// request's recorder. elapsed is the server-side wall clock — for cache
// hits, the only latency there is (a hit never enters the pipeline, so it
// has no "run" span).
func (s *Server) recordSolve(rec *obs.Recorder, res *core.Result, elapsed time.Duration, source string) {
	for name, v := range rec.Counters() {
		s.agg.Add(name, v)
	}
	t := s.cfg.Telemetry
	if t == nil {
		return
	}
	rep := rec.Report()
	if rep.Congestion == nil && res != nil && res.Usage != nil {
		// topK 0: the lake keeps histograms, not hotspot lists, and skips
		// the sort.
		rep.Congestion = obs.SnapshotCongestion(res.Usage, 0)
	}
	sr := telemetry.DistillReport(rep)
	sr.DurUS = elapsed.Microseconds()
	if res != nil {
		if sr.Solver == "" {
			sr.Solver = res.SolverUsed
		}
		sr.Degraded = sr.Degraded || res.Degraded
		if res.Audit != nil {
			sr.AuditRan = true
			sr.AuditViolations = int64(len(res.Audit.Violations))
		}
	}
	t.Client().Push(telemetry.NewReportRecord(source, sr))
}
