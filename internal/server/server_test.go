package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/benchgen"
	"repro/internal/faultinject"
	"repro/internal/signal"
)

// testDesign is a small design that routes in a few milliseconds.
func testDesign(t *testing.T) *signal.Design {
	t.Helper()
	return benchgen.Scale(benchgen.Industry(1), 0.04).Generate()
}

// designBody marshals a design into a request body.
func designBody(t *testing.T, d *signal.Design) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// post sends a POST /route and decodes the response into out (if non-nil).
func post(t *testing.T, ts *httptest.Server, path string, body io.Reader, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v\nbody: %s", path, err, raw)
		}
	}
	return resp
}

func TestRouteOKAuditClean(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var rr RouteResponse
	resp := post(t, ts, "/route?stats=1", designBody(t, testDesign(t)), &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if rr.Solver == "" || rr.Metrics.RoutedGroups == 0 {
		t.Errorf("empty result: %+v", rr)
	}
	if rr.AuditOK == nil || !*rr.AuditOK {
		t.Errorf("audit verdict missing or dirty: %+v", rr.Audit)
	}
	if rr.Stats == nil || len(rr.Stats.Spans) == 0 {
		t.Error("stats requested but missing")
	}
	if st := s.Stats(); st.Served != 1 || st.Failed != 0 {
		t.Errorf("counters = %+v", st)
	}
}

func TestMethodAndAuditOverrides(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	var rr RouteResponse
	resp := post(t, ts, "/route?method=ilp&audit=strict", designBody(t, testDesign(t)), &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if rr.Solver != "ILP" {
		t.Errorf("solver = %q, want ILP", rr.Solver)
	}

	var er ErrorResponse
	resp = post(t, ts, "/route?method=quantum", designBody(t, testDesign(t)), &er)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(er.Error, "quantum") {
		t.Errorf("bad method: status %d, %+v", resp.StatusCode, er)
	}
}

func TestInvalidDesignRejectedBeforeAdmission(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := testDesign(t)
	d.Groups[0].Bits[0].Pins[0].Loc.X = d.Grid.W + 50 // out of bounds
	var er ErrorResponse
	resp := post(t, ts, "/route", designBody(t, d), &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(er.Error, d.Groups[0].Name) {
		t.Errorf("error does not name the offending group: %q", er.Error)
	}
	if st := s.Stats(); st.Served != 0 || st.Inflight != 0 {
		t.Errorf("invalid request consumed a slot: %+v", st)
	}

	resp = post(t, ts, "/route", strings.NewReader("{not json"), &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}
}

// TestPanicIsolation injects a panic into the first request's pipeline and
// asserts the request dies with a 500 while the process — and the very
// next request — keep working.
func TestPanicIsolation(t *testing.T) {
	plan := faultinject.NewPlan().
		Arm(faultinject.RouteBuild, faultinject.Action{Panic: "chaos", Times: 1})
	s := New(Config{BaseContext: faultinject.With(context.Background(), plan)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var er ErrorResponse
	resp := post(t, ts, "/route", designBody(t, testDesign(t)), &er)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(er.Error, "panic") {
		t.Errorf("error does not mention the panic: %q", er.Error)
	}

	var rr RouteResponse
	resp = post(t, ts, "/route", designBody(t, testDesign(t)), &rr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: status = %d, want 200", resp.StatusCode)
	}
	st := s.Stats()
	if st.Panics != 1 || st.Failed != 1 || st.Served != 1 || st.Inflight != 0 {
		t.Errorf("counters = %+v", st)
	}
}

// TestSolveDeadline asserts a stalled solve is cut off by SolveTimeout and
// reported as 504, releasing its slot.
func TestSolveDeadline(t *testing.T) {
	// The budget must beat the injected 30s stall by a wide margin yet
	// leave the clean follow-up request room to finish even under -race.
	plan := faultinject.NewPlan().
		Arm(faultinject.PDSolve, faultinject.Action{Delay: 30 * time.Second, Times: 1})
	s := New(Config{
		SolveTimeout: 2 * time.Second,
		BaseContext:  faultinject.With(context.Background(), plan),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var er ErrorResponse
	start := time.Now()
	resp := post(t, ts, "/route", designBody(t, testDesign(t)), &er)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%+v)", resp.StatusCode, er)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("deadline not enforced: request took %s", el)
	}
	if st := s.Stats(); st.Inflight != 0 {
		t.Errorf("slot leaked: %+v", st)
	}

	// The slot is free again: a clean request succeeds.
	resp = post(t, ts, "/route", designBody(t, testDesign(t)), nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("request after timeout: status = %d", resp.StatusCode)
	}
}

// TestBurstShedding is the acceptance scenario: a burst far beyond
// -max-inflight must be shed with 429 + Retry-After while every admitted
// request completes audit-clean — no deadlock, no pile-up.
func TestBurstShedding(t *testing.T) {
	// Every solve stalls ~200ms so the burst genuinely overlaps.
	plan := faultinject.NewPlan().
		Arm(faultinject.PDSolve, faultinject.Action{Delay: 200 * time.Millisecond, Times: 1 << 30})
	s := New(Config{
		MaxInflight:  2,
		QueueDepth:   2,
		QueueWait:    50 * time.Millisecond,
		SolveTimeout: 30 * time.Second,
		BaseContext:  faultinject.With(context.Background(), plan),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := testDesign(t)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()

	const burst = 12
	type outcome struct {
		status     int
		retryAfter string
		auditOK    bool
	}
	results := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/route", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			o := outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			if resp.StatusCode == http.StatusOK {
				var rr RouteResponse
				if err := json.Unmarshal(raw, &rr); err != nil {
					t.Errorf("request %d: decode: %v", i, err)
					return
				}
				o.auditOK = rr.AuditOK != nil && *rr.AuditOK
			}
			results[i] = o
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("burst deadlocked")
	}

	var ok, shed int
	for i, o := range results {
		switch o.status {
		case http.StatusOK:
			ok++
			if !o.auditOK {
				t.Errorf("request %d admitted but audit-dirty", i)
			}
		case http.StatusTooManyRequests:
			shed++
			if o.retryAfter == "" {
				t.Errorf("request %d shed without Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, o.status)
		}
	}
	// 2 slots + 2 queued admit at least 4; a 12-wide burst against
	// 200ms solves must shed the bulk of the rest.
	if ok < 2 {
		t.Errorf("only %d requests admitted", ok)
	}
	if shed < 4 {
		t.Errorf("only %d requests shed (want most of the burst)", shed)
	}
	st := s.Stats()
	if st.Inflight != 0 || st.Waiting != 0 {
		t.Errorf("burst left admission state dirty: %+v", st)
	}
	if st.Shed != int64(shed) || st.Served != int64(ok) {
		t.Errorf("counters disagree with observed outcomes: %+v (ok=%d shed=%d)", st, ok, shed)
	}
}

// TestDrainGraceful: with no stragglers, Drain returns promptly and new
// requests are refused with 503.
func TestDrainGraceful(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp := post(t, ts, "/route", designBody(t, testDesign(t)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	var er ErrorResponse
	resp := post(t, ts, "/route", designBody(t, testDesign(t)), &er)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(er.Error, "draining") {
		t.Errorf("post-drain error = %q", er.Error)
	}
}

// TestDrainCancelsStragglers: a solve stalled past the drain budget is
// hard-canceled; Drain returns the context error and the handler unwinds.
func TestDrainCancelsStragglers(t *testing.T) {
	plan := faultinject.NewPlan().
		Arm(faultinject.PDSolve, faultinject.Action{Delay: 30 * time.Second, Times: 1})
	s := New(Config{
		MaxInflight: 1,
		BaseContext: faultinject.With(context.Background(), plan),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	straggler := make(chan int, 1)
	go func() {
		resp := post(t, ts, "/route", designBody(t, testDesign(t)), nil)
		straggler <- resp.StatusCode
	}()
	// Wait until the straggler holds its slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("straggler never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("Drain reported clean despite a straggler")
	}
	if err != context.DeadlineExceeded {
		t.Fatalf("Drain: %v, want context.DeadlineExceeded", err)
	}
	select {
	case status := <-straggler:
		if status == http.StatusOK {
			t.Errorf("canceled straggler returned 200")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("straggler never unwound after hard cancel")
	}
	if st := s.Stats(); st.Inflight != 0 {
		t.Errorf("drain left inflight = %d", st.Inflight)
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	s := New(Config{MaxInflight: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, Health) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp, h
	}

	resp, h := get("/healthz")
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz = %d %+v", resp.StatusCode, h)
	}
	if h.MaxInflight != 1 || h.QueueDepth != 1 {
		t.Errorf("healthz does not echo config: %+v", h)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz = %d, want 200", resp.StatusCode)
	}

	s.BeginDrain()
	if resp, h := get("/readyz"); resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Errorf("draining readyz = %d %+v", resp.StatusCode, h)
	}
	// Liveness stays up through the drain.
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200", resp.StatusCode)
	}
}

// TestQueueWaitAdmitsWhenSlotFrees: a queued request within QueueWait gets
// the slot once the previous solve finishes — queueing is a wait, not an
// instant rejection.
func TestQueueWaitAdmitsWhenSlotFrees(t *testing.T) {
	plan := faultinject.NewPlan().
		Arm(faultinject.PDSolve, faultinject.Action{Delay: 120 * time.Millisecond, Times: 1})
	s := New(Config{
		MaxInflight: 1,
		QueueDepth:  4,
		QueueWait:   5 * time.Second,
		BaseContext: faultinject.With(context.Background(), plan),
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := post(t, ts, "/route", designBody(t, testDesign(t)), nil)
			codes[i] = resp.StatusCode
		}(i)
		time.Sleep(20 * time.Millisecond) // deterministic order: slow first
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d = %d, want 200 (queued request must be admitted)", i, c)
		}
	}
}

func ExampleServer() {
	s := New(Config{MaxInflight: 2})
	fmt.Println(s.Stats().Status)
	// Output: ok
}
