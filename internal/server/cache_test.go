package server

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/jobs"
)

// TestRouteCacheHit posts the same design twice and expects the second
// response to be served from the solve cache, metric-identical to the
// first, with the outcome surfaced in the response and the counters on
// /healthz.
func TestRouteCacheHit(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := testDesign(t)
	var first, second RouteResponse
	if resp := post(t, ts, "/route", designBody(t, d), &first); resp.StatusCode != 200 {
		t.Fatalf("first status %d", resp.StatusCode)
	}
	if first.Cache != "cold" {
		t.Fatalf("first solve cache outcome %q, want cold", first.Cache)
	}
	if resp := post(t, ts, "/route", designBody(t, d), &second); resp.StatusCode != 200 {
		t.Fatalf("second status %d", resp.StatusCode)
	}
	if second.Cache != "hit" {
		t.Fatalf("second solve cache outcome %q, want hit", second.Cache)
	}
	m1, m2 := first.Metrics, second.Metrics
	m1.Runtime, m2.Runtime = 0, 0
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("hit metrics diverge:\n got %+v\nwant %+v", m2, m1)
	}

	h := s.Stats()
	if h.Cache == nil {
		t.Fatal("healthz missing cache stats while the cache is enabled")
	}
	if h.Cache.Hits != 1 || h.Cache.Entries != 1 {
		t.Fatalf("cache stats %+v, want 1 hit over 1 entry", h.Cache)
	}
}

// TestRouteCacheOff checks the per-request escape hatch and the global
// disable: neither consults the cache.
func TestRouteCacheOff(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := testDesign(t)
	var rr RouteResponse
	for i := 0; i < 2; i++ {
		if resp := post(t, ts, "/route?cache=off", designBody(t, d), &rr); resp.StatusCode != 200 {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if rr.Cache != "" {
			t.Fatalf("?cache=off still reports outcome %q", rr.Cache)
		}
	}
	if h := s.Stats(); h.Cache != nil && (h.Cache.Hits != 0 || h.Cache.Misses != 0 || h.Cache.Entries != 0) {
		t.Fatalf("?cache=off touched the cache: %+v", h.Cache)
	}

	off := New(Config{CacheSize: -1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	if resp := post(t, tsOff, "/route", designBody(t, d), &rr); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rr.Cache != "" {
		t.Fatalf("disabled cache still reports outcome %q", rr.Cache)
	}
	if h := off.Stats(); h.Cache != nil {
		t.Fatalf("healthz reports cache stats with the cache disabled: %+v", h.Cache)
	}
}

// TestJobCacheThreading checks that the async tier shares the same cache:
// a job solving a design already solved synchronously is served as a hit,
// and cache=off on submit opts the job out.
func TestJobCacheThreading(t *testing.T) {
	s := New(Config{JobStore: jobs.NewMemStore(), Logf: t.Logf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Warm the cache synchronously; submitJob posts the same testDesign.
	var rr RouteResponse
	if resp := post(t, ts, "/route", designBody(t, testDesign(t)), &rr); resp.StatusCode != 200 {
		t.Fatalf("warm-up status %d", resp.StatusCode)
	}

	jobOutcome := func(path string) string {
		v, resp := submitJob(t, ts, path, "")
		if resp.StatusCode != 202 {
			t.Fatalf("submit %s status %d", path, resp.StatusCode)
		}
		done := awaitJob(t, ts, v.ID, jobs.Succeeded)
		var jr RouteResponse
		if err := json.Unmarshal(done.Result, &jr); err != nil {
			t.Fatalf("decode job result: %v", err)
		}
		return jr.Cache
	}
	if got := jobOutcome("/jobs"); got != "hit" {
		t.Fatalf("job after identical sync solve: outcome %q, want hit", got)
	}
	if got := jobOutcome("/jobs?cache=off"); got != "" {
		t.Fatalf("job with cache=off reports outcome %q, want none", got)
	}
}
