package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/signal"
)

// memRecorder collects recorded requests for assertions.
type memRecorder struct {
	mu   sync.Mutex
	reqs []struct {
		path, query string
		body        []byte
	}
	fail error
}

func (m *memRecorder) Record(path, query string, body []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return m.fail
	}
	cp := append([]byte(nil), body...)
	m.reqs = append(m.reqs, struct {
		path, query string
		body        []byte
	}{path, query, cp})
	return nil
}

// TestRecorderCapturesAcceptedRequests: the Recorder hook sees every
// validated /route and /jobs body with its query string, and the captured
// bytes decode back into the submitted design.
func TestRecorderCapturesAcceptedRequests(t *testing.T) {
	rec := &memRecorder{}
	s := New(Config{Recorder: rec, JobStore: jobs.NewMemStore(), JobWorkers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := testDesign(t)
	if resp := post(t, ts, "/route?stats=1", designBody(t, d), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("/route status %d", resp.StatusCode)
	}
	if resp := post(t, ts, "/jobs", designBody(t, d), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/jobs status %d", resp.StatusCode)
	}
	// Malformed bodies must NOT be recorded: a capture replays only
	// validated traffic.
	post(t, ts, "/route", designBody(t, &signal.Design{Name: "bad"}), nil)

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.reqs) != 2 {
		t.Fatalf("recorded %d requests, want 2", len(rec.reqs))
	}
	if rec.reqs[0].path != "/route" || rec.reqs[0].query != "stats=1" {
		t.Fatalf("first record = %s?%s", rec.reqs[0].path, rec.reqs[0].query)
	}
	if rec.reqs[1].path != "/jobs" {
		t.Fatalf("second record path = %s", rec.reqs[1].path)
	}
	var got signal.Design
	if err := json.Unmarshal(rec.reqs[0].body, &got); err != nil {
		t.Fatalf("recorded body does not decode: %v", err)
	}
	if got.Name != d.Name || len(got.Groups) != len(d.Groups) {
		t.Fatalf("recorded design %q/%d groups, want %q/%d", got.Name, len(got.Groups), d.Name, len(d.Groups))
	}
}

// TestRecorderFailureIsBestEffort: a failing recorder must never fail the
// request it was observing.
func TestRecorderFailureIsBestEffort(t *testing.T) {
	rec := &memRecorder{fail: errors.New("disk full")}
	var logged []string
	var mu sync.Mutex
	s := New(Config{
		Recorder: rec,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp := post(t, ts, "/route", designBody(t, testDesign(t)), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recorder failure leaked into response: status %d", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) == 0 {
		t.Fatal("recorder failure was not logged")
	}
}

// TestDrainRetryAfter: a draining server's 503s — synchronous /route and
// async /jobs submission alike — carry Retry-After just like the 429 shed
// path, so clients treat drain as retryable, not as an outage.
func TestDrainRetryAfter(t *testing.T) {
	s := New(Config{JobStore: jobs.NewMemStore(), JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.BeginDrain()

	for _, path := range []string{"/route", "/jobs"} {
		resp := post(t, ts, path, designBody(t, testDesign(t)), nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: status %d, want 503", path, resp.StatusCode)
		}
		ra := resp.Header.Get("Retry-After")
		if ra == "" {
			t.Fatalf("%s during drain: 503 without Retry-After", path)
		}
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
			t.Fatalf("%s during drain: Retry-After=%q, want integer >= 1", path, ra)
		}
	}
}
