package server

// This file is the async job tier of streakd: POST /jobs submits a solve
// that outlives the HTTP request, GET /jobs/{id} polls it, DELETE cancels
// it and GET /jobs/{id}/events streams its progress. The jobs.Manager owns
// durability, recovery and retries; this file adapts it to HTTP and
// supplies the executor that runs the actual routing flow.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/signal"
)

// runJob executes one attempt of an async job: resolve options, re-parse
// the persisted design, solve under the per-request deadline, and marshal
// the same RouteResponse the synchronous path returns. Failure
// classification follows the retry policy: invalid specs, exhausted
// fallback chains and strict-audit violations are terminal; timeouts,
// panics and injected chaos are retryable.
func (s *Server) runJob(ctx context.Context, spec jobs.Spec, rec *obs.Recorder, attempt int) (json.RawMessage, error) {
	start := time.Now()
	opt, err := s.optionsFor(spec.Method, spec.Audit)
	if err != nil {
		return nil, jobs.Terminal(err)
	}
	d, err := signal.ReadJSON(bytes.NewReader(spec.Design))
	if err != nil {
		return nil, jobs.Terminal(err)
	}
	// A retried attempt always runs with the independent audit on: the
	// result replacing lost work must carry a legality verdict.
	if attempt > 1 && opt.Audit == core.AuditOff {
		opt.Audit = core.AuditWarn
	}

	ctx, cancel := context.WithTimeout(ctx, s.cfg.SolveTimeout)
	defer cancel()
	rec.SetLabel("bench", d.Name)
	rec.SetLabel("method", opt.Method.String())
	rec.SetLabel("job_attempt", fmt.Sprint(attempt))
	ctx = obs.WithRecorder(ctx, rec)

	res, outcome, err := s.solveSpec(ctx, d, opt, spec.NoCache)
	// Every attempt's report flows into the telemetry lake — including
	// failed ones, so retry storms and degradation show up in the series.
	s.recordSolve(rec, res, time.Since(start), "jobs")
	if err != nil {
		var ex *core.ExhaustedError
		switch {
		case res != nil && res.Audit != nil && !res.Audit.OK():
			// The solve finished but the result is illegal; retrying the
			// same design deterministically reproduces it.
			return nil, jobs.Terminal(err)
		case errors.As(err, &ex):
			// Every rung failed — a retry would walk the same chain.
			return nil, jobs.Terminal(err)
		default:
			return nil, err
		}
	}
	if res.TimedOut && res.Metrics.RoutedGroups == 0 {
		return nil, fmt.Errorf("solve deadline exceeded before any group routed (budget %s)", s.cfg.SolveTimeout)
	}

	resp := routeResponse(d.Name, res, start)
	resp.Cache = string(outcome)
	if spec.Stats {
		rep := rec.Report()
		if res.Usage != nil {
			rep.Congestion = obs.SnapshotCongestion(res.Usage, 16)
		}
		resp.Stats = &rep
	}
	return json.Marshal(resp)
}

// handleJobSubmit is POST /jobs: decode+validate the design (a malformed
// one is rejected with 400 before anything persists), then register the
// job. An Idempotency-Key header makes client retries safe: a repeated key
// returns the existing job with 200 instead of a new 202.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if _, err := s.optionsFor(q.Get("method"), q.Get("audit")); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	d, err := signal.ReadJSON(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	// Persist the canonical re-marshaled form, not the client's bytes:
	// replay then re-validates exactly what was validated here.
	raw, err := json.Marshal(d)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	if s.cfg.Recorder != nil {
		if rerr := s.cfg.Recorder.Record("/jobs", r.URL.RawQuery, raw); rerr != nil && s.cfg.Logf != nil {
			s.cfg.Logf("record /jobs: %v", rerr)
		}
	}
	spec := jobs.Spec{
		Design:  raw,
		Method:  q.Get("method"),
		Audit:   q.Get("audit"),
		Stats:   q.Get("stats") == "1",
		NoCache: q.Get("cache") == "off",
	}
	view, existed, err := s.jobs.Submit(r.Context(), spec, r.Header.Get("Idempotency-Key"))
	switch {
	case errors.Is(err, jobs.ErrDraining):
		// Same contract as the synchronous drain 503: retryable, with a hint.
		w.Header().Set("Retry-After", s.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
		return
	case err != nil:
		// The submit record could not be persisted — accepting the job
		// would silently lose it on restart.
		s.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/jobs/"+view.ID)
	status := http.StatusAccepted
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, view)
}

// handleJobGet is GET /jobs/{id}: the job snapshot, including the solve
// result once SUCCEEDED.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.jobs.Get(r.Context(), r.PathValue("id"))
	if err != nil {
		writeJSON(w, jobErrStatus(err), ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleJobCancel is DELETE /jobs/{id}: queued jobs cancel immediately,
// running ones once their attempt unwinds; terminal jobs are returned
// unchanged.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.jobs.Cancel(r.Context(), r.PathValue("id"))
	if err != nil {
		writeJSON(w, jobErrStatus(err), ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// jobErrStatus maps manager errors to HTTP statuses.
func jobErrStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// JobProgress is one "progress" frame of GET /jobs/{id}/events: the live
// telemetry of the in-flight attempt, fed from the obs recorder.
type JobProgress struct {
	// Counters is the attempt's live solver counter set.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Active lists the stages running right now.
	Active []obs.ActiveSpan `json:"active,omitempty"`
}

// handleJobEvents is GET /jobs/{id}/events: a Server-Sent Events stream of
// the job's lifecycle. "state" events carry job snapshots on every
// transition, "progress" events carry the running attempt's live obs
// counters and active stages, and a final "done" event carries the
// terminal snapshot (result included) before the stream closes.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, ErrorResponse{Error: "streaming unsupported"})
		return
	}
	id := r.PathValue("id")
	// Subscribe before the first snapshot so no transition between the two
	// is missed.
	ch, stop, err := s.jobs.Watch(r.Context(), id)
	if err != nil {
		writeJSON(w, jobErrStatus(err), ErrorResponse{Error: err.Error()})
		return
	}
	defer stop()
	view, err := s.jobs.Get(r.Context(), id)
	if err != nil {
		writeJSON(w, jobErrStatus(err), ErrorResponse{Error: err.Error()})
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	sendView := func(v jobs.View) bool {
		if v.State.Terminal() {
			send("done", v)
			return true
		}
		send("state", v)
		return false
	}
	if sendView(view) {
		return
	}

	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case v := <-ch:
			if sendView(v) {
				return
			}
		case <-tick.C:
			if rep, ok := s.jobs.LiveReport(id); ok {
				send("progress", JobProgress{Counters: rep.Counters, Active: rep.Active})
			}
		case <-r.Context().Done():
			return
		}
	}
}
