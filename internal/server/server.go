// Package server implements streakd, the hardened HTTP/JSON routing
// service around the Streak flow. Each request carries a complete
// signal.Design and costs a bounded solve, so the serving layer is built
// around admission control rather than raw throughput:
//
//   - a semaphore bounds concurrent solves (MaxInflight);
//   - requests beyond that wait in a bounded, deadline-aware queue — when
//     the queue is full or the wait budget expires the request is shed
//     with 429 and a Retry-After hint instead of piling up;
//   - every admitted solve runs under its own deadline (SolveTimeout)
//     threaded into the pipeline's context, so one pathological design
//     cannot wedge a worker;
//   - panics inside a request — including injected chaos faults — are
//     isolated into 500s without killing the process;
//   - shutdown is graceful: BeginDrain stops admission (readyz flips to
//     503), in-flight solves finish, and Drain cancels stragglers that
//     outlive the drain budget.
//
// /healthz reports liveness with queue statistics; /readyz reports
// admission capacity and is meant for load-balancer rotation.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/signal"
	"repro/internal/solvecache"
	"repro/internal/telemetry"
)

// Config tunes the service. The zero value is usable: every field has a
// sane default applied by New.
type Config struct {
	// MaxInflight bounds concurrent solves. Default 4.
	MaxInflight int
	// QueueDepth bounds how many requests may wait for a solve slot beyond
	// MaxInflight; excess requests are shed immediately. Default
	// 2*MaxInflight.
	QueueDepth int
	// QueueWait bounds how long a queued request may wait for a slot
	// before it is shed. Default 5s.
	QueueWait time.Duration
	// SolveTimeout is the per-request solve deadline threaded into the
	// routing pipeline's context. Default 60s.
	SolveTimeout time.Duration
	// MaxBodyBytes bounds the request body. Default 32 MiB.
	MaxBodyBytes int64
	// Options is the base flow configuration; per-request query parameters
	// may override the method and audit mode.
	Options core.Options
	// AuditConfigured marks Options.Audit as deliberate. Without it a zero
	// audit mode (AuditOff) is upgraded to AuditWarn, so by default every
	// response carries an independent legality verdict; set it to serve
	// with the audit genuinely off (clients can still ask per request).
	AuditConfigured bool
	// BaseContext, when non-nil, is the root context every request derives
	// from — the seam for fault-injection plans and telemetry recorders in
	// tests and chaos runs. Default context.Background().
	BaseContext context.Context
	// JobStore, when non-nil, enables the durable async tier: POST /jobs,
	// GET /jobs/{id}, DELETE /jobs/{id} and GET /jobs/{id}/events. Jobs
	// persist through the store and recover on restart (see
	// internal/jobs).
	JobStore jobs.Store
	// JobRetries bounds execution attempts per async job. Default 3.
	JobRetries int
	// JobWorkers bounds concurrent async job solves, independent of the
	// synchronous tier's MaxInflight. Default 2.
	JobWorkers int
	// JobBackoff is the base retry backoff for failed job attempts
	// (doubled per attempt, jittered). Default 2s.
	JobBackoff time.Duration
	// Logf receives job-tier diagnostics (WAL replay skips, append
	// failures). nil discards them.
	Logf func(format string, args ...any)
	// CacheSize bounds the content-addressed solve cache shared by the
	// synchronous and async tiers (entries; see internal/solvecache). Zero
	// means solvecache.DefaultSize; negative disables caching entirely.
	// Individual requests can opt out with ?cache=off.
	CacheSize int
	// Telemetry, when non-nil, enables the telemetry lake: the ingest and
	// query endpoints mount under /telemetry/v1/ (dashboard at
	// /debug/telemetry), and every solve — synchronous and async — pushes
	// a distilled report through the lake's non-blocking client. nil
	// disables the lake; the solve path then pays one nil check.
	Telemetry *telemetry.Service
	// Recorder, when non-nil, receives every accepted /route and /jobs
	// request (path, raw query, canonical design JSON) for record/replay —
	// streakd -record-dir wires a capture ring here (internal/scenario).
	// Recording is best-effort: errors go to Logf and never fail the
	// request. Only bodies that passed validation are recorded, after
	// decode and before admission, so a captured stream replays cleanly
	// even when the live request was ultimately shed.
	Recorder RequestRecorder
}

// RequestRecorder is the seam between the serving tier and the
// record/replay harness. Implementations must be safe for concurrent use.
type RequestRecorder interface {
	Record(path, query string, body []byte) error
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background()
	}
	if !c.AuditConfigured && c.Options.Audit == core.AuditOff {
		c.Options.Audit = core.AuditWarn
	}
	return c
}

// Server is the streakd request handler plus its admission state.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	jobs   *jobs.Manager      // nil when Config.JobStore is nil
	solver *solvecache.Solver // nil when Config.CacheSize < 0
	agg    *obs.Recorder      // process-lifetime solver counter aggregate (/metrics)

	sem      chan struct{} // solve slots; len == inflight
	draining chan struct{} // closed by BeginDrain
	drained  atomic.Bool   // BeginDrain called (idempotence guard)
	hardCtx  context.Context
	hardStop context.CancelFunc

	waiting  atomic.Int64 // requests queued for a slot
	inflight atomic.Int64 // requests holding a slot
	served   atomic.Int64 // 2xx responses
	shed     atomic.Int64 // 429 responses
	failed   atomic.Int64 // 5xx responses
	panics   atomic.Int64 // panics isolated by the request guard
}

// New builds a server from the config.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		agg:      obs.NewRecorder(),
		sem:      make(chan struct{}, cfg.MaxInflight),
		draining: make(chan struct{}),
	}
	if cfg.CacheSize >= 0 {
		s.solver = solvecache.NewSolver(solvecache.NewCache(cfg.CacheSize))
	}
	s.hardCtx, s.hardStop = context.WithCancel(cfg.BaseContext)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /route", s.guard(s.handleRoute))
	s.mux.HandleFunc("GET /healthz", s.guard(s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.guard(s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.guard(s.handleMetrics))
	if cfg.Telemetry != nil {
		cfg.Telemetry.Register(s.mux, s.guard)
	}
	if cfg.JobStore != nil {
		s.jobs = jobs.New(jobs.Config{
			Store:       cfg.JobStore,
			Run:         s.runJob,
			Workers:     cfg.JobWorkers,
			MaxAttempts: cfg.JobRetries,
			Backoff:     cfg.JobBackoff,
			BaseContext: cfg.BaseContext,
			Logf:        cfg.Logf,
		})
		s.mux.HandleFunc("POST /jobs", s.guard(s.handleJobSubmit))
		s.mux.HandleFunc("GET /jobs/{id}", s.guard(s.handleJobGet))
		s.mux.HandleFunc("DELETE /jobs/{id}", s.guard(s.handleJobCancel))
		s.mux.HandleFunc("GET /jobs/{id}/events", s.guard(s.handleJobEvents))
		s.jobs.Start()
	}
	return s
}

// Jobs returns the async tier's manager (nil when the tier is disabled).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// RouteResponse is the body of a successful POST /route.
type RouteResponse struct {
	// Design echoes the routed design's name.
	Design string `json:"design"`
	// Solver names the rung that produced the assignment.
	Solver string `json:"solver"`
	// Degraded is true when a fallback rung — not the requested method —
	// produced the result.
	Degraded bool `json:"degraded,omitempty"`
	// TimedOut reports that a time limit truncated the solve.
	TimedOut bool `json:"timed_out,omitempty"`
	// Attempts lists failed fallback rungs, in order.
	Attempts []core.Attempt `json:"attempts,omitempty"`
	// Metrics is the evaluated result row (Route %, WL, Avg(Reg), ...).
	Metrics metrics.Metrics `json:"metrics"`
	// AuditOK is the independent legality verdict (absent in audit=off).
	AuditOK *bool `json:"audit_ok,omitempty"`
	// Audit carries the violation list when the audit ran dirty.
	Audit *audit.Report `json:"audit,omitempty"`
	// Cache labels how the solve was served: "hit", "incremental", "cold",
	// "cold-fallback" or "bypass" (see solvecache.Outcome). Empty when the
	// cache is disabled or the request opted out with ?cache=off.
	Cache string `json:"cache,omitempty"`
	// Stats is the run's telemetry report (only with ?stats=1).
	Stats *obs.Report `json:"stats,omitempty"`
	// ElapsedMS is the server-side wall clock of the whole request.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Error describes what went wrong.
	Error string `json:"error"`
}

// guard wraps a handler with panic isolation: a panic anywhere in the
// request path — solver bug, injected fault, decode edge case — becomes a
// 500 response and the process keeps serving.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				s.failed.Add(1)
				// The stack is server-side diagnostics; the client only
				// learns that the request died.
				debug.PrintStack()
				writeJSON(w, http.StatusInternalServerError,
					ErrorResponse{Error: fmt.Sprintf("internal: request handler panicked: %v", v)})
			}
		}()
		h(w, r)
	}
}

// handleRoute is POST /route: decode+validate, admit, solve, respond.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	opt, err := s.requestOptions(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	// Decode and validate before admission: a malformed design must not
	// consume a solve slot. ReadJSON runs the full structural validation,
	// so the 400 names the offending group/bit.
	d, err := signal.ReadJSON(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}

	s.recordRequest("/route", r.URL.RawQuery, d)

	release, status, admitErr := s.admit(r.Context())
	if admitErr != nil {
		switch status {
		case http.StatusTooManyRequests:
			s.shed.Add(1)
			w.Header().Set("Retry-After", s.retryAfter())
		case http.StatusServiceUnavailable:
			// Draining (or a canceled queue wait) is as retryable as a shed:
			// the instance restarts or rotates out, so tell clients when to
			// come back instead of letting them treat 503 as an outage.
			w.Header().Set("Retry-After", s.retryAfter())
		}
		writeJSON(w, status, ErrorResponse{Error: admitErr.Error()})
		return
	}
	defer release()

	// The solve context: derived from hardCtx so a hard drain cancels
	// stragglers, carrying the base context's fault plan, bounded by the
	// per-request deadline, and canceled when the client disconnects.
	ctx, cancel := context.WithTimeout(s.hardCtx, s.cfg.SolveTimeout)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()

	rec := obs.NewRecorder()
	rec.SetLabel("bench", d.Name)
	rec.SetLabel("method", opt.Method.String())
	ctx = obs.WithRecorder(ctx, rec)

	res, outcome, err := s.solve(ctx, r, d, opt)
	if err != nil {
		s.respondError(w, r, res, err, start)
		return
	}
	if res.TimedOut && res.Metrics.RoutedGroups == 0 {
		s.failed.Add(1)
		writeJSON(w, http.StatusGatewayTimeout,
			ErrorResponse{Error: fmt.Sprintf("solve deadline exceeded before any group routed (budget %s)", s.cfg.SolveTimeout)})
		return
	}

	resp := routeResponse(d.Name, res, start)
	resp.Cache = string(outcome)
	s.recordSolve(rec, res, time.Since(start), "streakd")
	if r.URL.Query().Get("stats") == "1" {
		rep := rec.Report()
		if res.Usage != nil {
			rep.Congestion = obs.SnapshotCongestion(res.Usage, 16)
		}
		resp.Stats = &rep
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// solve runs one request's solve, through the content-addressed cache
// unless it is disabled or the request opted out with ?cache=off. Shared
// by the synchronous path and (with the opt-out persisted on the job spec)
// the async executor via solveSpec.
func (s *Server) solve(ctx context.Context, r *http.Request, d *signal.Design, opt core.Options) (*core.Result, solvecache.Outcome, error) {
	return s.solveSpec(ctx, d, opt, r.URL.Query().Get("cache") == "off")
}

func (s *Server) solveSpec(ctx context.Context, d *signal.Design, opt core.Options, noCache bool) (*core.Result, solvecache.Outcome, error) {
	if s.solver == nil || noCache {
		res, err := core.RunCtx(ctx, d, opt)
		return res, "", err
	}
	res, outcome, err := s.solver.Solve(ctx, d, opt)
	if rec := obs.FromContext(ctx); rec != nil && err == nil {
		rec.SetLabel("cache", string(outcome))
	}
	return res, outcome, err
}

// routeResponse assembles the success body shared by the synchronous
// /route path and the async job executor.
func routeResponse(design string, res *core.Result, start time.Time) RouteResponse {
	resp := RouteResponse{
		Design:    design,
		Solver:    res.SolverUsed,
		Degraded:  res.Degraded,
		TimedOut:  res.TimedOut,
		Attempts:  res.Attempts,
		Metrics:   res.Metrics,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	if res.Audit != nil {
		ok := res.Audit.OK()
		resp.AuditOK = &ok
		if !ok {
			resp.Audit = res.Audit
		}
	}
	return resp
}

// respondError maps a failed run to a status code. Strict-audit failures
// return the audit report (the solve finished; the result is illegal),
// deadline expiry maps to 504, everything else — including exhausted
// fallback chains and isolated panics — to 500.
func (s *Server) respondError(w http.ResponseWriter, r *http.Request, res *core.Result, err error, start time.Time) {
	s.failed.Add(1)
	var ex *core.ExhaustedError
	switch {
	case res != nil && res.Audit != nil && !res.Audit.OK():
		resp := RouteResponse{
			Design:    res.Problem.Design.Name,
			Solver:    res.SolverUsed,
			Degraded:  res.Degraded,
			TimedOut:  res.TimedOut,
			Attempts:  res.Attempts,
			Metrics:   res.Metrics,
			Audit:     res.Audit,
			ElapsedMS: time.Since(start).Milliseconds(),
		}
		ok := false
		resp.AuditOK = &ok
		writeJSON(w, http.StatusUnprocessableEntity, resp)
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout,
			ErrorResponse{Error: fmt.Sprintf("solve deadline exceeded (budget %s)", s.cfg.SolveTimeout)})
	case errors.Is(err, context.Canceled):
		// The client went away or the server hard-drained; 499 is the
		// conventional nginx code but 503 is standard.
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "solve canceled"})
	case errors.As(err, &ex):
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: ex.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
	}
}

// requestOptions derives the flow options for one request from the base
// config plus ?method= and ?audit= overrides.
func (s *Server) requestOptions(r *http.Request) (core.Options, error) {
	q := r.URL.Query()
	return s.optionsFor(q.Get("method"), q.Get("audit"))
}

// optionsFor resolves method/audit override strings ("" keeps the base
// config) into flow options. Shared by the synchronous request path and
// the async job executor.
func (s *Server) optionsFor(method, auditMode string) (core.Options, error) {
	opt := s.cfg.Options
	switch m := method; m {
	case "", "default":
	case "pd":
		opt.Method = core.PrimalDual
	case "ilp":
		opt.Method = core.ILP
	case "hier":
		opt.Method = core.Hierarchical
	default:
		return opt, fmt.Errorf("unknown method %q (want pd, ilp or hier)", m)
	}
	switch a := auditMode; a {
	case "", "default":
	case "off":
		opt.Audit = core.AuditOff
	case "warn":
		opt.Audit = core.AuditWarn
	case "strict":
		opt.Audit = core.AuditStrict
	default:
		return opt, fmt.Errorf("unknown audit mode %q (want off, warn or strict)", a)
	}
	return opt, nil
}

// admit acquires a solve slot, queueing up to QueueWait when all slots are
// busy. It returns a release func on success, or a status code (429 when
// shed by queue depth or wait budget, 503 while draining) and an error.
func (s *Server) admit(reqCtx context.Context) (func(), int, error) {
	if s.isDraining() {
		return nil, http.StatusServiceUnavailable, errors.New("server is draining")
	}
	// Fast path: a free slot admits without queueing.
	select {
	case s.sem <- struct{}{}:
	default:
		// Queue, bounded by depth and wait budget. The depth check is
		// advisory (concurrent arrivals may briefly overshoot by one); the
		// semaphore itself is the hard bound on solves.
		if s.waiting.Load() >= int64(s.cfg.QueueDepth) {
			return nil, http.StatusTooManyRequests,
				fmt.Errorf("queue full (%d waiting, depth %d)", s.waiting.Load(), s.cfg.QueueDepth)
		}
		s.waiting.Add(1)
		timer := time.NewTimer(s.cfg.QueueWait)
		defer func() {
			timer.Stop()
			s.waiting.Add(-1)
		}()
		select {
		case s.sem <- struct{}{}:
		case <-timer.C:
			return nil, http.StatusTooManyRequests,
				fmt.Errorf("no solve slot within the %s wait budget", s.cfg.QueueWait)
		case <-reqCtx.Done():
			return nil, http.StatusServiceUnavailable, errors.New("client canceled while queued")
		case <-s.draining:
			return nil, http.StatusServiceUnavailable, errors.New("server is draining")
		}
	}
	s.inflight.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			s.inflight.Add(-1)
			<-s.sem
		}
	}, 0, nil
}

// recordRequest hands one accepted request body to the configured
// record/replay recorder. Best-effort by design: a full disk or a closed
// ring must never fail live traffic.
func (s *Server) recordRequest(path, query string, d *signal.Design) {
	if s.cfg.Recorder == nil {
		return
	}
	body, err := json.Marshal(d)
	if err == nil {
		err = s.cfg.Recorder.Record(path, query, body)
	}
	if err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("record %s: %v", path, err)
	}
}

// retryAfter hints when shed traffic should come back: roughly when the
// current queue has drained through the solve slots.
func (s *Server) retryAfter() string {
	// Round up, never down: a fractional wait budget truncated to its
	// floor tells clients to come back while the queue budget that shed
	// them is still running, turning every shed into a busy-loop. Clamp
	// to >= 1 because Retry-After: 0 means "immediately" to most clients.
	secs := int64((s.cfg.QueueWait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// Health is the /healthz payload.
type Health struct {
	// Status is "ok" while serving, "draining" after BeginDrain.
	Status string `json:"status"`
	// Inflight and Waiting are the live admission gauges.
	Inflight int64 `json:"inflight"`
	Waiting  int64 `json:"waiting"`
	// MaxInflight and QueueDepth echo the configured bounds.
	MaxInflight int `json:"max_inflight"`
	QueueDepth  int `json:"queue_depth"`
	// Served, Shed, Failed and Panics are lifetime counters.
	Served int64 `json:"served"`
	Shed   int64 `json:"shed"`
	Failed int64 `json:"failed"`
	Panics int64 `json:"panics"`
	// Jobs is the async tier's snapshot (absent when the tier is off).
	Jobs *jobs.Stats `json:"jobs,omitempty"`
	// Cache is the solve cache's counter snapshot (absent when caching is
	// disabled).
	Cache *solvecache.Stats `json:"cache,omitempty"`
}

// Stats returns the live health snapshot.
func (s *Server) Stats() Health {
	status := "ok"
	if s.isDraining() {
		status = "draining"
	}
	h := Health{
		Status:      status,
		Inflight:    s.inflight.Load(),
		Waiting:     s.waiting.Load(),
		MaxInflight: s.cfg.MaxInflight,
		QueueDepth:  s.cfg.QueueDepth,
		Served:      s.served.Load(),
		Shed:        s.shed.Load(),
		Failed:      s.failed.Load(),
		Panics:      s.panics.Load(),
	}
	if s.jobs != nil {
		st := s.jobs.StatsSnapshot()
		h.Jobs = &st
	}
	if s.solver != nil {
		cst := s.solver.Cache().Stats()
		h.Cache = &cst
	}
	return h
}

// handleHealthz reports liveness: 200 as long as the process serves.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleReadyz reports admission capacity: 503 while draining, while the
// wait queue is saturated, or while the jobs tier is still replaying its
// WAL at boot (the recovered job table is not yet authoritative), 200
// otherwise — the signal a load balancer uses to rotate an instance out
// before it starts shedding.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	switch {
	case st.Status == "draining":
		writeJSON(w, http.StatusServiceUnavailable, st)
	case st.Waiting >= int64(s.cfg.QueueDepth):
		writeJSON(w, http.StatusServiceUnavailable, st)
	case s.jobs != nil && !s.jobs.Ready():
		writeJSON(w, http.StatusServiceUnavailable, st)
	default:
		writeJSON(w, http.StatusOK, st)
	}
}

// BeginDrain stops admitting new solves: queued requests are released with
// 503, /readyz flips to 503, in-flight solves keep running, and the jobs
// runner stops picking up new PENDING work (in-flight job attempts finish;
// everything still queued stays persisted for the next boot). Idempotent.
func (s *Server) BeginDrain() {
	if s.drained.CompareAndSwap(false, true) {
		close(s.draining)
		if s.jobs != nil {
			s.jobs.BeginDrain()
		}
	}
}

// Drain performs the full graceful-shutdown sequence: stop admission, wait
// for in-flight solves — synchronous requests and async job attempts alike
// — to finish, and — if ctx expires first — cancel the stragglers and wait
// for them to unwind. It returns nil when the server drained cleanly and
// ctx.Err() when stragglers had to be canceled. Job attempts canceled this
// way persist as INTERRUPTED and are retried on the next boot.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	jobsDone := make(chan error, 1)
	if s.jobs != nil {
		go func() { jobsDone <- s.jobs.Drain(ctx) }()
	} else {
		jobsDone <- nil
	}
	reqErr := func() error {
		if s.awaitIdle(ctx) == nil {
			return nil
		}
		// Grace expired: cancel every in-flight solve. The pipeline honors
		// cancellation promptly, so bound the final wait instead of
		// trusting it.
		s.hardStop()
		final, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.awaitIdle(final); err != nil {
			return fmt.Errorf("drain: %d solves still running after hard cancel", s.inflight.Load())
		}
		return ctx.Err()
	}()
	if jerr := <-jobsDone; reqErr == nil {
		reqErr = jerr
	}
	return reqErr
}

// awaitIdle polls until no request holds or waits for a slot.
func (s *Server) awaitIdle(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 && s.waiting.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// isDraining reports whether BeginDrain has been called.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// writeJSON writes v as a JSON response with the status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
