package server

import (
	"testing"
	"time"
)

// TestRetryAfterRoundsUp pins the Retry-After hint math: the queue-wait
// budget must round UP to whole seconds. Flooring a fractional budget
// (2500ms -> "2") told shed clients to retry while the very wait window
// that shed them was still running; the hint must always cover the full
// budget, and never be "0" (which clients read as "retry immediately").
func TestRetryAfterRoundsUp(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want string
	}{
		{300 * time.Millisecond, "1"},  // sub-second clamps up to 1
		{time.Second, "1"},             // exact seconds pass through
		{2500 * time.Millisecond, "3"}, // ceiling, not floor: the bug was "2"
		{1999 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
		{0, "5"}, // the 5s Config default applies
	}
	for _, c := range cases {
		s := New(Config{QueueWait: c.wait, CacheSize: -1})
		if got := s.retryAfter(); got != c.want {
			t.Errorf("QueueWait %s: Retry-After %q, want %q", c.wait, got, c.want)
		}
	}
}
